package selfgo_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"selfgo"
	"selfgo/internal/bench"
)

// runNativeBench measures one benchmark on the closure-threaded native
// backend — the exact counterpart of bench.Run, differing only in the
// execution backend (eager TierNative instead of eager TierOptimizing).
func runNativeBench(b bench.Benchmark, cfg selfgo.Config) (*selfgo.Result, error) {
	sys, err := selfgo.NewTieredSystem(cfg, selfgo.ModeNative, 0)
	if err != nil {
		return nil, err
	}
	if err := sys.LoadSource(b.Source); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return sys.Call(b.Entry)
}

// TestNativeVsInterpBenchmarks is the differential oracle of the
// native tier: every benchmark, run to completion on both backends,
// must produce the identical check value, identical full RunStats
// (cycles, instrs, sends, IC hits/misses, type tests, overflow and
// bounds checks, block values, allocs, depth), and identical modelled
// code size. The native backend is a host-speed lowering only — it may
// never change what the program computes or what the cost model says
// it cost.
func TestNativeVsInterpBenchmarks(t *testing.T) {
	configs := map[string][]bench.Benchmark{
		"new SELF":    bench.All(),
		"optimized C": bench.All(),
		"ST-80":       bench.ByGroup("small"),
	}
	byName := map[string]selfgo.Config{
		"new SELF":    selfgo.NewSELF,
		"optimized C": selfgo.OptimizedC,
		"ST-80":       selfgo.ST80,
	}
	for name, benches := range configs {
		cfg := byName[name]
		t.Run(name, func(t *testing.T) {
			for _, b := range benches {
				interp, err := bench.Run(b, cfg)
				if err != nil {
					t.Fatalf("%s interp: %v", b.Name, err)
				}
				native, err := runNativeBench(b, cfg)
				if err != nil {
					t.Fatalf("%s native: %v", b.Name, err)
				}
				if interp.Value != native.Value.I() {
					t.Errorf("%s: value interp=%d native=%d", b.Name, interp.Value, native.Value.I())
				}
				if interp.Run != native.Run {
					t.Errorf("%s: RunStats diverged:\ninterp: %+v\nnative: %+v", b.Name, interp.Run, native.Run)
				}
				if interp.Methods != native.Compile.Methods || interp.CodeBytes != native.Compile.CodeBytes {
					t.Errorf("%s: compile record diverged: interp=(%d methods, %d bytes) native=(%d methods, %d bytes)",
						b.Name, interp.Methods, interp.CodeBytes,
						native.Compile.Methods, native.Compile.CodeBytes)
				}
			}
		})
	}
}

// TestConcurrentSecondRungPromotion: 8 workers hammer richards on one
// adaptive cache until methods climb both promotion rungs
// (baseline → optimizing → native). Under -race this exercises the
// native rung's install path concurrently; the assertions pin that the
// second rung actually fires, that single-flight holds at every tier,
// that tier counts and install counters only ever grow, and that the
// steady state still computes the right answer on native code.
func TestConcurrentSecondRungPromotion(t *testing.T) {
	b, ok := bench.ByName("richards")
	if !ok {
		t.Fatal("no richards benchmark")
	}
	root, err := selfgo.NewTieredSystem(selfgo.NewSELF, selfgo.ModeAdaptive, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.LoadSource(b.Source); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const laps = 2
	systems := make([]*selfgo.System, workers)
	systems[0] = root
	for i := 1; i < workers; i++ {
		if systems[i], err = root.Fork(); err != nil {
			t.Fatal(err)
		}
	}

	// A sampler races the workers, checking that promotion counters
	// and per-tier compile counts are monotone while installs land.
	stop := make(chan struct{})
	var samplerErr error
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		lastInstalled := int64(0)
		lastTiers := map[string]int{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ps := root.PromotionStats(); ps.Installed < lastInstalled {
				samplerErr = fmt.Errorf("installs went backwards: %d then %d", lastInstalled, ps.Installed)
				return
			} else {
				lastInstalled = ps.Installed
			}
			tc := root.TierCounts()
			for tier, n := range lastTiers {
				if tc[tier] < n {
					samplerErr = fmt.Errorf("tier %q count went backwards: %d then %d", tier, n, tc[tier])
					return
				}
			}
			lastTiers = tc
		}
	}()

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range systems {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lap := 0; lap < laps; lap++ {
				res, err := systems[i].Call(b.Entry)
				if err != nil {
					errs[i] = err
					return
				}
				if res.Value.I() != b.Expect {
					errs[i] = fmt.Errorf("lap %d computed %d, want %d", lap, res.Value.I(), b.Expect)
					return
				}
			}
		}()
	}
	wg.Wait()
	root.DrainPromotions()
	close(stop)
	samplerWg.Wait()
	if samplerErr != nil {
		t.Error(samplerErr)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
	}

	tc := root.TierCounts()
	if tc["native"] < 1 {
		t.Fatalf("TierCounts = %v: the second promotion rung never reached native", tc)
	}
	ps := root.PromotionStats()
	if ps.Fails != 0 {
		t.Errorf("%d promotions failed", ps.Fails)
	}

	// Single-flight at every rung: no method compiles twice at any one
	// tier across the 8 workers, and every install is exactly one
	// promotion compile.
	perTier := map[string]map[string]int{}
	for _, e := range root.CompileLog() {
		if perTier[e.Tier] == nil {
			perTier[e.Tier] = map[string]int{}
		}
		perTier[e.Tier][e.Name]++
	}
	for tier, names := range perTier {
		for name, n := range names {
			if n > 1 {
				t.Errorf("%s compiled %d times at tier %s; single-flight broken", name, n, tier)
			}
		}
	}
	if n := len(perTier["optimizing"]) + len(perTier["native"]); int64(n) != ps.Installed {
		t.Errorf("%d optimizing+native compiles vs %d installs", n, ps.Installed)
	}

	// Steady state runs the promoted native code and still agrees.
	res, err := root.Call(b.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I() != b.Expect {
		t.Errorf("steady lap on native code computed %d, want %d", res.Value.I(), b.Expect)
	}
}

// FuzzNativeDifferential feeds arbitrary program text to both backends
// under a tight budget and fails on any observable divergence: error
// presence, runtime-error kind and message, result value, or RunStats.
// Registered in ci.sh's fuzz smoke stage.
func FuzzNativeDifferential(f *testing.F) {
	seeds := []string{
		"3 + 4 * 2",
		"| s <- 0 | 1 upTo: 100 Do: [ :i | s: s + i ]. s",
		"| v | v: vector copySize: 10. v fillFrom: [ :i | i * i ]. (v at: 3) + v size",
		"[ :x | x * 2 ] value: 21",
		"| b | b: [ 5 ]. (b value) + (b value)",
		"1 / 0",
		"nil zork",
		"(9000000000000000000 * 9000000000000000000) + 1",
		"| v | v: (vector copySize: 2 FillWith: 0). v at: 17",
		"'hello' printLine. 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip()
		}
		interp, err := selfgo.NewSystem(selfgo.NewSELF)
		if err != nil {
			t.Fatal(err)
		}
		native, err := selfgo.NewTieredSystem(selfgo.NewSELF, selfgo.ModeNative, 0)
		if err != nil {
			t.Fatal(err)
		}
		bud := selfgo.Budget{MaxInstrs: 200_000, MaxDepth: 200, MaxAllocs: 100_000}
		interp.SetBudget(bud)
		native.SetBudget(bud)

		ires, ierr := interp.Eval(src)
		nres, nerr := native.Eval(src)
		if (ierr == nil) != (nerr == nil) {
			t.Fatalf("error presence diverged:\ninterp: %v\nnative: %v", ierr, nerr)
		}
		if ierr != nil {
			var ire, nre *selfgo.RuntimeError
			if errors.As(ierr, &ire) != errors.As(nerr, &nre) {
				t.Fatalf("runtime-error presence diverged:\ninterp: %v\nnative: %v", ierr, nerr)
			}
			if ire != nil && (ire.Kind != nre.Kind || ire.Msg != nre.Msg) {
				t.Fatalf("fault diverged:\ninterp: kind=%v msg=%q\nnative: kind=%v msg=%q",
					ire.Kind, ire.Msg, nre.Kind, nre.Msg)
			}
			return
		}
		if iv, nv := ires.Value.String(), nres.Value.String(); iv != nv {
			t.Fatalf("value diverged: interp=%s native=%s", iv, nv)
		}
		if ires.Run != nres.Run {
			t.Fatalf("RunStats diverged:\ninterp: %+v\nnative: %+v", ires.Run, nres.Run)
		}
	})
}
