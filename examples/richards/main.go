// The richards operating-system simulation (§6.1): the task scheduler's
// "runPacket:" call site is polymorphic — a different task kind runs
// almost every time — which defeats the monomorphic inline cache. The
// paper measured richards at only 21% of C for this reason and
// predicted that call-site-specific miss handlers would "nearly
// eliminate this overhead". This example reproduces both the bottleneck
// and the what-if.
package main

import (
	"fmt"
	"log"

	"selfgo"
	"selfgo/internal/bench"
)

func main() {
	b := bench.Richards()
	fmt.Printf("richards (idle count 1000; expected qpkt*10000+hold = %d)\n\n", b.Expect)
	fmt.Printf("%-34s %10s %9s %9s %9s\n", "system", "cycles", "sends", "IC hits", "IC misses")

	var newCycles int64
	for _, cfg := range selfgo.Configs() {
		m, err := bench.Run(b, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %10d %9d %9d %9d\n",
			cfg.Name, m.Cycles, m.Run.Sends, m.Run.ICHits, m.Run.ICMisses)
		if cfg.Name == "new SELF" {
			newCycles = m.Cycles
		}
	}

	// §6.1's proposal: call-site-specific inline-cache miss handlers.
	cfg := selfgo.NewSELF
	cfg.Name = "new SELF + IC miss handlers"
	cfg.CallSiteICMissHandlers = true
	m, err := bench.Run(b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %10d %9d %9d %9d\n",
		cfg.Name, m.Cycles, m.Run.Sends, m.Run.ICHits, m.Run.ICMisses)

	fmt.Printf("\nmiss-handler speedup over plain new SELF: %.1f%%\n",
		100*(1-float64(m.Cycles)/float64(newCycles)))
	fmt.Println("\nNote the IC miss count: the polymorphic runPacket: site misses on")
	fmt.Println("a large fraction of its sends, exactly the §6.1 diagnosis.")
}
