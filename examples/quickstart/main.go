// Quickstart: define a small SELF program, run it under the paper's
// "new SELF" compiler, and look at what the optimizer did.
package main

import (
	"fmt"
	"log"

	"selfgo"
)

const program = `
"A bank account prototype: clones carry their own balance."
account = (| parent* = lobby.
    balance <- 0.
    deposit: amount = ( balance: balance + amount. self ).
    withdraw: amount = (
        (amount > balance) ifTrue: [ ^ self ].
        balance: balance - amount.
        self ).
|).

demo = ( | acct |
    acct: account _Clone.
    1 to: 100 Do: [ :i | acct deposit: i ].
    acct withdraw: 1000.
    acct withdraw: 50.
    acct balance ).
`

func main() {
	sys, err := selfgo.NewSystem(selfgo.NewSELF)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadSource(program); err != nil {
		log.Fatal(err)
	}

	res, err := sys.Call("demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("demo => %s\n\n", res.Value)
	fmt.Printf("executed %d instructions in %d modelled cycles\n", res.Run.Instrs, res.Run.Cycles)
	fmt.Printf("dynamic sends: %d (inline-cache hits %d, misses %d)\n",
		res.Run.Sends, res.Run.ICHits, res.Run.ICMisses)
	fmt.Printf("run-time type tests: %d, overflow checks: %d\n",
		res.Run.TypeTests, res.Run.OvflChecks)
	fmt.Printf("compiled %d methods (%d bytes of code) in %v\n\n",
		res.Compile.Methods, res.Compile.CodeBytes, res.CompileTime)

	// The same program under the 1984-style Smalltalk-80 system: every
	// send is dynamic.
	st80, err := selfgo.NewSystem(selfgo.ST80)
	if err != nil {
		log.Fatal(err)
	}
	if err := st80.LoadSource(program); err != nil {
		log.Fatal(err)
	}
	res80, err := st80.Call("demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under ST-80: %d cycles (%.1fx slower), %d dynamic sends\n",
		res80.Run.Cycles, float64(res80.Run.Cycles)/float64(res.Run.Cycles), res80.Run.Sends)
}
