// The §5.3 worked example: triangleNumber compiled with iterative type
// analysis and multi-version loops. The program prints the control
// flow graph (the paper's final figure) and demonstrates that the
// common-case loop version runs with zero type tests — the tests have
// been hoisted into the general version, executed once.
package main

import (
	"fmt"
	"log"

	"selfgo"
)

const src = `
triangleNumber: n = ( | sum <- 0 |
    1 upTo: n Do: [ :i | sum: sum + i ].
    sum ).
`

func main() {
	fmt.Println("=== triangleNumber: (Chambers & Ungar §5.3) ===")

	for _, cfg := range []selfgo.Config{
		selfgo.OldSELF89,        // pessimistic loops: tests every iteration
		selfgo.NewSELF,          // iterative analysis, single loop version
		selfgo.NewSELFMultiLoop, // loop splitting: the paper's final figure
		selfgo.OptimizedC,       // what a static compiler would emit
	} {
		sys, err := selfgo.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadSource(src); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Call("triangleNumber:", selfgo.IntValue(1000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s result=%-8s cycles=%-7d run-time type tests=%-6d overflow checks=%d\n",
			cfg.Name, res.Value, res.Run.Cycles, res.Run.TypeTests, res.Run.OvflChecks)
	}

	fmt.Println(`
The interesting row is the multi-version one: 1000 iterations execute a
constant number of type tests. The general loop version tests n, sum
and i once; every later iteration runs in the test-free common-case
version — the paper's "gray box". Only the sum overflow check remains
(it is genuinely needed: a large n could overflow sum), while the
increment's check is discharged by integer subrange analysis.`)

	sys, err := selfgo.NewSystem(selfgo.NewSELFMultiLoop)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadSource(src); err != nil {
		log.Fatal(err)
	}
	g, st, err := sys.GraphFor("triangleNumber:")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled in %v with %d loop-body recompilations (iterative type analysis)\n",
		st.Duration, st.LoopIterations)
	fmt.Printf("loop versions emitted: %d\n\n", st.LoopVersions)
	fmt.Println("Final control flow graph (compare with the paper's last figure):")
	fmt.Print(g.Dump())
}
