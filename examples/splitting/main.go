// Extended message splitting (§4): after a conditional assigns x one
// of two integers, intervening statements separate the merge point
// from the send "x + 10". Local splitting cannot see that far back;
// extended splitting copies the intervening nodes so each path keeps
// its exact type and the + compiles to a raw add on both arms.
package main

import (
	"fmt"
	"log"

	"selfgo"
)

const src = `
classify: c = ( | x. pad <- 0 |
    (c = 0) ifTrue: [ x: 3 ] False: [ x: 4 ].
    "intervening work separates the merge from the use of x:"
    pad: pad + 1.
    pad: pad + 2.
    x + 10 ).
`

func main() {
	variants := []struct {
		label string
		cfg   func() selfgo.Config
	}{
		{"extended splitting (new SELF)", func() selfgo.Config { return selfgo.NewSELF }},
		{"local splitting only (old SELF)", func() selfgo.Config {
			c := selfgo.NewSELF
			c.Name = "new SELF - extended splitting"
			c.ExtendedSplitting = false
			return c
		}},
	}

	for _, v := range variants {
		cfg := v.cfg()
		sys, err := selfgo.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadSource(src); err != nil {
			log.Fatal(err)
		}
		g, st, err := sys.GraphFor("classify:")
		if err != nil {
			log.Fatal(err)
		}
		gs := g.ComputeStats()
		res, err := sys.Call("classify:", selfgo.IntValue(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", v.label)
		fmt.Printf("result=%s  static type tests=%d  splits kept=%d  nodes=%d\n",
			res.Value, gs.TypeTests, st.Splits, gs.Nodes)
		fmt.Print(g.Dump())
		fmt.Println()
	}

	fmt.Println(`With extended splitting the graph carries two copies of the padded
region — the paper's "after extended splitting" figure — and "x + 10"
folds on each arm. Without it, the merge forms the merge type {3, 4}'s
generalization and the + must re-test x at run time.`)
}
