"Longest Collatz chain below a bound — run with:
   go run ./cmd/selfrun -stats examples/programs/collatz.self -args 1000 longestBelow:"
chainLength: start = ( | n. len <- 1 |
    n: start.
    [ n != 1 ] whileTrue: [
        (n even)
            ifTrue: [ n: n / 2 ]
            False: [ n: ((3 * n) + 1) % 1000000 ].
        len: len + 1 ].
    len ).
longestBelow: bound = ( | best <- 0. bestN <- 1 |
    1 upTo: bound Do: [ :i |
        | l |
        l: (chainLength: i).
        (l > best) ifTrue: [ best: l. bestN: i ] ].
    (bestN * 1000) + best ).
