"N-queens solution counter (8x8 board) — run with:
   go run ./cmd/selfrun -stats examples/programs/nqueens.self queens"
board = (| parent* = lobby.
    rowFree. diagA. diagB.
    solutions <- 0.
    init = (
        rowFree: vector copySize: 8 FillWith: 1.
        diagA: vector copySize: 15 FillWith: 1.
        diagB: vector copySize: 15 FillWith: 1.
        solutions: 0.
        self ).
    free: r Col: c = (
        ((rowFree at: r) = 1) and: [
            ((diagA at: r + c) = 1) and: [ (diagB at: (r - c) + 7) = 1 ] ] ).
    set: r Col: c To: v = (
        rowFree at: r Put: v.
        diagA at: r + c Put: v.
        diagB at: (r - c) + 7 Put: v ).
    try: col = (
        0 upTo: 8 Do: [ :row |
            (free: row Col: col) ifTrue: [
                set: row Col: col To: 0.
                (col = 7)
                    ifTrue: [ solutions: solutions + 1 ]
                    False: [ try: col + 1 ].
                set: row Col: col To: 1 ] ] ).
|).
queens = ( | b | b: board _Clone init. b try: 0. b solutions ).
