"Recursive Fibonacci — run with:
   go run ./cmd/selfrun -stats examples/programs/fib.self -args 20 fib:"
fib: n = (
    (n < 2) ifTrue: [ n ] False: [ (fib: n - 1) + (fib: n - 2) ] ).
