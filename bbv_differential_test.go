package selfgo_test

import (
	"errors"
	"fmt"
	"testing"

	"selfgo"
	"selfgo/internal/bench"
)

// bbvStrategyConfig derives a head-to-head configuration from the
// paper's new compiler with the given specialization strategy.
func bbvStrategyConfig(strat selfgo.Strategy) selfgo.Config {
	cfg := selfgo.NewSELF
	cfg.Strategy = strat
	cfg.Name = fmt.Sprintf("%s (%s)", cfg.Name, strat)
	return cfg
}

// TestBBVVsSplitBenchmarks is the benchmark half of the BBV
// differential oracle: every benchmark, run under split, bbv and both,
// must produce the identical check value. Cycles and type-test counts
// legitimately differ between strategies (that difference IS the
// experiment, tabulated in EXPERIMENTS.md) — they are asserted
// recorded, never equal. Versioning strategies must actually version.
func TestBBVVsSplitBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			split, err := bench.Run(b, bbvStrategyConfig(selfgo.StrategySplit))
			if err != nil {
				t.Fatalf("split: %v", err)
			}
			for _, strat := range []selfgo.Strategy{selfgo.StrategyBBV, selfgo.StrategyBoth} {
				m, err := bench.Run(b, bbvStrategyConfig(strat))
				if err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				if m.Value != split.Value {
					t.Errorf("%s: value %d, split computed %d", strat, m.Value, split.Value)
				}
				if m.Cycles <= 0 {
					t.Errorf("%s: no cycles recorded", strat)
				}
				if m.Run.BBVVersions <= 0 {
					t.Errorf("%s: no basic-block versions materialized", strat)
				}
				if m.Run.BBVVersionBytes <= 0 {
					t.Errorf("%s: no modelled version bytes recorded", strat)
				}
				if m.Run.BBVVersions < m.Run.BBVCapHits && m.Run.BBVCapHits > 0 {
					// Cap hits without a comparable number of versions
					// would mean the generic fallback is serving flows
					// the table could still specialize.
					t.Logf("%s: %d cap hits over %d versions", strat, m.Run.BBVCapHits, m.Run.BBVVersions)
				}
			}
			if split.Run.BBVVersions != 0 || split.Run.BBVCapHits != 0 {
				t.Errorf("split recorded BBV activity: %+v", split.Run)
			}
		})
	}
}

// bbvFaultPrograms fault in every RuntimeError category the guest can
// reach organically: lookup failure, unhandled primitive failure,
// bounds violation, and stack exhaustion — each at the bottom of a send
// chain so a Self-level backtrace is captured.
var bbvFaultPrograms = []struct {
	name string
	src  string
	sel  string
}{
	{
		name: "does-not-understand",
		src: `
		inner = ( nil zork ).
		mid = ( inner ).
		go = ( mid ).`,
		sel: "go",
	},
	{
		name: "divide-by-zero",
		src: `
		shrink: n = ( (n = 0) ifTrue: [ ^ 10 / n ]. shrink: n - 1 ).
		go = ( shrink: 5 ).`,
		sel: "go",
	},
	{
		name: "vector-bounds",
		src: `
		poke: v At: i = ( v at: i Put: 99 ).
		go = ( | v | v: vector copySize: 4 FillWith: 0. poke: v At: 17 ).`,
		sel: "go",
	},
	{
		name: "stack-overflow",
		src: `
		spin: n = ( 1 + (spin: n + 1) ).
		go = ( spin: 0 ).`,
		sel: "go",
	},
}

// TestBBVFaultDifferential: faults must carry the identical taxonomy
// (RuntimeError kind and message) under every strategy, and every
// strategy must capture a Self-level backtrace. The traces themselves
// are asserted recorded, not equal: the strategies compile different
// inline structure, so frame boundaries may differ while the fault is
// the same.
func TestBBVFaultDifferential(t *testing.T) {
	for _, p := range bbvFaultPrograms {
		p := p
		t.Run(p.name, func(t *testing.T) {
			var ref *selfgo.RuntimeError
			for _, strat := range []selfgo.Strategy{selfgo.StrategySplit, selfgo.StrategyBBV, selfgo.StrategyBoth} {
				cfg := bbvStrategyConfig(strat)
				sys, err := selfgo.NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.LoadSource(p.src); err != nil {
					t.Fatalf("[%s] load: %v", cfg.Name, err)
				}
				_, err = sys.Call(p.sel)
				if err == nil {
					t.Fatalf("[%s] expected a fault, got none", cfg.Name)
				}
				var re *selfgo.RuntimeError
				if !errors.As(err, &re) {
					t.Fatalf("[%s] not a RuntimeError: %v", cfg.Name, err)
				}
				if re.Backtrace() == "" {
					t.Errorf("[%s] no Self-level backtrace captured", cfg.Name)
				}
				if ref == nil {
					ref = re
					continue
				}
				if re.Kind != ref.Kind || re.Msg != ref.Msg {
					t.Errorf("[%s] fault diverged: kind=%v msg=%q, split: kind=%v msg=%q",
						cfg.Name, re.Kind, re.Msg, ref.Kind, ref.Msg)
				}
			}
		})
	}
}

// FuzzBBVDifferential feeds arbitrary program text to the split and
// bbv strategies under a tight budget and fails on any observable
// divergence: error presence, runtime-error kind and message, or the
// result value. RunStats are deliberately NOT compared — versioning
// charges a different instruction stream, and the modelled-cost
// difference is the measured result, not a bug. Registered in ci.sh's
// fuzz smoke stage.
func FuzzBBVDifferential(f *testing.F) {
	seeds := []string{
		"3 + 4 * 2",
		"| s <- 0 | 1 upTo: 100 Do: [ :i | s: s + i ]. s",
		"| v | v: vector copySize: 10. v fillFrom: [ :i | i * i ]. (v at: 3) + v size",
		"[ :x | x * 2 ] value: 21",
		"| b | b: [ 5 ]. (b value) + (b value)",
		"1 / 0",
		"nil zork",
		"(9000000000000000000 * 9000000000000000000) + 1",
		"| v | v: (vector copySize: 2 FillWith: 0). v at: 17",
		"'hello' printLine. 0",
		"(3 < 4) ifTrue: [ 'y' ] False: [ 'n' ]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip()
		}
		split, err := selfgo.NewSystem(bbvStrategyConfig(selfgo.StrategySplit))
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := selfgo.NewSystem(bbvStrategyConfig(selfgo.StrategyBBV))
		if err != nil {
			t.Fatal(err)
		}
		bud := selfgo.Budget{MaxInstrs: 200_000, MaxDepth: 200, MaxAllocs: 100_000}
		split.SetBudget(bud)
		lazy.SetBudget(bud)

		sres, serr := split.Eval(src)
		bres, berr := lazy.Eval(src)
		if (serr == nil) != (berr == nil) {
			t.Fatalf("error presence diverged:\nsplit: %v\nbbv: %v", serr, berr)
		}
		if serr != nil {
			var sre, bre *selfgo.RuntimeError
			if errors.As(serr, &sre) != errors.As(berr, &bre) {
				t.Fatalf("runtime-error presence diverged:\nsplit: %v\nbbv: %v", serr, berr)
			}
			if sre != nil {
				if sre.Kind != bre.Kind {
					t.Fatalf("fault kind diverged:\nsplit: kind=%v msg=%q\nbbv: kind=%v msg=%q",
						sre.Kind, sre.Msg, bre.Kind, bre.Msg)
				}
				// DNU spelling depends on WHEN the lookup fails: split's
				// type analysis can prove the failure at compile time
				// (an ir.Fail stub), while bbv leaves the send dynamic
				// and faults at run time. Same taxonomy, different
				// resolution time — so the kind must match but the
				// message text is only compared for the other kinds.
				if sre.Kind != selfgo.KindDoesNotUnderstand && sre.Msg != bre.Msg {
					t.Fatalf("fault message diverged:\nsplit: kind=%v msg=%q\nbbv: kind=%v msg=%q",
						sre.Kind, sre.Msg, bre.Kind, bre.Msg)
				}
			}
			return
		}
		if sv, bv := sres.Value.String(), bres.Value.String(); sv != bv {
			t.Fatalf("value diverged: split=%s bbv=%s", sv, bv)
		}
	})
}
