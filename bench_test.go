// Package-level benchmarks: one testing.B benchmark per table/figure
// of the paper's evaluation (§6, Appendices A-C), plus per-system
// micro-benchmarks. Each table benchmark regenerates its table once
// per iteration and reports the paper's headline quantities as custom
// metrics, so `go test -bench=Table` reproduces the whole evaluation.
package selfgo_test

import (
	"fmt"
	"testing"
	"time"

	"selfgo"
	"selfgo/internal/bench"
)

// benchTable runs a table generator b.N times.
func benchTable(b *testing.B, gen func(r *bench.Runner) error) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner()
		if err := gen(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableSpeedSummary regenerates the §6.1 speed table (E1) and
// reports the group medians as metrics (percent of optimized C).
func BenchmarkTableSpeedSummary(b *testing.B) {
	var last *bench.Table
	benchTable(b, func(r *bench.Runner) error {
		t, err := r.SpeedSummaryTable()
		last = t
		return err
	})
	if last != nil {
		for _, row := range last.Rows {
			if row[0] == "new SELF" {
				// stanford-oo median %, the paper's headline number.
				var med float64
				fmt.Sscanf(row[3], "%f%%", &med)
				b.ReportMetric(med, "newSELF-stanford-oo-%ofC")
			}
		}
	}
}

// BenchmarkTableCompileSummary regenerates the §6.2/§6.3 compile-time
// and code-size table (E2).
func BenchmarkTableCompileSummary(b *testing.B) {
	benchTable(b, func(r *bench.Runner) error {
		_, err := r.CompileSummaryTable()
		return err
	})
}

// BenchmarkTableSpeed regenerates Appendix A (E3).
func BenchmarkTableSpeed(b *testing.B) {
	benchTable(b, func(r *bench.Runner) error {
		_, err := r.SpeedTable()
		return err
	})
}

// BenchmarkTableCodeSize regenerates Appendix B (E4).
func BenchmarkTableCodeSize(b *testing.B) {
	benchTable(b, func(r *bench.Runner) error {
		_, err := r.CodeSizeTable()
		return err
	})
}

// BenchmarkTableCompileTime regenerates Appendix C (E5).
func BenchmarkTableCompileTime(b *testing.B) {
	benchTable(b, func(r *bench.Runner) error {
		_, err := r.CompileTimeTable()
		return err
	})
}

// BenchmarkTableAblation regenerates the per-technique ablation (A1).
func BenchmarkTableAblation(b *testing.B) {
	benchTable(b, func(r *bench.Runner) error {
		_, err := r.AblationTable()
		return err
	})
}

// BenchmarkCompilerThroughput measures raw compiler speed on the
// richards program (methods compiled per second under new SELF).
func BenchmarkCompilerThroughput(b *testing.B) {
	rb := bench.Richards()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := selfgo.NewSystem(selfgo.NewSELF)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.LoadSource(rb.Source); err != nil {
			b.Fatal(err)
		}
		res, err := sys.Call(rb.Entry)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Compile.Methods)/res.CompileTime.Seconds(), "methods/s")
	}
}

// BenchmarkVMThroughput measures interpreter speed (modelled cycles
// simulated per wall-clock second) on the sieve.
func BenchmarkVMThroughput(b *testing.B) {
	sv, _ := bench.ByName("sieve")
	sys, err := selfgo.NewSystem(selfgo.NewSELF)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.LoadSource(sv.Source); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Call(sv.Entry); err != nil {
		b.Fatal(err) // warm the code cache
	}
	b.ResetTimer()
	var cycles int64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := sys.Call(sv.Entry)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Run.Cycles
	}
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(cycles)/el/1e6, "Mcycles/s")
	}
}

// benchHost runs one benchmark in steady state (warmed system) and
// reports million guest (modelled) instructions retired per wall
// second — the host-speed headline metric of BENCH_host.json.
func benchHost(b *testing.B, cfg selfgo.Config, bm bench.Benchmark) {
	sys, err := selfgo.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.LoadSource(bm.Source); err != nil {
		b.Fatal(err)
	}
	warm, err := sys.Call(bm.Entry)
	if err != nil {
		b.Fatal(err) // warm the code cache and inline caches
	}
	if bm.HasExpect && warm.Value.I() != bm.Expect {
		b.Fatalf("%s: got %d, want %d", bm.Name, warm.Value.I(), bm.Expect)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := sys.Call(bm.Entry)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Run.Instrs
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(instrs)/el/1e6, "Mginstrs/s")
	}
}

// BenchmarkHost measures host wall-clock speed of every benchmark
// under new SELF — the same measurement `selfbench -hostbench` records
// into BENCH_host.json, here as sub-benchmarks for `go test -bench`.
func BenchmarkHost(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) { benchHost(b, selfgo.NewSELF, bm) })
	}
}

// BenchmarkHostUnfused is the A/B partner of BenchmarkHost/richards:
// the same program with superinstruction fusion disabled, so
// `go test -bench='Host.*richards'` shows the fusion win directly.
func BenchmarkHostUnfused(b *testing.B) {
	cfg := selfgo.NewSELF
	cfg.NoSuperinstructions = true
	b.Run("richards", func(b *testing.B) { benchHost(b, cfg, bench.Richards()) })
}

// BenchmarkCompileTriangle measures one compilation of the §5.3
// example under each configuration.
func BenchmarkCompileTriangle(b *testing.B) {
	const src = `triangleNumber: n = ( | sum <- 0 | 1 upTo: n Do: [ :i | sum: sum + i ]. sum ).`
	for _, cfg := range selfgo.Configs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			sys, err := selfgo.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.LoadSource(src); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.GraphFor("triangleNumber:"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
