module selfgo

go 1.22
