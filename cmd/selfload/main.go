// selfload is the load generator and trace tool for selfserved and
// selfrouter. It has two driving modes:
//
//   - Closed loop (default): c workers each keep one request in flight
//     against /eval or /run, then the tool reports throughput, status
//     mix and latency quantiles. -backoff makes workers honor the
//     Retry-After hint on 429 instead of hammering a shedding server.
//
//   - Replay (-replay trace.jsonl): re-issues a recorded trace
//     OPEN-loop — each request fires at its recorded arrival time
//     (deltas divided by -speed), regardless of whether earlier ones
//     have answered — and reports latency quantiles per status. This
//     is the honest way to measure a serving stack: arrival rate stays
//     fixed while latency is the dependent variable.
//
// Either mode can -record the issued stream to a jsonl trace
// (arrival deltas, endpoint, body, tenant, affinity key — see
// internal/wire.TraceRecord). Replaying while recording re-captures a
// byte-identical trace modulo timestamps, which CI uses to pin replay
// determinism.
//
// Beyond benchmarking, it doubles as the CI smoke driver: it can
// assert serving-layer invariants from the server's own /metrics —
// that the shared code cache compiled nothing new under steady load
// (-assert-compile-once), that background tier promotions landed
// (-min-promotions), that hot methods climbed the second rung to the
// closure-threaded native tier (-min-native-compiles), and that
// overload was shed, not queued forever (-min-429). -scrape NAME
// prints one /metrics value and exits, so shell scripts can read
// per-replica counters without a curl|grep pipeline. -json emits the
// whole run summary as one JSON object on stdout for scripted
// consumers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selfgo/internal/wire"
)

func main() {
	var (
		base  = flag.String("url", "http://127.0.0.1:8673", "selfserved or selfrouter base URL")
		conc  = flag.Int("c", 8, "concurrent connections (closed loop: one request in flight each)")
		total = flag.Int("n", 200, "total requests across all connections (closed loop)")

		expr       = flag.String("expr", "", "expression for POST /eval")
		entry      = flag.String("entry", "", "lobby selector for POST /eval")
		args       = flag.String("args", "", "comma-separated integer args for -entry")
		benchName  = flag.String("bench", "", "benchmark name for POST /run")
		deadlineMS = flag.Int64("deadline-ms", 0, "per-request deadline to send (0 = server default)")
		tenant     = flag.String("tenant", "", "X-Tenant header to send (the router's coarse affinity key)")

		record  = flag.String("record", "", "write the issued request stream to this jsonl trace file")
		replay  = flag.String("replay", "", "re-issue this jsonl trace open-loop instead of generating load")
		speed   = flag.Float64("speed", 1.0, "replay time compression: recorded arrival deltas are divided by this")
		backoff = flag.Bool("backoff", false, "closed loop: sleep the Retry-After hint after a 429 before the next request")

		warmup    = flag.Int("warmup", 1, "sequential warm-up requests before the timed run (closed loop)")
		expectInt = flag.Int64("expect-int", 0, "fail unless every 200 response has this int value")
		hasExpect = flag.Bool("check-int", false, "enable -expect-int checking")
		failErr   = flag.Bool("fail-on-error", false, "exit non-zero if any request is not 2xx or 429")

		assertOnce    = flag.Bool("assert-compile-once", false, "fail if codecache misses grow between warm-up and end of run")
		minPromotions = flag.Int64("min-promotions", 0, "wait for at least this many installed promotions in /metrics")
		minNative     = flag.Int64("min-native-compiles", 0, "wait for at least this many native-tier compiles in /metrics (second promotion rung)")
		promotionWait = flag.Duration("promotion-wait", 10*time.Second, "how long to poll /metrics for -min-promotions / -min-native-compiles")
		min429        = flag.Int("min-429", 0, "fail unless at least this many requests were shed with 429")
		assertPool    = flag.Bool("assert-pool-moves", false, "fail unless pool occupancy rose above zero during the run — live selfserved_pool_in_use samples or the server's checkout high-water mark (gauges must track live occupancy, not config)")
		scrape        = flag.String("scrape", "", "print one value scraped from /metrics and exit (bare name or fully-labelled series)")
		jsonOut       = flag.Bool("json", false, "print one JSON summary object on stdout; human output moves to stderr")
		quiet         = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("selfload: ")

	client := &http.Client{}
	if *scrape != "" {
		v := scrapeCounter(client, *base, *scrape)
		if v < 0 {
			log.Fatalf("could not scrape %q from %s/metrics", *scrape, *base)
		}
		fmt.Println(v)
		return
	}
	if *speed <= 0 {
		log.Fatal("-speed must be positive")
	}

	// Trace recorder: both modes write through the same TraceWriter.
	var tw *wire.TraceWriter
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tw = wire.NewTraceWriter(f)
		defer func() {
			if err := tw.Flush(); err != nil {
				log.Fatalf("flushing trace: %v", err)
			}
		}()
	}

	cl := &collector{codes: map[int]int{}, lats: map[int][]time.Duration{}}

	// Pool-occupancy watcher: sample the live in-use gauge during the
	// run for the report. The assertion itself reads the server's
	// checkout high-water mark afterwards — a cached expression holds
	// a worker for microseconds, so point-sampling the live gauge can
	// legitimately miss every checkout.
	var poolMax atomic.Int64
	poolDone := make(chan struct{})
	if *assertPool {
		go func() {
			c := &http.Client{}
			for {
				select {
				case <-poolDone:
					return
				default:
				}
				if v := scrapeCounter(c, *base, "selfserved_pool_in_use"); v > poolMax.Load() {
					poolMax.Store(v)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	var (
		wall time.Duration
		mode string
	)
	missesBefore := int64(-1)
	if *replay != "" {
		mode = "replay"
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := wire.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if len(trace) == 0 {
			log.Fatalf("%s: empty trace", *replay)
		}
		if *assertOnce {
			missesBefore = scrapeCounter(client, *base, "selfgo_codecache_misses_total")
		}
		wall = runReplay(*base, trace, *speed, tw, cl, *hasExpect, *expectInt)
	} else {
		mode = "closed"
		endpoint, body, err := buildBody(*expr, *entry, *args, *benchName, *deadlineMS)
		if err != nil {
			log.Fatal(err)
		}
		url := strings.TrimRight(*base, "/") + endpoint
		for i := 0; i < *warmup; i++ {
			code, res, _, err := post(client, url, body, *tenant)
			if err != nil {
				log.Fatalf("warm-up: %v", err)
			}
			if code != 200 {
				log.Fatalf("warm-up: status %d (%s)", code, errText(res))
			}
		}
		if *assertOnce {
			missesBefore = scrapeCounter(client, *base, "selfgo_codecache_misses_total")
		}
		wall = runClosed(url, endpoint, body, *tenant, *conc, *total, *backoff, tw, cl, *hasExpect, *expectInt)
	}
	close(poolDone)

	done, lats := 0, []time.Duration(nil)
	for _, n := range cl.codes {
		done += n
	}
	for _, l := range cl.lats {
		lats = append(lats, l...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	// Human-readable report. With -json it moves to stderr so stdout
	// stays a single machine-readable object.
	out := func(format string, a ...any) {
		if *jsonOut {
			log.Printf(format, a...)
		} else {
			fmt.Printf(format+"\n", a...)
		}
	}
	if !*quiet {
		out("target      %s", *base)
		out("requests    %d in %v (%.1f req/s, mode=%s)",
			done, wall.Round(time.Millisecond), float64(done)/wall.Seconds(), mode)
		keys := make([]int, 0, len(cl.codes))
		for k := range cl.codes {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			label := strconv.Itoa(k)
			if k == -1 {
				label = "transport error"
			}
			line := fmt.Sprintf("  status %-16s %d", label, cl.codes[k])
			if l := cl.lats[k]; len(l) > 0 {
				sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
				line += fmt.Sprintf("   p50 %v  p99 %v", quantile(l, 0.50), quantile(l, 0.99))
			}
			out("%s", line)
		}
		if len(lats) > 0 {
			out("latency     p50 %v  p90 %v  p99 %v  max %v",
				quantile(lats, 0.50), quantile(lats, 0.90),
				quantile(lats, 0.99), lats[len(lats)-1])
		}
	}
	if *jsonOut {
		log.Printf("%d requests, %d ok, %d shed, %.1f req/s",
			done, cl.codes[200], cl.codes[429], float64(done)/wall.Seconds())
	} else {
		fmt.Printf("selfload: %d requests, %d ok, %d shed, %.1f req/s\n",
			done, cl.codes[200], cl.codes[429], float64(done)/wall.Seconds())
	}

	fail := false
	if *hasExpect && cl.badInts > 0 {
		log.Printf("FAIL: %d responses had the wrong int value (want %d)", cl.badInts, *expectInt)
		fail = true
	}
	errors := 0
	for code, n := range cl.codes {
		if code != 200 && code != 429 {
			errors += n
		}
	}
	if *failErr && errors > 0 {
		for code, n := range cl.codes {
			if code != 200 && code != 429 {
				log.Printf("FAIL: %d requests answered %d", n, code)
			}
		}
		fail = true
	}
	if *min429 > 0 && cl.codes[429] < *min429 {
		log.Printf("FAIL: %d responses were 429, want >= %d", cl.codes[429], *min429)
		fail = true
	}
	if *assertPool {
		if peak := scrapeCounter(client, *base, "selfserved_pool_in_use_peak"); peak > poolMax.Load() {
			poolMax.Store(peak)
		}
		if poolMax.Load() < 1 {
			log.Print("FAIL: selfserved_pool_in_use_peak never rose above zero under load")
			fail = true
		} else if !*quiet {
			out("pool occupancy moved: peak in-use %d", poolMax.Load())
		}
	}
	if *assertOnce {
		missesAfter := scrapeCounter(client, *base, "selfgo_codecache_misses_total")
		if missesBefore < 0 || missesAfter < 0 {
			log.Print("FAIL: could not scrape selfgo_codecache_misses_total")
			fail = true
		} else if missesAfter != missesBefore {
			log.Printf("FAIL: compile-once violated — codecache misses grew %d -> %d during steady load",
				missesBefore, missesAfter)
			fail = true
		} else if !*quiet {
			out("compile-once held: codecache misses stable at %d", missesAfter)
		}
	}
	if *minPromotions > 0 {
		// Promotions land on background goroutines; give them a moment
		// after the last response instead of sampling a race.
		got := pollCounter(client, *base, "selfgo_promotions_installed_total", *minPromotions, *promotionWait)
		if got < *minPromotions {
			log.Printf("FAIL: %d promotions installed, want >= %d", got, *minPromotions)
			fail = true
		} else if !*quiet {
			out("promotions installed: %d", got)
		}
	}
	if *minNative > 0 {
		// Same deal one rung up: second-rung promotions recompile at
		// the native tier on background goroutines.
		got := pollCounter(client, *base, `selfgo_compiles_total{tier="native"}`, *minNative, *promotionWait)
		if got < *minNative {
			log.Printf("FAIL: %d native-tier compiles, want >= %d", got, *minNative)
			fail = true
		} else if !*quiet {
			out("native-tier compiles: %d", got)
		}
	}

	if *jsonOut {
		s := summary{
			Target:      *base,
			Mode:        mode,
			Requests:    done,
			OK:          cl.codes[200],
			Shed:        cl.codes[429],
			Errors:      errors,
			WallSeconds: round3(wall.Seconds()),
			RPS:         round3(float64(done) / wall.Seconds()),
			Status:      map[string]int{},
			ByStatusUS:  map[string]quantilesUS{},
			Recorded:    *record,
			Failed:      fail,
		}
		if mode == "replay" {
			s.Speed = *speed
		} else {
			s.Concurrency = *conc
		}
		for code, n := range cl.codes {
			label := strconv.Itoa(code)
			if code == -1 {
				label = "transport_error"
			}
			s.Status[label] = n
			if l := cl.lats[code]; len(l) > 0 {
				sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
				s.ByStatusUS[label] = newQuantilesUS(l)
			}
		}
		if len(lats) > 0 {
			q := newQuantilesUS(lats)
			s.LatencyUS = &q
		}
		if *assertPool {
			s.PoolPeak = poolMax.Load()
		}
		b, err := json.Marshal(&s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(b))
	}
	if fail {
		os.Exit(1)
	}
}

// collector accumulates per-status outcomes from either driving mode.
type collector struct {
	mu      sync.Mutex
	codes   map[int]int
	lats    map[int][]time.Duration // status -> latencies (-1 = transport error)
	badInts int
}

func (cl *collector) add(code int, lat time.Duration, res *wire.Result, err error,
	hasExpect bool, expectInt int64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err != nil {
		cl.codes[-1]++
		return
	}
	cl.codes[code]++
	cl.lats[code] = append(cl.lats[code], lat)
	if code == 200 && hasExpect && (res == nil || res.Int != expectInt) {
		cl.badInts++
	}
}

// runClosed drives the classic closed loop: conc workers, one request
// in flight each, total requests overall. With backoff, a worker that
// is shed sleeps the server's Retry-After hint before its next issue —
// the cooperative client the load-aware hint is calibrated for.
func runClosed(url, endpoint, body, tenant string, conc, total int, backoff bool,
	tw *wire.TraceWriter, cl *collector, hasExpect bool, expectInt int64) time.Duration {
	var issued atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &http.Client{}
			for issued.Add(1) <= int64(total) {
				if tw != nil {
					if err := tw.Record(endpoint, body, tenant); err != nil {
						log.Fatalf("recording trace: %v", err)
					}
				}
				t0 := time.Now()
				code, res, retryAfter, err := post(c, url, body, tenant)
				cl.add(code, time.Since(t0), res, err, hasExpect, expectInt)
				if backoff && err == nil && code == http.StatusTooManyRequests {
					time.Sleep(time.Duration(retryAfter) * time.Second)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// runReplay re-issues a trace open-loop: one scheduler goroutine walks
// the records in order, sleeps each arrival delta (divided by speed),
// and fires the request on its own goroutine without waiting for the
// previous answer. Because scheduling — and re-recording — happen
// sequentially in trace order, replaying a trace while recording
// produces a byte-identical trace modulo the dt_us timestamps.
func runReplay(base string, trace []wire.TraceRecord, speed float64,
	tw *wire.TraceWriter, cl *collector, hasExpect bool, expectInt int64) time.Duration {
	base = strings.TrimRight(base, "/")
	c := &http.Client{}
	var wg sync.WaitGroup
	start := time.Now()
	due := time.Duration(0)
	for _, rec := range trace {
		due += time.Duration(float64(rec.DeltaUS)/speed) * time.Microsecond
		if sleep := due - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		if tw != nil {
			if err := tw.Record(rec.Endpoint, rec.Body, rec.Tenant); err != nil {
				log.Fatalf("recording trace: %v", err)
			}
		}
		wg.Add(1)
		go func(rec wire.TraceRecord) {
			defer wg.Done()
			t0 := time.Now()
			code, res, _, err := post(c, base+rec.Endpoint, rec.Body, rec.Tenant)
			cl.add(code, time.Since(t0), res, err, hasExpect, expectInt)
		}(rec)
	}
	wg.Wait()
	return time.Since(start)
}

// summary is the -json output object, stable vocabulary for scripts
// (BENCH_serve.json embeds these verbatim).
type summary struct {
	Target      string                 `json:"target"`
	Mode        string                 `json:"mode"`
	Concurrency int                    `json:"concurrency,omitempty"`
	Speed       float64                `json:"speed,omitempty"`
	Requests    int                    `json:"requests"`
	OK          int                    `json:"ok"`
	Shed        int                    `json:"shed"`
	Errors      int                    `json:"errors"`
	WallSeconds float64                `json:"wall_seconds"`
	RPS         float64                `json:"rps"`
	Status      map[string]int         `json:"status"`
	LatencyUS   *quantilesUS           `json:"latency_us,omitempty"`
	ByStatusUS  map[string]quantilesUS `json:"latency_by_status_us,omitempty"`
	PoolPeak    int64                  `json:"pool_peak_in_use,omitempty"`
	Recorded    string                 `json:"recorded,omitempty"`
	Failed      bool                   `json:"failed,omitempty"`
}

type quantilesUS struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

func newQuantilesUS(sorted []time.Duration) quantilesUS {
	return quantilesUS{
		P50: quantile(sorted, 0.50).Microseconds(),
		P90: quantile(sorted, 0.90).Microseconds(),
		P99: quantile(sorted, 0.99).Microseconds(),
		Max: sorted[len(sorted)-1].Microseconds(),
	}
}

func round3(f float64) float64 { return float64(int64(f*1000+0.5)) / 1000 }

// buildBody assembles the request body from the flag combination.
func buildBody(expr, entry, args, benchName string, deadlineMS int64) (endpoint, body string, err error) {
	set := 0
	for _, s := range []string{expr, entry, benchName} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return "", "", fmt.Errorf("exactly one of -expr, -entry or -bench is required (or -replay a trace)")
	}
	if benchName != "" {
		req := wire.RunRequest{Bench: benchName, DeadlineMS: deadlineMS}
		b, err := json.Marshal(req)
		return "/run", string(b), err
	}
	req := wire.EvalRequest{Expr: expr, Entry: entry, DeadlineMS: deadlineMS}
	if args != "" {
		for _, a := range strings.Split(args, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
			if err != nil {
				return "", "", fmt.Errorf("bad -args: %v", err)
			}
			req.Args = append(req.Args, n)
		}
	}
	b, err := json.Marshal(req)
	return "/eval", string(b), err
}

// post issues one request. retryAfter is the parsed Retry-After header
// in seconds (1 if absent or unparsable — always safe to sleep on).
func post(c *http.Client, url, body, tenant string) (code int, res *wire.Result, retryAfter int, err error) {
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		return 0, nil, 1, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := c.Do(req)
	if err != nil {
		return 0, nil, 1, err
	}
	defer resp.Body.Close()
	retryAfter = 1
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		retryAfter = s
	}
	var r wire.Result
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return resp.StatusCode, nil, retryAfter, nil // non-JSON body (e.g. plain 404): status still counts
	}
	return resp.StatusCode, &r, retryAfter, nil
}

func errText(res *wire.Result) string {
	if res == nil || res.Error == nil {
		return "no error body"
	}
	return res.Error.Kind + ": " + res.Error.Message
}

// scrapeCounter fetches one counter from /metrics — name may be a bare
// metric or a fully-labelled series like `x_total{tier="native"}`; -1
// means the scrape or the metric was missing.
func scrapeCounter(c *http.Client, base, name string) int64 {
	resp, err := c.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			return -1
		}
		return int64(v)
	}
	return -1
}

// pollCounter scrapes until the counter reaches want or the wait runs
// out, returning the last value seen.
func pollCounter(c *http.Client, base, name string, want int64, wait time.Duration) int64 {
	deadline := time.Now().Add(wait)
	for {
		got := scrapeCounter(c, base, name)
		if got >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// quantile reads the q-th quantile from sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(time.Microsecond)
}
