// selfload is a closed-loop load generator for selfserved: c workers
// each keep one request in flight against /eval or /run, then the tool
// reports throughput, status mix and latency quantiles.
//
// Beyond benchmarking, it doubles as the CI smoke driver: it can
// assert serving-layer invariants from the server's own /metrics —
// that the shared code cache compiled nothing new under steady load
// (-assert-compile-once), that background tier promotions landed
// (-min-promotions), that hot methods climbed the second rung to the
// closure-threaded native tier (-min-native-compiles), and that
// overload was shed, not queued forever (-min-429).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selfgo/internal/wire"
)

func main() {
	var (
		base  = flag.String("url", "http://127.0.0.1:8673", "selfserved base URL")
		conc  = flag.Int("c", 8, "concurrent connections (closed loop: one request in flight each)")
		total = flag.Int("n", 200, "total requests across all connections")

		expr       = flag.String("expr", "", "expression for POST /eval")
		entry      = flag.String("entry", "", "lobby selector for POST /eval")
		args       = flag.String("args", "", "comma-separated integer args for -entry")
		benchName  = flag.String("bench", "", "benchmark name for POST /run")
		deadlineMS = flag.Int64("deadline-ms", 0, "per-request deadline to send (0 = server default)")

		warmup    = flag.Int("warmup", 1, "sequential warm-up requests before the timed run")
		expectInt = flag.Int64("expect-int", 0, "fail unless every 200 response has this int value")
		hasExpect = flag.Bool("check-int", false, "enable -expect-int checking")
		failErr   = flag.Bool("fail-on-error", false, "exit non-zero if any request is not 2xx or 429")

		assertOnce    = flag.Bool("assert-compile-once", false, "fail if codecache misses grow between warm-up and end of run")
		minPromotions = flag.Int64("min-promotions", 0, "wait for at least this many installed promotions in /metrics")
		minNative     = flag.Int64("min-native-compiles", 0, "wait for at least this many native-tier compiles in /metrics (second promotion rung)")
		promotionWait = flag.Duration("promotion-wait", 10*time.Second, "how long to poll /metrics for -min-promotions / -min-native-compiles")
		min429        = flag.Int("min-429", 0, "fail unless at least this many requests were shed with 429")
		assertPool    = flag.Bool("assert-pool-moves", false, "fail unless selfserved_pool_in_use rises above zero during the run (pool gauges must track live occupancy, not config)")
		quiet         = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("selfload: ")

	endpoint, body, err := buildBody(*expr, *entry, *args, *benchName, *deadlineMS)
	if err != nil {
		log.Fatal(err)
	}
	url := strings.TrimRight(*base, "/") + endpoint

	client := &http.Client{}
	for i := 0; i < *warmup; i++ {
		code, res, err := post(client, url, body)
		if err != nil {
			log.Fatalf("warm-up: %v", err)
		}
		if code != 200 {
			log.Fatalf("warm-up: status %d (%s)", code, errText(res))
		}
	}
	missesBefore := int64(-1)
	if *assertOnce {
		missesBefore = scrapeCounter(client, *base, "selfgo_codecache_misses_total")
	}

	var (
		issued  atomic.Int64
		mu      sync.Mutex
		lats    []time.Duration
		codes   = map[int]int{}
		badInts int
	)
	// Pool-occupancy watcher: the in-use gauge is only nonzero while a
	// request is actually on a worker, so it has to be sampled during
	// the run, not after.
	var poolMax atomic.Int64
	poolDone := make(chan struct{})
	if *assertPool {
		go func() {
			c := &http.Client{}
			for {
				select {
				case <-poolDone:
					return
				default:
				}
				if v := scrapeCounter(c, *base, "selfserved_pool_in_use"); v > poolMax.Load() {
					poolMax.Store(v)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &http.Client{}
			for issued.Add(1) <= int64(*total) {
				t0 := time.Now()
				code, res, err := post(c, url, body)
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					codes[-1]++
				} else {
					codes[code]++
					lats = append(lats, lat)
					if code == 200 && *hasExpect && (res == nil || res.Int != *expectInt) {
						badInts++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(poolDone)

	done := 0
	for _, n := range codes {
		done += n
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if !*quiet {
		fmt.Printf("target      %s\n", url)
		fmt.Printf("requests    %d in %v (%.1f req/s, c=%d)\n",
			done, wall.Round(time.Millisecond), float64(done)/wall.Seconds(), *conc)
		keys := make([]int, 0, len(codes))
		for k := range codes {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			label := strconv.Itoa(k)
			if k == -1 {
				label = "transport error"
			}
			fmt.Printf("  status %-16s %d\n", label, codes[k])
		}
		if len(lats) > 0 {
			fmt.Printf("latency     p50 %v  p90 %v  p99 %v  max %v\n",
				quantile(lats, 0.50), quantile(lats, 0.90),
				quantile(lats, 0.99), lats[len(lats)-1])
		}
	}
	fmt.Printf("selfload: %d requests, %d ok, %d shed, %.1f req/s\n",
		done, codes[200], codes[429], float64(done)/wall.Seconds())

	fail := false
	if *hasExpect && badInts > 0 {
		log.Printf("FAIL: %d responses had the wrong int value (want %d)", badInts, *expectInt)
		fail = true
	}
	if *failErr {
		for code, n := range codes {
			if code != 200 && code != 429 {
				log.Printf("FAIL: %d requests answered %d", n, code)
				fail = true
			}
		}
	}
	if *min429 > 0 && codes[429] < *min429 {
		log.Printf("FAIL: %d responses were 429, want >= %d", codes[429], *min429)
		fail = true
	}
	if *assertPool {
		if poolMax.Load() < 1 {
			log.Print("FAIL: selfserved_pool_in_use never rose above zero under load")
			fail = true
		} else if !*quiet {
			fmt.Printf("pool occupancy moved: peak in-use %d\n", poolMax.Load())
		}
	}
	if *assertOnce {
		missesAfter := scrapeCounter(client, *base, "selfgo_codecache_misses_total")
		if missesBefore < 0 || missesAfter < 0 {
			log.Print("FAIL: could not scrape selfgo_codecache_misses_total")
			fail = true
		} else if missesAfter != missesBefore {
			log.Printf("FAIL: compile-once violated — codecache misses grew %d -> %d during steady load",
				missesBefore, missesAfter)
			fail = true
		} else if !*quiet {
			fmt.Printf("compile-once held: codecache misses stable at %d\n", missesAfter)
		}
	}
	if *minPromotions > 0 {
		// Promotions land on background goroutines; give them a moment
		// after the last response instead of sampling a race.
		deadline := time.Now().Add(*promotionWait)
		var got int64
		for {
			got = scrapeCounter(client, *base, "selfgo_promotions_installed_total")
			if got >= *minPromotions || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if got < *minPromotions {
			log.Printf("FAIL: %d promotions installed, want >= %d", got, *minPromotions)
			fail = true
		} else if !*quiet {
			fmt.Printf("promotions installed: %d\n", got)
		}
	}
	if *minNative > 0 {
		// Same deal one rung up: second-rung promotions recompile at
		// the native tier on background goroutines.
		const series = `selfgo_compiles_total{tier="native"}`
		deadline := time.Now().Add(*promotionWait)
		var got int64
		for {
			got = scrapeCounter(client, *base, series)
			if got >= *minNative || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if got < *minNative {
			log.Printf("FAIL: %d native-tier compiles, want >= %d", got, *minNative)
			fail = true
		} else if !*quiet {
			fmt.Printf("native-tier compiles: %d\n", got)
		}
	}
	if fail {
		os.Exit(1)
	}
}

// buildBody assembles the request body from the flag combination.
func buildBody(expr, entry, args, benchName string, deadlineMS int64) (endpoint, body string, err error) {
	set := 0
	for _, s := range []string{expr, entry, benchName} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return "", "", fmt.Errorf("exactly one of -expr, -entry or -bench is required")
	}
	if benchName != "" {
		req := wire.RunRequest{Bench: benchName, DeadlineMS: deadlineMS}
		b, err := json.Marshal(req)
		return "/run", string(b), err
	}
	req := wire.EvalRequest{Expr: expr, Entry: entry, DeadlineMS: deadlineMS}
	if args != "" {
		for _, a := range strings.Split(args, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
			if err != nil {
				return "", "", fmt.Errorf("bad -args: %v", err)
			}
			req.Args = append(req.Args, n)
		}
	}
	b, err := json.Marshal(req)
	return "/eval", string(b), err
}

func post(c *http.Client, url, body string) (int, *wire.Result, error) {
	resp, err := c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var res wire.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return resp.StatusCode, nil, nil // non-JSON body (e.g. plain 404): status still counts
	}
	return resp.StatusCode, &res, nil
}

func errText(res *wire.Result) string {
	if res == nil || res.Error == nil {
		return "no error body"
	}
	return res.Error.Kind + ": " + res.Error.Message
}

// scrapeCounter fetches one counter from /metrics — name may be a bare
// metric or a fully-labelled series like `x_total{tier="native"}`; -1
// means the scrape or the metric was missing.
func scrapeCounter(c *http.Client, base, name string) int64 {
	resp, err := c.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			return -1
		}
		return int64(v)
	}
	return -1
}

// quantile reads the q-th quantile from sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(time.Microsecond)
}
