// Command selfc compiles selfgo source and shows what the compiler
// did: the optimized control flow graph (the artifact drawn in the
// paper's figures), the assembled bytecode, and the per-method
// statistics (splits, loop iterations, removed checks).
//
// Usage:
//
//	selfc [-config new|new-multi|new-ext|old89|old90|st80|c] [-types] [-dump cfg|dot|code|stats] file.self selector...
//	selfc -e 'triangleNumber: n = ( ... ).' triangleNumber:
//
// With no selectors, every method defined at the top level of the file
// is compiled.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"selfgo"
	"selfgo/internal/ast"
	"selfgo/internal/cli"
	"selfgo/internal/parser"
)

func main() {
	configName := flag.String("config", "new", "compiler: new, new-multi, old89, old90, st80, c")
	dump := flag.String("dump", "cfg", "comma-separated: cfg, dot, code, stats")
	expr := flag.String("e", "", "inline source instead of a file")
	annotate := flag.Bool("types", false, "annotate the CFG with incoming operand types")
	flag.Parse()

	cfg, err := cli.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	cfg.AnnotateTypes = *annotate

	src := *expr
	args := flag.Args()
	if src == "" {
		if len(args) == 0 {
			fatal(fmt.Errorf("usage: selfc [flags] file.self [selector...] (or -e 'source')"))
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			fatal(err)
		}
		src = string(data)
		args = args[1:]
	}

	sys, err := selfgo.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	if err := sys.LoadSource(src); err != nil {
		fatal(err)
	}

	selectors := args
	if len(selectors) == 0 {
		selectors = topLevelMethods(src)
	}
	wantCfg := strings.Contains(*dump, "cfg")
	wantDot := strings.Contains(*dump, "dot")
	wantCode := strings.Contains(*dump, "code")
	wantStats := strings.Contains(*dump, "stats")

	for _, sel := range selectors {
		fmt.Printf("=== %s (%s) ===\n", sel, cfg.Name)
		g, st, err := sys.GraphFor(sel)
		if err != nil {
			fatal(err)
		}
		if wantCfg {
			fmt.Print(g.Dump())
		}
		if wantDot {
			fmt.Print(g.DOT())
		}
		if wantCode {
			code, err := sys.CodeFor(sel)
			if err != nil {
				fatal(err)
			}
			fmt.Print(code.Disasm())
		}
		if wantStats {
			gs := g.ComputeStats()
			fmt.Printf("compile: %v\n", st.Duration)
			fmt.Printf("nodes=%d sends=%d calls=%d typeTests=%d ovflChecks=%d boundsChecks=%d loopVersions=%d\n",
				gs.Nodes, gs.Sends, gs.Calls, gs.TypeTests, gs.OverflowChecks, gs.BoundsChecks, gs.LoopVersions)
			fmt.Printf("inlined=%d foldedPrims=%d removedTests=%d removedOvfl=%d splits=%d forcedMerges=%d loopIterations=%d\n",
				st.InlinedMethods, st.FoldedPrims, st.RemovedTests, st.RemovedOvfl, st.Splits, st.ForcedMerges, st.LoopIterations)
		}
		fmt.Println()
	}
}

// topLevelMethods lists the method slots defined by the user's source
// (not the prelude's).
func topLevelMethods(src string) []string {
	f, err := parser.ParseFile(src)
	if err != nil {
		fatal(err)
	}
	var out []string
	for _, s := range f.Slots {
		if s.Kind == ast.MethodSlot {
			out = append(out, s.Name)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selfc:", err)
	os.Exit(1)
}
