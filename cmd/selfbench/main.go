// Command selfbench regenerates the performance tables of Chambers &
// Ungar (PLDI'90) §6 and Appendices A-C on the selfgo reproduction.
//
// Usage:
//
//	selfbench                          # every table
//	selfbench -table speed-summary     # §6.1 speed table
//	selfbench -table compile-summary   # §6.2/§6.3 compile time & code size
//	selfbench -table speed             # Appendix A
//	selfbench -table size              # Appendix B
//	selfbench -table compile           # Appendix C
//	selfbench -table ablation          # per-technique ablation
//	selfbench -table guard             # §6.1 guard records (JSON) for BENCH_*.json
//	selfbench -bench richards          # one benchmark across all systems
//	selfbench -workers 8               # concurrent VMs against one shared code cache
//	selfbench -hostbench               # host wall-clock speed (BENCH_host.json schema)
//	selfbench -tier adaptive -promote 50 -bench richards   # adaptive-mode measurement
//	selfbench -tier native -bench richards                 # eager closure-threaded backend
//	selfbench -list                    # list benchmarks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"selfgo"
	"selfgo/internal/bench"
	"selfgo/internal/cli"
)

func main() {
	table := flag.String("table", "all", "table to print: all, speed-summary, compile-summary, speed, size, compile, ablation, strategy, guard, json")
	one := flag.String("bench", "", "run a single benchmark across every system")
	list := flag.Bool("list", false, "list benchmarks and exit")
	quiet := flag.Bool("q", false, "suppress progress output")
	workers := flag.Int("workers", 0, "run benchmarks on N concurrent VMs sharing one code cache")
	reps := flag.Int("reps", 4, "with -workers: benchmark runs per worker")
	configName := flag.String("config", "new", "compiler config (new, new-multi, old89, old90, st80, c); used by -workers and -hostbench")
	tierName := flag.String("tier", "opt", "tier schedule: opt (eager optimizing), baseline, adaptive, native (eager closure-threaded backend)")
	strategyName := flag.String("strategy", "split", "specialization strategy for -workers/-hostbench/-bench/-tier runs: split, bbv, both")
	promote := flag.Int64("promote", 0, "adaptive promotion threshold (invocations+backedges; 0 = default)")
	assertPromoted := flag.Bool("assert-promoted", false, "with -tier adaptive: exit nonzero unless every measured benchmark installs >= 1 promotion")
	assertNative := flag.Bool("assert-native", false, "with -tier adaptive: exit nonzero unless every measured benchmark climbs the second rung (>= 1 native-tier compile)")
	timeout := flag.Duration("timeout", 0, "with -workers: wall-clock limit per benchmark measurement (e.g. 30s)")
	fuel := flag.Int64("fuel", 0, "with -workers: instruction budget per benchmark run")
	hostbench := flag.Bool("hostbench", false, "measure host wall-clock speed per benchmark and print BENCH_host.json to stdout")
	hostbase := flag.String("hostbase", "", "with -hostbench: previous BENCH_host.json to carry as baseline and compute the geomean speedup against")
	allocguard := flag.String("allocguard", "", "with -hostbench: committed BENCH_host.json to guard against — exit nonzero if allocsPerOp or bytesPerOp regress more than 10% on matching records")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	strat, err := selfgo.StrategyByName(*strategyName)
	if err != nil {
		fatal(err)
	}
	// loadCfg resolves -config with -strategy applied (and the name
	// suffixed so strategy-distinct runs never collide in caches or
	// output labels).
	loadCfg := func() (selfgo.Config, error) {
		cfg, err := cli.ConfigByName(*configName)
		if err != nil {
			return cfg, err
		}
		if strat != selfgo.StrategySplit {
			cfg.Strategy = strat
			cfg.Name = fmt.Sprintf("%s (%s)", cfg.Name, strat)
		}
		return cfg, nil
	}

	if *list {
		for _, b := range bench.All() {
			safe := ""
			if b.ParallelSafe {
				safe = " parallel-safe"
			}
			fmt.Printf("%-12s [%s]%s\n", b.Name, b.Group, safe)
		}
		return
	}

	if *workers > 0 {
		cfg, err := loadCfg()
		if err != nil {
			fatal(err)
		}
		lim := bench.Limits{Timeout: *timeout, Budget: selfgo.Budget{MaxInstrs: *fuel}}
		if err := runWorkers(cfg, *workers, *reps, *one, lim); err != nil {
			fatal(err)
		}
		return
	}

	mode, err := selfgo.TierModeByName(*tierName)
	if err != nil {
		fatal(err)
	}

	if *hostbench {
		cfg, err := loadCfg()
		if err != nil {
			fatal(err)
		}
		if err := runHostBench(cfg, mode, *promote, *one, *hostbase, *allocguard, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	if mode != selfgo.ModeOpt {
		cfg, err := loadCfg()
		if err != nil {
			fatal(err)
		}
		if err := runTiered(cfg, mode, *promote, *one, *assertPromoted, *assertNative, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	r := bench.NewRunner()
	if !*quiet {
		r.Progress = os.Stderr
	}

	if *one != "" {
		b, ok := bench.ByName(*one)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q (try -list)", *one))
		}
		fmt.Printf("%s [%s]\n", b.Name, b.Group)
		fmt.Printf("%-32s %12s %10s %10s %10s %12s %10s\n",
			"system", "cycles", "sends", "tests", "ovfl", "compile", "code kB")
		for _, cfg := range selfgo.Configs() {
			m, err := r.Get(b, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-32s %12d %10d %10d %10d %12s %9.1f\n",
				cfg.Name, m.Cycles, m.Run.Sends, m.Run.TypeTests, m.Run.OvflChecks,
				m.CompileTime.Round(10*time.Microsecond), float64(m.CodeBytes)/1024)
		}
		return
	}

	emit := func(f func() (*bench.Table, error)) {
		t, err := f()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.String())
	}
	switch *table {
	case "guard":
		recs, err := r.GuardRecords()
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case "json":
		data, err := r.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case "all":
		out, err := r.AllTables()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	case "speed-summary":
		emit(r.SpeedSummaryTable)
	case "compile-summary":
		emit(r.CompileSummaryTable)
	case "speed":
		emit(r.SpeedTable)
	case "size":
		emit(r.CodeSizeTable)
	case "compile":
		emit(r.CompileTimeTable)
	case "ablation":
		emit(r.AblationTable)
	case "strategy":
		emit(r.StrategyTable)
	default:
		fatal(fmt.Errorf("unknown table %q", *table))
	}
}

// runWorkers runs the parallel-safe benchmarks (or the one named by
// filter) on `workers` concurrent VMs sharing a single world and code
// cache, printing throughput and the shared cache's counters. It fails
// if any run computes a wrong value or if any (method, receiver map)
// customization was compiled more than once — the single-flight
// compile-once guarantee, asserted from the cache counters.
func runWorkers(cfg selfgo.Config, workers, reps int, filter string, lim bench.Limits) error {
	benches := bench.ParallelSafe()
	if filter != "" {
		b, ok := bench.ByName(filter)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", filter)
		}
		benches = []bench.Benchmark{b}
	}
	fmt.Printf("concurrent benchmarks: %d workers x %d reps, config %q, shared code cache\n\n", workers, reps, cfg.Name)
	fmt.Printf("%-12s %12s %10s %10s %8s %8s %8s %8s %8s %14s\n",
		"benchmark", "value", "wall ms", "runs/s", "compiled", "hits", "misses", "waits", "evicted", "compile-once")
	bad := false
	for _, b := range benches {
		m, err := bench.RunConcurrentLimits(b, cfg, workers, reps, lim)
		if err != nil {
			return err
		}
		once := "OK"
		if !m.CompileOnce() {
			once = "VIOLATED"
			bad = true
		}
		fmt.Printf("%-12s %12d %10.1f %10.0f %8d %8d %8d %8d %8d %14s\n",
			m.Bench, m.Value, float64(m.Elapsed)/float64(time.Millisecond), m.RunsPerSec(),
			m.Methods, m.Cache.Hits, m.Cache.Misses, m.Cache.Waits, m.Cache.Evicted, once)
	}
	if bad {
		return fmt.Errorf("compile-once violated: some customization was compiled more than once")
	}
	fmt.Printf("\ncompile-once holds: every (method, receiver map) customization was compiled exactly once.\n")
	return nil
}

// runTiered measures every benchmark (or the one named by filter)
// under a non-default tier schedule, printing the cold-vs-steady
// modelled cost and the promotion activity. With assertPromoted, it
// fails unless each measured benchmark installed at least one
// promotion; with assertNative, unless each climbed all the way to the
// native tier — the CI smoke checks for adaptive mode.
func runTiered(cfg selfgo.Config, mode selfgo.TierMode, threshold int64, filter string, assertPromoted, assertNative, quiet bool) error {
	benches := bench.All()
	if filter != "" {
		b, ok := bench.ByName(filter)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", filter)
		}
		benches = []bench.Benchmark{b}
	}
	if !quiet {
		fmt.Printf("tier schedule %q, config %q, promotion threshold %d\n\n", mode, cfg.Name, threshold)
	}
	fmt.Printf("%-12s %12s %14s %14s %10s %8s %10s %10s %12s\n",
		"benchmark", "value", "cold cycles", "steady cycles", "promoted", "native", "fails", "discards", "mean promote")
	for _, b := range benches {
		m, err := bench.RunTiered(b, cfg, mode, threshold)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %14d %14d %10d %8d %10d %10d %12s\n",
			m.Bench, m.Value, m.FirstRun.Cycles, m.SteadyRun.Cycles,
			m.Promotions.Installed, m.TierCounts["native"], m.Promotions.Fails, m.Promotions.Discards,
			m.Promotions.MeanLatency.Round(time.Microsecond))
		if assertPromoted && mode == selfgo.ModeAdaptive && m.Promotions.Installed < 1 {
			return fmt.Errorf("%s: adaptive run installed no promotions (RunStats promotions=%d)",
				m.Bench, m.FirstRun.Promotions)
		}
		if assertNative && mode == selfgo.ModeAdaptive && m.TierCounts["native"] < 1 {
			return fmt.Errorf("%s: adaptive run never reached the native tier (tier counts %v)",
				m.Bench, m.TierCounts)
		}
	}
	return nil
}

// runHostBench measures host wall-clock speed (ns/op, guest-instrs/s,
// Go allocs/op) for every benchmark — or just the one named by filter —
// under cfg, and prints a BENCH_host.json document to stdout. With
// basePath, the previous file's records ride along as the baseline and
// the geomean guest-instrs/sec speedup against them is computed. With
// guardPath, the measurements are additionally checked against that
// file's records and the run fails on a >10% allocation regression.
func runHostBench(cfg selfgo.Config, mode selfgo.TierMode, threshold int64, filter, basePath, guardPath string, quiet bool) error {
	benches := bench.All()
	if filter != "" {
		b, ok := bench.ByName(filter)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", filter)
		}
		benches = []bench.Benchmark{b}
	}
	var progress func(r *bench.HostRecord)
	if !quiet {
		progress = func(r *bench.HostRecord) {
			fmt.Fprintf(os.Stderr, "%-12s %-12s %12d ns/op %10.2f Mginstrs/s %6d allocs/op\n",
				r.Bench, r.Config, r.NsPerOp, r.GuestMInstrsPerSec, r.AllocsPerOp)
		}
	}
	// The eager records are always measured (they are the pinned
	// comparison point); a non-default tier schedule rides along as a
	// second record set, so the file tracks adaptive vs eager speed on
	// the same build.
	recs, err := bench.HostBench(cfg, benches, progress)
	if err != nil {
		return err
	}
	if mode != selfgo.ModeOpt {
		tiered, err := bench.HostBenchMode(cfg, benches, mode, threshold, progress)
		if err != nil {
			return err
		}
		recs = append(recs, tiered...)
	}
	out := bench.HostFile{
		Note:    "host wall-clock speed; modelled quantities are pinned separately by BENCH_guard.json",
		Records: recs,
	}
	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return err
		}
		var prev bench.HostFile
		if err := json.Unmarshal(data, &prev); err != nil {
			return fmt.Errorf("%s: %w", basePath, err)
		}
		out.Baseline = prev.Records
		out.GeomeanSpeedup = bench.HostGeomeanSpeedup(prev.Records, recs)
	}
	if guardPath != "" {
		data, err := os.ReadFile(guardPath)
		if err != nil {
			return err
		}
		var pinned bench.HostFile
		if err := json.Unmarshal(data, &pinned); err != nil {
			return fmt.Errorf("%s: %w", guardPath, err)
		}
		if err := bench.HostAllocGuard(pinned.Records, recs); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfbench:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "selfbench:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selfbench:", err)
	os.Exit(1)
}
