// Command selfbench regenerates the performance tables of Chambers &
// Ungar (PLDI'90) §6 and Appendices A-C on the selfgo reproduction.
//
// Usage:
//
//	selfbench                          # every table
//	selfbench -table speed-summary     # §6.1 speed table
//	selfbench -table compile-summary   # §6.2/§6.3 compile time & code size
//	selfbench -table speed             # Appendix A
//	selfbench -table size              # Appendix B
//	selfbench -table compile           # Appendix C
//	selfbench -table ablation          # per-technique ablation
//	selfbench -bench richards          # one benchmark across all systems
//	selfbench -list                    # list benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"selfgo"
	"selfgo/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to print: all, speed-summary, compile-summary, speed, size, compile, ablation, json")
	one := flag.String("bench", "", "run a single benchmark across every system")
	list := flag.Bool("list", false, "list benchmarks and exit")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-12s [%s]\n", b.Name, b.Group)
		}
		return
	}

	r := bench.NewRunner()
	if !*quiet {
		r.Progress = os.Stderr
	}

	if *one != "" {
		b, ok := bench.ByName(*one)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q (try -list)", *one))
		}
		fmt.Printf("%s [%s]\n", b.Name, b.Group)
		fmt.Printf("%-32s %12s %10s %10s %10s %12s %10s\n",
			"system", "cycles", "sends", "tests", "ovfl", "compile", "code kB")
		for _, cfg := range selfgo.Configs() {
			m, err := r.Get(b, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-32s %12d %10d %10d %10d %12s %9.1f\n",
				cfg.Name, m.Cycles, m.Run.Sends, m.Run.TypeTests, m.Run.OvflChecks,
				m.CompileTime.Round(10*time.Microsecond), float64(m.CodeBytes)/1024)
		}
		return
	}

	emit := func(f func() (*bench.Table, error)) {
		t, err := f()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.String())
	}
	switch *table {
	case "json":
		data, err := r.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case "all":
		out, err := r.AllTables()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	case "speed-summary":
		emit(r.SpeedSummaryTable)
	case "compile-summary":
		emit(r.CompileSummaryTable)
	case "speed":
		emit(r.SpeedTable)
	case "size":
		emit(r.CodeSizeTable)
	case "compile":
		emit(r.CompileTimeTable)
	case "ablation":
		emit(r.AblationTable)
	default:
		fatal(fmt.Errorf("unknown table %q", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selfbench:", err)
	os.Exit(1)
}
