// selfserved is the Self-program daemon: it keeps one shared world and
// code cache warm behind an HTTP/JSON API, so programs compile once and
// run many times across requests and connections.
//
// Endpoints:
//
//	POST /eval     run an expression or a lobby selector (JSON body)
//	POST /run      run a preloaded named benchmark
//	GET  /metrics  Prometheus text exposition
//	GET  /healthz  liveness (200 while the process serves)
//	GET  /readyz   readiness (503 while warming from an image or once draining)
//	GET  /statusz  human-readable JSON status
//
// SIGINT/SIGTERM starts a graceful drain: readiness flips, new work is
// refused, in-flight requests finish (bounded by -drain-timeout), then
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selfgo"
	"selfgo/internal/cli"
	"selfgo/internal/server"
	"selfgo/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8673", "listen address (use :0 for an ephemeral port)")
		cfgName  = flag.String("config", "new", "compiler configuration: "+strings.Join(cli.Names(), ", "))
		tier     = flag.String("tier", "opt", "tier schedule: opt, baseline, adaptive or native")
		promote  = flag.Int64("promote", 0, "adaptive promotion threshold (0 = default)")
		strategy = flag.String("strategy", "split", "specialization strategy: split, bbv or both")

		pool  = flag.Int("pool", 4, "worker VMs sharing the world and code cache")
		queue = flag.Int("queue", 16, "admission queue depth before shedding with 429")

		maxInstrs   = flag.Int64("max-instrs", 0, "per-request instruction cap (0 = server default)")
		maxAllocs   = flag.Int64("max-allocs", 0, "per-request allocation cap (0 = server default)")
		maxDepth    = flag.Int("max-depth", 0, "per-request stack depth cap (0 = server default)")
		maxBytes    = flag.Int64("max-bytes", 0, "per-request cap on modelled vector/clone storage bytes (0 = server default)")
		deadline    = flag.Duration("deadline", 10*time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 60*time.Second, "largest per-request deadline honored")
		pollEvery   = flag.Int64("poll-every", 0, "budget/cancellation poll stride (0 = VM default)")

		benches      = flag.String("benches", "all", `benchmarks preloaded for /run: "all" (parallel-safe set), "none", or a comma list`)
		maxPrograms  = flag.Int("max-programs", 0, "lifetime cap on distinct loaded programs (0 = default)")
		maxExprs     = flag.Int("max-eval-programs", 0, "interned eval-expression LRU size (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")

		imagePath = flag.String("image", "", "boot the world from this saved image instead of cold-loading (readyz holds until pre-promotion finishes)")
		saveImage = flag.String("save-image", "", "after a graceful drain, save the world to this image file before exiting")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("selfserved: ")

	cfg, err := cli.ConfigByName(*cfgName)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := selfgo.StrategyByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Strategy = strat
	mode, err := selfgo.TierModeByName(*tier)
	if err != nil {
		log.Fatal(err)
	}
	scfg := server.Config{
		Compiler:         cfg,
		Mode:             mode,
		PromoteThreshold: *promote,
		Pool:             *pool,
		QueueDepth:       *queue,
		MaxInstrs:        *maxInstrs,
		MaxAllocs:        *maxAllocs,
		MaxDepth:         *maxDepth,
		MaxBytes:         *maxBytes,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		PollEvery:        *pollEvery,
		Limits:           wire.Limits{},
		MaxPrograms:      *maxPrograms,
		MaxEvalPrograms:  *maxExprs,
		ImagePath:        *imagePath,
	}
	switch *benches {
	case "all":
		// nil selects every parallel-safe benchmark.
	case "none", "":
		scfg.Benches = []string{}
	default:
		scfg.Benches = strings.Split(*benches, ",")
	}

	t0 := time.Now()
	s, err := server.New(scfg)
	if err != nil {
		log.Fatal(err)
	}
	if b := s.Boot(); b.Image != "cold" {
		log.Printf("booted from image %s (restore %.2fms); pre-promoting code cache in background",
			b.Image, b.RestoreSeconds*1000)
	}
	log.Printf("world ready in %v (config %s, tier %s, pool %d, queue %d)",
		time.Since(t0).Round(time.Millisecond), cfg.Name, mode, *pool, *queue)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The ci smoke (and anything else scripting us) parses this line
	// to learn the ephemeral port.
	log.Printf("listening on http://%s", ln.Addr())

	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("signal received, draining (in flight: %d)", s.InFlight())
		s.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain timed out: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly: %d served, %d completed during drain", s.Served(), s.DrainedOK())
		if *saveImage != "" {
			info, err := s.SaveImage(*saveImage)
			if err != nil {
				log.Printf("save-image failed: %v", err)
				os.Exit(1)
			}
			log.Printf("saved image %s: %d bytes, %d sources, %d programs, %d objects, %d manifest entries (%d skipped)",
				info.Hash, info.Bytes, info.Sources, info.Programs, info.Objects, info.Manifest, info.Skipped)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "selfserved: bye")
}
