// Command selfrun loads selfgo source files and runs a method on the
// lobby, reporting the result and the dynamic cost statistics.
//
// Usage:
//
//	selfrun [-config new] [-args 1,2,3] [-stats] file.self... selector
//	selfrun -e '| s <- 0 | 1 to: 10 Do: [ :i | s: s + i ]. s'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"selfgo"
	"selfgo/internal/cli"
)

func main() {
	configName := flag.String("config", "new", "compiler: new, new-multi, old89, old90, st80, c")
	expr := flag.String("e", "", "evaluate an expression sequence instead of calling a selector")
	argList := flag.String("args", "", "comma-separated integer arguments for the selector")
	stats := flag.Bool("stats", false, "print run statistics")
	flag.Parse()

	cfg, err := cli.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	sys, err := selfgo.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}

	files := flag.Args()
	var sel string
	if *expr == "" {
		if len(files) < 2 {
			fatal(fmt.Errorf("usage: selfrun [flags] file.self... selector (or -e 'code')"))
		}
		sel, files = files[len(files)-1], files[:len(files)-1]
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		if err := sys.LoadSource(string(data)); err != nil {
			fatal(fmt.Errorf("%s: %w", f, err))
		}
	}

	var res *selfgo.Result
	if *expr != "" {
		res, err = sys.Eval(*expr)
	} else {
		var args []selfgo.Value
		if *argList != "" {
			for _, a := range strings.Split(*argList, ",") {
				n, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
				if err != nil {
					fatal(fmt.Errorf("bad argument %q: %w", a, err))
				}
				args = append(args, selfgo.IntValue(n))
			}
		}
		res, err = sys.Call(sel, args...)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Println(res.Value)
	if *stats {
		fmt.Printf("cycles=%d instrs=%d sends=%d (ic hits=%d misses=%d) calls=%d\n",
			res.Run.Cycles, res.Run.Instrs, res.Run.Sends, res.Run.ICHits, res.Run.ICMisses, res.Run.Calls)
		fmt.Printf("typeTests=%d ovflChecks=%d boundsChecks=%d blockValues=%d allocs=%d maxDepth=%d\n",
			res.Run.TypeTests, res.Run.OvflChecks, res.Run.BoundsChecks, res.Run.BlockValues, res.Run.Allocs, res.Run.MaxDepth)
		fmt.Printf("compiled %d methods, %d code bytes, in %v\n",
			res.Compile.Methods, res.Compile.CodeBytes, res.CompileTime.Round(time.Microsecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selfrun:", err)
	os.Exit(1)
}
