// Command selfrun loads selfgo source files and runs a method on the
// lobby, reporting the result and the dynamic cost statistics.
//
// Usage:
//
//	selfrun [-config new] [-args 1,2,3] [-stats] file.self... selector
//	selfrun -workers 8 file.self... selector   # N concurrent VMs, shared code cache
//	selfrun -tier adaptive -promote 100 -stats file.self... selector
//	selfrun -e '| s <- 0 | 1 to: 10 Do: [ :i | s: s + i ]. s'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"selfgo"
	"selfgo/internal/cli"
	"selfgo/internal/wire"
)

func main() {
	configName := flag.String("config", "new", "compiler: new, new-multi, old89, old90, st80, c")
	tierName := flag.String("tier", "opt", "tier schedule: opt (eager optimizing), baseline, adaptive, native (eager closure-threaded backend)")
	strategyName := flag.String("strategy", "split", "specialization strategy: split (iterative analysis + splitting), bbv (lazy basic-block versioning), both")
	promote := flag.Int64("promote", 0, "adaptive promotion threshold (invocations+backedges; 0 = default)")
	expr := flag.String("e", "", "evaluate an expression sequence instead of calling a selector")
	argList := flag.String("args", "", "comma-separated integer arguments for the selector")
	stats := flag.Bool("stats", false, "print run statistics")
	jsonOut := flag.Bool("json", false, "print the result as JSON (the same encoding selfserved responses use)")
	workers := flag.Int("workers", 0, "run the selector on N concurrent VMs sharing one code cache")
	timeout := flag.Duration("timeout", 0, "abort the run after this wall-clock duration (e.g. 5s)")
	fuel := flag.Int64("fuel", 0, "abort the run after this many interpreted instructions")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	cfg, err := cli.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	strat, err := selfgo.StrategyByName(*strategyName)
	if err != nil {
		fatal(err)
	}
	cfg.Strategy = strat
	mode, err := selfgo.TierModeByName(*tierName)
	if err != nil {
		fatal(err)
	}
	var sys *selfgo.System
	if *workers > 0 {
		if *expr != "" {
			fatal(fmt.Errorf("-workers runs a selector; it cannot be combined with -e"))
		}
		sys, err = selfgo.NewTieredSystem(cfg, mode, *promote)
	} else if mode != selfgo.ModeOpt {
		sys, err = selfgo.NewTieredSystem(cfg, mode, *promote)
	} else {
		sys, err = selfgo.NewSystem(cfg)
	}
	if err != nil {
		fatal(err)
	}

	files := flag.Args()
	var sel string
	if *expr == "" {
		if len(files) < 2 {
			fatal(fmt.Errorf("usage: selfrun [flags] file.self... selector (or -e 'code')"))
		}
		sel, files = files[len(files)-1], files[:len(files)-1]
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		if err := sys.LoadSource(string(data)); err != nil {
			fatal(fmt.Errorf("%s: %w", f, err))
		}
	}

	var args []selfgo.Value
	if *argList != "" {
		for _, a := range strings.Split(*argList, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad argument %q: %w", a, err))
			}
			args = append(args, selfgo.IntValue(n))
		}
	}

	if *fuel > 0 {
		sys.SetBudget(selfgo.Budget{MaxInstrs: *fuel})
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *workers > 0 {
		if *jsonOut {
			fatal(fmt.Errorf("-json reports a single run; it cannot be combined with -workers"))
		}
		if err := runWorkers(ctx, sys, *workers, sel, args, *stats); err != nil {
			fatal(err)
		}
		return
	}

	var res *selfgo.Result
	if *expr != "" {
		res, err = sys.EvalCtx(ctx, *expr)
	} else {
		res, err = sys.CallCtx(ctx, sel, args...)
	}
	if err != nil {
		if *jsonOut {
			out := &wire.Result{Error: wire.NewError(err)}
			_ = out.Encode(os.Stdout)
			os.Exit(1)
		}
		fatal(err)
	}

	if *jsonOut {
		out := wire.NewResult(res.Value, res.Run, res.Compile, res.CompileTime)
		out.TierMode = sys.Mode.String()
		if sys.Mode == selfgo.ModeAdaptive {
			sys.DrainPromotions()
			ps := sys.PromotionStats()
			out.Tiers = sys.TierCounts()
			out.Promotions = &wire.PromotionsJSON{
				Installed: ps.Installed, Fails: ps.Fails, Discards: ps.Discards,
				MeanLatencyMS: float64(ps.MeanLatency) / float64(time.Millisecond),
			}
		}
		if err := out.Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println(res.Value)
	if *stats {
		fmt.Printf("cycles=%d instrs=%d sends=%d (ic hits=%d misses=%d) calls=%d\n",
			res.Run.Cycles, res.Run.Instrs, res.Run.Sends, res.Run.ICHits, res.Run.ICMisses, res.Run.Calls)
		fmt.Printf("typeTests=%d ovflChecks=%d boundsChecks=%d blockValues=%d allocs=%d maxDepth=%d\n",
			res.Run.TypeTests, res.Run.OvflChecks, res.Run.BoundsChecks, res.Run.BlockValues, res.Run.Allocs, res.Run.MaxDepth)
		if res.Run.BBVVersions > 0 || res.Run.BBVCapHits > 0 {
			fmt.Printf("bbv: versions=%d capHits=%d elided(ctx)=%d elided(shape)=%d versionBytes=%d\n",
				res.Run.BBVVersions, res.Run.BBVCapHits, res.Run.BBVElidedCtx, res.Run.BBVElidedShape, res.Run.BBVVersionBytes)
		}
		fmt.Printf("compiled %d methods, %d code bytes, in %v",
			res.Compile.Methods, res.Compile.CodeBytes, res.CompileTime.Round(time.Microsecond))
		if res.Compile.Degraded > 0 {
			fmt.Printf(" (%d degraded)", res.Compile.Degraded)
		}
		fmt.Println()
		if sys.Mode == selfgo.ModeAdaptive {
			sys.DrainPromotions()
			ps := sys.PromotionStats()
			tiers := sys.TierCounts()
			fmt.Printf("adaptive: harvests=%d promotions=%d installed=%d fails=%d discards=%d meanLatency=%v compiles=[baseline %d, optimizing %d, native %d, degraded %d]\n",
				res.Run.Harvests, res.Run.Promotions, ps.Installed, ps.Fails, ps.Discards,
				ps.MeanLatency.Round(time.Microsecond),
				tiers["baseline"], tiers["optimizing"], tiers["native"], tiers["degraded"])
		}
	}
}

// runWorkers calls sel on n concurrent VMs that share root's world and
// code cache, checks that every worker computes the same value, and
// prints it once along with the shared cache's counters. The caller's
// source files must not mutate lobby-level state when run.
func runWorkers(ctx context.Context, root *selfgo.System, n int, sel string, args []selfgo.Value, stats bool) error {
	systems := make([]*selfgo.System, n)
	systems[0] = root
	for i := 1; i < n; i++ {
		var err error
		if systems[i], err = root.Fork(); err != nil {
			return err
		}
	}
	results := make([]*selfgo.Result, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range systems {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[i], errs[i] = systems[i].CallCtx(ctx, sel, args...)
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if results[i].Value.I() != results[0].Value.I() {
			return fmt.Errorf("worker %d computed %v but worker 0 computed %v",
				i, results[i].Value, results[0].Value)
		}
	}
	fmt.Println(results[0].Value)
	if stats {
		st, _ := root.CacheStats()
		fmt.Printf("%d workers in %v; shared cache: %d compiled, %d hits, %d waits, %d evicted, compile-once=%v\n",
			n, elapsed.Round(time.Microsecond), st.Misses, st.Hits, st.Waits, st.Evicted, st.CompileOnce())
		if root.Mode == selfgo.ModeAdaptive {
			root.DrainPromotions()
			ps := root.PromotionStats()
			fmt.Printf("adaptive: promotions installed=%d fails=%d discards=%d meanLatency=%v\n",
				ps.Installed, ps.Fails, ps.Discards, ps.MeanLatency.Round(time.Microsecond))
		}
	}
	return nil
}

func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfrun:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "selfrun:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selfrun:", err)
	os.Exit(1)
}
