// selfrouter is the cluster front door: an HTTP proxy that routes
// selfserved traffic across N replicas by cache affinity, so each
// replica's code cache and tier promotions stay warm for the programs
// it owns (rendezvous hashing of the tenant header or the
// program-identity key derived from the body — see internal/router).
//
// Endpoints:
//
//	POST /eval     proxied to the affinity-chosen replica
//	POST /run      proxied to the affinity-chosen replica
//	GET  /metrics  the ROUTER's own Prometheus exposition
//	GET  /healthz  liveness of the router process
//	GET  /readyz   503 unless at least one replica is healthy
//	GET  /statusz  replica ring, health, per-replica routed counts
//
// Replicas are health-gated on their /readyz; a 429/503/transport
// failure on the first-choice replica fails over once to the next in
// the key's preference list. SIGINT/SIGTERM shuts the listener down
// gracefully.
//
// Quickstart (3 replicas):
//
//	selfserved -addr 127.0.0.1:8701 &
//	selfserved -addr 127.0.0.1:8702 &
//	selfserved -addr 127.0.0.1:8703 &
//	selfrouter -addr 127.0.0.1:8700 \
//	    -replicas http://127.0.0.1:8701,http://127.0.0.1:8702,http://127.0.0.1:8703
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"selfgo/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8700", "listen address (use :0 for an ephemeral port)")
		replicas = flag.String("replicas", "", "comma-separated selfserved base URLs (required)")
		policy   = flag.String("policy", "affinity", "routing policy: affinity (rendezvous-hash the cache key) or random (experimental control)")
		tenant   = flag.String("tenant-header", "X-Tenant", "header that overrides the body-derived affinity key")

		healthEvery   = flag.Duration("health-every", 250*time.Millisecond, "replica /readyz poll interval")
		healthTimeout = flag.Duration("health-timeout", time.Second, "per-probe timeout")
		maxBody       = flag.Int64("max-body", 0, "request body bytes buffered for routing and retry (0 = wire default)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("selfrouter: ")

	if *replicas == "" {
		log.Fatal("-replicas is required (comma-separated base URLs)")
	}
	pol, err := router.PolicyByName(*policy)
	if err != nil {
		log.Fatal(err)
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}

	rt, err := router.New(router.Config{
		Replicas:      urls,
		Policy:        pol,
		TenantHeader:  *tenant,
		HealthEvery:   *healthEvery,
		HealthTimeout: *healthTimeout,
		MaxBody:       *maxBody,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	log.Printf("routing %d replicas, policy %s", len(urls), pol)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Scripts parse this line for the ephemeral port, same as selfserved.
	log.Printf("listening on http://%s", ln.Addr())

	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Print("signal received, shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown timed out: %v", err)
			os.Exit(1)
		}
		log.Print("drained cleanly")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
