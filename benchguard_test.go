package selfgo_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"selfgo"
	"selfgo/internal/bench"
)

// TestBenchmarkGuard replays every BENCH_*.json pin file at the repo
// root against the current build. Each record fixes the check value and
// modelled cycle count of one (benchmark, config) point of the §6.1
// speed table; any drift means an infrastructure change (cache sharing,
// VM refactor) altered execution semantics or the cost model, which
// must be a deliberate, re-pinned decision — never an accident.
// Regenerate the pins with:
//
//	go run ./cmd/selfbench -table guard -q > BENCH_guard.json
func TestBenchmarkGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard is slow; skipped in -short mode")
	}
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no BENCH_*.json pin files present")
	}

	configs := map[string]selfgo.Config{}
	for _, cfg := range selfgo.Configs() {
		configs[cfg.Name] = cfg
	}
	r := bench.NewRunner()
	for _, file := range files {
		file := file
		switch filepath.Base(file) {
		case "BENCH_host.json", "BENCH_serve.json":
			// Wall-clock measurements, machine-dependent by nature —
			// not pins. ci.sh smoke-runs the host rail and the
			// cluster-smoke stage asserts the serving rail's
			// compile-once bounds instead.
			continue
		}
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var recs []bench.GuardRecord
			if err := json.Unmarshal(data, &recs); err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			if len(recs) == 0 {
				t.Fatalf("%s holds no records", file)
			}
			for _, rec := range recs {
				b, ok := bench.ByName(rec.Bench)
				if !ok {
					t.Errorf("%s pins unknown benchmark %q", file, rec.Bench)
					continue
				}
				cfg, ok := configs[rec.Config]
				if !ok {
					t.Errorf("%s pins unknown config %q", file, rec.Config)
					continue
				}
				m, err := r.Get(b, cfg)
				if err != nil {
					t.Errorf("%s under %s: %v", rec.Bench, rec.Config, err)
					continue
				}
				if m.Value != rec.Value {
					t.Errorf("%s under %s: value %d, pinned %d (execution semantics drifted)",
						rec.Bench, rec.Config, m.Value, rec.Value)
				}
				if m.Cycles != rec.Cycles {
					t.Errorf("%s under %s: %s", rec.Bench, rec.Config,
						fmt.Sprintf("cycles %d, pinned %d (cost model drifted)", m.Cycles, rec.Cycles))
				}
			}
		})
	}
}
