package selfgo

import (
	"errors"
	"strings"
	"testing"
)

// TestCompileFallbackDegrades: when the optimizing compiler faults
// (error or panic) on a method, the VM retries it under the degraded
// configuration, the call still succeeds, and the degradation is
// counted in CompileRecord.Degraded.
func TestCompileFallbackDegrades(t *testing.T) {
	for _, fault := range []struct {
		name string
		f    func(sel string, degraded bool) error
	}{
		{"error", func(sel string, degraded bool) error {
			if sel == "triangle:" && !degraded {
				return errors.New("injected optimizer fault")
			}
			return nil
		}},
		{"panic", func(sel string, degraded bool) error {
			if sel == "triangle:" && !degraded {
				panic("injected optimizer panic")
			}
			return nil
		}},
	} {
		t.Run(fault.name, func(t *testing.T) {
			compileFault = fault.f
			defer func() { compileFault = nil }()

			sys, err := NewSystem(NewSELF)
			if err != nil {
				t.Fatal(err)
			}
			src := `triangle: n = ( |s <- 0| 1 upTo: n Do: [ :i | s: s + i ]. s ).`
			if err := sys.LoadSource(src); err != nil {
				t.Fatal(err)
			}
			res, err := sys.Call("triangle:", IntValue(100))
			if err != nil {
				t.Fatalf("call failed despite degraded fallback: %v", err)
			}
			// upTo:Do: excludes the bound: 1+...+99.
			if res.Value.I() != 4950 {
				t.Fatalf("triangle: 100 = %d, want 4950", res.Value.I())
			}
			if res.Compile.Degraded != 1 {
				t.Fatalf("Degraded = %d, want 1", res.Compile.Degraded)
			}
			found := false
			for _, e := range sys.CompileLog() {
				if strings.Contains(e.Name, "triangle:") {
					found = true
				}
			}
			if !found {
				t.Fatal("degraded compile left no log entry")
			}
		})
	}
}

// TestCompileFallbackBothFail: when the degraded tier fails too, the
// original error surfaces, annotated with the retry failure.
func TestCompileFallbackBothFail(t *testing.T) {
	compileFault = func(sel string, degraded bool) error {
		if sel == "doomed" {
			return errors.New("injected fault in every tier")
		}
		return nil
	}
	defer func() { compileFault = nil }()

	sys, err := NewSystem(NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(`doomed = ( 1 + 2 ).`); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Call("doomed")
	if err == nil {
		t.Fatal("both tiers failing still produced code")
	}
	if !strings.Contains(err.Error(), "degraded retry also failed") {
		t.Fatalf("error %q does not mention the failed degraded retry", err)
	}
	if !strings.Contains(err.Error(), "injected fault in every tier") {
		t.Fatalf("error %q lost the original failure", err)
	}
}
