package selfgo_test

import (
	"strings"
	"sync"
	"testing"

	"selfgo"
)

// TestBudgetMaxBytes: the bytes axis of the budget faults at the
// allocation site — one hostile `_NewVec:` must return a typed
// out-of-fuel error instead of materializing gigabytes of host storage
// and hoping the next poll notices.
func TestBudgetMaxBytes(t *testing.T) {
	sys, err := selfgo.NewSystem(selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	src := `
		boom = ( _NewVec: 100000000 ).
		trap = ( _NewVec: 100000000 IfFail: [ -1 ] ).
		churn = ( [ true ] whileTrue: [ _NewVec: 64 ]. 0 ).
		ok = ( | v | v: vector copySize: 10 FillWith: 3. v at: 2 ).
	`
	if err := sys.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	sys.SetBudget(selfgo.Budget{MaxBytes: 1 << 20})

	// One allocation far over budget: faults immediately, at the site.
	_, err = sys.Call("boom")
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindOutOfFuel {
		t.Fatalf("boom: kind = %v (ok=%v), want KindOutOfFuel; err: %v", k, ok, err)
	}
	if !strings.Contains(err.Error(), "byte budget") {
		t.Fatalf("boom: error does not name the byte budget: %v", err)
	}

	// A guest IfFail: handler must not swallow the fault — the byte
	// budget is a host resource bound, not a primitive failure the
	// program may negotiate with.
	_, err = sys.Call("trap")
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindOutOfFuel {
		t.Fatalf("trap: kind = %v (ok=%v), want KindOutOfFuel (not the IfFail: value); err: %v", k, ok, err)
	}

	// Many small allocations accumulate to the same fault.
	_, err = sys.Call("churn")
	if k, ok := selfgo.ErrorKind(err); !ok || k != selfgo.KindOutOfFuel {
		t.Fatalf("churn: kind = %v (ok=%v), want KindOutOfFuel; err: %v", k, ok, err)
	}

	// Within budget the same system still allocates fine, and the run
	// reports its modelled byte traffic.
	res, err := sys.Call("ok")
	if err != nil || res.Value.I() != 3 {
		t.Fatalf("ok = (%v, %v), want 3", res, err)
	}
	if res.Run.AllocBytes <= 0 {
		t.Fatalf("ok: AllocBytes = %d, want > 0", res.Run.AllocBytes)
	}
}

// TestAllocChargingDifferential: Allocs and AllocBytes must be charged
// identically whatever path performs the allocation — the primitive
// send in the baseline tier, the NewVec/Clone opcodes the optimizing
// tier emits, and the closure-threaded native backend. A program mixing
// vectors, clones and element stores is run at two sizes under all
// three schedules. AllocBytes (only vectors and clones charge bytes)
// must match absolutely; for Allocs the per-iteration delta between the
// two sizes must match — the baseline tier legitimately allocates a few
// extra closures per call because it does not inline blocks, but the
// per-allocation charging it shares with the other tiers must be
// identical.
func TestAllocChargingDifferential(t *testing.T) {
	src := `
		node = (| parent* = lobby. val <- 0. setVal: v = ( val: v. self ) |).
		mix: n = ( | v. acc <- 0 |
			v: vector copySize: n FillWith: 3.
			0 upTo: n Do: [ :i | v at: i Put: ((node _Clone setVal: i) val) ].
			v do: [ :e | acc: acc + e ].
			acc + (_NewVec: 5 Fill: 1) size ).
	`
	type out struct {
		mode       string
		value      int64
		small, big selfgo.RunStats
	}
	var results []out
	for _, mode := range []selfgo.TierMode{selfgo.ModeOpt, selfgo.ModeBaseline, selfgo.ModeNative} {
		var sys *selfgo.System
		var err error
		if mode == selfgo.ModeOpt {
			sys, err = selfgo.NewSystem(selfgo.NewSELF)
		} else {
			sys, err = selfgo.NewTieredSystem(selfgo.NewSELF, mode, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		small, err := sys.Call("mix:", selfgo.IntValue(16))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		big, err := sys.Call("mix:", selfgo.IntValue(32))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		results = append(results, out{mode.String(), small.Value.I(), small.Run, big.Run})
	}
	base := results[0]
	if base.small.Allocs == 0 || base.small.AllocBytes == 0 {
		t.Fatalf("%s charged nothing: %+v", base.mode, base.small)
	}
	for _, r := range results[1:] {
		if r.value != base.value {
			t.Errorf("value differs: %s=%d, %s=%d", base.mode, base.value, r.mode, r.value)
		}
		if r.small.AllocBytes != base.small.AllocBytes || r.big.AllocBytes != base.big.AllocBytes {
			t.Errorf("AllocBytes differ: %s=%d/%d, %s=%d/%d",
				base.mode, base.small.AllocBytes, base.big.AllocBytes,
				r.mode, r.small.AllocBytes, r.big.AllocBytes)
		}
		baseDelta := base.big.Allocs - base.small.Allocs
		if d := r.big.Allocs - r.small.Allocs; d != baseDelta {
			t.Errorf("per-iteration Allocs delta differs: %s=%d, %s=%d", base.mode, baseDelta, r.mode, d)
		}
	}
	// Opt and native are pinned bit-identical (same modelled model, same
	// bytecode), so for that pair the absolute counters must match too.
	nat := results[2]
	if nat.small.Allocs != base.small.Allocs || nat.big.Allocs != base.big.Allocs {
		t.Errorf("Allocs differ between opt and native: %d/%d vs %d/%d",
			base.small.Allocs, base.big.Allocs, nat.small.Allocs, nat.big.Allocs)
	}
}

// TestCrossWorkerEpochIdentity: epoch numbers must identify their
// arena globally, not just sequence within one arena. Two forked
// workers share one world; worker A publishes an arena vector into the
// world (escape, abandoned on A's reset), then worker B stores a fresh
// arena-B vector into that escaped object. B's store barrier compares
// raw epoch numbers — with per-arena counters both workers can sit at
// the same number, the store looks intra-epoch, no escape is recorded,
// and B's clean reset recycles the chunk under a world-reachable
// value. Globally-unique epochs make the barrier fire: B's epoch must
// be abandoned and the published value stay intact.
func TestCrossWorkerEpochIdentity(t *testing.T) {
	root, err := selfgo.NewSharedSystem(selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	src := `
		keep <- 0.
		stash = ( keep: (vector copySize: 4 FillWith: 9). 0 ).
		poke = ( keep at: 0 Put: (vector copySize: 4 FillWith: 6). 0 ).
		churn: n = ( | v | v: vector copySize: n FillWith: 1. v at: 0 ).
		read = ( (keep at: 0) at: 2 ).
	`
	if err := root.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	a, err := root.Fork()
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.Fork()
	if err != nil {
		t.Fatal(err)
	}

	// Worker A: escape a vector to the shared world, then reset. Both
	// workers' arenas have now each seen exactly one reset-relevant
	// event; with per-arena epoch counters their numbers would collide.
	if _, err := a.Call("stash"); err != nil {
		t.Fatal(err)
	}
	a.ResetArena()
	if _, ab := a.ArenaStats(); ab != 1 {
		t.Fatalf("worker A abandons = %d, want 1 (world escape)", ab)
	}

	// Worker B: store a fresh arena-B vector into A's escaped vector.
	// The target's epoch differs from B's, so the barrier must record
	// the escape of B's current epoch.
	if _, err := b.Call("poke"); err != nil {
		t.Fatal(err)
	}
	b.ResetArena()
	if _, ab := b.ArenaStats(); ab != 1 {
		t.Fatalf("worker B abandons = %d, want 1 (cross-arena store must escape)", ab)
	}

	// Hammer B's arena through fresh epochs so a wrongly-recycled chunk
	// would be rewritten, then read the published value back through
	// the world: it must be unclobbered.
	for i := 0; i < 8; i++ {
		if _, err := b.Call("churn:", selfgo.IntValue(200)); err != nil {
			t.Fatal(err)
		}
		b.ResetArena()
	}
	res, err := b.Call("read")
	if err != nil || res.Value.I() != 6 {
		t.Fatalf("read = (%v, %v), want 6 (cross-worker published vector corrupted)", res, err)
	}
}

// TestArenaLifecycle exercises the per-VM arena across epochs: clean
// runs recycle their chunks, values that escape to the world (or are
// pinned by the embedder) survive the reset because the dirty epoch is
// abandoned to the garbage collector instead of recycled.
func TestArenaLifecycle(t *testing.T) {
	root, err := selfgo.NewSharedSystem(selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	src := `
		keep <- 0.
		blockKeep <- 0.
		mkSum: n = ( | v | v: vector copySize: n FillWith: 7. v at: 3 ).
		stash: n = ( keep: (vector copySize: n FillWith: 9). 0 ).
		peek = ( keep at: 1 ).
		stashBlk = ( blockKeep: [ 5 ]. 0 ).
	`
	if err := root.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	w, err := root.Fork()
	if err != nil {
		t.Fatal(err)
	}

	// Clean epochs: nothing escapes, so every reset recycles.
	for i := 0; i < 3; i++ {
		res, err := w.Call("mkSum:", selfgo.IntValue(100))
		if err != nil || res.Value.I() != 7 {
			t.Fatalf("mkSum (epoch %d) = (%v, %v), want 7", i, res, err)
		}
		w.ResetArena()
	}
	resets, abandons := w.ArenaStats()
	if resets != 3 || abandons != 0 {
		t.Fatalf("after clean epochs: resets=%d abandons=%d, want 3/0", resets, abandons)
	}

	// Escape to the world: the store barrier marks the epoch dirty, the
	// reset abandons it, and the escaped vector stays readable.
	if _, err := w.Call("stash:", selfgo.IntValue(10)); err != nil {
		t.Fatal(err)
	}
	w.ResetArena()
	if _, abandons = w.ArenaStats(); abandons != 1 {
		t.Fatalf("after world escape: abandons=%d, want 1", abandons)
	}
	res, err := w.Call("peek")
	if err != nil || res.Value.I() != 9 {
		t.Fatalf("peek after reset = (%v, %v), want 9 (escaped storage must survive)", res, err)
	}
	w.ResetArena()

	// A block escaping to the world dirties the epoch conservatively
	// (its captured frame may alias arena values).
	if _, err := w.Call("stashBlk"); err != nil {
		t.Fatal(err)
	}
	w.ResetArena()
	if _, abandons = w.ArenaStats(); abandons < 2 {
		t.Fatalf("after block escape: abandons=%d, want >= 2", abandons)
	}

	// Embedder pin: MarkEscaped keeps a returned value valid across the
	// reset without any guest-side store.
	res, err = w.Call("mkSum:", selfgo.IntValue(8))
	if err != nil {
		t.Fatal(err)
	}
	w.MarkEscaped(res.Value)
	w.ResetArena()

	// Concurrent forks each own an arena; run+reset loops on separate
	// goroutines must be race-free (this test matters under -race).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		f, err := root.Fork()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sys *selfgo.System) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := sys.Call("mkSum:", selfgo.IntValue(50))
				if err != nil || res.Value.I() != 7 {
					t.Errorf("concurrent mkSum = (%v, %v)", res, err)
					return
				}
				sys.ResetArena()
			}
		}(f)
	}
	wg.Wait()
}
