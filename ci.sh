#!/bin/sh
# ci.sh — the checks a change must pass before it lands.
#
#   ./ci.sh          # vet + build + tests + race detector
#   ./ci.sh -short   # the same, with the slow tests trimmed
#
# Tier-1 (build + go test ./...) is the compatibility bar tracked in
# ROADMAP.md; the race run exercises the shared code cache and the
# concurrent differential tests with full interleaving checks.
set -eu
cd "$(dirname "$0")"

short="${1:-}"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test $short ./...

echo "== go test -race ./..."
go test -race $short ./...

# Host-bench smoke: every BenchmarkHost* sub-benchmark runs one
# iteration, proving the wall-clock rail (warm-up, expect checks,
# metric reporting) still works without paying for a real measurement.
echo "== host-bench smoke"
go test -run=NONE -bench=BenchmarkHost -benchtime=1x .

# Adaptive smoke: richards under an adaptive tier schedule with a low
# promotion threshold must install at least one background promotion
# (-assert-promoted fails otherwise) and keep its check value.
echo "== adaptive smoke"
go run ./cmd/selfbench -bench richards -tier adaptive -promote 50 -assert-promoted -q

# Tier differential: -tier=opt must stay bit-identical to the
# hand-built pre-tiering compile path in every modelled quantity,
# across the full benchmark suite.
echo "== tier differential"
go test -run 'TestTierOptBitIdentical' .

# Fuzz smoke: a short budget per front-end fuzzer, enough to catch
# easy regressions in the lexer and parser without stalling CI.
# Trimmed from -short runs.
if [ "$short" != "-short" ]; then
    echo "== fuzz smoke: FuzzLexer"
    go test -run '^$' -fuzz '^FuzzLexer$' -fuzztime 10s ./internal/lexer
    echo "== fuzz smoke: FuzzParser"
    go test -run '^$' -fuzz '^FuzzParser$' -fuzztime 10s ./internal/parser
fi

echo "ci: all checks passed"
