#!/bin/sh
# ci.sh — the checks a change must pass before it lands.
#
#   ./ci.sh                # vet + build + tests + race detector
#   ./ci.sh -short         # the same, with the slow tests trimmed
#   ./ci.sh cluster-smoke  # only the 3-replica router smoke
#   ./ci.sh image-smoke    # only the world-image warm-start smoke
#
# Tier-1 (build + go test ./...) is the compatibility bar tracked in
# ROADMAP.md; the race run exercises the shared code cache and the
# concurrent differential tests with full interleaving checks.
set -eu
cd "$(dirname "$0")"

short="${1:-}"

# cluster_smoke boots 3 selfserved replicas behind selfrouter on
# ephemeral ports and pins the cluster-serving invariants:
#   - a recorded trace replays deterministically (re-record is
#     byte-identical modulo timestamps),
#   - affinity routing compiles each distinct program on exactly ONE
#     replica (fleet compile-once), and a second replay of the same
#     trace compiles nothing anywhere,
#   - an overloaded home replica sheds and the router retries the
#     next-ranked replica (>= 1 shed failover observed),
#   - SIGTERM-draining a replica mid-run loses zero requests at the
#     router, and both the replica and the router drain cleanly.
cluster_smoke() {
    echo "== cluster smoke (3 replicas + selfrouter)"
    go build -o /tmp/ci-selfserved ./cmd/selfserved
    go build -o /tmp/ci-selfload ./cmd/selfload
    go build -o /tmp/ci-selfrouter ./cmd/selfrouter
    cwork=$(mktemp -d)
    cpids=""
    trap 'for p in $cpids; do kill "$p" 2>/dev/null || true; done; rm -rf "$cwork"' EXIT

    # 8 distinct programs x 3 reps, 2ms apart.
    awk 'BEGIN{
        for (r = 0; r < 3; r++)
            for (k = 0; k < 8; k++)
                printf("{\"dt_us\":%d,\"endpoint\":\"/eval\",\"body\":\"{\\\"expr\\\": \\\"| s <- 0 | 1 upTo: %d Do: [ :i | s: s + i ]. s\\\"}\"}\n", (r == 0 && k == 0) ? 0 : 2000, 1000 + k);
    }' > "$cwork/trace.jsonl"

    boot() { # boot LOGFILE CMD [flags...] -> $boot_url
        _log=$1; shift
        "$@" >/dev/null 2>"$_log" &
        cpids="$cpids $!"
        boot_url=""
        for _i in $(seq 1 50); do
            boot_url=$(grep -o 'listening on http://[0-9.:]*' "$_log" | head -1 | sed 's/listening on //' || true)
            [ -n "$boot_url" ] && break
            sleep 0.1
        done
        [ -n "$boot_url" ] || { echo "ci: $_log never came up"; cat "$_log"; exit 1; }
    }
    scrape() { /tmp/ci-selfload -url "$1" -scrape "$2"; }

    boot "$cwork/r1.log" /tmp/ci-selfserved -addr 127.0.0.1:0 -pool 2 -queue 2; cr1=$boot_url
    boot "$cwork/r2.log" /tmp/ci-selfserved -addr 127.0.0.1:0 -pool 2 -queue 2; cr2=$boot_url
    boot "$cwork/r3.log" /tmp/ci-selfserved -addr 127.0.0.1:0 -pool 2 -queue 2; cr3=$boot_url
    boot "$cwork/router.log" /tmp/ci-selfrouter -addr 127.0.0.1:0 -replicas "$cr1,$cr2,$cr3"; crouter=$boot_url

    # Replay the trace twice through the router, re-recording both
    # runs: the re-records must match byte-for-byte modulo dt_us.
    /tmp/ci-selfload -url "$crouter" -replay "$cwork/trace.jsonl" -speed 2 \
        -record "$cwork/rec1.jsonl" -fail-on-error -q
    m1=$(scrape "$cr1" selfgo_codecache_misses_total)
    m2=$(scrape "$cr2" selfgo_codecache_misses_total)
    m3=$(scrape "$cr3" selfgo_codecache_misses_total)
    /tmp/ci-selfload -url "$crouter" -replay "$cwork/trace.jsonl" -speed 2 \
        -record "$cwork/rec2.jsonl" -fail-on-error -q
    sed 's/"dt_us":[0-9]*/"dt_us":0/' "$cwork/rec1.jsonl" > "$cwork/rec1.norm"
    sed 's/"dt_us":[0-9]*/"dt_us":0/' "$cwork/rec2.jsonl" > "$cwork/rec2.norm"
    cmp -s "$cwork/rec1.norm" "$cwork/rec2.norm" || {
        echo "ci: trace replay is not deterministic (re-records differ)"; exit 1; }
    # Per-replica compile-once: the second replay of an already-warm
    # trace must compile NOTHING on any replica.
    for pair in "1 $cr1 $m1" "2 $cr2 $m2" "3 $cr3 $m3"; do
        set -- $pair
        now=$(scrape "$2" selfgo_codecache_misses_total)
        [ "$now" -eq "$3" ] || {
            echo "ci: replica $1 compiled again on a warm trace ($3 -> $now)"; exit 1; }
    done
    # Fleet compile-once: 8 distinct programs -> exactly 8 interned
    # exprs across the whole fleet, on at least 2 replicas.
    i1=$(scrape "$cr1" selfserved_exprs_interned_total)
    i2=$(scrape "$cr2" selfserved_exprs_interned_total)
    i3=$(scrape "$cr3" selfserved_exprs_interned_total)
    [ $((i1 + i2 + i3)) -eq 8 ] || {
        echo "ci: fleet interned $i1+$i2+$i3 exprs for 8 distinct programs"; exit 1; }
    echo "   compile-once held: interned $i1/$i2/$i3 across replicas"

    # Shed failover: flood one affinity key's home replica (pool 2 +
    # queue 2) until it sheds; the router must retry the next-ranked
    # replica at least once.
    /tmp/ci-selfload -url "$crouter" -c 8 -n 40 \
        -expr '| s <- 0 | 1 upTo: 300000 Do: [ :i | s: s + 1 ]. s' -q >/dev/null
    fo=$(scrape "$crouter" 'selfrouter_failovers_total{reason="shed"}')
    [ "$fo" -ge 1 ] || { echo "ci: no shed failover observed at the router"; exit 1; }
    echo "   shed failovers at router: $fo"

    # Drain mid-run: three tenants keep the fleet busy while replica 1
    # gets SIGTERM. Every request must still succeed (429 excepted) and
    # the replica and ring must both settle cleanly.
    /tmp/ci-selfload -url "$crouter" -c 2 -n 120 -tenant t1 \
        -expr '| s <- 0 | 1 upTo: 60000 Do: [ :i | s: s + 1 ]. s' -fail-on-error -q >/dev/null &
    l1=$!
    /tmp/ci-selfload -url "$crouter" -c 2 -n 120 -tenant t2 \
        -expr '| s <- 0 | 1 upTo: 60000 Do: [ :i | s: s + 2 ]. s' -fail-on-error -q >/dev/null &
    l2=$!
    /tmp/ci-selfload -url "$crouter" -c 2 -n 120 -tenant t3 \
        -expr '| s <- 0 | 1 upTo: 60000 Do: [ :i | s: s + 3 ]. s' -fail-on-error -q >/dev/null &
    l3=$!
    sleep 0.5
    r1pid=$(echo "$cpids" | awk '{print $1}')
    kill -TERM "$r1pid"
    wait "$l1" || { echo "ci: tenant t1 saw failures during replica drain"; exit 1; }
    wait "$l2" || { echo "ci: tenant t2 saw failures during replica drain"; exit 1; }
    wait "$l3" || { echo "ci: tenant t3 saw failures during replica drain"; exit 1; }
    wait "$r1pid" || { echo "ci: replica 1 did not drain cleanly"; cat "$cwork/r1.log"; exit 1; }
    grep -q 'drained cleanly' "$cwork/r1.log" || {
        echo "ci: no drain line in replica 1 log"; cat "$cwork/r1.log"; exit 1; }
    for _i in $(seq 1 50); do
        [ "$(scrape "$crouter" selfrouter_replicas_healthy)" -eq 2 ] && break
        sleep 0.1
    done
    [ "$(scrape "$crouter" selfrouter_replicas_healthy)" -eq 2 ] || {
        echo "ci: router ring did not drop the drained replica"; exit 1; }
    echo "   drain under router: zero failed requests, ring at 2 replicas"

    # The router itself must shut down cleanly on SIGTERM.
    routerpid=$(echo "$cpids" | awk '{print $4}')
    kill -TERM "$routerpid"
    wait "$routerpid" || { echo "ci: router did not drain cleanly"; cat "$cwork/router.log"; exit 1; }
    grep -q 'drained cleanly' "$cwork/router.log" || {
        echo "ci: no drain line in router log"; cat "$cwork/router.log"; exit 1; }

    for p in $cpids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$cwork"
    cpids=""
    trap - EXIT
    echo "   cluster smoke passed"
}

# image_smoke pins the warm-start invariants of world images:
#   - a warmed selfserved saves an image on graceful shutdown
#     (-save-image) whose manifest covers its hot code,
#   - a second replica boots from it (-image), holds /readyz until
#     background pre-promotion lands, and reports provenance (image
#     hash, restore and time-to-ready seconds) on /statusz + /metrics,
#   - replaying the exact warming trace against the warm replica
#     compiles NOTHING (no cache misses, no optimizing-tier compiles):
#     the image + manifest carried the entire hot set across processes.
image_smoke() {
    echo "== image smoke (warm save -> image boot -> zero recompiles)"
    go build -o /tmp/ci-selfserved ./cmd/selfserved
    go build -o /tmp/ci-selfload ./cmd/selfload
    iwork=$(mktemp -d)
    ipids=""
    trap 'for p in $ipids; do kill "$p" 2>/dev/null || true; done; rm -rf "$iwork"' EXIT

    # Warming trace: 4 distinct eval programs x 2 reps, then the sumTo
    # named benchmark x 4.
    awk 'BEGIN{
        for (r = 0; r < 2; r++)
            for (k = 0; k < 4; k++)
                printf("{\"dt_us\":%d,\"endpoint\":\"/eval\",\"body\":\"{\\\"expr\\\": \\\"| s <- 0 | 1 upTo: %d Do: [ :i | s: s + i ]. s\\\"}\"}\n", (r == 0 && k == 0) ? 0 : 1000, 500 + k);
        for (k = 0; k < 4; k++)
            printf("{\"dt_us\":1000,\"endpoint\":\"/run\",\"body\":\"{\\\"bench\\\": \\\"sumTo\\\"}\"}\n");
    }' > "$iwork/trace.jsonl"

    iboot() { # iboot LOGFILE [flags...] -> $iboot_url
        _log=$1; shift
        /tmp/ci-selfserved -addr 127.0.0.1:0 -pool 2 -benches sumTo "$@" \
            >/dev/null 2>"$_log" &
        ipids="$ipids $!"
        iboot_url=""
        for _i in $(seq 1 50); do
            iboot_url=$(grep -o 'listening on http://[0-9.:]*' "$_log" | head -1 | sed 's/listening on //' || true)
            [ -n "$iboot_url" ] && break
            sleep 0.1
        done
        [ -n "$iboot_url" ] || { echo "ci: $_log never came up"; cat "$_log"; exit 1; }
    }
    iscrape() { /tmp/ci-selfload -url "$1" -scrape "$2"; }
    # statz URL FIELD -> one float field from /statusz's boot block.
    statz() {
        { curl -fsS "$1/statusz" 2>/dev/null || wget -qO- "$1/statusz"; } \
            | sed -n 's/.*"'"$2"'": \([0-9.e+-]*\).*/\1/p' | head -1
    }

    iboot "$iwork/cold.log" -save-image "$iwork/world.img"; icold=$iboot_url
    /tmp/ci-selfload -url "$icold" -replay "$iwork/trace.jsonl" -speed 4 -fail-on-error -q
    cold_ttr=$(statz "$icold" ready_seconds)
    coldpid=$(echo "$ipids" | awk '{print $1}')
    kill -TERM "$coldpid"
    wait "$coldpid" || { echo "ci: cold replica did not drain cleanly"; cat "$iwork/cold.log"; exit 1; }
    grep -q 'saved image' "$iwork/cold.log" || {
        echo "ci: no saved-image line after drain"; cat "$iwork/cold.log"; exit 1; }
    [ -s "$iwork/world.img" ] || { echo "ci: image file is empty"; exit 1; }

    iboot "$iwork/warm.log" -image "$iwork/world.img"; iwarm=$iboot_url
    grep -q 'booted from image' "$iwork/warm.log" || {
        echo "ci: warm replica did not report an image boot"; cat "$iwork/warm.log"; exit 1; }
    for _i in $(seq 1 100); do
        [ "$(iscrape "$iwarm" selfserved_ready)" = "1" ] && break
        sleep 0.1
    done
    [ "$(iscrape "$iwarm" selfserved_ready)" = "1" ] || {
        echo "ci: warm replica never became ready"; cat "$iwork/warm.log"; exit 1; }

    pre=$(iscrape "$iwarm" selfgo_prepromoted_total)
    [ "$pre" -ge 1 ] || { echo "ci: warm replica pre-promoted nothing"; exit 1; }
    [ "$(iscrape "$iwarm" selfgo_prepromote_failed_total)" -eq 0 ] || {
        echo "ci: warm replica had failed pre-promotions"; exit 1; }
    restore=$(statz "$iwarm" restore_seconds)
    warm_ttr=$(statz "$iwarm" ready_seconds)
    awk -v r="$restore" -v c="$cold_ttr" -v w="$warm_ttr" \
        'BEGIN{ exit !(r > 0 && c > 0 && w > 0) }' || {
        echo "ci: boot timing metrics missing (restore=$restore cold_ttr=$cold_ttr warm_ttr=$warm_ttr)"; exit 1; }

    # Replay the warming trace: the manifest's pre-promoted code must
    # absorb every request — zero cache misses, zero optimizing
    # compiles beyond what pre-promotion itself ran.
    m0=$(iscrape "$iwarm" selfgo_codecache_misses_total)
    o0=$(iscrape "$iwarm" 'selfgo_compiles_total{tier="optimizing"}')
    /tmp/ci-selfload -url "$iwarm" -replay "$iwork/trace.jsonl" -speed 4 -fail-on-error -q
    m1=$(iscrape "$iwarm" selfgo_codecache_misses_total)
    o1=$(iscrape "$iwarm" 'selfgo_compiles_total{tier="optimizing"}')
    [ "$m1" -eq "$m0" ] || {
        echo "ci: warm replica compiled under the warmed trace ($m0 -> $m1 misses)"; exit 1; }
    [ "$o1" -eq "$o0" ] || {
        echo "ci: warm replica ran optimizing compiles under the warmed trace ($o0 -> $o1)"; exit 1; }
    echo "   warm boot: $pre pre-promoted, restore ${restore}s, time-to-ready cold ${cold_ttr}s vs warm ${warm_ttr}s, zero recompiles on replay"

    for p in $ipids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$iwork"
    ipids=""
    trap - EXIT
    echo "   image smoke passed"
}

if [ "$short" = "cluster-smoke" ]; then
    cluster_smoke
    exit 0
fi
if [ "$short" = "image-smoke" ]; then
    image_smoke
    exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test $short ./...

echo "== go test -race ./..."
go test -race $short ./...

# Host-bench smoke: every BenchmarkHost* sub-benchmark runs one
# iteration, proving the wall-clock rail (warm-up, expect checks,
# metric reporting) still works without paying for a real measurement.
echo "== host-bench smoke"
go test -run=NONE -bench=BenchmarkHost -benchtime=1x .

# Adaptive smoke: richards under an adaptive tier schedule with a low
# promotion threshold must install at least one background promotion
# (-assert-promoted fails otherwise) and keep its check value.
echo "== adaptive smoke"
go run ./cmd/selfbench -bench richards -tier adaptive -promote 50 -assert-promoted -q

# Native smoke: the closure-threaded top tier. Eager native mode must
# keep richards' check value, and the adaptive schedule must climb
# both promotion rungs (baseline → optimizing → native) on it
# (-assert-native fails otherwise).
echo "== native smoke"
go run ./cmd/selfbench -bench richards -tier native -q
go run ./cmd/selfbench -bench richards -tier adaptive -promote 50 -assert-promoted -assert-native -q

# Tier differential: -tier=opt must stay bit-identical to the
# hand-built pre-tiering compile path in every modelled quantity,
# across the full benchmark suite.
echo "== tier differential"
go test -run 'TestTierOptBitIdentical' .

# BBV differential: the lazy basic-block versioning strategy must stay
# bit-identical to splitting on every benchmark and conformance program
# (values and fault taxonomy), plateau at the version cap on
# megamorphic code, and invalidate shape-specialized versions through
# OnMapChange like any other customization.
echo "== bbv differential"
go test -run 'TestBBVVsSplitBenchmarks|TestBBVConformanceAcrossStrategies|TestBBVFaultDifferential|TestBBVVersionCapBound|TestBBVShapeInvalidation' .

# Server smoke: boot selfserved on an ephemeral port and drive it with
# selfload over >= 8 concurrent connections. Asserts, from the server's
# own /metrics: compile-once under steady load (codecache misses stop
# growing after warm-up), at least one background tier promotion under
# the adaptive schedule, and load-shedding with 429 (not hangs) past
# the admission limit. Finishes with SIGTERM and requires a clean
# drain.
echo "== server smoke"
go build -o /tmp/ci-selfserved ./cmd/selfserved
go build -o /tmp/ci-selfload ./cmd/selfload
server_log=$(mktemp)
/tmp/ci-selfserved -addr 127.0.0.1:0 -tier adaptive -promote 20 -pool 4 -queue 16 2>"$server_log" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    url=$(grep -o 'http://[0-9.:]*' "$server_log" | head -1 || true)
    [ -n "$url" ] && break
    sleep 0.1
done
[ -n "$url" ] || { echo "ci: selfserved never came up"; cat "$server_log"; exit 1; }
# eval traffic: 8 connections, same expression — compile-once + values,
# and the pool gauges must show live occupancy while requests run.
/tmp/ci-selfload -url "$url" -c 8 -n 120 \
    -expr '| s <- 0 | 1 upTo: 1000 Do: [ :i | s: s + i ]. s' \
    -check-int -expect-int 499500 -fail-on-error -assert-compile-once \
    -assert-pool-moves -q
# named-benchmark traffic: adaptive promotion must land, and the hot
# method must climb the second rung to the native tier under live load.
/tmp/ci-selfload -url "$url" -c 8 -n 150 -bench sumTo \
    -fail-on-error -min-promotions 1 -min-native-compiles 1 -q
kill -TERM "$server_pid"
wait "$server_pid" || { echo "ci: selfserved did not drain cleanly"; cat "$server_log"; exit 1; }
trap - EXIT
grep -q 'drained cleanly' "$server_log" || { echo "ci: no drain line in log"; cat "$server_log"; exit 1; }
# bbv replica: the same eval traffic under -strategy bbv must hold
# compile-once (cache keys carry the strategy, so bbv code shares
# nothing with split code), compute the same values, and actually
# version (selfgo_bbv_versions_total > 0).
/tmp/ci-selfserved -addr 127.0.0.1:0 -strategy bbv -pool 4 -queue 16 2>"$server_log" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    url=$(grep -o 'http://[0-9.:]*' "$server_log" | head -1 || true)
    [ -n "$url" ] && break
    sleep 0.1
done
[ -n "$url" ] || { echo "ci: selfserved (bbv) never came up"; cat "$server_log"; exit 1; }
/tmp/ci-selfload -url "$url" -c 8 -n 120 \
    -expr '| s <- 0 | 1 upTo: 1000 Do: [ :i | s: s + i ]. s' \
    -check-int -expect-int 499500 -fail-on-error -assert-compile-once -q
bbv_vers=$(/tmp/ci-selfload -url "$url" -scrape selfgo_bbv_versions_total)
[ "$bbv_vers" -ge 1 ] || { echo "ci: bbv replica materialized no versions"; exit 1; }
kill -TERM "$server_pid"
wait "$server_pid" || { echo "ci: selfserved (bbv) did not drain cleanly"; cat "$server_log"; exit 1; }
trap - EXIT
grep -q 'drained cleanly' "$server_log" || { echo "ci: no drain line in bbv log"; cat "$server_log"; exit 1; }
# overload: tiny pool + queue, 16 connections — must shed with 429.
/tmp/ci-selfserved -addr 127.0.0.1:0 -pool 2 -queue 2 2>"$server_log" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    url=$(grep -o 'http://[0-9.:]*' "$server_log" | head -1 || true)
    [ -n "$url" ] && break
    sleep 0.1
done
[ -n "$url" ] || { echo "ci: selfserved (overload) never came up"; cat "$server_log"; exit 1; }
/tmp/ci-selfload -url "$url" -c 16 -n 100 \
    -expr '| s <- 0 | 1 upTo: 300000 Do: [ :i | s: s + 1 ]. s' -min-429 10 -q
kill -TERM "$server_pid"
wait "$server_pid" || { echo "ci: selfserved (overload) did not drain cleanly"; cat "$server_log"; exit 1; }
trap - EXIT
rm -f "$server_log" /tmp/ci-selfserved /tmp/ci-selfload

# Cluster smoke: 3 replicas behind selfrouter — fleet compile-once
# under affinity routing, shed failover, deterministic trace replay,
# and a clean mid-run drain. See cluster_smoke above.
cluster_smoke

# Image smoke: warm save -> image boot -> zero recompiles under the
# warmed trace. See image_smoke above.
image_smoke

# Alloc regression: re-measure host allocation traffic on the two
# allocation-heavy benchmarks and fail if allocsPerOp or bytesPerOp
# regress more than 10% against the committed BENCH_host.json — the
# compact-Value + arena win must not silently erode. Trimmed from
# -short runs (testing.Benchmark needs real iterations).
if [ "$short" != "-short" ]; then
    echo "== alloc regression (towers, puzzle)"
    go run ./cmd/selfbench -hostbench -bench towers -allocguard BENCH_host.json -q >/dev/null
    go run ./cmd/selfbench -hostbench -bench puzzle -allocguard BENCH_host.json -q >/dev/null
fi

# Fuzz smoke: a short budget per front-end fuzzer, enough to catch
# easy regressions in the lexer and parser without stalling CI — plus
# the serving layer's JSON request decoder. Trimmed from -short runs.
if [ "$short" != "-short" ]; then
    echo "== fuzz smoke: FuzzLexer"
    go test -run '^$' -fuzz '^FuzzLexer$' -fuzztime 10s ./internal/lexer
    echo "== fuzz smoke: FuzzParser"
    go test -run '^$' -fuzz '^FuzzParser$' -fuzztime 10s ./internal/parser
    echo "== fuzz smoke: FuzzDecodeEvalRequest"
    go test -run '^$' -fuzz '^FuzzDecodeEvalRequest$' -fuzztime 10s ./internal/wire
    echo "== fuzz smoke: FuzzDecodeRunRequest"
    go test -run '^$' -fuzz '^FuzzDecodeRunRequest$' -fuzztime 5s ./internal/wire
    echo "== fuzz smoke: FuzzNativeDifferential"
    go test -run '^$' -fuzz '^FuzzNativeDifferential$' -fuzztime 10s .
    echo "== fuzz smoke: FuzzBBVDifferential"
    go test -run '^$' -fuzz '^FuzzBBVDifferential$' -fuzztime 10s .
    echo "== fuzz smoke: FuzzImageDecode"
    go test -run '^$' -fuzz '^FuzzImageDecode$' -fuzztime 10s ./internal/image
fi

echo "ci: all checks passed"
