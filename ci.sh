#!/bin/sh
# ci.sh — the checks a change must pass before it lands.
#
#   ./ci.sh          # vet + build + tests + race detector
#   ./ci.sh -short   # the same, with the slow tests trimmed
#
# Tier-1 (build + go test ./...) is the compatibility bar tracked in
# ROADMAP.md; the race run exercises the shared code cache and the
# concurrent differential tests with full interleaving checks.
set -eu
cd "$(dirname "$0")"

short="${1:-}"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test $short ./...

echo "== go test -race ./..."
go test -race $short ./...

# Host-bench smoke: every BenchmarkHost* sub-benchmark runs one
# iteration, proving the wall-clock rail (warm-up, expect checks,
# metric reporting) still works without paying for a real measurement.
echo "== host-bench smoke"
go test -run=NONE -bench=BenchmarkHost -benchtime=1x .

# Adaptive smoke: richards under an adaptive tier schedule with a low
# promotion threshold must install at least one background promotion
# (-assert-promoted fails otherwise) and keep its check value.
echo "== adaptive smoke"
go run ./cmd/selfbench -bench richards -tier adaptive -promote 50 -assert-promoted -q

# Native smoke: the closure-threaded top tier. Eager native mode must
# keep richards' check value, and the adaptive schedule must climb
# both promotion rungs (baseline → optimizing → native) on it
# (-assert-native fails otherwise).
echo "== native smoke"
go run ./cmd/selfbench -bench richards -tier native -q
go run ./cmd/selfbench -bench richards -tier adaptive -promote 50 -assert-promoted -assert-native -q

# Tier differential: -tier=opt must stay bit-identical to the
# hand-built pre-tiering compile path in every modelled quantity,
# across the full benchmark suite.
echo "== tier differential"
go test -run 'TestTierOptBitIdentical' .

# Server smoke: boot selfserved on an ephemeral port and drive it with
# selfload over >= 8 concurrent connections. Asserts, from the server's
# own /metrics: compile-once under steady load (codecache misses stop
# growing after warm-up), at least one background tier promotion under
# the adaptive schedule, and load-shedding with 429 (not hangs) past
# the admission limit. Finishes with SIGTERM and requires a clean
# drain.
echo "== server smoke"
go build -o /tmp/ci-selfserved ./cmd/selfserved
go build -o /tmp/ci-selfload ./cmd/selfload
server_log=$(mktemp)
/tmp/ci-selfserved -addr 127.0.0.1:0 -tier adaptive -promote 20 -pool 4 -queue 16 2>"$server_log" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    url=$(grep -o 'http://[0-9.:]*' "$server_log" | head -1 || true)
    [ -n "$url" ] && break
    sleep 0.1
done
[ -n "$url" ] || { echo "ci: selfserved never came up"; cat "$server_log"; exit 1; }
# eval traffic: 8 connections, same expression — compile-once + values,
# and the pool gauges must show live occupancy while requests run.
/tmp/ci-selfload -url "$url" -c 8 -n 120 \
    -expr '| s <- 0 | 1 upTo: 1000 Do: [ :i | s: s + i ]. s' \
    -check-int -expect-int 499500 -fail-on-error -assert-compile-once \
    -assert-pool-moves -q
# named-benchmark traffic: adaptive promotion must land, and the hot
# method must climb the second rung to the native tier under live load.
/tmp/ci-selfload -url "$url" -c 8 -n 150 -bench sumTo \
    -fail-on-error -min-promotions 1 -min-native-compiles 1 -q
kill -TERM "$server_pid"
wait "$server_pid" || { echo "ci: selfserved did not drain cleanly"; cat "$server_log"; exit 1; }
trap - EXIT
grep -q 'drained cleanly' "$server_log" || { echo "ci: no drain line in log"; cat "$server_log"; exit 1; }
# overload: tiny pool + queue, 16 connections — must shed with 429.
/tmp/ci-selfserved -addr 127.0.0.1:0 -pool 2 -queue 2 2>"$server_log" &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    url=$(grep -o 'http://[0-9.:]*' "$server_log" | head -1 || true)
    [ -n "$url" ] && break
    sleep 0.1
done
[ -n "$url" ] || { echo "ci: selfserved (overload) never came up"; cat "$server_log"; exit 1; }
/tmp/ci-selfload -url "$url" -c 16 -n 100 \
    -expr '| s <- 0 | 1 upTo: 300000 Do: [ :i | s: s + 1 ]. s' -min-429 10 -q
kill -TERM "$server_pid"
wait "$server_pid" || { echo "ci: selfserved (overload) did not drain cleanly"; cat "$server_log"; exit 1; }
trap - EXIT
rm -f "$server_log" /tmp/ci-selfserved /tmp/ci-selfload

# Alloc regression: re-measure host allocation traffic on the two
# allocation-heavy benchmarks and fail if allocsPerOp or bytesPerOp
# regress more than 10% against the committed BENCH_host.json — the
# compact-Value + arena win must not silently erode. Trimmed from
# -short runs (testing.Benchmark needs real iterations).
if [ "$short" != "-short" ]; then
    echo "== alloc regression (towers, puzzle)"
    go run ./cmd/selfbench -hostbench -bench towers -allocguard BENCH_host.json -q >/dev/null
    go run ./cmd/selfbench -hostbench -bench puzzle -allocguard BENCH_host.json -q >/dev/null
fi

# Fuzz smoke: a short budget per front-end fuzzer, enough to catch
# easy regressions in the lexer and parser without stalling CI — plus
# the serving layer's JSON request decoder. Trimmed from -short runs.
if [ "$short" != "-short" ]; then
    echo "== fuzz smoke: FuzzLexer"
    go test -run '^$' -fuzz '^FuzzLexer$' -fuzztime 10s ./internal/lexer
    echo "== fuzz smoke: FuzzParser"
    go test -run '^$' -fuzz '^FuzzParser$' -fuzztime 10s ./internal/parser
    echo "== fuzz smoke: FuzzDecodeEvalRequest"
    go test -run '^$' -fuzz '^FuzzDecodeEvalRequest$' -fuzztime 10s ./internal/wire
    echo "== fuzz smoke: FuzzDecodeRunRequest"
    go test -run '^$' -fuzz '^FuzzDecodeRunRequest$' -fuzztime 5s ./internal/wire
    echo "== fuzz smoke: FuzzNativeDifferential"
    go test -run '^$' -fuzz '^FuzzNativeDifferential$' -fuzztime 10s .
fi

echo "ci: all checks passed"
