package selfgo_test

import (
	"reflect"
	"sync"
	"testing"

	"selfgo"
	"selfgo/internal/ast"
	"selfgo/internal/bench"
	"selfgo/internal/core"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/parser"
	"selfgo/internal/prelude"
	"selfgo/internal/vm"
)

// legacyMeasurement is what the hand-built pre-tiering compile path
// produces for one benchmark: the oracle the -tier=opt differential
// compares against.
type legacyMeasurement struct {
	Value     int64
	Run       selfgo.RunStats
	Methods   int
	CodeBytes int
}

// legacyRun executes b the way the system did before the pass pipeline
// and tiers existed: a bare core.Compiler driven directly, its graphs
// linearized with vm.Assemble + vm.Fuse, a degraded-config retry on
// compile failure, and a private VM. No Pipeline, no Tier, no cache
// sharing — the compile path the refactor replaced, reconstructed from
// primitives so any drift the refactor introduced shows up here.
func legacyRun(t *testing.T, b bench.Benchmark, cfg selfgo.Config) *legacyMeasurement {
	t.Helper()
	w := obj.NewWorld()
	for _, src := range []string{prelude.Source, b.Source} {
		f, err := parser.ParseFile(src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := w.Load(f); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
	w.Finalize()

	m := &vm.VM{
		World:        w,
		Customize:    cfg.Customization,
		SendExtra:    int64(cfg.SendOverheadExtra),
		InstrExtra:   int64(cfg.PerInstrOverhead),
		MissHandlers: cfg.CallSiteICMissHandlers,
		PICs:         cfg.PolymorphicInlineCaches,
	}
	comp := core.New(w, cfg)
	degr := core.New(w, core.Degraded(cfg))
	assemble := func(g *ir.Graph) *vm.Code {
		c := vm.Assemble(g)
		if !cfg.NoSuperinstructions {
			vm.Fuse(c)
		}
		return c
	}
	m.CompileMethod = func(meth *obj.Method, rmap *obj.Map) (*vm.Code, error) {
		g, _, err := comp.CompileMethod(meth, rmap)
		if err != nil {
			if g, _, err = degr.CompileMethod(meth, rmap); err != nil {
				return nil, err
			}
			m.Compile.Degraded++
		}
		return assemble(g), nil
	}
	m.CompileBlock = func(blk *ast.Block, upNames []string) (*vm.Code, error) {
		g, _, err := comp.CompileBlock(blk, upNames)
		if err != nil {
			if g, _, err = degr.CompileBlock(blk, upNames); err != nil {
				return nil, err
			}
			m.Compile.Degraded++
		}
		c := assemble(g)
		c.IsBlock = true
		return c, nil
	}

	r := obj.Lookup(w.Lobby.Map, b.Entry)
	if r == nil || r.Slot.Kind != obj.MethodSlot {
		t.Fatalf("%s: no entry %q", b.Name, b.Entry)
	}
	m.Stats = vm.RunStats{}
	v, err := m.RunMethod(r.Slot.Meth, obj.Obj(w.Lobby))
	if err != nil {
		t.Fatalf("%s under %s (legacy): %v", b.Name, cfg.Name, err)
	}
	return &legacyMeasurement{
		Value:     v.I(),
		Run:       m.Stats,
		Methods:   m.Compile.Methods,
		CodeBytes: m.Compile.CodeBytes,
	}
}

// TestTierOptBitIdentical is the committed differential the refactor is
// gated on: for every benchmark in the suite, the tiered system at
// -tier=opt (both the private NewSystem and the shared NewTieredSystem
// construction) agrees with the hand-built legacy compile path in the
// check value and EVERY modelled quantity — the full RunStats struct,
// methods compiled, and code bytes emitted. The pipeline refactor,
// hotness counters and promotion machinery must be invisible in opt
// mode.
func TestTierOptBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential is slow; skipped in -short mode")
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cfg := selfgo.NewSELF
			want := legacyRun(t, b, cfg)

			check := func(label string, sys *selfgo.System, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if err := sys.LoadSource(b.Source); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				res, err := sys.Call(b.Entry)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.Value.I() != want.Value {
					t.Errorf("%s: value = %d, legacy = %d", label, res.Value.I(), want.Value)
				}
				if !reflect.DeepEqual(res.Run, want.Run) {
					t.Errorf("%s: RunStats diverge from legacy:\n got %+v\nwant %+v", label, res.Run, want.Run)
				}
				if res.Compile.Methods != want.Methods || res.Compile.CodeBytes != want.CodeBytes {
					t.Errorf("%s: compile record diverges: %d methods/%d bytes, legacy %d/%d",
						label, res.Compile.Methods, res.Compile.CodeBytes, want.Methods, want.CodeBytes)
				}
			}

			sys, err := selfgo.NewSystem(cfg)
			check("NewSystem", sys, err)
			tiered, err := selfgo.NewTieredSystem(cfg, selfgo.ModeOpt, 0)
			check("NewTieredSystem(opt)", tiered, err)
		})
	}
}

// inlineEvents pulls the inline pass's event count out of a compile-log
// entry's per-pass breakdown.
func inlineEvents(t *testing.T, e selfgo.MethodCompile) int {
	t.Helper()
	for _, ps := range e.Stats.Passes {
		if ps.Name == "inline" {
			return ps.Events
		}
	}
	t.Fatalf("compile of %s carries no inline pass stat", e.Name)
	return 0
}

// assertAdaptivePromotes runs one benchmark in adaptive mode with a low
// threshold and asserts the acceptance criteria: at least one promotion
// is recorded, the result is unchanged across the tier swap, and the
// promoted code of some hot method inlines sends the baseline tier had
// left dynamically dispatched (witnessed by the inline pass stats of
// the two compile-log entries).
func assertAdaptivePromotes(t *testing.T, name string) {
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	sys, err := selfgo.NewTieredSystem(selfgo.NewSELF, selfgo.ModeAdaptive, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSource(b.Source); err != nil {
		t.Fatal(err)
	}
	first, err := sys.Call(b.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if first.Run.Promotions < 1 {
		t.Errorf("cold run requested %d promotions, want >= 1", first.Run.Promotions)
	}
	if first.Run.Harvests < 1 {
		t.Errorf("cold run harvested %d feedback snapshots, want >= 1", first.Run.Harvests)
	}
	sys.DrainPromotions()
	steady, err := sys.Call(b.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if first.Value.I() != steady.Value.I() {
		t.Fatalf("value changed across promotion: %d -> %d", first.Value.I(), steady.Value.I())
	}
	if b.HasExpect && steady.Value.I() != b.Expect {
		t.Fatalf("steady value = %d, want %d", steady.Value.I(), b.Expect)
	}
	ps := sys.PromotionStats()
	if ps.Installed < 1 {
		t.Fatalf("%d promotions installed, want >= 1 (fails=%d discards=%d)", ps.Installed, ps.Fails, ps.Discards)
	}

	// Find a method compiled at both tiers whose optimizing recompile
	// inlined sends the baseline left dispatched: baseline's tier table
	// turns InlineMethods off, so any promoted method that now inlines a
	// user method is executing a send baseline dispatched dynamically.
	type pair struct{ base, opt *selfgo.MethodCompile }
	byName := map[string]*pair{}
	for _, e := range sys.CompileLog() {
		e := e
		p := byName[e.Name]
		if p == nil {
			p = &pair{}
			byName[e.Name] = p
		}
		switch e.Tier {
		case "baseline":
			if p.base == nil {
				p.base = &e
			}
		case "optimizing":
			if p.opt == nil {
				p.opt = &e
			}
		}
	}
	// Baseline may still inline trivial primitive wrappers (its
	// InlinePrimitives knob is kept), so the witness is strictly MORE
	// method inlining at the optimizing tier, not any-vs-none.
	found := false
	for _, p := range byName {
		if p.base == nil || p.opt == nil {
			continue
		}
		if p.opt.Stats.InlinedMethods > p.base.Stats.InlinedMethods &&
			inlineEvents(t, *p.opt) > inlineEvents(t, *p.base) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no promoted method inlines a send its baseline compile left dispatched (log: %d entries)", len(sys.CompileLog()))
	}
}

func TestAdaptivePromotesRichards(t *testing.T) {
	assertAdaptivePromotes(t, "richards")
}

func TestAdaptivePromotesStanford(t *testing.T) {
	// queens is a plain Stanford benchmark with hot inner methods.
	assertAdaptivePromotes(t, "queens")
}

// TestConcurrentAdaptivePromotion: N worker VMs sharing one adaptive
// cache all hammer the same hot methods. Promotion must stay
// single-flight (at most one optimizing compile per method no matter
// how many workers cross the threshold), the Get side must stay
// compile-once, and every worker must compute the right value before
// and after the swaps land. Run under -race this also checks the
// hotness counters and the promote/install path for data races.
func TestConcurrentAdaptivePromotion(t *testing.T) {
	b, ok := bench.ByName("richards")
	if !ok {
		t.Fatal("no richards benchmark")
	}
	root, err := selfgo.NewTieredSystem(selfgo.NewSELF, selfgo.ModeAdaptive, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.LoadSource(b.Source); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	systems := make([]*selfgo.System, workers)
	systems[0] = root
	for i := 1; i < workers; i++ {
		if systems[i], err = root.Fork(); err != nil {
			t.Fatal(err)
		}
	}
	values := make([]int64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range systems {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := systems[i].Call(b.Entry)
			if err != nil {
				errs[i] = err
				return
			}
			values[i] = res.Value.I()
		}()
	}
	wg.Wait()
	root.DrainPromotions()

	for i := range systems {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if values[i] != b.Expect {
			t.Errorf("worker %d computed %d, want %d", i, values[i], b.Expect)
		}
	}

	ps := root.PromotionStats()
	if ps.Installed < 1 {
		t.Fatalf("%d promotions installed, want >= 1 (fails=%d discards=%d)", ps.Installed, ps.Fails, ps.Discards)
	}
	if ps.Fails != 0 {
		t.Errorf("%d promotions failed", ps.Fails)
	}

	// No double compile: single-flight holds per tier — each method
	// compiles at most once at baseline (Get flight), at most once at
	// optimizing (first promotion rung) and at most once at native
	// (second rung), across all 8 workers.
	perTier := map[string]map[string]int{}
	for _, e := range root.CompileLog() {
		if perTier[e.Tier] == nil {
			perTier[e.Tier] = map[string]int{}
		}
		perTier[e.Tier][e.Name]++
	}
	for tier, names := range perTier {
		for name, n := range names {
			if n > 1 {
				t.Errorf("%s compiled %d times at tier %s; single-flight broken", name, n, tier)
			}
		}
	}
	// Every install is exactly one promotion compile: an optimizing
	// compile for the first rung, a native compile for the second.
	if n := len(perTier["optimizing"]) + len(perTier["native"]); int64(n) != ps.Installed {
		t.Errorf("%d optimizing+native compiles vs %d installs: promotions must account one compile each",
			n, ps.Installed)
	}

	cs, ok := root.CacheStats()
	if !ok {
		t.Fatal("shared system reports no cache stats")
	}
	if !cs.CompileOnce() {
		t.Errorf("compile-once violated: %+v", cs)
	}

	// A steady-state lap over the promoted code still agrees, and the
	// promotion counters are monotone (nothing un-promotes).
	res, err := root.Call(b.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I() != b.Expect {
		t.Errorf("steady value = %d, want %d", res.Value.I(), b.Expect)
	}
	root.DrainPromotions()
	if after := root.PromotionStats(); after.Installed < ps.Installed {
		t.Errorf("installed promotions went backwards: %d -> %d", ps.Installed, after.Installed)
	}
}
