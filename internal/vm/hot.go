// Hotness tracking and type-feedback harvest: the VM side of tiered
// adaptive compilation. A baseline-tier Code accumulates invocation
// and loop-backedge counts (one atomic add each, charged only while an
// OnHot hook is installed — the eager tiers pay nothing); when the
// combined count first reaches PromoteThreshold, OnHot fires exactly
// once for that Code, and the host typically harvests the inline
// caches as receiver-map feedback and requests a cache promotion.
package vm

import (
	"selfgo/internal/ir"
	"selfgo/internal/types"
)

// noteInvoke charges one invocation and fires OnHot at the threshold.
func (vm *VM) noteInvoke(code *Code) {
	n := code.Hot.invocations.Add(1)
	if n+code.Hot.backedges.Load() >= vm.PromoteThreshold {
		vm.triggerHot(code)
	}
}

// noteBackedge charges one loop backedge (a backward jump in the
// instruction stream) and fires OnHot at the threshold. Backedges make
// long-running loops hot without waiting for the method to return and
// be re-invoked — the classic two-counter JIT trigger.
func (vm *VM) noteBackedge(code *Code) {
	n := code.Hot.backedges.Add(1)
	if n+code.Hot.invocations.Load() >= vm.PromoteThreshold {
		vm.triggerHot(code)
	}
}

// triggerHot fires OnHot once per Code: the requested flag is shared
// by every VM executing this Code, so exactly one CAS winner calls its
// hook even when several VMs cross the threshold concurrently.
func (vm *VM) triggerHot(code *Code) {
	if code.Hot.requested.CompareAndSwap(false, true) {
		vm.OnHot(code)
	}
}

// maxFeedbackMaps bounds feedback per selector: a send site that
// observed more distinct receiver maps than this is megamorphic —
// chaining that many type tests would cost more than the dispatch —
// so the selector is dropped from the harvest.
const maxFeedbackMaps = 3

// Harvest snapshots the receiver maps this VM's inline caches observed
// at code's send sites, as type feedback for a higher compilation
// tier: for each dynamically-dispatched selector, the monomorphic
// entry's map followed by the PIC's maps, deduplicated, megamorphic
// selectors dropped. The snapshot reads only this VM's own IC state
// (the per-VM side table when code is shared), so it is safe to call
// from the VM's goroutine at any point, including from inside OnHot.
func (vm *VM) Harvest(code *Code) *types.Feedback {
	vm.init()
	fb := types.NewFeedback()
	over := map[string]bool{}
	for i := range code.Instrs {
		in := &code.Instrs[i]
		if in.Op != ir.Send || in.Direct || over[in.Sel] {
			continue
		}
		ic := vm.icFor(code, in.IC)
		if ic.m != nil {
			fb.Add(in.Sel, ic.m)
		}
		for j := range ic.pic {
			fb.Add(in.Sel, ic.pic[j].m)
		}
		if len(fb.Maps(in.Sel)) > maxFeedbackMaps {
			fb.Drop(in.Sel)
			over[in.Sel] = true
		}
	}
	return fb
}
