package vm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"selfgo/internal/ast"
	"selfgo/internal/codecache"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
)

// Calling convention shared with the compiler: register 0 is the
// receiver, register 1 the result slot, parameters start at 2.
const (
	RegSelf      = 0
	RegParamBase = 2
)

// RunStats is the dynamic cost accounting for one execution.
type RunStats struct {
	Cycles       int64
	Instrs       int64
	Sends        int64 // dynamically-dispatched sends executed
	ICHits       int64
	ICMisses     int64
	Calls        int64 // statically-bound calls
	TypeTests    int64
	OvflChecks   int64
	BoundsChecks int64
	BlockValues  int64
	Allocs       int64
	AllocBytes   int64 // modelled bytes of vector/clone storage (per-element charge)
	MaxDepth     int

	// Adaptive-tier activity this VM performed during the run; always
	// zero outside adaptive mode, so differential comparisons of whole
	// RunStats across eager modes stay exact.
	Promotions int64 // tier-promotion requests fired (OnHot accepted by the cache)
	Harvests   int64 // type-feedback harvests taken from this VM's inline caches

	// Lazy basic-block-versioning activity (vm/bbv.go); all zero under
	// the split strategy, so whole-RunStats differentials there stay
	// exact.
	BBVVersions     int64 // block versions this VM materialized
	BBVCapHits      int64 // specialized contexts served the generic fallback at the cap
	BBVElidedCtx    int64 // type tests elided by a context-proven fact
	BBVElidedShape  int64 // type tests elided by a typed-shape fact
	BBVVersionBytes int64 // modelled bytes of the versions this VM materialized
}

// CompileRecord aggregates on-the-fly compilation work triggered by a
// run: the paper's compile-time and code-space numbers are sums over
// all methods compiled while the benchmark warms up. Methods and
// CodeBytes count only compilations this VM itself performed — with a
// shared cache, code another VM compiled arrives as a CacheHits or
// CacheWaits instead.
type CompileRecord struct {
	Methods   int
	CodeBytes int

	// Degraded counts compilations that succeeded only under the
	// degraded fallback configuration after the optimizing compiler
	// failed or panicked (see core.Degraded).
	Degraded int

	// Shared-cache outcomes observed by this VM; all zero when the VM
	// runs against its private per-VM cache.
	CacheHits   int64 // code found already compiled in the shared cache
	CacheMisses int64 // compilations this VM won (== compiler runs)
	CacheWaits  int64 // blocked on another VM's in-flight compilation
}

// VM executes compiled code, compiling methods and blocks on demand
// through the injected callbacks (dynamic compilation, as in both SELF
// systems and ParcPlace Smalltalk).
type VM struct {
	World *obj.World

	// CompileMethod compiles a method customized for rmap (rmap nil
	// when customization is off).
	CompileMethod func(m *obj.Method, rmap *obj.Map) (*Code, error)
	// CompileBlock compiles a block for out-of-line execution; upNames
	// are the closure's captured variable names.
	CompileBlock func(b *ast.Block, upNames []string) (*Code, error)

	// Customize keys the code cache by receiver map.
	Customize bool
	// SendExtra is added to every dynamic send (old SELF-90 overhead).
	SendExtra int64
	// InstrExtra is added to every executed instruction (ST-80's
	// translated-code quality penalty).
	InstrExtra int64
	// MissHandlers models §6.1 call-site-specific miss handlers.
	MissHandlers bool
	// PICs enables polymorphic inline caches (up to picEntries maps
	// per send site).
	PICs bool

	// Strategy distinguishes code compiled under different
	// specialization strategies in the shared code cache (see
	// core.Strategy; the numeric value is mixed into every cache key).
	// Execution itself keys off Code.bbv, not this field.
	Strategy uint8

	// OnHot, when non-nil, enables hotness tracking: every invocation
	// and loop backedge charges one atomic add on the executed Code's
	// Hot counters, and the first time a Code's combined count reaches
	// PromoteThreshold the hook fires — exactly once per Code (a CAS
	// guards it), on this VM's goroutine, from inside the run loop.
	// The hook must not re-enter the VM. Nil leaves the fast path
	// entirely free of hotness work.
	OnHot func(code *Code)
	// PromoteThreshold is the invocations+backedges count at which
	// OnHot fires. Values <= 0 fire on the first execution.
	PromoteThreshold int64

	// Budget bounds each execution (zero fields are unlimited); see
	// Budget. RunMethodCtx additionally honors context cancellation.
	Budget Budget

	// Arena, when non-nil, backs vector and clone storage with
	// recycled per-VM chunks instead of individual Go allocations.
	// The owner decides the epoch boundary by calling Arena.Reset
	// between runs (never during one): the serving layer resets when a
	// pooled VM returns to the pool. Nil keeps plain heap allocation.
	Arena *obj.Arena

	// Shared, when non-nil, replaces the private per-VM code caches
	// with a process-wide sharded single-flight cache: compiled Code is
	// shared read-only across every VM attached to the same cache, and
	// the mutable inline-cache state moves into per-VM side tables (see
	// icFor). A VM itself is single-goroutine; concurrency comes from
	// running one VM per goroutine against one Shared cache and one
	// World (read-side).
	Shared *codecache.Cache[*Code]

	// Out receives _Print output (defaults to io.Discard).
	Out io.Writer

	// Trace, when non-nil, receives one line per executed instruction
	// (pc, rendered instruction, frame depth) — the moral equivalent of
	// single-stepping the generated SPARC code.
	Trace io.Writer

	Stats   RunStats
	Compile CompileRecord

	methodCache map[methodKey]*Code
	blockCache  map[*ast.Block]*Code

	// sharedICs holds this VM's inline-cache state for shared Code:
	// the Code object is immutable after assembly, so each VM keeps its
	// own send-site caches, exactly as each native SELF process would
	// have its own writable inline-cache words.
	sharedICs map[*Code][]inlineCache

	// sharedGen is the cache generation at which this VM's private
	// memos (methodCache/blockCache acting as an L1 over Shared) were
	// valid; when the shared cache's generation moves past it, the
	// memos and inline caches are dropped.
	sharedGen int64

	depth int

	// freeFrames is the activation-frame freelist (see pool.go). No
	// locking: a VM is single-goroutine, frames never cross VMs.
	freeFrames []*frame

	// argScratch is the reusable argument buffer for argVals. Safe as a
	// single per-VM buffer because every consumer copies or consumes the
	// arguments before any nested guest execution can refill it.
	argScratch []obj.Value

	// nret carries a Return instruction's value from a native closure
	// back to the runNative driver (see backend_native.go). One scratch
	// slot suffices: a VM is single-goroutine, and any nested invoke a
	// closure performs returns before the outer driver reads the slot.
	nret obj.Value

	// Cooperative budget state for the current run (see budget.go):
	// ctx is the cancellation context (nil when none), pollAt the
	// Instrs count at which the next poll fires, pollEvery the armed
	// stride (Budget.PollEvery or the default), fuelStart/allocStart
	// the counters at run entry (budgets are per-run).
	ctx        context.Context
	pollAt     int64
	pollEvery  int64
	fuelStart  int64
	allocStart int64
	bytesStart int64

	// curEp caches Arena.Epoch() for the duration of a run (0 when no
	// arena): the store barrier compares every written-to object's
	// epoch against it, and only mismatches take the slow path.
	curEp uint32

	// Copy-on-write state (EnableCOW): cowEp is the frozen base
	// world's epoch — stores into objects carrying it are redirected
	// into per-VM shadow copies, reads through them see the shadow.
	// cowShadowEp stamps the shadows themselves (fork-permanent, so
	// the escape check must not mistake them for arena values).
	// Base-object stores already miss the `o.Ep != curEp` fast-path
	// compare, so the write barrier costs nothing new; reads pay one
	// predictable `cowEp != 0` compare. cowShadows is keyed by the
	// base object. Zero cowEp (the default) disables all of it.
	cowEp       uint32
	cowShadowEp uint32
	cowShadows  map[*obj.Object]*obj.Object
}

type methodKey struct {
	meth *obj.Method
	rmap *obj.Map
}

// frame is one activation.
type frame struct {
	regs []obj.Value
	up   map[string]*obj.Value // block frames: captured variables
	home homeRef               // where a non-local return lands
	dead bool

	// escaped marks frames a closure has captured (registers by address
	// and/or the frame itself as a non-local-return home); such frames
	// must never return to the pool — a recycled home would make a dead
	// frame look live again. See makeBlock and pool.go.
	escaped bool
}

// homeRef identifies the home of a non-local return: a frame, plus —
// when the home method was inlined — the pc of its epilogue landing
// and the register receiving the value. resume < 0 means "return from
// the whole frame".
type homeRef struct {
	fr     *frame
	resume int
	reg    ir.Reg
}

// nlr is the panic payload of a non-local return.
type nlr struct {
	ref homeRef
	val obj.Value
}

func (vm *VM) init() {
	if vm.pollAt == 0 {
		vm.pollAt = math.MaxInt64
	}
	if vm.methodCache == nil {
		vm.methodCache = map[methodKey]*Code{}
	}
	if vm.blockCache == nil {
		vm.blockCache = map[*ast.Block]*Code{}
	}
	if vm.sharedICs == nil && vm.Shared != nil {
		vm.sharedICs = map[*Code][]inlineCache{}
	}
	if vm.Out == nil {
		vm.Out = io.Discard
	}
}

// CodeFor returns (compiling on demand) the code for meth with
// receiver map rmap.
func (vm *VM) CodeFor(meth *obj.Method, rmap *obj.Map) (*Code, error) {
	vm.init()
	key := methodKey{meth: meth}
	if vm.Customize {
		key.rmap = rmap
	}
	if vm.Shared != nil {
		vm.checkSharedGen()
		if c, ok := vm.methodCache[key]; ok {
			return c, nil
		}
		c, err := vm.sharedGet(codecache.Key{Meth: meth, RMap: key.rmap, Strat: vm.Strategy}, func() (*Code, error) {
			return vm.CompileMethod(meth, key.rmap)
		})
		if err != nil {
			return nil, err
		}
		vm.methodCache[key] = c
		return c, nil
	}
	if c, ok := vm.methodCache[key]; ok {
		return c, nil
	}
	c, err := vm.CompileMethod(meth, key.rmap)
	if err != nil {
		return nil, err
	}
	vm.methodCache[key] = c
	vm.Compile.Methods++
	vm.Compile.CodeBytes += c.Bytes
	return c, nil
}

func (vm *VM) blockCodeFor(cl *obj.Closure) (*Code, error) {
	vm.init()
	b := cl.Ast
	if vm.Shared != nil {
		vm.checkSharedGen()
		if c, ok := vm.blockCache[b]; ok {
			return c, nil
		}
		c, err := vm.sharedGet(codecache.Key{Blk: b, Strat: vm.Strategy}, func() (*Code, error) {
			return vm.CompileBlock(b, upNamesOf(cl))
		})
		if err != nil {
			return nil, err
		}
		vm.blockCache[b] = c
		return c, nil
	}
	if c, ok := vm.blockCache[b]; ok {
		return c, nil
	}
	c, err := vm.CompileBlock(b, upNamesOf(cl))
	if err != nil {
		return nil, err
	}
	vm.blockCache[b] = c
	vm.Compile.Methods++
	vm.Compile.CodeBytes += c.Bytes
	return c, nil
}

func upNamesOf(cl *obj.Closure) []string {
	names := make([]string, 0, len(cl.UpLocals))
	for n := range cl.UpLocals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkSharedGen drops this VM's private memos (methodCache/blockCache
// acting as an L1 over Shared, plus the shared-Code inline caches) when
// the shared cache's invalidation generation has moved. Sends are far
// hotter than compiles, so resolving them from the private memo keeps
// workers off the shard locks; the generation check is one atomic load.
func (vm *VM) checkSharedGen() {
	if g := vm.Shared.Generation(); g != vm.sharedGen {
		clear(vm.methodCache)
		clear(vm.blockCache)
		clear(vm.sharedICs)
		vm.sharedGen = g
	}
}

// sharedGet routes a compilation through the shared cache, folding the
// single-flight outcome into this VM's compile record: only the flight
// winner charges Methods/CodeBytes, so summing records across VMs still
// counts each compilation exactly once. A compile callback that
// panicked inside the flight surfaces to every caller as a
// KindInternal RuntimeError with the Go stack attached.
func (vm *VM) sharedGet(key codecache.Key, compile func() (*Code, error)) (*Code, error) {
	c, outcome, err := vm.Shared.Get(key, compile)
	if err != nil {
		var pe *codecache.PanicError
		if errors.As(err, &pe) {
			return nil, &RuntimeError{Kind: KindInternal, Msg: pe.Error(), GoStack: pe.Stack}
		}
		return nil, err
	}
	switch outcome {
	case codecache.Compiled:
		vm.Compile.CacheMisses++
		vm.Compile.Methods++
		vm.Compile.CodeBytes += c.Bytes
	case codecache.Hit:
		vm.Compile.CacheHits++
	case codecache.Wait:
		vm.Compile.CacheWaits++
	}
	return c, nil
}

// icFor returns the send site's inline-cache slot: the Code's own array
// when the code is private to this VM, or this VM's side table when the
// Code is shared (shared Code must stay immutable).
func (vm *VM) icFor(code *Code, idx int) *inlineCache {
	if vm.Shared == nil {
		return &code.ics[idx]
	}
	ics := vm.sharedICs[code]
	if ics == nil {
		ics = make([]inlineCache, len(code.ics))
		vm.sharedICs[code] = ics
	}
	return &ics[idx]
}

const maxDepth = 100000

// RunMethod executes meth with the given receiver and arguments.
func (vm *VM) RunMethod(meth *obj.Method, recv obj.Value, args ...obj.Value) (obj.Value, error) {
	return vm.runMethod(nil, meth, recv, args)
}

// runMethod is the public execution boundary shared by RunMethod and
// RunMethodCtx: it validates arity, arms the cooperative budget poll,
// and contains any Go panic that escapes the interpreter or an
// on-demand compilation — a misbehaving guest program or a compiler
// bug degrades this call, never the process.
func (vm *VM) runMethod(ctx context.Context, meth *obj.Method, recv obj.Value, args []obj.Value) (val obj.Value, err error) {
	vm.init()
	if meth.Ast != nil {
		if want := len(meth.Ast.Params); len(args) != want {
			return obj.Nil(), &RuntimeError{Kind: KindError,
				Msg: fmt.Sprintf("%s takes %d argument(s), got %d", meth, want, len(args))}
		}
	}
	vm.startRun(ctx)
	defer func() {
		vm.ctx = nil
		vm.pollAt = math.MaxInt64
		if r := recover(); r != nil {
			val, err = obj.Nil(), containPanic(r)
		}
	}()
	code, err := vm.CodeFor(meth, vm.World.MapOf(recv))
	if err != nil {
		return obj.Nil(), err
	}
	return vm.invoke(code, recv, args, nil)
}

// invoke runs code in a fresh frame. up is non-nil for block frames.
func (vm *VM) invoke(code *Code, recv obj.Value, args []obj.Value, up map[string]*obj.Value) (val obj.Value, err error) {
	if vm.OnHot != nil {
		vm.noteInvoke(code)
	}
	vm.depth++
	if vm.depth > vm.Stats.MaxDepth {
		vm.Stats.MaxDepth = vm.depth
	}
	if vm.depth > vm.depthLimit() {
		vm.depth--
		return obj.Nil(), &RuntimeError{Kind: KindStackOverflow, Msg: "stack overflow"}
	}
	fr := vm.getFrame(code.NumRegs)
	fr.up = up
	fr.home = homeRef{fr: fr, resume: -1}
	if code.NumRegs > RegSelf {
		fr.regs[RegSelf] = recv
	}
	for i, a := range args {
		if RegParamBase+i < len(fr.regs) {
			fr.regs[RegParamBase+i] = a
		}
	}
	defer func() {
		fr.dead = true
		vm.depth--
		// Recycling before the recover logic keeps the frame pooled on
		// every exit (return, nlr catch, re-panic); putFrame refuses
		// escaped frames, and no getFrame can run until unwinding ends,
		// so the identity checks below still see this fr unaliased.
		vm.putFrame(fr)
		if r := recover(); r != nil {
			if n, ok := r.(nlr); ok {
				if n.ref.fr == fr && n.ref.resume < 0 {
					val, err = n.val, nil
					return
				}
				panic(r) // keep unwinding toward the home frame
			}
			panic(r)
		}
	}()
	return vm.exec(code, fr)
}

// exec runs a frame, restarting at the landing pc whenever a non-local
// return from an inlined home method unwinds into this frame.
func (vm *VM) exec(code *Code, fr *frame) (obj.Value, error) {
	if !code.hasLandings {
		// No MkBlk in this code carries a resume landing, so no nlr can
		// ever target (fr, resume>=0): skip the recover wrapper.
		return vm.run(code, fr, 0)
	}
	pc := 0
	for {
		v, resume, err := vm.execFrom(code, fr, pc)
		if resume < 0 {
			return v, err
		}
		pc = resume
	}
}

func (vm *VM) execFrom(code *Code, fr *frame, startPC int) (val obj.Value, resumePC int, err error) {
	resumePC = -1
	defer func() {
		if r := recover(); r != nil {
			if n, ok := r.(nlr); ok && n.ref.fr == fr && n.ref.resume >= 0 {
				fr.regs[n.ref.reg] = n.val
				resumePC = n.ref.resume
				return
			}
			panic(r)
		}
	}()
	val, err = vm.run(code, fr, startPC)
	return val, -1, err
}

// run is the backend seam: one frame's execution dispatches to the
// switch interpreter (runFast), its instrumented twin (runTraced, when
// single-step tracing is on), or the closure-threaded native driver
// (runNative, when the code carries a native lowering). All three
// engines execute the same Instrs stream with identical modelled
// accounting; tracing deliberately wins over the native lowering so a
// traced run of native-tier code single-steps the canonical stream.
func (vm *VM) run(code *Code, fr *frame, pc int) (obj.Value, error) {
	if vm.Trace != nil {
		return vm.runTraced(code, fr, pc)
	}
	if code.native != nil {
		return vm.runNative(code, fr, pc)
	}
	return vm.runFast(code, fr, pc)
}

// runFast is the hot interpreter loop.
//
// Cycle accounting is precomputed: every instruction's static modelled
// cost — and, for superinstructions, the summed cost of all
// constituents — was folded into Instr.Cost at assembly, so the loop
// charges one add per dispatch; only genuinely dynamic costs (vector
// fill, clone size, send dispatch, primitive calls) remain in the
// cases. A fused case that bails out early (fault, or a checked-arith
// branch to the overflow target) uncharges its unexecuted tail,
// keeping Stats bit-identical to the unfused stream.
//
// KEEP IN SYNC with runTraced: the two loops must execute identically;
// the traced loop only adds the per-instruction trace line. The
// fused-vs-unfused and traced-vs-fast differential tests pin this.
func (vm *VM) runFast(code *Code, fr *frame, pc int) (val obj.Value, err error) {
	// As an error unwinds through the activations it grows a Self-level
	// backtrace, one frame per run invocation; pc holds the faulting
	// (or calling) instruction when the deferred append runs.
	defer func() {
		if err != nil {
			pushFrame(err, code, pc)
		}
	}()
	st := &vm.Stats
	extra := vm.InstrExtra
	trackHot := vm.OnHot != nil
	cowEp := vm.cowEp // non-zero only on copy-on-write forks
	shapes := vm.World.ShapeTracking
	// Lazy basic-block versioning (vm/bbv.go): anchor a version at the
	// method entry and advance it across every branch; ver is nil when
	// the code is unversioned or control resumed at a landing pad (the
	// first branch re-anchors).
	bbvOn := code.bbv != nil
	var ver *bbvVersion
	if bbvOn && pc == 0 {
		ver = vm.bbvAnchor(code)
	}
	for pc >= 0 && pc < len(code.Instrs) {
		in := &code.Instrs[pc]
		st.Instrs += int64(in.N)
		if st.Instrs >= vm.pollAt {
			if perr := vm.poll(st); perr != nil {
				return obj.Nil(), perr
			}
		}
		st.Cycles += in.Cost
		if extra != 0 {
			st.Cycles += extra * int64(in.N)
		}
		switch in.Op {
		case opJmp:
			if trackHot && in.T <= pc {
				vm.noteBackedge(code)
			}
			if bbvOn {
				ver = vm.bbvEdge(code, ver, pc, true, in.T)
			}
			pc = in.T
			continue
		case ir.Const:
			fr.regs[in.Dst] = in.Val
		case ir.Move:
			fr.regs[in.Dst] = fr.regs[in.A]
		case ir.LoadF:
			o := fr.regs[in.A].Obj()
			if o == nil || in.Index >= len(o.Fields) {
				return obj.Nil(), errBadField(code, "access")
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Fields[in.Index]
		case ir.StoreF:
			o := fr.regs[in.A].Obj()
			if o == nil || in.Index >= len(o.Fields) {
				return obj.Nil(), errBadField(code, "store")
			}
			if o.Ep != vm.curEp {
				o = vm.storeSlow(o, fr.regs[in.B])
			}
			if shapes {
				vm.World.NoteFieldStore(o.Map, in.Index, fr.regs[in.B])
			}
			o.Fields[in.Index] = fr.regs[in.B]
		case ir.LoadE:
			o := fr.regs[in.A].Obj()
			if o == nil {
				return obj.Nil(), errElemNonObject(code, "load")
			}
			i := fr.regs[in.B].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				return obj.Nil(), errElemOOB(code, "load", i, len(o.Elems))
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Elems[i]
		case ir.StoreE:
			o := fr.regs[in.A].Obj()
			if o == nil {
				return obj.Nil(), errElemNonObject(code, "store")
			}
			i := fr.regs[in.B].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				return obj.Nil(), errElemOOB(code, "store", i, len(o.Elems))
			}
			if o.Ep != vm.curEp {
				o = vm.storeSlow(o, fr.regs[in.C])
			}
			o.Elems[i] = fr.regs[in.C]
		case ir.VecLen:
			o := fr.regs[in.A].Obj()
			if o == nil {
				return obj.Nil(), &RuntimeError{Msg: "vecLen of non-vector"}
			}
			fr.regs[in.Dst] = obj.Int(int64(len(o.Elems)))
		case ir.NewVec:
			if verr := vm.makeVector(st, fr, in); verr != nil {
				return obj.Nil(), verr
			}
		case ir.CloneOp:
			if cerr := vm.makeClone(st, fr, in); cerr != nil {
				return obj.Nil(), cerr
			}
		case ir.Arith:
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = in.F
				continue
			}
		case ir.CmpBr:
			if in.bounds {
				st.BoundsChecks++
			}
			taken := cmpTaken(in.COp, fr.regs[in.A], fr.regs[in.B])
			target := in.F
			if taken {
				target = in.T
			}
			if bbvOn {
				ver = vm.bbvEdge(code, ver, pc, taken, target)
			}
			pc = target
			continue
		case ir.TypeTest:
			if bbvOn && ver != nil && ver.BranchPC == pc && ver.Elide != bbvElideNone {
				if taken, ok := vm.bbvElide(st, ver, in); ok {
					target := in.F
					if taken {
						target = in.T
					}
					ver = vm.bbvEdge(code, ver, pc, taken, target)
					pc = target
					continue
				}
			}
			st.TypeTests++
			taken := vm.World.MapOf(fr.regs[in.A]) == in.TestMap
			target := in.F
			if taken {
				target = in.T
			}
			if bbvOn {
				ver = vm.bbvEdge(code, ver, pc, taken, target)
			}
			pc = target
			continue
		case ir.Send:
			v, serr := vm.execSend(in, fr, code)
			if serr != nil {
				return obj.Nil(), serr
			}
			if in.Dst != ir.NoReg {
				fr.regs[in.Dst] = v
			}
		case ir.Call:
			st.Calls++
			callee, cerr := vm.CodeFor(in.Callee.Meth, in.Callee.RMap)
			if cerr != nil {
				return obj.Nil(), cerr
			}
			v, cerr := vm.invoke(callee, fr.regs[in.Args[0]], vm.argVals(in.Args[1:], fr), nil)
			if cerr != nil {
				return obj.Nil(), cerr
			}
			if in.Dst != ir.NoReg {
				fr.regs[in.Dst] = v
			}
		case ir.PrimOp:
			v, perr := vm.execPrim(in, fr)
			if perr != nil {
				return obj.Nil(), perr
			}
			if in.Dst != ir.NoReg {
				fr.regs[in.Dst] = v
			}
		case ir.MkBlk:
			vm.makeBlock(st, fr, in)
		case ir.Fail:
			return obj.Nil(), failError(code, fr, in)
		case ir.Return:
			return fr.regs[in.A], nil
		case ir.NLReturn:
			if fr.home.fr == nil || fr.home.fr.dead {
				return obj.Nil(), &RuntimeError{Msg: "non-local return from dead home frame"}
			}
			panic(nlr{ref: fr.home, val: fr.regs[in.A]})
		case ir.LoadUp:
			p := fr.up[in.Sel]
			if p == nil {
				return obj.Nil(), &RuntimeError{Msg: "unbound up-level variable " + in.Sel}
			}
			fr.regs[in.Dst] = *p
		case ir.StoreUp:
			p := fr.up[in.Sel]
			if p == nil {
				return obj.Nil(), &RuntimeError{Msg: "unbound up-level variable " + in.Sel}
			}
			*p = fr.regs[in.A]

		// Superinstructions (fuse.go): each executes its constituents
		// exactly in order, bailing out — with an uncharge of the
		// unexecuted tail — when an early constituent faults or takes
		// its overflow branch.
		case opMoveMove:
			f := in.Fused
			fr.regs[in.Dst] = fr.regs[in.A]
			fr.regs[f.Dst] = fr.regs[f.A]
		case opConstArith:
			f := in.Fused
			fr.regs[in.Dst] = in.Val
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = f.F
				continue
			}
		case opLoadFArith:
			f := in.Fused
			o := fr.regs[in.A].Obj()
			if o == nil || in.Index >= len(o.Fields) {
				vm.uncharge(st, f)
				return obj.Nil(), errBadField(code, "access")
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Fields[in.Index]
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = f.F
				continue
			}
		case opLoadEArith:
			f := in.Fused
			o := fr.regs[in.A].Obj()
			if o == nil {
				vm.uncharge(st, f)
				return obj.Nil(), errElemNonObject(code, "load")
			}
			i := fr.regs[in.B].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				vm.uncharge(st, f)
				return obj.Nil(), errElemOOB(code, "load", i, len(o.Elems))
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Elems[i]
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = f.F
				continue
			}
		case opArithCmpBr:
			f := in.Fused
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				vm.uncharge(st, f)
				return obj.Nil(), aerr
			}
			if br {
				vm.uncharge(st, f)
				pc = in.F
				continue
			}
			if f.bounds {
				st.BoundsChecks++
			}
			if cmpTaken(f.COp, fr.regs[f.A], fr.regs[f.B]) {
				pc = f.T
			} else {
				pc = f.F
			}
			continue
		case opArithJmp:
			f := in.Fused
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				vm.uncharge(st, f)
				return obj.Nil(), aerr
			}
			if br {
				vm.uncharge(st, f)
				pc = in.F
				continue
			}
			if trackHot && f.T <= pc {
				vm.noteBackedge(code)
			}
			pc = f.T
			continue
		case opConstArithCmpBr:
			f := in.Fused // the Arith
			g := f.Fused  // the CmpBr
			fr.regs[in.Dst] = in.Val
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				vm.uncharge(st, g)
				return obj.Nil(), aerr
			}
			if br {
				vm.uncharge(st, g)
				pc = f.F
				continue
			}
			if g.bounds {
				st.BoundsChecks++
			}
			if cmpTaken(g.COp, fr.regs[g.A], fr.regs[g.B]) {
				pc = g.T
			} else {
				pc = g.F
			}
			continue
		default:
			return obj.Nil(), &RuntimeError{Msg: "bad opcode " + in.Op.String()}
		}
		pc++
	}
	// Falling off the end returns self (defensive; the compiler always
	// emits Return).
	if len(fr.regs) > RegSelf {
		return fr.regs[RegSelf], nil
	}
	return obj.Nil(), nil
}

// runTraced is runFast plus a per-instruction trace line. Fused
// instructions trace once as their fused rendering (constituents
// joined), since they dispatch once.
//
// KEEP IN SYNC with runFast (see its comment).
func (vm *VM) runTraced(code *Code, fr *frame, pc int) (val obj.Value, err error) {
	defer func() {
		if err != nil {
			pushFrame(err, code, pc)
		}
	}()
	st := &vm.Stats
	extra := vm.InstrExtra
	trackHot := vm.OnHot != nil
	cowEp := vm.cowEp // non-zero only on copy-on-write forks
	shapes := vm.World.ShapeTracking
	bbvOn := code.bbv != nil
	var ver *bbvVersion
	if bbvOn && pc == 0 {
		ver = vm.bbvAnchor(code)
	}
	for pc >= 0 && pc < len(code.Instrs) {
		in := &code.Instrs[pc]
		fmt.Fprintf(vm.Trace, "%*s%s @%d: %s\n", vm.depth, "", code.Name, pc, in)
		st.Instrs += int64(in.N)
		if st.Instrs >= vm.pollAt {
			if perr := vm.poll(st); perr != nil {
				return obj.Nil(), perr
			}
		}
		st.Cycles += in.Cost
		if extra != 0 {
			st.Cycles += extra * int64(in.N)
		}
		switch in.Op {
		case opJmp:
			if trackHot && in.T <= pc {
				vm.noteBackedge(code)
			}
			if bbvOn {
				ver = vm.bbvEdge(code, ver, pc, true, in.T)
			}
			pc = in.T
			continue
		case ir.Const:
			fr.regs[in.Dst] = in.Val
		case ir.Move:
			fr.regs[in.Dst] = fr.regs[in.A]
		case ir.LoadF:
			o := fr.regs[in.A].Obj()
			if o == nil || in.Index >= len(o.Fields) {
				return obj.Nil(), errBadField(code, "access")
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Fields[in.Index]
		case ir.StoreF:
			o := fr.regs[in.A].Obj()
			if o == nil || in.Index >= len(o.Fields) {
				return obj.Nil(), errBadField(code, "store")
			}
			if o.Ep != vm.curEp {
				o = vm.storeSlow(o, fr.regs[in.B])
			}
			if shapes {
				vm.World.NoteFieldStore(o.Map, in.Index, fr.regs[in.B])
			}
			o.Fields[in.Index] = fr.regs[in.B]
		case ir.LoadE:
			o := fr.regs[in.A].Obj()
			if o == nil {
				return obj.Nil(), errElemNonObject(code, "load")
			}
			i := fr.regs[in.B].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				return obj.Nil(), errElemOOB(code, "load", i, len(o.Elems))
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Elems[i]
		case ir.StoreE:
			o := fr.regs[in.A].Obj()
			if o == nil {
				return obj.Nil(), errElemNonObject(code, "store")
			}
			i := fr.regs[in.B].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				return obj.Nil(), errElemOOB(code, "store", i, len(o.Elems))
			}
			if o.Ep != vm.curEp {
				o = vm.storeSlow(o, fr.regs[in.C])
			}
			o.Elems[i] = fr.regs[in.C]
		case ir.VecLen:
			o := fr.regs[in.A].Obj()
			if o == nil {
				return obj.Nil(), &RuntimeError{Msg: "vecLen of non-vector"}
			}
			fr.regs[in.Dst] = obj.Int(int64(len(o.Elems)))
		case ir.NewVec:
			if verr := vm.makeVector(st, fr, in); verr != nil {
				return obj.Nil(), verr
			}
		case ir.CloneOp:
			if cerr := vm.makeClone(st, fr, in); cerr != nil {
				return obj.Nil(), cerr
			}
		case ir.Arith:
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = in.F
				continue
			}
		case ir.CmpBr:
			if in.bounds {
				st.BoundsChecks++
			}
			taken := cmpTaken(in.COp, fr.regs[in.A], fr.regs[in.B])
			target := in.F
			if taken {
				target = in.T
			}
			if bbvOn {
				ver = vm.bbvEdge(code, ver, pc, taken, target)
			}
			pc = target
			continue
		case ir.TypeTest:
			if bbvOn && ver != nil && ver.BranchPC == pc && ver.Elide != bbvElideNone {
				if taken, ok := vm.bbvElide(st, ver, in); ok {
					target := in.F
					if taken {
						target = in.T
					}
					ver = vm.bbvEdge(code, ver, pc, taken, target)
					pc = target
					continue
				}
			}
			st.TypeTests++
			taken := vm.World.MapOf(fr.regs[in.A]) == in.TestMap
			target := in.F
			if taken {
				target = in.T
			}
			if bbvOn {
				ver = vm.bbvEdge(code, ver, pc, taken, target)
			}
			pc = target
			continue
		case ir.Send:
			v, serr := vm.execSend(in, fr, code)
			if serr != nil {
				return obj.Nil(), serr
			}
			if in.Dst != ir.NoReg {
				fr.regs[in.Dst] = v
			}
		case ir.Call:
			st.Calls++
			callee, cerr := vm.CodeFor(in.Callee.Meth, in.Callee.RMap)
			if cerr != nil {
				return obj.Nil(), cerr
			}
			v, cerr := vm.invoke(callee, fr.regs[in.Args[0]], vm.argVals(in.Args[1:], fr), nil)
			if cerr != nil {
				return obj.Nil(), cerr
			}
			if in.Dst != ir.NoReg {
				fr.regs[in.Dst] = v
			}
		case ir.PrimOp:
			v, perr := vm.execPrim(in, fr)
			if perr != nil {
				return obj.Nil(), perr
			}
			if in.Dst != ir.NoReg {
				fr.regs[in.Dst] = v
			}
		case ir.MkBlk:
			vm.makeBlock(st, fr, in)
		case ir.Fail:
			return obj.Nil(), failError(code, fr, in)
		case ir.Return:
			return fr.regs[in.A], nil
		case ir.NLReturn:
			if fr.home.fr == nil || fr.home.fr.dead {
				return obj.Nil(), &RuntimeError{Msg: "non-local return from dead home frame"}
			}
			panic(nlr{ref: fr.home, val: fr.regs[in.A]})
		case ir.LoadUp:
			p := fr.up[in.Sel]
			if p == nil {
				return obj.Nil(), &RuntimeError{Msg: "unbound up-level variable " + in.Sel}
			}
			fr.regs[in.Dst] = *p
		case ir.StoreUp:
			p := fr.up[in.Sel]
			if p == nil {
				return obj.Nil(), &RuntimeError{Msg: "unbound up-level variable " + in.Sel}
			}
			*p = fr.regs[in.A]
		case opMoveMove:
			f := in.Fused
			fr.regs[in.Dst] = fr.regs[in.A]
			fr.regs[f.Dst] = fr.regs[f.A]
		case opConstArith:
			f := in.Fused
			fr.regs[in.Dst] = in.Val
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = f.F
				continue
			}
		case opLoadFArith:
			f := in.Fused
			o := fr.regs[in.A].Obj()
			if o == nil || in.Index >= len(o.Fields) {
				vm.uncharge(st, f)
				return obj.Nil(), errBadField(code, "access")
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Fields[in.Index]
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = f.F
				continue
			}
		case opLoadEArith:
			f := in.Fused
			o := fr.regs[in.A].Obj()
			if o == nil {
				vm.uncharge(st, f)
				return obj.Nil(), errElemNonObject(code, "load")
			}
			i := fr.regs[in.B].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				vm.uncharge(st, f)
				return obj.Nil(), errElemOOB(code, "load", i, len(o.Elems))
			}
			if cowEp != 0 && o.Ep == cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[in.Dst] = o.Elems[i]
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return obj.Nil(), aerr
			}
			if br {
				pc = f.F
				continue
			}
		case opArithCmpBr:
			f := in.Fused
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				vm.uncharge(st, f)
				return obj.Nil(), aerr
			}
			if br {
				vm.uncharge(st, f)
				pc = in.F
				continue
			}
			if f.bounds {
				st.BoundsChecks++
			}
			if cmpTaken(f.COp, fr.regs[f.A], fr.regs[f.B]) {
				pc = f.T
			} else {
				pc = f.F
			}
			continue
		case opArithJmp:
			f := in.Fused
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				vm.uncharge(st, f)
				return obj.Nil(), aerr
			}
			if br {
				vm.uncharge(st, f)
				pc = in.F
				continue
			}
			if trackHot && f.T <= pc {
				vm.noteBackedge(code)
			}
			pc = f.T
			continue
		case opConstArithCmpBr:
			f := in.Fused
			g := f.Fused
			fr.regs[in.Dst] = in.Val
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				vm.uncharge(st, g)
				return obj.Nil(), aerr
			}
			if br {
				vm.uncharge(st, g)
				pc = f.F
				continue
			}
			if g.bounds {
				st.BoundsChecks++
			}
			if cmpTaken(g.COp, fr.regs[g.A], fr.regs[g.B]) {
				pc = g.T
			} else {
				pc = g.F
			}
			continue
		default:
			return obj.Nil(), &RuntimeError{Msg: "bad opcode " + in.Op.String()}
		}
		pc++
	}
	if len(fr.regs) > RegSelf {
		return fr.regs[RegSelf], nil
	}
	return obj.Nil(), nil
}

// uncharge backs out the precharged cost of a superinstruction's
// unexecuted tail: when a constituent faults or branches to its
// overflow target, the remaining constituents never run, and the
// modelled Stats must match the unfused stream, which would never have
// dispatched them.
func (vm *VM) uncharge(st *RunStats, sub *Instr) {
	for ; sub != nil; sub = sub.Fused {
		st.Cycles -= sub.Cost + vm.InstrExtra
		st.Instrs--
	}
}

// arithVal executes the arithmetic of in, writing the result register
// on success. branchF reports that control must transfer to the
// instruction's overflow target (checked overflow, or checked division
// by zero); err reports an unchecked-path fault. The static cycle cost
// — including the overflow-check surcharge when Checked — is precharged
// via Instr.Cost; only the OvflChecks counter is dynamic, because a
// checked div/mod by zero branches away before the overflow check runs,
// exactly as in the unfused interpreter.
func arithVal(st *RunStats, in *Instr, fr *frame) (branchF bool, err error) {
	a, b := fr.regs[in.A].I(), fr.regs[in.B].I()
	var v int64
	switch in.AOp {
	case ir.Add:
		v = a + b
	case ir.Sub:
		v = a - b
	case ir.Mul:
		v = a * b
	case ir.Div:
		if b == 0 {
			if in.Checked {
				return true, nil
			}
			return false, &RuntimeError{Msg: "division by zero on unchecked path"}
		}
		v = a / b
	case ir.Mod:
		if b == 0 {
			if in.Checked {
				return true, nil
			}
			return false, &RuntimeError{Msg: "modulo by zero on unchecked path"}
		}
		v = a % b
	case ir.BAnd:
		v = a & b
	case ir.BOr:
		v = a | b
	case ir.BXor:
		v = a ^ b
	}
	if in.Checked {
		st.OvflChecks++
		if v < obj.MinSmallInt || v > obj.MaxSmallInt {
			return true, nil
		}
	}
	fr.regs[in.Dst] = obj.Int(v)
	return false, nil
}

func cmpTaken(op ir.CmpKind, a, b obj.Value) bool {
	switch op {
	case ir.LT:
		return a.I() < b.I()
	case ir.LE:
		return a.I() <= b.I()
	case ir.GT:
		return a.I() > b.I()
	case ir.GE:
		return a.I() >= b.I()
	case ir.EQ:
		return a.Eq(b)
	case ir.NE:
		return !a.Eq(b)
	}
	return false
}

// chargeBytes charges the modelled bytes of an n-Value storage
// allocation and enforces Budget.MaxBytes at the allocation site —
// before the storage exists. This is what turns the old `_NewVec:
// 5e8` hole into policy: a hostile size faults with the OutOfFuel
// taxonomy here instead of asking the Go runtime for gigabytes and
// letting the poll notice one alloc too late. The charge lands even
// when the check faults, mirroring how Instrs keeps counting past
// MaxInstrs until the poll fires.
func (vm *VM) chargeBytes(st *RunStats, nvals int64) error {
	st.AllocBytes += nvals * obj.ValueBytes
	if b := vm.Budget.MaxBytes; b > 0 && st.AllocBytes-vm.bytesStart > b {
		return &RuntimeError{Kind: KindOutOfFuel,
			Msg: fmt.Sprintf("out of fuel: byte budget %d exhausted (allocation of %d bytes)",
				b, nvals*obj.ValueBytes)}
	}
	return nil
}

// newVector allocates vector storage through the arena when one is
// attached, else from the Go heap.
func (vm *VM) newVector(n int, fill obj.Value) *obj.Object {
	if vm.Arena != nil {
		return vm.Arena.NewVector(vm.World.VecMap, n, fill)
	}
	return vm.World.NewVector(n, fill)
}

// cloneObject allocates a shallow copy through the arena when one is
// attached, else from the Go heap.
func (vm *VM) cloneObject(src *obj.Object) *obj.Object {
	if vm.Arena != nil {
		return vm.Arena.Clone(src)
	}
	return src.Clone()
}

// escapeCheck is the slow half of the store barrier: a value was just
// written into an object from a different epoch (the world, or an
// earlier abandoned epoch), so if the value is bound to the current
// arena epoch it can now outlive it — mark the epoch escaped, and the
// next Arena.Reset will abandon its chunks to the GC instead of
// recycling them. Blocks are conservative: a closure's UpLocals alias
// frame slots that stay writable after the store, so any block
// crossing an epoch boundary escapes the epoch. The fast half is the
// inlined `o.Ep != vm.curEp` compare at each store site.
func (vm *VM) escapeCheck(v obj.Value) {
	if vm.curEp == 0 {
		return // no arena this run; everything is permanent
	}
	switch v.K() {
	case obj.KObj:
		// Permanent epochs: 0 (heap), the frozen COW base, and this
		// fork's shadow copies. Everything else is arena-lifetime.
		if ep := v.Obj().Ep; ep != 0 && ep != vm.cowEp && ep != vm.cowShadowEp {
			vm.Arena.MarkEscaped()
		}
	case obj.KBlock:
		vm.Arena.MarkEscaped()
	}
}

// makeVector executes NewVec: the base cost is precharged via
// Instr.Cost, the size-dependent fill cost is charged here. On the
// negative-size fault and on a byte-budget fault the base is
// uncharged — the unfused interpreter faulted before charging
// anything for this instruction, and no storage was allocated.
func (vm *VM) makeVector(st *RunStats, fr *frame, in *Instr) error {
	n := fr.regs[in.A].I()
	if n < 0 {
		// Reachable when the compiler's size guard was removed
		// (StaticIdeal); without this check make([]Value, n) would
		// panic the Go runtime.
		st.Cycles -= CostNewVecBase
		return &RuntimeError{Msg: "negative vector size on unchecked path"}
	}
	if berr := vm.chargeBytes(st, n); berr != nil {
		st.Cycles -= CostNewVecBase
		return berr
	}
	st.Cycles += n >> NewVecFillShift
	st.Allocs++
	fill := obj.Nil()
	if in.B != ir.NoReg {
		fill = fr.regs[in.B]
	}
	fr.regs[in.Dst] = obj.Obj(vm.newVector(int(n), fill))
	return nil
}

// makeClone executes CloneOp; the base cost is precharged, the
// per-field copy cost is charged here. A byte-budget fault uncharges
// the base, exactly like makeVector.
func (vm *VM) makeClone(st *RunStats, fr *frame, in *Instr) error {
	src := fr.regs[in.A]
	if src.K() != obj.KObj {
		fr.regs[in.Dst] = src // immediates clone to themselves
		return nil
	}
	so := src.Obj()
	if vm.cowEp != 0 && so.Ep == vm.cowEp {
		so = vm.cowShadowed(so) // clone sees the fork's writes
	}
	if berr := vm.chargeBytes(st, int64(len(so.Fields)+len(so.Elems))); berr != nil {
		st.Cycles -= CostCloneBase
		return berr
	}
	st.Cycles += int64(len(so.Fields)+len(so.Elems)) * CostClonePerField
	st.Allocs++
	fr.regs[in.Dst] = obj.Obj(vm.cloneObject(so))
	return nil
}

// makeBlock executes MkBlk. Closure creation pins the frame: captured
// registers are taken by address and the closure's non-local-return
// home references the frame itself, so the frame must never return to
// the pool when this activation ends (see pool.go).
func (vm *VM) makeBlock(st *RunStats, fr *frame, in *Instr) {
	fr.escaped = true
	st.Allocs++
	cl := &obj.Closure{Ast: in.Blk, Map: vm.World.BlockMap, UpLocals: map[string]*obj.Value{}}
	for _, cap := range in.Caps {
		switch {
		case cap.ByValue && cap.FromUp:
			v := *fr.up[cap.Name]
			cl.UpLocals[cap.Name] = &v
		case cap.ByValue:
			v := fr.regs[cap.Src]
			cl.UpLocals[cap.Name] = &v
		case cap.FromUp:
			cl.UpLocals[cap.Name] = fr.up[cap.Name]
		default:
			cl.UpLocals[cap.Name] = &fr.regs[cap.Src]
		}
	}
	// The closure's home for non-local return: a landing in this frame
	// when the home method was inlined here, otherwise this frame's own
	// home (method frames are their own home; block frames inherited
	// theirs).
	if in.Resume >= 0 {
		cl.Home = homeRef{fr: fr, resume: in.Resume, reg: in.A}
	} else {
		cl.Home = fr.home
	}
	fr.regs[in.Dst] = obj.Blk(cl)
}

// failError builds the error for an ir.Fail instruction, classifying by
// the failure the compiler baked in: statically unresolvable sends and
// the _Error primitive (which the prelude's primitiveFailed: routes
// through) carry kinds.
func failError(code *Code, fr *frame, in *Instr) error {
	msg := in.Sel
	if in.A != ir.NoReg {
		msg += ": " + fr.regs[in.A].String()
	}
	kind := KindError
	switch {
	case strings.HasPrefix(in.Sel, "doesNotUnderstand:"):
		kind = KindDoesNotUnderstand
	case strings.HasPrefix(in.Sel, "_Error"):
		kind = KindPrimitiveFailed
	}
	return &RuntimeError{Kind: kind, Msg: fmt.Sprintf("%s (in %s)", msg, code.Name)}
}

func errBadField(code *Code, what string) error {
	return &RuntimeError{Msg: fmt.Sprintf("%s: bad field %s", code.Name, what)}
}

// The unchecked element-access path distinguishes its two failure
// modes: a receiver that is not a heap object at all (nil or an
// immediate, so there is nothing to index) versus an index outside the
// vector's bounds.
func errElemNonObject(code *Code, what string) error {
	return &RuntimeError{Msg: fmt.Sprintf("%s: element %s on non-object receiver (unchecked path)", code.Name, what)}
}

func errElemOOB(code *Code, what string, i int64, n int) error {
	return &RuntimeError{Msg: fmt.Sprintf("%s: element %s index %d out of bounds (length %d) (unchecked path)", code.Name, what, i, n)}
}

// argVals gathers argument registers into a per-VM scratch buffer,
// avoiding a Go allocation per send. Safe because every consumer
// (invoke, invokeClosure, execPrim, the assignment-slot store) copies
// or fully consumes the values before any nested guest execution could
// refill the buffer.
func (vm *VM) argVals(regs []ir.Reg, fr *frame) []obj.Value {
	if cap(vm.argScratch) < len(regs) {
		vm.argScratch = make([]obj.Value, len(regs), len(regs)+8)
	}
	out := vm.argScratch[:len(regs)]
	for i, r := range regs {
		out[i] = fr.regs[r]
	}
	return out
}

// execSend performs a dynamically-dispatched send with a monomorphic
// inline cache (Deutsch & Schiffman).
func (vm *VM) execSend(in *Instr, fr *frame, code *Code) (obj.Value, error) {
	st := &vm.Stats
	recv := fr.regs[in.Args[0]]
	args := vm.argVals(in.Args[1:], fr)

	// Blocks answer the value protocol directly.
	if recv.K() == obj.KBlock && strings.HasPrefix(in.Sel, "value") {
		st.Cycles += CostBlockValue
		st.BlockValues++
		return vm.invokeClosure(recv.Blk(), args)
	}

	if in.Direct {
		st.Cycles += CostCall
		st.Calls++
	} else {
		st.Sends++
		st.Cycles += CostSendICHit + vm.SendExtra
	}

	m := vm.World.MapOf(recv)
	ic := vm.icFor(code, in.IC)
	var slot *obj.Slot
	var holder *obj.Object
	if ic.m == m && !in.Direct {
		st.ICHits++
		slot = ic.slot
		holder = ic.holder
	} else if e := ic.picLookup(vm, m, in.Direct); e != nil {
		st.ICHits++
		st.Cycles += CostPICExtra
		slot = e.slot
		holder = e.holder
	} else {
		if !in.Direct {
			st.ICMisses++
			if vm.MissHandlers {
				st.Cycles += CostSendMissHandler - CostSendICHit
			} else {
				st.Cycles += CostSendICMiss - CostSendICHit
			}
		}
		r := obj.Lookup(m, in.Sel)
		if r == nil {
			return obj.Nil(), &RuntimeError{Kind: KindDoesNotUnderstand,
				Msg: fmt.Sprintf("%s does not understand %q", m.Name, in.Sel)}
		}
		slot = r.Slot
		holder = r.Holder
		// The old monomorphic entry moves into the PIC before being
		// replaced (so alternating receivers settle into PIC hits).
		if ic.m != nil && ic.m != m {
			ic.picStore(vm, ic.m, ic.slot, ic.holder)
		}
		ic.m = m
		ic.slot = slot
		ic.holder = holder
		ic.picStore(vm, m, slot, holder)
	}

	switch slot.Kind {
	case obj.ConstSlot, obj.ParentSlot:
		return slot.Value, nil
	case obj.DataSlot:
		target := holder
		if target == nil {
			target = recv.Obj()
		}
		if target == nil {
			return obj.Nil(), &RuntimeError{Msg: "data slot on immediate"}
		}
		if vm.cowEp != 0 && target.Ep == vm.cowEp {
			target = vm.cowShadowed(target)
		}
		return target.Fields[slot.Index], nil
	case obj.AssignSlot:
		target := holder
		if target == nil {
			target = recv.Obj()
		}
		if target == nil {
			return obj.Nil(), &RuntimeError{Msg: "assignment on immediate"}
		}
		if target.Ep != vm.curEp {
			target = vm.storeSlow(target, args[0])
		}
		if vm.World.ShapeTracking {
			vm.World.NoteFieldStore(target.Map, slot.Index, args[0])
		}
		target.Fields[slot.Index] = args[0]
		return args[0], nil
	case obj.MethodSlot:
		callee, err := vm.CodeFor(slot.Meth, m)
		if err != nil {
			return obj.Nil(), err
		}
		return vm.invoke(callee, recv, args, nil)
	}
	return obj.Nil(), &RuntimeError{Msg: "bad slot kind in send"}
}

// invokeClosure runs a block closure out of line.
func (vm *VM) invokeClosure(cl *obj.Closure, args []obj.Value) (obj.Value, error) {
	code, err := vm.blockCodeFor(cl)
	if err != nil {
		return obj.Nil(), err
	}
	vm.depth++
	if vm.depth > vm.Stats.MaxDepth {
		vm.Stats.MaxDepth = vm.depth
	}
	if vm.depth > vm.depthLimit() {
		vm.depth--
		return obj.Nil(), &RuntimeError{Kind: KindStackOverflow, Msg: "stack overflow"}
	}
	fr := vm.getFrame(code.NumRegs)
	fr.up = cl.UpLocals
	fr.home, _ = cl.Home.(homeRef)
	for i, a := range args {
		if RegParamBase+i < len(fr.regs) {
			fr.regs[RegParamBase+i] = a
		}
	}
	defer func() {
		fr.dead = true
		vm.depth--
		vm.putFrame(fr)
	}()
	return vm.exec(code, fr)
}

// execPrim runs an out-of-line robust primitive with all checks.
func (vm *VM) execPrim(in *Instr, fr *frame) (obj.Value, error) {
	st := &vm.Stats
	st.Cycles += CostPrimOp
	recv := fr.regs[in.Args[0]]
	args := vm.argVals(in.Args[1:], fr)
	fail := func(why string) (obj.Value, error) {
		if in.FailBlk != ir.NoReg {
			fb := fr.regs[in.FailBlk]
			if fb.K() == obj.KBlock {
				return vm.invokeClosure(fb.Blk(), nil)
			}
		}
		return obj.Nil(), &RuntimeError{Kind: KindPrimitiveFailed,
			Msg: fmt.Sprintf("primitive %s failed: %s", in.Sel, why)}
	}
	wantInt := func(v obj.Value) bool { return v.K() == obj.KInt }
	switch in.Sel {
	case "_IntAdd:", "_IntSub:", "_IntMul:", "_IntDiv:", "_IntMod:",
		"_IntAnd:", "_IntOr:", "_IntXor:":
		if !wantInt(recv) || len(args) != 1 || !wantInt(args[0]) {
			return fail("not an integer")
		}
		a, b := recv.I(), args[0].I()
		var v int64
		switch in.Sel {
		case "_IntAdd:":
			v = a + b
		case "_IntSub:":
			v = a - b
		case "_IntMul:":
			v = a * b
		case "_IntDiv:":
			if b == 0 {
				return fail("division by zero")
			}
			v = a / b
		case "_IntMod:":
			if b == 0 {
				return fail("modulo by zero")
			}
			v = a % b
		case "_IntAnd:":
			v = a & b
		case "_IntOr:":
			v = a | b
		case "_IntXor:":
			v = a ^ b
		}
		if v < obj.MinSmallInt || v > obj.MaxSmallInt {
			return fail("overflow")
		}
		return obj.Int(v), nil
	case "_IntLT:", "_IntLE:", "_IntGT:", "_IntGE:", "_IntEQ:", "_IntNE:":
		if !wantInt(recv) || len(args) != 1 || !wantInt(args[0]) {
			return fail("not an integer")
		}
		a, b := recv.I(), args[0].I()
		var r bool
		switch in.Sel {
		case "_IntLT:":
			r = a < b
		case "_IntLE:":
			r = a <= b
		case "_IntGT:":
			r = a > b
		case "_IntGE:":
			r = a >= b
		case "_IntEQ:":
			r = a == b
		case "_IntNE:":
			r = a != b
		}
		return vm.World.Bool(r), nil
	case "_Eq:":
		return vm.World.Bool(recv.Eq(args[0])), nil
	case "_At:":
		o := recv.Obj()
		if recv.K() != obj.KObj || !o.Map.Indexable || len(args) != 1 || !wantInt(args[0]) {
			return fail("bad receiver or index")
		}
		i := args[0].I()
		if i < 0 || i >= int64(len(o.Elems)) {
			return fail("index out of bounds")
		}
		if vm.cowEp != 0 && o.Ep == vm.cowEp {
			o = vm.cowShadowed(o)
		}
		return o.Elems[i], nil
	case "_At:Put:":
		o := recv.Obj()
		if recv.K() != obj.KObj || !o.Map.Indexable || len(args) != 2 || !wantInt(args[0]) {
			return fail("bad receiver or index")
		}
		i := args[0].I()
		if i < 0 || i >= int64(len(o.Elems)) {
			return fail("index out of bounds")
		}
		if o.Ep != vm.curEp {
			o = vm.storeSlow(o, args[1])
		}
		o.Elems[i] = args[1]
		return args[1], nil
	case "_Size":
		if recv.K() != obj.KObj || !recv.Obj().Map.Indexable {
			return fail("not a vector")
		}
		return obj.Int(int64(len(recv.Obj().Elems))), nil
	case "_NewVec:", "_NewVec:Fill:":
		if len(args) < 1 || !wantInt(args[0]) || args[0].I() < 0 {
			return fail("bad size")
		}
		fill := obj.Nil()
		if len(args) > 1 {
			fill = args[1]
		}
		// The byte-budget fault is a real OutOfFuel error, not a
		// primitive failure: a guest's _IfFail: block must not be able
		// to swallow resource exhaustion.
		if berr := vm.chargeBytes(st, args[0].I()); berr != nil {
			return obj.Nil(), berr
		}
		st.Allocs++
		return obj.Obj(vm.newVector(int(args[0].I()), fill)), nil
	case "_Clone":
		if recv.K() != obj.KObj {
			return recv, nil
		}
		ro := recv.Obj()
		if vm.cowEp != 0 && ro.Ep == vm.cowEp {
			ro = vm.cowShadowed(ro) // clone sees the fork's writes
		}
		if berr := vm.chargeBytes(st, int64(len(ro.Fields)+len(ro.Elems))); berr != nil {
			return obj.Nil(), berr
		}
		st.Allocs++
		return obj.Obj(vm.cloneObject(ro)), nil
	case "_Print":
		fmt.Fprint(vm.Out, recv.String())
		return recv, nil
	case "_PrintLine":
		fmt.Fprintln(vm.Out, recv.String())
		return recv, nil
	}
	return fail("unknown primitive")
}
