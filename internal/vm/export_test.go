package vm

// Bridges for the external test package (vm_test): core now imports vm
// (the Pipeline owns assembly), so tests that drive the compiler must
// live outside package vm, and these aliases give them the few internal
// details they assert on.
const (
	OpJmp        = opJmp
	OpArithJmp   = opArithJmp
	OpArithCmpBr = opArithCmpBr
)

var (
	SizeOf      = sizeOf
	StaticCost  = staticCost
	FusedHeadOp = fusedHeadOp
)
