package vm

import (
	"fmt"
	"strings"
)

// ErrKind classifies a RuntimeError so hosts can route faults without
// parsing messages: a server front end maps DoesNotUnderstand to a
// client error, OutOfFuel/Cancelled to a request-level abort, and
// Internal to a bug report — never to a process crash.
type ErrKind uint8

// RuntimeError kinds.
const (
	// KindError is a plain guest-level runtime error (unchecked-path
	// violations, user-raised errors, dead-home non-local returns).
	KindError ErrKind = iota
	// KindDoesNotUnderstand: a message lookup found no matching slot.
	KindDoesNotUnderstand
	// KindStackOverflow: activation depth exceeded the VM limit or the
	// budget's MaxDepth.
	KindStackOverflow
	// KindOutOfFuel: the budget's MaxInstrs, MaxAllocs or MaxBytes was
	// exhausted.
	KindOutOfFuel
	// KindCancelled: the context passed to RunMethodCtx was cancelled
	// or its deadline expired.
	KindCancelled
	// KindPrimitiveFailed: a robust primitive failed with no IfFail:
	// handler.
	KindPrimitiveFailed
	// KindInternal: a Go panic inside the VM or compiler, contained at
	// the RunMethod/compile-flight boundary. GoStack holds the Go-level
	// stack trace.
	KindInternal
)

func (k ErrKind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindDoesNotUnderstand:
		return "doesNotUnderstand"
	case KindStackOverflow:
		return "stackOverflow"
	case KindOutOfFuel:
		return "outOfFuel"
	case KindCancelled:
		return "cancelled"
	case KindPrimitiveFailed:
		return "primitiveFailed"
	case KindInternal:
		return "internal"
	}
	return fmt.Sprintf("ErrKind(%d)", uint8(k))
}

// TraceFrame is one activation of the Self-level backtrace attached to
// a RuntimeError: the compiled code's name (receiver-map>>selector, or
// block@position) and the pc of the faulting or calling instruction.
type TraceFrame struct {
	Name string
	PC   int
}

func (f TraceFrame) String() string { return fmt.Sprintf("%s @%d", f.Name, f.PC) }

// maxTraceFrames bounds the captured backtrace so a fault at the bottom
// of a deep recursion does not materialize 100k frames.
const maxTraceFrames = 32

// RuntimeError is a SELF-level error (primitive failure with no
// handler, message not understood, exhausted budget, contained panic,
// etc.). Kind classifies it; Trace is the Self-level backtrace,
// innermost frame first, captured as the error unwinds; GoStack holds
// the Go stack for KindInternal faults.
type RuntimeError struct {
	Kind    ErrKind
	Msg     string
	Trace   []TraceFrame
	GoStack []byte
}

func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

// Backtrace renders the Self-level trace, one frame per line, innermost
// first. Empty when no frames were captured.
func (e *RuntimeError) Backtrace() string {
	if len(e.Trace) == 0 {
		return ""
	}
	var b strings.Builder
	for _, f := range e.Trace {
		fmt.Fprintf(&b, "  at %s\n", f)
	}
	return b.String()
}

// pushFrame appends one Self-level frame to err's backtrace, if err is
// a RuntimeError with room left. Called as each activation unwinds, so
// the trace reads innermost-first.
func pushFrame(err error, code *Code, pc int) {
	re, ok := err.(*RuntimeError)
	if !ok || len(re.Trace) >= maxTraceFrames {
		return
	}
	re.Trace = append(re.Trace, TraceFrame{Name: code.Name, PC: pc})
}
