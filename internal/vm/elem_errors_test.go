package vm

import (
	"strings"
	"testing"

	"selfgo/internal/ir"
	"selfgo/internal/obj"
)

// The unchecked element-access path must distinguish its two failure
// modes in the error it reports: a non-object receiver (nothing to
// index) versus an index outside the vector's bounds.

func elemGraph(op ir.Op, recvVal obj.Value, index int64) *ir.Graph {
	g := ir.NewGraph("t")
	rv, ri, rd := g.NewReg(), g.NewReg(), g.NewReg()
	cv := g.NewNode(ir.Const)
	cv.Dst = rv
	cv.Val = recvVal
	ci := g.NewNode(ir.Const)
	ci.Dst = ri
	ci.Val = obj.Int(index)
	acc := g.NewNode(op)
	if op == ir.LoadE {
		acc.Dst = rd
		acc.A, acc.B = rv, ri
	} else {
		acc.A, acc.B, acc.C = rv, ri, ri
	}
	ret := g.NewNode(ir.Return)
	ret.A = rd
	chain(g, cv, ci, acc, ret)
	return g
}

func TestElemErrorsSplitNilVsOOB(t *testing.T) {
	w := obj.NewWorld()
	vec := obj.Obj(w.NewVector(3, obj.Nil()))
	cases := []struct {
		name string
		op   ir.Op
		recv obj.Value
		idx  int64
		want []string
	}{
		{"load non-object", ir.LoadE, obj.Nil(), 0,
			[]string{"element load", "non-object receiver"}},
		{"load out of bounds", ir.LoadE, vec, 99,
			[]string{"element load", "index 99 out of bounds (length 3)"}},
		{"load immediate receiver", ir.LoadE, obj.Int(7), 0,
			[]string{"element load", "non-object receiver"}},
		{"store non-object", ir.StoreE, obj.Nil(), 0,
			[]string{"element store", "non-object receiver"}},
		{"store out of bounds", ir.StoreE, vec, -1,
			[]string{"element store", "index -1 out of bounds (length 3)"}},
	}
	for _, c := range cases {
		machine := &VM{World: w}
		code := Assemble(elemGraph(c.op, c.recv, c.idx))
		_, err := machine.invoke(code, obj.Nil(), nil, nil)
		if err == nil {
			t.Fatalf("%s: no error", c.name)
		}
		for _, frag := range c.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s: error %q does not mention %q", c.name, err, frag)
			}
		}
		// The two failure modes must not share one message.
		if strings.Contains(err.Error(), "non-object") && strings.Contains(err.Error(), "out of bounds") {
			t.Errorf("%s: error %q conflates both failure modes", c.name, err)
		}
	}
}
