package vm

import "selfgo/internal/obj"

// Frame pooling: invoke used to heap-allocate a register file per
// activation — one Go allocation per non-inlined send. A per-VM
// freelist removes that from the steady state. No synchronization: a
// VM is single-goroutine and frames never cross VMs.
//
// Correctness hinges on two rules:
//
//  1. Escaped frames are never pooled. A MkBlk pins its frame (captured
//     registers by address, the frame pointer as non-local-return
//     home), and the dead-home check compares frame identity — a
//     recycled home frame with dead=false would make a dead home look
//     live. makeBlock sets frame.escaped; putFrame drops such frames
//     for the garbage collector.
//  2. Reused register files are zeroed. A fresh `make` hands out zero
//     Values; getFrame clears the reused prefix so no activation can
//     observe a previous activation's registers.
//
// Modelled Allocs accounting is untouched: it counts guest-level
// allocations (vectors, clones, closures), not Go frame allocations.
const (
	// maxPoolFrames bounds the freelist; deeper recursion spills to the
	// allocator rather than pinning an arbitrarily large high-water
	// mark of register files.
	maxPoolFrames = 128
	// maxPoolRegs bounds the register files worth keeping; oversized
	// outliers are dropped.
	maxPoolRegs = 256
)

// getFrame returns a frame with a zeroed n-register file, reusing a
// pooled frame when one fits. Callers overwrite up and home
// unconditionally.
func (vm *VM) getFrame(n int) *frame {
	if k := len(vm.freeFrames) - 1; k >= 0 {
		fr := vm.freeFrames[k]
		vm.freeFrames[k] = nil
		vm.freeFrames = vm.freeFrames[:k]
		if cap(fr.regs) >= n {
			fr.regs = fr.regs[:n]
			clear(fr.regs)
		} else {
			fr.regs = make([]obj.Value, n)
		}
		fr.up = nil
		fr.home = homeRef{}
		fr.dead = false
		fr.escaped = false
		return fr
	}
	return &frame{regs: make([]obj.Value, n)}
}

// putFrame returns a dead frame to the pool, unless a closure pinned it
// (escaped) or it is not worth keeping.
func (vm *VM) putFrame(fr *frame) {
	if fr.escaped || len(vm.freeFrames) >= maxPoolFrames || cap(fr.regs) > maxPoolRegs {
		return
	}
	vm.freeFrames = append(vm.freeFrames, fr)
}
