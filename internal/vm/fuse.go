package vm

import "selfgo/internal/ir"

// Superinstruction fusion: a peephole pass over the linearized stream
// that rewrites the hottest adjacent pairs/triples into single fused
// dispatches, in the spirit of the instruction-stream specialization of
// the basic-block-versioning line of work. Fusion changes HOST speed
// only: every modelled quantity is preserved exactly, because a fused
// instruction charges the precomputed sum of its constituents' static
// cycle costs, counts all constituents in Instrs (Instr.N), and — when
// an early constituent faults or takes its overflow branch — uncharges
// the unexecuted tail (VM.uncharge). The unfused interpreter therefore
// remains a bit-exact differential oracle, selected with
// core.Config.NoSuperinstructions.
//
// Fused Op values live far outside the ir.Op range, adjacent to opJmp.
const (
	opMoveMove        ir.Op = 240 // Move; Move
	opConstArith      ir.Op = 241 // Const; Arith
	opLoadFArith      ir.Op = 242 // LoadF; Arith
	opLoadEArith      ir.Op = 243 // LoadE; Arith
	opArithCmpBr      ir.Op = 244 // Arith; CmpBr (compare-and-branch on a fresh result)
	opArithJmp        ir.Op = 245 // Arith; Jmp (increment-and-jump loop tail)
	opConstArithCmpBr ir.Op = 246 // Const; Arith; CmpBr
)

// fusedHeadOp maps a fused opcode to the Op of its head constituent
// (ok=false for ordinary opcodes). The head instruction keeps that
// constituent's operand fields.
func fusedHeadOp(op ir.Op) (ir.Op, bool) {
	switch op {
	case opMoveMove:
		return ir.Move, true
	case opConstArith, opConstArithCmpBr:
		return ir.Const, true
	case opLoadFArith:
		return ir.LoadF, true
	case opLoadEArith:
		return ir.LoadE, true
	case opArithCmpBr, opArithJmp:
		return ir.Arith, true
	}
	return 0, false
}

// Fuse rewrites code in place, combining adjacent instructions into
// superinstructions. A constituent other than the head must not be a
// branch target: jumping into the middle of a fused group would skip
// its earlier constituents. (Jumping AT the head is fine — the group
// executes exactly the instructions the target pc denoted.) Branch
// targets are remapped from old to new pcs afterwards, including
// targets held by interior constituents (a fused checked Arith keeps
// its overflow target).
//
// Modelled code Bytes are untouched: fusion is an interpreter-dispatch
// artifact, not a change to the modelled machine code.
func Fuse(c *Code) {
	n := len(c.Instrs)
	if n < 2 {
		return
	}

	// Collect branch-target pcs; an instruction that is a target can
	// only head a group, never sit inside one.
	target := make([]bool, n)
	mark := func(pc int) {
		if pc >= 0 && pc < n {
			target[pc] = true
		}
	}
	for i := range c.Instrs {
		in := &c.Instrs[i]
		switch in.Op {
		case opJmp:
			mark(in.T)
		case ir.CmpBr, ir.TypeTest:
			mark(in.T)
			mark(in.F)
		case ir.Arith:
			if in.Checked {
				mark(in.F)
			}
		case ir.MkBlk:
			if in.Resume >= 0 {
				mark(in.Resume)
			}
		}
	}

	newPC := make([]int, n)
	out := make([]Instr, 0, n)
	for i := 0; i < n; {
		op, k := fuseAt(c.Instrs, target, i)
		for j := 0; j < k; j++ {
			newPC[i+j] = len(out)
		}
		if k == 1 {
			out = append(out, c.Instrs[i])
			i++
			continue
		}
		head := c.Instrs[i]
		head.Op = op
		head.N = int32(k)
		var tail *Instr
		for j := k - 1; j >= 1; j-- {
			sub := c.Instrs[i+j]
			sub.Fused = tail
			head.Cost += sub.Cost
			tail = &sub
		}
		head.Fused = tail
		out = append(out, head)
		i += k
	}

	for i := range out {
		for in := &out[i]; in != nil; in = in.Fused {
			switch in.Op {
			case opJmp:
				in.T = newPC[in.T]
			case ir.CmpBr, ir.TypeTest:
				in.T = newPC[in.T]
				in.F = newPC[in.F]
			case ir.Arith, opArithCmpBr, opArithJmp:
				// Head Arith of a fused group keeps its own overflow
				// target, like a plain Arith.
				if in.Checked {
					in.F = newPC[in.F]
				}
			case ir.MkBlk:
				if in.Resume >= 0 {
					in.Resume = newPC[in.Resume]
				}
			}
		}
	}
	c.Instrs = out
}

// fuseAt reports the fused opcode and group length starting at pc i
// (length 1: no fusion). Triples are preferred over pairs.
func fuseAt(ins []Instr, target []bool, i int) (ir.Op, int) {
	if i+1 >= len(ins) || target[i+1] {
		return 0, 1
	}
	a, b := ins[i].Op, ins[i+1].Op
	if a == ir.Const && b == ir.Arith &&
		i+2 < len(ins) && !target[i+2] && ins[i+2].Op == ir.CmpBr {
		return opConstArithCmpBr, 3
	}
	switch {
	case a == ir.Move && b == ir.Move:
		return opMoveMove, 2
	case a == ir.Const && b == ir.Arith:
		return opConstArith, 2
	case a == ir.LoadF && b == ir.Arith:
		return opLoadFArith, 2
	case a == ir.LoadE && b == ir.Arith:
		return opLoadEArith, 2
	case a == ir.Arith && b == ir.CmpBr:
		return opArithCmpBr, 2
	case a == ir.Arith && b == opJmp:
		return opArithJmp, 2
	}
	return 0, 1
}
