package vm_test

import (
	"io"
	"strings"
	"testing"

	"selfgo/internal/ast"
	"selfgo/internal/core"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/vm"
)

// newFusedHarness is newHarness with the superinstruction pass applied
// after assembly, the way the public package wires it.
func newFusedHarness(t *testing.T, cfg core.Config, src string) *harness {
	t.Helper()
	h := newHarness(t, cfg, src)
	inner := h.vm.CompileMethod
	h.vm.CompileMethod = func(m *obj.Method, rmap *obj.Map) (*vm.Code, error) {
		c, err := inner(m, rmap)
		if err == nil {
			vm.Fuse(c)
		}
		return c, err
	}
	innerBlk := h.vm.CompileBlock
	h.vm.CompileBlock = func(b *ast.Block, upNames []string) (*vm.Code, error) {
		c, err := innerBlk(b, upNames)
		if err == nil {
			vm.Fuse(c)
		}
		return c, err
	}
	return h
}

const fuseSrc = `
sumTo: n = ( | s <- 0. i <- 0 | [ i < n ] whileTrue: [ s: s + i. i: i + 1 ]. s ).
fib: n = ( (n < 2) ifTrue: [ n ] False: [ (fib: n - 1) + (fib: n - 2) ] ).
quot: a Over: b = ( a / b ).
square: n = ( n * n ).
`

// TestFusePreservesModelledTotals: fusing a stream must preserve the
// modelled code exactly — same total constituent count (sum of N), same
// total static cost, same Bytes — while producing strictly fewer
// dispatches, and every branch target must land on a group head.
func TestFusePreservesModelledTotals(t *testing.T) {
	h := newHarness(t, core.NewSELF, fuseSrc)
	fusedAny := false
	for _, sel := range []string{"sumTo:", "fib:", "quot:Over:", "square:"} {
		plain := h.codeFor(t, sel)
		fused := &vm.Code{Name: plain.Name, NumRegs: plain.NumRegs, Bytes: plain.Bytes}
		fused.Instrs = append(fused.Instrs, plain.Instrs...)
		vm.Fuse(fused)

		var plainCost, fusedCost, fusedN int64
		for i := range plain.Instrs {
			plainCost += plain.Instrs[i].Cost
		}
		for i := range fused.Instrs {
			in := &fused.Instrs[i]
			fusedN += int64(in.N)
			fusedCost += in.Cost
			if _, ok := vm.FusedHeadOp(in.Op); ok {
				fusedAny = true
				if in.Fused == nil {
					t.Errorf("%s@%d: fused op with nil chain", sel, i)
				}
			} else if in.Fused != nil {
				t.Errorf("%s@%d: ordinary op carries a fused chain", sel, i)
			}
			// Branch targets (including those held by interior
			// constituents) must be valid new pcs.
			for f := in; f != nil; f = f.Fused {
				checkTarget := func(pc int, kind string) {
					if pc < 0 || pc >= len(fused.Instrs) {
						t.Errorf("%s@%d: %s target %d out of range [0,%d)", sel, i, kind, pc, len(fused.Instrs))
					}
				}
				switch f.Op {
				case vm.OpJmp, vm.OpArithJmp:
					if f.Op == vm.OpJmp {
						checkTarget(f.T, "jmp")
					}
				case ir.CmpBr, ir.TypeTest:
					checkTarget(f.T, "T")
					checkTarget(f.F, "F")
				}
				if f.Checked {
					checkTarget(f.F, "ovfl")
				}
			}
		}
		if fusedN != int64(len(plain.Instrs)) {
			t.Errorf("%s: sum of N = %d, want %d (unfused instr count)", sel, fusedN, len(plain.Instrs))
		}
		if fusedCost != plainCost {
			t.Errorf("%s: fused static cost %d != unfused %d", sel, fusedCost, plainCost)
		}
		if fused.Bytes != plain.Bytes {
			t.Errorf("%s: fusion changed modelled Bytes %d -> %d", sel, plain.Bytes, fused.Bytes)
		}
	}
	if !fusedAny {
		t.Error("no superinstruction produced on any test method; patterns never fire")
	}
}

// TestFusedExecutionMatchesUnfused: the same programs produce the same
// values and the same full RunStats with and without fusion, including
// the checked-arith early exits (overflow branch, division by zero)
// that trigger the uncharge path inside fused groups.
func TestFusedExecutionMatchesUnfused(t *testing.T) {
	for _, cfg := range []core.Config{core.NewSELF, core.ST80, core.StaticIdealC} {
		plain := newHarness(t, cfg, fuseSrc)
		fused := newFusedHarness(t, cfg, fuseSrc)
		calls := []struct {
			sel  string
			args []obj.Value
		}{
			{"sumTo:", []obj.Value{obj.Int(500)}},
			{"fib:", []obj.Value{obj.Int(12)}},
			{"quot:Over:", []obj.Value{obj.Int(91), obj.Int(7)}},
			{"square:", []obj.Value{obj.Int(9)}},
			// Overflow: square of 2^40 exceeds MaxSmallInt, taking the
			// checked-arith overflow branch (fail path under configs
			// that keep the check).
			{"square:", []obj.Value{obj.Int(1 << 40)}},
			// Division by zero: checked configs branch to the failure
			// path, StaticIdeal faults on the unchecked path; either
			// way fused and unfused must agree.
			{"quot:Over:", []obj.Value{obj.Int(5), obj.Int(0)}},
		}
		for _, c := range calls {
			pv, perr := plain.vm.RunMethod(lookupMeth(t, plain, c.sel), obj.Obj(plain.w.Lobby), c.args...)
			fv, ferr := fused.vm.RunMethod(lookupMeth(t, fused, c.sel), obj.Obj(fused.w.Lobby), c.args...)
			if (perr == nil) != (ferr == nil) {
				t.Fatalf("%s %s: error mismatch: plain=%v fused=%v", cfg.Name, c.sel, perr, ferr)
			}
			if perr == nil && !pv.Eq(fv) {
				t.Fatalf("%s %s: value mismatch: plain=%s fused=%s", cfg.Name, c.sel, pv, fv)
			}
			if plain.vm.Stats != fused.vm.Stats {
				t.Fatalf("%s %s: stats diverged:\nplain: %+v\nfused: %+v", cfg.Name, c.sel, plain.vm.Stats, fused.vm.Stats)
			}
		}
	}
}

func lookupMeth(t *testing.T, h *harness, sel string) *obj.Method {
	t.Helper()
	r := obj.Lookup(h.w.Lobby.Map, sel)
	if r == nil {
		t.Fatalf("no %q", sel)
	}
	return r.Slot.Meth
}

// TestTracedMatchesFast: the duplicated traced loop must execute
// identically to the hot loop — same values, same full RunStats (the
// loops are hand-kept in sync; this is the guard).
func TestTracedMatchesFast(t *testing.T) {
	for _, fuse := range []bool{false, true} {
		mk := func(tr io.Writer) *harness {
			var h *harness
			if fuse {
				h = newFusedHarness(t, core.NewSELF, fuseSrc)
			} else {
				h = newHarness(t, core.NewSELF, fuseSrc)
			}
			h.vm.Trace = tr
			return h
		}
		fast := mk(nil)
		traced := mk(io.Discard)
		for _, c := range []struct {
			sel  string
			args []obj.Value
		}{
			{"sumTo:", []obj.Value{obj.Int(100)}},
			{"fib:", []obj.Value{obj.Int(10)}},
			{"quot:Over:", []obj.Value{obj.Int(5), obj.Int(0)}},
		} {
			fv, ferr := fast.vm.RunMethod(lookupMeth(t, fast, c.sel), obj.Obj(fast.w.Lobby), c.args...)
			tv, terr := traced.vm.RunMethod(lookupMeth(t, traced, c.sel), obj.Obj(traced.w.Lobby), c.args...)
			if (ferr == nil) != (terr == nil) {
				t.Fatalf("fused=%v %s: error mismatch: fast=%v traced=%v", fuse, c.sel, ferr, terr)
			}
			if ferr == nil && !fv.Eq(tv) {
				t.Fatalf("fused=%v %s: value mismatch: fast=%s traced=%s", fuse, c.sel, fv, tv)
			}
			if fast.vm.Stats != traced.vm.Stats {
				t.Fatalf("fused=%v %s: stats diverged:\nfast:   %+v\ntraced: %+v", fuse, c.sel, fast.vm.Stats, traced.vm.Stats)
			}
		}
	}
}

// TestFuseRespectsBranchTargets: an instruction that is a branch target
// must stay a group head — fusing it into the middle of a group would
// let a jump skip the earlier constituents.
func TestFuseRespectsBranchTargets(t *testing.T) {
	// Hand-built stream:
	//   0: r2 <- const 1
	//   1: r2 <- r2 + r2        <- branch target
	//   2: if r2 < r3 ->1 else ->3
	//   3: ret r2
	// (0,1) must NOT fuse (1 is a target); (1,2) may fuse into
	// ArithCmpBr, and the loop branch must then point at the fused head.
	mk := func(in vm.Instr) vm.Instr {
		in.Cost = vm.StaticCost(&in)
		in.N = 1
		return in
	}
	c := &vm.Code{Name: "handmade", NumRegs: 4}
	c.Instrs = []vm.Instr{
		mk(vm.Instr{Op: ir.Const, Dst: 2, Val: obj.Int(1), Resume: -1}),
		mk(vm.Instr{Op: ir.Arith, Dst: 2, A: 2, B: 2, AOp: ir.Add, Resume: -1}),
		mk(vm.Instr{Op: ir.CmpBr, A: 2, B: 3, COp: ir.LT, T: 1, F: 3, Resume: -1}),
		mk(vm.Instr{Op: ir.Return, A: 2, Resume: -1}),
	}
	vm.Fuse(c)
	if len(c.Instrs) != 3 {
		t.Fatalf("got %d instrs, want 3:\n%s", len(c.Instrs), c.Disasm())
	}
	if c.Instrs[0].Op != ir.Const {
		t.Errorf("instr 0 fused across a branch target: %s", c.Instrs[0])
	}
	if c.Instrs[1].Op != vm.OpArithCmpBr {
		t.Errorf("instr 1 = %s, want fused arith+cmpbr", c.Instrs[1])
	}
	if got := c.Instrs[1].Fused.T; got != 1 {
		t.Errorf("loop branch T = %d after remap, want 1 (the fused head)", got)
	}
	if got := c.Instrs[1].Fused.F; got != 2 {
		t.Errorf("loop branch F = %d after remap, want 2 (the return)", got)
	}
}

// TestFusedDisasm: fused instructions render their constituents, so
// disassembly stays readable.
func TestFusedDisasm(t *testing.T) {
	h := newFusedHarness(t, core.NewSELF, fuseSrc)
	d := h.codeFor(t, "sumTo:").Disasm()
	if !strings.Contains(d, "fused{") {
		t.Errorf("disassembly of a fused method shows no fused instruction:\n%s", d)
	}
}
