// Package vm is the back end standing in for the paper's SPARC code
// generator: it linearizes the compiler's control flow graph into
// register bytecode (out-of-line failure blocks and all), executes it,
// and charges every instruction a documented cycle cost. Because the
// paper's results are reported *relative to optimized C*, what matters
// is that each category — raw arithmetic, memory traffic, type tests,
// overflow checks, inline-cache hits and misses, full lookups, block
// creation — costs what it cost on the measured machine *in
// proportion*; the constants below encode the Deutsch-Schiffman
// send machinery and SPARC-era latencies the paper assumes.
package vm

import "selfgo/internal/ir"

// Cycle costs per executed instruction.
const (
	CostMove  = 1 // register move
	CostConst = 1 // load immediate/constant

	CostArith       = 1 // raw add/sub/compare class op
	CostMul         = 4 // integer multiply (SPARC had no single-cycle imul)
	CostDiv         = 12
	CostOverflowChk = 2 // tag extract + overflow conditional trap after the op
	CostCmpBranch   = 1 // compare-and-branch
	CostTypeTest    = 3 // tag/map extract + compare + branch
	CostJump        = 1
	CostLoadStore   = 2 // slot or element access
	CostVecLen      = 2
	CostReturn      = 2 // epilogue

	// Direct (statically bound) call: call + prologue, the cost a C
	// compiler pays for a non-inlined function call.
	CostCall = 6

	// Dynamically-dispatched sends (Deutsch & Schiffman [4]):
	// an inline-cache hit is a call plus a map check; a miss runs the
	// full lookup and rewrites the cache.
	CostSendICHit  = 14
	CostSendICMiss = 60

	// §6.1: call-site-specific miss handlers would cut the miss cost
	// to little more than a hit (the richards "what-if").
	CostSendMissHandler = 16

	// A polymorphic-inline-cache hit: the dispatch stub compares the
	// receiver map against a short list, a few cycles beyond the
	// monomorphic hit.
	CostPICExtra = 4

	// Invoking a block closure: like an IC hit plus context fiddling.
	CostBlockValue = 14

	// Out-of-line robust primitive call (uninlined): call, argument
	// type checks, the operation, failure-block plumbing.
	CostPrimOp = 18

	// Closure creation: allocation plus captured-variable setup.
	CostMkBlkBase   = 10
	CostMkBlkPerCap = 2

	// Object allocation.
	CostCloneBase     = 8
	CostClonePerField = 1
	CostNewVecBase    = 8
	// plus one cycle per 8 elements initialized
	NewVecFillShift = 3

	CostLoadUp   = 4 // up-level access through the closure
	CostNLReturn = 24

	CostFail = 10
)

// Code-size model, in bytes of SPARC-flavored code per emitted
// instruction. Dynamic sends carry their inline cache (the paper
// blames "large inline caches" for much of the code-size overhead);
// method prologues and the literal words of big constants are charged
// too.
const (
	SizeSimple   = 4 // one machine instruction
	SizeConst    = 8 // sethi+or / load from literal pool
	SizeBranch   = 8 // compare + branch (+ delay slot reuse)
	SizeTypeTest = 12
	SizeArithChk = 8  // op + overflow branch
	SizeLoadF    = 4  // single load/store, offset known
	SizeCall     = 8  // call + delay slot
	SizeSend     = 32 // call sequence + selector word + inline cache
	SizePrimOp   = 20
	SizeMkBlk    = 16 // plus 4 per capture
	SizeMkBlkCap = 4
	SizeNewVec   = 12
	SizeClone    = 12
	SizeReturn   = 8
	SizeFail     = 8
	SizeUpAccess = 8
	SizeNLReturn = 16
	SizePrologue = 16 // per compiled method
)

// arithOpCost is the modelled cycle cost of one arithmetic operation's
// raw op (before any overflow-check surcharge).
func arithOpCost(k ir.ArithKind) int64 {
	switch k {
	case ir.Mul:
		return CostMul
	case ir.Div, ir.Mod:
		return CostDiv
	}
	return CostArith
}

// staticCost is the compile-time-constant part of an instruction's
// modelled cycle cost, folded into Instr.Cost at assembly so the hot
// loop charges one add per dispatch. Ops whose cost is partly or wholly
// dynamic keep the dynamic remainder in the interpreter:
//
//   - NewVec/CloneOp charge only the base here; the size-dependent fill
//     and per-field copy are charged at execution.
//   - Send and PrimOp charge zero here; dispatch cost depends on the
//     cache outcome (execSend) and CostPrimOp is charged in execPrim.
//   - Checked Arith includes the overflow-check surcharge: both the
//     overflow branch and the checked div/mod-by-zero branch charged
//     op + CostOverflowChk in the original interpreter.
//
// The per-instruction InstrExtra (ST-80 code-quality penalty) is NOT
// included: it is a VM parameter, not a property of the code, and is
// charged per constituent in the run loop.
func staticCost(in *Instr) int64 {
	switch in.Op {
	case opJmp:
		return CostJump
	case ir.Const:
		return CostConst
	case ir.Move:
		return CostMove
	case ir.LoadF, ir.StoreF, ir.LoadE, ir.StoreE:
		return CostLoadStore
	case ir.VecLen:
		return CostVecLen
	case ir.NewVec:
		return CostNewVecBase
	case ir.CloneOp:
		return CostCloneBase
	case ir.Arith:
		c := arithOpCost(in.AOp)
		if in.Checked {
			c += CostOverflowChk
		}
		return c
	case ir.CmpBr:
		return CostCmpBranch
	case ir.TypeTest:
		return CostTypeTest
	case ir.Call:
		return CostCall
	case ir.MkBlk:
		return CostMkBlkBase + int64(len(in.Caps))*CostMkBlkPerCap
	case ir.Fail:
		return CostFail
	case ir.Return:
		return CostReturn
	case ir.NLReturn:
		return CostNLReturn
	case ir.LoadUp, ir.StoreUp:
		return CostLoadUp
	}
	// Send, PrimOp: fully dynamic.
	return 0
}
