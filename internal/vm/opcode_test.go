package vm

import (
	"strings"
	"testing"

	"selfgo/internal/ir"
	"selfgo/internal/obj"
)

// runGraph assembles and executes a hand-built graph with the given
// receiver and arguments (calling convention: regs[0]=recv, regs[2:]).
func runGraph(t *testing.T, w *obj.World, g *ir.Graph, recv obj.Value, args ...obj.Value) (obj.Value, *VM) {
	t.Helper()
	machine := &VM{World: w}
	code := Assemble(g)
	v, err := machine.invoke(code, recv, args, nil)
	if err != nil {
		t.Fatalf("exec: %v\n%s", err, code.Disasm())
	}
	return v, machine
}

// chain wires nodes sequentially from the entry and returns the last.
func chain(g *ir.Graph, nodes ...*ir.Node) *ir.Node {
	prev := g.Entry
	for _, n := range nodes {
		prev.Succ = append(prev.Succ, n)
		prev = n
	}
	return prev
}

func TestOpConstMoveReturn(t *testing.T) {
	w := obj.NewWorld()
	g := ir.NewGraph("t")
	r0, r1 := g.NewReg(), g.NewReg()
	c := g.NewNode(ir.Const)
	c.Dst = r0
	c.Val = obj.Int(41)
	mv := g.NewNode(ir.Move)
	mv.Dst = r1
	mv.A = r0
	ret := g.NewNode(ir.Return)
	ret.A = r1
	chain(g, c, mv, ret)
	// Defeat DCE: ret reads r1, mv reads r0.
	v, m := runGraph(t, w, g, obj.Nil())
	if !v.Eq(obj.Int(41)) {
		t.Fatalf("got %v", v)
	}
	if m.Stats.Cycles != CostConst+CostMove+CostReturn {
		t.Errorf("cycles = %d", m.Stats.Cycles)
	}
}

func TestOpArithVariants(t *testing.T) {
	w := obj.NewWorld()
	cases := []struct {
		op   ir.ArithKind
		a, b int64
		want int64
	}{
		{ir.Add, 20, 22, 42}, {ir.Sub, 50, 8, 42}, {ir.Mul, 6, 7, 42},
		{ir.Div, 85, 2, 42}, {ir.Mod, 85, 43, 42},
		{ir.BAnd, 0xff, 0x2a, 42}, {ir.BOr, 0x2a, 0x0a, 42}, {ir.BXor, 0x6a, 0x40, 42},
	}
	for _, c := range cases {
		g := ir.NewGraph("t")
		ra, rb, rd := g.NewReg(), g.NewReg(), g.NewReg()
		ca := g.NewNode(ir.Const)
		ca.Dst = ra
		ca.Val = obj.Int(c.a)
		cb := g.NewNode(ir.Const)
		cb.Dst = rb
		cb.Val = obj.Int(c.b)
		op := g.NewNode(ir.Arith)
		op.Dst = rd
		op.A = ra
		op.B = rb
		op.AOp = c.op
		ret := g.NewNode(ir.Return)
		ret.A = rd
		chain(g, ca, cb, op, ret)
		v, _ := runGraph(t, w, g, obj.Nil())
		if !v.Eq(obj.Int(c.want)) {
			t.Errorf("%v(%d,%d) = %v, want %d", c.op, c.a, c.b, v, c.want)
		}
	}
}

func TestOpCheckedArithOverflowBranch(t *testing.T) {
	w := obj.NewWorld()
	g := ir.NewGraph("t")
	ra, rb, rd, rf := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	ca := g.NewNode(ir.Const)
	ca.Dst = ra
	ca.Val = obj.Int(obj.MaxSmallInt)
	cb := g.NewNode(ir.Const)
	cb.Dst = rb
	cb.Val = obj.Int(1)
	op := g.NewNode(ir.Arith)
	op.Dst = rd
	op.A = ra
	op.B = rb
	op.AOp = ir.Add
	op.Checked = true
	retOK := g.NewNode(ir.Return)
	retOK.A = rd
	cf := g.NewNode(ir.Const)
	cf.Dst = rf
	cf.Val = obj.Int(-7)
	cf.Uncommon = true
	retOv := g.NewNode(ir.Return)
	retOv.A = rf
	retOv.Uncommon = true

	chain(g, ca, cb, op)
	op.Succ = []*ir.Node{retOK, cf}
	cf.Succ = []*ir.Node{retOv}

	v, m := runGraph(t, w, g, obj.Nil())
	if !v.Eq(obj.Int(-7)) {
		t.Fatalf("overflow branch not taken: %v", v)
	}
	if m.Stats.OvflChecks != 1 {
		t.Errorf("overflow checks = %d", m.Stats.OvflChecks)
	}
}

func TestOpCmpBranchesAndTypeTest(t *testing.T) {
	w := obj.NewWorld()
	mk := func(op ir.CmpKind, a, b int64) int64 {
		g := ir.NewGraph("t")
		ra, rb, rt, rf := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
		ca := g.NewNode(ir.Const)
		ca.Dst = ra
		ca.Val = obj.Int(a)
		cb := g.NewNode(ir.Const)
		cb.Dst = rb
		cb.Val = obj.Int(b)
		cmp := g.NewNode(ir.CmpBr)
		cmp.A = ra
		cmp.B = rb
		cmp.COp = op
		c1 := g.NewNode(ir.Const)
		c1.Dst = rt
		c1.Val = obj.Int(1)
		r1 := g.NewNode(ir.Return)
		r1.A = rt
		c0 := g.NewNode(ir.Const)
		c0.Dst = rf
		c0.Val = obj.Int(0)
		r0 := g.NewNode(ir.Return)
		r0.A = rf
		chain(g, ca, cb, cmp)
		cmp.Succ = []*ir.Node{c1, c0}
		c1.Succ = []*ir.Node{r1}
		c0.Succ = []*ir.Node{r0}
		v, _ := runGraph(t, w, g, obj.Nil())
		return v.I()
	}
	checks := []struct {
		op   ir.CmpKind
		a, b int64
		want int64
	}{
		{ir.LT, 1, 2, 1}, {ir.LT, 2, 1, 0}, {ir.LE, 2, 2, 1},
		{ir.GT, 3, 2, 1}, {ir.GE, 2, 3, 0}, {ir.EQ, 5, 5, 1},
		{ir.NE, 5, 5, 0}, {ir.NE, 5, 6, 1},
	}
	for _, c := range checks {
		if got := mk(c.op, c.a, c.b); got != c.want {
			t.Errorf("%d %v %d = %d, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpVectorTraffic(t *testing.T) {
	w := obj.NewWorld()
	g := ir.NewGraph("t")
	size, fill, vec, idx, val, out, ln, acc := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	cs := g.NewNode(ir.Const)
	cs.Dst = size
	cs.Val = obj.Int(3)
	cfill := g.NewNode(ir.Const)
	cfill.Dst = fill
	cfill.Val = obj.Int(9)
	nv := g.NewNode(ir.NewVec)
	nv.Dst = vec
	nv.A = size
	nv.B = fill
	ci := g.NewNode(ir.Const)
	ci.Dst = idx
	ci.Val = obj.Int(1)
	cv := g.NewNode(ir.Const)
	cv.Dst = val
	cv.Val = obj.Int(33)
	st := g.NewNode(ir.StoreE)
	st.A = vec
	st.B = idx
	st.C = val
	ld := g.NewNode(ir.LoadE)
	ld.Dst = out
	ld.A = vec
	ld.B = idx
	vl := g.NewNode(ir.VecLen)
	vl.Dst = ln
	vl.A = vec
	sum := g.NewNode(ir.Arith)
	sum.Dst = acc
	sum.A = out
	sum.B = ln
	sum.AOp = ir.Add
	ret := g.NewNode(ir.Return)
	ret.A = acc
	chain(g, cs, cfill, nv, ci, cv, st, ld, vl, sum, ret)
	v, m := runGraph(t, w, g, obj.Nil())
	if !v.Eq(obj.Int(36)) { // 33 + len 3
		t.Fatalf("got %v", v)
	}
	if m.Stats.Allocs != 1 {
		t.Errorf("allocs = %d", m.Stats.Allocs)
	}
}

func TestOpCloneAndFields(t *testing.T) {
	w := obj.NewWorld()
	// A prototype with one field.
	m := &obj.Map{Name: "pt"}
	proto := &obj.Object{Map: m, Fields: []obj.Value{obj.Int(5)}}

	g := ir.NewGraph("t")
	p, c, f, out := g.NewReg(), g.NewReg(), g.NewReg(), g.NewReg()
	cp := g.NewNode(ir.Const)
	cp.Dst = p
	cp.Val = obj.Obj(proto)
	cl := g.NewNode(ir.CloneOp)
	cl.Dst = c
	cl.A = p
	cf := g.NewNode(ir.Const)
	cf.Dst = f
	cf.Val = obj.Int(77)
	st := g.NewNode(ir.StoreF)
	st.A = c
	st.Index = 0
	st.B = f
	ld := g.NewNode(ir.LoadF)
	ld.Dst = out
	ld.A = c
	ld.Index = 0
	ret := g.NewNode(ir.Return)
	ret.A = out
	chain(g, cp, cl, cf, st, ld, ret)
	v, _ := runGraph(t, w, g, obj.Nil())
	if !v.Eq(obj.Int(77)) {
		t.Fatalf("got %v", v)
	}
	// The prototype's field is untouched: clones copy storage.
	if !proto.Fields[0].Eq(obj.Int(5)) {
		t.Error("clone aliased the prototype")
	}
}

func TestOpTypeTestDispatch(t *testing.T) {
	w := obj.NewWorld()
	g := ir.NewGraph("t")
	a, r1, r2 := ir.Reg(2), g.NewReg(), g.NewReg()
	g.NumRegs = 3 // recv, result, arg convention
	r1 = g.NewReg()
	r2 = g.NewReg()
	tt := g.NewNode(ir.TypeTest)
	tt.A = a
	tt.TestMap = w.IntMap
	c1 := g.NewNode(ir.Const)
	c1.Dst = r1
	c1.Val = obj.Int(1)
	ret1 := g.NewNode(ir.Return)
	ret1.A = r1
	c2 := g.NewNode(ir.Const)
	c2.Dst = r2
	c2.Val = obj.Int(0)
	ret2 := g.NewNode(ir.Return)
	ret2.A = r2
	chain(g, tt)
	tt.Succ = []*ir.Node{c1, c2}
	c1.Succ = []*ir.Node{ret1}
	c2.Succ = []*ir.Node{ret2}

	if v, _ := runGraph(t, w, g, obj.Nil(), obj.Int(3)); !v.Eq(obj.Int(1)) {
		t.Errorf("int arg: %v", v)
	}
	if v, _ := runGraph(t, w, g, obj.Nil(), obj.Str("x")); !v.Eq(obj.Int(0)) {
		t.Errorf("str arg: %v", v)
	}
}

func TestOpPrimOpAllSelectors(t *testing.T) {
	w := obj.NewWorld()
	run := func(sel string, recv obj.Value, args ...obj.Value) (obj.Value, error) {
		g := ir.NewGraph("t")
		regs := []ir.Reg{g.NewReg()}
		cr := g.NewNode(ir.Const)
		cr.Dst = regs[0]
		cr.Val = recv
		nodes := []*ir.Node{cr}
		for _, a := range args {
			r := g.NewReg()
			cn := g.NewNode(ir.Const)
			cn.Dst = r
			cn.Val = a
			regs = append(regs, r)
			nodes = append(nodes, cn)
		}
		dst := g.NewReg()
		p := g.NewNode(ir.PrimOp)
		p.Dst = dst
		p.Sel = sel
		p.Args = regs
		ret := g.NewNode(ir.Return)
		ret.A = dst
		nodes = append(nodes, p, ret)
		chain(g, nodes...)
		machine := &VM{World: w}
		return machine.invoke(Assemble(g), obj.Nil(), nil, nil)
	}
	vec := obj.Obj(w.NewVector(4, obj.Int(2)))

	cases := []struct {
		sel  string
		recv obj.Value
		args []obj.Value
		want obj.Value
	}{
		{"_IntAdd:", obj.Int(1), []obj.Value{obj.Int(2)}, obj.Int(3)},
		{"_IntSub:", obj.Int(5), []obj.Value{obj.Int(2)}, obj.Int(3)},
		{"_IntMul:", obj.Int(5), []obj.Value{obj.Int(2)}, obj.Int(10)},
		{"_IntDiv:", obj.Int(7), []obj.Value{obj.Int(2)}, obj.Int(3)},
		{"_IntMod:", obj.Int(7), []obj.Value{obj.Int(2)}, obj.Int(1)},
		{"_IntAnd:", obj.Int(6), []obj.Value{obj.Int(3)}, obj.Int(2)},
		{"_IntOr:", obj.Int(6), []obj.Value{obj.Int(3)}, obj.Int(7)},
		{"_IntXor:", obj.Int(6), []obj.Value{obj.Int(3)}, obj.Int(5)},
		{"_IntLT:", obj.Int(1), []obj.Value{obj.Int(2)}, w.Bool(true)},
		{"_IntLE:", obj.Int(2), []obj.Value{obj.Int(2)}, w.Bool(true)},
		{"_IntGT:", obj.Int(1), []obj.Value{obj.Int(2)}, w.Bool(false)},
		{"_IntGE:", obj.Int(1), []obj.Value{obj.Int(2)}, w.Bool(false)},
		{"_IntEQ:", obj.Int(2), []obj.Value{obj.Int(2)}, w.Bool(true)},
		{"_IntNE:", obj.Int(2), []obj.Value{obj.Int(2)}, w.Bool(false)},
		{"_Eq:", obj.Str("a"), []obj.Value{obj.Str("a")}, w.Bool(true)},
		{"_At:", vec, []obj.Value{obj.Int(1)}, obj.Int(2)},
		{"_Size", vec, nil, obj.Int(4)},
	}
	for _, c := range cases {
		v, err := run(c.sel, c.recv, c.args...)
		if err != nil {
			t.Errorf("%s: %v", c.sel, err)
			continue
		}
		if !v.Eq(c.want) {
			t.Errorf("%s = %v, want %v", c.sel, v, c.want)
		}
	}

	// Failures without handlers error out.
	for _, c := range []struct {
		sel  string
		recv obj.Value
		args []obj.Value
	}{
		{"_IntAdd:", obj.Str("x"), []obj.Value{obj.Int(1)}},
		{"_IntDiv:", obj.Int(1), []obj.Value{obj.Int(0)}},
		{"_At:", vec, []obj.Value{obj.Int(99)}},
		{"_NewVec:", obj.Nil(), []obj.Value{obj.Int(-1)}},
		{"_NoSuchPrim", obj.Nil(), nil},
	} {
		if _, err := run(c.sel, c.recv, c.args...); err == nil {
			t.Errorf("%s with bad inputs should fail", c.sel)
		} else if !strings.Contains(err.Error(), "failed") {
			t.Errorf("%s: unexpected error %v", c.sel, err)
		}
	}
}

func TestOpFail(t *testing.T) {
	w := obj.NewWorld()
	g := ir.NewGraph("t")
	msg := g.NewReg()
	cm := g.NewNode(ir.Const)
	cm.Dst = msg
	cm.Val = obj.Str("boom")
	fl := g.NewNode(ir.Fail)
	fl.Sel = "_Error"
	fl.A = msg
	chain(g, cm, fl)
	machine := &VM{World: w}
	_, err := machine.invoke(Assemble(g), obj.Nil(), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("got %v", err)
	}
}
