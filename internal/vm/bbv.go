package vm

// Lazy basic-block versioning (internal/bbv) — the VM half: the
// abstract walk that materializes a version by interpreting one
// region's instructions over type contexts instead of values, and the
// run-loop helpers that anchor, advance and account the version state.
//
// The region model matches what the interpreter executes: a version
// covers the linear instruction range from its entry pc to the first
// control transfer (jump, compare-branch, type test, or a
// return/fault terminator). Checked arithmetic's overflow branch is
// deliberately NOT a region terminator — the walk assumes the
// fallthrough (the result is a small integer), and a run-time overflow
// transfer leaves the version state desynchronized, which the
// `ver.BranchPC == pc` check at the next branch detects and repairs by
// re-anchoring with the empty context. The assembler lays failure
// paths out of line after the main body, so control can never travel
// from an overflow target back to a region's terminating branch
// without crossing another branch first.

import (
	"selfgo/internal/bbv"
	"selfgo/internal/ir"
)

// bbvVersion and bbvElideNone let vm.go hold version state without
// importing the bbv package in the interpreter file.
type bbvVersion = bbv.Version

const bbvElideNone = bbv.ElideNone

// EnableBBV attaches a lazy-versioning store to freshly assembled
// code. Must be called before the Code is published to other VMs; the
// pipeline does it for any strategy other than split. BBV code must be
// the unfused interpreter stream (versions anchor on per-instruction
// pcs), which core.ApplyStrategy guarantees.
func EnableBBV(c *Code, maxVers int) {
	c.bbv = bbv.NewState(maxVers)
}

// BBVState exposes the code's version store (nil under the split
// strategy); tests assert cap behavior through it.
func (c *Code) BBVState() *bbv.State { return c.bbv }

// bbvAnchor resolves the version for a method entry (pc 0). Customized
// code is only ever invoked on receivers of its origin map, so the
// entry context carries that fact for free — the BBV analogue of the
// paper's customization. The resolution is memoized on the store;
// steady-state invocation is one atomic load plus a generation check.
func (vm *VM) bbvAnchor(code *Code) *bbv.Version {
	st := code.bbv
	gen := vm.World.ShapeGen.Load()
	if v := st.Entry(); v != nil && v.Fresh(gen) {
		return v
	}
	ctx := bbv.EmptyContext()
	if rm := code.Origin.RMap; rm != nil {
		ctx = ctx.With(int32(RegSelf), rm, false, bbv.NoShapeGen)
	}
	v := vm.bbvResolve(code, 0, ctx, gen)
	st.SetEntry(v)
	return v
}

// bbvResolve enters (pc, ctx) through the code's version store,
// folding materialization and cap accounting into this VM's RunStats.
func (vm *VM) bbvResolve(code *Code, pc int, ctx bbv.Context, gen uint64) *bbv.Version {
	v, materialized, capped := code.bbv.Enter(pc, ctx, gen, func(nv *bbv.Version) {
		vm.bbvMaterialize(code, nv)
	})
	if materialized {
		vm.Stats.BBVVersions++
		vm.Stats.BBVVersionBytes += v.Bytes
	}
	if capped {
		vm.Stats.BBVCapHits++
	}
	return v
}

// bbvEdge advances the version state across the branch at pc: taken
// says which edge, target where it leads. The steady state is one
// memoized-successor load; the first traversal of an edge resolves
// (and possibly materializes) the successor under the branch's
// outgoing context — laziness exactly at edge granularity.
func (vm *VM) bbvEdge(code *Code, ver *bbv.Version, pc int, taken bool, target int) *bbv.Version {
	gen := vm.World.ShapeGen.Load()
	if ver == nil || ver.BranchPC != pc {
		// Control arrived off the versioned walk (an overflow branch,
		// a non-local-return landing): re-anchor with no facts.
		return vm.bbvResolve(code, target, bbv.EmptyContext(), gen)
	}
	if s := ver.Succ(taken); s != nil && s.Fresh(gen) {
		return s
	}
	s := vm.bbvResolve(code, target, ver.Out(taken), gen)
	ver.SetSucc(taken, s)
	return s
}

// bbvMaterialize is the abstract transfer function: walk the region
// from v.Entry over v.Ctx, deriving each instruction's effect on the
// register→map facts, the modelled bytes a lazy code generator would
// emit for exactly this region, and — when the region ends in a type
// test an accumulated fact already proves — the elision.
func (vm *VM) bbvMaterialize(code *Code, v *bbv.Version) {
	w := vm.World
	ctx := v.Ctx
	var bytes int64
	if v.Entry == 0 {
		bytes = SizePrologue
	}

	finish := func(branchPC int, elide bbv.Elide, outT, outF bbv.Context) {
		v.BranchPC = branchPC
		v.Elide = elide
		v.OutT, v.OutF = outT, outF
		v.Bytes = bytes
		// The version depends on shape facts exactly as far as its
		// outgoing contexts (which include any elision-feeding fact)
		// do; min over both edges keeps the guard at least as strict
		// as any fact it may consume.
		v.ShapeGen = outT.Generation()
		if g := outF.Generation(); g < v.ShapeGen {
			v.ShapeGen = g
		}
	}

	for pc := v.Entry; pc >= 0 && pc < len(code.Instrs); pc++ {
		in := &code.Instrs[pc]
		switch in.Op {
		case opJmp:
			bytes += SizeSimple
			finish(pc, bbv.ElideNone, ctx, bbv.Context{})
			return
		case ir.CmpBr:
			bytes += SizeBranch
			finish(pc, bbv.ElideNone, ctx, ctx)
			return
		case ir.TypeTest:
			elide := bbv.ElideNone
			f := ctx.Get(int32(in.A))
			switch {
			case f == nil:
				bytes += SizeTypeTest
			case f.Map == in.TestMap && f.Shape:
				elide = bbv.ElideTrueShape
			case f.Map == in.TestMap:
				elide = bbv.ElideTrue
			case f.Shape:
				elide = bbv.ElideFalseShape
			default:
				elide = bbv.ElideFalse
			}
			// The taken edge proves the fact; keep an existing fact's
			// provenance (a shape-proven fact stays guarded), otherwise
			// record it as run-time verified — when an elision's stale
			// guard forces the real test, this is the edge it verified.
			outT := ctx
			if f == nil || f.Map != in.TestMap {
				outT = ctx.With(int32(in.A), in.TestMap, false, bbv.NoShapeGen)
			}
			finish(pc, elide, outT, ctx)
			return
		case ir.Return, ir.NLReturn, ir.Fail:
			bytes += bbvSize(in)
			finish(-1, bbv.ElideNone, bbv.Context{}, bbv.Context{})
			return
		case ir.Const:
			ctx = ctx.With(int32(in.Dst), w.MapOf(in.Val), false, bbv.NoShapeGen)
		case ir.Move:
			ctx = bbvCopyFact(ctx, in.Dst, in.A)
		case ir.CloneOp:
			// A clone keeps its source's map (immediates clone to
			// themselves), so the fact transfers.
			ctx = bbvCopyFact(ctx, in.Dst, in.A)
		case ir.Arith:
			// Fallthrough assumed: the result is a small integer. A
			// run-time overflow transfer desynchronizes and re-anchors
			// at the next branch (see the file comment).
			ctx = ctx.With(int32(in.Dst), w.IntMap, false, bbv.NoShapeGen)
		case ir.VecLen:
			ctx = ctx.With(int32(in.Dst), w.IntMap, false, bbv.NoShapeGen)
		case ir.NewVec:
			ctx = ctx.With(int32(in.Dst), w.VecMap, false, bbv.NoShapeGen)
		case ir.MkBlk:
			ctx = ctx.With(int32(in.Dst), w.BlockMap, false, bbv.NoShapeGen)
		case ir.LoadF:
			// The typed-shape payoff: a load from a receiver whose map
			// the context knows contributes the slot's tag as a fact
			// without any test. Generation read BEFORE the tag — see
			// World.NoteFieldStore for why this order can never stamp
			// a current generation on a stale tag.
			set := false
			if f := ctx.Get(int32(in.A)); f != nil {
				rg := w.ShapeGen.Load()
				if tag := w.SlotTypeTag(f.Map, in.Index); tag != nil {
					ctx = ctx.With(int32(in.Dst), tag, true, rg)
					set = true
				}
			}
			if !set {
				ctx = ctx.Without(int32(in.Dst))
			}
		case ir.Send, ir.Call, ir.PrimOp, ir.LoadE, ir.LoadUp:
			if in.Dst != ir.NoReg {
				ctx = ctx.Without(int32(in.Dst))
			}
		case ir.StoreF, ir.StoreE, ir.StoreUp:
			// No register changes.
		default:
			// A fused or otherwise unexpected opcode (BBV code is never
			// fused, but stay defensive): end the region with no
			// terminating branch; the next run-time branch re-anchors.
			bytes += bbvSize(in)
			finish(-1, bbv.ElideNone, bbv.Context{}, bbv.Context{})
			return
		}
		bytes += bbvSize(in)
	}
	finish(-1, bbv.ElideNone, bbv.Context{}, bbv.Context{})
}

// bbvCopyFact transfers src's fact (with its provenance) to dst.
func bbvCopyFact(ctx bbv.Context, dst, src ir.Reg) bbv.Context {
	if f := ctx.Get(int32(src)); f != nil {
		return ctx.With(int32(dst), f.Map, f.Shape, ctx.Generation())
	}
	return ctx.Without(int32(dst))
}

// bbvSize is the modelled byte size of one linearized instruction —
// sizeOf's twin over Instr instead of ir.Node, used to price what a
// lazy code generator would emit for a materialized region.
func bbvSize(in *Instr) int64 {
	switch in.Op {
	case opJmp:
		return SizeSimple
	case ir.Const:
		return SizeConst
	case ir.Move:
		return SizeSimple
	case ir.LoadF, ir.StoreF, ir.LoadE, ir.StoreE, ir.VecLen:
		return SizeLoadF
	case ir.NewVec:
		return SizeNewVec
	case ir.CloneOp:
		return SizeClone
	case ir.Arith:
		if in.Checked {
			return SizeArithChk
		}
		return SizeSimple
	case ir.CmpBr:
		return SizeBranch
	case ir.TypeTest:
		return SizeTypeTest
	case ir.Send:
		if in.Direct {
			return SizeCall
		}
		return SizeSend
	case ir.Call:
		return SizeCall
	case ir.PrimOp:
		return SizePrimOp
	case ir.MkBlk:
		return SizeMkBlk + SizeMkBlkCap*int64(len(in.Caps))
	case ir.Fail:
		return SizeFail
	case ir.Return:
		return SizeReturn
	case ir.NLReturn:
		return SizeNLReturn
	case ir.LoadUp, ir.StoreUp:
		return SizeUpAccess
	}
	return 0
}

// bbvElide executes an elided type test: back out the precharged
// instruction cost (exactly like uncharge — splitting would never have
// emitted the test), account the elision by provenance, and report
// which edge the proof takes. Shape-kind elisions are guarded by the
// current generation at every execution; a stale guard returns false
// and the caller performs the real test.
func (vm *VM) bbvElide(st *RunStats, ver *bbv.Version, in *Instr) (taken, ok bool) {
	shape := ver.Elide == bbv.ElideTrueShape || ver.Elide == bbv.ElideFalseShape
	if shape && vm.World.ShapeGen.Load() != ver.ShapeGen {
		return false, false
	}
	st.Instrs--
	st.Cycles -= in.Cost + vm.InstrExtra
	if shape {
		st.BBVElidedShape++
	} else {
		st.BBVElidedCtx++
	}
	return ver.Elide == bbv.ElideTrue || ver.Elide == bbv.ElideTrueShape, true
}
