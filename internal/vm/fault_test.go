package vm_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"selfgo/internal/ast"
	"selfgo/internal/codecache"
	"selfgo/internal/core"
	"selfgo/internal/obj"
	"selfgo/internal/parser"
	"selfgo/internal/prelude"
	"selfgo/internal/vm"
)

// kindOf extracts the RuntimeError kind, failing the test when err is
// not a RuntimeError at all.
func kindOf(t *testing.T, err error) vm.ErrKind {
	t.Helper()
	var re *vm.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T) is not a *RuntimeError", err, err)
	}
	return re.Kind
}

// TestSharedCompilePanicContained: eight VMs sharing one code cache all
// request a method whose compile callback panics. Every caller must get
// a KindInternal RuntimeError — not a crashed process, not a deadlock.
func TestSharedCompilePanicContained(t *testing.T) {
	w := obj.NewWorld()
	for _, s := range []string{prelude.Source, `broken = ( 1 + 2 ).`} {
		f, err := parser.ParseFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Load(f); err != nil {
			t.Fatal(err)
		}
	}
	w.Finalize()

	shared := codecache.New[*vm.Code]()
	cc := core.New(w, core.NewSELF)
	newVM := func() *vm.VM {
		m := &vm.VM{World: w, Customize: true, Shared: shared}
		m.CompileMethod = func(meth *obj.Method, rmap *obj.Map) (*vm.Code, error) {
			if meth.Sel == "broken" {
				panic("optimizer bug in " + meth.Sel)
			}
			g, _, err := cc.CompileMethod(meth, rmap)
			if err != nil {
				return nil, err
			}
			return vm.Assemble(g), nil
		}
		m.CompileBlock = func(b *ast.Block, upNames []string) (*vm.Code, error) {
			g, _, err := cc.CompileBlock(b, upNames)
			if err != nil {
				return nil, err
			}
			c := vm.Assemble(g)
			c.IsBlock = true
			return c, nil
		}
		return m
	}

	r := obj.Lookup(w.Lobby.Map, "broken")
	if r == nil {
		t.Fatal("no broken method")
	}

	const n = 8
	errs := make([]error, n)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		m := newVM()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			_, errs[i] = m.RunMethod(r.Slot.Meth, obj.Obj(w.Lobby))
		}()
	}
	close(gate)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: VMs still blocked on the panicked compile flight")
	}

	for i, err := range errs {
		if err == nil {
			t.Fatalf("VM %d: panicking compile returned no error", i)
		}
		if k := kindOf(t, err); k != vm.KindInternal {
			t.Fatalf("VM %d: kind = %v, want KindInternal (err: %v)", i, k, err)
		}
	}
}

// TestRunMethodArityMismatch: the public entry validates argument count
// instead of silently dropping extras or reading garbage.
func TestRunMethodArityMismatch(t *testing.T) {
	h := newHarness(t, core.NewSELF, `addOne: n = ( n + 1 ).`)
	r := obj.Lookup(h.w.Lobby.Map, "addOne:")
	for _, args := range [][]obj.Value{
		{},
		{obj.Int(1), obj.Int(2)},
	} {
		_, err := h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby), args...)
		if err == nil {
			t.Fatalf("%d args accepted by a 1-parameter method", len(args))
		}
		if !strings.Contains(err.Error(), "argument") {
			t.Fatalf("arity error %q does not mention arguments", err)
		}
	}
	// The correct arity still works.
	v, err := h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby), obj.Int(41))
	if err != nil || v.I() != 42 {
		t.Fatalf("addOne: 41 = (%v, %v), want 42", v, err)
	}
}

// TestNegativeNewVecUnchecked: under the static-ideal config the _NewVec
// primitive inlines without its size guard; a negative size used to
// reach Go's make and panic the process. It must surface as a
// RuntimeError instead.
func TestNegativeNewVecUnchecked(t *testing.T) {
	h := newHarness(t, core.StaticIdealC, `go: n = ( _NewVec: n ).`)
	r := obj.Lookup(h.w.Lobby.Map, "go:")
	_, err := h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby), obj.Int(-5))
	if err == nil {
		t.Fatal("negative _NewVec: succeeded on the unchecked path")
	}
	var re *vm.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("negative _NewVec: error %T is not a RuntimeError", err)
	}
}

// TestBudgetPollPreservesCycles: runs with and without an (unhit)
// budget must account identical modelled cycles — the poll is free in
// the §6.1 cost model.
func TestBudgetPollPreservesCycles(t *testing.T) {
	src := `loop: n = ( |s <- 0| 1 upTo: n Do: [ :i | s: s + i ]. s ).`

	run := func(budget vm.Budget, ctx context.Context) vm.RunStats {
		h := newHarness(t, core.NewSELF, src)
		h.vm.Budget = budget
		r := obj.Lookup(h.w.Lobby.Map, "loop:")
		var err error
		if ctx != nil {
			_, err = h.vm.RunMethodCtx(ctx, r.Slot.Meth, obj.Obj(h.w.Lobby), obj.Int(5000))
		} else {
			_, err = h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby), obj.Int(5000))
		}
		if err != nil {
			t.Fatal(err)
		}
		return h.vm.Stats
	}

	plain := run(vm.Budget{}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	budgeted := run(vm.Budget{MaxInstrs: 1 << 40, MaxDepth: 1 << 20, MaxAllocs: 1 << 40}, ctx)
	if plain.Cycles != budgeted.Cycles || plain.Instrs != budgeted.Instrs {
		t.Fatalf("budget polling changed the cost model: plain (cycles=%d instrs=%d) vs budgeted (cycles=%d instrs=%d)",
			plain.Cycles, plain.Instrs, budgeted.Cycles, budgeted.Instrs)
	}
}
