package vm

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"

	"selfgo/internal/obj"
)

// Budget bounds one execution (one RunMethod/RunMethodCtx call). Zero
// fields are unlimited. Instruction and allocation budgets are checked
// cooperatively every budgetPollInterval instructions; MaxDepth is
// checked at every activation. The checks consume no modelled cycles,
// so the §6.1 cost model is unchanged whether or not a budget is set.
type Budget struct {
	// MaxInstrs bounds executed instructions; exceeding it returns a
	// KindOutOfFuel error.
	MaxInstrs int64
	// MaxDepth bounds activation depth (tighter than the VM's own
	// limit); exceeding it returns a KindStackOverflow error.
	MaxDepth int
	// MaxAllocs bounds allocation operations (vectors, clones,
	// closures); exceeding it returns a KindOutOfFuel error.
	MaxAllocs int64
	// MaxBytes bounds the modelled bytes of vector and clone storage
	// (per-element, see RunStats.AllocBytes); exceeding it returns a
	// KindOutOfFuel error. Unlike the other axes this is checked at
	// the allocation site, before the storage is created: one huge
	// `_NewVec:` must fault instead of OOMing the host between polls.
	MaxBytes int64
	// PollEvery overrides the cooperative poll stride: how many
	// instructions run between budget/cancellation checks. Zero keeps
	// the default (budgetPollInterval, 1024). A server handling short
	// deadlines tightens it to bound cancellation latency; even a
	// 1-instruction stride charges zero modelled cost — the poll is
	// host work only — but costs host time, so small strides are for
	// latency-sensitive callers. Setting only PollEvery (no limits, no
	// context) arms the poll but every check passes.
	PollEvery int64
}

// budgetPollInterval is how many instructions run between cooperative
// budget/cancellation checks. Small enough that a cancelled context or
// exhausted budget is noticed promptly, large enough that the poll is
// noise against the interpreter loop.
const budgetPollInterval = 1024

// RunMethodCtx executes meth like RunMethod, honoring ctx cancellation
// and deadline (checked cooperatively alongside the VM's Budget): a
// cancelled context surfaces as a KindCancelled RuntimeError.
func (vm *VM) RunMethodCtx(ctx context.Context, meth *obj.Method, recv obj.Value, args ...obj.Value) (obj.Value, error) {
	return vm.runMethod(ctx, meth, recv, args)
}

// startRun arms the cooperative poll for one execution: budgets are
// per-run, so the fuel and allocation baselines snapshot the current
// counters. Unbudgeted runs park the poll trigger at MaxInt64 — the
// per-instruction cost is then a single always-false comparison.
func (vm *VM) startRun(ctx context.Context) {
	vm.ctx = ctx
	vm.fuelStart = vm.Stats.Instrs
	vm.allocStart = vm.Stats.Allocs
	vm.bytesStart = vm.Stats.AllocBytes
	vm.curEp = vm.Arena.Epoch()
	vm.pollEvery = vm.Budget.PollEvery
	if vm.pollEvery <= 0 {
		vm.pollEvery = budgetPollInterval
	}
	// context.Background() has a nil Done channel: such a context can
	// never be cancelled, so it does not force polling on.
	if (ctx != nil && ctx.Done() != nil) || vm.Budget != (Budget{}) {
		vm.pollAt = vm.Stats.Instrs + vm.pollEvery
	} else {
		vm.pollAt = math.MaxInt64
	}
}

// poll is the cooperative budget and cancellation check.
func (vm *VM) poll(st *RunStats) error {
	stride := vm.pollEvery
	if stride <= 0 {
		// Defensive: a poll reached outside startRun (which always arms
		// the stride) must not degenerate into polling every instruction.
		stride = budgetPollInterval
	}
	vm.pollAt = st.Instrs + stride
	b := &vm.Budget
	if b.MaxInstrs > 0 && st.Instrs-vm.fuelStart > b.MaxInstrs {
		return &RuntimeError{Kind: KindOutOfFuel,
			Msg: fmt.Sprintf("out of fuel: instruction budget %d exhausted", b.MaxInstrs)}
	}
	if b.MaxAllocs > 0 && st.Allocs-vm.allocStart > b.MaxAllocs {
		return &RuntimeError{Kind: KindOutOfFuel,
			Msg: fmt.Sprintf("out of fuel: allocation budget %d exhausted", b.MaxAllocs)}
	}
	// MaxBytes is enforced at the allocation sites (chargeBytes); the
	// poll re-checks so a run that slipped past on an uncounted path
	// still faults at the next stride.
	if b.MaxBytes > 0 && st.AllocBytes-vm.bytesStart > b.MaxBytes {
		return &RuntimeError{Kind: KindOutOfFuel,
			Msg: fmt.Sprintf("out of fuel: byte budget %d exhausted", b.MaxBytes)}
	}
	if vm.ctx != nil {
		if cerr := vm.ctx.Err(); cerr != nil {
			return &RuntimeError{Kind: KindCancelled, Msg: "cancelled: " + cerr.Error()}
		}
	}
	return nil
}

// depthLimit is the effective activation-depth bound for this run.
func (vm *VM) depthLimit() int {
	if b := vm.Budget.MaxDepth; b > 0 && b < maxDepth {
		return b
	}
	return maxDepth
}

// containPanic converts a Go panic that reached the public RunMethod
// boundary into an error: no guest program or VM/compiler bug may crash
// the host process. Non-local-return payloads that escape every frame
// are VM invariant violations and classify as internal too.
func containPanic(r any) error {
	if n, ok := r.(nlr); ok {
		return &RuntimeError{Kind: KindInternal,
			Msg: fmt.Sprintf("non-local return escaped all frames (value %s)", n.val)}
	}
	return &RuntimeError{Kind: KindInternal,
		Msg: fmt.Sprintf("internal VM panic: %v", r), GoStack: debug.Stack()}
}
