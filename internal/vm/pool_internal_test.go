package vm

import (
	"testing"

	"selfgo/internal/obj"
)

// TestGetPutFrame: the freelist unit contract — zeroing on reuse,
// escaped frames dropped, size caps respected.
func TestGetPutFrame(t *testing.T) {
	vm := &VM{}

	fr := vm.getFrame(10)
	for i := range fr.regs {
		fr.regs[i] = obj.Int(int64(i + 1))
	}
	fr.dead = true
	vm.putFrame(fr)
	if len(vm.freeFrames) != 1 {
		t.Fatalf("pool size = %d after put, want 1", len(vm.freeFrames))
	}

	// Reuse at a smaller size: every visible register must be zero, and
	// the frame flags must be reset.
	re := vm.getFrame(5)
	if re != fr {
		t.Fatalf("expected the pooled frame back")
	}
	if re.dead || re.escaped || re.up != nil || re.home.fr != nil {
		t.Fatalf("pooled frame not reset: %+v", re)
	}
	for i, v := range re.regs {
		if !v.Eq(obj.Nil()) {
			t.Fatalf("stale register %d = %s after reuse", i, v)
		}
	}
	// Growing it back to full size must expose zeroes, not the old
	// values hidden past the shortened length.
	re.dead = true
	vm.putFrame(re)
	re2 := vm.getFrame(10)
	for i, v := range re2.regs {
		if !v.Eq(obj.Nil()) {
			t.Fatalf("stale register %d = %s after regrow", i, v)
		}
	}

	// Escaped frames never pool.
	re2.escaped = true
	vm.putFrame(re2)
	if len(vm.freeFrames) != 0 {
		t.Fatalf("escaped frame entered the pool")
	}

	// Oversized register files are dropped.
	big := vm.getFrame(maxPoolRegs + 1)
	vm.putFrame(big)
	if len(vm.freeFrames) != 0 {
		t.Fatalf("oversized frame entered the pool")
	}

	// The pool is bounded.
	for i := 0; i < maxPoolFrames+10; i++ {
		vm.putFrame(&frame{regs: make([]obj.Value, 4)})
	}
	if len(vm.freeFrames) != maxPoolFrames {
		t.Fatalf("pool size = %d, want capped at %d", len(vm.freeFrames), maxPoolFrames)
	}
}
