package vm

import "selfgo/internal/obj"

// EnableCOW puts the VM in copy-on-write mode over a frozen base
// world. baseEp is the epoch World.Freeze stamped on every base
// object; stores into base objects are redirected to per-VM shadow
// copies and reads through base objects see the shadow, so forks
// sharing one restored image mutate private overlays while object
// identity — maps, inline caches, TypeTest — keeps working on the
// shared base (shadows are storage only and never appear as Values).
//
// Escape discipline matches the arena rules: base objects and shadows
// are permanent (storing them anywhere never dirties an arena), and
// storing an arena value into a shadow marks the arena escaped exactly
// as a store into the world does today.
func (vm *VM) EnableCOW(baseEp uint32) {
	vm.cowEp = baseEp
	vm.cowShadowEp = obj.NewEpoch()
	vm.cowShadows = make(map[*obj.Object]*obj.Object)
}

// Permanent reports whether a value with epoch ep is epoch-durable
// from this VM's point of view: the permanent heap (epoch 0), the
// frozen copy-on-write base world, or this fork's own shadow objects.
// Such values survive every ResetArena, so holding one across a reset
// needs no escape marking.
func (vm *VM) Permanent(ep uint32) bool {
	if ep == 0 {
		return true
	}
	return vm.cowEp != 0 && (ep == vm.cowEp || ep == vm.cowShadowEp)
}

// COWShadowCount reports how many base objects this VM has shadowed
// (tests and /statusz).
func (vm *VM) COWShadowCount() int { return len(vm.cowShadows) }

// cowShadowed returns the VM's private view of o for reading: the
// shadow if this fork has written to o, otherwise o itself. Callers
// guard with `vm.cowEp != 0 && o.Ep == vm.cowEp` so non-COW VMs never
// pay the map lookup.
func (vm *VM) cowShadowed(o *obj.Object) *obj.Object {
	if s, ok := vm.cowShadows[o]; ok {
		return s
	}
	return o
}

// cowTarget returns the fork-private shadow for base object o,
// creating it on first write. The shadow shares o's map (identity of
// shape is identity of the base) and starts as a full copy of o's
// storage; it is stamped with the fork's shadow epoch so the store
// barrier and escape check treat it as permanent.
func (vm *VM) cowTarget(o *obj.Object) *obj.Object {
	if s, ok := vm.cowShadows[o]; ok {
		return s
	}
	s := &obj.Object{Map: o.Map, Ep: vm.cowShadowEp}
	if len(o.Fields) > 0 {
		s.Fields = append([]obj.Value(nil), o.Fields...)
	}
	if len(o.Elems) > 0 {
		s.Elems = append([]obj.Value(nil), o.Elems...)
	}
	vm.cowShadows[o] = s
	return s
}

// storeSlow is the out-of-line half of the store barrier, entered when
// the written-to object's epoch differs from the VM's current arena
// epoch. It redirects base-world stores to the fork's shadow (COW mode
// only) and runs the escape check on the stored value; the caller
// performs the actual store on the returned object.
func (vm *VM) storeSlow(o *obj.Object, v obj.Value) *obj.Object {
	if vm.cowEp != 0 && o.Ep == vm.cowEp {
		o = vm.cowTarget(o)
	}
	vm.escapeCheck(v)
	return o
}
