// The closure-threaded native backend: the top compilation tier
// (core.TierNative) lowers assembled Code — fused superinstructions
// included — into an array of directly-called Go closures, one per
// instruction, with branch targets as array indices. This is the
// classic tiered-JIT top tier realized in pure Go: instead of decoding
// Instr fields through a 30-way switch on every dispatch, each closure
// captured its operands at lowering time and the driver's loop is just
// charge-accounting plus one indirect call.
//
// The backend is a host-speed change only. The contract — pinned by
// the native differential oracle (native_differential_test.go and the
// in-package parity tests at the repo root) — is that every modelled
// quantity is bit-identical to the switch interpreter:
//
//   - the driver replicates runFast's per-instruction prologue exactly
//     (Instrs += N, budget poll against pollAt, Cycles += Cost plus the
//     InstrExtra surcharge), so budget faults fire at the same
//     instruction at every PollEvery stride;
//   - fused closures run their constituents in order and uncharge the
//     unexecuted tail on an early fault or overflow branch, exactly as
//     the fused switch cases do;
//   - faults build the same RuntimeError kinds and messages, and the
//     driver appends the same Self-level backtrace frames;
//   - dynamic behavior (sends with IC/PIC feedback, primitives, block
//     creation with frame escape, non-local returns via the nlr panic,
//     hotness counting on invocations and backedges) reuses the same
//     helpers the interpreter calls.
//
// KEEP IN SYNC with runFast/runTraced (vm.go): a semantic change to
// any interpreter case must be mirrored in the corresponding lowering
// here; the differential suite fails loudly when they drift.
package vm

import (
	"fmt"

	"selfgo/internal/ir"
	"selfgo/internal/obj"
)

// nativeOp executes one lowered instruction against a frame. The
// returned pc is the next instruction index for branches, or one of
// the sentinels below. On a non-nil error a positive pc reports the
// faulting instruction (segment closures fault mid-run); zero means
// "the pc the driver dispatched", which single-instruction closures
// use — the two coincide when the dispatched pc is 0.
type nativeOp func(vm *VM, fr *frame) (int, error)

const (
	// nFall falls through to pc+1 (straight-line instructions).
	nFall = -1
	// nRet returns from the frame; the value travels in vm.nret.
	nRet = -2
)

// nativeInstr pairs one closure with the accounting the driver charges
// before dispatch, copied out of the Instr so the hot loop touches one
// small struct per instruction.
type nativeInstr struct {
	op   nativeOp
	cost int64
	n    int64
}

// nativeCode is the closure-threaded form of a Code's instruction
// stream, indexed by the same pcs as Instrs.
type nativeCode struct {
	ops []nativeInstr
}

// HasNative reports whether c carries a native lowering (i.e. run will
// use the closure-threaded driver).
func (c *Code) HasNative() bool { return c.native != nil }

// PrepareNative lowers c's assembled instruction stream into
// closure-threaded form. Idempotent; called by the pipeline's assemble
// pass when the tier-resolved Config selects the native backend, after
// branch fixups and superinstruction fusion have finalized the stream.
// An unsupported opcode fails the lowering — and thereby the
// compilation, which the degraded retry or the promotion flight's
// keep-old-tier path contains — rather than producing code that could
// diverge from the interpreter.
func PrepareNative(c *Code) error {
	if c.native != nil {
		return nil
	}
	base := make([]nativeInstr, len(c.Instrs))
	linear := make([]bool, len(c.Instrs))
	for pc := range c.Instrs {
		in := &c.Instrs[pc]
		op, lin, err := lowerInstr(c, pc, in)
		if err != nil {
			return err
		}
		base[pc] = nativeInstr{op: op, cost: in.Cost, n: int64(in.N)}
		linear[pc] = lin
	}

	// Segment pass: at every pc that begins a straight-line run of two
	// or more linear instructions (ops whose only successful outcome is
	// fall-through), install a segment closure that executes the whole
	// run in one dispatch, charging each constituent exactly as the
	// driver would. Every pc keeps a valid entry — branches landing
	// mid-run execute the individual closures — and runs overlapping a
	// jump target re-segment from the target itself, since a segment is
	// built at every linear pc whose successor is also linear.
	nc := &nativeCode{ops: make([]nativeInstr, len(c.Instrs))}
	copy(nc.ops, base)
	for pc := range base {
		end := pc
		for end < len(base) && linear[end] {
			end++
		}
		if end-pc >= 2 {
			nc.ops[pc].op = makeSegment(base[pc:end], pc)
		}
	}
	c.native = nc
	return nil
}

// makeSegment fuses a straight-line run of linear instructions into
// one closure. The driver has already charged seg[0] when the closure
// runs; the closure charges the rest one instruction at a time —
// modelled count, budget poll, cycle cost, overhead surcharge, in the
// driver's exact order — so budget faults still fire at the identical
// instruction at every poll stride. On success it returns the pc after
// the run; on a fault, the faulting constituent's pc (for the
// backtrace).
func makeSegment(run []nativeInstr, start int) nativeOp {
	seg := make([]nativeInstr, len(run))
	copy(seg, run)
	return func(vm *VM, fr *frame) (int, error) {
		if next, err := seg[0].op(vm, fr); err != nil {
			return start, err
		} else if next != nFall {
			return next, nil // linear ops never branch; defensive
		}
		st := &vm.Stats
		extra := vm.InstrExtra
		for j := 1; j < len(seg); j++ {
			ni := &seg[j]
			st.Instrs += ni.n
			if st.Instrs >= vm.pollAt {
				if perr := vm.poll(st); perr != nil {
					return start + j, perr
				}
			}
			st.Cycles += ni.cost
			if extra != 0 {
				st.Cycles += extra * ni.n
			}
			next, err := ni.op(vm, fr)
			if err != nil {
				return start + j, err
			}
			if next != nFall {
				return next, nil
			}
		}
		return start + len(seg), nil
	}
}

// runNative is the closure-threaded driver, the native backend's
// counterpart of runFast. The prologue per dispatch is byte-for-byte
// the interpreter's: modelled-instruction count, cooperative budget
// poll, static cycle charge, per-instruction overhead surcharge.
func (vm *VM) runNative(code *Code, fr *frame, pc int) (val obj.Value, err error) {
	defer func() {
		if err != nil {
			pushFrame(err, code, pc)
		}
	}()
	st := &vm.Stats
	extra := vm.InstrExtra
	ops := code.native.ops
	for pc >= 0 && pc < len(ops) {
		ni := &ops[pc]
		st.Instrs += ni.n
		if st.Instrs >= vm.pollAt {
			if perr := vm.poll(st); perr != nil {
				return obj.Nil(), perr
			}
		}
		st.Cycles += ni.cost
		if extra != 0 {
			st.Cycles += extra * ni.n
		}
		next, oerr := ni.op(vm, fr)
		if oerr != nil {
			if next > 0 {
				pc = next // segment closures report the faulting constituent
			}
			return obj.Nil(), oerr
		}
		if next == nFall {
			pc++
			continue
		}
		if next >= 0 {
			pc = next
			continue
		}
		return vm.nret, nil
	}
	// Falling off the end returns self (defensive; the compiler always
	// emits Return) — as in runFast.
	if len(fr.regs) > RegSelf {
		return fr.regs[RegSelf], nil
	}
	return obj.Nil(), nil
}

// lowerInstr builds the closure for one instruction and reports
// whether it is linear — eligible to be a segment constituent.
func lowerInstr(c *Code, pc int, in *Instr) (nativeOp, bool, error) {
	op, err := lowerInstrOp(c, pc, in)
	if err != nil {
		return nil, false, err
	}
	return op, isLinear(in), nil
}

// isLinear reports whether the lowered closure's only successful
// outcome is fall-through, which is what lets the segment pass run it
// mid-segment without a branch check mattering. Anything that can
// branch (jumps, comparisons, type tests, checked arithmetic and every
// fused superinstruction with a branch constituent), returns from the
// frame, unwinds (NLReturn), or always faults (Fail) stays out.
func isLinear(in *Instr) bool {
	switch in.Op {
	case ir.Const, ir.Move, ir.LoadF, ir.StoreF, ir.LoadE, ir.StoreE,
		ir.VecLen, ir.NewVec, ir.CloneOp, ir.Send, ir.Call, ir.PrimOp,
		ir.MkBlk, ir.LoadUp, ir.StoreUp, opMoveMove:
		return true
	case ir.Arith:
		// Only the unchecked add/sub/mul specializations never branch:
		// checked arithmetic branches to its overflow handler, and the
		// generic helper owns the branch decision for the other kinds.
		return !in.Checked && (in.AOp == ir.Add || in.AOp == ir.Sub || in.AOp == ir.Mul)
	}
	return false
}

// lowerInstrOp builds the closure for one instruction. Operands are
// captured into the closure at lowering time; branch targets are final
// (fixups and fusion ran before PrepareNative). Pointer captures of
// the Instr itself (sends, primitives, block creation, vector/clone
// construction) are safe: the Instrs slice is immutable once the Code
// is published.
func lowerInstrOp(c *Code, pc int, in *Instr) (nativeOp, error) {
	switch in.Op {
	case opJmp:
		t := in.T
		if t <= pc {
			// Backward jump: a loop backedge charges hotness exactly as
			// the interpreter does (only while an OnHot hook is armed).
			return func(vm *VM, fr *frame) (int, error) {
				if vm.OnHot != nil {
					vm.noteBackedge(c)
				}
				return t, nil
			}, nil
		}
		return func(vm *VM, fr *frame) (int, error) { return t, nil }, nil

	case ir.Const:
		dst, v := in.Dst, in.Val
		return func(vm *VM, fr *frame) (int, error) {
			fr.regs[dst] = v
			return nFall, nil
		}, nil

	case ir.Move:
		dst, a := in.Dst, in.A
		return func(vm *VM, fr *frame) (int, error) {
			fr.regs[dst] = fr.regs[a]
			return nFall, nil
		}, nil

	case ir.LoadF:
		dst, a, idx := in.Dst, in.A, in.Index
		return func(vm *VM, fr *frame) (int, error) {
			o := fr.regs[a].Obj()
			if o == nil || idx >= len(o.Fields) {
				return 0, errBadField(c, "access")
			}
			if vm.cowEp != 0 && o.Ep == vm.cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[dst] = o.Fields[idx]
			return nFall, nil
		}, nil

	case ir.StoreF:
		a, b, idx := in.A, in.B, in.Index
		return func(vm *VM, fr *frame) (int, error) {
			o := fr.regs[a].Obj()
			if o == nil || idx >= len(o.Fields) {
				return 0, errBadField(c, "store")
			}
			if o.Ep != vm.curEp {
				o = vm.storeSlow(o, fr.regs[b])
			}
			if vm.World.ShapeTracking {
				vm.World.NoteFieldStore(o.Map, idx, fr.regs[b])
			}
			o.Fields[idx] = fr.regs[b]
			return nFall, nil
		}, nil

	case ir.LoadE:
		dst, a, b := in.Dst, in.A, in.B
		return func(vm *VM, fr *frame) (int, error) {
			o := fr.regs[a].Obj()
			if o == nil {
				return 0, errElemNonObject(c, "load")
			}
			i := fr.regs[b].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				return 0, errElemOOB(c, "load", i, len(o.Elems))
			}
			if vm.cowEp != 0 && o.Ep == vm.cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[dst] = o.Elems[i]
			return nFall, nil
		}, nil

	case ir.StoreE:
		a, b, cr := in.A, in.B, in.C
		return func(vm *VM, fr *frame) (int, error) {
			o := fr.regs[a].Obj()
			if o == nil {
				return 0, errElemNonObject(c, "store")
			}
			i := fr.regs[b].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				return 0, errElemOOB(c, "store", i, len(o.Elems))
			}
			if o.Ep != vm.curEp {
				o = vm.storeSlow(o, fr.regs[cr])
			}
			o.Elems[i] = fr.regs[cr]
			return nFall, nil
		}, nil

	case ir.VecLen:
		dst, a := in.Dst, in.A
		return func(vm *VM, fr *frame) (int, error) {
			o := fr.regs[a].Obj()
			if o == nil {
				return 0, &RuntimeError{Msg: "vecLen of non-vector"}
			}
			fr.regs[dst] = obj.Int(int64(len(o.Elems)))
			return nFall, nil
		}, nil

	case ir.NewVec:
		return func(vm *VM, fr *frame) (int, error) {
			if verr := vm.makeVector(&vm.Stats, fr, in); verr != nil {
				return 0, verr
			}
			return nFall, nil
		}, nil

	case ir.CloneOp:
		return func(vm *VM, fr *frame) (int, error) {
			if cerr := vm.makeClone(&vm.Stats, fr, in); cerr != nil {
				return 0, cerr
			}
			return nFall, nil
		}, nil

	case ir.Arith:
		return lowerArith(in), nil

	case ir.CmpBr:
		return lowerCmpBr(in), nil

	case ir.TypeTest:
		a, tm, tpc, fpc := in.A, in.TestMap, in.T, in.F
		return func(vm *VM, fr *frame) (int, error) {
			vm.Stats.TypeTests++
			if vm.World.MapOf(fr.regs[a]) == tm {
				return tpc, nil
			}
			return fpc, nil
		}, nil

	case ir.Send:
		dst := in.Dst
		hasDst := dst != ir.NoReg
		return func(vm *VM, fr *frame) (int, error) {
			v, serr := vm.execSend(in, fr, c)
			if serr != nil {
				return 0, serr
			}
			if hasDst {
				fr.regs[dst] = v
			}
			return nFall, nil
		}, nil

	case ir.Call:
		dst, callee := in.Dst, in.Callee
		hasDst := dst != ir.NoReg
		recvReg, argRegs := in.Args[0], in.Args[1:]
		return func(vm *VM, fr *frame) (int, error) {
			vm.Stats.Calls++
			code, cerr := vm.CodeFor(callee.Meth, callee.RMap)
			if cerr != nil {
				return 0, cerr
			}
			v, cerr := vm.invoke(code, fr.regs[recvReg], vm.argVals(argRegs, fr), nil)
			if cerr != nil {
				return 0, cerr
			}
			if hasDst {
				fr.regs[dst] = v
			}
			return nFall, nil
		}, nil

	case ir.PrimOp:
		dst := in.Dst
		hasDst := dst != ir.NoReg
		return func(vm *VM, fr *frame) (int, error) {
			v, perr := vm.execPrim(in, fr)
			if perr != nil {
				return 0, perr
			}
			if hasDst {
				fr.regs[dst] = v
			}
			return nFall, nil
		}, nil

	case ir.MkBlk:
		return func(vm *VM, fr *frame) (int, error) {
			vm.makeBlock(&vm.Stats, fr, in)
			return nFall, nil
		}, nil

	case ir.Fail:
		return func(vm *VM, fr *frame) (int, error) {
			return 0, failError(c, fr, in)
		}, nil

	case ir.Return:
		a := in.A
		return func(vm *VM, fr *frame) (int, error) {
			vm.nret = fr.regs[a]
			return nRet, nil
		}, nil

	case ir.NLReturn:
		a := in.A
		return func(vm *VM, fr *frame) (int, error) {
			if fr.home.fr == nil || fr.home.fr.dead {
				return 0, &RuntimeError{Msg: "non-local return from dead home frame"}
			}
			panic(nlr{ref: fr.home, val: fr.regs[a]})
		}, nil

	case ir.LoadUp:
		dst, sel := in.Dst, in.Sel
		return func(vm *VM, fr *frame) (int, error) {
			p := fr.up[sel]
			if p == nil {
				return 0, &RuntimeError{Msg: "unbound up-level variable " + sel}
			}
			fr.regs[dst] = *p
			return nFall, nil
		}, nil

	case ir.StoreUp:
		a, sel := in.A, in.Sel
		return func(vm *VM, fr *frame) (int, error) {
			p := fr.up[sel]
			if p == nil {
				return 0, &RuntimeError{Msg: "unbound up-level variable " + sel}
			}
			*p = fr.regs[a]
			return nFall, nil
		}, nil

	// Superinstructions (fuse.go): each closure executes the
	// constituents exactly in order, with the same uncharge of the
	// unexecuted tail on an early fault or overflow branch as the
	// fused interpreter cases.
	case opMoveMove:
		f := in.Fused
		dst, a, fdst, fa := in.Dst, in.A, f.Dst, f.A
		return func(vm *VM, fr *frame) (int, error) {
			fr.regs[dst] = fr.regs[a]
			fr.regs[fdst] = fr.regs[fa]
			return nFall, nil
		}, nil

	case opConstArith:
		f := in.Fused
		dst, v, fF := in.Dst, in.Val, f.F
		return func(vm *VM, fr *frame) (int, error) {
			fr.regs[dst] = v
			br, aerr := arithVal(&vm.Stats, f, fr)
			if aerr != nil {
				return 0, aerr
			}
			if br {
				return fF, nil
			}
			return nFall, nil
		}, nil

	case opLoadFArith:
		f := in.Fused
		dst, a, idx, fF := in.Dst, in.A, in.Index, f.F
		return func(vm *VM, fr *frame) (int, error) {
			st := &vm.Stats
			o := fr.regs[a].Obj()
			if o == nil || idx >= len(o.Fields) {
				vm.uncharge(st, f)
				return 0, errBadField(c, "access")
			}
			if vm.cowEp != 0 && o.Ep == vm.cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[dst] = o.Fields[idx]
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return 0, aerr
			}
			if br {
				return fF, nil
			}
			return nFall, nil
		}, nil

	case opLoadEArith:
		f := in.Fused
		dst, a, b, fF := in.Dst, in.A, in.B, f.F
		return func(vm *VM, fr *frame) (int, error) {
			st := &vm.Stats
			o := fr.regs[a].Obj()
			if o == nil {
				vm.uncharge(st, f)
				return 0, errElemNonObject(c, "load")
			}
			i := fr.regs[b].I()
			if i < 0 || i >= int64(len(o.Elems)) {
				vm.uncharge(st, f)
				return 0, errElemOOB(c, "load", i, len(o.Elems))
			}
			if vm.cowEp != 0 && o.Ep == vm.cowEp {
				o = vm.cowShadowed(o)
			}
			fr.regs[dst] = o.Elems[i]
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				return 0, aerr
			}
			if br {
				return fF, nil
			}
			return nFall, nil
		}, nil

	case opArithCmpBr:
		f := in.Fused
		inF, fT, fF := in.F, f.T, f.F
		return func(vm *VM, fr *frame) (int, error) {
			st := &vm.Stats
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				vm.uncharge(st, f)
				return 0, aerr
			}
			if br {
				vm.uncharge(st, f)
				return inF, nil
			}
			if f.bounds {
				st.BoundsChecks++
			}
			if cmpTaken(f.COp, fr.regs[f.A], fr.regs[f.B]) {
				return fT, nil
			}
			return fF, nil
		}, nil

	case opArithJmp:
		f := in.Fused
		inF, fT := in.F, f.T
		back := f.T <= pc
		return func(vm *VM, fr *frame) (int, error) {
			st := &vm.Stats
			br, aerr := arithVal(st, in, fr)
			if aerr != nil {
				vm.uncharge(st, f)
				return 0, aerr
			}
			if br {
				vm.uncharge(st, f)
				return inF, nil
			}
			if back && vm.OnHot != nil {
				vm.noteBackedge(c)
			}
			return fT, nil
		}, nil

	case opConstArithCmpBr:
		f := in.Fused // the Arith
		g := f.Fused  // the CmpBr
		dst, v, fF := in.Dst, in.Val, f.F
		gT, gF := g.T, g.F
		return func(vm *VM, fr *frame) (int, error) {
			st := &vm.Stats
			fr.regs[dst] = v
			br, aerr := arithVal(st, f, fr)
			if aerr != nil {
				vm.uncharge(st, g)
				return 0, aerr
			}
			if br {
				vm.uncharge(st, g)
				return fF, nil
			}
			if g.bounds {
				st.BoundsChecks++
			}
			if cmpTaken(g.COp, fr.regs[g.A], fr.regs[g.B]) {
				return gT, nil
			}
			return gF, nil
		}, nil
	}
	return nil, fmt.Errorf("native lowering: unsupported opcode %s at pc %d", in.Op, pc)
}

// lowerArith specializes the common add/sub/mul shapes (checked and
// unchecked) into branch-free-on-success closures; the remaining
// arithmetic kinds go through the shared arithVal helper, which the
// interpreter uses for all of them. The checked specializations copy
// arithVal's exact order: compute, count the overflow check, then
// range-test — a checked div/mod by zero must branch away before the
// OvflChecks counter moves, so div/mod stay on the helper.
func lowerArith(in *Instr) nativeOp {
	dst, a, b, fpc := in.Dst, in.A, in.B, in.F
	if !in.Checked {
		switch in.AOp {
		case ir.Add:
			return func(vm *VM, fr *frame) (int, error) {
				fr.regs[dst] = obj.Int(fr.regs[a].I() + fr.regs[b].I())
				return nFall, nil
			}
		case ir.Sub:
			return func(vm *VM, fr *frame) (int, error) {
				fr.regs[dst] = obj.Int(fr.regs[a].I() - fr.regs[b].I())
				return nFall, nil
			}
		case ir.Mul:
			return func(vm *VM, fr *frame) (int, error) {
				fr.regs[dst] = obj.Int(fr.regs[a].I() * fr.regs[b].I())
				return nFall, nil
			}
		}
	} else {
		switch in.AOp {
		case ir.Add:
			return func(vm *VM, fr *frame) (int, error) {
				v := fr.regs[a].I() + fr.regs[b].I()
				vm.Stats.OvflChecks++
				if v < obj.MinSmallInt || v > obj.MaxSmallInt {
					return fpc, nil
				}
				fr.regs[dst] = obj.Int(v)
				return nFall, nil
			}
		case ir.Sub:
			return func(vm *VM, fr *frame) (int, error) {
				v := fr.regs[a].I() - fr.regs[b].I()
				vm.Stats.OvflChecks++
				if v < obj.MinSmallInt || v > obj.MaxSmallInt {
					return fpc, nil
				}
				fr.regs[dst] = obj.Int(v)
				return nFall, nil
			}
		case ir.Mul:
			return func(vm *VM, fr *frame) (int, error) {
				v := fr.regs[a].I() * fr.regs[b].I()
				vm.Stats.OvflChecks++
				if v < obj.MinSmallInt || v > obj.MaxSmallInt {
					return fpc, nil
				}
				fr.regs[dst] = obj.Int(v)
				return nFall, nil
			}
		}
	}
	return func(vm *VM, fr *frame) (int, error) {
		br, aerr := arithVal(&vm.Stats, in, fr)
		if aerr != nil {
			return 0, aerr
		}
		if br {
			return fpc, nil
		}
		return nFall, nil
	}
}

// lowerCmpBr specializes the integer comparisons; EQ/NE (which compare
// full values) and bounds-check branches (which count) go through the
// shared cmpTaken helper.
func lowerCmpBr(in *Instr) nativeOp {
	a, b, tpc, fpc := in.A, in.B, in.T, in.F
	if !in.bounds {
		switch in.COp {
		case ir.LT:
			return func(vm *VM, fr *frame) (int, error) {
				if fr.regs[a].I() < fr.regs[b].I() {
					return tpc, nil
				}
				return fpc, nil
			}
		case ir.LE:
			return func(vm *VM, fr *frame) (int, error) {
				if fr.regs[a].I() <= fr.regs[b].I() {
					return tpc, nil
				}
				return fpc, nil
			}
		case ir.GT:
			return func(vm *VM, fr *frame) (int, error) {
				if fr.regs[a].I() > fr.regs[b].I() {
					return tpc, nil
				}
				return fpc, nil
			}
		case ir.GE:
			return func(vm *VM, fr *frame) (int, error) {
				if fr.regs[a].I() >= fr.regs[b].I() {
					return tpc, nil
				}
				return fpc, nil
			}
		}
	}
	cop, bounds := in.COp, in.bounds
	return func(vm *VM, fr *frame) (int, error) {
		if bounds {
			vm.Stats.BoundsChecks++
		}
		if cmpTaken(cop, fr.regs[a], fr.regs[b]) {
			return tpc, nil
		}
		return fpc, nil
	}
}
