package vm_test

import (
	"strings"
	"testing"

	"selfgo/internal/core"
	"selfgo/internal/obj"
)

const poolSrc = `
down: n = ( (n = 0) ifTrue: [ 0 ] False: [ down: n - 1 ] ).
fill: n = ( ((((n + 1) + 2) + 3) + 4) + 5 ).
leak = ( | x. y. z | z ).
mkCounter = ( | x <- 1 | [ :v | x: x + v. x ] ).
mkRet = ( [ ^ 5 ] ).
callBlock: b = ( b value ).
callBlock: b With: v = ( b value: v ).
`

// TestFramePoolZeroedOnReuse: deep recursion (filling the pool with
// frames whose registers held live values) followed by wide shallow
// calls must never observe stale registers — uninitialized locals stay
// nil. Run under -race in CI. ST80 keeps user sends out of line, so
// every recursion level is a real frame; NewSELF exercises the inlined
// shape.
func TestFramePoolZeroedOnReuse(t *testing.T) {
	for _, cfg := range []core.Config{core.ST80, core.NewSELF} {
		h := newHarness(t, cfg, poolSrc)
		if v := h.call(t, "down:", obj.Int(2000)); v.I() != 0 {
			t.Fatalf("%s: down: 2000 = %s, want 0", cfg.Name, v)
		}
		// fill: leaves non-nil temporaries in its frame registers.
		for i := 0; i < 50; i++ {
			if v := h.call(t, "fill:", obj.Int(int64(i))); v.I() != int64(i+15) {
				t.Fatalf("%s: fill: %d = %s", cfg.Name, i, v)
			}
			if v := h.call(t, "leak"); !v.Eq(obj.Nil()) {
				t.Fatalf("%s: uninitialized local read stale value %s from a reused frame", cfg.Name, v)
			}
		}
	}
}

// TestEscapedFramesSurvivePooling: a closure capturing a method-frame
// register by reference keeps working after the method returns and
// after the pool has recycled many other frames — the escaped frame
// must have been exempted.
func TestEscapedFramesSurvivePooling(t *testing.T) {
	h := newHarness(t, core.ST80, poolSrc)
	counter := h.call(t, "mkCounter")
	if counter.K() != obj.KBlock {
		t.Fatalf("mkCounter returned %s, not a block", counter)
	}
	// Churn the pool so a recycled mkCounter frame would be reused and
	// clobbered.
	h.call(t, "down:", obj.Int(200))
	if v := h.call(t, "callBlock:With:", counter, obj.Int(5)); v.I() != 6 {
		t.Fatalf("counter(5) = %s, want 6", v)
	}
	h.call(t, "down:", obj.Int(200))
	if v := h.call(t, "callBlock:With:", counter, obj.Int(10)); v.I() != 16 {
		t.Fatalf("counter(10) = %s, want 16 (captured state lost)", v)
	}
}

// TestDeadHomeStillDetectedWithPooling: a non-local return whose home
// frame has exited must still be caught. Frame identity is the
// detection mechanism, so a recycled home frame (dead=false again)
// would defeat it — escaped frames staying out of the pool is what
// keeps this sound.
func TestDeadHomeStillDetectedWithPooling(t *testing.T) {
	h := newHarness(t, core.ST80, poolSrc)
	blk := h.call(t, "mkRet")
	if blk.K() != obj.KBlock {
		t.Fatalf("mkRet returned %s, not a block", blk)
	}
	// Churn: if mkRet's frame were pooled, these calls would recycle it
	// into a live-looking frame.
	h.call(t, "down:", obj.Int(200))
	r := obj.Lookup(h.w.Lobby.Map, "callBlock:")
	_, err := h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby), blk)
	if err == nil || !strings.Contains(err.Error(), "dead home") {
		t.Fatalf("non-local return from dead home: err = %v, want dead-home error", err)
	}
}
