package vm

import (
	"fmt"
	"strings"
	"sync/atomic"

	"selfgo/internal/ast"
	"selfgo/internal/bbv"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
)

// Instr is one linearized instruction. Branch instructions hold the
// program counters of both targets; straight-line instructions fall
// through (the assembler inserts explicit jumps where layout requires).
type Instr struct {
	Op      ir.Op
	Dst     ir.Reg
	A, B, C ir.Reg
	Args    []ir.Reg
	Val     obj.Value
	Index   int
	Sel     string
	AOp     ir.ArithKind
	COp     ir.CmpKind
	Checked bool
	TestMap *obj.Map
	Callee  *ir.Callee
	Blk     *ast.Block
	Caps    []ir.Capture
	FailBlk ir.Reg
	Direct  bool

	// T and F are branch targets (taken / not-taken); for opJmp only T
	// is used. For checked Arith, F is the overflow target.
	T, F int

	// IC indexes the code's inline-cache array for Send instructions.
	IC int

	// Resume, for MkBlk instructions whose block non-locally returns
	// from an inlined home method: the pc at which execution resumes
	// when the ^ fires (-1 otherwise); A receives the value.
	Resume int

	// bounds marks compare-branches that implement array bounds checks
	// (for the run-time statistics).
	bounds bool

	// Cost is the compile-time-constant part of the instruction's
	// modelled cycle cost (see staticCost), precomputed at assembly so
	// the hot loop charges one add per dispatch. For a superinstruction
	// it is the exact sum of all constituents' static costs.
	Cost int64

	// N is the number of modelled instructions this entry represents:
	// 1 normally, 2-3 for superinstructions (Instrs accounting).
	N int32

	// Fused chains the remaining constituents of a superinstruction
	// (nil for ordinary instructions). The head instruction keeps the
	// first constituent's fields with a fused Op; each element of the
	// chain is the next constituent verbatim, so fused execution can
	// run — and, on an early fault or overflow branch, uncharge — the
	// constituents exactly as the unfused stream would.
	Fused *Instr
}

// opJmp is an assembler-introduced unconditional jump. It reuses an Op
// value far outside the ir range.
const opJmp ir.Op = 250

// inlineCache is the per-call-site monomorphic cache of Deutsch &
// Schiffman, rewritten on each miss. With PICs enabled it extends into
// a small polymorphic cache checked after the monomorphic entry.
type inlineCache struct {
	m      *obj.Map
	slot   *obj.Slot
	holder *obj.Object // inherited data slots live in the holder object
	code   *Code

	pic []picEntry
}

type picEntry struct {
	m      *obj.Map
	slot   *obj.Slot
	holder *obj.Object
}

// picEntries bounds the polymorphic cache, as in the SELF PIC work.
const picEntries = 6

// picLookup consults the polymorphic extension (nil when disabled,
// direct, or absent).
func (ic *inlineCache) picLookup(vm *VM, m *obj.Map, direct bool) *picEntry {
	if !vm.PICs || direct {
		return nil
	}
	for i := range ic.pic {
		if ic.pic[i].m == m {
			return &ic.pic[i]
		}
	}
	return nil
}

// picStore remembers a resolved receiver map.
func (ic *inlineCache) picStore(vm *VM, m *obj.Map, slot *obj.Slot, holder *obj.Object) {
	if !vm.PICs || len(ic.pic) >= picEntries {
		return
	}
	ic.pic = append(ic.pic, picEntry{m: m, slot: slot, holder: holder})
}

// Origin identifies what a Code object was compiled from: the method
// and the receiver map it was customized for (RMap nil when
// customization is off). The zero Origin marks code that cannot be
// tier-promoted (blocks, scratch methods).
type Origin struct {
	Meth *obj.Method
	RMap *obj.Map
}

// HotCounts is a Code's execution-frequency state for tier promotion:
// invocations and loop backedges, each one atomic add on the fast path
// (shared Code is executed by many VMs at once). Promotion fires once
// per Code — the requested flag is a CAS so exactly one VM's OnHot
// hook runs even when several cross the threshold together.
type HotCounts struct {
	invocations atomic.Int64
	backedges   atomic.Int64
	requested   atomic.Bool
}

// Invocations returns how many times the code was entered.
func (h *HotCounts) Invocations() int64 { return h.invocations.Load() }

// Backedges returns how many backward jumps the code executed.
func (h *HotCounts) Backedges() int64 { return h.backedges.Load() }

// Requested reports whether promotion was already requested.
func (h *HotCounts) Requested() bool { return h.requested.Load() }

// Seed restores persisted hotness state onto freshly compiled code: a
// process booting from a world image replays the counters its
// predecessor recorded, so adaptive promotion resumes where it left
// off instead of re-learning from zero. Requested is seeded too —
// manifest preload compiles directly at the recorded tier, so a
// counter that already fired must not fire again.
func (h *HotCounts) Seed(invocations, backedges int64, requested bool) {
	h.invocations.Store(invocations)
	h.backedges.Store(backedges)
	h.requested.Store(requested)
}

// Code is one compiled method or block.
type Code struct {
	Name    string
	Instrs  []Instr
	NumRegs int
	Bytes   int // modelled code size
	ics     []inlineCache

	// IsBlock marks out-of-line block code (self arrives via the
	// closure, parameters start at register 2).
	IsBlock bool

	// TierLabel names the compilation tier that produced this code
	// ("baseline", "optimizing", "degraded"); empty when the builder
	// does not tier. Informational — it never affects execution.
	TierLabel string

	// Origin is the (method, receiver map) this code was compiled
	// from, set by tiering builders so a hot Code can be recompiled
	// under the same cache key. Zero for blocks.
	Origin Origin

	// Hot counts executions for hotness-driven tier promotion. The
	// counters are charged only while the owning VM has an OnHot hook
	// installed; they have no modelled-cost impact.
	Hot HotCounts

	// hasLandings records whether any MkBlk carries a non-local-return
	// landing (Resume >= 0). When false, exec can skip the
	// recover-and-resume wrapper entirely.
	hasLandings bool

	// native, when non-nil, is the closure-threaded lowering of Instrs
	// (see backend_native.go); run dispatches to the native driver
	// instead of the switch interpreter. Purely an execution-engine
	// selection: Instrs stays the single source of truth for tracing,
	// disassembly and the modelled cost model, and the native driver is
	// bit-identical in every modelled quantity. Written once by
	// PrepareNative before the Code is published, immutable after.
	native *nativeCode

	// bbv, when non-nil, is the lazy basic-block-versioning store for
	// this code (see internal/bbv and vm/bbv.go): the run loop anchors
	// a version at entry, advances it across branches, and elides type
	// tests the current version proves. Written once by EnableBBV
	// before the Code is published; the store itself is internally
	// synchronized and shared by every VM running the code.
	bbv *bbv.State
}

// Assemble linearizes a control flow graph: dead pure instructions are
// dropped, common paths are laid out first, and uncommon (failure)
// paths are moved out of line after the main body — the layout the
// paper's compiler used for failure blocks.
func Assemble(g *ir.Graph) *Code {
	c := &Code{Name: g.Name, NumRegs: g.NumRegs, Bytes: SizePrologue}
	dead := deadNodes(g)

	type work struct{ n *ir.Node }
	pc := map[*ir.Node]int{}
	var fixups []func()

	var common, deferred []*ir.Node
	scheduled := map[*ir.Node]bool{}
	schedule := func(n *ir.Node, uncommon bool) {
		if n == nil || scheduled[n] {
			return
		}
		scheduled[n] = true
		if uncommon {
			deferred = append(deferred, n)
		} else {
			common = append(common, n)
		}
	}
	schedule(g.Entry, false)

	emit := func(in Instr, size int) int {
		in.Cost = staticCost(&in)
		in.N = 1
		c.Instrs = append(c.Instrs, in)
		c.Bytes += size
		return len(c.Instrs) - 1
	}

	// next returns whether control continues to node s after the
	// current instruction; if s was already emitted (or will be on the
	// other queue), an explicit jump is inserted.
	var emitNode func(n *ir.Node)
	fallthroughTo := func(s *ir.Node) *ir.Node {
		if s == nil {
			return nil
		}
		if p, done := pc[s]; done {
			emit(Instr{Op: opJmp, T: p}, SizeSimple)
			return nil
		}
		return s
	}

	emitNode = func(n *ir.Node) {
		for n != nil {
			if p, done := pc[n]; done {
				_ = p
				emit(Instr{Op: opJmp, T: p}, SizeSimple)
				return
			}
			pc[n] = len(c.Instrs)
			switch n.Op {
			case ir.Start, ir.Merge, ir.LoopHead:
				// Labels only; no code.
			case ir.Return, ir.NLReturn, ir.Fail:
				emit(instrOf(n), sizeOf(n))
				return
			case ir.CmpBr, ir.TypeTest:
				i := emit(instrOf(n), sizeOf(n))
				tN, fN := succ(n, 0), succ(n, 1)
				// Lay out the common (true/pass) side next; the other
				// side is a branch target, deferred out of line when
				// uncommon. Branches never fall through: both targets
				// are explicit.
				fixBranch(c, &fixups, pc, i, tN, fN)
				if fN != nil {
					schedule(fN, fN.Uncommon)
				}
				if tN != nil {
					if _, done := pc[tN]; !done {
						n = tN
						continue
					}
				}
				return
			case ir.Arith:
				if n.Checked {
					i := emit(instrOf(n), sizeOf(n))
					ovf := succ(n, 1)
					if ovf != nil {
						idx := i
						fixups = append(fixups, func() {
							c.Instrs[idx].F = pc[ovf]
						})
						schedule(ovf, true)
					}
					n = fallthroughTo(succ(n, 0))
					continue
				}
				emit(instrOf(n), sizeOf(n))
			default:
				if !dead[n] {
					in := instrOf(n)
					if n.Op == ir.Send {
						in.IC = len(c.ics)
						c.ics = append(c.ics, inlineCache{})
					}
					idx := emit(in, sizeOf(n))
					if n.Op == ir.MkBlk && n.Landing != nil {
						c.hasLandings = true
						landing := n.Landing
						schedule(landing, true)
						fixups = append(fixups, func() {
							c.Instrs[idx].Resume = pc[landing]
						})
					}
				}
			}
			n = fallthroughTo(succ(n, 0))
		}
	}

	for len(common) > 0 || len(deferred) > 0 {
		var n *ir.Node
		if len(common) > 0 {
			n, common = common[0], common[1:]
		} else {
			n, deferred = deferred[0], deferred[1:]
		}
		if _, done := pc[n]; done {
			continue
		}
		emitNode(n)
	}
	for _, fx := range fixups {
		fx()
	}
	return c
}

// fixBranch records target fixups for a two-way branch at instruction
// index i.
func fixBranch(c *Code, fixups *[]func(), pc map[*ir.Node]int, i int, tN, fN *ir.Node) {
	if tN != nil {
		t := tN
		*fixups = append(*fixups, func() { c.Instrs[i].T = pc[t] })
	}
	if fN != nil {
		f := fN
		*fixups = append(*fixups, func() { c.Instrs[i].F = pc[f] })
	}
}

func succ(n *ir.Node, i int) *ir.Node {
	if i < len(n.Succ) {
		return n.Succ[i]
	}
	return nil
}

func instrOf(n *ir.Node) Instr {
	return Instr{
		Op: n.Op, Dst: n.Dst, A: n.A, B: n.B, C: n.C,
		Args: n.Args, Val: n.Val, Index: n.Index, Sel: n.Sel,
		AOp: n.AOp, COp: n.COp, Checked: n.Checked, TestMap: n.TestMap,
		Callee: n.Callee, Blk: n.Blk, Caps: n.Caps, FailBlk: n.FailBlk,
		Direct: n.Direct, bounds: strings.HasPrefix(n.Note, "bounds"),
		Resume: -1,
	}
}

func sizeOf(n *ir.Node) int {
	switch n.Op {
	case ir.Const:
		return SizeConst
	case ir.Move:
		return SizeSimple
	case ir.LoadF, ir.StoreF, ir.LoadE, ir.StoreE, ir.VecLen:
		return SizeLoadF
	case ir.NewVec:
		return SizeNewVec
	case ir.CloneOp:
		return SizeClone
	case ir.Arith:
		if n.Checked {
			return SizeArithChk
		}
		return SizeSimple
	case ir.CmpBr:
		return SizeBranch
	case ir.TypeTest:
		return SizeTypeTest
	case ir.Send:
		if n.Direct {
			return SizeCall
		}
		return SizeSend
	case ir.Call:
		return SizeCall
	case ir.PrimOp:
		return SizePrimOp
	case ir.MkBlk:
		return SizeMkBlk + SizeMkBlkCap*len(n.Caps)
	case ir.Fail:
		return SizeFail
	case ir.Return:
		return SizeReturn
	case ir.NLReturn:
		return SizeNLReturn
	case ir.LoadUp, ir.StoreUp:
		return SizeUpAccess
	}
	return 0
}

// deadNodes finds pure instructions whose destination is never read —
// chiefly the boolean constants materialized for branches whose
// consumers were inlined away, and moves made redundant by inlining.
func deadNodes(g *ir.Graph) map[*ir.Node]bool {
	reach := g.Reachable()
	dead := map[*ir.Node]bool{}
	for pass := 0; pass < 10; pass++ {
		reads := map[ir.Reg]bool{}
		for _, n := range reach {
			if dead[n] {
				continue
			}
			for _, r := range []ir.Reg{n.A, n.B, n.C, n.FailBlk} {
				if r != ir.NoReg {
					reads[r] = true
				}
			}
			for _, r := range n.Args {
				reads[r] = true
			}
			for _, cap := range n.Caps {
				if cap.Src != ir.NoReg {
					reads[cap.Src] = true
				}
			}
		}
		changed := false
		for _, n := range reach {
			if dead[n] || n.Dst == ir.NoReg || reads[n.Dst] {
				continue
			}
			switch n.Op {
			case ir.Const, ir.Move, ir.LoadF, ir.LoadE, ir.VecLen, ir.CloneOp, ir.MkBlk, ir.LoadUp:
				dead[n] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dead
}

// Disasm renders the code for tests and cmd/selfc.
func (c *Code) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "code %s: %d instrs, %d regs, %d bytes\n", c.Name, len(c.Instrs), c.NumRegs, c.Bytes)
	for i, in := range c.Instrs {
		fmt.Fprintf(&b, "  %3d: %s\n", i, in.String())
	}
	return b.String()
}

func (in Instr) String() string {
	if base, ok := fusedHeadOp(in.Op); ok {
		head := in
		head.Op = base
		head.Fused = nil
		parts := []string{head.String()}
		for f := in.Fused; f != nil; f = f.Fused {
			parts = append(parts, f.String())
		}
		return "fused{" + strings.Join(parts, "; ") + "}"
	}
	switch in.Op {
	case opJmp:
		return fmt.Sprintf("jmp %d", in.T)
	case ir.Const:
		return fmt.Sprintf("r%d <- const %s", in.Dst, in.Val)
	case ir.Move:
		return fmt.Sprintf("r%d <- r%d", in.Dst, in.A)
	case ir.LoadF:
		return fmt.Sprintf("r%d <- r%d.f[%d]", in.Dst, in.A, in.Index)
	case ir.StoreF:
		return fmt.Sprintf("r%d.f[%d] <- r%d", in.A, in.Index, in.B)
	case ir.LoadE:
		return fmt.Sprintf("r%d <- r%d[r%d]", in.Dst, in.A, in.B)
	case ir.StoreE:
		return fmt.Sprintf("r%d[r%d] <- r%d", in.A, in.B, in.C)
	case ir.VecLen:
		return fmt.Sprintf("r%d <- len r%d", in.Dst, in.A)
	case ir.NewVec:
		return fmt.Sprintf("r%d <- newVec r%d fill r%d", in.Dst, in.A, in.B)
	case ir.CloneOp:
		return fmt.Sprintf("r%d <- clone r%d", in.Dst, in.A)
	case ir.Arith:
		if in.Checked {
			return fmt.Sprintf("r%d <- r%d %s r%d ovfl->%d", in.Dst, in.A, in.AOp, in.B, in.F)
		}
		return fmt.Sprintf("r%d <- r%d %s r%d", in.Dst, in.A, in.AOp, in.B)
	case ir.CmpBr:
		return fmt.Sprintf("if r%d %s r%d ->%d else ->%d", in.A, in.COp, in.B, in.T, in.F)
	case ir.TypeTest:
		return fmt.Sprintf("if r%d is %s ->%d else ->%d", in.A, in.TestMap.Name, in.T, in.F)
	case ir.Send:
		kind := "send"
		if in.Direct {
			kind = "send(static)"
		}
		return fmt.Sprintf("r%d <- %s %q %v", in.Dst, kind, in.Sel, in.Args)
	case ir.Call:
		return fmt.Sprintf("r%d <- call %s %v", in.Dst, in.Callee, in.Args)
	case ir.PrimOp:
		return fmt.Sprintf("r%d <- prim %q %v", in.Dst, in.Sel, in.Args)
	case ir.MkBlk:
		return fmt.Sprintf("r%d <- mkblk (%d caps)", in.Dst, len(in.Caps))
	case ir.Fail:
		return fmt.Sprintf("fail %q", in.Sel)
	case ir.Return:
		return fmt.Sprintf("ret r%d", in.A)
	case ir.NLReturn:
		return fmt.Sprintf("nlret r%d", in.A)
	case ir.LoadUp:
		return fmt.Sprintf("r%d <- up %q", in.Dst, in.Sel)
	case ir.StoreUp:
		return fmt.Sprintf("up %q <- r%d", in.Sel, in.A)
	}
	return in.Op.String()
}
