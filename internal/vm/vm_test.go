package vm_test

import (
	"strings"
	"testing"

	"selfgo/internal/ast"
	"selfgo/internal/core"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/parser"
	"selfgo/internal/prelude"
	"selfgo/internal/vm"
)

// harness wires a world, compiler and VM the way the public package
// does, for testing the back end in isolation.
type harness struct {
	w  *obj.World
	c  *core.Compiler
	vm *vm.VM
}

func newHarness(t *testing.T, cfg core.Config, src string) *harness {
	t.Helper()
	w := obj.NewWorld()
	for _, s := range []string{prelude.Source, src} {
		f, err := parser.ParseFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Load(f); err != nil {
			t.Fatal(err)
		}
	}
	w.Finalize()
	h := &harness{w: w, c: core.New(w, cfg)}
	h.vm = &vm.VM{
		World:     w,
		Customize: cfg.Customization,
		CompileMethod: func(m *obj.Method, rmap *obj.Map) (*vm.Code, error) {
			g, _, err := h.c.CompileMethod(m, rmap)
			if err != nil {
				return nil, err
			}
			return vm.Assemble(g), nil
		},
		CompileBlock: func(b *ast.Block, upNames []string) (*vm.Code, error) {
			g, _, err := h.c.CompileBlock(b, upNames)
			if err != nil {
				return nil, err
			}
			return vm.Assemble(g), nil
		},
	}
	return h
}

func (h *harness) call(t *testing.T, sel string, args ...obj.Value) obj.Value {
	t.Helper()
	r := obj.Lookup(h.w.Lobby.Map, sel)
	if r == nil {
		t.Fatalf("no %q", sel)
	}
	v, err := h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby), args...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func (h *harness) codeFor(t *testing.T, sel string) *vm.Code {
	t.Helper()
	r := obj.Lookup(h.w.Lobby.Map, sel)
	if r == nil {
		t.Fatalf("no %q", sel)
	}
	c, err := h.vm.CodeFor(r.Slot.Meth, h.w.Lobby.Map)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAssembleLayoutUncommonOutOfLine(t *testing.T) {
	h := newHarness(t, core.NewSELF, `bump: x = ( x + 1 ).`)
	code := h.codeFor(t, "bump:")
	// The uncommon "+"-send fallback must come after the main-path
	// return: find the first Return and the Send.
	firstRet, sendAt := -1, -1
	for i, in := range code.Instrs {
		if in.Op == ir.Return && firstRet < 0 {
			firstRet = i
		}
		if in.Op == ir.Send && in.Sel == "+" {
			sendAt = i
		}
	}
	if firstRet < 0 || sendAt < 0 {
		t.Fatalf("missing instructions:\n%s", code.Disasm())
	}
	if sendAt < firstRet {
		t.Errorf("uncommon send at %d before main return at %d:\n%s", sendAt, firstRet, code.Disasm())
	}
}

func TestDeadCodeEliminated(t *testing.T) {
	// The boolean results materialized for an inlined conditional are
	// dead once the ifTrue:False: is compiled away.
	h := newHarness(t, core.NewSELF, `go = ( | x <- 0 | (x < 1) ifTrue: [ 7 ] False: [ 8 ] ).`)
	code := h.codeFor(t, "go")
	for _, in := range code.Instrs {
		if in.Op == ir.Const && in.Val.K() == obj.KObj {
			if in.Val.Obj() == h.w.TrueObj || in.Val.Obj() == h.w.FalseObj {
				t.Errorf("dead boolean constant survived:\n%s", code.Disasm())
			}
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	h := newHarness(t, core.NewSELF, `go = ( 1 + 2 ).`)
	v := h.call(t, "go")
	if !v.Eq(obj.Int(3)) {
		t.Fatalf("got %v", v)
	}
	st := h.vm.Stats
	if st.Cycles == 0 || st.Instrs == 0 {
		t.Errorf("no cost recorded: %+v", st)
	}
	// Folding makes this a Const+Return: only a handful of cycles.
	if st.Cycles > 10 {
		t.Errorf("constant method cost %d cycles", st.Cycles)
	}
}

func TestInlineCacheHitsAndMisses(t *testing.T) {
	src := `
	a = (| parent* = lobby. tagB = ( 1 ) |).
	b = (| parent* = lobby. tagB = ( 2 ) |).
	pingPong: n = ( | o. s <- 0. i <- 0 |
		[ i < n ] whileTrue: [
			(i even) ifTrue: [ o: a ] False: [ o: b ].
			s: s + (o describeDyn).
			i: i + 1 ].
		s ).
	mono: n = ( | s <- 0. i <- 0 |
		[ i < n ] whileTrue: [ s: s + (a describeDyn). i: i + 1 ].
		s ).`
	// describeDyn must not be inlinable: make it live on both objects
	// via lobby so the send stays dynamic (o is unknown).
	src += `
	describeDynFallback = ( 0 ).`
	// Give each object its own describeDyn through a lobby-level
	// dispatcher trick: define on the objects directly.
	src = strings.Replace(src, "tagB = ( 1 )", "tagB = ( 1 ). describeDyn = ( tagB )", 1)
	src = strings.Replace(src, "tagB = ( 2 )", "tagB = ( 2 ). describeDyn = ( tagB )", 1)

	h := newHarness(t, core.ST80, src) // ST80: sends stay dynamic
	v := h.call(t, "pingPong:", obj.Int(100))
	if !v.Eq(obj.Int(150)) { // 50*1 + 50*2
		t.Fatalf("pingPong = %v", v)
	}
	poly := h.vm.Stats
	if poly.ICMisses < 50 {
		t.Errorf("alternating receivers should thrash the monomorphic cache: %d misses", poly.ICMisses)
	}

	h2 := newHarness(t, core.ST80, src)
	h2.call(t, "mono:", obj.Int(100))
	mono := h2.vm.Stats
	if mono.ICMisses > mono.ICHits/2 {
		t.Errorf("monomorphic site should mostly hit: hits=%d misses=%d", mono.ICHits, mono.ICMisses)
	}
}

func TestMissHandlerCostModel(t *testing.T) {
	src := `
	a = (| parent* = lobby. v = ( 1 ) |).
	b = (| parent* = lobby. v = ( 2 ) |).
	poly: n = ( | o. s <- 0. i <- 0 |
		[ i < n ] whileTrue: [
			(i even) ifTrue: [ o: a ] False: [ o: b ].
			s: s + (o v).
			i: i + 1 ].
		s ).`
	h := newHarness(t, core.ST80, src)
	h.call(t, "poly:", obj.Int(200))
	slow := h.vm.Stats.Cycles

	h2 := newHarness(t, core.ST80, src)
	h2.vm.MissHandlers = true
	h2.call(t, "poly:", obj.Int(200))
	fast := h2.vm.Stats.Cycles
	if fast >= slow {
		t.Errorf("miss handlers should cut polymorphic cost: %d -> %d", slow, fast)
	}
}

func TestClosureCapturesByReference(t *testing.T) {
	h := newHarness(t, core.ST80, `
	go = ( | c <- 0. blk |
		blk: [ c: c + 1 ].
		blk value. blk value.
		c ).`)
	if v := h.call(t, "go"); !v.Eq(obj.Int(2)) {
		t.Fatalf("got %v", v)
	}
	if h.vm.Stats.BlockValues == 0 {
		t.Error("no closure invocations recorded (blocks should be dynamic under ST-80)")
	}
}

func TestNonLocalReturnThroughClosure(t *testing.T) {
	// Under ST-80, detect: is not inlined, so the ^-block becomes a
	// real closure whose ^ unwinds the detect: frame.
	h := newHarness(t, core.ST80, `
	detect: n = ( 0 upTo: 10 Do: [ :i | (i = n) ifTrue: [ ^ i * 7 ] ]. -1 ).
	go = ( detect: 6 ).`)
	if v := h.call(t, "go"); !v.Eq(obj.Int(42)) {
		t.Fatalf("got %v", v)
	}
}

func TestNLRFromDeadFrame(t *testing.T) {
	// Returning a block whose ^ targets a frame that already returned
	// must raise a clean error, not corrupt state.
	h := newHarness(t, core.ST80, `
	mk = ( [ ^ 1 ] ).
	go = ( | blk | blk: mk. blk value ).`)
	r := obj.Lookup(h.w.Lobby.Map, "go")
	_, err := h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby))
	if err == nil || !strings.Contains(err.Error(), "dead home") {
		t.Errorf("expected dead-home error, got %v", err)
	}
}

func TestGenericPrimOpPath(t *testing.T) {
	// With primitive inlining off, primitives run out of line with all
	// checks, including failure-block dispatch.
	cfg := core.NewSELF
	cfg.InlinePrimitives = false
	h := newHarness(t, cfg, `
	go = ( 6 _IntMul: 7 ).
	fails = ( 1 _IntDiv: 0 IfFail: [ -5 ] ).`)
	if v := h.call(t, "go"); !v.Eq(obj.Int(42)) {
		t.Fatalf("got %v", v)
	}
	if v := h.call(t, "fails"); !v.Eq(obj.Int(-5)) {
		t.Fatalf("failure block: got %v", v)
	}
}

func TestDeepRecursionGuard(t *testing.T) {
	h := newHarness(t, core.NewSELF, `deep: n = ( (deep: n + 1) ).`)
	r := obj.Lookup(h.w.Lobby.Map, "deep:")
	_, err := h.vm.RunMethod(r.Slot.Meth, obj.Obj(h.w.Lobby), obj.Int(0))
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("expected stack overflow, got %v", err)
	}
}

func TestCodeSizeModel(t *testing.T) {
	h := newHarness(t, core.NewSELF, `tiny = ( 1 ). bigger = ( | v | v: vector copySize: 10. v atAllPut: 3. v ).`)
	tiny := h.codeFor(t, "tiny")
	bigger := h.codeFor(t, "bigger")
	if tiny.Bytes <= 0 || bigger.Bytes <= tiny.Bytes {
		t.Errorf("size model broken: tiny=%d bigger=%d", tiny.Bytes, bigger.Bytes)
	}
	// Every instruction kind used must have a nonzero size.
	total := vm.SizePrologue
	for _, in := range bigger.Instrs {
		n := &ir.Node{Op: in.Op, Checked: in.Checked, Caps: in.Caps, Direct: in.Direct}
		total += vm.SizeOf(n)
		if in.Op != ir.Start && in.Op != ir.Merge && in.Op != ir.LoopHead && vm.SizeOf(n) == 0 && in.Op != vm.OpJmp {
			t.Errorf("instruction %v has zero size", in.Op)
		}
	}
}

func TestPrintPrimitive(t *testing.T) {
	h := newHarness(t, core.NewSELF, `go = ( 'hi' print. 42 printLine. 0 ).`)
	var sb strings.Builder
	h.vm.Out = &sb
	h.call(t, "go")
	if sb.String() != "hi42\n" {
		t.Errorf("printed %q", sb.String())
	}
}

func TestBranchTargetsResolved(t *testing.T) {
	h := newHarness(t, core.NewSELF, `go: n = ( (n < 10) ifTrue: [ n + 1 ] False: [ n - 1 ] ).`)
	code := h.codeFor(t, "go:")
	for i, in := range code.Instrs {
		switch in.Op {
		case ir.CmpBr, ir.TypeTest:
			if in.T < 0 || in.T >= len(code.Instrs) || in.F < 0 || in.F >= len(code.Instrs) {
				t.Errorf("instr %d: unresolved branch targets T=%d F=%d", i, in.T, in.F)
			}
		case vm.OpJmp:
			if in.T < 0 || in.T >= len(code.Instrs) {
				t.Errorf("instr %d: unresolved jump %d", i, in.T)
			}
		}
	}
	if v := h.call(t, "go:", obj.Int(5)); !v.Eq(obj.Int(6)) {
		t.Fatalf("go: 5 = %v", v)
	}
	if v := h.call(t, "go:", obj.Int(50)); !v.Eq(obj.Int(49)) {
		t.Fatalf("go: 50 = %v", v)
	}
}

func TestTraceOutput(t *testing.T) {
	h := newHarness(t, core.NewSELF, `go = ( 1 + 2 ).`)
	var sb strings.Builder
	h.vm.Trace = &sb
	h.call(t, "go")
	out := sb.String()
	if !strings.Contains(out, "lobby>>go") || !strings.Contains(out, "ret") {
		t.Errorf("trace output missing content:\n%s", out)
	}
}

func TestPolymorphicInlineCache(t *testing.T) {
	src := `
	a = (| parent* = lobby. v = ( 1 ) |).
	b = (| parent* = lobby. v = ( 2 ) |).
	poly: n = ( | o. s <- 0. i <- 0 |
		[ i < n ] whileTrue: [
			(i even) ifTrue: [ o: a ] False: [ o: b ].
			s: s + (o v).
			i: i + 1 ].
		s ).`
	h := newHarness(t, core.ST80, src)
	h.call(t, "poly:", obj.Int(200))
	mono := h.vm.Stats

	h2 := newHarness(t, core.ST80, src)
	h2.vm.PICs = true
	v := h2.call(t, "poly:", obj.Int(200))
	if !v.Eq(obj.Int(300)) {
		t.Fatalf("got %v", v)
	}
	pic := h2.vm.Stats
	if pic.ICMisses >= mono.ICMisses/4 {
		t.Errorf("PICs should absorb the alternation: misses %d -> %d", mono.ICMisses, pic.ICMisses)
	}
	if pic.Cycles >= mono.Cycles {
		t.Errorf("PICs should be cheaper overall: %d -> %d cycles", mono.Cycles, pic.Cycles)
	}
}
