// Package ir defines the control flow graph the compiler constructs
// while it performs type analysis, inlining and splitting (the "new
// intermediate phase" of Chambers & Ungar §1). Nodes are low-level
// enough to double as the units the code generator turns into VM
// instructions: by the time the graph reaches the back end, every
// eliminated type test, overflow check and message send is simply
// absent from it.
package ir

import (
	"fmt"
	"strings"

	"selfgo/internal/ast"
	"selfgo/internal/obj"
)

// Reg is a virtual register index within one compiled method.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op enumerates node kinds.
type Op uint8

// Node kinds. Branching kinds have two successors (true/left first,
// matching the paper's figures); Return has none; all others have one.
const (
	Start    Op = iota
	Const       // Dst <- Val
	Move        // Dst <- A
	LoadF       // Dst <- A.fields[Index]
	StoreF      // A.fields[Index] <- B
	LoadE       // Dst <- A.elems[B]   (bounds already guaranteed)
	StoreE      // A.elems[B] <- C
	VecLen      // Dst <- len(A.elems)
	NewVec      // Dst <- new vector, size A, fill B
	CloneOp     // Dst <- shallow copy of A
	Arith       // Dst <- A <ArithOp> B; if Checked, overflow exits to Succ[1]
	CmpBr       // branch on A <CmpOp> B
	TypeTest    // branch on "A has map TestMap" (TestMap==intMap tests int)
	Send        // Dst <- dynamic send Sel to Args[0] with Args[1:]
	Call        // Dst <- direct call of Callee with Args (receiver known)
	PrimOp      // Dst <- uninlined primitive Sel; FailBlk invoked on failure
	MkBlk       // Dst <- closure over Blk capturing Captures
	Fail        // unrecoverable primitive failure (error routine)
	Return      // return A
	NLReturn    // non-local return of A from the closure's home method
	LoadUp      // Dst <- up-level variable Sel of the enclosing activation
	StoreUp     // up-level variable Sel <- A
	LoopHead    // marker: head of loop version Version
	Merge       // explicit merge point marker (for dumps; no code)
)

var opNames = [...]string{
	Start: "start", Const: "const", Move: "move", LoadF: "loadF",
	StoreF: "storeF", LoadE: "loadE", StoreE: "storeE", VecLen: "vecLen",
	NewVec: "newVec", CloneOp: "clone", Arith: "arith", CmpBr: "cmpBr",
	TypeTest: "typeTest", Send: "send", Call: "call", PrimOp: "primOp",
	MkBlk: "mkBlk", Fail: "fail", Return: "return", NLReturn: "nlReturn",
	LoadUp: "loadUp", StoreUp: "storeUp", LoopHead: "loopHead",
	Merge: "merge",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ArithKind is the operation of an Arith node.
type ArithKind uint8

// Arithmetic operations.
const (
	Add ArithKind = iota
	Sub
	Mul
	Div
	Mod
	BAnd
	BOr
	BXor
)

func (a ArithKind) String() string {
	return [...]string{"+", "-", "*", "/", "%", "&", "|", "^"}[a]
}

// CmpKind is the comparison of a CmpBr node.
type CmpKind uint8

// Comparison operations.
const (
	LT CmpKind = iota
	LE
	GT
	GE
	EQ
	NE
)

func (c CmpKind) String() string {
	return [...]string{"<", "<=", ">", ">=", "=", "!="}[c]
}

// Capture names one variable captured by a closure. The block sees the
// enclosing activation's register (Src) by name, or — when the
// enclosing activation is itself a block — one of its own up-level
// captures (FromUp).
type Capture struct {
	Name   string
	Src    Reg
	FromUp bool

	// ByValue snapshots the current value instead of referencing the
	// frame slot. Used for parameters: they are immutable, and each
	// (possibly inlined, per-iteration) activation is a fresh binding,
	// so closures must not share the register across iterations.
	ByValue bool
}

// Node is one node of the control flow graph.
type Node struct {
	ID   int
	Op   Op
	Dst  Reg
	A, B Reg
	C    Reg
	Args []Reg

	Val     obj.Value // Const
	Index   int       // LoadF/StoreF field index
	Sel     string    // Send/PrimOp selector
	AOp     ArithKind
	COp     CmpKind
	Checked bool     // Arith: overflow check present
	TestMap *obj.Map // TypeTest target map
	Callee  *Callee  // Call target
	Blk     *ast.Block
	Caps    []Capture
	FailBlk Reg // PrimOp: register holding the failure closure (or NoReg)
	Version int // LoopHead version number

	// Landing, for MkBlk nodes whose block performs a non-local return
	// and whose home method was inlined: the node at which execution
	// resumes (the inlined method's epilogue) when the block's ^ fires
	// at run time. A (= HomeReg) receives the returned value.
	Landing *Node

	// Direct marks a Send that the static-ideal ("optimized C")
	// configuration compiles: dispatched like a direct procedure call
	// in the cost model, since a static compiler would have resolved
	// it at link time.
	Direct bool

	// Uncommon marks nodes on uncommon paths (downstream of primitive
	// failures or failed type tests); splitting never copies past them
	// and the code generator moves them out of line.
	Uncommon bool

	// Note is a free-form annotation shown in CFG dumps (e.g. the type
	// bindings that justified eliminating a check).
	Note string

	Succ []*Node
}

// Callee identifies a customized compiled method: a selector compiled
// for a specific receiver map (customization, §2).
type Callee struct {
	Sel  string
	RMap *obj.Map
	Meth *obj.Method
}

func (c *Callee) String() string {
	return fmt.Sprintf("%s>>%s", c.RMap.Name, c.Sel)
}

// Graph is a compiled method's control flow graph.
type Graph struct {
	Name    string
	Entry   *Node
	NumRegs int
	nodes   []*Node
	nextID  int
}

// NewGraph returns an empty graph with a Start entry node.
func NewGraph(name string) *Graph {
	g := &Graph{Name: name}
	g.Entry = g.NewNode(Start)
	return g
}

// NewNode allocates a node in the graph.
func (g *Graph) NewNode(op Op) *Node {
	g.nextID++
	n := &Node{ID: g.nextID, Op: op, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, FailBlk: NoReg}
	g.nodes = append(g.nodes, n)
	return n
}

// NewReg allocates a fresh virtual register.
func (g *Graph) NewReg() Reg {
	r := Reg(g.NumRegs)
	g.NumRegs++
	return r
}

// Nodes returns every allocated node (including ones made unreachable
// by loop re-compilation; use Reachable for live nodes).
func (g *Graph) Nodes() []*Node { return g.nodes }

// Reachable returns the nodes reachable from the entry, in a stable
// depth-first order (true branches first).
func (g *Graph) Reachable() []*Node {
	var out []*Node
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, s := range n.Succ {
			walk(s)
		}
	}
	walk(g.Entry)
	return out
}

// Stats summarizes graph content for the experiment tables.
type Stats struct {
	Nodes          int
	Sends          int // remaining dynamic sends
	Calls          int // remaining direct calls
	TypeTests      int // remaining run-time type tests
	OverflowChecks int // remaining checked arithmetic ops
	BoundsChecks   int // remaining compare-branches marked as bounds checks
	LoopVersions   int // LoopHead markers
}

// ComputeStats tallies the reachable graph.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	for _, n := range g.Reachable() {
		s.Nodes++
		switch n.Op {
		case Send:
			s.Sends++
		case Call:
			s.Calls++
		case TypeTest:
			s.TypeTests++
		case Arith:
			if n.Checked {
				s.OverflowChecks++
			}
		case CmpBr:
			if strings.HasPrefix(n.Note, "bounds") {
				s.BoundsChecks++
			}
		case LoopHead:
			s.LoopVersions++
		}
	}
	return s
}

// String renders one node (without successors).
func (n *Node) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d: ", n.ID)
	switch n.Op {
	case Start:
		b.WriteString("start")
	case Const:
		fmt.Fprintf(&b, "r%d <- const %s", n.Dst, n.Val)
	case Move:
		fmt.Fprintf(&b, "r%d <- r%d", n.Dst, n.A)
	case LoadF:
		fmt.Fprintf(&b, "r%d <- r%d.f[%d]", n.Dst, n.A, n.Index)
	case StoreF:
		fmt.Fprintf(&b, "r%d.f[%d] <- r%d", n.A, n.Index, n.B)
	case LoadE:
		fmt.Fprintf(&b, "r%d <- r%d[r%d]", n.Dst, n.A, n.B)
	case StoreE:
		fmt.Fprintf(&b, "r%d[r%d] <- r%d", n.A, n.B, n.C)
	case VecLen:
		fmt.Fprintf(&b, "r%d <- len r%d", n.Dst, n.A)
	case NewVec:
		fmt.Fprintf(&b, "r%d <- newVec size r%d fill r%d", n.Dst, n.A, n.B)
	case CloneOp:
		fmt.Fprintf(&b, "r%d <- clone r%d", n.Dst, n.A)
	case Arith:
		chk := ""
		if n.Checked {
			chk = " [ovfl-check]"
		}
		fmt.Fprintf(&b, "r%d <- r%d %s r%d%s", n.Dst, n.A, n.AOp, n.B, chk)
	case CmpBr:
		fmt.Fprintf(&b, "branch r%d %s r%d", n.A, n.COp, n.B)
	case TypeTest:
		fmt.Fprintf(&b, "typeTest r%d is %s", n.A, n.TestMap.Name)
	case Send:
		fmt.Fprintf(&b, "r%d <- send %q to r%d args %v", n.Dst, n.Sel, n.Args[0], n.Args[1:])
	case Call:
		fmt.Fprintf(&b, "r%d <- call %s args %v", n.Dst, n.Callee, n.Args)
	case PrimOp:
		fmt.Fprintf(&b, "r%d <- prim %q args %v", n.Dst, n.Sel, n.Args)
	case MkBlk:
		fmt.Fprintf(&b, "r%d <- block (%d captures)", n.Dst, len(n.Caps))
	case Fail:
		fmt.Fprintf(&b, "fail %q", n.Sel)
	case Return:
		fmt.Fprintf(&b, "return r%d", n.A)
	case NLReturn:
		fmt.Fprintf(&b, "nlReturn r%d", n.A)
	case LoadUp:
		fmt.Fprintf(&b, "r%d <- up %q", n.Dst, n.Sel)
	case StoreUp:
		fmt.Fprintf(&b, "up %q <- r%d", n.Sel, n.A)
	case LoopHead:
		fmt.Fprintf(&b, "loopHead v%d", n.Version)
	case Merge:
		b.WriteString("merge")
	}
	if n.Uncommon {
		b.WriteString(" (uncommon)")
	}
	if n.Note != "" {
		fmt.Fprintf(&b, "  ; %s", n.Note)
	}
	return b.String()
}

// DOT renders the reachable graph in Graphviz dot syntax, the closest
// thing to the paper's control-flow-graph figures: uncommon (failure)
// paths are grey, loop heads are doubled, branch edges are labelled.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	for _, n := range g.Reachable() {
		label := strings.ReplaceAll(n.String(), "\"", "'")
		attrs := fmt.Sprintf("label=%q", label)
		if n.Uncommon {
			attrs += ", style=filled, fillcolor=gray85"
		}
		if n.Op == LoopHead {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
		for i, s := range n.Succ {
			if s == nil {
				continue
			}
			edge := ""
			if len(n.Succ) > 1 {
				if i == 0 {
					edge = " [label=t]"
				} else {
					edge = " [label=f]"
				}
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", n.ID, s.ID, edge)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Dump renders the reachable graph as indented text, one node per line
// with successor references — the moral equivalent of the paper's CFG
// figures.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s (%d regs)\n", g.Name, g.NumRegs)
	for _, n := range g.Reachable() {
		b.WriteString("  ")
		b.WriteString(n.String())
		if len(n.Succ) > 0 {
			b.WriteString("  ->")
			for _, s := range n.Succ {
				fmt.Fprintf(&b, " n%d", s.ID)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
