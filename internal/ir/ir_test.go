package ir

import (
	"strings"
	"testing"

	"selfgo/internal/obj"
)

func TestGraphConstruction(t *testing.T) {
	g := NewGraph("t")
	if g.Entry == nil || g.Entry.Op != Start {
		t.Fatal("no start node")
	}
	n1 := g.NewNode(Const)
	n1.Dst = g.NewReg()
	n1.Val = obj.Int(3)
	g.Entry.Succ = []*Node{n1}
	ret := g.NewNode(Return)
	ret.A = n1.Dst
	n1.Succ = []*Node{ret}

	if got := len(g.Reachable()); got != 3 {
		t.Errorf("reachable = %d, want 3", got)
	}
	if g.NumRegs != 1 {
		t.Errorf("regs = %d", g.NumRegs)
	}
}

func TestReachableExcludesDetached(t *testing.T) {
	g := NewGraph("t")
	live := g.NewNode(Return)
	g.Entry.Succ = []*Node{live}
	// Detached nodes (discarded loop simulations) are allocated but
	// unreachable.
	for i := 0; i < 5; i++ {
		g.NewNode(Const)
	}
	if got := len(g.Reachable()); got != 2 {
		t.Errorf("reachable = %d, want 2", got)
	}
	if got := len(g.Nodes()); got != 7 {
		t.Errorf("allocated = %d, want 7", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := NewGraph("t")
	send := g.NewNode(Send)
	send.Sel = "foo"
	send.Args = []Reg{0}
	tt := g.NewNode(TypeTest)
	tt.TestMap = &obj.Map{Name: "smallInt"}
	ar := g.NewNode(Arith)
	ar.Checked = true
	bc := g.NewNode(CmpBr)
	bc.Note = "bounds(upper)"
	lh := g.NewNode(LoopHead)
	ret := g.NewNode(Return)

	g.Entry.Succ = []*Node{send}
	send.Succ = []*Node{tt}
	tt.Succ = []*Node{ar, ret}
	ar.Succ = []*Node{bc, ret}
	bc.Succ = []*Node{lh, ret}
	lh.Succ = []*Node{ret}

	s := g.ComputeStats()
	if s.Sends != 1 || s.TypeTests != 1 || s.OverflowChecks != 1 || s.BoundsChecks != 1 || s.LoopVersions != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNodeStrings(t *testing.T) {
	g := NewGraph("t")
	cases := []func() *Node{
		func() *Node { n := g.NewNode(Const); n.Dst = 1; n.Val = obj.Int(7); return n },
		func() *Node { n := g.NewNode(Move); n.Dst = 1; n.A = 2; return n },
		func() *Node {
			n := g.NewNode(Arith)
			n.Dst = 1
			n.A = 2
			n.B = 3
			n.Checked = true
			return n
		},
		func() *Node { n := g.NewNode(CmpBr); n.A = 1; n.B = 2; n.COp = LT; return n },
		func() *Node {
			n := g.NewNode(TypeTest)
			n.A = 1
			n.TestMap = &obj.Map{Name: "smallInt"}
			return n
		},
		func() *Node { n := g.NewNode(Send); n.Dst = 1; n.Sel = "at:"; n.Args = []Reg{0, 2}; return n },
		func() *Node { n := g.NewNode(Return); n.A = 1; return n },
		func() *Node { n := g.NewNode(LoopHead); n.Version = 2; return n },
		func() *Node { n := g.NewNode(LoadUp); n.Dst = 1; n.Sel = "x"; return n },
	}
	for _, mk := range cases {
		n := mk()
		if s := n.String(); s == "" || strings.Contains(s, "Op(") {
			t.Errorf("bad String for %v: %q", n.Op, s)
		}
	}
	if !strings.Contains(g.Dump(), "graph t") {
		t.Error("dump missing header")
	}
}

func TestOpAndKindStrings(t *testing.T) {
	for op := Start; op <= Merge; op++ {
		if s := op.String(); strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has no name", int(op))
		}
	}
	wantA := []string{"+", "-", "*", "/", "%", "&", "|", "^"}
	for i, w := range wantA {
		if got := ArithKind(i).String(); got != w {
			t.Errorf("ArithKind(%d) = %q, want %q", i, got, w)
		}
	}
	wantC := []string{"<", "<=", ">", ">=", "=", "!="}
	for i, w := range wantC {
		if got := CmpKind(i).String(); got != w {
			t.Errorf("CmpKind(%d) = %q, want %q", i, got, w)
		}
	}
}

func TestCalleeString(t *testing.T) {
	c := &Callee{Sel: "at:", RMap: &obj.Map{Name: "vector"}}
	if c.String() != "vector>>at:" {
		t.Errorf("got %q", c.String())
	}
}

func TestDOT(t *testing.T) {
	g := NewGraph("d")
	tt := g.NewNode(TypeTest)
	tt.TestMap = &obj.Map{Name: "smallInt"}
	r1 := g.NewNode(Return)
	r2 := g.NewNode(Return)
	r2.Uncommon = true
	lh := g.NewNode(LoopHead)
	g.Entry.Succ = []*Node{tt}
	tt.Succ = []*Node{lh, r2}
	lh.Succ = []*Node{r1}
	dot := g.DOT()
	for _, want := range []string{"digraph", "label=t", "label=f", "gray85", "peripheries=2", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
