package obj

import (
	"fmt"
	"testing"
	"testing/quick"

	"selfgo/internal/parser"
)

func loadWorld(t *testing.T, src string) *World {
	t.Helper()
	f, err := parser.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld()
	if err := w.Load(f); err != nil {
		t.Fatal(err)
	}
	w.Finalize()
	return w
}

func TestWorldBasics(t *testing.T) {
	w := NewWorld()
	if w.MapOf(Int(3)) != w.IntMap {
		t.Error("int map")
	}
	if w.MapOf(Nil()) != w.NilMap {
		t.Error("nil map")
	}
	if w.MapOf(Str("x")) != w.StrMap {
		t.Error("str map")
	}
	tv, _ := w.GlobalValue("true")
	if tv.Obj() != w.TrueObj {
		t.Error("true global")
	}
	if !w.Bool(true).Eq(tv) {
		t.Error("Bool(true)")
	}
}

func TestLoadAndLookup(t *testing.T) {
	w := loadWorld(t, `
		base = (| objectName = 'base'. greet = ( 42 ) |).
		child = (| parent* = base. x <- 7 |).
		counter <- 0.
	`)
	cv, ok := w.GlobalValue("child")
	if !ok || cv.K() != KObj {
		t.Fatalf("child = %v", cv)
	}
	// Inherited method lookup.
	r := Lookup(cv.Obj().Map, "greet")
	if r == nil || r.Slot.Kind != MethodSlot {
		t.Fatalf("greet lookup = %v", r)
	}
	if r.Map.Name != "base" {
		t.Errorf("holder = %s", r.Map.Name)
	}
	// Data slot and its assignment slot.
	if s := cv.Obj().Map.SlotNamed("x"); s == nil || s.Kind != DataSlot {
		t.Fatal("x slot missing")
	}
	if s := cv.Obj().Map.SlotNamed("x:"); s == nil || s.Kind != AssignSlot {
		t.Fatal("x: assignment slot missing")
	}
	if got := cv.Obj().Fields[cv.Obj().Map.SlotNamed("x").Index]; !got.Eq(Int(7)) {
		t.Errorf("x = %v", got)
	}
	// Lobby data slot.
	if v, _ := w.GlobalValue("counter"); !v.Eq(Int(0)) {
		t.Errorf("counter = %v", v)
	}
}

func TestClone(t *testing.T) {
	w := loadWorld(t, `pt = (| x <- 1. y <- 2 |).`)
	pv, _ := w.GlobalValue("pt")
	c := pv.Obj().Clone()
	if c.Map != pv.Obj().Map {
		t.Error("clone must share map")
	}
	c.Fields[0] = Int(99)
	if pv.Obj().Fields[0].Eq(Int(99)) {
		t.Error("clone must not alias fields")
	}
}

func TestVector(t *testing.T) {
	w := NewWorld()
	v := w.NewVector(3, Int(0))
	if len(v.Elems) != 3 || !v.Elems[2].Eq(Int(0)) {
		t.Fatalf("vector = %v", v)
	}
	c := v.Clone()
	c.Elems[0] = Int(5)
	if v.Elems[0].Eq(Int(5)) {
		t.Error("clone aliases elems")
	}
	if w.MapOf(Obj(v)) != w.VecMap {
		t.Error("vector map")
	}
}

func TestFinalizePatchesTraits(t *testing.T) {
	w := loadWorld(t, `
		traitsInteger = (| double = ( 2 ) |).
		traitsTrue = (| yes = ( 1 ) |).
	`)
	if r := Lookup(w.IntMap, "double"); r == nil {
		t.Error("int traits not patched")
	}
	if r := Lookup(w.TrueObj.Map, "yes"); r == nil {
		t.Error("true traits not patched")
	}
	// Finalize is idempotent.
	w.Finalize()
	if r := Lookup(w.IntMap, "double"); r == nil {
		t.Error("int traits lost after second finalize")
	}
}

func TestLookupCycleTolerated(t *testing.T) {
	w := loadWorld(t, `
		a = (| pa* = lobby |).
	`)
	av, _ := w.GlobalValue("a")
	// Create a cycle: lobby gets a parent pointing back at a.
	w.addSlot(w.Lobby.Map, Slot{Name: "cyc", Kind: ParentSlot, Value: av})
	if r := Lookup(av.Obj().Map, "noSuchMessage"); r != nil {
		t.Errorf("found %v", r)
	}
	// Still finds lobby slots through the parent.
	if r := Lookup(av.Obj().Map, "true"); r == nil {
		t.Error("true not visible through lobby parent")
	}
}

func TestValueEqAndString(t *testing.T) {
	if !Int(3).Eq(Int(3)) || Int(3).Eq(Int(4)) || Int(3).Eq(Str("3")) {
		t.Error("int eq")
	}
	if !Str("a").Eq(Str("a")) {
		t.Error("str eq")
	}
	if !Nil().Eq(Value{}) {
		t.Error("zero value is nil")
	}
	if Int(5).String() != "5" || Nil().String() != "nil" {
		t.Error("String()")
	}
}

func TestUndefinedGlobalError(t *testing.T) {
	f, err := parser.ParseFile(`x = missingThing.`)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld()
	if err := w.Load(f); err == nil {
		t.Error("expected undefined-global error")
	}
}

func TestSmallIntBounds(t *testing.T) {
	if MaxSmallInt != 1<<29-1 || MinSmallInt != -(1<<29) {
		t.Errorf("bounds: %d %d", MinSmallInt, MaxSmallInt)
	}
}

// TestQuickClonePreservesPrototype: mutating any field of a clone never
// affects the prototype, for arbitrary field counts and indices.
func TestQuickClonePreservesPrototype(t *testing.T) {
	w := NewWorld()
	f := func(nFields uint8, idx uint8, v int32) bool {
		n := int(nFields%16) + 1
		m := &Map{Name: "p"}
		proto := &Object{Map: m, Fields: make([]Value, n)}
		for i := range proto.Fields {
			proto.Fields[i] = Int(int64(i))
		}
		c := proto.Clone()
		i := int(idx) % n
		c.Fields[i] = Int(int64(v))
		return proto.Fields[i].Eq(Int(int64(i))) && c.Map == proto.Map
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = w
}

// TestLookupPrecedence: own slots shadow parents; earlier parents win.
func TestLookupPrecedence(t *testing.T) {
	w := loadWorld(t, `
		p1 = (| tag = ( 1 ). only1 = ( 10 ) |).
		p2 = (| tag = ( 2 ). only2 = ( 20 ) |).
		child = (| pa* = p1. pb* = p2. tag = ( 3 ) |).
	`)
	cv, _ := w.GlobalValue("child")
	r := Lookup(cv.Obj().Map, "tag")
	if r == nil || r.Map != cv.Obj().Map {
		t.Errorf("own slot should shadow parents: %+v", r)
	}
	// First parent wins for slots both parents define? They define
	// distinct slots here; both are reachable.
	if Lookup(cv.Obj().Map, "only1") == nil || Lookup(cv.Obj().Map, "only2") == nil {
		t.Error("parent slots not reachable")
	}
	// Declaration order: pa before pb, so a slot in both resolves to pa.
	w2 := loadWorld(t, `
		q1 = (| both = ( 1 ) |).
		q2 = (| both = ( 2 ) |).
		kid = (| pa* = q1. pb* = q2 |).
	`)
	kv, _ := w2.GlobalValue("kid")
	r2 := Lookup(kv.Obj().Map, "both")
	if r2 == nil || r2.Slot.Meth == nil {
		t.Fatal("both not found")
	}
	q1v, _ := w2.GlobalValue("q1")
	if r2.Map != q1v.Obj().Map {
		t.Errorf("first parent should win, found in %s", r2.Map.Name)
	}
}

// TestInheritedDataSlotHolder: lookup reports the holder object for
// parent-inherited data slots (the storage is shared).
func TestInheritedDataSlotHolder(t *testing.T) {
	w := loadWorld(t, `
		base = (| shared <- 7 |).
		kidA = (| pa* = base |).
		kidB = (| pa* = base |).
	`)
	av, _ := w.GlobalValue("kidA")
	bv, _ := w.GlobalValue("kidB")
	basev, _ := w.GlobalValue("base")
	ra := Lookup(av.Obj().Map, "shared")
	if ra == nil || ra.Holder != basev.Obj() {
		t.Fatalf("holder = %v, want base", ra)
	}
	// Writing through one inheritor is visible through the other: the
	// slot lives in base.
	wSlot := Lookup(av.Obj().Map, "shared:")
	if wSlot == nil || wSlot.Holder != basev.Obj() {
		t.Fatal("assignment slot holder wrong")
	}
	wSlot.Holder.Fields[wSlot.Slot.Index] = Int(42)
	rb := Lookup(bv.Obj().Map, "shared")
	if got := rb.Holder.Fields[rb.Slot.Index]; !got.Eq(Int(42)) {
		t.Errorf("shared storage not shared: %v", got)
	}
}

// TestArenaEpochsGloballyUnique: epoch numbers are identity for the
// store barrier's `Ep != curEp` compare, so no two arenas may ever
// observe the same epoch — including across resets. Per-arena counters
// (the original bug) would hand every fresh arena epoch 1.
func TestArenaEpochsGloballyUnique(t *testing.T) {
	a, b := NewArena(), NewArena()
	seen := map[uint32]bool{}
	for i := 0; i < 50; i++ {
		for _, ar := range []*Arena{a, b} {
			e := ar.Epoch()
			if e == 0 {
				t.Fatal("live arena at reserved epoch 0")
			}
			if seen[e] {
				t.Fatalf("epoch %d observed twice across arenas", e)
			}
			seen[e] = true
			ar.Reset()
		}
	}
}

// TestArenaUntrackedChunksSpareFreeList: once an epoch has hit the
// tracking cap, further chunks are invisible to Reset — consuming the
// recycled free list for them would permanently lose those chunks from
// the pool, silently degrading a busy worker to plain heap allocation.
func TestArenaUntrackedChunksSpareFreeList(t *testing.T) {
	a := NewArena()
	for len(a.chunks) < arenaMaxTracked {
		a.chunks = append(a.chunks, make([]Value, arenaChunkValues))
	}
	a.free = append(a.free, make([]Value, arenaChunkValues))
	a.cur, a.used = nil, 0
	a.newValueChunk()
	if len(a.free) != 1 {
		t.Fatalf("untracked value chunk consumed the free list (len=%d, want 1)", len(a.free))
	}
	if len(a.chunks) != arenaMaxTracked {
		t.Fatalf("chunk tracked past the cap: %d", len(a.chunks))
	}

	for len(a.objChunks) < arenaMaxTracked {
		a.objChunks = append(a.objChunks, make([]Object, arenaChunkObjs))
	}
	a.objFree = append(a.objFree, make([]Object, arenaChunkObjs))
	a.objCur, a.objUsed = nil, 0
	a.allocObject()
	if len(a.objFree) != 1 {
		t.Fatalf("untracked object chunk consumed the free list (len=%d, want 1)", len(a.objFree))
	}
}

// TestInternBounded: the intern table must not grow without bound —
// guests mint strings — and dropping a generation must not break
// string equality for Values that span the boundary.
func TestInternBounded(t *testing.T) {
	before := Str("intern-generation-probe")
	for i := 0; i < internMaxEntries+16; i++ {
		Intern(fmt.Sprintf("intern-bound-filler-%d", i))
	}
	if n := internLen(); n > internMaxEntries {
		t.Fatalf("intern table grew past its cap: %d > %d", n, internMaxEntries)
	}
	after := Str("intern-generation-probe")
	if !before.Eq(after) || !after.Eq(before) {
		t.Fatal("string equality broken across intern generations")
	}
	if before.S() != "intern-generation-probe" || after.S() != "intern-generation-probe" {
		t.Fatalf("string payload corrupted across generations: %q / %q", before.S(), after.S())
	}
}
