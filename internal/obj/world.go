package obj

import (
	"fmt"
	"sync"
	"sync/atomic"

	"selfgo/internal/ast"
)

// World is an object universe: the lobby (global namespace), the
// built-in maps for immediate values, and the well-known singletons.
type World struct {
	// mapMu guards map creation: run-time object literals mint maps
	// from concurrent compiles (the single-flight cache runs compiles
	// on worker goroutines), so the ID counter and the load registry
	// need a lock even though source loading itself is single-threaded.
	mapMu     sync.Mutex
	nextMapID int

	// loadMaps registers every map created while loading (world
	// construction and Load calls), in creation order. The order is a
	// pure function of the source texts loaded, so it is the stable
	// coordinate system world images use to name maps.
	loadMaps []*Map
	// loading is true during world construction and Load; maps created
	// while it is set get a LoadOrd.
	loading bool

	// frozenEp, once set by Freeze, marks every world object's epoch;
	// further source loads are refused (copy-on-write forks share the
	// frozen base and must see an immutable world).
	frozenEp uint32

	Lobby *Object

	NilMap   *Map
	IntMap   *Map
	StrMap   *Map
	BlockMap *Map
	VecMap   *Map

	TrueObj  *Object
	FalseObj *Object

	// VectorProto is the clonable empty vector bound to the lobby slot
	// "vector".
	VectorProto *Object

	// OnMapChange, when non-nil, is invoked whenever a map's shape
	// changes after creation: a slot added or replaced by a later Load,
	// or a builtin parent patched by Finalize. The shared code cache
	// registers here so customizations compiled against the old shape
	// are invalidated. World mutation (and hence this hook) is
	// single-threaded: sources are loaded before worker VMs start —
	// with one exception: a typed-shape widening (see NoteFieldStore)
	// fires the hook from whichever VM performed the widening store.
	OnMapChange func(*Map)

	// ShapeTracking turns on per-field typed-shape tag maintenance
	// (Map.Tags). Systems running the BBV strategy set it before any
	// source loads; the split strategy leaves it off, so the store fast
	// path pays nothing.
	ShapeTracking bool

	// ShapeGen counts typed-shape widenings (any field tag going
	// polymorphic, world-wide). BBV versions that consumed a shape fact
	// record the generation they read it at; a moved generation means
	// the fact may no longer hold and the version re-checks at run time
	// and re-materializes on next entry. Coarse by design: widenings
	// are rare (at most one per field, ever).
	ShapeGen atomic.Uint64
}

// NewWorld creates a world with the built-in maps and singletons but an
// otherwise empty lobby. Callers normally load the prelude next.
func NewWorld() *World {
	w := &World{}
	w.loading = true
	defer func() { w.loading = false }()
	w.NilMap = w.newMap("nil")
	w.IntMap = w.newMap("smallInt")
	w.StrMap = w.newMap("string")
	w.BlockMap = w.newMap("block")
	w.VecMap = w.newMap("vector")
	w.VecMap.Indexable = true

	// Builtin maps get one patchable parent slot so the prelude can
	// attach traits objects (see Finalize).
	for _, m := range []*Map{w.NilMap, w.IntMap, w.StrMap, w.BlockMap, w.VecMap} {
		w.addSlot(m, Slot{Name: "parent", Kind: ParentSlot, Value: Nil()})
	}

	trueMap := w.newMap("true")
	falseMap := w.newMap("false")
	w.addSlot(trueMap, Slot{Name: "parent", Kind: ParentSlot, Value: Nil()})
	w.addSlot(falseMap, Slot{Name: "parent", Kind: ParentSlot, Value: Nil()})
	w.TrueObj = &Object{Map: trueMap}
	w.FalseObj = &Object{Map: falseMap}

	lobbyMap := w.newMap("lobby")
	w.Lobby = &Object{Map: lobbyMap}
	w.VectorProto = &Object{Map: w.VecMap}

	// Well-known constants, visible from any object that inherits from
	// the lobby.
	w.DefineConst("lobby", Obj(w.Lobby))
	w.DefineConst("nil", Nil())
	w.DefineConst("true", Obj(w.TrueObj))
	w.DefineConst("false", Obj(w.FalseObj))
	w.DefineConst("vector", Obj(w.VectorProto))
	return w
}

func (w *World) newMap(name string) *Map {
	w.mapMu.Lock()
	defer w.mapMu.Unlock()
	w.nextMapID++
	m := &Map{ID: w.nextMapID, Name: name, byName: map[string]int{}, LoadOrd: -1}
	if w.loading {
		m.LoadOrd = len(w.loadMaps)
		w.loadMaps = append(w.loadMaps, m)
	}
	return m
}

func (w *World) setLoading(b bool) {
	w.mapMu.Lock()
	w.loading = b
	w.mapMu.Unlock()
}

// LoadMaps returns the registry of maps created during world
// construction and source loads, in creation order. The slice is the
// world's own bookkeeping: callers must treat it as read-only.
func (w *World) LoadMaps() []*Map {
	w.mapMu.Lock()
	defer w.mapMu.Unlock()
	return w.loadMaps
}

// addSlot appends a slot to a map, assigning field indices to data
// slots and keeping the name index current.
func (w *World) addSlot(m *Map, s Slot) *Slot {
	if s.Kind == DataSlot {
		s.Index = m.NFields
		m.NFields++
		if w.ShapeTracking {
			for len(m.Tags) < m.NFields {
				m.Tags = append(m.Tags, atomic.Pointer[Map]{})
			}
		}
	}
	if w.OnMapChange != nil {
		defer w.OnMapChange(m)
	}
	if i, ok := m.byName[s.Name]; ok {
		m.Slots[i] = s // redefinition replaces
		return &m.Slots[i]
	}
	m.byName[s.Name] = len(m.Slots)
	m.Slots = append(m.Slots, s)
	return &m.Slots[len(m.Slots)-1]
}

// DefineConst installs a constant slot in the lobby.
func (w *World) DefineConst(name string, v Value) {
	w.addSlot(w.Lobby.Map, Slot{Name: name, Kind: ConstSlot, Value: v})
}

// NoteFieldStore maintains m's typed-shape tag for field idx across a
// store of v: the first store records v's map, matching stores are
// free, and the first mismatching store widens the tag to PolyShape —
// bumping ShapeGen (before the caller lands the value, so any load
// observing the new value observes the moved generation too) and
// firing OnMapChange, so shape-specialized code is dropped exactly
// like any other customization of m. No-op unless ShapeTracking is on.
func (w *World) NoteFieldStore(m *Map, idx int, v Value) {
	if !w.ShapeTracking || m == nil || idx < 0 || idx >= len(m.Tags) {
		return
	}
	t := &m.Tags[idx]
	vm := w.MapOf(v)
	old := t.Load()
	if old == vm || old == PolyShape {
		return
	}
	if old == nil {
		if t.CompareAndSwap(nil, vm) {
			return
		}
		if old = t.Load(); old == vm || old == PolyShape {
			return
		}
	}
	// Widening order matters: the tag goes polymorphic BEFORE the
	// generation moves, and the caller stores the new field value only
	// after this returns. A specializer that reads the generation first
	// and the tag second therefore either sees PolyShape (no fact) or a
	// generation the widening has already left behind (its guard fails)
	// — it can never stamp a current generation on the stale tag.
	t.Store(PolyShape)
	w.ShapeGen.Add(1)
	if w.OnMapChange != nil {
		w.OnMapChange(m)
	}
}

// SlotTypeTag reports the monomorphic typed-shape tag of m's field idx,
// or nil when the field is untagged or polymorphic. The caller must
// pair the read with a ShapeGen read taken beforehand to detect
// widenings that race with it.
func (w *World) SlotTypeTag(m *Map, idx int) *Map {
	if m == nil || idx < 0 || idx >= len(m.Tags) {
		return nil
	}
	p := m.Tags[idx].Load()
	if p == PolyShape {
		return nil
	}
	return p
}

// MapOf returns the map of any value.
func (w *World) MapOf(v Value) *Map {
	switch v.K() {
	case KNil:
		return w.NilMap
	case KInt:
		return w.IntMap
	case KStr:
		return w.StrMap
	case KObj:
		return v.Obj().Map
	case KBlock:
		return w.BlockMap
	}
	return nil
}

// NewVector returns a fresh vector of n elements, each initialized to
// fill. A negative n yields an empty vector: callers on checked paths
// reject negative sizes before getting here, and the unchecked path
// must not be able to panic the Go runtime through make.
func (w *World) NewVector(n int, fill Value) *Object {
	if n < 0 {
		n = 0
	}
	e := make([]Value, n)
	for i := range e {
		e[i] = fill
	}
	return &Object{Map: w.VecMap, Elems: e}
}

// Load installs a parsed file's slots into the lobby. Slot initializers
// are evaluated at load time (literals, lobby references, object
// literals). Definitions are processed in order, so files may refer to
// anything defined earlier.
func (w *World) Load(f *ast.File) error {
	if w.frozenEp != 0 {
		return fmt.Errorf("world is frozen (copy-on-write base); no further loads")
	}
	w.setLoading(true)
	defer w.setLoading(false)
	for _, s := range f.Slots {
		if err := w.installSlot(w.Lobby, s); err != nil {
			return err
		}
	}
	return nil
}

// LoadSource parses src and loads it. Exposed for convenience;
// the parse error, if any, is returned.
func (w *World) installSlot(target *Object, s *ast.Slot) error {
	m := target.Map
	switch s.Kind {
	case ast.MethodSlot:
		meth := &Method{Sel: s.Name, Ast: s.Method, Holder: m}
		w.addSlot(m, Slot{Name: s.Name, Kind: MethodSlot, Meth: meth})
	case ast.ConstSlot:
		v, err := w.evalInit(s.Init)
		if err != nil {
			return fmt.Errorf("slot %s: %w", s.Name, err)
		}
		w.addSlot(m, Slot{Name: s.Name, Kind: ConstSlot, Value: v})
	case ast.ParentSlot:
		v, err := w.evalInit(s.Init)
		if err != nil {
			return fmt.Errorf("slot %s: %w", s.Name, err)
		}
		w.addSlot(m, Slot{Name: s.Name, Kind: ParentSlot, Value: v})
	case ast.DataSlot:
		v, err := w.evalInit(s.Init)
		if err != nil {
			return fmt.Errorf("slot %s: %w", s.Name, err)
		}
		ds := w.addSlot(m, Slot{Name: s.Name, Kind: DataSlot})
		w.addSlot(m, Slot{Name: s.Name + ":", Kind: AssignSlot, Index: ds.Index})
		for len(target.Fields) < m.NFields {
			target.Fields = append(target.Fields, Nil())
		}
		w.NoteFieldStore(m, ds.Index, v)
		target.Fields[ds.Index] = v
	default:
		return fmt.Errorf("slot %s: unknown kind %v", s.Name, s.Kind)
	}
	return nil
}

// evalInit evaluates a slot initializer at world-build time.
func (w *World) evalInit(e ast.Expr) (Value, error) {
	switch n := e.(type) {
	case nil:
		return Nil(), nil
	case *ast.IntLit:
		return Int(n.Value), nil
	case *ast.StrLit:
		return Str(n.Value), nil
	case *ast.Ident:
		r := Lookup(w.Lobby.Map, n.Name)
		if r == nil {
			return Nil(), fmt.Errorf("%s: undefined global %q in slot initializer", n.P, n.Name)
		}
		switch r.Slot.Kind {
		case ConstSlot, ParentSlot:
			return r.Slot.Value, nil
		case DataSlot:
			return w.Lobby.Fields[r.Slot.Index], nil
		}
		return Nil(), fmt.Errorf("%s: global %q is not a value slot", n.P, n.Name)
	case *ast.ObjectLit:
		return w.BuildObject(n)
	default:
		return Nil(), fmt.Errorf("%s: slot initializers must be literals, globals or object literals (got %T)", e.Pos(), e)
	}
}

// BuildObject constructs a fresh prototype from an object literal,
// creating a new map for it.
func (w *World) BuildObject(lit *ast.ObjectLit) (Value, error) {
	m := w.newMap(fmt.Sprintf("obj@%s", lit.P))
	m.Lit = lit
	o := &Object{Map: m}
	for _, s := range lit.Slots {
		if err := w.installSlot(o, s); err != nil {
			return Nil(), err
		}
	}
	// Name the map after a "name" const slot when present, for
	// readable diagnostics and CFG dumps.
	if ns := m.SlotNamed("objectName"); ns != nil && ns.Value.K() == KStr {
		m.Name = ns.Value.S()
	}
	return Obj(o), nil
}

// Finalize patches the built-in maps' parent slots to the traits
// objects the prelude defines (traitsInteger, traitsString,
// traitsVector, traitsBlock, traitsNil, traitsTrue, traitsFalse).
// Safe to call repeatedly.
func (w *World) Finalize() {
	patch := func(m *Map, traitsName string) {
		r := Lookup(w.Lobby.Map, traitsName)
		if r == nil || r.Slot.Kind != ConstSlot {
			return
		}
		if ps := m.SlotNamed("parent"); ps != nil {
			if !ps.Value.Eq(r.Slot.Value) {
				ps.Value = r.Slot.Value
				if w.OnMapChange != nil {
					w.OnMapChange(m)
				}
			}
		}
	}
	patch(w.IntMap, "traitsInteger")
	patch(w.StrMap, "traitsString")
	patch(w.VecMap, "traitsVector")
	patch(w.BlockMap, "traitsBlock")
	patch(w.NilMap, "traitsNil")
	patch(w.TrueObj.Map, "traitsTrue")
	patch(w.FalseObj.Map, "traitsFalse")
}

// GlobalValue reads a lobby slot's current value (const or data).
func (w *World) GlobalValue(name string) (Value, bool) {
	r := Lookup(w.Lobby.Map, name)
	if r == nil {
		return Nil(), false
	}
	switch r.Slot.Kind {
	case ConstSlot, ParentSlot:
		return r.Slot.Value, true
	case DataSlot:
		return w.Lobby.Fields[r.Slot.Index], true
	}
	return Nil(), false
}

// Bool returns the world's true or false object as a Value.
func (w *World) Bool(b bool) Value {
	if b {
		return Obj(w.TrueObj)
	}
	return Obj(w.FalseObj)
}
