package obj

// Freeze stamps every object reachable from the world's roots with a
// fresh process-unique epoch (drawn from the same counter as arena
// epochs, so it can never collide with a live arena) and records it as
// the world's base epoch. After Freeze the world is a copy-on-write
// base: further Loads are refused, and VMs running with a matching
// cowEp redirect writes to base objects into per-fork shadow copies.
//
// Freeze is idempotent — repeated calls return the epoch of the first.
// It must not race with guest execution: freeze after loading is done
// and before forks start serving, the same window Fork already
// requires.
func (w *World) Freeze() uint32 {
	if w.frozenEp != 0 {
		return w.frozenEp
	}
	ep := nextEpoch()
	for _, o := range w.ReachableObjects() {
		o.Ep = ep
	}
	w.frozenEp = ep
	return ep
}

// FrozenEpoch returns the base epoch set by Freeze, or 0 for an
// unfrozen world.
func (w *World) FrozenEpoch() uint32 { return w.frozenEp }

// ReachableObjects enumerates every object reachable from the world's
// roots (lobby, true, false, the vector prototype) through map
// constant/parent slot values, object fields and vector elements, in a
// deterministic breadth-first discovery order. The order is a pure
// function of world structure, which is what both Freeze and the image
// writer rely on.
func (w *World) ReachableObjects() []*Object {
	seen := make(map[*Object]bool)
	seenMap := make(map[*Map]bool)
	var out []*Object
	add := func(v Value) {
		if o := v.Obj(); o != nil && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	scanMap := func(m *Map) {
		if seenMap[m] {
			return
		}
		seenMap[m] = true
		for j := range m.Slots {
			if k := m.Slots[j].Kind; k == ConstSlot || k == ParentSlot {
				add(m.Slots[j].Value)
			}
		}
	}
	add(Obj(w.Lobby))
	add(Obj(w.TrueObj))
	add(Obj(w.FalseObj))
	add(Obj(w.VectorProto))
	// Builtin maps are not any root's own map but carry patched parent
	// slots; scan them up front so their parents are rooted even if no
	// lobby slot mentions them.
	for _, m := range []*Map{w.NilMap, w.IntMap, w.StrMap, w.BlockMap, w.VecMap} {
		scanMap(m)
	}
	for i := 0; i < len(out); i++ {
		o := out[i]
		scanMap(o.Map)
		for _, v := range o.Fields {
			add(v)
		}
		for _, v := range o.Elems {
			add(v)
		}
	}
	return out
}
