package obj

import "sync/atomic"

// Arena is a per-VM bump allocator for request-lifetime object
// storage: vector elements, clone fields and the Object headers
// themselves come out of recycled chunks instead of individual Go
// allocations. Lifetimes are epochs: the serving layer resets the
// arena when a pooled VM returns to the pool (and the bench harness
// between iterations), recycling every chunk of the finished epoch.
//
// Soundness: an arena value must not outlive its epoch, or a recycled
// chunk would be rewritten under it. Epoch 0 is the permanent Go heap
// (everything created at world-load time); each Object carries the
// epoch it was allocated in, and the VM's store barrier watches every
// write into object storage. Epoch numbers are allocated from one
// process-wide counter, so an epoch identifies its arena globally:
// forked workers sharing a world can never be at the same epoch, and a
// store from worker B into an object that escaped worker A's arena
// always trips B's barrier (with per-arena counters both workers would
// typically sit at the same small epoch number and the barrier would
// see a false "same epoch" match). When a current-epoch object or a block
// is stored into an object from any *other* epoch — the world, or a
// previous epoch that itself escaped — the value may be reachable
// after Reset, and the barrier promotes the whole epoch: MarkEscaped
// flips the dirty bit, and a dirty Reset abandons its chunks to the
// Go garbage collector (which keeps them alive exactly as long as the
// escaped values are referenced) instead of recycling them. This
// mirrors the frame pool's escaped-frame exemption: escape is rare,
// detection is a single epoch compare on the store fast path, and the
// abandoned chunks are ordinary heap memory so escaped closures and
// NLR homes stay valid forever. Blocks escape conservatively: a
// closure's UpLocals alias frame slots that can be written after the
// store, so any block crossing an epoch boundary dirties the epoch.
//
// The arena is single-VM (not goroutine-safe), like the frame pool.
type Arena struct {
	epoch uint32
	dirty bool

	// Value storage: the current chunk being bumped, the full list of
	// this epoch's tracked chunks, and the clean recycled free list.
	cur    []Value
	used   int
	chunks [][]Value
	free   [][]Value

	// Object-header storage, same discipline.
	objCur    []Object
	objUsed   int
	objChunks [][]Object
	objFree   [][]Object

	// Counters for tests and /statusz.
	Resets   int64 // epochs recycled cleanly
	Abandons int64 // epochs abandoned to the GC because a value escaped
}

const (
	arenaChunkValues = 8192 // 128 KiB of Value storage per chunk
	arenaChunkObjs   = 1024 // Object headers per chunk
	arenaMaxTracked  = 64   // chunks tracked per epoch; beyond this, loose heap chunks
	arenaMaxFree     = 16   // recycled chunks kept across epochs
)

// epochCounter hands out epoch numbers process-wide. Epochs are
// identity, not just sequence: the store barrier's `o.Ep != curEp`
// compare is only sound if no two live arenas ever share an epoch
// number, so every arena draws from this one counter.
var epochCounter atomic.Uint32

// nextEpoch returns a fresh process-unique epoch, never 0 (0 is the
// permanent heap). uint32 wrap after 4G epochs is tolerated: a stale
// collision would need an abandoned object *and* a live arena exactly
// 2^32 epochs apart, and the failure mode is a missed escape on a
// barrier that already fires only on cross-epoch stores.
func nextEpoch() uint32 {
	for {
		if e := epochCounter.Add(1); e != 0 {
			return e
		}
	}
}

// NewArena returns an empty arena at a fresh process-unique epoch
// (epoch 0 is reserved for the permanent heap).
func NewArena() *Arena { return &Arena{epoch: nextEpoch()} }

// NewEpoch hands out a fresh process-unique epoch from the same
// counter arenas draw from, for non-arena lifetimes that must be
// distinguishable from every live arena: the frozen base world
// (World.Freeze) and each copy-on-write fork's shadow objects.
func NewEpoch() uint32 { return nextEpoch() }

// Epoch returns the current epoch. Never 0.
func (a *Arena) Epoch() uint32 {
	if a == nil {
		return 0
	}
	return a.epoch
}

// MarkEscaped records that a value of the current epoch became
// reachable from outside it; the next Reset abandons this epoch's
// chunks to the GC instead of recycling them.
func (a *Arena) MarkEscaped() {
	if a != nil {
		a.dirty = true
	}
}

// Escaped reports whether the current epoch has been marked escaped.
func (a *Arena) Escaped() bool { return a != nil && a.dirty }

// Reset ends the current epoch. Clean epochs recycle their chunks
// (zeroed, so no stale Values retain dead objects); escaped epochs
// abandon them to the garbage collector, which is what "promoting out
// of the arena" means here — the chunks are ordinary heap memory that
// now lives exactly as long as the escaped values need it to.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	if a.dirty {
		a.chunks = nil
		a.objChunks = nil
		a.Abandons++
	} else {
		for _, c := range a.chunks {
			if len(a.free) >= arenaMaxFree {
				break
			}
			clear(c)
			a.free = append(a.free, c)
		}
		a.chunks = a.chunks[:0]
		for _, c := range a.objChunks {
			if len(a.objFree) >= arenaMaxFree {
				break
			}
			clear(c)
			a.objFree = append(a.objFree, c)
		}
		a.objChunks = a.objChunks[:0]
		a.Resets++
	}
	a.cur, a.used = nil, 0
	a.objCur, a.objUsed = nil, 0
	a.dirty = false
	a.epoch = nextEpoch()
}

// allocValues returns a zeroed n-slot Value array from the current
// chunk. Oversized requests (and every request once the per-epoch
// tracking cap is hit) fall through to plain heap makes — correct,
// just not recycled.
func (a *Arena) allocValues(n int) []Value {
	if n == 0 {
		return nil
	}
	if n > arenaChunkValues/2 {
		return make([]Value, n)
	}
	if a.used+n > len(a.cur) {
		a.newValueChunk()
	}
	s := a.cur[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

func (a *Arena) newValueChunk() {
	// Once the per-epoch tracking cap is hit, further chunks are loose
	// heap memory that Reset never sees — consuming the free list for
	// them would permanently drain the recycled pool, so untracked
	// chunks always come fresh from the heap.
	if len(a.chunks) >= arenaMaxTracked {
		a.cur, a.used = make([]Value, arenaChunkValues), 0
		return
	}
	var c []Value
	if k := len(a.free); k > 0 {
		c = a.free[k-1]
		a.free = a.free[:k-1]
	} else {
		c = make([]Value, arenaChunkValues)
	}
	a.chunks = append(a.chunks, c)
	a.cur, a.used = c, 0
}

// allocObject returns a zeroed Object header stamped with the current
// epoch.
func (a *Arena) allocObject() *Object {
	if a.objUsed >= len(a.objCur) {
		if len(a.objChunks) >= arenaMaxTracked {
			// Same rule as newValueChunk: untracked chunks must not
			// drain the recycled free list.
			a.objCur, a.objUsed = make([]Object, arenaChunkObjs), 0
		} else {
			var c []Object
			if k := len(a.objFree); k > 0 {
				c = a.objFree[k-1]
				a.objFree = a.objFree[:k-1]
			} else {
				c = make([]Object, arenaChunkObjs)
			}
			a.objChunks = append(a.objChunks, c)
			a.objCur, a.objUsed = c, 0
		}
	}
	o := &a.objCur[a.objUsed]
	a.objUsed++
	o.Ep = a.epoch
	return o
}

// NewVector returns a fresh arena vector of n elements initialized to
// fill. Negative n yields an empty vector, matching World.NewVector.
func (a *Arena) NewVector(m *Map, n int, fill Value) *Object {
	if a == nil {
		w := &Object{Map: m}
		if n > 0 {
			w.Elems = make([]Value, n)
			for i := range w.Elems {
				w.Elems[i] = fill
			}
		}
		return w
	}
	if n < 0 {
		n = 0
	}
	o := a.allocObject()
	o.Map = m
	o.Fields, o.Elems = nil, nil
	if n > 0 {
		o.Elems = a.allocValues(n)
		if !fill.IsNil() {
			for i := range o.Elems {
				o.Elems[i] = fill
			}
		}
	}
	return o
}

// Clone returns a shallow arena copy of src sharing its map.
func (a *Arena) Clone(src *Object) *Object {
	if a == nil {
		return src.Clone()
	}
	o := a.allocObject()
	o.Map = src.Map
	o.Fields, o.Elems = nil, nil
	if len(src.Fields) > 0 {
		o.Fields = a.allocValues(len(src.Fields))
		copy(o.Fields, src.Fields)
	}
	if src.Map.Indexable {
		o.Elems = a.allocValues(len(src.Elems))
		copy(o.Elems, src.Elems)
	}
	return o
}
