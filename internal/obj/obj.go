// Package obj implements the SELF-style prototype object model:
// objects are bags of slots, clones share *maps* (the user-transparent
// hidden classes of Chambers & Ungar §3.1, footnote 2), and method
// lookup walks constant parent slots.
//
// Non-object values — small integers, strings, blocks, nil, true and
// false — also have maps, so every value has a well-defined "class"
// that customization and class types can key on.
package obj

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"selfgo/internal/ast"
)

// Small-integer bounds. The SELF system of the paper ran on 32-bit
// SPARCs with 30-bit tagged small integers; we keep the same bounds so
// overflow checks and range analysis behave exactly as described.
const (
	MinSmallInt = -1 << 29
	MaxSmallInt = 1<<29 - 1
)

// Kind discriminates the immediate value representations.
type Kind uint8

// Value kinds. The numeric values are the low-bits tag of the packed
// Value representation; KNil must stay zero so the zero Value is nil.
const (
	KNil Kind = iota
	KInt
	KStr
	KObj
	KBlock
)

func (k Kind) String() string {
	switch k {
	case KNil:
		return "nil"
	case KInt:
		return "int"
	case KStr:
		return "string"
	case KObj:
		return "object"
	case KBlock:
		return "block"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindBits is the width of the kind tag packed into Value.bits.
const kindBits = 3

// Value is a runtime value in a compact tagged representation: the
// kind tag and the small-integer payload are packed into one word, and
// the object, block and interned-string pointers share the second.
// At 16 bytes (down from the five-field 48-byte struct it replaced)
// every register file, frame, field array and vector is 3x smaller.
//
// The zero Value is nil. Integer payloads are stored shifted left by
// the tag width, so |i| beyond 2^60 wraps; all interpreter backends
// share the constructors, so unchecked-config overflow behaves
// identically everywhere, and checked paths fault at the 30-bit
// MaxSmallInt long before the representation limit.
type Value struct {
	bits uint64
	p    unsafe.Pointer
}

// intern is the global string-intern table: every KStr Value points at
// the canonical *string for its contents, so Eq can compare pointers
// first and value payloads never carry a 16-byte string header.
//
// The table is bounded: guests mint strings (literals in /expr
// requests, _StrCat results), and an unbounded table would be a host
// memory-growth vector the bytes budget cannot see. When the entry
// count reaches internMaxEntries the current generation is dropped and
// a fresh map started — already-issued pointers stay valid (their
// Values hold the *string alive), and Eq's content fallback keeps
// equality correct between strings interned in different generations;
// only the pointer-compare fast path is lost across the boundary.
var (
	internMu  sync.RWMutex
	internTab = make(map[string]*string)
)

// internMaxEntries caps one intern generation. 64K distinct strings is
// far beyond any world load plus steady-state serving traffic, and at
// that point one generation retains at most a few MB of table.
const internMaxEntries = 1 << 16

// Intern returns the canonical pointer for s (canonical within the
// current intern generation; see the table comment).
func Intern(s string) *string {
	internMu.RLock()
	p := internTab[s]
	internMu.RUnlock()
	if p != nil {
		return p
	}
	internMu.Lock()
	defer internMu.Unlock()
	if p = internTab[s]; p != nil {
		return p
	}
	if len(internTab) >= internMaxEntries {
		internTab = make(map[string]*string)
	}
	p = &s
	internTab[s] = p
	return p
}

// internLen reports the current generation's entry count (tests).
func internLen() int {
	internMu.RLock()
	defer internMu.RUnlock()
	return len(internTab)
}

// Convenience constructors.
func Nil() Value        { return Value{} }
func Int(i int64) Value { return Value{bits: uint64(i)<<kindBits | uint64(KInt)} }
func Str(s string) Value {
	return Value{bits: uint64(KStr), p: unsafe.Pointer(Intern(s))}
}
func Obj(o *Object) Value  { return Value{bits: uint64(KObj), p: unsafe.Pointer(o)} }
func Blk(c *Closure) Value { return Value{bits: uint64(KBlock), p: unsafe.Pointer(c)} }

// K returns the value's kind.
func (v Value) K() Kind { return Kind(v.bits & (1<<kindBits - 1)) }

// I returns the small-integer payload (meaningful for KInt; zero-ish
// garbage otherwise, matching the old struct's zero field).
func (v Value) I() int64 { return int64(v.bits) >> kindBits }

// S returns the string payload, or "" for non-strings.
func (v Value) S() string {
	if Kind(v.bits&(1<<kindBits-1)) != KStr || v.p == nil {
		return ""
	}
	return *(*string)(v.p)
}

// Obj returns the object payload, or nil for non-objects. The kind
// guard is load-bearing: the pointer word is shared with KBlock and
// KStr, and callers rely on `v.Obj() == nil` meaning "not an object".
func (v Value) Obj() *Object {
	if Kind(v.bits&(1<<kindBits-1)) != KObj {
		return nil
	}
	return (*Object)(v.p)
}

// Blk returns the closure payload, or nil for non-blocks.
func (v Value) Blk() *Closure {
	if Kind(v.bits&(1<<kindBits-1)) != KBlock {
		return nil
	}
	return (*Closure)(v.p)
}

// IsNil reports whether v is the nil object.
func (v Value) IsNil() bool { return v.bits == 0 }

// Eq is identity equality: equal small integers, identical strings,
// the same object. Strings are interned, so the pointer comparison
// almost always decides; the content fallback keeps Values built from
// distinct intern generations (none today) honest.
func (v Value) Eq(w Value) bool {
	if v.bits != w.bits {
		return false
	}
	if v.p == w.p {
		return true
	}
	return v.K() == KStr && v.S() == w.S()
}

// String renders the value for diagnostics and the _Print primitive.
func (v Value) String() string {
	switch v.K() {
	case KNil:
		return "nil"
	case KInt:
		return fmt.Sprintf("%d", v.I())
	case KStr:
		return v.S()
	case KObj:
		return v.Obj().String()
	case KBlock:
		return "[block]"
	}
	return "<?>"
}

// ValueBytes is the modelled size of one Value slot, used by the bytes
// axis of Budget accounting (per-element charges on vector allocation
// and cloning).
const ValueBytes = int64(unsafe.Sizeof(Value{}))

// SlotKind classifies map slots.
type SlotKind uint8

// Slot kinds. AssignSlot is the auto-generated "x:" setter paired with
// each data slot.
const (
	ConstSlot SlotKind = iota
	DataSlot
	AssignSlot
	ParentSlot
	MethodSlot
)

// Slot describes one slot in a map.
type Slot struct {
	Name  string
	Kind  SlotKind
	Index int     // DataSlot/AssignSlot: index into Object.Fields
	Value Value   // ConstSlot/ParentSlot: the constant value
	Meth  *Method // MethodSlot
}

// Method is the code object held in a method slot.
type Method struct {
	Sel    string
	Ast    *ast.Method
	Holder *Map // the map of the object the method was defined in
}

func (m *Method) String() string {
	if m.Holder != nil {
		return m.Holder.Name + ">>" + m.Sel
	}
	return m.Sel
}

// Map is the hidden class shared by all clones of one prototype.
type Map struct {
	ID     int
	Name   string
	Slots  []Slot
	byName map[string]int

	// NFields is the number of assignable data slots (the length of
	// each instance's Fields).
	NFields int

	// Indexable marks vector maps: instances carry Elems.
	Indexable bool

	// LoadOrd is the map's ordinal in World.LoadMaps when it was
	// created during world construction or a source load (-1 for maps
	// minted at run time by compiled object literals). Load ordinals
	// are replay-deterministic — re-loading the same sources in the
	// same order recreates the same sequence — which is what world
	// images key on; raw IDs are not, because run-time compiles
	// interleave with loads.
	LoadOrd int

	// Lit is the object literal this map was built from (nil for
	// builtin and lobby maps). Run-time maps are identified across an
	// image boundary by their literal's position in the owning
	// method's AST walk.
	Lit *ast.ObjectLit

	// Tags are the per-field typed-shape tags (one per assignable data
	// slot, indexed like Object.Fields): nil = no store observed yet,
	// PolyShape = stores of more than one map observed, any other map =
	// every store so far held a value of that map. Maintained by
	// World.NoteFieldStore on every field store while ShapeTracking is
	// on; read by the BBV materializer, which turns a monomorphic tag
	// into a type fact a slot load contributes for free. Entries are
	// atomics because forked worker VMs store into clones sharing one
	// map concurrently. The slice itself only grows during (single-
	// threaded) source loading, in step with NFields.
	Tags []atomic.Pointer[Map]
}

// PolyShape is the sentinel tag for a field that has held values of
// more than one map: no type fact can be drawn from loading it.
var PolyShape = &Map{Name: "<poly-shape>"}

func (m *Map) String() string { return m.Name }

// SlotNamed returns the local slot with the given name, or nil.
func (m *Map) SlotNamed(name string) *Slot {
	if i, ok := m.byName[name]; ok {
		return &m.Slots[i]
	}
	return nil
}

// Parents returns the values of all parent slots, in declaration order.
func (m *Map) Parents() []Value {
	var out []Value
	for i := range m.Slots {
		if m.Slots[i].Kind == ParentSlot {
			out = append(out, m.Slots[i].Value)
		}
	}
	return out
}

// Object is a heap object: a map plus assignable-slot storage, plus
// element storage for indexable objects (vectors).
type Object struct {
	Map    *Map
	Fields []Value
	Elems  []Value // only for indexable maps

	// Ep is the arena epoch the object was allocated in: 0 for
	// permanent (Go-heap, load-time) objects, otherwise the owning
	// Arena's epoch at allocation. The VM's store barrier compares it
	// against the current epoch to detect values escaping their
	// request lifetime (see Arena).
	Ep uint32
}

func (o *Object) String() string {
	if o == nil {
		return "<nil object>"
	}
	if o.Map.Indexable {
		return fmt.Sprintf("a %s(%d)", o.Map.Name, len(o.Elems))
	}
	return "a " + strings.TrimPrefix(o.Map.Name, "a ")
}

// Clone returns a shallow copy sharing the receiver's map, allocated
// on the permanent Go heap (epoch 0). The VM clones through its Arena
// instead; this stays for load-time and test use.
func (o *Object) Clone() *Object {
	c := &Object{Map: o.Map}
	if len(o.Fields) > 0 {
		c.Fields = make([]Value, len(o.Fields))
		copy(c.Fields, o.Fields)
	}
	if o.Map.Indexable {
		c.Elems = make([]Value, len(o.Elems))
		copy(c.Elems, o.Elems)
	}
	return c
}

// Closure is a runtime block: code plus the captured home context.
// Home identifies the activation of the lexically enclosing method for
// non-local return and up-level variable access; its representation is
// owned by the VM (an activation token), stored here as an opaque
// pointer.
type Closure struct {
	Ast  *ast.Block
	Map  *Map
	Home any
	// UpLocals exposes the enclosing activation's variables by name;
	// set by the VM when the closure is created.
	UpLocals map[string]*Value
}

// LookupResult is the outcome of message lookup. Holder is the object
// whose storage an inherited data/assignment slot lives in (nil when
// the slot is the receiver's own): in SELF, a data slot found through a
// parent is the parent's storage, shared by every inheritor.
type LookupResult struct {
	Slot   *Slot
	Map    *Map // map in which the slot was found
	Holder *Object
}

// Lookup performs SELF message lookup starting at map m: the receiver's
// own slots first, then its parents depth-first in slot order. The
// first match wins; cycles are tolerated. Returns nil when the
// message is not understood.
func Lookup(m *Map, sel string) *LookupResult {
	seen := make(map[*Map]bool)
	return lookup(m, sel, seen)
}

func lookup(m *Map, sel string, seen map[*Map]bool) *LookupResult {
	if m == nil || seen[m] {
		return nil
	}
	seen[m] = true
	if s := m.SlotNamed(sel); s != nil {
		return &LookupResult{Slot: s, Map: m}
	}
	for i := range m.Slots {
		if m.Slots[i].Kind != ParentSlot {
			continue
		}
		pv := m.Slots[i].Value
		var pm *Map
		switch pv.K() {
		case KObj:
			pm = pv.Obj().Map
		default:
			continue
		}
		if r := lookup(pm, sel, seen); r != nil {
			if r.Holder == nil {
				r.Holder = pv.Obj()
			}
			return r
		}
	}
	return nil
}
