package image

import (
	"fmt"
	"sort"

	"selfgo/internal/ast"
	"selfgo/internal/obj"
)

// Eval is one interned eval program offered for snapshot: its source
// text and the scratch method it was parsed into. Restore re-parses
// the text; the method pointer lets the exporter resolve manifest
// entries that reference this program's method or blocks.
type Eval struct {
	Source string
	Meth   *obj.Method
}

// Manifest is one code-cache entry offered for snapshot, still in
// pointer form. Method entries set Meth (and optionally RMap); block
// entries set Blk and UpNames.
type Manifest struct {
	Meth    *obj.Method
	RMap    *obj.Map
	Blk     *ast.Block
	UpNames []string

	Tier        string
	Invocations int64
	Backedges   int64
	Requested   bool
}

// Snapshot serializes a world into an Image. sources must be the load
// texts in the order they were loaded (prelude first); evals the
// interned eval programs; manifest the code-cache contents to persist.
//
// Manifest entries whose code objects are no longer reachable from the
// current world (a method slot was redefined, an eval program was
// dropped) are silently skipped and counted in the second return:
// they name code a replayed world cannot rebuild. An unreachable map
// on a live *object* is different — that is state the image cannot
// represent, so it is an error.
func Snapshot(w *obj.World, sources []string, evals []Eval, manifest []Manifest) (*Image, int, error) {
	b := &builder{
		w:       w,
		litRef:  map[*ast.ObjectLit]ownerPos{},
		blkRef:  map[*ast.Block]ownerPos{},
		evalIdx: map[*obj.Method]int{},
		mapIdx:  map[*obj.Map]int{},
		objIdx:  map[*obj.Object]int{},
	}
	b.img = &Image{Sources: append([]string(nil), sources...)}
	for i, ev := range evals {
		b.img.EvalSources = append(b.img.EvalSources, ev.Source)
		b.evalIdx[ev.Meth] = i
		b.indexOwner(OwnerRef{Eval: true, EvalIdx: i}, ev.Meth.Ast)
	}
	// Index every load map's current method slots: one walk per
	// top-level method covers all nested literals and blocks.
	for _, m := range w.LoadMaps() {
		for i := range m.Slots {
			s := &m.Slots[i]
			if s.Kind == obj.MethodSlot {
				b.indexOwner(OwnerRef{LoadOrd: m.LoadOrd, Sel: s.Name}, s.Meth.Ast)
			}
		}
	}

	// Discover the world-reachable graph, resolve the manifest (which
	// can intern maps — and thereby discover objects — nothing in the
	// world graph references anymore), finish discovery, then emit.
	anchors, digest := walkAnchors(w)
	b.img.WalkDigest = digest
	b.img.NumAnchors = len(anchors)
	for _, o := range anchors {
		b.objIdx[o] = len(b.objs)
		b.objs = append(b.objs, o)
	}
	if err := b.scan(0); err != nil {
		return nil, 0, err
	}
	scanned := len(b.objs)
	skipped := b.resolveManifest(manifest)
	if err := b.scan(scanned); err != nil {
		return nil, 0, err
	}
	b.emit()
	return b.img, skipped, nil
}

type ownerPos struct {
	owner OwnerRef
	ord   int
}

type builder struct {
	w   *obj.World
	img *Image

	litRef  map[*ast.ObjectLit]ownerPos
	blkRef  map[*ast.Block]ownerPos
	evalIdx map[*obj.Method]int

	mapIdx map[*obj.Map]int
	rtMaps []*obj.Map // runtime maps, parallel to rtIdx entries in img.Maps
	rtIdx  []int
	objIdx map[*obj.Object]int
	objs   []*obj.Object
}

// indexOwner records the literal and block ordinals under one
// top-level method, in the canonical walk order.
func (b *builder) indexOwner(owner OwnerRef, m *ast.Method) {
	lit, blk := 0, 0
	walkMethod(m, func(e ast.Expr) {
		switch n := e.(type) {
		case *ast.ObjectLit:
			if _, ok := b.litRef[n]; !ok {
				b.litRef[n] = ownerPos{owner, lit}
			}
			lit++
		case *ast.Block:
			if _, ok := b.blkRef[n]; !ok {
				b.blkRef[n] = ownerPos{owner, blk}
			}
			blk++
		}
	})
}

// mapRef interns a map into the image's map table. Run-time maps must
// be traceable to an object literal inside a currently-installed
// method (or live eval program), or the replayed world cannot rebuild
// them.
func (b *builder) mapRef(m *obj.Map) (int, error) {
	if i, ok := b.mapIdx[m]; ok {
		return i, nil
	}
	i := len(b.img.Maps)
	if m.LoadOrd >= 0 {
		b.mapIdx[m] = i
		b.img.Maps = append(b.img.Maps, MapRec{LoadOrd: m.LoadOrd})
		return i, nil
	}
	if m.Lit == nil {
		return 0, fmt.Errorf("cannot save image: map %q was not created by a source load or an object literal", m.Name)
	}
	pos, ok := b.litRef[m.Lit]
	if !ok {
		return 0, fmt.Errorf("cannot save image: map %q comes from an object literal whose method is no longer installed", m.Name)
	}
	b.mapIdx[m] = i
	b.img.Maps = append(b.img.Maps, MapRec{Runtime: true, Owner: pos.owner, LitOrd: pos.ord})
	b.rtMaps = append(b.rtMaps, m)
	b.rtIdx = append(b.rtIdx, i)
	// A runtime map's const/parent slots can hold objects nothing else
	// references; they are part of the reachable graph.
	for j := range m.Slots {
		s := &m.Slots[j]
		if s.Kind == obj.ConstSlot || s.Kind == obj.ParentSlot {
			if err := b.addVal(s.Value, fmt.Sprintf("map %q slot %q", m.Name, s.Name)); err != nil {
				return 0, err
			}
		}
	}
	return i, nil
}

func (b *builder) addVal(v obj.Value, where string) error {
	switch v.K() {
	case obj.KBlock:
		return fmt.Errorf("cannot save image: %s holds a live block closure (blocks pin VM frames and cannot be serialized)", where)
	case obj.KObj:
		o := v.Obj()
		if _, ok := b.objIdx[o]; !ok {
			b.objIdx[o] = len(b.objs)
			b.objs = append(b.objs, o)
		}
	}
	return nil
}

// scan runs the discovery worklist from index `from`: each object's
// map is interned and its fields and elements enqueued, until no new
// objects appear.
func (b *builder) scan(from int) error {
	for i := from; i < len(b.objs); i++ {
		o := b.objs[i]
		if _, err := b.mapRef(o.Map); err != nil {
			return err
		}
		for j, f := range o.Fields {
			if err := b.addVal(f, fmt.Sprintf("object %d field %d (map %q)", i, j, o.Map.Name)); err != nil {
				return err
			}
		}
		for j, e := range o.Elems {
			if err := b.addVal(e, fmt.Sprintf("object %d element %d", i, j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit freezes the discovered graph into records, now that every
// reachable object and map has a stable index.
func (b *builder) emit() {
	for _, o := range b.objs {
		rec := ObjRec{MapIdx: b.mapIdx[o.Map]}
		for _, f := range o.Fields {
			rec.Fields = append(rec.Fields, b.val(f))
		}
		for _, e := range o.Elems {
			rec.Elems = append(rec.Elems, b.val(e))
		}
		b.img.Objects = append(b.img.Objects, rec)
	}
	for k, m := range b.rtMaps {
		rec := &b.img.Maps[b.rtIdx[k]]
		for j := range m.Slots {
			s := &m.Slots[j]
			if s.Kind == obj.ConstSlot || s.Kind == obj.ParentSlot {
				rec.SlotVals = append(rec.SlotVals, SlotVal{Idx: j, V: b.val(s.Value)})
			}
		}
	}
}

// val encodes a value whose object referent (if any) is already
// indexed; addVal ran first on every reachable value.
func (b *builder) val(v obj.Value) Val {
	switch v.K() {
	case obj.KInt:
		return Val{Kind: ValInt, I: v.I()}
	case obj.KStr:
		return Val{Kind: ValStr, S: v.S()}
	case obj.KObj:
		return Val{Kind: ValObj, Ref: b.objIdx[v.Obj()]}
	default:
		return Val{Kind: ValNil}
	}
}

// resolveManifest resolves the offered code-cache entries, skipping
// the ones that no longer correspond to reachable code, and sorts the
// result so identical cache contents encode to identical bytes.
func (b *builder) resolveManifest(entries []Manifest) int {
	skipped := 0
	for _, ent := range entries {
		rec, ok := b.manifestRec(ent)
		if !ok {
			skipped++
			continue
		}
		b.img.Manifest = append(b.img.Manifest, rec)
	}
	sort.Slice(b.img.Manifest, func(i, j int) bool {
		return manifestKey(b.img.Manifest[i]) < manifestKey(b.img.Manifest[j])
	})
	return skipped
}

func (b *builder) manifestRec(ent Manifest) (ManifestRec, bool) {
	rec := ManifestRec{
		Tier:        ent.Tier,
		Invocations: ent.Invocations,
		Backedges:   ent.Backedges,
		Requested:   ent.Requested,
		RMapIdx:     -1,
	}
	if ent.Blk != nil {
		pos, ok := b.blkRef[ent.Blk]
		if !ok {
			return rec, false // block of a replaced method or dropped eval
		}
		rec.Block = true
		rec.Owner = pos.owner
		rec.Ord = pos.ord
		rec.UpNames = ent.UpNames
		return rec, true
	}
	if ent.Meth == nil {
		return rec, false
	}
	if i, ok := b.evalIdx[ent.Meth]; ok {
		rec.Meth = MethodRec{Eval: true, EvalIdx: i}
	} else {
		holder := ent.Meth.Holder
		if holder == nil {
			return rec, false
		}
		sl := holder.SlotNamed(ent.Meth.Sel)
		if sl == nil || sl.Kind != obj.MethodSlot || sl.Meth != ent.Meth {
			return rec, false // redefined since this entry was compiled
		}
		mi, err := b.mapRef(holder)
		if err != nil {
			return rec, false // holder map itself is no longer rebuildable
		}
		rec.Meth = MethodRec{MapIdx: mi, Sel: ent.Meth.Sel}
	}
	if ent.RMap != nil {
		mi, err := b.mapRef(ent.RMap)
		if err != nil {
			return rec, false
		}
		rec.RMapIdx = mi
	}
	return rec, true
}

func manifestKey(m ManifestRec) string {
	if m.Block {
		return fmt.Sprintf("b/%v/%06d/%s/%06d", m.Owner.Eval, m.Owner.EvalIdx+m.Owner.LoadOrd, m.Owner.Sel, m.Ord)
	}
	return fmt.Sprintf("m/%v/%06d/%s/%06d", m.Meth.Eval, m.Meth.EvalIdx+m.Meth.MapIdx, m.Meth.Sel, m.RMapIdx+1)
}
