// Package image serializes a selfgo world to a versioned, checksummed
// binary "world image" and restores it into a live process.
//
// An image does not serialize compiled code, Go pointers, or raw
// memory. It records the three things a fresh process cannot
// reconstruct on its own:
//
//   - the source texts that were loaded, in order (replaying them
//     rebuilds every load-time map, method AST and prototype
//     deterministically — maps created during loads carry a stable
//     load ordinal, see obj.Map.LoadOrd);
//   - the mutable object state layered on top of that structure: the
//     reachable object graph's fields and elements, plus the maps that
//     compiled object literals minted at run time (named by the
//     literal's position inside a replayable method body);
//   - a code-cache manifest: which (method, customization, block) keys
//     were compiled, at which tier, and how hot they were — so a
//     restored process can re-compile its hot set in the background
//     before taking traffic instead of re-discovering it under load.
//
// Everything else — bytecode, native closures, inline caches, type
// feedback — is deliberately rebuilt by re-compilation: machine state
// is a cache over (sources, manifest), never truth.
//
// Coordinates. Objects are named by discovery index in a deterministic
// walk (anchors first — the load-time graph reachable through const
// and parent slots — then extras reachable through mutable fields).
// Maps are named by load ordinal, or for run-time maps by (owning
// top-level method, literal ordinal) where the ordinal counts object
// literals in that method's AST in ast.Walk pre-order. Blocks are
// named the same way with block ordinals. Because ast.Walk descends
// into the method bodies of nested object literals, one walk of a
// top-level owner covers every block and literal beneath it, however
// deeply nested.
//
// Restore is two-phase: every reference is resolved and validated
// against the freshly replayed world first (including a structural
// digest of the anchor walk recorded at save time); only when nothing
// can fail anymore is object state patched in. A truncated, corrupted
// or mismatched image therefore yields an error and an untouched
// world, never a partially restored one.
package image

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"

	"selfgo/internal/ast"
	"selfgo/internal/obj"
)

// Val kinds in serialized object state. Blocks are absent by design:
// a live closure pins a VM frame and cannot outlive its process, so
// Snapshot refuses worlds that hold one.
const (
	ValNil byte = iota
	ValInt
	ValStr
	ValObj
)

// Val is one serialized slot, field or element value.
type Val struct {
	Kind byte
	I    int64  // ValInt
	S    string // ValStr: content, re-interned on restore
	Ref  int    // ValObj: index into Image.Objects
}

// OwnerRef names a top-level method — the unit whose AST is walked to
// assign literal and block ordinals. Owners are either a method slot
// on a load-ordinal map or an interned eval program's scratch method.
type OwnerRef struct {
	Eval    bool
	EvalIdx int    // Eval: index into Image.EvalSources
	LoadOrd int    // !Eval: holder map's load ordinal
	Sel     string // !Eval: method slot name on the holder
}

// MapRec names one map in the image's map table.
type MapRec struct {
	Runtime bool
	LoadOrd int // !Runtime: ordinal into the replayed world's load registry

	// Runtime maps: the object literal that minted the map, plus the
	// save-time const/parent slot values (re-building the literal
	// re-evaluates initializers against the fully replayed world,
	// which may differ from what the minting compile saw).
	Owner    OwnerRef
	LitOrd   int
	SlotVals []SlotVal
}

// SlotVal overrides one const/parent slot value on a rebuilt map.
type SlotVal struct {
	Idx int
	V   Val
}

// ObjRec is one serialized object: its map and its mutable state.
type ObjRec struct {
	MapIdx int
	Fields []Val
	Elems  []Val
}

// MethodRec names a method for a manifest entry.
type MethodRec struct {
	Eval    bool
	EvalIdx int // Eval: scratch method of that eval program
	MapIdx  int // !Eval: holder map in the map table
	Sel     string
}

// ManifestRec is one code-cache manifest entry: a compiled key, its
// tier, and its hotness at save time. No machine code — the restored
// process re-compiles.
type ManifestRec struct {
	Block bool

	// Methods.
	Meth    MethodRec
	RMapIdx int // customized receiver map, -1 = shared

	// Blocks.
	Owner   OwnerRef
	Ord     int
	UpNames []string

	Tier        string
	Invocations int64
	Backedges   int64
	Requested   bool
}

// Image is a decoded world image.
type Image struct {
	Sources     []string // load texts in order; Sources[0] is the prelude
	EvalSources []string // interned eval program texts

	// WalkDigest fingerprints the anchor walk of the saved world;
	// restore recomputes it over the replayed world and refuses on
	// mismatch (the image no longer matches what its sources build).
	WalkDigest [32]byte

	Maps       []MapRec
	NumAnchors int // Objects[:NumAnchors] are anchors, the rest extras
	Objects    []ObjRec
	Manifest   []ManifestRec

	// Hash is the hex sha256 of the encoded payload, set by Encode and
	// Decode. It identifies the image in /statusz and logs.
	Hash string
}

// walkMethod walks a method's initializers and body in the canonical
// order shared by save and restore: local initializers first, then
// body expressions, each in ast.Walk pre-order.
func walkMethod(m *ast.Method, fn func(ast.Expr)) {
	for _, l := range m.Locals {
		if l.Init != nil {
			ast.Walk(l.Init, fn)
		}
	}
	for _, e := range m.Body {
		ast.Walk(e, fn)
	}
}

// methodLits enumerates every object literal under a method's AST
// (including literals inside nested literal methods), in walk order.
func methodLits(m *ast.Method) []*ast.ObjectLit {
	var out []*ast.ObjectLit
	walkMethod(m, func(e ast.Expr) {
		if l, ok := e.(*ast.ObjectLit); ok {
			out = append(out, l)
		}
	})
	return out
}

// methodBlocks enumerates every block under a method's AST, in walk
// order.
func methodBlocks(m *ast.Method) []*ast.Block {
	var out []*ast.Block
	walkMethod(m, func(e ast.Expr) {
		if b, ok := e.(*ast.Block); ok {
			out = append(out, b)
		}
	})
	return out
}

// digestW accumulates the structural digest of an anchor walk.
type digestW struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func (d *digestW) u(v uint64) {
	n := binary.PutUvarint(d.buf[:], v)
	d.h.Write(d.buf[:n])
}

func (d *digestW) i(v int64) {
	n := binary.PutVarint(d.buf[:], v)
	d.h.Write(d.buf[:n])
}

func (d *digestW) s(s string) {
	d.u(uint64(len(s)))
	io.WriteString(d.h, s)
}

// walkAnchors enumerates the load-time object graph — the objects
// reachable from the well-known roots through const and parent slots
// only (never mutable fields, which diverge between a live world and a
// fresh replay) — and digests the structure it traverses: each map's
// load ordinal, shape and slot values, and each anchor's map. The walk
// is a pure function of the loaded sources, so the saved and replayed
// worlds enumerate identical anchor sequences or produce different
// digests.
func walkAnchors(w *obj.World) ([]*obj.Object, [32]byte) {
	d := &digestW{h: sha256.New()}
	idx := map[*obj.Object]int{}
	var out []*obj.Object
	add := func(v obj.Value) {
		if o := v.Obj(); o != nil {
			if _, ok := idx[o]; !ok {
				idx[o] = len(out)
				out = append(out, o)
			}
		}
	}
	seenMap := map[*obj.Map]bool{}
	scanMap := func(m *obj.Map) {
		if m == nil || seenMap[m] {
			return
		}
		seenMap[m] = true
		d.s("M")
		d.i(int64(m.LoadOrd))
		d.u(uint64(m.NFields))
		if m.Indexable {
			d.u(1)
		} else {
			d.u(0)
		}
		d.u(uint64(len(m.Slots)))
		for i := range m.Slots {
			s := &m.Slots[i]
			d.s(s.Name)
			d.u(uint64(s.Kind))
			d.i(int64(s.Index))
			switch s.Kind {
			case obj.ConstSlot, obj.ParentSlot:
				switch s.Value.K() {
				case obj.KNil:
					d.s("n")
				case obj.KInt:
					d.s("i")
					d.i(s.Value.I())
				case obj.KStr:
					d.s("s")
					d.s(s.Value.S())
				case obj.KObj:
					add(s.Value)
					d.s("o")
					d.u(uint64(idx[s.Value.Obj()]))
				case obj.KBlock:
					d.s("b")
				}
			case obj.MethodSlot:
				d.s("m")
				d.s(s.Meth.Sel)
			}
		}
	}

	// Roots and builtin maps in fixed order, then the worklist: each
	// discovered anchor's map is scanned, which can discover more
	// anchors through its const/parent slots.
	add(obj.Obj(w.Lobby))
	add(obj.Obj(w.TrueObj))
	add(obj.Obj(w.FalseObj))
	add(obj.Obj(w.VectorProto))
	for _, m := range []*obj.Map{w.NilMap, w.IntMap, w.StrMap, w.BlockMap, w.VecMap} {
		scanMap(m)
	}
	for i := 0; i < len(out); i++ {
		scanMap(out[i].Map)
	}
	for _, o := range out {
		d.s("A")
		d.i(int64(o.Map.LoadOrd))
	}

	var sum [32]byte
	copy(sum[:], d.h.Sum(nil))
	return out, sum
}
