package image

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Wire layout: an 8-byte magic (which carries the format version),
// the sha256 of the payload, then the payload — uvarint/varint scalars
// and length-prefixed strings throughout. Decode verifies the checksum
// before parsing and bounds-checks every count against the bytes that
// remain, so truncated or bit-flipped images fail cleanly instead of
// panicking or over-allocating.
const imageMagic = "SELFIMG1"

type writer struct {
	b   bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *writer) u(v uint64) { w.b.Write(w.tmp[:binary.PutUvarint(w.tmp[:], v)]) }
func (w *writer) i(v int64)  { w.b.Write(w.tmp[:binary.PutVarint(w.tmp[:], v)]) }
func (w *writer) s(s string) { w.u(uint64(len(s))); w.b.WriteString(s) }
func (w *writer) byte(b byte) { w.b.WriteByte(b) }
func (w *writer) bool(v bool) {
	if v {
		w.b.WriteByte(1)
	} else {
		w.b.WriteByte(0)
	}
}

func (w *writer) val(v Val) {
	w.byte(v.Kind)
	switch v.Kind {
	case ValInt:
		w.i(v.I)
	case ValStr:
		w.s(v.S)
	case ValObj:
		w.u(uint64(v.Ref))
	}
}

func (w *writer) owner(o OwnerRef) {
	w.bool(o.Eval)
	if o.Eval {
		w.u(uint64(o.EvalIdx))
	} else {
		w.u(uint64(o.LoadOrd))
		w.s(o.Sel)
	}
}

// Encode serializes img (all fields except Hash, which it sets) to the
// wire format.
func Encode(img *Image) []byte {
	var w writer
	w.u(uint64(len(img.Sources)))
	for _, s := range img.Sources {
		w.s(s)
	}
	w.u(uint64(len(img.EvalSources)))
	for _, s := range img.EvalSources {
		w.s(s)
	}
	w.b.Write(img.WalkDigest[:])

	w.u(uint64(len(img.Maps)))
	for _, m := range img.Maps {
		w.bool(m.Runtime)
		if !m.Runtime {
			w.u(uint64(m.LoadOrd))
			continue
		}
		w.owner(m.Owner)
		w.u(uint64(m.LitOrd))
		w.u(uint64(len(m.SlotVals)))
		for _, sv := range m.SlotVals {
			w.u(uint64(sv.Idx))
			w.val(sv.V)
		}
	}

	w.u(uint64(len(img.Objects)))
	w.u(uint64(img.NumAnchors))
	for _, o := range img.Objects {
		w.u(uint64(o.MapIdx))
		w.u(uint64(len(o.Fields)))
		for _, v := range o.Fields {
			w.val(v)
		}
		w.u(uint64(len(o.Elems)))
		for _, v := range o.Elems {
			w.val(v)
		}
	}

	w.u(uint64(len(img.Manifest)))
	for _, m := range img.Manifest {
		w.bool(m.Block)
		if m.Block {
			w.owner(m.Owner)
			w.u(uint64(m.Ord))
			w.u(uint64(len(m.UpNames)))
			for _, n := range m.UpNames {
				w.s(n)
			}
		} else {
			w.bool(m.Meth.Eval)
			if m.Meth.Eval {
				w.u(uint64(m.Meth.EvalIdx))
			} else {
				w.u(uint64(m.Meth.MapIdx))
				w.s(m.Meth.Sel)
			}
			w.i(int64(m.RMapIdx))
		}
		w.s(m.Tier)
		w.i(m.Invocations)
		w.i(m.Backedges)
		w.bool(m.Requested)
	}

	payload := w.b.Bytes()
	sum := sha256.Sum256(payload)
	img.Hash = hex.EncodeToString(sum[:])
	out := make([]byte, 0, len(imageMagic)+len(sum)+len(payload))
	out = append(out, imageMagic...)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) rem() int { return len(r.b) - r.off }

func (r *reader) corrupt(what string) error {
	return fmt.Errorf("corrupt image: %s at offset %d", what, r.off)
}

func (r *reader) u() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, r.corrupt("bad uvarint")
	}
	r.off += n
	return v, nil
}

func (r *reader) i() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, r.corrupt("bad varint")
	}
	r.off += n
	return v, nil
}

// count reads a collection length and bounds it by the bytes left:
// every encoded element occupies at least one byte, so any larger
// count is corruption — rejecting it here keeps hostile inputs from
// driving huge allocations.
func (r *reader) count(what string) (int, error) {
	v, err := r.u()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.rem()) {
		return 0, r.corrupt(what + " count exceeds remaining bytes")
	}
	return int(v), nil
}

// index reads a non-negative index bounded by limit (exclusive).
func (r *reader) index(what string, limit int) (int, error) {
	v, err := r.u()
	if err != nil {
		return 0, err
	}
	if v >= uint64(limit) {
		return 0, r.corrupt(what + " index out of range")
	}
	return int(v), nil
}

func (r *reader) s() (string, error) {
	n, err := r.count("string")
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *reader) byte() (byte, error) {
	if r.rem() < 1 {
		return 0, r.corrupt("unexpected end")
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *reader) bool() (bool, error) {
	b, err := r.byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, r.corrupt("bad bool")
	}
	return b == 1, nil
}

func (r *reader) val(numObjects int) (Val, error) {
	k, err := r.byte()
	if err != nil {
		return Val{}, err
	}
	v := Val{Kind: k}
	switch k {
	case ValNil:
	case ValInt:
		if v.I, err = r.i(); err != nil {
			return Val{}, err
		}
	case ValStr:
		if v.S, err = r.s(); err != nil {
			return Val{}, err
		}
	case ValObj:
		if v.Ref, err = r.index("object ref", numObjects); err != nil {
			return Val{}, err
		}
	default:
		return Val{}, r.corrupt("bad value kind")
	}
	return v, nil
}

func (r *reader) owner(numEvals int) (OwnerRef, error) {
	var o OwnerRef
	var err error
	if o.Eval, err = r.bool(); err != nil {
		return o, err
	}
	if o.Eval {
		o.EvalIdx, err = r.index("eval owner", numEvals)
		return o, err
	}
	v, err := r.u()
	if err != nil {
		return o, err
	}
	o.LoadOrd = int(v) // bound against the replayed world at restore
	if o.LoadOrd < 0 {
		return o, r.corrupt("load ordinal overflow")
	}
	o.Sel, err = r.s()
	return o, err
}

// Decode parses and validates an encoded image. Any truncation,
// bit-flip or internal inconsistency yields an error; Decode never
// panics on hostile input and never returns a partially valid image.
func Decode(data []byte) (*Image, error) {
	if len(data) < len(imageMagic)+sha256.Size {
		return nil, fmt.Errorf("corrupt image: %d bytes is shorter than the header", len(data))
	}
	if string(data[:len(imageMagic)]) != imageMagic {
		return nil, fmt.Errorf("not a world image (bad magic)")
	}
	var sum [sha256.Size]byte
	copy(sum[:], data[len(imageMagic):])
	payload := data[len(imageMagic)+sha256.Size:]
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("corrupt image: payload checksum mismatch")
	}

	img := &Image{Hash: hex.EncodeToString(sum[:])}
	r := &reader{b: payload}

	n, err := r.count("sources")
	if err != nil {
		return nil, err
	}
	for k := 0; k < n; k++ {
		s, err := r.s()
		if err != nil {
			return nil, err
		}
		img.Sources = append(img.Sources, s)
	}
	if n, err = r.count("eval sources"); err != nil {
		return nil, err
	}
	for k := 0; k < n; k++ {
		s, err := r.s()
		if err != nil {
			return nil, err
		}
		img.EvalSources = append(img.EvalSources, s)
	}
	if r.rem() < len(img.WalkDigest) {
		return nil, r.corrupt("truncated digest")
	}
	copy(img.WalkDigest[:], r.b[r.off:])
	r.off += len(img.WalkDigest)

	numMaps, err := r.count("maps")
	if err != nil {
		return nil, err
	}
	for k := 0; k < numMaps; k++ {
		var m MapRec
		if m.Runtime, err = r.bool(); err != nil {
			return nil, err
		}
		if !m.Runtime {
			v, err := r.u()
			if err != nil {
				return nil, err
			}
			m.LoadOrd = int(v)
			if m.LoadOrd < 0 {
				return nil, r.corrupt("load ordinal overflow")
			}
			img.Maps = append(img.Maps, m)
			continue
		}
		if m.Owner, err = r.owner(len(img.EvalSources)); err != nil {
			return nil, err
		}
		v, err := r.u()
		if err != nil {
			return nil, err
		}
		m.LitOrd = int(v)
		if m.LitOrd < 0 {
			return nil, r.corrupt("literal ordinal overflow")
		}
		nsv, err := r.count("slot overrides")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nsv; j++ {
			var sv SlotVal
			iv, err := r.u()
			if err != nil {
				return nil, err
			}
			sv.Idx = int(iv)
			// Object refs inside map slot overrides are validated in
			// the post-pass once the object count is known.
			if sv.V, err = r.val(1 << 30); err != nil {
				return nil, err
			}
			m.SlotVals = append(m.SlotVals, sv)
		}
		img.Maps = append(img.Maps, m)
	}

	numObjs, err := r.count("objects")
	if err != nil {
		return nil, err
	}
	na, err := r.u()
	if err != nil {
		return nil, err
	}
	if na > uint64(numObjs) {
		return nil, r.corrupt("anchor count exceeds object count")
	}
	img.NumAnchors = int(na)
	for k := 0; k < numObjs; k++ {
		var o ObjRec
		if o.MapIdx, err = r.index("object map", numMaps); err != nil {
			return nil, err
		}
		nf, err := r.count("fields")
		if err != nil {
			return nil, err
		}
		for j := 0; j < nf; j++ {
			v, err := r.val(numObjs)
			if err != nil {
				return nil, err
			}
			o.Fields = append(o.Fields, v)
		}
		ne, err := r.count("elems")
		if err != nil {
			return nil, err
		}
		for j := 0; j < ne; j++ {
			v, err := r.val(numObjs)
			if err != nil {
				return nil, err
			}
			o.Elems = append(o.Elems, v)
		}
		img.Objects = append(img.Objects, o)
	}

	numMan, err := r.count("manifest")
	if err != nil {
		return nil, err
	}
	for k := 0; k < numMan; k++ {
		var m ManifestRec
		if m.Block, err = r.bool(); err != nil {
			return nil, err
		}
		if m.Block {
			if m.Owner, err = r.owner(len(img.EvalSources)); err != nil {
				return nil, err
			}
			v, err := r.u()
			if err != nil {
				return nil, err
			}
			m.Ord = int(v)
			if m.Ord < 0 {
				return nil, r.corrupt("block ordinal overflow")
			}
			nu, err := r.count("upnames")
			if err != nil {
				return nil, err
			}
			for j := 0; j < nu; j++ {
				s, err := r.s()
				if err != nil {
					return nil, err
				}
				m.UpNames = append(m.UpNames, s)
			}
		} else {
			if m.Meth.Eval, err = r.bool(); err != nil {
				return nil, err
			}
			if m.Meth.Eval {
				if m.Meth.EvalIdx, err = r.index("manifest eval method", len(img.EvalSources)); err != nil {
					return nil, err
				}
			} else {
				if m.Meth.MapIdx, err = r.index("manifest method map", numMaps); err != nil {
					return nil, err
				}
				if m.Meth.Sel, err = r.s(); err != nil {
					return nil, err
				}
			}
			rm, err := r.i()
			if err != nil {
				return nil, err
			}
			if rm < -1 || rm >= int64(numMaps) {
				return nil, r.corrupt("manifest rmap index out of range")
			}
			m.RMapIdx = int(rm)
		}
		if m.Tier, err = r.s(); err != nil {
			return nil, err
		}
		if m.Invocations, err = r.i(); err != nil {
			return nil, err
		}
		if m.Backedges, err = r.i(); err != nil {
			return nil, err
		}
		if m.Requested, err = r.bool(); err != nil {
			return nil, err
		}
		img.Manifest = append(img.Manifest, m)
	}
	if r.rem() != 0 {
		return nil, r.corrupt("trailing bytes")
	}

	// Post-pass: map slot overrides could not bound their object refs
	// while the object count was still unread.
	for _, m := range img.Maps {
		for _, sv := range m.SlotVals {
			if sv.V.Kind == ValObj && sv.V.Ref >= numObjs {
				return nil, fmt.Errorf("corrupt image: map slot override references object %d of %d", sv.V.Ref, numObjs)
			}
		}
	}
	return img, nil
}
