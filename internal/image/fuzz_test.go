package image

import (
	"bytes"
	"testing"
)

// seedImage builds a structurally rich image by hand: enough sections,
// reference kinds and nesting that mutations reach every decoder path.
func seedImage() *Image {
	img := &Image{
		Sources:     []string{"prelude text", "app = (| parent* = lobby |)."},
		EvalSources: []string{"1 + 2"},
		Maps: []MapRec{
			{LoadOrd: 0},
			{LoadOrd: 3},
			{
				Runtime: true,
				Owner:   OwnerRef{LoadOrd: 1, Sel: "mk"},
				LitOrd:  2,
				SlotVals: []SlotVal{
					{Idx: 0, V: Val{Kind: ValInt, I: -42}},
					{Idx: 2, V: Val{Kind: ValObj, Ref: 1}},
				},
			},
			{
				Runtime:  true,
				Owner:    OwnerRef{Eval: true, EvalIdx: 0},
				LitOrd:   0,
				SlotVals: []SlotVal{{Idx: 1, V: Val{Kind: ValStr, S: "s"}}},
			},
		},
		NumAnchors: 2,
		Objects: []ObjRec{
			{MapIdx: 0, Fields: []Val{{Kind: ValNil}, {Kind: ValInt, I: 7}}},
			{MapIdx: 1, Fields: []Val{{Kind: ValStr, S: "hello"}}},
			{MapIdx: 2, Elems: []Val{{Kind: ValObj, Ref: 0}, {Kind: ValObj, Ref: 2}}},
		},
		Manifest: []ManifestRec{
			{
				Meth: MethodRec{MapIdx: 1, Sel: "run"}, RMapIdx: 0,
				Tier: "optimizing", Invocations: 100, Backedges: 5, Requested: true,
			},
			{
				Meth: MethodRec{Eval: true, EvalIdx: 0}, RMapIdx: -1,
				Tier: "baseline",
			},
			{
				Block: true, Owner: OwnerRef{LoadOrd: 3, Sel: "each:"}, Ord: 1,
				UpNames: []string{"a", "b"}, Tier: "native", Invocations: 9,
			},
		},
	}
	copy(img.WalkDigest[:], bytes.Repeat([]byte{0xAB, 0xCD}, 16))
	return img
}

// FuzzImageDecode throws truncated, bit-flipped and arbitrary bytes at
// Decode. The contract under attack: Decode never panics and never
// returns a partially-valid image — it either errors or produces an
// image whose every index is in range (Restore relies on that).
func FuzzImageDecode(f *testing.F) {
	valid := Encode(seedImage())
	f.Add(valid)
	// Truncations at section-ish boundaries and off-by-ones.
	for _, n := range []int{0, 1, 7, 8, 39, 40, 41, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// Bit flips sprinkled through header, checksum and payload.
	for _, pos := range []int{0, 8, 20, 40, 50, len(valid) - 2} {
		if pos < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0x40
			f.Add(mut)
		}
	}
	f.Add(append(append([]byte(nil), valid...), 0x00)) // trailing garbage
	f.Add([]byte("SELFIMG1"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			if img != nil {
				t.Fatal("Decode returned both an image and an error")
			}
			return
		}
		// Decode accepted the bytes: every cross-reference must be in
		// range, exactly as Restore assumes.
		for _, m := range img.Maps {
			for _, sv := range m.SlotVals {
				checkVal(t, img, sv.V)
			}
			if m.Runtime && m.Owner.Eval && m.Owner.EvalIdx >= len(img.EvalSources) {
				t.Fatalf("map owner eval index %d out of range", m.Owner.EvalIdx)
			}
		}
		if img.NumAnchors > len(img.Objects) {
			t.Fatalf("NumAnchors %d > %d objects", img.NumAnchors, len(img.Objects))
		}
		for _, o := range img.Objects {
			if o.MapIdx < 0 || o.MapIdx >= len(img.Maps) {
				t.Fatalf("object map index %d out of range", o.MapIdx)
			}
			for _, v := range o.Fields {
				checkVal(t, img, v)
			}
			for _, v := range o.Elems {
				checkVal(t, img, v)
			}
		}
		for _, m := range img.Manifest {
			if !m.Block && !m.Meth.Eval && (m.Meth.MapIdx < 0 || m.Meth.MapIdx >= len(img.Maps)) {
				t.Fatalf("manifest method map index %d out of range", m.Meth.MapIdx)
			}
		}
	})
}

func checkVal(t *testing.T, img *Image, v Val) {
	t.Helper()
	if v.Kind == ValObj && (v.Ref < 0 || v.Ref >= len(img.Objects)) {
		t.Fatalf("object ref %d out of range (%d objects)", v.Ref, len(img.Objects))
	}
}

// TestEncodeDecodeRoundTrip pins the wire format: a decoded image is
// structurally identical to what was encoded, and the hash matches.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := seedImage()
	data := Encode(img)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode of freshly encoded image: %v", err)
	}
	if got.Hash != img.Hash || got.Hash == "" {
		t.Fatalf("hash mismatch: encode %q, decode %q", img.Hash, got.Hash)
	}
	re := Encode(got)
	if !bytes.Equal(re, data) {
		t.Fatal("re-encoding a decoded image produced different bytes")
	}
}

// TestDecodeRejectsCorruption spot-checks the fuzz property on the
// deterministic corpus, so plain `go test` covers it too.
func TestDecodeRejectsCorruption(t *testing.T) {
	valid := Encode(seedImage())
	for i := 0; i < len(valid); i++ {
		if _, err := Decode(valid[:i]); err == nil {
			t.Fatalf("accepted truncation to %d of %d bytes", i, len(valid))
		}
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); err == nil {
			t.Fatalf("accepted bit flip at byte %d", i)
		}
	}
	if _, err := Decode(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
}
