package image

import (
	"fmt"

	"selfgo/internal/ast"
	"selfgo/internal/obj"
)

// RestoredManifest is a manifest entry resolved back to live pointers
// in the restored world, ready to be compiled into a code cache.
type RestoredManifest struct {
	Meth    *obj.Method
	RMap    *obj.Map
	Blk     *ast.Block
	UpNames []string

	Tier        string
	Invocations int64
	Backedges   int64
	Requested   bool
}

// Restored reports what Restore wired into the world.
type Restored struct {
	Maps     []*obj.Map
	Manifest []RestoredManifest
	// Extras is the number of objects created beyond the replayed
	// anchors (run-time clones, vectors, and literal instances).
	Extras int
}

// Restore wires img's object state into w. The caller must have built
// w fresh and replayed img.Sources into it, in order, before calling;
// evalMeths[i] must be the scratch method of re-parsing
// img.EvalSources[i].
//
// Restore is two-phase: it resolves and validates every reference —
// including the structural digest of the anchor walk — before mutating
// anything, so an image that does not match the replayed sources (or
// is internally inconsistent despite its checksum) returns an error
// and leaves the world exactly as the replay built it.
func Restore(img *Image, w *obj.World, evalMeths []*obj.Method) (*Restored, error) {
	if len(evalMeths) != len(img.EvalSources) {
		return nil, fmt.Errorf("restore: %d eval methods for %d eval sources", len(evalMeths), len(img.EvalSources))
	}
	anchors, digest := walkAnchors(w)
	if digest != img.WalkDigest {
		return nil, fmt.Errorf("restore: replayed world does not match the image (structure digest mismatch); the image was saved from different sources")
	}
	if len(anchors) != img.NumAnchors {
		return nil, fmt.Errorf("restore: replay produced %d anchors, image recorded %d", len(anchors), img.NumAnchors)
	}

	loadMaps := w.LoadMaps()
	lits := map[*obj.Method][]*ast.ObjectLit{}
	blks := map[*obj.Method][]*ast.Block{}
	resolveOwner := func(ref OwnerRef) (*obj.Method, error) {
		if ref.Eval {
			// EvalIdx was bounds-checked by Decode.
			return evalMeths[ref.EvalIdx], nil
		}
		if ref.LoadOrd >= len(loadMaps) {
			return nil, fmt.Errorf("restore: owner load ordinal %d out of range (%d load maps)", ref.LoadOrd, len(loadMaps))
		}
		m := loadMaps[ref.LoadOrd]
		sl := m.SlotNamed(ref.Sel)
		if sl == nil || sl.Kind != obj.MethodSlot {
			return nil, fmt.Errorf("restore: map %q has no method slot %q", m.Name, ref.Sel)
		}
		return sl.Meth, nil
	}
	ownerLits := func(ref OwnerRef) ([]*ast.ObjectLit, error) {
		m, err := resolveOwner(ref)
		if err != nil {
			return nil, err
		}
		if _, ok := lits[m]; !ok {
			lits[m] = methodLits(m.Ast)
		}
		return lits[m], nil
	}
	ownerBlks := func(ref OwnerRef) ([]*ast.Block, error) {
		m, err := resolveOwner(ref)
		if err != nil {
			return nil, err
		}
		if _, ok := blks[m]; !ok {
			blks[m] = methodBlocks(m.Ast)
		}
		return blks[m], nil
	}

	// Phase 1a: the map table. Rebuilding a run-time map evaluates its
	// literal against the replayed world; recorded slot overrides are
	// applied in phase 2. The stray objects BuildObject creates here
	// are unreachable if a later check fails, so this does not violate
	// the no-partial-world rule: the replayed structure is untouched.
	maps := make([]*obj.Map, len(img.Maps))
	for i, rec := range img.Maps {
		if !rec.Runtime {
			if rec.LoadOrd >= len(loadMaps) {
				return nil, fmt.Errorf("restore: map load ordinal %d out of range (%d load maps)", rec.LoadOrd, len(loadMaps))
			}
			maps[i] = loadMaps[rec.LoadOrd]
			continue
		}
		ls, err := ownerLits(rec.Owner)
		if err != nil {
			return nil, err
		}
		if rec.LitOrd >= len(ls) {
			return nil, fmt.Errorf("restore: literal ordinal %d out of range (%d literals in owner)", rec.LitOrd, len(ls))
		}
		v, err := w.BuildObject(ls[rec.LitOrd])
		if err != nil {
			return nil, fmt.Errorf("restore: rebuilding literal map: %w", err)
		}
		maps[i] = v.Obj().Map
		for _, sv := range rec.SlotVals {
			if sv.Idx >= len(maps[i].Slots) {
				return nil, fmt.Errorf("restore: slot override %d out of range on map %q", sv.Idx, maps[i].Name)
			}
			if k := maps[i].Slots[sv.Idx].Kind; k != obj.ConstSlot && k != obj.ParentSlot {
				return nil, fmt.Errorf("restore: slot override %d on map %q is not a const/parent slot", sv.Idx, maps[i].Name)
			}
		}
	}

	// Phase 1b: the object table — anchors are the replayed objects,
	// extras are created fresh (permanent heap, epoch 0).
	objs := make([]*obj.Object, len(img.Objects))
	for i, rec := range img.Objects {
		m := maps[rec.MapIdx]
		if i < img.NumAnchors {
			if anchors[i].Map != m {
				return nil, fmt.Errorf("restore: anchor %d map mismatch (replayed %q, image %q)", i, anchors[i].Map.Name, m.Name)
			}
			objs[i] = anchors[i]
		} else {
			objs[i] = &obj.Object{Map: m}
		}
		if len(rec.Fields) != m.NFields {
			return nil, fmt.Errorf("restore: object %d has %d fields, map %q declares %d", i, len(rec.Fields), m.Name, m.NFields)
		}
		if len(rec.Elems) > 0 && !m.Indexable {
			return nil, fmt.Errorf("restore: object %d has elements but map %q is not indexable", i, m.Name)
		}
	}

	// Phase 1c: the manifest, resolved against the rebuilt maps and
	// re-parsed eval programs.
	out := &Restored{Maps: maps, Extras: len(img.Objects) - img.NumAnchors}
	for _, rec := range img.Manifest {
		rm := RestoredManifest{
			UpNames:     rec.UpNames,
			Tier:        rec.Tier,
			Invocations: rec.Invocations,
			Backedges:   rec.Backedges,
			Requested:   rec.Requested,
		}
		if rec.Block {
			bs, err := ownerBlks(rec.Owner)
			if err != nil {
				return nil, err
			}
			if rec.Ord >= len(bs) {
				return nil, fmt.Errorf("restore: block ordinal %d out of range (%d blocks in owner)", rec.Ord, len(bs))
			}
			rm.Blk = bs[rec.Ord]
		} else if rec.Meth.Eval {
			rm.Meth = evalMeths[rec.Meth.EvalIdx]
		} else {
			m := maps[rec.Meth.MapIdx]
			sl := m.SlotNamed(rec.Meth.Sel)
			if sl == nil || sl.Kind != obj.MethodSlot {
				return nil, fmt.Errorf("restore: manifest method %q missing on map %q", rec.Meth.Sel, m.Name)
			}
			rm.Meth = sl.Meth
		}
		if !rec.Block && rec.RMapIdx >= 0 {
			rm.RMap = maps[rec.RMapIdx]
		}
		out.Manifest = append(out.Manifest, rm)
	}

	// Phase 2: nothing can fail anymore — patch state in. Strings are
	// re-interned by content into the current generation, so restored
	// strings compare Eq with freshly interned ones even though the
	// saving process's intern table (and any generations it dropped)
	// is gone.
	val := func(v Val) obj.Value {
		switch v.Kind {
		case ValInt:
			return obj.Int(v.I)
		case ValStr:
			return obj.Str(v.S)
		case ValObj:
			return obj.Obj(objs[v.Ref])
		default:
			return obj.Nil()
		}
	}
	vals := func(vs []Val) []obj.Value {
		if len(vs) == 0 {
			return nil
		}
		out := make([]obj.Value, len(vs))
		for i, v := range vs {
			out[i] = val(v)
		}
		return out
	}
	for i, rec := range img.Objects {
		objs[i].Fields = vals(rec.Fields)
		objs[i].Elems = vals(rec.Elems)
	}
	for i, rec := range img.Maps {
		for _, sv := range rec.SlotVals {
			maps[i].Slots[sv.Idx].Value = val(sv.V)
		}
	}
	if w.ShapeTracking {
		// The direct Fields writes above bypassed NoteFieldStore; seed
		// the per-slot type tags from the restored values so typed-shape
		// facts are available (and correct) from the first post-boot run.
		for _, o := range objs {
			for idx, f := range o.Fields {
				w.NoteFieldStore(o.Map, idx, f)
			}
		}
	}
	return out, nil
}
