// Package wire is the JSON vocabulary of the serving layer: request
// decoding with validation and limits for selfserved's endpoints, and
// the result encoding shared by the server's responses and `selfrun
// -json` — one set of types, so the two output paths cannot drift.
package wire

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"selfgo/internal/ast"
	"selfgo/internal/obj"
	"selfgo/internal/vm"
)

// Budget mirrors vm.Budget on the wire. Zero fields are "no limit";
// the server additionally clamps every field to its configured caps.
type Budget struct {
	MaxInstrs int64 `json:"max_instrs,omitempty"`
	MaxAllocs int64 `json:"max_allocs,omitempty"`
	// MaxBytes bounds modelled vector/clone storage bytes; see
	// vm.Budget.MaxBytes.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	MaxDepth int   `json:"max_depth,omitempty"`
	// PollEvery tightens the cooperative budget/cancellation poll
	// stride for this request (see vm.Budget.PollEvery).
	PollEvery int64 `json:"poll_every,omitempty"`
}

// EvalRequest is the body of POST /eval: either an expression sequence
// (expr) or a call to a lobby selector (entry + integer args), with an
// optional program — lobby slot definitions loaded into the shared
// world once per distinct text — and per-request limits.
type EvalRequest struct {
	Program    string  `json:"program,omitempty"`
	Expr       string  `json:"expr,omitempty"`
	Entry      string  `json:"entry,omitempty"`
	Args       []int64 `json:"args,omitempty"`
	Budget     *Budget `json:"budget,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

// RunRequest is the body of POST /run: a named benchmark.
type RunRequest struct {
	Bench      string  `json:"bench"`
	Budget     *Budget `json:"budget,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

// Limits bounds request decoding. Zero fields take the defaults.
type Limits struct {
	MaxBody    int64 // bytes of request body
	MaxProgram int   // bytes of the program field
	MaxExpr    int   // bytes of the expr field
	MaxArgs    int   // entry arguments
}

// Default decoding limits.
const (
	DefaultMaxBody    = 1 << 20 // 1 MiB
	DefaultMaxProgram = 256 << 10
	DefaultMaxExpr    = 64 << 10
	DefaultMaxArgs    = 16
)

func (l Limits) withDefaults() Limits {
	if l.MaxBody <= 0 {
		l.MaxBody = DefaultMaxBody
	}
	if l.MaxProgram <= 0 {
		l.MaxProgram = DefaultMaxProgram
	}
	if l.MaxExpr <= 0 {
		l.MaxExpr = DefaultMaxExpr
	}
	if l.MaxArgs <= 0 {
		l.MaxArgs = DefaultMaxArgs
	}
	return l
}

// RequestError is a rejected request: Status is the HTTP status the
// server should answer with (400 malformed, 413 too large, 422
// semantically invalid).
type RequestError struct {
	Status int
	Msg    string
}

func (e *RequestError) Error() string { return e.Msg }

func badRequest(format string, args ...any) error {
	return &RequestError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// readBody reads at most limit bytes, distinguishing "too large" from
// read errors.
func readBody(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, badRequest("reading body: %v", err)
	}
	if int64(len(data)) > limit {
		return nil, &RequestError{Status: http.StatusRequestEntityTooLarge,
			Msg: fmt.Sprintf("body exceeds %d bytes", limit)}
	}
	return data, nil
}

// DecodeEvalRequest reads, parses and validates an /eval body.
func DecodeEvalRequest(r io.Reader, limits Limits) (*EvalRequest, error) {
	limits = limits.withDefaults()
	data, err := readBody(r, limits.MaxBody)
	if err != nil {
		return nil, err
	}
	var req EvalRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, badRequest("malformed JSON: %v", err)
	}
	if err := req.validate(limits); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeRunRequest reads, parses and validates a /run body.
func DecodeRunRequest(r io.Reader, limits Limits) (*RunRequest, error) {
	limits = limits.withDefaults()
	data, err := readBody(r, limits.MaxBody)
	if err != nil {
		return nil, err
	}
	var req RunRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, badRequest("malformed JSON: %v", err)
	}
	if req.Bench == "" {
		return nil, badRequest("bench is required")
	}
	if !validName(req.Bench) {
		return nil, badRequest("bad bench name %q", req.Bench)
	}
	if err := validateBudget(req.Budget); err != nil {
		return nil, err
	}
	if req.DeadlineMS < 0 {
		return nil, badRequest("deadline_ms must be >= 0")
	}
	return &req, nil
}

func (req *EvalRequest) validate(limits Limits) error {
	if len(req.Program) > limits.MaxProgram {
		return &RequestError{Status: http.StatusRequestEntityTooLarge,
			Msg: fmt.Sprintf("program exceeds %d bytes", limits.MaxProgram)}
	}
	if len(req.Expr) > limits.MaxExpr {
		return &RequestError{Status: http.StatusRequestEntityTooLarge,
			Msg: fmt.Sprintf("expr exceeds %d bytes", limits.MaxExpr)}
	}
	switch {
	case req.Expr == "" && req.Entry == "":
		return badRequest("one of expr or entry is required")
	case req.Expr != "" && req.Entry != "":
		return badRequest("expr and entry are mutually exclusive")
	}
	if req.Entry != "" {
		if !validSelector(req.Entry) {
			return badRequest("bad entry selector %q", req.Entry)
		}
		if want := ast.NumArgs(req.Entry); want != len(req.Args) {
			return badRequest("entry %q takes %d argument(s), got %d", req.Entry, want, len(req.Args))
		}
	}
	if req.Expr != "" && len(req.Args) > 0 {
		return badRequest("args require an entry selector")
	}
	if len(req.Args) > limits.MaxArgs {
		return badRequest("too many args (max %d)", limits.MaxArgs)
	}
	if err := validateBudget(req.Budget); err != nil {
		return err
	}
	if req.DeadlineMS < 0 {
		return badRequest("deadline_ms must be >= 0")
	}
	return nil
}

func validateBudget(b *Budget) error {
	if b == nil {
		return nil
	}
	if b.MaxInstrs < 0 || b.MaxAllocs < 0 || b.MaxBytes < 0 || b.MaxDepth < 0 || b.PollEvery < 0 {
		return badRequest("budget fields must be >= 0")
	}
	return nil
}

// validSelector accepts unary ("richards"), keyword ("fib:", "at:Put:")
// and operator ("+") selectors — printable, no whitespace or quotes.
func validSelector(s string) bool {
	if s == "" || len(s) > 256 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c >= 0x7f || c == '"' || c == '\'' {
			return false
		}
	}
	return true
}

func validName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '-' || c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Affinity keys and request ids

// AffinityKey derives the cache-affinity key for a request body headed
// to endpoint ("/eval" or "/run"). The key is what a front router
// hashes onto replicas: two requests with the same key exercise the
// same compiled code (the same interned program text, eval expression
// or preloaded benchmark), so landing them on the same replica keeps
// that replica's code cache, inline caches and tier promotions warm.
//
// The derivation deliberately mirrors the server's own interning
// identity (internal/server hashes program and expr texts the same
// way), and it is byte-order independent of the JSON encoding: two
// bodies that decode to the same fields get the same key. Returns
// ok=false when the body does not decode — the router falls back to
// hashing the raw bytes, which still gives repeated identical bodies
// affinity.
func AffinityKey(endpoint string, body []byte) (key string, ok bool) {
	switch endpoint {
	case "/run":
		var req RunRequest
		if err := json.Unmarshal(body, &req); err != nil || req.Bench == "" {
			return "", false
		}
		return "bench:" + req.Bench, true
	case "/eval":
		var req EvalRequest
		if err := json.Unmarshal(body, &req); err != nil || (req.Expr == "" && req.Entry == "") {
			return "", false
		}
		h := sha256.New()
		io.WriteString(h, req.Program)
		h.Write([]byte{0xff})
		io.WriteString(h, req.Expr)
		h.Write([]byte{0xff})
		io.WriteString(h, req.Entry)
		return "eval:" + hex.EncodeToString(h.Sum(nil)[:12]), true
	}
	return "", false
}

// RawAffinityKey is the fallback key for bodies AffinityKey cannot
// decode: a hash of the raw bytes. Identical retransmissions still
// stick to one replica; everything else spreads.
func RawAffinityKey(body []byte) string {
	sum := sha256.Sum256(body)
	return "raw:" + hex.EncodeToString(sum[:12])
}

// RequestIDHeader carries the request id end to end: the router mints
// one (or forwards the client's), every replica echoes it on the
// response and stamps it into error bodies.
const RequestIDHeader = "X-Request-Id"

// ValidRequestID reports whether a client-supplied X-Request-Id is
// safe to propagate: non-empty, bounded, printable ASCII with no
// whitespace or quotes (it travels through headers, JSON bodies and
// log lines).
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c >= 0x7f || c == '"' || c == '\'' || c == '\\' {
			return false
		}
	}
	return true
}

// NewRequestID mints a fresh request id (16 random bytes, hex).
func NewRequestID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not a reason to fail a request; fall
		// back to a constant that is at least greppable.
		return "rid-entropy-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// ---------------------------------------------------------------------
// Result encoding

// RunStatsJSON is vm.RunStats on the wire. A reflection test pins the
// two structs field-for-field so new VM counters cannot silently miss
// the wire (and with it both selfrun -json and the server responses).
type RunStatsJSON struct {
	Cycles       int64 `json:"cycles"`
	Instrs       int64 `json:"instrs"`
	Sends        int64 `json:"sends"`
	ICHits       int64 `json:"ic_hits"`
	ICMisses     int64 `json:"ic_misses"`
	Calls        int64 `json:"calls"`
	TypeTests    int64 `json:"type_tests"`
	OvflChecks   int64 `json:"ovfl_checks"`
	BoundsChecks int64 `json:"bounds_checks"`
	BlockValues  int64 `json:"block_values"`
	Allocs       int64 `json:"allocs"`
	AllocBytes   int64 `json:"alloc_bytes"`
	MaxDepth     int   `json:"max_depth"`
	Promotions   int64 `json:"promotions"`
	Harvests     int64 `json:"harvests"`

	// Basic-block-versioning counters (zero under the split strategy).
	BBVVersions     int64 `json:"bbv_versions"`
	BBVCapHits      int64 `json:"bbv_cap_hits"`
	BBVElidedCtx    int64 `json:"bbv_elided_ctx"`
	BBVElidedShape  int64 `json:"bbv_elided_shape"`
	BBVVersionBytes int64 `json:"bbv_version_bytes"`
}

// NewRunStats converts the VM's counters.
func NewRunStats(st vm.RunStats) *RunStatsJSON {
	return &RunStatsJSON{
		Cycles: st.Cycles, Instrs: st.Instrs, Sends: st.Sends,
		ICHits: st.ICHits, ICMisses: st.ICMisses, Calls: st.Calls,
		TypeTests: st.TypeTests, OvflChecks: st.OvflChecks,
		BoundsChecks: st.BoundsChecks, BlockValues: st.BlockValues,
		Allocs: st.Allocs, AllocBytes: st.AllocBytes, MaxDepth: st.MaxDepth,
		Promotions: st.Promotions, Harvests: st.Harvests,
		BBVVersions: st.BBVVersions, BBVCapHits: st.BBVCapHits,
		BBVElidedCtx: st.BBVElidedCtx, BBVElidedShape: st.BBVElidedShape,
		BBVVersionBytes: st.BBVVersionBytes,
	}
}

// CompileJSON is vm.CompileRecord on the wire.
type CompileJSON struct {
	Methods     int   `json:"methods"`
	CodeBytes   int   `json:"code_bytes"`
	Degraded    int   `json:"degraded"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheWaits  int64 `json:"cache_waits"`
}

// NewCompile converts a compile record.
func NewCompile(c vm.CompileRecord) *CompileJSON {
	return &CompileJSON{
		Methods: c.Methods, CodeBytes: c.CodeBytes, Degraded: c.Degraded,
		CacheHits: c.CacheHits, CacheMisses: c.CacheMisses, CacheWaits: c.CacheWaits,
	}
}

// PromotionsJSON summarizes adaptive-tier promotion activity.
type PromotionsJSON struct {
	Installed     int64   `json:"installed"`
	Fails         int64   `json:"fails"`
	Discards      int64   `json:"discards"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
}

// ErrorJSON is a guest-level fault on the wire.
type ErrorJSON struct {
	Kind      string   `json:"kind"`
	Message   string   `json:"message"`
	Backtrace []string `json:"backtrace,omitempty"`
	// RequestID echoes the X-Request-Id the failed request carried (or
	// the one the server minted for it), so a failure seen at the
	// router can be matched to the replica's logs and metrics.
	RequestID string `json:"request_id,omitempty"`
}

// NewError renders err; RuntimeErrors carry their kind and Self-level
// backtrace, anything else maps to kind "error".
func NewError(err error) *ErrorJSON {
	out := &ErrorJSON{Kind: vm.KindError.String(), Message: err.Error()}
	var re *vm.RuntimeError
	if errors.As(err, &re) {
		out.Kind = re.Kind.String()
		for _, f := range re.Trace {
			out.Backtrace = append(out.Backtrace, f.String())
		}
	}
	return out
}

// Result is the shared run-result encoding: the body of a successful
// /eval or /run response, and the object `selfrun -json` prints.
type Result struct {
	Value         string          `json:"value"`
	Int           int64           `json:"int"`
	Run           *RunStatsJSON   `json:"run,omitempty"`
	Compile       *CompileJSON    `json:"compile,omitempty"`
	CompileTimeMS float64         `json:"compile_time_ms"`
	TierMode      string          `json:"tier_mode,omitempty"`
	Tiers         map[string]int  `json:"tiers,omitempty"`
	Promotions    *PromotionsJSON `json:"promotions,omitempty"`
	Bench         string          `json:"bench,omitempty"`
	CheckOK       *bool           `json:"check_ok,omitempty"`
	Error         *ErrorJSON      `json:"error,omitempty"`
}

// NewResult builds the shared encoding from a finished run.
func NewResult(v obj.Value, run vm.RunStats, comp vm.CompileRecord, compileTime time.Duration) *Result {
	return &Result{
		Value:         v.String(),
		Int:           v.I(),
		Run:           NewRunStats(run),
		Compile:       NewCompile(comp),
		CompileTimeMS: float64(compileTime) / float64(time.Millisecond),
	}
}

// Encode writes r as indented JSON.
func (r *Result) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders r for logs and tests.
func (r *Result) String() string {
	var b strings.Builder
	_ = r.Encode(&b)
	return b.String()
}
