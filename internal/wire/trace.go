package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceRecord is one request of a recorded serving trace — the jsonl
// vocabulary selfload's -record and -replay share. A trace captures
// the shape of a live request stream well enough to re-issue it:
// when each request arrived (as a delta from the previous one, so a
// replay can stretch or compress time uniformly), where it went, the
// exact body, and the affinity key a router would derive for it (for
// offline analysis; replays re-derive routing from the body).
type TraceRecord struct {
	// DeltaUS is the arrival gap to the previous record in
	// microseconds (0 for the first record).
	DeltaUS int64 `json:"dt_us"`
	// Endpoint is the request path ("/eval" or "/run").
	Endpoint string `json:"endpoint"`
	// Body is the JSON request body, verbatim.
	Body string `json:"body"`
	// Tenant is the X-Tenant header, if the request carried one.
	Tenant string `json:"tenant,omitempty"`
	// Key is the affinity key derived at record time (AffinityKey,
	// else RawAffinityKey).
	Key string `json:"key,omitempty"`
}

// TraceWriter appends TraceRecords to a stream as jsonl, stamping
// arrival deltas from a monotonic clock. Safe for concurrent use: a
// closed-loop load generator records from many worker goroutines.
type TraceWriter struct {
	mu   sync.Mutex
	w    *bufio.Writer
	last time.Time
}

// NewTraceWriter wraps w. Call Flush before closing the underlying
// file.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// Record appends one request, stamping DeltaUS from the previous call.
func (t *TraceWriter) Record(endpoint, body, tenant string) error {
	key, ok := AffinityKey(endpoint, []byte(body))
	if !ok {
		key = RawAffinityKey([]byte(body))
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var delta int64
	if !t.last.IsZero() {
		delta = now.Sub(t.last).Microseconds()
		if delta < 0 {
			delta = 0
		}
	}
	t.last = now
	rec := TraceRecord{DeltaUS: delta, Endpoint: endpoint, Body: body, Tenant: tenant, Key: key}
	b, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = t.w.Write(b)
	return err
}

// Flush drains the buffer to the underlying writer.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// ReadTrace parses a jsonl trace. Blank lines are skipped; a malformed
// line fails the whole read with its line number — a trace is a
// reproducibility artifact, so silent truncation would be worse than
// an error.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 4<<20) // bodies can be large
	var out []TraceRecord
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %v", line, err)
		}
		if rec.Endpoint != "/eval" && rec.Endpoint != "/run" {
			return nil, fmt.Errorf("trace line %d: unknown endpoint %q", line, rec.Endpoint)
		}
		if rec.DeltaUS < 0 {
			return nil, fmt.Errorf("trace line %d: negative dt_us", line)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
