package wire

import (
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"selfgo/internal/obj"
	"selfgo/internal/vm"
)

func decodeEval(t *testing.T, body string) (*EvalRequest, error) {
	t.Helper()
	return DecodeEvalRequest(strings.NewReader(body), Limits{})
}

func TestDecodeEvalRequestValid(t *testing.T) {
	req, err := decodeEval(t, `{"expr": "3 + 4", "budget": {"max_instrs": 1000}, "deadline_ms": 50}`)
	if err != nil {
		t.Fatal(err)
	}
	if req.Expr != "3 + 4" || req.Budget.MaxInstrs != 1000 || req.DeadlineMS != 50 {
		t.Fatalf("decoded %+v", req)
	}
	req, err = decodeEval(t, `{"entry": "fib:", "args": [10]}`)
	if err != nil {
		t.Fatal(err)
	}
	if req.Entry != "fib:" || len(req.Args) != 1 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestDecodeEvalRequestRejects(t *testing.T) {
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed", `{`, http.StatusBadRequest},
		{"trailing garbage", `{"expr":"1"} extra`, http.StatusBadRequest},
		{"neither expr nor entry", `{}`, http.StatusBadRequest},
		{"both expr and entry", `{"expr":"1","entry":"go"}`, http.StatusBadRequest},
		{"args with expr", `{"expr":"1","args":[1]}`, http.StatusBadRequest},
		{"arity mismatch", `{"entry":"fib:","args":[1,2]}`, http.StatusBadRequest},
		{"unary with args", `{"entry":"richards","args":[1]}`, http.StatusBadRequest},
		{"bad selector", `{"entry":"has space"}`, http.StatusBadRequest},
		{"negative budget", `{"expr":"1","budget":{"max_instrs":-1}}`, http.StatusBadRequest},
		{"negative deadline", `{"expr":"1","deadline_ms":-5}`, http.StatusBadRequest},
		{"huge expr", `{"expr":"` + strings.Repeat("x", DefaultMaxExpr+1) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		_, err := decodeEval(t, c.body)
		var re *RequestError
		if !errors.As(err, &re) {
			t.Errorf("%s: err = %v, want RequestError", c.name, err)
			continue
		}
		if re.Status != c.status {
			t.Errorf("%s: status = %d, want %d (%v)", c.name, re.Status, c.status, err)
		}
	}
}

func TestDecodeBodyTooLarge(t *testing.T) {
	big := `{"expr": "` + strings.Repeat("y", 2000) + `"}`
	_, err := DecodeEvalRequest(strings.NewReader(big), Limits{MaxBody: 100})
	var re *RequestError
	if !errors.As(err, &re) || re.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("err = %v, want 413", err)
	}
}

func TestDecodeRunRequest(t *testing.T) {
	req, err := DecodeRunRequest(strings.NewReader(`{"bench":"queens","deadline_ms":100}`), Limits{})
	if err != nil || req.Bench != "queens" {
		t.Fatalf("req=%+v err=%v", req, err)
	}
	for _, body := range []string{`{}`, `{"bench":"no/slash"}`, `{"bench":"x","budget":{"max_depth":-1}}`} {
		if _, err := DecodeRunRequest(strings.NewReader(body), Limits{}); err == nil {
			t.Errorf("body %s accepted", body)
		}
	}
}

// TestRunStatsDrift pins RunStatsJSON (and CompileJSON) to the VM's
// structs field-for-field: adding a counter to vm.RunStats without
// extending the wire encoding fails here, which is the whole point of
// sharing one encoding between selfrun -json and the server.
func TestRunStatsDrift(t *testing.T) {
	pairs := []struct {
		name     string
		vmType   reflect.Type
		wireType reflect.Type
	}{
		{"RunStats", reflect.TypeOf(vm.RunStats{}), reflect.TypeOf(RunStatsJSON{})},
		{"CompileRecord", reflect.TypeOf(vm.CompileRecord{}), reflect.TypeOf(CompileJSON{})},
	}
	for _, p := range pairs {
		if p.vmType.NumField() != p.wireType.NumField() {
			t.Errorf("%s: vm has %d fields, wire has %d — extend the wire encoding (and its constructor)",
				p.name, p.vmType.NumField(), p.wireType.NumField())
			continue
		}
		for i := 0; i < p.vmType.NumField(); i++ {
			vf, wf := p.vmType.Field(i), p.wireType.Field(i)
			if vf.Name != wf.Name {
				t.Errorf("%s field %d: vm %q vs wire %q", p.name, i, vf.Name, wf.Name)
			}
			if vf.Type != wf.Type {
				t.Errorf("%s.%s: vm type %v vs wire type %v", p.name, vf.Name, vf.Type, wf.Type)
			}
			if wf.Tag.Get("json") == "" {
				t.Errorf("%s.%s: missing json tag", p.name, wf.Name)
			}
		}
	}
}

// TestNewRunStatsRoundTrip: the constructor must copy every field (a
// struct-literal copy can silently drop one even when the shapes
// match).
func TestNewRunStatsRoundTrip(t *testing.T) {
	var st vm.RunStats
	rv := reflect.ValueOf(&st).Elem()
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).SetInt(int64(i + 1))
	}
	js := NewRunStats(st)
	jv := reflect.ValueOf(js).Elem()
	for i := 0; i < jv.NumField(); i++ {
		if jv.Field(i).Int() != int64(i+1) {
			t.Errorf("field %s not copied: got %d, want %d",
				jv.Type().Field(i).Name, jv.Field(i).Int(), i+1)
		}
	}
	var cr vm.CompileRecord
	cv := reflect.ValueOf(&cr).Elem()
	for i := 0; i < cv.NumField(); i++ {
		cv.Field(i).SetInt(int64(i + 1))
	}
	cj := NewCompile(cr)
	cjv := reflect.ValueOf(cj).Elem()
	for i := 0; i < cjv.NumField(); i++ {
		if cjv.Field(i).Int() != int64(i+1) {
			t.Errorf("compile field %s not copied", cjv.Type().Field(i).Name)
		}
	}
}

func TestNewResultAndError(t *testing.T) {
	res := NewResult(obj.Int(42), vm.RunStats{Cycles: 10, Instrs: 5}, vm.CompileRecord{Methods: 2}, 1500*time.Microsecond)
	if res.Int != 42 || res.Value != "42" || res.Run.Cycles != 10 || res.Compile.Methods != 2 {
		t.Fatalf("result %+v", res)
	}
	if res.CompileTimeMS != 1.5 {
		t.Fatalf("compile ms = %v", res.CompileTimeMS)
	}
	var buf strings.Builder
	if err := res.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Int != 42 || back.Run.Cycles != 10 {
		t.Fatalf("round trip %+v", back)
	}

	re := &vm.RuntimeError{Kind: vm.KindOutOfFuel, Msg: "out of fuel",
		Trace: []vm.TraceFrame{{Name: "lobby>>spin", PC: 3}}}
	ej := NewError(re)
	if ej.Kind != "outOfFuel" || len(ej.Backtrace) != 1 {
		t.Fatalf("error json %+v", ej)
	}
	if ej = NewError(errors.New("plain")); ej.Kind != "error" || ej.Message != "plain" {
		t.Fatalf("plain error json %+v", ej)
	}
}
