package wire

import (
	"strings"
	"sync"
	"testing"
)

func TestAffinityKeyStable(t *testing.T) {
	// Field order and whitespace in the JSON must not change the key:
	// the key is derived from the decoded fields, not the bytes.
	k1, ok1 := AffinityKey("/eval", []byte(`{"expr": "3 + 4", "deadline_ms": 50}`))
	k2, ok2 := AffinityKey("/eval", []byte(`{"deadline_ms":99,"expr":"3 + 4"}`))
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("same expr, different keys: %q/%v vs %q/%v", k1, ok1, k2, ok2)
	}
	if !strings.HasPrefix(k1, "eval:") {
		t.Fatalf("eval key %q", k1)
	}
	// Different exprs must (overwhelmingly) differ.
	k3, _ := AffinityKey("/eval", []byte(`{"expr": "3 + 5"}`))
	if k3 == k1 {
		t.Fatalf("distinct exprs share key %q", k1)
	}
	// A program load is part of the identity: same expr against a
	// different program is different compiled code.
	k4, _ := AffinityKey("/eval", []byte(`{"expr": "3 + 4", "program": "f = ( 1 )."}`))
	if k4 == k1 {
		t.Fatal("program text ignored in affinity key")
	}
	// Entry calls key on the selector, not the args — all fib: calls
	// share one customized method.
	k5, _ := AffinityKey("/eval", []byte(`{"entry": "fib:", "args": [10]}`))
	k6, _ := AffinityKey("/eval", []byte(`{"entry": "fib:", "args": [25]}`))
	if k5 != k6 {
		t.Fatalf("same entry, different keys: %q vs %q", k5, k6)
	}
}

func TestAffinityKeyRun(t *testing.T) {
	k, ok := AffinityKey("/run", []byte(`{"bench": "richards"}`))
	if !ok || k != "bench:richards" {
		t.Fatalf("run key %q ok=%v", k, ok)
	}
	if _, ok := AffinityKey("/run", []byte(`{}`)); ok {
		t.Fatal("empty bench decoded to a key")
	}
}

func TestAffinityKeyFallback(t *testing.T) {
	for _, c := range []struct{ endpoint, body string }{
		{"/eval", `{`},                // malformed
		{"/eval", `{}`},               // no expr or entry
		{"/metrics", `{"expr": "1"}`}, // not a routed endpoint
	} {
		if k, ok := AffinityKey(c.endpoint, []byte(c.body)); ok {
			t.Errorf("%s %s: unexpectedly keyed to %q", c.endpoint, c.body, k)
		}
	}
	r1 := RawAffinityKey([]byte("abc"))
	r2 := RawAffinityKey([]byte("abc"))
	r3 := RawAffinityKey([]byte("abd"))
	if r1 != r2 || r1 == r3 || !strings.HasPrefix(r1, "raw:") {
		t.Fatalf("raw keys %q %q %q", r1, r2, r3)
	}
}

func TestValidRequestID(t *testing.T) {
	for _, ok := range []string{"abc", "req-123", "A_b.c:9", strings.Repeat("x", 128)} {
		if !ValidRequestID(ok) {
			t.Errorf("%q rejected", ok)
		}
	}
	for _, bad := range []string{"", "has space", "tab\there", `q"uote`, "back\\slash",
		strings.Repeat("x", 129), "new\nline", "ünïcode"} {
		if ValidRequestID(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
	id := NewRequestID()
	if !ValidRequestID(id) || len(id) != 32 {
		t.Fatalf("minted id %q invalid", id)
	}
	if id == NewRequestID() {
		t.Fatal("two minted ids collided")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b)
	if err := tw.Record("/eval", `{"expr": "1 + 1"}`, ""); err != nil {
		t.Fatal(err)
	}
	if err := tw.Record("/run", `{"bench": "sumTo"}`, "acme"); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].DeltaUS != 0 {
		t.Fatalf("first record dt_us %d, want 0", recs[0].DeltaUS)
	}
	if recs[0].Endpoint != "/eval" || recs[0].Body != `{"expr": "1 + 1"}` {
		t.Fatalf("record 0: %+v", recs[0])
	}
	wantKey, _ := AffinityKey("/eval", []byte(recs[0].Body))
	if recs[0].Key != wantKey {
		t.Fatalf("record 0 key %q, want %q", recs[0].Key, wantKey)
	}
	if recs[1].Tenant != "acme" || recs[1].Key != "bench:sumTo" {
		t.Fatalf("record 1: %+v", recs[1])
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex // strings.Builder is not goroutine-safe; the writer's lock only covers its own state
	tw := NewTraceWriter(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := tw.Record("/eval", `{"expr": "2 + 2"}`, ""); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("got %d records, want 200", len(recs))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestTraceRejectsMalformed(t *testing.T) {
	for _, c := range []string{
		`{"dt_us": 0, "endpoint": "/evil", "body": "{}"}`,
		`{"dt_us": -5, "endpoint": "/eval", "body": "{}"}`,
		`not json`,
	} {
		if _, err := ReadTrace(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Blank lines are fine.
	recs, err := ReadTrace(strings.NewReader("\n" + `{"dt_us":0,"endpoint":"/eval","body":"{}"}` + "\n\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("blank-line trace: %v, %d records", err, len(recs))
	}
}
