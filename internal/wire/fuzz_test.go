package wire

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func encodeRequest(r *EvalRequest) (string, error) {
	b, err := json.Marshal(r)
	return string(b), err
}

// FuzzDecodeEvalRequest fuzzes the server's request decoder: whatever
// the bytes, decoding must not panic, must respect the byte limits,
// and any accepted request must satisfy the documented invariants
// (exactly one of expr/entry, non-negative budget and deadline, arity
// match). Accepted requests must also survive a decode of their
// re-encoded form.
func FuzzDecodeEvalRequest(f *testing.F) {
	seeds := []string{
		`{"expr": "3 + 4"}`,
		`{"expr": "| s <- 0 | 1 upTo: 10 Do: [ :i | s: s + i ]. s"}`,
		`{"entry": "richards"}`,
		`{"entry": "fib:", "args": [30]}`,
		`{"entry": "at:Put:", "args": [1, 2]}`,
		`{"program": "double: n = ( n + n ).", "entry": "double:", "args": [21]}`,
		`{"expr": "1", "budget": {"max_instrs": 100000, "max_allocs": 50, "max_depth": 10, "poll_every": 64}}`,
		`{"expr": "1", "deadline_ms": 250}`,
		`{"expr": "1", "budget": {"max_instrs": -1}}`,
		`{"expr": "1", "deadline_ms": -9}`,
		`{"entry": "fib:", "args": [1, 2, 3]}`,
		`{"expr": "1", "entry": "both"}`,
		`{"args": [1]}`,
		`{}`,
		`{"expr": "1", "unknown_field": {"nested": [1, 2, {"deep": true}]}}`,
		`{"budget": {"max_instrs": 9223372036854775807}, "expr": "x"}`,
		`{"budget": {"max_instrs": 9223372036854775808}, "expr": "x"}`, // int64 overflow
		`{"expr": 42}`,
		`{"args": "not an array", "entry": "f:"}`,
		`[1,2,3]`,
		`null`,
		`"just a string"`,
		`{"expr":"` + strings.Repeat("a", 200) + `"}`,
		`{"entry":"bad sel"}`,
		"{\"entry\":\"\x00\"}",
		"\xff\xfe not json",
		`{"expr":"1"} trailing`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	limits := Limits{MaxBody: 4096, MaxProgram: 1024, MaxExpr: 512, MaxArgs: 4}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeEvalRequest(strings.NewReader(string(data)), limits)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("non-RequestError from decoder: %T %v", err, err)
			}
			if re.Status < 400 || re.Status > 499 {
				t.Fatalf("decoder rejected with non-4xx status %d", re.Status)
			}
			return
		}
		// Accepted: the invariants the server relies on must hold.
		if (req.Expr == "") == (req.Entry == "") {
			t.Fatalf("accepted request without exactly one of expr/entry: %+v", req)
		}
		if len(req.Program) > limits.MaxProgram || len(req.Expr) > limits.MaxExpr || len(req.Args) > limits.MaxArgs {
			t.Fatalf("accepted request beyond limits: %+v", req)
		}
		if b := req.Budget; b != nil && (b.MaxInstrs < 0 || b.MaxAllocs < 0 || b.MaxDepth < 0 || b.PollEvery < 0) {
			t.Fatalf("accepted negative budget: %+v", b)
		}
		if req.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline: %+v", req)
		}
		// Round trip: re-encoding an accepted request and decoding it
		// again must accept and agree.
		enc, err := encodeRequest(req)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodeEvalRequest(strings.NewReader(enc), limits)
		if err != nil {
			t.Fatalf("re-decode rejected %q: %v", enc, err)
		}
		if again.Expr != req.Expr || again.Entry != req.Entry || len(again.Args) != len(req.Args) {
			t.Fatalf("round trip drift: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeRunRequest covers the smaller /run decoder the same way.
func FuzzDecodeRunRequest(f *testing.F) {
	for _, s := range []string{
		`{"bench": "queens"}`,
		`{"bench": "richards", "deadline_ms": 1000}`,
		`{"bench": ""}`,
		`{"bench": "a/b"}`,
		`{"bench": "x", "budget": {"max_instrs": -3}}`,
		`{`,
		`{"bench": "` + strings.Repeat("b", 300) + `"}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRunRequest(strings.NewReader(string(data)), Limits{MaxBody: 2048})
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("non-RequestError: %T %v", err, err)
			}
			return
		}
		if !validName(req.Bench) {
			t.Fatalf("accepted bad bench name %q", req.Bench)
		}
	})
}
