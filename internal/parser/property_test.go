package parser

import (
	"fmt"
	"math/rand"
	"testing"
)

// genExpr produces a random expression's source text with a bounded
// depth, used for the reparse-stability property.
func genExpr(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(1000))
		case 1:
			return fmt.Sprintf("v%d", r.Intn(5))
		case 2:
			return "'s'"
		default:
			return "self"
		}
	}
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", genExpr(r, depth-1), genExpr(r, depth-1))
	case 1:
		return fmt.Sprintf("(%s foo)", genExpr(r, depth-1))
	case 2:
		return fmt.Sprintf("(%s at: %s Put: %s)", genExpr(r, depth-1), genExpr(r, depth-1), genExpr(r, depth-1))
	case 3:
		return fmt.Sprintf("[ :p | %s ]", genExpr(r, depth-1))
	case 4:
		return fmt.Sprintf("(%s max: %s)", genExpr(r, depth-1), genExpr(r, depth-1))
	default:
		return fmt.Sprintf("(%s < %s)", genExpr(r, depth-1), genExpr(r, depth-1))
	}
}

// TestReparseStability: parsing the String() rendering of a parsed
// expression yields an identical rendering — the printer and parser
// agree on the grammar.
func TestReparseStability(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		src := genExpr(r, 3)
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("generated source does not parse: %q: %v", src, err)
		}
		s1 := e1.String()
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("rendering does not reparse: %q -> %q: %v", src, s1, err)
		}
		if s2 := e2.String(); s2 != s1 {
			t.Fatalf("round-trip unstable:\n  src: %s\n  s1:  %s\n  s2:  %s", src, s1, s2)
		}
	}
}

// TestParserNeverPanics: arbitrary byte soup must produce errors, not
// panics.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	alphabet := []byte("abc:()[]|.^<->=+*'\" 0123456789_ABCdo")
	for i := 0; i < 2000; i++ {
		n := r.Intn(40)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[r.Intn(len(alphabet))]
		}
		src := string(buf)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("parser panicked on %q: %v", src, rec)
				}
			}()
			_, _ = ParseFile(src)
			_, _ = ParseExpr(src)
		}()
	}
}

// TestParserTerminatesOnTruncations: every prefix of a real program
// parses (with errors) without hanging.
func TestParserTerminatesOnTruncations(t *testing.T) {
	full := `triangleNumber: n = ( | sum <- 0 |
	1 upTo: n Do: [ :i | sum: sum + i ].
	sum ).
obj = (| parent* = lobby. x <- 1. at: i Put: v = ( x: i + v ) |).`
	for i := 0; i <= len(full); i++ {
		_, _ = ParseFile(full[:i])
	}
}

// TestDeeplyNestedExpressions: the parser handles deep nesting without
// stack trouble at reasonable depths.
func TestDeeplyNestedExpressions(t *testing.T) {
	src := ""
	for i := 0; i < 200; i++ {
		src += "("
	}
	src += "1"
	for i := 0; i < 200; i++ {
		src += " + 1)"
	}
	if _, err := ParseExpr(src); err != nil {
		t.Fatalf("deep nesting failed: %v", err)
	}
}

// TestKeywordNesting spot-checks the SELF capitalization rule in
// compound positions.
func TestKeywordNesting(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a foo: b bar: c", "(a foo: (b bar: c))"},
		{"a foo: b Bar: c", "(a foo: b Bar: c)"},
		{"x: computeFrom: y", "(<implicit> x: (<implicit> computeFrom: y))"},
		{"a foo: b + c Bar: d foo", "(a foo: (b + c) Bar: (d foo))"},
		{"i max: j min: k max: l", "(i max: (j min: (k max: l)))"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("%q parsed as %s, want %s", c.src, got, c.want)
		}
	}
}
