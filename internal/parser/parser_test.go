package parser

import (
	"strings"
	"testing"

	"selfgo/internal/ast"
)

func mustExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestExprShapes(t *testing.T) {
	cases := []struct{ src, want string }{
		{"3 + 4", "(3 + 4)"},
		{"3 + 4 * 5", "((3 + 4) * 5)"}, // SELF: equal precedence, left assoc
		{"x foo", "(x foo)"},
		{"x foo bar", "((x foo) bar)"},
		{"a at: 1 Put: 2", "(a at: 1 Put: 2)"},
		{"i max: j min: k", "(i max: (j min: k))"}, // lowercase keywords nest right
		{"sum: sum + i", "(<implicit> sum: (sum + i))"},
		{"^ x + 1", "^(x + 1)"},
		{"-5 + 3", "(-5 + 3)"},
		{"'hi' print", "('hi' print)"},
		{"(a + b) * c", "((a + b) * c)"},
	}
	for _, c := range cases {
		e := mustExpr(t, c.src)
		if got := e.String(); got != c.want {
			t.Errorf("%q parsed to %s, want %s", c.src, got, c.want)
		}
	}
}

func TestPrimCalls(t *testing.T) {
	e := mustExpr(t, "a _IntAdd: b IfFail: [ :e | 0 ]")
	pc, ok := e.(*ast.PrimCall)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if pc.Sel != "_IntAdd:IfFail:" {
		t.Errorf("sel = %q", pc.Sel)
	}
	if len(pc.Args) != 2 {
		t.Fatalf("args = %d", len(pc.Args))
	}
	if _, ok := pc.Args[1].(*ast.Block); !ok {
		t.Errorf("fail arg is %T, want Block", pc.Args[1])
	}

	e = mustExpr(t, "v _Clone")
	pc, ok = e.(*ast.PrimCall)
	if !ok || pc.Sel != "_Clone" || len(pc.Args) != 0 {
		t.Fatalf("got %v", e)
	}
}

func TestBlocks(t *testing.T) {
	e := mustExpr(t, "[ :i :j | i + j ]")
	b, ok := e.(*ast.Block)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(b.Params) != 2 || b.Params[0] != "i" || b.Params[1] != "j" {
		t.Errorf("params = %v", b.Params)
	}
	if len(b.Body) != 1 {
		t.Errorf("body len = %d", len(b.Body))
	}

	// Block with locals.
	e = mustExpr(t, "[ :i | | t <- 0 | t: t + i. t ]")
	b = e.(*ast.Block)
	if len(b.Locals) != 1 || b.Locals[0].Name != "t" {
		t.Errorf("locals = %v", b.Locals)
	}
	if len(b.Body) != 2 {
		t.Errorf("body len = %d", len(b.Body))
	}

	// Paramless block with locals.
	e = mustExpr(t, "[ | x | x ]")
	b = e.(*ast.Block)
	if len(b.Params) != 0 || len(b.Locals) != 1 {
		t.Errorf("got params=%v locals=%v", b.Params, b.Locals)
	}
}

func TestFileSlots(t *testing.T) {
	src := `
		counter <- 0.
		limit = 100.
		parent* = lobby.
		bump = ( counter: counter + 1 ).
		at: i Put: v = ( ^ v ).
		+ other = ( other ).
	`
	f, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Slots) != 6 {
		t.Fatalf("got %d slots: %v", len(f.Slots), f.Slots)
	}
	wantKinds := []ast.SlotKind{
		ast.DataSlot, ast.ConstSlot, ast.ParentSlot,
		ast.MethodSlot, ast.MethodSlot, ast.MethodSlot,
	}
	wantNames := []string{"counter", "limit", "parent", "bump", "at:Put:", "+"}
	for i, s := range f.Slots {
		if s.Kind != wantKinds[i] || s.Name != wantNames[i] {
			t.Errorf("slot %d = %s %q, want %s %q", i, s.Kind, s.Name, wantKinds[i], wantNames[i])
		}
	}
	if m := f.Slots[4].Method; len(m.Params) != 2 || m.Params[0] != "i" || m.Params[1] != "v" {
		t.Errorf("at:Put: params = %v", f.Slots[4].Method.Params)
	}
}

func TestMethodWithLocals(t *testing.T) {
	src := `triangleNumber: n = (
		| sum <- 0 |
		1 upTo: n Do: [ :i | sum: sum + i ].
		sum ).`
	f, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Slots) != 1 {
		t.Fatalf("slots = %v", f.Slots)
	}
	m := f.Slots[0].Method
	if m == nil || m.Sel != "triangleNumber:" {
		t.Fatalf("method = %v", m)
	}
	if len(m.Locals) != 1 || m.Locals[0].Name != "sum" {
		t.Errorf("locals = %v", m.Locals)
	}
	if len(m.Body) != 2 {
		t.Errorf("body = %v", m.Body)
	}
	km, ok := m.Body[0].(*ast.KeywordMsg)
	if !ok || km.Sel != "upTo:Do:" {
		t.Fatalf("body[0] = %v", m.Body[0])
	}
}

func TestObjectLiteral(t *testing.T) {
	e := mustExpr(t, "(| x <- 1. getX = ( x ). p* = nil |)")
	ol, ok := e.(*ast.ObjectLit)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(ol.Slots) != 3 {
		t.Fatalf("slots = %v", ol.Slots)
	}
	if ol.Slots[1].Kind != ast.MethodSlot {
		t.Errorf("getX kind = %v", ol.Slots[1].Kind)
	}
	if ol.Slots[2].Kind != ast.ParentSlot {
		t.Errorf("p kind = %v", ol.Slots[2].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"a at: ",
		"(| x <- |)",
		"[:i",
		"x = ",
		"1 +",
	} {
		if _, err := ParseExpr(src); err == nil {
			if _, err2 := ParseFile(src); err2 == nil {
				t.Errorf("no error for %q", src)
			}
		}
	}
}

func TestSelectorHelpers(t *testing.T) {
	if got := ast.SplitSelector("at:Put:"); len(got) != 2 || got[0] != "at:" || got[1] != "Put:" {
		t.Errorf("SplitSelector = %v", got)
	}
	if got := ast.SplitSelector("size"); len(got) != 1 || got[0] != "size" {
		t.Errorf("SplitSelector = %v", got)
	}
	for sel, n := range map[string]int{"size": 0, "+": 1, "at:": 1, "at:Put:": 2, "_IntAdd:IfFail:": 2} {
		if got := ast.NumArgs(sel); got != n {
			t.Errorf("NumArgs(%q) = %d, want %d", sel, got, n)
		}
	}
}

func TestWalk(t *testing.T) {
	e := mustExpr(t, "a foo: [ :i | i + (| x = 3 |) ] Bar: 2")
	var idents, ints int
	ast.Walk(e, func(x ast.Expr) {
		switch x.(type) {
		case *ast.Ident:
			idents++
		case *ast.IntLit:
			ints++
		}
	})
	if idents < 2 || ints < 1 {
		t.Errorf("idents=%d ints=%d", idents, ints)
	}
}

func TestBareSlotIsNilData(t *testing.T) {
	f, err := ParseFile("x. y <- 3.")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Slots) != 2 || f.Slots[0].Kind != ast.DataSlot {
		t.Fatalf("slots = %v", f.Slots)
	}
	if id, ok := f.Slots[0].Init.(*ast.Ident); !ok || id.Name != "nil" {
		t.Errorf("x init = %v", f.Slots[0].Init)
	}
}

func TestErrListTruncated(t *testing.T) {
	// Many errors should be truncated in the combined message.
	src := strings.Repeat("] ", 20)
	_, err := ParseFile(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "more errors") && strings.Count(err.Error(), ";") > 10 {
		t.Errorf("error not truncated: %v", err)
	}
}
