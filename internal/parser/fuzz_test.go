package parser

import (
	"os"
	"path/filepath"
	"testing"
)

func seedPrograms(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.self"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzParser: arbitrary input must never panic the parser (errors are
// fine), and the printer must be a fixpoint of the grammar — when an
// expression parses and its String() rendering reparses, the second
// rendering must be byte-identical to the first. Inputs whose rendering
// does not reparse (e.g. implicit-receiver sends print a <implicit>
// marker, escaped strings print raw) satisfy the property vacuously;
// what the fuzzer hunts is a rendering that reparses to a *different*
// tree, which would mean the printer and parser disagree about
// precedence or associativity.
func FuzzParser(f *testing.F) {
	seedPrograms(f)
	f.Add("x = ( 1 + 2 ).")
	f.Add("fib: n = ( (n < 2) ifTrue: [ n ] False: [ (fib: n - 1) + (fib: n - 2) ] ).")
	f.Add("o = (| parent* = lobby. v <- 0. bump = ( v: v + 1 ) |).")
	f.Add("1 + 2 * 3")
	f.Add("a foo: b bar: c Baz: d")
	f.Add("[ :a :b | | t | t: a. ^t max: b ] value: 1 With: 2")
	f.Add("( ( ( 1 ) ) )")
	f.Add("^'str' print")

	f.Fuzz(func(t *testing.T, src string) {
		// Files and expressions must both survive arbitrary input.
		_, _ = ParseFile(src)
		e1, err := ParseExpr(src)
		if err != nil {
			return
		}
		s1 := e1.String()
		e2, err := ParseExpr(s1)
		if err != nil {
			return // rendering uses non-source notation; vacuous
		}
		if s2 := e2.String(); s2 != s1 {
			t.Fatalf("printer/parser disagreement:\n  src: %q\n  s1:  %q\n  s2:  %q", src, s1, s2)
		}
	})
}
