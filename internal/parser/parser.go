// Package parser builds selfgo ASTs from source text.
//
// Grammar (SELF'90 style):
//
//	File        = { Slot "." } .
//	Slot        = ident "*" "=" Primary            (parent slot)
//	            | ident "<-" Primary               (data slot)
//	            | ident "=" Primary                (constant slot)
//	            | Pattern "=" "(" MethodBody ")"   (method slot)
//	Pattern     = ident | binop ident | keyword ident { Capkeyword ident } .
//	MethodBody  = [ "|" Locals "|" ] Statements .
//	Statements  = [ Expr { "." Expr } [ "." ] ] .
//	Expr        = "^" KeywordExpr | KeywordExpr .
//	KeywordExpr = Binary [ keyword KArg { Capkeyword KArg } ]
//	            | keyword KArg { Capkeyword KArg }             (implicit receiver)
//	            | Binary primkeyword Binary { Capkeyword Binary } .
//	KArg        = KeywordExpr starting at Binary (lowercase keywords nest rightward) .
//	Binary      = Unary { binop Unary } .                       (left assoc, no precedence)
//	Unary       = Primary { ident | _primitive } .
//	Primary     = int | "-" int | string | ident | "(" Expr ")"
//	            | "(|" { Slot "." } "|)" | Block .
//	Block       = "[" { ":" ident } [ "|" ] [ "|" Locals "|" ] Statements "]" .
//
// Capitalized keywords continue the current selector (at:Put:);
// lowercase keywords begin a nested send, exactly as in SELF.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"selfgo/internal/ast"
	"selfgo/internal/lexer"
	"selfgo/internal/token"
)

// Parser parses one source buffer.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// New returns a parser over src.
func New(src string) *Parser {
	l := lexer.New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	p := &Parser{toks: toks}
	p.errs = append(p.errs, l.Errors()...)
	return p
}

// ParseFile parses an entire source file of lobby slot definitions.
func ParseFile(src string) (*ast.File, error) {
	p := New(src)
	f := p.File()
	return f, p.Err()
}

// ParseExpr parses a single expression (used by tests and the REPL-ish
// tools).
func ParseExpr(src string) (ast.Expr, error) {
	p := New(src)
	e := p.Expr()
	if p.cur().Kind != token.EOF {
		p.errorf("trailing input at %s: %s", p.cur().Pos, p.cur())
	}
	return e, p.Err()
}

// ParseMethodBody parses "|locals| statements" as an anonymous method
// with the given parameter names. Used to compile scratch code.
func ParseMethodBody(src string, params ...string) (*ast.Method, error) {
	p := New(src)
	locals, body := p.methodBody(token.EOF)
	m := &ast.Method{Sel: "doIt", Params: params, Locals: locals, Body: body}
	return m, p.Err()
}

// Err combines all accumulated errors, or returns nil.
func (p *Parser) Err() error {
	if len(p.errs) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(p.errs))
	for _, e := range p.errs {
		msgs = append(msgs, e.Error())
	}
	if len(msgs) > 8 {
		msgs = append(msgs[:8], fmt.Sprintf("... and %d more errors", len(msgs)-8))
	}
	return fmt.Errorf("parse: %s", strings.Join(msgs, "; "))
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf(format, args...))
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k token.Kind) token.Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf("%s: expected %s, found %s", t.Pos, k, t)
		// Do not consume: let the caller resynchronize.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	return p.next()
}

func (p *Parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

// File parses the whole token stream as lobby slots.
func (p *Parser) File() *ast.File {
	f := &ast.File{}
	for p.cur().Kind != token.EOF {
		start := p.pos
		s := p.slot()
		if s != nil {
			f.Slots = append(f.Slots, s)
		}
		if !p.accept(token.Dot) && p.cur().Kind != token.EOF {
			p.errorf("%s: expected '.' after slot, found %s", p.cur().Pos, p.cur())
		}
		if p.pos == start { // no progress: skip a token to avoid looping
			p.next()
		}
	}
	return f
}

// slot parses one slot definition.
func (p *Parser) slot() *ast.Slot {
	t := p.cur()
	switch t.Kind {
	case token.Ident:
		name := p.next().Text
		switch p.cur().Kind {
		case token.Star: // parent slot: name* = value
			p.next()
			p.expect(token.Eq)
			return &ast.Slot{P: t.Pos, Kind: ast.ParentSlot, Name: name, Init: p.slotValue()}
		case token.Arrow: // data slot
			p.next()
			return &ast.Slot{P: t.Pos, Kind: ast.DataSlot, Name: name, Init: p.slotValue()}
		case token.Eq:
			p.next()
			if p.cur().Kind == token.LParen {
				m := p.methodLiteral(name, nil)
				return &ast.Slot{P: t.Pos, Kind: ast.MethodSlot, Name: name, Method: m}
			}
			return &ast.Slot{P: t.Pos, Kind: ast.ConstSlot, Name: name, Init: p.slotValue()}
		case token.Dot, token.VBar, token.EOF, token.RParen:
			// Bare name: nil-initialized data slot, "x." in a slot list.
			return &ast.Slot{P: t.Pos, Kind: ast.DataSlot, Name: name, Init: &ast.Ident{P: t.Pos, Name: "nil"}}
		default:
			p.errorf("%s: malformed slot %q: unexpected %s", t.Pos, name, p.cur())
			return nil
		}
	case token.BinOp, token.Star, token.Eq: // binary method slot: "+ x = ( ... )"
		op := p.next().Text
		arg := p.expect(token.Ident).Text
		p.expect(token.Eq)
		m := p.methodLiteral(op, []string{arg})
		return &ast.Slot{P: t.Pos, Kind: ast.MethodSlot, Name: op, Method: m}
	case token.Keyword: // keyword method slot: "at: i Put: v = ( ... )"
		sel := p.next().Text
		params := []string{p.expect(token.Ident).Text}
		for p.cur().Kind == token.CapKeyword {
			sel += p.next().Text
			params = append(params, p.expect(token.Ident).Text)
		}
		p.expect(token.Eq)
		m := p.methodLiteral(sel, params)
		return &ast.Slot{P: t.Pos, Kind: ast.MethodSlot, Name: sel, Method: m}
	default:
		p.errorf("%s: expected a slot definition, found %s", t.Pos, t)
		return nil
	}
}

// slotValue parses a slot initializer: a literal, object literal,
// negative number, block, or identifier (global reference).
func (p *Parser) slotValue() ast.Expr {
	return p.primary()
}

// methodLiteral parses "( body )" and wraps it in a Method.
func (p *Parser) methodLiteral(sel string, params []string) *ast.Method {
	pos := p.cur().Pos
	p.expect(token.LParen)
	locals, body := p.methodBody(token.RParen)
	p.expect(token.RParen)
	return &ast.Method{P: pos, Sel: sel, Params: params, Locals: locals, Body: body}
}

// methodBody parses optional locals then statements until the given
// closing token kind (not consumed).
func (p *Parser) methodBody(closer token.Kind) ([]*ast.Local, []ast.Expr) {
	var locals []*ast.Local
	if p.cur().Kind == token.VBar {
		p.next()
		locals = p.localDecls()
		p.expect(token.VBar)
	}
	return locals, p.statements(closer)
}

func (p *Parser) localDecls() []*ast.Local {
	var locals []*ast.Local
	for p.cur().Kind == token.Ident {
		l := &ast.Local{P: p.cur().Pos, Name: p.next().Text}
		if p.accept(token.Arrow) {
			l.Init = p.primary()
		}
		locals = append(locals, l)
		if !p.accept(token.Dot) {
			break
		}
	}
	return locals
}

func (p *Parser) statements(closer token.Kind) []ast.Expr {
	var body []ast.Expr
	for p.cur().Kind != closer && p.cur().Kind != token.EOF {
		start := p.pos
		body = append(body, p.Expr())
		if !p.accept(token.Dot) {
			break
		}
		if p.pos == start {
			p.next()
		}
	}
	return body
}

// Expr parses one full expression (statement).
func (p *Parser) Expr() ast.Expr {
	if t := p.cur(); t.Kind == token.Caret {
		p.next()
		return &ast.Return{P: t.Pos, E: p.keywordExpr()}
	}
	return p.keywordExpr()
}

// keywordExpr parses the loosest-binding level.
func (p *Parser) keywordExpr() ast.Expr {
	t := p.cur()
	if t.Kind == token.Keyword {
		// Implicit-receiver keyword send (includes assignments "x: e").
		return p.keywordTail(nil, t.Pos)
	}
	if t.Kind == token.PrimKeyword {
		// Implicit-receiver primitive call: "_IntAdd: n" inside a
		// method means "self _IntAdd: n".
		return p.primTail(&ast.Ident{P: t.Pos, Name: "self"}, t.Pos)
	}
	recv := p.binaryExpr()
	switch p.cur().Kind {
	case token.Keyword:
		return p.keywordTail(recv, p.cur().Pos)
	case token.PrimKeyword:
		return p.primTail(recv, p.cur().Pos)
	}
	return recv
}

// keywordTail parses "k1: arg K2: arg ..." with recv already parsed
// (nil for implicit receiver).
func (p *Parser) keywordTail(recv ast.Expr, pos token.Pos) ast.Expr {
	sel := p.expect(token.Keyword).Text
	args := []ast.Expr{p.keywordArg()}
	for p.cur().Kind == token.CapKeyword {
		sel += p.next().Text
		args = append(args, p.keywordArg())
	}
	return &ast.KeywordMsg{P: pos, Recv: recv, Sel: sel, Args: args}
}

// keywordArg parses an argument expression. Lowercase keywords nest to
// the right: "i max: j min: k" parses as "i max: (j min: k)", and an
// argument may itself start with an implicit-receiver keyword send:
// "x: computeFrom: y".
func (p *Parser) keywordArg() ast.Expr {
	if p.cur().Kind == token.Keyword {
		return p.keywordTail(nil, p.cur().Pos)
	}
	if p.cur().Kind == token.PrimKeyword {
		return p.primTail(&ast.Ident{P: p.cur().Pos, Name: "self"}, p.cur().Pos)
	}
	arg := p.binaryExpr()
	switch p.cur().Kind {
	case token.Keyword:
		return p.keywordTail(arg, p.cur().Pos)
	case token.PrimKeyword:
		return p.primTail(arg, p.cur().Pos)
	}
	return arg
}

// primTail parses "_Prim: arg Cap: arg ..." with recv already parsed.
func (p *Parser) primTail(recv ast.Expr, pos token.Pos) ast.Expr {
	sel := p.expect(token.PrimKeyword).Text
	args := []ast.Expr{p.binaryExpr()}
	for p.cur().Kind == token.CapKeyword {
		sel += p.next().Text
		args = append(args, p.binaryExpr())
	}
	return &ast.PrimCall{P: pos, Recv: recv, Sel: sel, Args: args}
}

// binaryExpr parses left-associative binary sends; as in SELF all
// binary operators have equal precedence.
func (p *Parser) binaryExpr() ast.Expr {
	e := p.unaryExpr()
	for {
		t := p.cur()
		var op string
		switch t.Kind {
		case token.BinOp:
			op = t.Text
		case token.Eq:
			op = "="
		case token.Star:
			op = "*"
		default:
			return e
		}
		p.next()
		arg := p.unaryExpr()
		e = &ast.BinMsg{P: t.Pos, Recv: e, Op: op, Arg: arg}
	}
}

// unaryExpr parses a primary followed by unary sends and unary
// primitive calls.
func (p *Parser) unaryExpr() ast.Expr {
	var e ast.Expr
	if p.cur().Kind == token.Primitive {
		// Statement-initial primitive: receiver is self.
		e = &ast.Ident{P: p.cur().Pos, Name: "self"}
	} else {
		e = p.primary()
	}
	for {
		t := p.cur()
		switch t.Kind {
		case token.Ident:
			p.next()
			e = &ast.UnaryMsg{P: t.Pos, Recv: e, Sel: t.Text}
		case token.Primitive:
			p.next()
			e = &ast.PrimCall{P: t.Pos, Recv: e, Sel: t.Text}
		default:
			return e
		}
	}
}

func (p *Parser) primary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Int:
		p.next()
		return &ast.IntLit{P: t.Pos, Value: parseInt(p, t)}
	case token.BinOp:
		if t.Text == "-" && p.peek().Kind == token.Int {
			p.next()
			it := p.next()
			return &ast.IntLit{P: t.Pos, Value: -parseInt(p, it)}
		}
	case token.String:
		p.next()
		return &ast.StrLit{P: t.Pos, Value: t.Text}
	case token.Ident:
		p.next()
		return &ast.Ident{P: t.Pos, Name: t.Text}
	case token.LParen:
		p.next()
		e := p.Expr()
		p.expect(token.RParen)
		return e
	case token.LSlotList:
		p.next()
		var slots []*ast.Slot
		for p.cur().Kind != token.VBar && p.cur().Kind != token.EOF {
			start := p.pos
			if s := p.slot(); s != nil {
				slots = append(slots, s)
			}
			if !p.accept(token.Dot) {
				break
			}
			if p.pos == start {
				p.next()
			}
		}
		p.expect(token.VBar)
		p.expect(token.RParen)
		return &ast.ObjectLit{P: t.Pos, Slots: slots}
	case token.LBracket:
		return p.block()
	}
	p.errorf("%s: expected an expression, found %s", t.Pos, t)
	p.next()
	return &ast.Ident{P: t.Pos, Name: "nil"}
}

func parseInt(p *Parser, t token.Token) int64 {
	text := t.Text
	if i := strings.IndexByte(text, 'r'); i > 0 {
		base, err := strconv.ParseInt(text[:i], 10, 64)
		if err != nil || base < 2 || base > 36 {
			p.errorf("%s: bad radix in %q", t.Pos, text)
			return 0
		}
		v, err := strconv.ParseInt(strings.ToLower(text[i+1:]), int(base), 64)
		if err != nil {
			p.errorf("%s: bad integer %q: %v", t.Pos, text, err)
			return 0
		}
		return v
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		p.errorf("%s: bad integer %q: %v", t.Pos, text, err)
		return 0
	}
	return v
}

// block parses "[ :a :b | |locals| statements ]".
func (p *Parser) block() ast.Expr {
	t := p.expect(token.LBracket)
	b := &ast.Block{P: t.Pos}
	for p.cur().Kind == token.Colon {
		p.next()
		b.Params = append(b.Params, p.expect(token.Ident).Text)
	}
	if len(b.Params) > 0 {
		p.expect(token.VBar)
	}
	// Optional block locals: [ :a | | t <- 0 | ... ] or [ | t | ... ].
	if p.cur().Kind == token.VBar {
		p.next()
		b.Locals = p.localDecls()
		p.expect(token.VBar)
	}
	b.Body = p.statements(token.RBracket)
	p.expect(token.RBracket)
	return b
}
