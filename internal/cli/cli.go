// Package cli holds the helpers shared by the selfc, selfrun and
// selfbench commands.
package cli

import (
	"fmt"
	"strings"

	"selfgo"
)

// ConfigByName resolves a command-line configuration name.
//
//	new        the paper's new SELF compiler (§6's measured system)
//	new-multi  new SELF with multi-version loops repaired (§5.2)
//	new-ext    new-multi plus §7's comparison facts
//	old89      the original compiler, early-1989 tuning
//	old90      the 1990 production system
//	st80       ParcPlace Smalltalk-80 V2.4
//	c          the optimized-C stand-in (static ideal)
func ConfigByName(name string) (selfgo.Config, error) {
	switch strings.ToLower(name) {
	case "new", "newself", "new-self":
		return selfgo.NewSELF, nil
	case "new-multi", "multi":
		return selfgo.NewSELFMultiLoop, nil
	case "new-ext", "ext", "extended":
		return selfgo.NewSELFExtended, nil
	case "old89", "self89":
		return selfgo.OldSELF89, nil
	case "old90", "self90":
		return selfgo.OldSELF90, nil
	case "st80", "smalltalk":
		return selfgo.ST80, nil
	case "c", "static", "ideal":
		return selfgo.OptimizedC, nil
	}
	return selfgo.Config{}, fmt.Errorf("unknown config %q (want new, new-multi, new-ext, old89, old90, st80 or c)", name)
}

// Names lists the accepted primary configuration names.
func Names() []string {
	return []string{"new", "new-multi", "new-ext", "old89", "old90", "st80", "c"}
}
