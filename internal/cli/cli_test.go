package cli

import "testing"

func TestConfigByName(t *testing.T) {
	for _, name := range Names() {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if cfg.Name == "" {
			t.Errorf("%s: empty config", name)
		}
	}
	// Aliases and case-insensitivity.
	for alias, want := range map[string]string{
		"NEW":      "new SELF",
		"static":   "optimized C",
		"Multi":    "new SELF (multi-version loops)",
		"extended": "new SELF (extended)",
	} {
		cfg, err := ConfigByName(alias)
		if err != nil {
			t.Errorf("%s: %v", alias, err)
			continue
		}
		if cfg.Name != want {
			t.Errorf("%s resolved to %q, want %q", alias, cfg.Name, want)
		}
	}
	if _, err := ConfigByName("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}
