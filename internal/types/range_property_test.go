package types

import (
	"testing"

	"selfgo/internal/obj"
)

// Brute-force soundness checks for every transfer function in range.go:
// enumerate small ranges (plus ranges hugging the small-integer bounds),
// enumerate every concrete point pair, and verify that the abstract
// result covers the concrete one. These complement the quick.Check
// tests in property_test.go, which sample; here the small domain is
// covered exhaustively, so a boundary off-by-one cannot hide.

// testBounds are the range endpoints enumerated: a dense window around
// zero plus the extremes of the small-integer class, where clamping and
// overflow classification happen.
var testBounds = []int64{
	-4, -3, -2, -1, 0, 1, 2, 3, 4,
	obj.MinSmallInt, obj.MinSmallInt + 1, obj.MinSmallInt + 2,
	obj.MaxSmallInt - 2, obj.MaxSmallInt - 1, obj.MaxSmallInt,
}

// testRanges is every non-empty range over testBounds.
func testRanges() []Range {
	var rs []Range
	for _, lo := range testBounds {
		for _, hi := range testBounds {
			if lo <= hi {
				rs = append(rs, Range{Lo: lo, Hi: hi})
			}
		}
	}
	return rs
}

// points returns concrete sample values of r sufficient to witness
// soundness violations at the extremes and (for huge ranges) in the
// interior: both endpoints, their neighbors, and the values nearest
// zero.
func points(r Range) []int64 {
	add := func(dst []int64, v int64) []int64 {
		if v < r.Lo || v > r.Hi {
			return dst
		}
		for _, x := range dst {
			if x == v {
				return dst
			}
		}
		return append(dst, v)
	}
	var ps []int64
	for _, v := range []int64{r.Lo, r.Lo + 1, r.Hi - 1, r.Hi, -1, 0, 1} {
		ps = add(ps, v)
	}
	return ps
}

func inRange(v int64, r Range) bool { return r.Lo <= v && v <= r.Hi }

func inSmallInt(v int64) bool { return obj.MinSmallInt <= v && v <= obj.MaxSmallInt }

// checkBinop verifies one arithmetic transfer function against its
// concrete operation: for every pair of test ranges and every concrete
// point pair, an in-class concrete result must lie in z, and an
// out-of-class concrete result is only legal when overflow was
// reported.
func checkBinop(t *testing.T, name string,
	abstract func(x, y Range) (Range, bool),
	concrete func(a, b int64) (int64, bool)) {
	t.Helper()
	rs := testRanges()
	for _, x := range rs {
		for _, y := range rs {
			z, overflow := abstract(x, y)
			for _, a := range points(x) {
				for _, b := range points(y) {
					c, ok := concrete(a, b)
					if !ok {
						continue // operation undefined (division by zero)
					}
					if inSmallInt(c) {
						if !inRange(c, z) {
							t.Fatalf("%s unsound: [%d,%d] op [%d,%d] -> [%d,%d], but %d op %d = %d escapes",
								name, x.Lo, x.Hi, y.Lo, y.Hi, z.Lo, z.Hi, a, b, c)
						}
					} else if !overflow {
						t.Fatalf("%s missed overflow: [%d,%d] op [%d,%d] reported none, but %d op %d = %d leaves the class",
							name, x.Lo, x.Hi, y.Lo, y.Hi, a, b, c)
					}
				}
			}
		}
	}
}

func TestAddRangesSound(t *testing.T) {
	checkBinop(t, "AddRanges", AddRanges,
		func(a, b int64) (int64, bool) { return a + b, true })
}

func TestSubRangesSound(t *testing.T) {
	checkBinop(t, "SubRanges", SubRanges,
		func(a, b int64) (int64, bool) { return a - b, true })
}

func TestMulRangesSound(t *testing.T) {
	checkBinop(t, "MulRanges", MulRanges,
		func(a, b int64) (int64, bool) { return a * b, true })
}

func TestDivRangesSound(t *testing.T) {
	divZeroSeen := false
	rs := testRanges()
	for _, x := range rs {
		for _, y := range rs {
			z, divZero := DivRanges(x, y)
			if inRange(0, y) {
				if !divZero {
					t.Fatalf("DivRanges: divisor [%d,%d] includes 0 but divZero is false", y.Lo, y.Hi)
				}
				divZeroSeen = true
			}
			for _, a := range points(x) {
				for _, b := range points(y) {
					if b == 0 {
						continue
					}
					c := a / b
					if inSmallInt(c) && !inRange(c, z) {
						t.Fatalf("DivRanges unsound: [%d,%d] / [%d,%d] -> [%d,%d], but %d / %d = %d escapes",
							x.Lo, x.Hi, y.Lo, y.Hi, z.Lo, z.Hi, a, b, c)
					}
				}
			}
		}
	}
	if !divZeroSeen {
		t.Fatal("test domain never exercised a zero-including divisor")
	}
}

func TestModRangesSound(t *testing.T) {
	rs := testRanges()
	for _, x := range rs {
		for _, y := range rs {
			z, divZero := ModRanges(x, y)
			if inRange(0, y) && !divZero {
				t.Fatalf("ModRanges: divisor [%d,%d] includes 0 but divZero is false", y.Lo, y.Hi)
			}
			for _, a := range points(x) {
				for _, b := range points(y) {
					if b == 0 {
						continue
					}
					c := a % b
					if inSmallInt(c) && !inRange(c, z) {
						t.Fatalf("ModRanges unsound: [%d,%d] %% [%d,%d] -> [%d,%d], but %d %% %d = %d escapes",
							x.Lo, x.Hi, y.Lo, y.Hi, z.Lo, z.Hi, a, b, c)
					}
				}
			}
		}
	}
}

func TestBitRangesSound(t *testing.T) {
	rs := testRanges()
	ops := []func(a, b int64) int64{
		func(a, b int64) int64 { return a & b },
		func(a, b int64) int64 { return a | b },
		func(a, b int64) int64 { return a ^ b },
	}
	for _, x := range rs {
		for _, y := range rs {
			z, overflow := BitRanges(x, y)
			if overflow {
				continue // conservative full-range answer, nothing to check
			}
			for _, a := range points(x) {
				for _, b := range points(y) {
					for oi, op := range ops {
						c := op(a, b)
						if !inRange(c, z) {
							t.Fatalf("BitRanges unsound (op %d): [%d,%d] . [%d,%d] -> [%d,%d] without overflow, but %d . %d = %d escapes",
								oi, x.Lo, x.Hi, y.Lo, y.Hi, z.Lo, z.Hi, a, b, c)
						}
					}
				}
			}
		}
	}
}

// checkCmp verifies a comparison fold: AlwaysTrue means every concrete
// pair satisfies the predicate, AlwaysFalse means none does.
func checkCmp(t *testing.T, name string, fold func(x, y Range) Tri, pred func(a, b int64) bool) {
	t.Helper()
	rs := testRanges()
	for _, x := range rs {
		for _, y := range rs {
			tri := fold(x, y)
			if tri == MaybeTrue {
				continue
			}
			for _, a := range points(x) {
				for _, b := range points(y) {
					got := pred(a, b)
					if tri == AlwaysTrue && !got {
						t.Fatalf("%s unsound: [%d,%d] vs [%d,%d] folded true, but %d vs %d is false",
							name, x.Lo, x.Hi, y.Lo, y.Hi, a, b)
					}
					if tri == AlwaysFalse && got {
						t.Fatalf("%s unsound: [%d,%d] vs [%d,%d] folded false, but %d vs %d is true",
							name, x.Lo, x.Hi, y.Lo, y.Hi, a, b)
					}
				}
			}
		}
	}
}

func TestCmpLTSound(t *testing.T) {
	checkCmp(t, "CmpLT", CmpLT, func(a, b int64) bool { return a < b })
}

func TestCmpLESound(t *testing.T) {
	checkCmp(t, "CmpLE", CmpLE, func(a, b int64) bool { return a <= b })
}

func TestCmpEQSound(t *testing.T) {
	checkCmp(t, "CmpEQ", CmpEQ, func(a, b int64) bool { return a == b })
}

// TestRefineLTSound / LE: every concrete pair taking a branch must lie
// in that branch's refined ranges (the refinement may narrow, never
// exclude a live value).
func TestRefineLTSound(t *testing.T) {
	rs := testRanges()
	for _, x := range rs {
		for _, y := range rs {
			tx, ty, fx, fy := RefineLT(x, y)
			for _, a := range points(x) {
				for _, b := range points(y) {
					if a < b {
						if !inRange(a, tx) || !inRange(b, ty) {
							t.Fatalf("RefineLT true-branch unsound: %d < %d but refined to x∈[%d,%d] y∈[%d,%d]",
								a, b, tx.Lo, tx.Hi, ty.Lo, ty.Hi)
						}
					} else {
						if !inRange(a, fx) || !inRange(b, fy) {
							t.Fatalf("RefineLT false-branch unsound: %d >= %d but refined to x∈[%d,%d] y∈[%d,%d]",
								a, b, fx.Lo, fx.Hi, fy.Lo, fy.Hi)
						}
					}
				}
			}
		}
	}
}

func TestRefineLESound(t *testing.T) {
	rs := testRanges()
	for _, x := range rs {
		for _, y := range rs {
			tx, ty, fx, fy := RefineLE(x, y)
			for _, a := range points(x) {
				for _, b := range points(y) {
					if a <= b {
						if !inRange(a, tx) || !inRange(b, ty) {
							t.Fatalf("RefineLE true-branch unsound: %d <= %d but refined to x∈[%d,%d] y∈[%d,%d]",
								a, b, tx.Lo, tx.Hi, ty.Lo, ty.Hi)
						}
					} else {
						if !inRange(a, fx) || !inRange(b, fy) {
							t.Fatalf("RefineLE false-branch unsound: %d > %d but refined to x∈[%d,%d] y∈[%d,%d]",
								a, b, fx.Lo, fx.Hi, fy.Lo, fy.Hi)
						}
					}
				}
			}
		}
	}
}

func TestRefineEQSound(t *testing.T) {
	rs := testRanges()
	for _, x := range rs {
		for _, y := range rs {
			tx, ty := RefineEQ(x, y)
			for _, a := range points(x) {
				for _, b := range points(y) {
					if a == b {
						if !inRange(a, tx) || !inRange(b, ty) {
							t.Fatalf("RefineEQ unsound: %d = %d but refined to x∈[%d,%d] y∈[%d,%d]",
								a, b, tx.Lo, tx.Hi, ty.Lo, ty.Hi)
						}
					}
				}
			}
			// The equal branch must also be the intersection: no value
			// outside either input range may appear.
			if !tx.Empty() && (tx.Lo < max64(x.Lo, y.Lo) || tx.Hi > min64(x.Hi, y.Hi)) {
				t.Fatalf("RefineEQ too wide: [%d,%d] = [%d,%d] refined to [%d,%d]",
					x.Lo, x.Hi, y.Lo, y.Hi, tx.Lo, tx.Hi)
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
