package types

import "selfgo/internal/obj"

// This file implements integer subrange analysis (§3.2.1, §3.2.3): the
// arithmetic transfer functions used to compute result ranges, decide
// whether overflow checks can be removed, and constant-fold comparisons
// whose argument ranges do not overlap.

// Tri is a three-valued truth: the result of comparing ranges.
type Tri int

// Tri values.
const (
	MaybeTrue Tri = iota // can't tell
	AlwaysTrue
	AlwaysFalse
)

// AddRanges implements the paper's addition rule:
//
//	z : [x.lo+y.lo .. x.hi+y.hi] ∩ [minInt..maxInt]
//
// overflow reports whether the mathematical result can leave the
// small-integer range (i.e. whether the overflow check is needed).
func AddRanges(x, y Range) (z Range, overflow bool) {
	lo := x.Lo + y.Lo // bounds are within ±2^29 so int64 math is exact
	hi := x.Hi + y.Hi
	return clampRange(lo, hi)
}

// SubRanges is the subtraction rule.
func SubRanges(x, y Range) (z Range, overflow bool) {
	lo := x.Lo - y.Hi
	hi := x.Hi - y.Lo
	return clampRange(lo, hi)
}

// MulRanges is the multiplication rule.
func MulRanges(x, y Range) (z Range, overflow bool) {
	p := [4]int64{x.Lo * y.Lo, x.Lo * y.Hi, x.Hi * y.Lo, x.Hi * y.Hi}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo = min(lo, v)
		hi = max(hi, v)
	}
	return clampRange(lo, hi)
}

// DivRanges is the (truncating) division rule. divZero reports whether
// the divisor range includes zero (so the divide-by-zero check stays).
func DivRanges(x, y Range) (z Range, divZero bool) {
	divZero = y.Lo <= 0 && 0 <= y.Hi
	// Conservative: evaluate quotient extremes over the corner points
	// with the divisor endpoints nearest zero.
	cands := make([]int64, 0, 8)
	ys := []int64{y.Lo, y.Hi}
	if y.Lo <= -1 && -1 <= y.Hi {
		ys = append(ys, -1)
	}
	if y.Lo <= 1 && 1 <= y.Hi {
		ys = append(ys, 1)
	}
	for _, yv := range ys {
		if yv == 0 {
			continue
		}
		cands = append(cands, x.Lo/yv, x.Hi/yv)
	}
	if len(cands) == 0 {
		return FullRange(), true
	}
	lo, hi := cands[0], cands[0]
	for _, v := range cands[1:] {
		lo = min(lo, v)
		hi = max(hi, v)
	}
	z, _ = clampRange(lo, hi)
	return z, divZero
}

// ModRanges is the remainder rule (sign follows the dividend, as in
// Go). divZero reports whether the divisor range includes zero.
func ModRanges(x, y Range) (z Range, divZero bool) {
	divZero = y.Lo <= 0 && 0 <= y.Hi
	m := max(abs64(y.Lo), abs64(y.Hi))
	if m == 0 {
		return Range{}, true
	}
	lo, hi := -(m - 1), m-1
	if x.Lo >= 0 {
		lo = 0
		hi = min(hi, x.Hi)
	}
	if x.Hi <= 0 {
		hi = 0
	}
	z, _ = clampRange(lo, hi)
	return z, divZero
}

// BitRanges bounds the bitwise and/or/xor of two ranges: for
// non-negative operands the result fits below the next power of two of
// the larger bound, so no overflow check is needed; signed operands
// fall back to the full class range with a check.
func BitRanges(x, y Range) (z Range, overflow bool) {
	if x.Lo >= 0 && y.Lo >= 0 {
		bound := int64(1)
		for bound <= x.Hi || bound <= y.Hi {
			bound <<= 1
		}
		return clampRange(0, bound-1)
	}
	return FullRange(), true
}

func clampRange(lo, hi int64) (Range, bool) {
	overflow := lo < obj.MinSmallInt || hi > obj.MaxSmallInt
	return Range{Lo: max(lo, obj.MinSmallInt), Hi: min(hi, obj.MaxSmallInt)}, overflow
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// CmpLT folds x < y when the ranges do not overlap (§3.2.3: "if the
// arguments to an integer comparison primitive are integer subranges
// that don't overlap, then the compiler can execute the comparison at
// compile-time").
func CmpLT(x, y Range) Tri {
	switch {
	case x.Hi < y.Lo:
		return AlwaysTrue
	case x.Lo >= y.Hi:
		return AlwaysFalse
	}
	return MaybeTrue
}

// CmpLE folds x <= y.
func CmpLE(x, y Range) Tri {
	switch {
	case x.Hi <= y.Lo:
		return AlwaysTrue
	case x.Lo > y.Hi:
		return AlwaysFalse
	}
	return MaybeTrue
}

// CmpEQ folds x = y.
func CmpEQ(x, y Range) Tri {
	switch {
	case x.Lo == x.Hi && y.Lo == y.Hi && x.Lo == y.Lo:
		return AlwaysTrue
	case x.Hi < y.Lo || y.Hi < x.Lo:
		return AlwaysFalse
	}
	return MaybeTrue
}

// RefineLT narrows x and y on the true and false branches of x < y,
// implementing the paper's compare-less-than-and-branch rule. Either
// refined range may be empty (Lo > Hi) when that branch is dead.
func RefineLT(x, y Range) (tx, ty, fx, fy Range) {
	// True branch: x < y, so x <= y.Hi-1 and y >= x.Lo+1.
	tx = Range{Lo: x.Lo, Hi: min(x.Hi, y.Hi-1)}
	ty = Range{Lo: max(y.Lo, x.Lo+1), Hi: y.Hi}
	// False branch: x >= y, so x >= y.Lo and y <= x.Hi.
	fx = Range{Lo: max(x.Lo, y.Lo), Hi: x.Hi}
	fy = Range{Lo: y.Lo, Hi: min(y.Hi, x.Hi)}
	return
}

// RefineLE narrows on the branches of x <= y.
func RefineLE(x, y Range) (tx, ty, fx, fy Range) {
	tx = Range{Lo: x.Lo, Hi: min(x.Hi, y.Hi)}
	ty = Range{Lo: max(y.Lo, x.Lo), Hi: y.Hi}
	fx = Range{Lo: max(x.Lo, y.Lo+1), Hi: x.Hi}
	fy = Range{Lo: y.Lo, Hi: min(y.Hi, x.Hi-1)}
	return
}

// RefineEQ narrows on the branches of x = y (only the true branch
// gains information in general).
func RefineEQ(x, y Range) (tx, ty Range) {
	tx = Range{Lo: max(x.Lo, y.Lo), Hi: min(x.Hi, y.Hi)}
	return tx, tx
}

// Empty reports whether the (refined) range denotes no values.
func (r Range) Empty() bool { return r.Lo > r.Hi }
