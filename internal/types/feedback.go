package types

import "selfgo/internal/obj"

// Feedback is receiver-map type feedback harvested from a running
// tier's inline caches: for each selector, the receiver maps its send
// sites actually observed. A higher compilation tier seeds its type
// analysis with it — a send whose receiver is statically unknown gets
// a run-time type test against the observed map(s), and the compiler
// statically binds (and usually inlines) the send along each passing
// branch, exactly as type prediction does for well-known selectors.
//
// Feedback is advisory and always sound to apply: an observed map that
// no longer matches at run time simply falls through the test to the
// dynamically-dispatched send. A nil *Feedback means "no feedback" and
// leaves compilation bit-identical to the eager path.
type Feedback struct {
	Sels map[string][]*obj.Map
}

// NewFeedback returns an empty feedback set.
func NewFeedback() *Feedback {
	return &Feedback{Sels: map[string][]*obj.Map{}}
}

// Add records that sel was observed with receiver map m (deduplicated;
// insertion order is preserved so the hottest — first-observed — map
// is tested first).
func (f *Feedback) Add(sel string, m *obj.Map) {
	if m == nil {
		return
	}
	for _, have := range f.Sels[sel] {
		if have == m {
			return
		}
	}
	f.Sels[sel] = append(f.Sels[sel], m)
}

// Drop forgets a selector (used by harvesters to discard megamorphic
// sites, where testing a few maps would not pay).
func (f *Feedback) Drop(sel string) {
	delete(f.Sels, sel)
}

// Maps returns the observed receiver maps for sel (nil when none, or
// when f itself is nil).
func (f *Feedback) Maps(sel string) []*obj.Map {
	if f == nil {
		return nil
	}
	return f.Sels[sel]
}

// Len returns the number of selectors carrying feedback.
func (f *Feedback) Len() int {
	if f == nil {
		return 0
	}
	return len(f.Sels)
}
