package types

import (
	"testing"
	"testing/quick"

	"selfgo/internal/obj"
)

// pointIn picks a deterministic sample point inside a range.
func pointIn(r Range, salt uint8) int64 {
	span := r.Hi - r.Lo + 1
	return r.Lo + int64(salt)%span
}

// TestQuickIntersectSound: every point of Intersect(a, test) lies in
// both a and test.
func TestQuickIntersectSound(t *testing.T) {
	im := obj.NewWorld().IntMap
	f := func(a int16, wa uint8, b int16, wb uint8, salt uint8) bool {
		ra := Range{Lo: int64(a), Hi: int64(a) + int64(wa)}
		rt := Range{Lo: int64(b), Hi: int64(b) + int64(wb)}
		out := Intersect(ra, rt, im)
		if out == nil {
			// Empty: correct iff the ranges are disjoint.
			return ra.Hi < rt.Lo || rt.Hi < ra.Lo
		}
		ro, ok := RangeOf(out)
		if !ok {
			return false
		}
		p := pointIn(ro, salt)
		return p >= ra.Lo && p <= ra.Hi && p >= rt.Lo && p <= rt.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSubtractSound: no point of Subtract(a, b) lies in b, and
// every point lies in a.
func TestQuickSubtractSound(t *testing.T) {
	im := obj.NewWorld().IntMap
	f := func(a int16, wa uint8, b int16, wb uint8, salt uint8) bool {
		ra := Range{Lo: int64(a), Hi: int64(a) + int64(wa)}
		rb := Range{Lo: int64(b), Hi: int64(b) + int64(wb)}
		out := Subtract(ra, rb, im)
		if out == nil {
			// Everything subtracted: b must cover a.
			return rb.Lo <= ra.Lo && ra.Hi <= rb.Hi
		}
		// A Diff result is conservative: its base must stay within a,
		// but its points may still overlap b (the subtraction is kept
		// symbolic). Check before RangeOf — RangeOf sees through Diff
		// to the base range, which would wrongly subject Diff results
		// to the exclusion check below.
		if d, isDiff := out.(Diff); isDiff {
			rr, ok2 := RangeOf(d.Base)
			return ok2 && rr.Lo >= ra.Lo && rr.Hi <= ra.Hi
		}
		ro, ok := RangeOf(out)
		if !ok {
			return false
		}
		p := pointIn(ro, salt)
		if p < ra.Lo || p > ra.Hi {
			return false // escaped a
		}
		// The representable cuts (Range results) must exclude b
		// entirely.
		return p < rb.Lo || p > rb.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLoopGeneralizeContains: the generalized head contains both
// inputs — the fix-point invariant of §5.1.
func TestQuickLoopGeneralizeContains(t *testing.T) {
	im := obj.NewWorld().IntMap
	f := func(a int16, wa uint8, b int16, wb uint8) bool {
		head := Range{Lo: int64(a), Hi: int64(a) + int64(wa)}
		tail := Range{Lo: int64(b), Hi: int64(b) + int64(wb)}
		g := LoopGeneralize(head, tail, 1, im)
		return Contains(g, head, im) && Contains(g, tail, im)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLoopGeneralizeConverges: iterating the generalization
// reaches a fix-point within a handful of steps (each bound widens at
// most once under directed widening).
func TestQuickLoopGeneralizeConverges(t *testing.T) {
	im := obj.NewWorld().IntMap
	f := func(a int16, wa uint8, tails [6]int16) bool {
		var cur Type = Range{Lo: int64(a), Hi: int64(a) + int64(wa)}
		changes := 0
		for _, tv := range tails {
			tail := Range{Lo: int64(tv), Hi: int64(tv)}
			next := LoopGeneralize(cur, tail, 1, im)
			if !Equal(next, cur) {
				changes++
				cur = next
			}
		}
		return changes <= 2 // lo widens once, hi widens once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickMergePreservesConstituents: MergeOf contains both inputs and
// Compatible accepts each constituent (the §5.2 rule's foundation).
func TestQuickMergeCompatible(t *testing.T) {
	im := obj.NewWorld().IntMap
	f := func(a int16, wa uint8, unknownSide bool) bool {
		ra := Range{Lo: int64(a), Hi: int64(a) + int64(wa)}
		var other Type = Unknown{}
		if !unknownSide {
			other = Range{Lo: int64(a) + 1000, Hi: int64(a) + 1000 + int64(wa)}
		}
		m := MergeOf(ra, other, 9, im)
		return Contains(m, ra, im) && Contains(m, other, im) &&
			Compatible(m, ra, im)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBitRangesSound: BitRanges covers the pointwise results of
// &, | and ^ for non-negative operands.
func TestQuickBitRangesSound(t *testing.T) {
	f := func(a, b uint16, pa, pb uint8) bool {
		x := Range{Lo: int64(a), Hi: int64(a) + 64}
		y := Range{Lo: int64(b), Hi: int64(b) + 64}
		z, overflow := BitRanges(x, y)
		if overflow {
			return false // non-negative operands never need the check
		}
		px := pointIn(x, pa)
		py := pointIn(y, pb)
		for _, v := range []int64{px & py, px | py, px ^ py} {
			if v < z.Lo || v > z.Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
