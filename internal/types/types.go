// Package types implements the SELF compiler's type system from §3.1 of
// Chambers & Ungar (PLDI'90): a type is a set of run-time values.
//
// The kinds, mirroring the paper's chart:
//
//	value type       singleton set; a compile-time constant
//	integer subrange set of sequential integers [lo..hi]; integer value
//	                 types and the integer class type are its extremes
//	class type       all values sharing one map (hidden class)
//	unknown type     all values; no information
//	union type       set union (results of primitives)
//	difference type  set difference (failed type tests)
//	merge type       like a union, but records the identities of the
//	                 constituent types and the control-flow merge that
//	                 created it, enabling extended message splitting
//
// Block types are value types for block literals whose lexical scope
// the compiler still knows; they are what makes user-defined control
// structures inlinable.
package types

import (
	"fmt"
	"sort"
	"strings"

	"selfgo/internal/ast"
	"selfgo/internal/obj"
)

// Type is a compile-time description of the set of values a variable
// may hold. A nil Type denotes the empty set (dead/unreachable).
type Type interface {
	String() string
	isType()
}

// Unknown is the set of all values.
type Unknown struct{}

// Val is a singleton set holding one non-integer constant (integers
// normalize to one-point Ranges). M is the constant's map.
type Val struct {
	V obj.Value
	M *obj.Map
}

// Range is an integer subrange [Lo..Hi] (inclusive). The full
// small-integer range doubles as the integer class type.
type Range struct {
	Lo, Hi int64
}

// Class is the set of all values with map M (non-integer maps; integer
// class types normalize to the full Range).
type Class struct {
	M *obj.Map
}

// Union is a set union of types, produced by primitive result tables.
type Union struct {
	Elems []Type
}

// Diff is the set difference Base minus Sub, produced on the failure
// branch of run-time type tests.
type Diff struct {
	Base, Sub Type
}

// Merge records a control-flow merge of distinct types. Unlike Union
// it keeps the constituents' identities (e.g. merging int with unknown
// yields {int, ?}, not ?), and remembers the merge point that created
// it so splitting knows how far to copy.
type Merge struct {
	Elems  []Type
	Origin int // id of the merge node (0 if unknown)
}

// Blk is the compile-time type of a block literal whose enclosing
// scope is still known to the compiler; sends of value/value: to it
// can be inlined. Scope is an opaque compiler-owned token; blocks from
// different inlining contexts never compare equal.
type Blk struct {
	B     *ast.Block
	Scope any
	M     *obj.Map // the world's block map
}

func (Unknown) isType() {}
func (Val) isType()     {}
func (Range) isType()   {}
func (Class) isType()   {}
func (Union) isType()   {}
func (Diff) isType()    {}
func (Merge) isType()   {}
func (Blk) isType()     {}

// FullRange is the integer class type.
func FullRange() Range { return Range{Lo: obj.MinSmallInt, Hi: obj.MaxSmallInt} }

// IsFull reports whether r covers the whole small-integer class.
func (r Range) IsFull() bool { return r.Lo <= obj.MinSmallInt && r.Hi >= obj.MaxSmallInt }

func (Unknown) String() string { return "?" }

func (v Val) String() string {
	switch v.V.K() {
	case obj.KNil:
		return "nil"
	case obj.KStr:
		return fmt.Sprintf("'%s'", v.V.S())
	case obj.KObj:
		if v.M != nil {
			switch v.M.Name {
			case "true", "false":
				return v.M.Name
			}
		}
		return "<" + v.V.String() + ">"
	default:
		return v.V.String()
	}
}

func (r Range) String() string {
	if r.IsFull() {
		return "int"
	}
	if r.Lo == r.Hi {
		return fmt.Sprintf("%d", r.Lo)
	}
	return fmt.Sprintf("[%d..%d]", r.Lo, r.Hi)
}

func (c Class) String() string { return c.M.Name }

func (u Union) String() string { return "union" + elemsString(u.Elems) }

func (d Diff) String() string { return fmt.Sprintf("(%s - %s)", d.Base, d.Sub) }

func (m Merge) String() string { return elemsString(m.Elems) }

func (b Blk) String() string { return "[block]" }

func elemsString(elems []Type) string {
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// NewVal builds the value type for a runtime constant; integer
// constants become one-point ranges, per the paper's treatment of
// integer value types as extreme subranges.
func NewVal(v obj.Value, m *obj.Map) Type {
	if v.K() == obj.KInt {
		return Range{Lo: v.I(), Hi: v.I()}
	}
	return Val{V: v, M: m}
}

// NewClass builds the class type for a map; the integer map becomes
// the full range.
func NewClass(m *obj.Map, intMap *obj.Map) Type {
	if m == intMap {
		return FullRange()
	}
	return Class{M: m}
}

// Equal reports structural equality of two types.
func Equal(a, b Type) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case Unknown:
		_, ok := b.(Unknown)
		return ok
	case Val:
		y, ok := b.(Val)
		return ok && x.V.Eq(y.V)
	case Range:
		y, ok := b.(Range)
		return ok && x == y
	case Class:
		y, ok := b.(Class)
		return ok && x.M == y.M
	case Blk:
		y, ok := b.(Blk)
		return ok && x.B == y.B && x.Scope == y.Scope
	case Diff:
		y, ok := b.(Diff)
		return ok && Equal(x.Base, y.Base) && Equal(x.Sub, y.Sub)
	case Union:
		y, ok := b.(Union)
		return ok && equalElems(x.Elems, y.Elems)
	case Merge:
		y, ok := b.(Merge)
		return ok && equalElems(x.Elems, y.Elems)
	}
	return false
}

func equalElems(a, b []Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Constant returns the compile-time constant a type denotes, if any.
func Constant(t Type) (obj.Value, bool) {
	switch x := t.(type) {
	case Val:
		return x.V, true
	case Range:
		if x.Lo == x.Hi {
			return obj.Int(x.Lo), true
		}
	case Merge:
		if len(x.Elems) == 1 {
			return Constant(x.Elems[0])
		}
	}
	return obj.Nil(), false
}

// RangeOf returns the integer subrange covering every value of t, when
// t is known to contain only small integers.
func RangeOf(t Type) (Range, bool) {
	switch x := t.(type) {
	case Range:
		return x, true
	case Diff:
		return RangeOf(x.Base)
	case Union:
		return rangeOfElems(x.Elems)
	case Merge:
		return rangeOfElems(x.Elems)
	}
	return Range{}, false
}

func rangeOfElems(elems []Type) (Range, bool) {
	var out Range
	for i, e := range elems {
		r, ok := RangeOf(e)
		if !ok {
			return Range{}, false
		}
		if i == 0 {
			out = r
			continue
		}
		out.Lo = min(out.Lo, r.Lo)
		out.Hi = max(out.Hi, r.Hi)
	}
	return out, len(elems) > 0
}

// MapOf returns the single map every value of t must have, or nil when
// the type spans several maps or is unknown. intMap is the world's
// small-integer map.
func MapOf(t Type, intMap *obj.Map) *obj.Map {
	switch x := t.(type) {
	case Val:
		return x.M
	case Range:
		return intMap
	case Class:
		return x.M
	case Blk:
		return x.M
	case Diff:
		return MapOf(x.Base, intMap)
	case Union:
		return mapOfElems(x.Elems, intMap)
	case Merge:
		return mapOfElems(x.Elems, intMap)
	}
	return nil
}

func mapOfElems(elems []Type, intMap *obj.Map) *obj.Map {
	var m *obj.Map
	for _, e := range elems {
		em := MapOf(e, intMap)
		if em == nil {
			return nil
		}
		if m == nil {
			m = em
		} else if m != em {
			return nil
		}
	}
	return m
}

// HasClassInfo reports whether t carries any class (map) information —
// used by the §5.2 compatibility rule ("the type at the loop head does
// not sacrifice class type information present in the loop tail").
func HasClassInfo(t Type, intMap *obj.Map) bool {
	switch x := t.(type) {
	case Unknown:
		return false
	case Diff:
		return HasClassInfo(x.Base, intMap)
	case Union:
		for _, e := range x.Elems {
			if HasClassInfo(e, intMap) {
				return true
			}
		}
		return false
	case Merge:
		for _, e := range x.Elems {
			if HasClassInfo(e, intMap) {
				return true
			}
		}
		return false
	default:
		return MapOf(t, intMap) != nil
	}
}

// Contains reports whether every value of b is certainly a value of a
// (b ⊆ a). It is conservative: false when unsure.
func Contains(a, b Type, intMap *obj.Map) bool {
	if b == nil {
		return true // empty set
	}
	if a == nil {
		return false
	}
	if Equal(a, b) {
		return true
	}
	if _, ok := a.(Unknown); ok {
		return true
	}
	// Decompose b first: every element must fit in a.
	switch y := b.(type) {
	case Union:
		for _, e := range y.Elems {
			if !Contains(a, e, intMap) {
				return false
			}
		}
		return true
	case Merge:
		for _, e := range y.Elems {
			if !Contains(a, e, intMap) {
				return false
			}
		}
		return true
	case Diff:
		return Contains(a, y.Base, intMap)
	}
	switch x := a.(type) {
	case Val:
		if v, ok := Constant(b); ok {
			return x.V.Eq(v)
		}
		return false
	case Range:
		if r, ok := RangeOf(b); ok {
			return x.Lo <= r.Lo && r.Hi <= x.Hi
		}
		return false
	case Class:
		return MapOf(b, intMap) == x.M
	case Blk:
		return false // only equality (handled above)
	case Union:
		for _, e := range x.Elems {
			if Contains(e, b, intMap) {
				return true
			}
		}
		return false
	case Merge:
		for _, e := range x.Elems {
			if Contains(e, b, intMap) {
				return true
			}
		}
		return false
	case Diff:
		return Contains(x.Base, b, intMap) && Disjoint(x.Sub, b, intMap)
	}
	return false
}

// Disjoint reports whether a and b certainly share no values.
// Conservative: false when unsure.
func Disjoint(a, b Type, intMap *obj.Map) bool {
	if a == nil || b == nil {
		return true
	}
	if _, ok := a.(Unknown); ok {
		return false
	}
	if _, ok := b.(Unknown); ok {
		return false
	}
	switch x := a.(type) {
	case Union:
		return allDisjoint(x.Elems, b, intMap)
	case Merge:
		return allDisjoint(x.Elems, b, intMap)
	case Diff:
		return Disjoint(x.Base, b, intMap)
	}
	switch y := b.(type) {
	case Union:
		return allDisjoint(y.Elems, a, intMap)
	case Merge:
		return allDisjoint(y.Elems, a, intMap)
	case Diff:
		return Disjoint(y.Base, a, intMap)
	}
	ra, aInt := RangeOf(a)
	rb, bInt := RangeOf(b)
	if aInt && bInt {
		return ra.Hi < rb.Lo || rb.Hi < ra.Lo
	}
	ma := MapOf(a, intMap)
	mb := MapOf(b, intMap)
	if ma != nil && mb != nil && ma != mb {
		return true
	}
	// Same map: distinct value types of the same map are disjoint.
	va, aOK := Constant(a)
	vb, bOK := Constant(b)
	if aOK && bOK {
		return !va.Eq(vb)
	}
	return false
}

func allDisjoint(elems []Type, b Type, intMap *obj.Map) bool {
	for _, e := range elems {
		if !Disjoint(e, b, intMap) {
			return false
		}
	}
	return true
}

// UnionOf forms the canonical set union of two types (used for
// primitive result types).
func UnionOf(a, b Type, intMap *obj.Map) Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if Contains(a, b, intMap) {
		return a
	}
	if Contains(b, a, intMap) {
		return b
	}
	// Adjacent/overlapping ranges coalesce.
	if ra, ok := RangeOf(a); ok {
		if rb, ok2 := RangeOf(b); ok2 {
			if ra.Hi+1 >= rb.Lo && rb.Hi+1 >= ra.Lo {
				return Range{Lo: min(ra.Lo, rb.Lo), Hi: max(ra.Hi, rb.Hi)}
			}
		}
	}
	return Union{Elems: flatten(a, b, nil)}
}

// MergeOf merges the types arriving at a control-flow merge node.
// Identical types stay themselves; different types form a merge type
// recording each constituent (§4).
func MergeOf(a, b Type, origin int, intMap *obj.Map) Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if Equal(a, b) {
		return a
	}
	elems := flatten(a, b, nil)
	if len(elems) == 1 {
		return elems[0]
	}
	return Merge{Elems: elems, Origin: origin}
}

// flatten appends the constituents of a and b (expanding unions and
// merges) without duplicates.
func flatten(a, b Type, into []Type) []Type {
	add := func(t Type) {
		for _, e := range into {
			if Equal(e, t) {
				return
			}
		}
		into = append(into, t)
	}
	expand := func(t Type) {
		switch x := t.(type) {
		case Union:
			for _, e := range x.Elems {
				add(e)
			}
		case Merge:
			for _, e := range x.Elems {
				add(e)
			}
		default:
			add(t)
		}
	}
	expand(a)
	expand(b)
	return into
}

// Constituents returns the distinct alternatives a type offers for
// splitting: merge/union elements, or the type itself.
func Constituents(t Type) []Type {
	switch x := t.(type) {
	case Merge:
		return x.Elems
	case Union:
		return x.Elems
	}
	return []Type{t}
}

// Intersect refines t by a successful run-time type test against
// "test" (a class type or range). Returns nil when the success branch
// is impossible.
func Intersect(t, test Type, intMap *obj.Map) Type {
	if t == nil {
		return nil
	}
	if Contains(test, t, intMap) {
		return t // the test cannot fail; keep the more precise type
	}
	switch x := t.(type) {
	case Union:
		return intersectElems(x.Elems, test, intMap)
	case Merge:
		return intersectElems(x.Elems, test, intMap)
	case Diff:
		in := Intersect(x.Base, test, intMap)
		if in == nil || Contains(x.Sub, in, intMap) {
			return nil // everything passing the test was subtracted
		}
		if Disjoint(in, x.Sub, intMap) {
			return in
		}
		return Diff{Base: in, Sub: x.Sub}
	}
	rt, tInt := RangeOf(t)
	rs, sInt := RangeOf(test)
	if tInt && sInt {
		lo, hi := max(rt.Lo, rs.Lo), min(rt.Hi, rs.Hi)
		if lo > hi {
			return nil
		}
		return Range{Lo: lo, Hi: hi}
	}
	if Disjoint(t, test, intMap) {
		return nil
	}
	if _, ok := t.(Unknown); ok {
		return test
	}
	mt := MapOf(t, intMap)
	ms := MapOf(test, intMap)
	if mt != nil && ms != nil && mt != ms {
		return nil
	}
	return test
}

func intersectElems(elems []Type, test Type, intMap *obj.Map) Type {
	var out Type
	for _, e := range elems {
		r := Intersect(e, test, intMap)
		out = UnionOf(out, r, intMap)
	}
	return out
}

// Subtract refines t on the failure branch of a type test against
// "test" (§3.2.1): values of t known to be in test are removed.
// Returns nil when the failure branch is impossible.
func Subtract(t, test Type, intMap *obj.Map) Type {
	if t == nil {
		return nil
	}
	if Contains(test, t, intMap) {
		return nil // every value passes the test; failure is dead
	}
	if Disjoint(t, test, intMap) {
		return t
	}
	switch x := t.(type) {
	case Union:
		return subtractElems(x.Elems, test, intMap)
	case Merge:
		return subtractElems(x.Elems, test, intMap)
	case Diff:
		return Diff{Base: x.Base, Sub: UnionOf(x.Sub, test, intMap)}
	}
	// Range minus overlapping range: representable when the cut is at
	// an end.
	if rt, ok := RangeOf(t); ok {
		if rs, ok2 := RangeOf(test); ok2 {
			switch {
			case rs.Lo <= rt.Lo && rs.Hi < rt.Hi:
				return Range{Lo: rs.Hi + 1, Hi: rt.Hi}
			case rs.Hi >= rt.Hi && rs.Lo > rt.Lo:
				return Range{Lo: rt.Lo, Hi: rs.Lo - 1}
			}
		}
	}
	return Diff{Base: t, Sub: test}
}

func subtractElems(elems []Type, test Type, intMap *obj.Map) Type {
	var out Type
	for _, e := range elems {
		r := Subtract(e, test, intMap)
		out = UnionOf(out, r, intMap)
	}
	return out
}

// LoopGeneralize folds a loop-tail type into a loop-head type using the
// §5.1 rule: differing value or subrange types within the same class
// generalize straight to the class type, so the analysis reaches its
// fix-point in one extra iteration; otherwise a merge type forms.
func LoopGeneralize(head, tail Type, origin int, intMap *obj.Map) Type {
	if head == nil {
		return tail
	}
	if tail == nil {
		return head
	}
	if Equal(head, tail) {
		return head
	}
	if Contains(head, tail, intMap) && !widensClass(head, tail, intMap) {
		return head
	}
	mh := MapOf(head, intMap)
	mt := MapOf(tail, intMap)
	if mh != nil && mh == mt {
		// Same class: generalize values/subranges toward the class
		// type. For integers we use directed widening — only a bound
		// the tail actually moved escapes to the class bound — which
		// converges just as fast as the paper's generalize-to-class
		// rule but preserves stationary bounds (so a loop counter
		// seeded at 0 keeps its non-negativity and the lower array
		// bounds check dies).
		if mh == intMap {
			rh, okH := RangeOf(head)
			rt, okT := RangeOf(tail)
			if okH && okT {
				lo, hi := rh.Lo, rh.Hi
				if rt.Lo < lo {
					lo = obj.MinSmallInt
				}
				if rt.Hi > hi {
					hi = obj.MaxSmallInt
				}
				return Range{Lo: lo, Hi: hi}
			}
			return FullRange()
		}
		return Class{M: mh}
	}
	// Different classes, or one side lacks class info: form a merge
	// type that keeps each class's constituent distinct (§4: int
	// merged with unknown is {int, ?}, NOT ?). Constituents are
	// generalized to their class first so the fix-point arrives
	// quickly; constituents carrying no class information collapse
	// into a single unknown — there is nothing to split them on.
	var elems []Type
	addElem := func(t Type) {
		for _, e := range elems {
			if Equal(e, t) {
				return
			}
		}
		elems = append(elems, t)
	}
	hasUnknown := false
	for _, e := range append(Constituents(head), Constituents(tail)...) {
		e = generalizeToClass(e, intMap)
		if !HasClassInfo(e, intMap) {
			hasUnknown = true
			continue
		}
		addElem(e)
	}
	if hasUnknown {
		addElem(Unknown{})
	}
	if len(elems) == 1 {
		return elems[0]
	}
	return Merge{Elems: elems, Origin: origin}
}

// widensClass reports whether using `head` for a value known to be
// `tail` would sacrifice class information (head lacks a map that tail
// has).
func widensClass(head, tail Type, intMap *obj.Map) bool {
	return MapOf(head, intMap) == nil && !containsClassOf(head, tail, intMap) && HasClassInfo(tail, intMap)
}

// containsClassOf reports whether head (possibly a merge) has a
// constituent carrying tail's class.
func containsClassOf(head, tail Type, intMap *obj.Map) bool {
	mt := MapOf(tail, intMap)
	if mt == nil {
		return false
	}
	for _, e := range Constituents(head) {
		if MapOf(e, intMap) == mt {
			return true
		}
	}
	return false
}

func generalizeToClass(t Type, intMap *obj.Map) Type {
	m := MapOf(t, intMap)
	switch {
	case m == nil:
		return t
	case m == intMap:
		return FullRange()
	default:
		// Block literals also generalize to the block class here: a
		// merged type cannot inline the block anyway, and keeping the
		// literal would let an unmaterialized closure escape.
		return Class{M: m}
	}
}

// Compatible implements the §5.2 loop head/tail compatibility rule: the
// head type must contain the tail type AND must not sacrifice class
// information present at the tail (so unknown at the head is NOT
// compatible with a class type at the tail).
func Compatible(head, tail Type, intMap *obj.Map) bool {
	if tail == nil {
		return true
	}
	if head == nil {
		return false
	}
	if Equal(head, tail) {
		return true
	}
	if m, ok := tail.(Merge); ok {
		for _, e := range m.Elems {
			if !Compatible(head, e, intMap) {
				return false
			}
		}
		return true
	}
	if _, ok := head.(Unknown); ok {
		return !HasClassInfo(tail, intMap)
	}
	if m, ok := head.(Merge); ok {
		for _, e := range m.Elems {
			if Compatible(e, tail, intMap) {
				return true
			}
		}
		return false
	}
	return Contains(head, tail, intMap)
}

// SortKey gives a deterministic ordering for dumping type maps.
func SortKey(t Type) string { return t.String() }

// SortTypes sorts a slice of types deterministically (for printing).
func SortTypes(ts []Type) {
	sort.Slice(ts, func(i, j int) bool { return SortKey(ts[i]) < SortKey(ts[j]) })
}
