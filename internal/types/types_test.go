package types

import (
	"testing"
	"testing/quick"

	"selfgo/internal/obj"
)

var w = obj.NewWorld()

func intMap() *obj.Map { return w.IntMap }

func val(v obj.Value) Type { return NewVal(v, w.MapOf(v)) }

func rng(lo, hi int64) Range { return Range{Lo: lo, Hi: hi} }

func TestNormalization(t *testing.T) {
	// Integer constants normalize to one-point ranges.
	ti := NewVal(obj.Int(7), w.IntMap)
	if r, ok := ti.(Range); !ok || r.Lo != 7 || r.Hi != 7 {
		t.Fatalf("NewVal(7) = %v", ti)
	}
	// The integer class normalizes to the full range.
	tc := NewClass(w.IntMap, w.IntMap)
	if r, ok := tc.(Range); !ok || !r.IsFull() {
		t.Fatalf("NewClass(int) = %v", tc)
	}
	// Non-integer classes stay class types.
	if _, ok := NewClass(w.StrMap, w.IntMap).(Class); !ok {
		t.Fatal("NewClass(str) kind")
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		a, b Type
		want bool
	}{
		{Unknown{}, rng(1, 5), true},
		{rng(0, 10), rng(1, 5), true},
		{rng(1, 5), rng(0, 10), false},
		{FullRange(), rng(-4, 4), true},
		{rng(0, 10), Unknown{}, false},
		{Class{M: w.StrMap}, val(obj.Str("x")), true},
		{Class{M: w.StrMap}, val(obj.Nil()), false},
		{Merge{Elems: []Type{FullRange(), Unknown{}}}, rng(3, 3), true},
		{rng(0, 5), Merge{Elems: []Type{rng(1, 2), rng(3, 4)}}, true},
		{rng(0, 5), Merge{Elems: []Type{rng(1, 2), Unknown{}}}, false},
		{val(w.Bool(true)), val(w.Bool(true)), true},
		{val(w.Bool(true)), val(w.Bool(false)), false},
	}
	for i, c := range cases {
		if got := Contains(c.a, c.b, intMap()); got != c.want {
			t.Errorf("case %d: Contains(%s, %s) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestMergeKeepsIdentity(t *testing.T) {
	// §4: int merged with unknown is {int, ?}, NOT ? (set union would
	// collapse it).
	m := MergeOf(FullRange(), Unknown{}, 1, intMap())
	mt, ok := m.(Merge)
	if !ok || len(mt.Elems) != 2 {
		t.Fatalf("MergeOf(int, ?) = %v", m)
	}
	if mt.Origin != 1 {
		t.Errorf("origin = %d", mt.Origin)
	}
	// Identical types do not form a merge.
	if _, ok := MergeOf(rng(1, 1), rng(1, 1), 2, intMap()).(Merge); ok {
		t.Error("identical merge should stay simple")
	}
}

func TestSubtractAndIntersect(t *testing.T) {
	im := intMap()
	// Unknown minus int-class = difference type.
	d := Subtract(Unknown{}, FullRange(), im)
	if _, ok := d.(Diff); !ok {
		t.Fatalf("Subtract(?, int) = %v", d)
	}
	// int minus int = dead failure branch.
	if got := Subtract(rng(1, 5), FullRange(), im); got != nil {
		t.Errorf("Subtract(range, int) = %v, want nil", got)
	}
	// success branch of int test on unknown gives the int class.
	if got := Intersect(Unknown{}, FullRange(), im); !Equal(got, FullRange()) {
		t.Errorf("Intersect(?, int) = %v", got)
	}
	// Intersect keeps the more precise incoming type.
	if got := Intersect(rng(2, 3), FullRange(), im); !Equal(got, rng(2, 3)) {
		t.Errorf("Intersect([2..3], int) = %v", got)
	}
	// Intersect against a disjoint class is dead.
	if got := Intersect(rng(1, 2), Class{M: w.StrMap}, im); got != nil {
		t.Errorf("Intersect(int, str) = %v", got)
	}
	// Diff refinement: (? - int) intersected with int is dead.
	if got := Intersect(Diff{Base: Unknown{}, Sub: FullRange()}, FullRange(), im); got != nil {
		t.Errorf("Intersect(?-int, int) = %v", got)
	}
	// Range end-cut subtraction stays a range.
	if got := Subtract(rng(0, 10), rng(0, 4), im); !Equal(got, rng(5, 10)) {
		t.Errorf("Subtract([0..10],[0..4]) = %v", got)
	}
}

func TestLoopGeneralize(t *testing.T) {
	im := intMap()
	// §5.1 example: 0 at head, 1 at tail. The paper generalizes to the
	// whole integer class; our directed widening keeps the stationary
	// lower bound (0) and widens only the moving upper bound.
	g := LoopGeneralize(rng(0, 0), rng(1, 1), 1, im)
	if r, ok := g.(Range); !ok || r.Lo != 0 || r.Hi != obj.MaxSmallInt {
		t.Fatalf("LoopGeneralize(0, 1) = %v, want [0..max]", g)
	}
	// A tail moving below the head widens the lower bound instead.
	g = LoopGeneralize(rng(0, 0), rng(-1, -1), 1, im)
	if r, ok := g.(Range); !ok || r.Lo != obj.MinSmallInt || r.Hi != 0 {
		t.Fatalf("LoopGeneralize(0, -1) = %v, want [min..0]", g)
	}
	// int at head, unknown at tail -> merge {int, ?}.
	g = LoopGeneralize(FullRange(), Unknown{}, 1, im)
	if m, ok := g.(Merge); !ok || len(m.Elems) != 2 {
		t.Fatalf("LoopGeneralize(int, ?) = %v", g)
	}
	// Fixpoint: {int, ?} stays {int, ?} against int and against ?.
	if got := LoopGeneralize(g, FullRange(), 1, im); !Equal(got, g) {
		t.Errorf("generalize({int,?}, int) = %v", got)
	}
	if got := LoopGeneralize(g, Unknown{}, 1, im); !Equal(got, g) {
		t.Errorf("generalize({int,?}, ?) = %v", got)
	}
	// Same non-int class values generalize to the class.
	tv, fv := val(w.Bool(true)), val(w.Bool(false))
	g = LoopGeneralize(tv, fv, 1, im)
	if m, ok := g.(Merge); !ok || len(m.Elems) != 2 {
		// true and false have different maps, so a merge is correct.
		t.Fatalf("LoopGeneralize(true, false) = %v", g)
	}
	// Equal types stay put.
	if got := LoopGeneralize(rng(1, 1), rng(1, 1), 1, im); !Equal(got, rng(1, 1)) {
		t.Errorf("generalize(1,1) = %v", got)
	}
}

func TestCompatibility(t *testing.T) {
	im := intMap()
	mIntUnk := Merge{Elems: []Type{FullRange(), Unknown{}}}
	cases := []struct {
		head, tail Type
		want       bool
	}{
		// §5.2: unknown head is NOT compatible with class-typed tail.
		{Unknown{}, FullRange(), false},
		{Unknown{}, Unknown{}, true},
		{Unknown{}, Diff{Base: Unknown{}, Sub: FullRange()}, true},
		// The paper's example: {int,?} tail vs int head iterates.
		{FullRange(), mIntUnk, false},
		// A merge head accepts either constituent.
		{mIntUnk, FullRange(), true},
		{mIntUnk, Unknown{}, true},
		{mIntUnk, mIntUnk, true},
		// Plain containment with class info preserved.
		{FullRange(), rng(1, 5), true},
		{rng(1, 5), FullRange(), false},
	}
	for i, c := range cases {
		if got := Compatible(c.head, c.tail, im); got != c.want {
			t.Errorf("case %d: Compatible(%s, %s) = %v, want %v", i, c.head, c.tail, got, c.want)
		}
	}
}

func TestRangeArithmetic(t *testing.T) {
	z, ov := AddRanges(rng(0, 10), rng(1, 1))
	if ov || !Equal(z, rng(1, 11)) {
		t.Errorf("add = %v ov=%v", z, ov)
	}
	// Near the top of the small-int range the overflow check stays.
	_, ov = AddRanges(rng(0, obj.MaxSmallInt), rng(1, 1))
	if !ov {
		t.Error("expected overflow possibility")
	}
	z, ov = MulRanges(rng(-3, 3), rng(-2, 4))
	if ov || z.Lo != -12 || z.Hi != 12 {
		t.Errorf("mul = %v ov=%v", z, ov)
	}
	z, dz := DivRanges(rng(10, 20), rng(2, 5))
	if dz || z.Lo != 2 || z.Hi != 10 {
		t.Errorf("div = %v dz=%v", z, dz)
	}
	_, dz = DivRanges(rng(1, 1), rng(-1, 1))
	if !dz {
		t.Error("expected div-zero possibility")
	}
	z, dz = ModRanges(rng(0, 100), rng(7, 7))
	if dz || z.Lo != 0 || z.Hi != 6 {
		t.Errorf("mod = %v", z)
	}
}

func TestComparisonFolding(t *testing.T) {
	if CmpLT(rng(0, 4), rng(5, 9)) != AlwaysTrue {
		t.Error("0..4 < 5..9 should fold true")
	}
	if CmpLT(rng(5, 9), rng(0, 5)) != AlwaysFalse {
		t.Error("5..9 < 0..5 should fold false")
	}
	if CmpLT(rng(0, 5), rng(5, 9)) != MaybeTrue {
		t.Error("overlap should not fold")
	}
	if CmpEQ(rng(3, 3), rng(3, 3)) != AlwaysTrue {
		t.Error("3 = 3")
	}
	if CmpEQ(rng(0, 2), rng(3, 4)) != AlwaysFalse {
		t.Error("disjoint =")
	}
}

func TestRefineLT(t *testing.T) {
	tx, ty, fx, fy := RefineLT(rng(0, 10), rng(5, 5))
	if !Equal(tx, rng(0, 4)) || !Equal(ty, rng(5, 5)) {
		t.Errorf("true branch: %v %v", tx, ty)
	}
	if !Equal(fx, rng(5, 10)) || !Equal(fy, rng(5, 5)) {
		t.Errorf("false branch: %v %v", fx, fy)
	}
	// Dead branch detection: 0..4 < 10 is always true, so the false
	// branch refinement is empty.
	_, _, fx, _ = RefineLT(rng(0, 4), rng(10, 10))
	if !fx.Empty() {
		t.Errorf("false branch should be empty, got %v", fx)
	}
}

func TestUnionCoalescing(t *testing.T) {
	im := intMap()
	u := UnionOf(rng(0, 4), rng(5, 9), im)
	if !Equal(u, rng(0, 9)) {
		t.Errorf("adjacent ranges should coalesce: %v", u)
	}
	u = UnionOf(rng(0, 4), rng(9, 12), im)
	if _, ok := u.(Union); !ok {
		t.Errorf("disjoint ranges: %v", u)
	}
	u = UnionOf(val(w.Bool(true)), val(w.Bool(false)), im)
	if un, ok := u.(Union); !ok || len(un.Elems) != 2 {
		t.Errorf("bool union: %v", u)
	}
}

func TestConstant(t *testing.T) {
	if v, ok := Constant(rng(4, 4)); !ok || !v.Eq(obj.Int(4)) {
		t.Error("range constant")
	}
	if _, ok := Constant(rng(4, 5)); ok {
		t.Error("non-constant range")
	}
	if v, ok := Constant(val(w.Bool(true))); !ok || !v.Eq(w.Bool(true)) {
		t.Error("value constant")
	}
	if _, ok := Constant(Unknown{}); ok {
		t.Error("unknown constant")
	}
}

func TestMapOf(t *testing.T) {
	im := intMap()
	if MapOf(rng(1, 2), im) != im {
		t.Error("range map")
	}
	if MapOf(Unknown{}, im) != nil {
		t.Error("unknown map")
	}
	if MapOf(Merge{Elems: []Type{rng(1, 1), rng(5, 5)}}, im) != im {
		t.Error("int merge map")
	}
	if MapOf(Merge{Elems: []Type{rng(1, 1), Unknown{}}}, im) != nil {
		t.Error("mixed merge map")
	}
	if MapOf(Diff{Base: rng(0, 3), Sub: rng(0, 0)}, im) != im {
		t.Error("diff map")
	}
}

// Property: Contains is reflexive and merge preserves both sides.
func TestQuickContainmentProperties(t *testing.T) {
	im := intMap()
	f := func(lo1, w1, lo2, w2 uint16) bool {
		a := rng(int64(lo1), int64(lo1)+int64(w1))
		b := rng(int64(lo2), int64(lo2)+int64(w2))
		m := MergeOf(a, b, 3, im)
		return Contains(a, a, im) &&
			Contains(m, a, im) && Contains(m, b, im)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddRanges result contains every pointwise sum.
func TestQuickAddRangesSound(t *testing.T) {
	f := func(a, b int16, wa, wb uint8, pa, pb uint8) bool {
		x := rng(int64(a), int64(a)+int64(wa))
		y := rng(int64(b), int64(b)+int64(wb))
		z, _ := AddRanges(x, y)
		// Pick a point in each range.
		px := x.Lo + int64(pa)%(x.Hi-x.Lo+1)
		py := y.Lo + int64(pb)%(y.Hi-y.Lo+1)
		s := px + py
		return z.Lo <= s && s <= z.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RefineLT branches are sound — any pair (px, py) with px<py
// stays inside the true-branch ranges.
func TestQuickRefineLTSound(t *testing.T) {
	f := func(a, b int16, wa, wb uint8, pa, pb uint8) bool {
		x := rng(int64(a), int64(a)+int64(wa))
		y := rng(int64(b), int64(b)+int64(wb))
		tx, ty, fx, fy := RefineLT(x, y)
		px := x.Lo + int64(pa)%(x.Hi-x.Lo+1)
		py := y.Lo + int64(pb)%(y.Hi-y.Lo+1)
		if px < py {
			return tx.Lo <= px && px <= tx.Hi && ty.Lo <= py && py <= ty.Hi
		}
		return fx.Lo <= px && px <= fx.Hi && fy.Lo <= py && py <= fy.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisjoint(t *testing.T) {
	im := intMap()
	if !Disjoint(rng(0, 4), rng(5, 9), im) {
		t.Error("disjoint ranges")
	}
	if Disjoint(rng(0, 5), rng(5, 9), im) {
		t.Error("overlapping ranges")
	}
	if !Disjoint(rng(0, 4), Class{M: w.StrMap}, im) {
		t.Error("int vs string class")
	}
	if !Disjoint(val(w.Bool(true)), val(w.Bool(false)), im) {
		t.Error("true vs false")
	}
	if Disjoint(Unknown{}, rng(0, 1), im) {
		t.Error("unknown overlaps everything")
	}
}

func TestTypeStrings(t *testing.T) {
	im := intMap()
	_ = im
	cases := map[string]Type{
		"?":        Unknown{},
		"int":      FullRange(),
		"5":        rng(5, 5),
		"[0..9]":   rng(0, 9),
		"{int, ?}": Merge{Elems: []Type{FullRange(), Unknown{}}},
		"true":     val(w.Bool(true)),
		"nil":      val(obj.Nil()),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%T.String() = %q, want %q", ty, got, want)
		}
	}
}
