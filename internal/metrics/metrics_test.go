package metrics

import (
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func wantLine(t *testing.T, text, line string) {
	t.Helper()
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("exposition missing line %q:\n%s", line, text)
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	g := r.Gauge("queue_depth", "Requests waiting.")
	g.Set(7)
	g.Dec()

	text := expose(t, r)
	wantLine(t, text, "# HELP requests_total Requests served.")
	wantLine(t, text, "# TYPE requests_total counter")
	wantLine(t, text, "requests_total 42")
	wantLine(t, text, "# TYPE queue_depth gauge")
	wantLine(t, text, "queue_depth 6")
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "By endpoint and code.", "endpoint", "code")
	v.With("/eval", "200").Add(3)
	v.With("/eval", "429").Inc()
	v.With("/run", "200").Inc()
	// Same labels resolve to the same cell.
	v.With("/eval", "200").Inc()

	text := expose(t, r)
	wantLine(t, text, `http_requests_total{endpoint="/eval",code="200"} 4`)
	wantLine(t, text, `http_requests_total{endpoint="/eval",code="429"} 1`)
	wantLine(t, text, `http_requests_total{endpoint="/run",code="200"} 1`)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("odd_total", "", "what").With("a\"b\\c\nd").Inc()
	text := expose(t, r)
	wantLine(t, text, `odd_total{what="a\"b\\c\nd"} 1`)
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	text := expose(t, r)
	wantLine(t, text, "# TYPE latency_seconds histogram")
	wantLine(t, text, `latency_seconds_bucket{le="0.01"} 2`) // 0.005 and the boundary 0.01
	wantLine(t, text, `latency_seconds_bucket{le="0.1"} 3`)
	wantLine(t, text, `latency_seconds_bucket{le="1"} 4`)
	wantLine(t, text, `latency_seconds_bucket{le="+Inf"} 5`)
	wantLine(t, text, `latency_seconds_count 5`)
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Sum = 2.565
	wantLine(t, text, `latency_seconds_sum 2.565`)
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("req_seconds", "", []float64{1}, "endpoint")
	v.With("/eval").Observe(0.5)
	v.With("/run").Observe(2)
	text := expose(t, r)
	wantLine(t, text, `req_seconds_bucket{endpoint="/eval",le="1"} 1`)
	wantLine(t, text, `req_seconds_bucket{endpoint="/run",le="1"} 0`)
	wantLine(t, text, `req_seconds_bucket{endpoint="/run",le="+Inf"} 1`)
}

func TestRegisterFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("cache_misses_total", "From the cache's own counters.", func() float64 {
		n += 10
		return float64(n)
	})
	r.RegisterFunc("compiles_total", "", KindCounter, []string{"tier"}, func() []Sample {
		return []Sample{
			{Labels: []string{"baseline"}, Value: 12},
			{Labels: []string{"optimizing"}, Value: 3},
		}
	})
	text := expose(t, r)
	wantLine(t, text, "cache_misses_total 10")
	wantLine(t, text, `compiles_total{tier="baseline"} 12`)
	wantLine(t, text, `compiles_total{tier="optimizing"} 3`)
	// Callback families re-evaluate per exposition.
	wantLine(t, expose(t, r), "cache_misses_total 20")
}

func TestFamiliesSortedAndReregistrationChecked(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "")
	text := expose(t, r)
	if strings.Index(text, "aaa_total") > strings.Index(text, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", text)
	}
	// Same name+kind+labels: same cell.
	r.Counter("aaa_total", "").Inc()
	wantLine(t, expose(t, r), "aaa_total 1")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("aaa_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestConcurrentUse hammers every metric type from 8 goroutines while
// an exposer renders; -race is the assertion, plus final counts.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	v := r.CounterVec("v_total", "", "w")
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lc := v.With("w" + string(rune('0'+w)))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / per)
				lc.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WriteText(&b)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
