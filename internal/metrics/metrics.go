// Package metrics is a small, dependency-free metrics subsystem:
// counters, gauges and histograms — plain and labelled — registered in
// a Registry that exposes everything in the Prometheus text format.
//
// The package exists so the serving layer (internal/server) can export
// the VM, code-cache and admission-control counters without pulling a
// client library into the module. The design keeps the hot path cheap:
// a Counter.Add is one atomic add; labelled series are resolved once
// and cached by the caller; snapshot-style sources (the code cache's
// sharded counters, the compile log's tier counts) register a callback
// instead of being pushed into, so exposition always reflects the live
// value with no double bookkeeping.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	// KindCounter is a monotonically-increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Sample is one series of a callback-backed family: label values (in
// the family's label-name order) plus the current value.
type Sample struct {
	Labels []string
	Value  float64
}

// DefBuckets are the default histogram bounds, in seconds — tuned for
// request latencies from sub-millisecond evals to multi-second
// benchmark runs.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]metric // key: label values joined by \xff
	order  []string          // insertion order of series keys
	fn     func() []Sample   // callback families: overrides series
}

// metric is the value cell behind one series.
type metric interface{ write(w io.Writer, fam *family, labelKey string) }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register creates or fetches a family, enforcing name/label/kind
// consistency. Registration happens at startup; inconsistent reuse is
// a programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labelNames []string, buckets []float64) *family {
	mustValidName(name)
	for _, l := range labelNames {
		mustValidName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("metrics: %s re-registered with different kind or labels", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: labelNames, buckets: buckets,
		series: map[string]metric{},
	}
	r.families[name] = f
	return f
}

func mustValidName(name string) {
	if name == "" {
		panic("metrics: empty name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid name %q", name))
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesFor fetches or creates the series cell for the given label
// values.
func (f *family) seriesFor(labelValues []string, mk func() metric) metric {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label value(s), got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically-increasing integer counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone; negative
// deltas are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, fam *family, labelKey string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(fam.labelNames, labelKey), c.Value())
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.seriesFor(nil, func() metric { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.seriesFor(labelValues, func() metric { return &Counter{} }).(*Counter)
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is an integer value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, fam *family, labelKey string) {
	fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(fam.labelNames, labelKey), g.Value())
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.seriesFor(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.seriesFor(labelValues, func() metric { return &Gauge{} }).(*Gauge)
}

// ---------------------------------------------------------------------
// Histogram

// Histogram observes float64 values into cumulative buckets. The
// bucket counts, total count and sum are each atomics: an exposition
// racing an Observe may see the observation in some of them and not
// others (standard for lock-free histograms); every individual value
// is monotone.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Int64
}

// atomicFloat is a float64 stored as bits, updated by CAS.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func (h *Histogram) write(w io.Writer, fam *family, labelKey string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			renderLabelsExtra(fam.labelNames, labelKey, "le", formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
		renderLabelsExtra(fam.labelNames, labelKey, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(fam.labelNames, labelKey), formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(fam.labelNames, labelKey), h.count.Load())
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Histogram registers (or fetches) an unlabelled histogram. Nil bounds
// use DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, bounds)
	return f.seriesFor(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family. Nil bounds use
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labelNames, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.seriesFor(labelValues, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

// ---------------------------------------------------------------------
// Callback families

// RegisterFunc registers a family whose samples are produced by fn at
// exposition time — the bridge for sources that already keep their own
// counters (the code cache's sharded stats, the compile log's tier
// counts). kind must be KindCounter or KindGauge. fn must be safe to
// call from any goroutine and should return one Sample per series,
// label values in labelNames order.
func (r *Registry) RegisterFunc(name, help string, kind Kind, labelNames []string, fn func() []Sample) {
	if kind == KindHistogram {
		panic("metrics: RegisterFunc does not support histograms")
	}
	f := r.register(name, help, kind, labelNames, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers an unlabelled gauge computed at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.RegisterFunc(name, help, KindGauge, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// CounterFunc registers an unlabelled counter snapshot computed at
// exposition time (the underlying source must be monotone).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.RegisterFunc(name, help, KindCounter, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// ---------------------------------------------------------------------
// Exposition

// WriteText renders every family in the Prometheus text exposition
// format (families sorted by name, series in creation order).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		if f.fn != nil {
			samples := f.fn()
			f.mu.Unlock()
			for _, s := range samples {
				if len(s.Labels) != len(f.labelNames) {
					continue // malformed sample: skip rather than corrupt output
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name,
					renderLabels(f.labelNames, strings.Join(s.Labels, "\xff")), formatFloat(s.Value))
			}
		} else {
			keys := append([]string(nil), f.order...)
			series := make([]metric, len(keys))
			for i, k := range keys {
				series[i] = f.series[k]
			}
			f.mu.Unlock()
			for i, k := range keys {
				series[i].write(&b, f, k)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// renderLabels renders {name="value",...} from the family's label
// names and a \xff-joined value key; empty for unlabelled series.
func renderLabels(names []string, key string) string {
	return renderLabelsExtra(names, key, "", "")
}

func renderLabelsExtra(names []string, key, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var values []string
	if len(names) > 0 {
		values = strings.Split(key, "\xff")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes backslash, quote and newline — exactly the three
		// escapes the text format defines for label values.
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders floats the way Prometheus expects: integral
// values without an exponent, +Inf for infinity.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
