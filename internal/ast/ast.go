// Package ast defines the abstract syntax tree for the SELF-like
// source language.
//
// A source file is a sequence of slot definitions installed into the
// lobby (the global namespace object). Methods are code-bearing slots;
// a method body is a list of expressions with optional local slot
// declarations. Blocks are closure literals. Message sends come in
// unary, binary and keyword flavours; primitive calls are keyword sends
// whose selector begins with an underscore.
package ast

import (
	"fmt"
	"strings"

	"selfgo/internal/token"
)

// Expr is any expression node.
type Expr interface {
	Pos() token.Pos
	String() string
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	P     token.Pos
	Value int64
}

// StrLit is a string literal.
type StrLit struct {
	P     token.Pos
	Value string
}

// Ident is a bare identifier: a reference to a local, an argument, or a
// unary message implicitly sent to self ("self" itself parses to Ident).
type Ident struct {
	P    token.Pos
	Name string
}

// UnaryMsg is "recv sel".
type UnaryMsg struct {
	P    token.Pos
	Recv Expr // never nil; implicit-self sends parse as Ident
	Sel  string
}

// BinMsg is "recv op arg".
type BinMsg struct {
	P    token.Pos
	Recv Expr
	Op   string
	Arg  Expr
}

// KeywordMsg is "recv k1: a1 K2: a2 ...". Recv == nil means the message
// is sent to the implicit receiver (self / enclosing scope); this form
// also expresses assignment, "x: expr", which the compiler resolves
// against the lexical scope before falling back to a real send.
type KeywordMsg struct {
	P    token.Pos
	Recv Expr // nil for implicit-receiver sends
	Sel  string
	Args []Expr
}

// PrimCall invokes a primitive operation, e.g. "a _IntAdd: b IfFail: [...]".
// Unary primitives have no Args. The final argument is a failure block
// when the selector ends in "IfFail:".
type PrimCall struct {
	P    token.Pos
	Recv Expr
	Sel  string
	Args []Expr
}

// Block is a closure literal "[ :a :b | |locals| exprs ]".
type Block struct {
	P      token.Pos
	Params []string
	Locals []*Local
	Body   []Expr
}

// Return is "^ expr": a return from the lexically enclosing method
// (non-local when it appears inside a block).
type Return struct {
	P token.Pos
	E Expr
}

// ObjectLit is "(| slots |)", a fresh prototype object.
type ObjectLit struct {
	P     token.Pos
	Slots []*Slot
}

func (e *IntLit) Pos() token.Pos     { return e.P }
func (e *StrLit) Pos() token.Pos     { return e.P }
func (e *Ident) Pos() token.Pos      { return e.P }
func (e *UnaryMsg) Pos() token.Pos   { return e.P }
func (e *BinMsg) Pos() token.Pos     { return e.P }
func (e *KeywordMsg) Pos() token.Pos { return e.P }
func (e *PrimCall) Pos() token.Pos   { return e.P }
func (e *Block) Pos() token.Pos      { return e.P }
func (e *Return) Pos() token.Pos     { return e.P }
func (e *ObjectLit) Pos() token.Pos  { return e.P }

func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*UnaryMsg) exprNode()   {}
func (*BinMsg) exprNode()     {}
func (*KeywordMsg) exprNode() {}
func (*PrimCall) exprNode()   {}
func (*Block) exprNode()      {}
func (*Return) exprNode()     {}
func (*ObjectLit) exprNode()  {}

// Local is a local slot declaration inside a method or block:
// "name" (initialized to nil) or "name <- expr".
type Local struct {
	P    token.Pos
	Name string
	Init Expr // nil means nil-initialized
}

// SlotKind classifies object slots.
type SlotKind int

// Slot kinds.
const (
	ConstSlot  SlotKind = iota // name = value
	DataSlot                   // name <- value (an assignable slot plus its assignment slot "name:")
	ParentSlot                 // name* = value (constant parent)
	MethodSlot                 // selector pattern = ( body )
)

func (k SlotKind) String() string {
	switch k {
	case ConstSlot:
		return "const"
	case DataSlot:
		return "data"
	case ParentSlot:
		return "parent"
	case MethodSlot:
		return "method"
	}
	return fmt.Sprintf("SlotKind(%d)", int(k))
}

// Slot is one slot in an object literal (or at the top level of a file).
type Slot struct {
	P      token.Pos
	Kind   SlotKind
	Name   string  // slot name or full selector ("at:Put:", "+", "size")
	Init   Expr    // for const/data/parent slots
	Method *Method // for method slots
}

// Method is the code object stored in a method slot.
type Method struct {
	P      token.Pos
	Sel    string // selector, e.g. "at:Put:", "+", "double"
	Params []string
	Locals []*Local
	Body   []Expr
}

// File is a parsed source file: slots to install in the lobby.
type File struct {
	Slots []*Slot
}

// --- Printing (used by tests and cmd/selfc -dump-ast) ---

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }
func (e *StrLit) String() string { return fmt.Sprintf("'%s'", e.Value) }
func (e *Ident) String() string  { return e.Name }

func (e *UnaryMsg) String() string {
	return fmt.Sprintf("(%s %s)", e.Recv, e.Sel)
}

func (e *BinMsg) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Recv, e.Op, e.Arg)
}

func (e *KeywordMsg) String() string {
	recv := "<implicit>"
	if e.Recv != nil {
		recv = e.Recv.String()
	}
	return fmt.Sprintf("(%s %s)", recv, joinSel(e.Sel, e.Args))
}

func (e *PrimCall) String() string {
	if len(e.Args) == 0 {
		return fmt.Sprintf("(%s %s)", e.Recv, e.Sel)
	}
	return fmt.Sprintf("(%s %s)", e.Recv, joinSel(e.Sel, e.Args))
}

func joinSel(sel string, args []Expr) string {
	parts := SplitSelector(sel)
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p)
		b.WriteByte(' ')
		if i < len(args) {
			b.WriteString(args[i].String())
		}
	}
	return b.String()
}

func (e *Block) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for _, p := range e.Params {
		fmt.Fprintf(&b, ":%s ", p)
	}
	if len(e.Params) > 0 {
		b.WriteString("| ")
	}
	writeBodyString(&b, e.Locals, e.Body)
	b.WriteByte(']')
	return b.String()
}

func (e *Return) String() string { return "^" + e.E.String() }

func (e *ObjectLit) String() string {
	var b strings.Builder
	b.WriteString("(| ")
	for _, s := range e.Slots {
		b.WriteString(s.String())
		b.WriteString(". ")
	}
	b.WriteString("|)")
	return b.String()
}

func (s *Slot) String() string {
	switch s.Kind {
	case ConstSlot:
		return fmt.Sprintf("%s = %s", s.Name, s.Init)
	case DataSlot:
		return fmt.Sprintf("%s <- %s", s.Name, s.Init)
	case ParentSlot:
		return fmt.Sprintf("%s* = %s", s.Name, s.Init)
	case MethodSlot:
		return fmt.Sprintf("%s = %s", s.Name, s.Method)
	}
	return "<bad slot>"
}

func (m *Method) String() string {
	var b strings.Builder
	b.WriteString("( ")
	writeBodyString(&b, m.Locals, m.Body)
	b.WriteString(")")
	return b.String()
}

func writeBodyString(b *strings.Builder, locals []*Local, body []Expr) {
	if len(locals) > 0 {
		b.WriteString("| ")
		for _, l := range locals {
			if l.Init != nil {
				fmt.Fprintf(b, "%s <- %s. ", l.Name, l.Init)
			} else {
				fmt.Fprintf(b, "%s. ", l.Name)
			}
		}
		b.WriteString("| ")
	}
	for _, e := range body {
		b.WriteString(e.String())
		b.WriteString(". ")
	}
}

// SplitSelector splits a keyword selector into its colon-terminated
// parts: "at:Put:" -> ["at:", "Put:"]. Unary and binary selectors are
// returned whole.
func SplitSelector(sel string) []string {
	if !strings.HasSuffix(sel, ":") {
		return []string{sel}
	}
	var parts []string
	start := 0
	for i := 0; i < len(sel); i++ {
		if sel[i] == ':' {
			parts = append(parts, sel[start:i+1])
			start = i + 1
		}
	}
	return parts
}

// NumArgs returns the number of arguments a selector takes: 0 for unary,
// 1 for binary, and the number of colons for keyword selectors.
func NumArgs(sel string) int {
	if n := strings.Count(sel, ":"); n > 0 {
		return n
	}
	if sel != "" && !isIdentStart(sel[0]) && sel[0] != '_' {
		return 1 // binary operator
	}
	return 0
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// Walk calls fn for e and every expression reachable from it
// (pre-order). Walking descends into blocks and object-literal slot
// initializers, including method bodies.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *UnaryMsg:
		Walk(n.Recv, fn)
	case *BinMsg:
		Walk(n.Recv, fn)
		Walk(n.Arg, fn)
	case *KeywordMsg:
		Walk(n.Recv, fn)
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *PrimCall:
		Walk(n.Recv, fn)
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *Block:
		for _, l := range n.Locals {
			Walk(l.Init, fn)
		}
		for _, s := range n.Body {
			Walk(s, fn)
		}
	case *Return:
		Walk(n.E, fn)
	case *ObjectLit:
		for _, s := range n.Slots {
			Walk(s.Init, fn)
			if s.Method != nil {
				for _, l := range s.Method.Locals {
					Walk(l.Init, fn)
				}
				for _, x := range s.Method.Body {
					Walk(x, fn)
				}
			}
		}
	}
}
