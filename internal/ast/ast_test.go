package ast

import (
	"strings"
	"testing"

	"selfgo/internal/token"
)

func TestSplitSelector(t *testing.T) {
	cases := map[string][]string{
		"at:":          {"at:"},
		"at:Put:":      {"at:", "Put:"},
		"upTo:Do:":     {"upTo:", "Do:"},
		"a:B:C:":       {"a:", "B:", "C:"},
		"size":         {"size"},
		"+":            {"+"},
		"_IntAdd:":     {"_IntAdd:"},
		"value:Value:": {"value:", "Value:"},
	}
	for sel, want := range cases {
		got := SplitSelector(sel)
		if len(got) != len(want) {
			t.Errorf("SplitSelector(%q) = %v", sel, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SplitSelector(%q)[%d] = %q, want %q", sel, i, got[i], want[i])
			}
		}
	}
}

func TestNumArgs(t *testing.T) {
	cases := map[string]int{
		"size": 0, "+": 1, "<=": 1, "at:": 1, "at:Put:": 2,
		"_Clone": 0, "_IntAdd:IfFail:": 2, "a:B:C:": 3,
	}
	for sel, want := range cases {
		if got := NumArgs(sel); got != want {
			t.Errorf("NumArgs(%q) = %d, want %d", sel, got, want)
		}
	}
}

func TestExprStrings(t *testing.T) {
	p := token.Pos{Line: 1, Col: 1}
	five := &IntLit{P: p, Value: 5}
	x := &Ident{P: p, Name: "x"}
	cases := []struct {
		e    Expr
		want string
	}{
		{five, "5"},
		{&StrLit{P: p, Value: "hi"}, "'hi'"},
		{x, "x"},
		{&UnaryMsg{P: p, Recv: x, Sel: "size"}, "(x size)"},
		{&BinMsg{P: p, Recv: x, Op: "+", Arg: five}, "(x + 5)"},
		{&KeywordMsg{P: p, Recv: x, Sel: "at:", Args: []Expr{five}}, "(x at: 5)"},
		{&KeywordMsg{P: p, Sel: "x:", Args: []Expr{five}}, "(<implicit> x: 5)"},
		{&PrimCall{P: p, Recv: x, Sel: "_Clone"}, "(x _Clone)"},
		{&Return{P: p, E: five}, "^5"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestBlockAndObjectStrings(t *testing.T) {
	p := token.Pos{}
	blk := &Block{P: p, Params: []string{"i"}, Body: []Expr{&Ident{P: p, Name: "i"}}}
	if s := blk.String(); !strings.Contains(s, ":i") || !strings.HasPrefix(s, "[") {
		t.Errorf("block string %q", s)
	}
	o := &ObjectLit{P: p, Slots: []*Slot{
		{Kind: DataSlot, Name: "x", Init: &IntLit{Value: 1}},
		{Kind: ConstSlot, Name: "k", Init: &IntLit{Value: 2}},
		{Kind: ParentSlot, Name: "p", Init: &Ident{Name: "lobby"}},
		{Kind: MethodSlot, Name: "m", Method: &Method{Sel: "m", Body: []Expr{&IntLit{Value: 3}}}},
	}}
	s := o.String()
	for _, want := range []string{"x <- 1", "k = 2", "p* = lobby", "m = ( 3. )"} {
		if !strings.Contains(s, want) {
			t.Errorf("object string %q missing %q", s, want)
		}
	}
}

func TestSlotKindString(t *testing.T) {
	want := map[SlotKind]string{ConstSlot: "const", DataSlot: "data", ParentSlot: "parent", MethodSlot: "method"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%v", k)
		}
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	p := token.Pos{}
	inner := &BinMsg{P: p, Recv: &Ident{Name: "a"}, Op: "+", Arg: &IntLit{Value: 1}}
	blk := &Block{P: p, Locals: []*Local{{Name: "t", Init: &IntLit{Value: 2}}}, Body: []Expr{inner}}
	obj := &ObjectLit{P: p, Slots: []*Slot{
		{Kind: ConstSlot, Name: "c", Init: &IntLit{Value: 3}},
		{Kind: MethodSlot, Name: "m", Method: &Method{Sel: "m",
			Locals: []*Local{{Name: "u", Init: &IntLit{Value: 4}}},
			Body:   []Expr{&Return{P: p, E: &IntLit{Value: 5}}}}},
	}}
	top := &KeywordMsg{P: p, Recv: blk, Sel: "foo:", Args: []Expr{obj}}

	ints := map[int64]bool{}
	Walk(top, func(e Expr) {
		if n, ok := e.(*IntLit); ok {
			ints[n.Value] = true
		}
	})
	for _, v := range []int64{1, 2, 3, 4, 5} {
		if !ints[v] {
			t.Errorf("Walk missed literal %d", v)
		}
	}
}
