package prelude_test

import (
	"testing"

	"selfgo"
)

// eval runs an expression under the given config and returns the
// integer result.
func eval(t *testing.T, cfg selfgo.Config, expr string) int64 {
	t.Helper()
	sys, err := selfgo.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Eval(expr)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return res.Value.I()
}

// TestPreludeProtocols checks every method of the standard world under
// both the most and the least optimizing configurations (the prelude
// is ordinary object-language code either way).
func TestPreludeProtocols(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		// integers
		{`3 + 4`, 7}, {`3 - 4`, -1}, {`3 * 4`, 12}, {`12 / 4`, 3}, {`14 % 4`, 2},
		{`14 rem: 4`, 2}, {`14 quo: 4`, 3},
		{`(3 < 4) asInt`, 1}, {`(3 <= 3) asInt`, 1}, {`(3 > 4) asInt`, 0},
		{`(3 >= 4) asInt`, 0}, {`(3 = 3) asInt`, 1}, {`(3 != 3) asInt`, 0},
		{`3 min: 4`, 3}, {`3 max: 4`, 4}, {`-7 abs`, 7}, {`7 negate`, -7},
		{`6 succ`, 7}, {`6 pred`, 5},
		{`(6 even) asInt`, 1}, {`(6 odd) asInt`, 0},
		{`12 bitAnd: 10`, 8}, {`12 bitOr: 10`, 14}, {`12 bitXor: 10`, 6},
		// booleans
		{`(true not) asInt`, 0}, {`(false not) asInt`, 1},
		{`(true and: [ true ]) asInt`, 1}, {`(true or: [ false ]) asInt`, 1},
		{`(false and: [ true ]) asInt`, 0}, {`(false or: [ true ]) asInt`, 1},
		{`true ifTrue: [ 1 ] False: [ 2 ]`, 1},
		{`false ifTrue: [ 1 ] False: [ 2 ]`, 2},
		{`true ifFalse: [ 9 ] True: [ 8 ]`, 8},
		// nil
		{`(nil isNil) asInt`, 1}, {`(nil notNil) asInt`, 0},
		{`(3 isNil) asInt`, 0}, {`(3 notNil) asInt`, 1},
		// control
		{`| s <- 0 | 2 upTo: 5 Do: [ :i | s: s + i ]. s`, 9},
		{`| s <- 0 | 2 to: 5 Do: [ :i | s: s + i ]. s`, 14},
		{`| s <- 0 | 5 downTo: 3 Do: [ :i | s: s + i ]. s`, 12},
		{`| s <- 0 | 4 timesRepeat: [ s: s + 3 ]. s`, 12},
		{`| i <- 0 | [ i < 7 ] whileTrue: [ i: i + 1 ]. i`, 7},
		{`| i <- 9 | [ i < 7 ] whileFalse: [ i: i - 1 ]. i`, 6},
		// vectors
		{`(vector copySize: 5) size`, 5},
		{`(vector copySize: 5 FillWith: 9) at: 3`, 9},
		{`| v | v: vector copySize: 3. v at: 1 Put: 42. v at: 1`, 42},
		{`| v. s <- 0 | v: vector copySize: 4 FillWith: 2. v do: [ :e | s: s + e ]. s`, 8},
		{`| v | v: vector copySize: 3. v atAllPut: 5. (v at: 0) + (v at: 2)`, 10},
		{`| v. s <- 0 | v: vector copySize: 3 FillWith: 1. v withIndexDo: [ :e :i | s: s + i ]. s`, 3},
		{`| v | v: vector copySize: 4. v fillFrom: [ :i | i * 2 ]. v at: 3`, 6},
		{`| a. b | a: vector copySize: 2 FillWith: 7. b: a copy. b at: 0 Put: 1. a at: 0`, 7},
	}
	for _, cfg := range []selfgo.Config{selfgo.NewSELF, selfgo.ST80} {
		for _, c := range cases {
			if got := eval(t, cfg, c.expr); got != c.want {
				t.Errorf("[%s] %s = %d, want %d", cfg.Name, c.expr, got, c.want)
			}
		}
	}
}

// TestRuntimeWhileTrueFallback: sending whileTrue: to a runtime block
// (not a literal) uses the recursive prelude definition.
func TestRuntimeWhileTrueFallback(t *testing.T) {
	// Under ST-80 the assignment erases the block types, so whileTrue:
	// is a genuine dynamic send resolved to the recursive traitsBlock
	// method; under new SELF the same code inlines to a loop.
	for _, cfg := range []selfgo.Config{selfgo.ST80, selfgo.NewSELF} {
		got := eval(t, cfg, `
		| i <- 0. cond. body |
		cond: [ i < 5 ].
		body: [ i: i + 1 ].
		"materialize the blocks through a data slot so whileTrue: sees
		 runtime closures"
		cond whileTrue: body.
		i`)
		if got != 5 {
			t.Errorf("[%s] runtime whileTrue: = %d, want 5", cfg.Name, got)
		}
	}
}
