// Package prelude holds the SELF-source standard world: integer,
// boolean, block, vector, string and nil behavior, all written in the
// object language on top of robust primitives. Control structures
// (ifTrue:False:, whileTrue:, upTo:Do:) are ordinary methods and
// blocks — the compiler earns its speed by inlining them, exactly the
// situation the paper targets.
package prelude

// Source is the prelude program, loaded into every world.
const Source = `
"--- error handling ---"
primitiveFailed: what = ( what _Error ).
error: msg = ( msg _Error ).
halt = ( 'halt' _Error ).

"--- universal defaults, inherited via parent* = lobby ---"
isNil = ( self _Eq: nil ).
notNil = ( (self _Eq: nil) not ).
== x = ( self _Eq: x ).
print = ( self _Print ).
printLine = ( self _PrintLine ).
yourself = ( self ).

"--- booleans ---"
traitsTrue = (|
    parent* = lobby.
    ifTrue: t = ( t value ).
    ifFalse: f = ( nil ).
    ifTrue: t False: f = ( t value ).
    ifFalse: f True: t = ( t value ).
    not = ( false ).
    and: b = ( b value ).
    or: b = ( true ).
    asInt = ( 1 ).
|).
traitsFalse = (|
    parent* = lobby.
    ifTrue: t = ( nil ).
    ifFalse: f = ( f value ).
    ifTrue: t False: f = ( f value ).
    ifFalse: f True: t = ( f value ).
    not = ( true ).
    and: b = ( false ).
    or: b = ( b value ).
    asInt = ( 0 ).
|).

"--- nil ---"
traitsNil = (|
    parent* = lobby.
    isNil = ( true ).
    notNil = ( false ).
    = x = ( nil _Eq: x ).
|).

"--- small integers ---"
traitsInteger = (|
    parent* = lobby.
    + n = ( _IntAdd: n ).
    - n = ( _IntSub: n ).
    * n = ( _IntMul: n ).
    / n = ( _IntDiv: n ).
    % n = ( _IntMod: n ).
    bitAnd: n = ( _IntAnd: n ).
    bitOr: n = ( _IntOr: n ).
    bitXor: n = ( _IntXor: n ).
    rem: n = ( _IntMod: n ).
    quo: n = ( _IntDiv: n ).
    < n = ( _IntLT: n ).
    <= n = ( _IntLE: n ).
    > n = ( _IntGT: n ).
    >= n = ( _IntGE: n ).
    = n = ( _IntEQ: n ).
    != n = ( _IntNE: n ).
    min: n = ( (self < n) ifTrue: [ self ] False: [ n ] ).
    max: n = ( (self > n) ifTrue: [ self ] False: [ n ] ).
    abs = ( (self < 0) ifTrue: [ 0 - self ] False: [ self ] ).
    negate = ( 0 - self ).
    succ = ( self + 1 ).
    pred = ( self - 1 ).
    even = ( (self % 2) = 0 ).
    odd = ( (self % 2) != 0 ).
    upTo: lim Do: blk = (
        | i |
        i: self.
        [ i < lim ] whileTrue: [ blk value: i. i: i + 1 ].
        self ).
    to: lim Do: blk = ( self upTo: lim + 1 Do: blk ).
    downTo: lim Do: blk = (
        | i |
        i: self.
        [ i >= lim ] whileTrue: [ blk value: i. i: i - 1 ].
        self ).
    timesRepeat: blk = (
        | i |
        i: 0.
        [ i < self ] whileTrue: [ blk value. i: i + 1 ].
        self ).
|).

"--- blocks: runtime fallbacks when a loop receiver is not a literal ---"
traitsBlock = (|
    parent* = lobby.
    whileTrue: body = (
        (self value) ifTrue: [ body value. self whileTrue: body ] False: [ nil ] ).
    whileFalse: body = (
        (self value) ifTrue: [ nil ] False: [ body value. self whileFalse: body ] ).
|).

"--- vectors (fixed-size indexable collections, 0-based) ---"
traitsVector = (|
    parent* = lobby.
    at: i = ( _At: i ).
    at: i Put: v = ( _At: i Put: v ).
    size = ( _Size ).
    copySize: n = ( _NewVec: n ).
    copySize: n FillWith: v = ( _NewVec: n Fill: v ).
    copy = ( _Clone ).
    atAllPut: v = (
        0 upTo: self size Do: [ :i | self at: i Put: v ].
        self ).
    do: blk = (
        0 upTo: self size Do: [ :i | blk value: (self at: i) ].
        self ).
    withIndexDo: blk = (
        0 upTo: self size Do: [ :i | blk value: (self at: i) Value: i ].
        self ).
    fillFrom: blk = (
        0 upTo: self size Do: [ :i | self at: i Put: (blk value: i) ].
        self ).
|).

"--- strings ---"
traitsString = (|
    parent* = lobby.
    = s = ( self _Eq: s ).
|).
`
