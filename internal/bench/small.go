package bench

// Small returns the "small" micro-benchmark group of §6: the initial
// test suite used while implementing the new techniques. All of them
// keep their state in method locals, so they are parallel-safe.
func Small() []Benchmark {
	return markParallelSafe([]Benchmark{
		{
			Name:  "sieve",
			Group: "small",
			// Sieve of Eratosthenes over 1..8190 (the classic Byte
			// benchmark size), counting primes.
			Source: `
sieveSize = 8190.
sieveBench = ( | flags. count <- 0. size <- 0 |
    size: sieveSize.
    flags: vector copySize: size + 1 FillWith: 1.
    2 upTo: size + 1 Do: [ :i |
        ((flags at: i) = 1) ifTrue: [
            | k |
            count: count + 1.
            k: i + i.
            [ k <= size ] whileTrue: [
                flags at: k Put: 0.
                k: k + i ] ] ].
    count ).`,
			Entry:     "sieveBench",
			Expect:    1027, // primes up to 8190
			HasExpect: true,
		},
		{
			Name:  "sumTo",
			Group: "small",
			Source: `
sumToBody: n = ( | sum <- 0 |
    1 to: n Do: [ :i | sum: sum + i ].
    sum ).
sumToBench = ( sumToBody: 10000 ).`,
			Entry:     "sumToBench",
			Expect:    50005000,
			HasExpect: true,
		},
		{
			Name:  "sumFromTo",
			Group: "small",
			Source: `
sumFrom: a To: b = ( | sum <- 0 |
    a to: b Do: [ :i | sum: sum + i ].
    sum ).
sumFromToBench = ( sumFrom: 100 To: 10000 ).`,
			Entry:     "sumFromToBench",
			Expect:    50000050, // 50005000 - 4950
			HasExpect: true,
		},
		{
			Name:  "sumToConst",
			Group: "small",
			// The bound is a compile-time constant, so range analysis
			// can discharge even more checks.
			Source: `
sumToConstBench = ( | sum <- 0 |
    1 to: 10000 Do: [ :i | sum: sum + i ].
    sum ).`,
			Entry:     "sumToConstBench",
			Expect:    50005000,
			HasExpect: true,
		},
		{
			Name:  "atAllPut",
			Group: "small",
			Source: `
atAllPutBench = ( | v. check <- 0 |
    v: vector copySize: 2000.
    1 to: 10 Do: [ :pass | v atAllPut: pass ].
    v do: [ :e | check: check + e ].
    check ).`,
			Entry:     "atAllPutBench",
			Expect:    20000,
			HasExpect: true,
		},
	})
}

func markParallelSafe(bs []Benchmark) []Benchmark {
	for i := range bs {
		bs[i].ParallelSafe = true
	}
	return bs
}
