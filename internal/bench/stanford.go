package bench

// Stanford returns the eight Stanford integer benchmarks (Hennessy's
// suite, as used in §6), written procedurally: methods live on the
// lobby and operate on explicitly passed or global data structures,
// mirroring the C originals.
func Stanford() []Benchmark {
	return []Benchmark{
		{
			Name:  "perm",
			Group: "stanford",
			// Permutation generator; one run of the 7-element
			// permuter performs 8660 calls (Stanford's pctr per run).
			Source: `
permCount <- 0.
permSwap: a I: i J: j = ( | t |
    t: (a at: i).
    a at: i Put: (a at: j).
    a at: j Put: t ).
permGen: a N: n = ( | n1 |
    permCount: permCount + 1.
    (n != 0) ifTrue: [
        n1: n - 1.
        permGen: a N: n1.
        n1 downTo: 0 Do: [ :i |
            permSwap: a I: n1 J: i.
            permGen: a N: n1.
            permSwap: a I: n1 J: i ] ] ).
permBench = ( | a |
    permCount: 0.
    a: vector copySize: 7.
    0 upTo: 7 Do: [ :i | a at: i Put: i + 1 ].
    permGen: a N: 6.
    permCount ).`,
			Entry:     "permBench",
			Expect:    8660,
			HasExpect: true,
		},
		{
			Name:  "towers",
			Group: "stanford",
			// Towers of Hanoi with explicit stack vectors and disc
			// legality checks, as in the C original; 14 discs.
			Source: `
towStacks <- nil.
towTops <- nil.
towMoves <- 0.
towPush: d On: s = ( | stack. top |
    stack: towStacks at: s.
    top: towTops at: s.
    (top > 0) ifTrue: [
        ((stack at: top - 1) <= d) ifTrue: [ error: 'disc size error' ] ].
    stack at: top Put: d.
    towTops at: s Put: top + 1 ).
towPopFrom: s = ( | stack. top |
    stack: towStacks at: s.
    top: (towTops at: s) - 1.
    (top < 0) ifTrue: [ error: 'nothing to pop' ].
    towTops at: s Put: top.
    stack at: top ).
towMove: n From: a To: b Via: c = (
    (n = 1) ifTrue: [
        towPush: (towPopFrom: a) On: b.
        towMoves: towMoves + 1 ]
    False: [
        towMove: n - 1 From: a To: c Via: b.
        towPush: (towPopFrom: a) On: b.
        towMoves: towMoves + 1.
        towMove: n - 1 From: c To: b Via: a ] ).
towersBench = ( | discs <- 14 |
    towStacks: vector copySize: 3.
    0 upTo: 3 Do: [ :i | towStacks at: i Put: (vector copySize: 15) ].
    towTops: vector copySize: 3 FillWith: 0.
    towMoves: 0.
    discs downTo: 1 Do: [ :d | towPush: d On: 0 ].
    towMove: discs From: 0 To: 2 Via: 1.
    towMoves ).`,
			Entry:     "towersBench",
			Expect:    16383, // 2^14 - 1
			HasExpect: true,
		},
		{
			Name:  "queens",
			Group: "stanford",
			// Eight queens, counting all solutions.
			Source: `
qnRowFree <- nil.
qnDiagA <- nil.
qnDiagB <- nil.
qnSolutions <- 0.
qnTry: col = (
    0 upTo: 8 Do: [ :row |
        (((qnRowFree at: row) = 1) and: [
            ((qnDiagA at: row + col) = 1) and: [
                (qnDiagB at: (row - col) + 7) = 1 ] ])
        ifTrue: [
            qnRowFree at: row Put: 0.
            qnDiagA at: row + col Put: 0.
            qnDiagB at: (row - col) + 7 Put: 0.
            (col = 7)
                ifTrue: [ qnSolutions: qnSolutions + 1 ]
                False: [ qnTry: col + 1 ].
            qnRowFree at: row Put: 1.
            qnDiagA at: row + col Put: 1.
            qnDiagB at: (row - col) + 7 Put: 1 ] ] ).
queensBench = (
    qnRowFree: vector copySize: 8 FillWith: 1.
    qnDiagA: vector copySize: 15 FillWith: 1.
    qnDiagB: vector copySize: 15 FillWith: 1.
    qnSolutions: 0.
    qnTry: 0.
    qnSolutions ).`,
			Entry:     "queensBench",
			Expect:    92,
			HasExpect: true,
		},
		{
			Name:  "intmm",
			Group: "stanford",
			// Integer matrix multiply, 24x24, entries from the
			// Stanford linear congruential generator.
			Source: `
imSeed <- 0.
imRand = (
    imSeed: ((imSeed * 1309) + 13849) % 65536.
    imSeed ).
imMakeMatrix: n = ( | m |
    m: vector copySize: n.
    0 upTo: n Do: [ :i |
        | row |
        row: vector copySize: n.
        0 upTo: n Do: [ :j | row at: j Put: (imRand % 120) - 60 ].
        m at: i Put: row ].
    m ).
imInner: rowA B: b J: j N: n = ( | sum <- 0 |
    0 upTo: n Do: [ :k | sum: sum + ((rowA at: k) * ((b at: k) at: j)) ].
    sum ).
intmmBench = ( | n <- 24. a. b. c. check <- 0 |
    imSeed: 74755.
    a: imMakeMatrix: n.
    b: imMakeMatrix: n.
    c: vector copySize: n.
    0 upTo: n Do: [ :i |
        | row. rowA |
        row: vector copySize: n.
        rowA: a at: i.
        0 upTo: n Do: [ :j | row at: j Put: (imInner: rowA B: b J: j N: n) ].
        c at: i Put: row ].
    0 upTo: n Do: [ :i |
        0 upTo: n Do: [ :j | check: check + (((c at: i) at: j) % 1000) ] ].
    check ).`,
			Entry: "intmmBench",
		},
		{
			Name:  "puzzle",
			Group: "stanford",
			// Forest Baskett's 3-D packing puzzle, the compile-time
			// stress test of Appendix C. Faithful port of the C
			// original (size 511, 13 piece classes); kount = 2005.
			Source: puzzleSource,
			Entry:  "puzzleBench",
			Expect: 2005, HasExpect: true,
		},
		{
			Name:  "quick",
			Group: "stanford",
			// Recursive quicksort of 1000 pseudo-random elements.
			Source: `
qsSeed <- 0.
qsRand = (
    qsSeed: ((qsSeed * 1309) + 13849) % 65536.
    qsSeed ).
qsSort: a Lo: lo Hi: hi = ( | i. j. pivot. t |
    i: lo.
    j: hi.
    pivot: a at: (lo + hi) / 2.
    [ i <= j ] whileTrue: [
        [ (a at: i) < pivot ] whileTrue: [ i: i + 1 ].
        [ pivot < (a at: j) ] whileTrue: [ j: j - 1 ].
        (i <= j) ifTrue: [
            t: a at: i.
            a at: i Put: (a at: j).
            a at: j Put: t.
            i: i + 1.
            j: j - 1 ] ].
    (lo < j) ifTrue: [ qsSort: a Lo: lo Hi: j ].
    (i < hi) ifTrue: [ qsSort: a Lo: i Hi: hi ] ).
quickBench = ( | n <- 1000. a. bad <- 0 |
    qsSeed: 74755.
    a: vector copySize: n.
    0 upTo: n Do: [ :i | a at: i Put: qsRand ].
    qsSort: a Lo: 0 Hi: n - 1.
    0 upTo: n - 1 Do: [ :i |
        ((a at: i) > (a at: i + 1)) ifTrue: [ bad: bad + 1 ] ].
    (a at: 0) + (a at: n - 1) + bad ).`,
			Entry: "quickBench",
		},
		{
			Name:  "bubble",
			Group: "stanford",
			// Bubble sort of 175 pseudo-random elements.
			Source: `
bbSeed <- 0.
bbRand = (
    bbSeed: ((bbSeed * 1309) + 13849) % 65536.
    bbSeed ).
bubbleBench = ( | n <- 175. a. top. bad <- 0 |
    bbSeed: 74755.
    a: vector copySize: n.
    0 upTo: n Do: [ :i | a at: i Put: bbRand ].
    top: n - 1.
    [ top > 0 ] whileTrue: [
        | i <- 0 |
        [ i < top ] whileTrue: [
            ((a at: i) > (a at: i + 1)) ifTrue: [
                | t |
                t: a at: i.
                a at: i Put: (a at: i + 1).
                a at: i + 1 Put: t ].
            i: i + 1 ].
        top: top - 1 ].
    0 upTo: n - 1 Do: [ :i |
        ((a at: i) > (a at: i + 1)) ifTrue: [ bad: bad + 1 ] ].
    (a at: 0) + (a at: n - 1) + bad ).`,
			Entry: "bubbleBench",
		},
		{
			Name:  "tree",
			Group: "stanford",
			// Binary search tree of 1000 pseudo-random keys stored in
			// parallel vectors (the procedural representation), then
			// probed.
			Source: `
trSeed <- 0.
trRand = (
    trSeed: ((trSeed * 1309) + 13849) % 65536.
    trSeed ).
trKey <- nil.
trLeft <- nil.
trRight <- nil.
trNext <- 0.
trNewNode: k = ( | idx |
    idx: trNext.
    trNext: trNext + 1.
    trKey at: idx Put: k.
    trLeft at: idx Put: -1.
    trRight at: idx Put: -1.
    idx ).
trInsert: k At: idx = (
    (k < (trKey at: idx))
        ifTrue: [
            ((trLeft at: idx) < 0)
                ifTrue: [ trLeft at: idx Put: (trNewNode: k) ]
                False: [ trInsert: k At: (trLeft at: idx) ] ]
        False: [
            ((trRight at: idx) < 0)
                ifTrue: [ trRight at: idx Put: (trNewNode: k) ]
                False: [ trInsert: k At: (trRight at: idx) ] ] ).
trFind: k At: idx = (
    (idx < 0) ifTrue: [ ^ 0 ].
    (k = (trKey at: idx)) ifTrue: [ ^ 1 ].
    (k < (trKey at: idx))
        ifTrue: [ trFind: k At: (trLeft at: idx) ]
        False: [ trFind: k At: (trRight at: idx) ] ).
treeBench = ( | n <- 1000. found <- 0 |
    trSeed: 74755.
    trKey: vector copySize: n + 1.
    trLeft: vector copySize: n + 1.
    trRight: vector copySize: n + 1.
    trNext: 0.
    trNewNode: trRand.
    1 upTo: n Do: [ :i | trInsert: trRand At: 0 ].
    trSeed: 74755.
    0 upTo: n Do: [ :i | found: found + (trFind: trRand At: 0) ].
    found ).`,
			Entry:     "treeBench",
			Expect:    1000,
			HasExpect: true,
		},
	}
}
