package bench

import (
	"fmt"
	"strings"
	"testing"

	"selfgo"
)

// fastRunner pre-seeds a Runner with synthetic measurements so table
// formatting can be tested without running the benchmarks.
func fastRunner() *Runner {
	r := NewRunner()
	cfgs := selfgo.Configs()
	for i, b := range All() {
		for j, cfg := range cfgs {
			m := &Measurement{
				Bench:  b.Name,
				Group:  b.Group,
				Config: cfg.Name,
				Value:  1,
				Cycles: int64(1000 * (j + 1) * (i + 1)),
				// Fake compile data.
				CodeBytes: 1024 * (j + 1),
			}
			r.cache[b.Name+"\x00"+cfg.Name] = m
		}
	}
	return r
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"row1", "42"}, {"longer-row", "7"}},
		Notes:  []string{"note"},
	}
	s := tb.String()
	for _, want := range []string{"demo", "row1", "longer-row", "note", "42"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestSpeedSummaryTableShape(t *testing.T) {
	r := fastRunner()
	tb, err := r.SpeedSummaryTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // ST-80, old89, old90, new SELF
		t.Errorf("rows = %d", len(tb.Rows))
	}
	if len(tb.Header) != 5 { // label + 4 groups
		t.Errorf("header = %v", tb.Header)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "%") {
				t.Errorf("cell %q has no percent", cell)
			}
		}
	}
}

func TestAppendixTablesShape(t *testing.T) {
	r := fastRunner()
	for name, gen := range map[string]func() (*Table, error){
		"speed":   r.SpeedTable,
		"size":    r.CodeSizeTable,
		"compile": r.CompileTimeTable,
	} {
		tb, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) != len(All()) {
			t.Errorf("%s: %d rows, want %d", name, len(tb.Rows), len(All()))
		}
	}
}

func TestCompileSummaryShape(t *testing.T) {
	r := fastRunner()
	tb, err := r.CompileSummaryTable()
	if err != nil {
		t.Fatal(err)
	}
	// 2 metric headers + 3 configs each.
	if len(tb.Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(tb.Rows))
	}
}

func TestGroupForIncludesPuzzleInOO(t *testing.T) {
	names := map[string]bool{}
	for _, b := range groupFor("stanford-oo") {
		names[b.Name] = true
	}
	if !names["puzzle"] {
		t.Error("stanford-oo group summary must include puzzle (§6)")
	}
	if len(names) != 8 {
		t.Errorf("stanford-oo group has %d entries, want 8", len(names))
	}
}

func TestStatHelpers(t *testing.T) {
	xs := []float64{3, 1, 2}
	if median(xs) != 2 {
		t.Errorf("median = %v", median(xs))
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median")
	}
	lo, hi := minMax(xs)
	if lo != 1 || hi != 3 {
		t.Errorf("minMax = %v %v", lo, hi)
	}
	if p := percentile([]float64{1, 2, 3, 4}, 0.75); p != 3 {
		t.Errorf("p75 = %v", p)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Errorf("registry has %d benchmarks, want 21", len(all))
	}
	seen := map[string]bool{}
	groups := map[string]int{}
	for _, b := range all {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		groups[b.Group]++
		if b.Source == "" || b.Entry == "" {
			t.Errorf("%s: empty source or entry", b.Name)
		}
	}
	want := map[string]int{"stanford": 8, "stanford-oo": 7, "small": 5, "richards": 1}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %s has %d benchmarks, want %d", g, groups[g], n)
		}
	}
	if _, ok := ByName("richards"); !ok {
		t.Error("ByName(richards) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner()
	b, _ := ByName("sumTo")
	m1, err := r.Get(b, selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Get(b, selfgo.NewSELF)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("runner did not cache")
	}
}

func TestRunRejectsWrongExpectation(t *testing.T) {
	b := Benchmark{
		Name: "bad", Group: "small", Entry: "go",
		Source: `go = ( 41 ).`, Expect: 42, HasExpect: true,
	}
	if _, err := Run(b, selfgo.NewSELF); err == nil {
		t.Error("expected check-value mismatch error")
	}
}

var _ = fmt.Sprintf

func TestJSONOutput(t *testing.T) {
	r := fastRunner()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"bench"`, `"pct_of_c"`, `"cycles"`, "richards", "sumTo"} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}
