package bench

// puzzleSource is Forest Baskett's 3-D packing puzzle from the Stanford
// suite: a 5x5x5 cavity in an 8x8x8 cube is packed with 13 pieces of 4
// classes by exhaustive search. The C original reports "success in 2005
// trials"; kount is the check value. (§6 notes puzzle was not rewritten
// for the -oo group; Appendix C shows it as the compile-time worst
// case.)
const puzzleSource = `
pzD = 8.
pzSize = 511.
pzTypeMax = 12.
pzPuzzle <- nil.
pzP <- nil.
pzClass <- nil.
pzPieceMax <- nil.
pzCount <- nil.
pzKount <- 0.

pzIndex: i J: j K: k = ( i + (pzD * (j + (pzD * k))) ).

pzFit: i At: j = ( | pm. pi |
    pm: pzPieceMax at: i.
    pi: pzP at: i.
    0 upTo: pm + 1 Do: [ :k |
        ((pi at: k) = 1) ifTrue: [
            ((pzPuzzle at: j + k) = 1) ifTrue: [ ^ 0 ] ] ].
    1 ).

pzPlace: i At: j = ( | pm. pi |
    pm: pzPieceMax at: i.
    pi: pzP at: i.
    0 upTo: pm + 1 Do: [ :k |
        ((pi at: k) = 1) ifTrue: [ pzPuzzle at: j + k Put: 1 ] ].
    pzCount at: (pzClass at: i) Put: ((pzCount at: (pzClass at: i)) - 1).
    j upTo: pzSize + 1 Do: [ :k |
        ((pzPuzzle at: k) = 0) ifTrue: [ ^ k ] ].
    0 ).

pzRemove: i At: j = ( | pm. pi |
    pm: pzPieceMax at: i.
    pi: pzP at: i.
    0 upTo: pm + 1 Do: [ :k |
        ((pi at: k) = 1) ifTrue: [ pzPuzzle at: j + k Put: 0 ] ].
    pzCount at: (pzClass at: i) Put: ((pzCount at: (pzClass at: i)) + 1).
    self ).

pzTrial: j = ( | k |
    pzKount: pzKount + 1.
    0 upTo: pzTypeMax + 1 Do: [ :i |
        ((pzCount at: (pzClass at: i)) != 0) ifTrue: [
            ((pzFit: i At: j) = 1) ifTrue: [
                k: (pzPlace: i At: j).
                (((pzTrial: k) = 1) or: [ k = 0 ])
                    ifTrue: [ ^ 1 ]
                    False: [ pzRemove: i At: j ] ] ] ].
    0 ).

pzDefine: idx I: im J: jm K: km Class: c = ( | pi |
    pi: pzP at: idx.
    0 upTo: im + 1 Do: [ :i |
        0 upTo: jm + 1 Do: [ :j |
            0 upTo: km + 1 Do: [ :k |
                pi at: (pzIndex: i J: j K: k) Put: 1 ] ] ].
    pzClass at: idx Put: c.
    pzPieceMax at: idx Put: (pzIndex: im J: jm K: km).
    self ).

puzzleBench = ( | n |
    pzPuzzle: vector copySize: pzSize + 1 FillWith: 1.
    1 upTo: 6 Do: [ :i |
        1 upTo: 6 Do: [ :j |
            1 upTo: 6 Do: [ :k |
                pzPuzzle at: (pzIndex: i J: j K: k) Put: 0 ] ] ].
    pzP: vector copySize: pzTypeMax + 1.
    0 upTo: pzTypeMax + 1 Do: [ :i |
        pzP at: i Put: (vector copySize: pzSize + 1 FillWith: 0) ].
    pzClass: vector copySize: pzTypeMax + 1 FillWith: 0.
    pzPieceMax: vector copySize: pzTypeMax + 1 FillWith: 0.
    pzDefine: 0 I: 3 J: 1 K: 0 Class: 0.
    pzDefine: 1 I: 1 J: 0 K: 3 Class: 0.
    pzDefine: 2 I: 0 J: 3 K: 1 Class: 0.
    pzDefine: 3 I: 1 J: 3 K: 0 Class: 0.
    pzDefine: 4 I: 3 J: 0 K: 1 Class: 0.
    pzDefine: 5 I: 0 J: 1 K: 3 Class: 0.
    pzDefine: 6 I: 2 J: 0 K: 0 Class: 1.
    pzDefine: 7 I: 0 J: 2 K: 0 Class: 1.
    pzDefine: 8 I: 0 J: 0 K: 2 Class: 1.
    pzDefine: 9 I: 1 J: 1 K: 0 Class: 2.
    pzDefine: 10 I: 1 J: 0 K: 1 Class: 2.
    pzDefine: 11 I: 0 J: 1 K: 1 Class: 2.
    pzDefine: 12 I: 1 J: 1 K: 1 Class: 3.
    pzCount: vector copySize: 4.
    pzCount at: 0 Put: 13.
    pzCount at: 1 Put: 3.
    pzCount at: 2 Put: 1.
    pzCount at: 3 Put: 1.
    n: (pzIndex: 1 J: 1 K: 1).
    ((pzFit: 0 At: n) = 1)
        ifTrue: [ n: (pzPlace: 0 At: n) ]
        False: [ error: 'cannot place first piece' ].
    pzKount: 0.
    ((pzTrial: n) = 1)
        ifTrue: [ pzKount ]
        False: [ 0 - 1 ] ).
`
