package bench

import (
	"testing"

	"selfgo"
)

// TestAllBenchmarksNewSELF runs every benchmark once under the headline
// configuration, checking known values.
func TestAllBenchmarksNewSELF(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m, err := Run(b, selfgo.NewSELF)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-12s value=%-10d cycles=%-10d sends=%-7d tests=%-7d compile=%v bytes=%d",
				b.Name, m.Value, m.Cycles, m.Run.Sends, m.Run.TypeTests, m.CompileTime, m.CodeBytes)
		})
	}
}
