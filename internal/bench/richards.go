package bench

// Richards returns the operating-system-simulation benchmark of §6:
// Martin Richards' task scheduler (the structure follows the classic
// Smalltalk/Java ports — idle, worker, two handler and two device
// tasks exchanging packets). The "runPacket:" send in the scheduler
// loop is the polymorphic call site the paper blames for richards'
// relatively poor showing (§6.1): a different task kind runs almost
// every time, defeating the monomorphic inline cache.
//
// With an idle count of 1000 the correct totals are queueCount = 2322
// and holdCount = 928 (the published check values for this
// configuration); the benchmark returns queueCount*10000 + holdCount.
func Richards() Benchmark {
	return Benchmark{
		Name:      "richards",
		Group:     "richards",
		Entry:     "richardsBench",
		Expect:    23220928,
		HasExpect: true,
		// Every run clones its scheduler, tasks and packets fresh, so
		// concurrent workers share only immutable prototypes.
		ParallelSafe: true,
		Source:       richardsSource,
	}
}

const richardsSource = `
"Task ids: 0 idle, 1 worker, 2 handlerA, 3 handlerB, 4 deviceA, 5 deviceB.
 Packet kinds: 0 device, 1 work. States: 0 running, 1 runnable,
 2 suspended, 3 suspended+runnable, bit 4 = held."

richPacket = (| parent* = lobby.
    link.
    ident <- 0.
    kind <- 0.
    datum <- 0.
    data.
    initLink: l Id: i Kind: k = (
        link: l.
        ident: i.
        kind: k.
        datum: 0.
        data: vector copySize: 4 FillWith: 0.
        self ).
    addTo: queue = ( | peek. next |
        link: nil.
        queue isNil ifTrue: [ ^ self ].
        peek: queue.
        [ next: peek link. next notNil ] whileTrue: [ peek: next ].
        peek link: self.
        queue ).
|).

richTCB = (| parent* = lobby.
    link.
    ident <- 0.
    priority <- 0.
    queue.
    state <- 0.
    task.
    initLink: l Id: i Priority: p Queue: q Task: t = (
        link: l.
        ident: i.
        priority: p.
        queue: q.
        task: t.
        q isNil ifTrue: [ state: 2 ] False: [ state: 3 ].
        self ).
    setRunning = ( state: 0 ).
    markAsNotHeld = ( state: (state bitAnd: 3) ).
    markAsHeld = ( state: (state bitOr: 4) ).
    markAsSuspended = ( state: (state bitOr: 2) ).
    markAsRunnable = ( state: (state bitOr: 1) ).
    isHeldOrSuspended = ( ((state bitAnd: 4) != 0) or: [ state = 2 ] ).
    runTCB = ( | pkt |
        (state = 3)
            ifTrue: [
                pkt: queue.
                queue: pkt link.
                queue isNil ifTrue: [ state: 0 ] False: [ state: 1 ] ]
            False: [ pkt: nil ].
        task runPacket: pkt ).
    checkPriorityAdd: t Packet: pkt = (
        queue isNil
            ifTrue: [
                queue: pkt.
                markAsRunnable.
                (priority > t priority) ifTrue: [ ^ self ] ]
            False: [ queue: (pkt addTo: queue) ].
        t ).
|).

richScheduler = (| parent* = lobby.
    taskList.
    currentTcb.
    currentId <- 0.
    blocks.
    qCount <- 0.
    hCount <- 0.
    init = (
        blocks: vector copySize: 6.
        qCount: 0.
        hCount: 0.
        self ).
    addTask: i Priority: p Queue: q Task: t = (
        currentTcb: (richTCB _Clone initLink: taskList Id: i Priority: p Queue: q Task: t).
        taskList: currentTcb.
        blocks at: i Put: currentTcb ).
    addRunningTask: i Priority: p Queue: q Task: t = (
        addTask: i Priority: p Queue: q Task: t.
        currentTcb setRunning ).
    schedule = (
        currentTcb: taskList.
        [ currentTcb notNil ] whileTrue: [
            currentTcb isHeldOrSuspended
                ifTrue: [ currentTcb: currentTcb link ]
                False: [
                    currentId: currentTcb ident.
                    currentTcb: currentTcb runTCB ] ] ).
    queuePacket: pkt = ( | t |
        t: blocks at: pkt ident.
        t isNil ifTrue: [ ^ nil ].
        qCount: qCount + 1.
        pkt link: nil.
        pkt ident: currentId.
        t checkPriorityAdd: currentTcb Packet: pkt ).
    holdCurrent = (
        hCount: hCount + 1.
        currentTcb markAsHeld.
        currentTcb link ).
    release: i = ( | t |
        t: blocks at: i.
        t isNil ifTrue: [ ^ nil ].
        t markAsNotHeld.
        (t priority > currentTcb priority) ifTrue: [ t ] False: [ currentTcb ] ).
    suspendCurrent = (
        currentTcb markAsSuspended.
        currentTcb ).
|).

richIdleTask = (| parent* = lobby.
    sched.
    v1 <- 1.
    count <- 0.
    initSched: s V1: v Count: c = ( sched: s. v1: v. count: c. self ).
    runPacket: pkt = (
        count: count - 1.
        (count = 0) ifTrue: [ ^ sched holdCurrent ].
        ((v1 bitAnd: 1) = 0)
            ifTrue: [
                v1: v1 / 2.
                sched release: 4 ]
            False: [
                v1: ((v1 / 2) bitXor: 53256).
                sched release: 5 ] ).
|).

richWorkerTask = (| parent* = lobby.
    sched.
    v1 <- 2.
    v2 <- 0.
    initSched: s = ( sched: s. v1: 2. v2: 0. self ).
    runPacket: pkt = (
        pkt isNil ifTrue: [ ^ sched suspendCurrent ].
        (v1 = 2) ifTrue: [ v1: 3 ] False: [ v1: 2 ].
        pkt ident: v1.
        pkt datum: 0.
        0 upTo: 4 Do: [ :i |
            v2: v2 + 1.
            (v2 > 26) ifTrue: [ v2: 1 ].
            pkt data at: i Put: v2 ].
        sched queuePacket: pkt ).
|).

richHandlerTask = (| parent* = lobby.
    sched.
    workQ.
    deviceQ.
    initSched: s = ( sched: s. workQ: nil. deviceQ: nil. self ).
    runPacket: pkt = ( | work. count. dev |
        pkt notNil ifTrue: [
            (pkt kind = 1)
                ifTrue: [ workQ: (pkt addTo: workQ) ]
                False: [ deviceQ: (pkt addTo: deviceQ) ] ].
        workQ notNil ifTrue: [
            work: workQ.
            count: work datum.
            (count < 4)
                ifTrue: [
                    deviceQ notNil ifTrue: [
                        dev: deviceQ.
                        deviceQ: dev link.
                        dev datum: (work data at: count).
                        work datum: count + 1.
                        ^ sched queuePacket: dev ] ]
                False: [
                    workQ: work link.
                    ^ sched queuePacket: work ] ].
        sched suspendCurrent ).
|).

richDeviceTask = (| parent* = lobby.
    sched.
    pending.
    initSched: s = ( sched: s. pending: nil. self ).
    runPacket: pkt = ( | v |
        pkt isNil
            ifTrue: [
                pending isNil ifTrue: [ ^ sched suspendCurrent ].
                v: pending.
                pending: nil.
                sched queuePacket: v ]
            False: [
                pending: pkt.
                sched holdCurrent ] ).
|).

richardsBench = ( | s. q |
    s: richScheduler _Clone init.
    s addRunningTask: 0 Priority: 0 Queue: nil
        Task: (richIdleTask _Clone initSched: s V1: 1 Count: 1000).
    q: (richPacket _Clone initLink: nil Id: 1 Kind: 1).
    q: (richPacket _Clone initLink: q Id: 1 Kind: 1).
    s addTask: 1 Priority: 1000 Queue: q
        Task: (richWorkerTask _Clone initSched: s).
    q: (richPacket _Clone initLink: nil Id: 4 Kind: 0).
    q: (richPacket _Clone initLink: q Id: 4 Kind: 0).
    q: (richPacket _Clone initLink: q Id: 4 Kind: 0).
    s addTask: 2 Priority: 2000 Queue: q
        Task: (richHandlerTask _Clone initSched: s).
    q: (richPacket _Clone initLink: nil Id: 5 Kind: 0).
    q: (richPacket _Clone initLink: q Id: 5 Kind: 0).
    q: (richPacket _Clone initLink: q Id: 5 Kind: 0).
    s addTask: 3 Priority: 3000 Queue: q
        Task: (richHandlerTask _Clone initSched: s).
    s addTask: 4 Priority: 4000 Queue: nil
        Task: (richDeviceTask _Clone initSched: s).
    s addTask: 5 Priority: 5000 Queue: nil
        Task: (richDeviceTask _Clone initSched: s).
    s schedule.
    (s qCount * 10000) + s hCount ).
`
