package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"selfgo"
)

// Runner measures (benchmark, configuration) pairs, caching results so
// the different tables share the underlying runs.
type Runner struct {
	cache    map[string]*Measurement
	Progress io.Writer // optional: one line per fresh measurement
}

// NewRunner returns an empty measurement cache.
func NewRunner() *Runner {
	return &Runner{cache: map[string]*Measurement{}}
}

// Get measures b under cfg (cached).
func (r *Runner) Get(b Benchmark, cfg selfgo.Config) (*Measurement, error) {
	key := b.Name + "\x00" + cfg.Name
	if m, ok := r.cache[key]; ok {
		return m, nil
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "running %-12s under %s...\n", b.Name, cfg.Name)
	}
	m, err := Run(b, cfg)
	if err != nil {
		return nil, err
	}
	r.cache[key] = m
	return m, nil
}

// Table is a rendered experiment table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	line := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i]+2, c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// speedConfigs are the columns of the speed tables, in the paper's
// order.
func speedConfigs() []selfgo.Config {
	return []selfgo.Config{selfgo.ST80, selfgo.OldSELF89, selfgo.OldSELF90, selfgo.NewSELF}
}

// groupFor returns the benchmarks whose numbers enter a group summary.
// Per §6, puzzle was not rewritten but is included in the stanford-oo
// group "in the interest of fairness".
func groupFor(group string) []Benchmark {
	bs := ByGroup(group)
	if group == "stanford-oo" {
		if pz, ok := ByName("puzzle"); ok {
			bs = append(bs, pz)
		}
	}
	return bs
}

// pctOfC returns the benchmark's speed under cfg as a percentage of
// the optimized-C stand-in (higher is better).
func (r *Runner) pctOfC(b Benchmark, cfg selfgo.Config) (float64, error) {
	mc, err := r.Get(b, selfgo.OptimizedC)
	if err != nil {
		return 0, err
	}
	m, err := r.Get(b, cfg)
	if err != nil {
		return 0, err
	}
	if m.Cycles == 0 {
		return 0, fmt.Errorf("%s under %s ran zero cycles", b.Name, cfg.Name)
	}
	return 100 * float64(mc.Cycles) / float64(m.Cycles), nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p*float64(len(s)-1) + 0.5)
	return s[idx]
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = min(lo, x)
		hi = max(hi, x)
	}
	return
}

// SpeedSummaryTable regenerates the §6.1 table "Speed of Compiled Code
// (as a percentage of optimized C), median (min – max)".
func (r *Runner) SpeedSummaryTable() (*Table, error) {
	groups := []string{"small", "stanford", "stanford-oo", "richards"}
	t := &Table{
		Title:  "Speed of Compiled Code (as a percentage of optimized C) — median (min–max)  [E1, §6.1]",
		Header: append([]string{""}, groups...),
	}
	for _, cfg := range speedConfigs() {
		row := []string{cfg.Name}
		for _, g := range groups {
			var pcts []float64
			for _, b := range groupFor(g) {
				p, err := r.pctOfC(b, cfg)
				if err != nil {
					return nil, err
				}
				pcts = append(pcts, p)
			}
			if len(pcts) == 1 {
				row = append(row, fmt.Sprintf("%.0f%%", pcts[0]))
			} else {
				lo, hi := minMax(pcts)
				row = append(row, fmt.Sprintf("%.0f%% (%.0f-%.0f)", median(pcts), lo, hi))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: ST-80 ~9-10%, old SELF-89 19-28%, old SELF-90 14-19%, new SELF 21-42% (richards 21%);",
		"the 1991 reprint notes the refined compiler later exceeded 60% of optimized C.")
	return t, nil
}

// SpeedTable regenerates Appendix A: per-benchmark speed as % of C.
func (r *Runner) SpeedTable() (*Table, error) {
	t := &Table{
		Title:  "Compiled Code Speed (as a percentage of optimized C)  [E3, Appendix A]",
		Header: []string{"benchmark", "ST-80", "old SELF-89", "old SELF-90", "new SELF"},
	}
	for _, b := range All() {
		row := []string{b.Name}
		for _, cfg := range speedConfigs() {
			p, err := r.pctOfC(b, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f%%", p))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// sizeConfigs are the columns of the code-size and compile-time tables.
func sizeConfigs() []selfgo.Config {
	return []selfgo.Config{selfgo.OptimizedC, selfgo.OldSELF90, selfgo.NewSELF}
}

// CodeSizeTable regenerates Appendix B: compiled code size in
// kilobytes.
func (r *Runner) CodeSizeTable() (*Table, error) {
	t := &Table{
		Title:  "Compiled Code Size (in kilobytes)  [E4, Appendix B]",
		Header: []string{"benchmark", "optimized C", "old SELF-90", "new SELF"},
	}
	for _, b := range All() {
		row := []string{b.Name}
		for _, cfg := range sizeConfigs() {
			m, err := r.Get(b, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", float64(m.CodeBytes)/1024))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: new SELF ~4x optimized C and consistently below old SELF-90 (failure blocks and",
		"type tests eliminated outweigh splitting's copies).")
	return t, nil
}

// CompileTimeTable regenerates Appendix C: compile time.
func (r *Runner) CompileTimeTable() (*Table, error) {
	t := &Table{
		Title:  "Compile Time (in milliseconds of CPU time)  [E5, Appendix C]",
		Header: []string{"benchmark", "optimized C", "old SELF-90", "new SELF"},
	}
	for _, b := range All() {
		row := []string{b.Name}
		for _, cfg := range sizeConfigs() {
			m, err := r.Get(b, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", float64(m.CompileTime)/float64(time.Millisecond)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: new SELF one to two orders of magnitude slower to compile than old SELF-90,",
		"with puzzle the worst case (362s vs 6.9s).")
	return t, nil
}

// CompileSummaryTable regenerates the §6.2/§6.3 table "Compile Time and
// Code Size, median / 75%-ile / max".
func (r *Runner) CompileSummaryTable() (*Table, error) {
	groups := []struct {
		name    string
		benches []Benchmark
	}{
		{"small", ByGroup("small")},
		{"stanford+oo", withoutPuzzle(append(ByGroup("stanford"), ByGroup("stanford-oo")...))},
		{"puzzle", mustGroup("puzzle")},
		{"richards", mustGroup("richards")},
	}
	t := &Table{
		Title:  "Compile Time and Code Size — median / 75%-ile / max  [E2, §6.2-§6.3]",
		Header: []string{"", "small", "stanford+oo", "puzzle", "richards"},
	}
	fmt3 := func(xs []float64, format string) string {
		if len(xs) == 1 {
			return fmt.Sprintf(format, xs[0])
		}
		_, hi := minMax(xs)
		return fmt.Sprintf(format+" / "+format+" / "+format, median(xs), percentile(xs, 0.75), hi)
	}
	for _, metric := range []string{"compile time (ms)", "code size (kB)"} {
		t.Rows = append(t.Rows, []string{metric, "", "", "", ""})
		for _, cfg := range sizeConfigs() {
			row := []string{"  " + cfg.Name}
			for _, g := range groups {
				var xs []float64
				for _, b := range g.benches {
					m, err := r.Get(b, cfg)
					if err != nil {
						return nil, err
					}
					if metric == "compile time (ms)" {
						xs = append(xs, float64(m.CompileTime)/float64(time.Millisecond))
					} else {
						xs = append(xs, float64(m.CodeBytes)/1024)
					}
				}
				row = append(row, fmt3(xs, "%.1f"))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func withoutPuzzle(bs []Benchmark) []Benchmark {
	var out []Benchmark
	for _, b := range bs {
		if b.Name != "puzzle" {
			out = append(out, b)
		}
	}
	return out
}

func mustGroup(name string) []Benchmark {
	b, _ := ByName(name)
	return []Benchmark{b}
}

// AblationTable shows what each technique buys (A1): new SELF with one
// optimization removed at a time, plus the two forward-looking
// variants (multi-version loops; §6.1's call-site miss handlers).
func (r *Runner) AblationTable() (*Table, error) {
	variants := []selfgo.Config{selfgo.NewSELF}
	mk := func(name string, mod func(*selfgo.Config)) {
		c := selfgo.NewSELF
		c.Name = name
		mod(&c)
		variants = append(variants, c)
	}
	mk("- extended splitting", func(c *selfgo.Config) { c.ExtendedSplitting = false })
	mk("- range analysis", func(c *selfgo.Config) { c.RangeAnalysis = false })
	mk("- iterative loops", func(c *selfgo.Config) { c.IterativeLoops = false })
	mk("- type analysis", func(c *selfgo.Config) { c.TypeAnalysis = false; c.IterativeLoops = false; c.ExtendedSplitting = false })
	mk("+ multi-version loops", func(c *selfgo.Config) { c.MultiVersionLoops = true })
	mk("+ comparison facts (§7)", func(c *selfgo.Config) { c.ComparisonFacts = true })
	mk("+ IC miss handlers", func(c *selfgo.Config) { c.CallSiteICMissHandlers = true })
	mk("+ polymorphic ICs", func(c *selfgo.Config) { c.PolymorphicInlineCaches = true })

	names := []string{"sumTo", "sieve", "atAllPut", "quick", "bubble-oo", "richards"}
	t := &Table{
		Title:  "Ablation: speed as % of optimized C, new SELF variants  [A1]",
		Header: append([]string{"variant"}, names...),
	}
	for _, cfg := range variants {
		row := []string{cfg.Name}
		for _, n := range names {
			b, ok := ByName(n)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %s", n)
			}
			p, err := r.pctOfC(b, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f%%", p))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Multi-version loops were broken (disabled) in the paper's measured system; the row",
		"shows the speedup §5 predicts. IC miss handlers reproduce the §6.1 richards what-if.")
	return t, nil
}

// strategyConfigs returns new SELF under each specialization strategy.
// The names differ so the runner caches them as distinct measurements.
func strategyConfigs() []selfgo.Config {
	split := selfgo.NewSELF
	split.Name = "new SELF (split)"
	bbv := selfgo.NewSELF
	bbv.Name = "new SELF (bbv)"
	bbv.Strategy = selfgo.StrategyBBV
	both := selfgo.NewSELF
	both.Name = "new SELF (both)"
	both.Strategy = selfgo.StrategyBoth
	return []selfgo.Config{split, bbv, both}
}

// strategyBaseline is new SELF with every type-derivation pass off —
// the common no-specialization point the "tests removed" column is
// measured against for all three strategies.
func strategyBaseline() selfgo.Config {
	c := selfgo.NewSELF
	c.Name = "new SELF (no specialization)"
	c.TypeAnalysis = false
	c.RangeAnalysis = false
	c.IterativeLoops = false
	c.ExtendedSplitting = false
	return c
}

// StrategySize is the modelled code size of a measurement under its
// strategy: eager compiled bytes for split, the lazily materialized
// version bytes for bbv (a lazy code generator emits only the regions
// that actually ran), and their sum for both (versions specialize code
// that was already compiled).
func StrategySize(m *Measurement) int64 {
	switch {
	case m.Run.BBVVersions == 0:
		return int64(m.CodeBytes)
	case m.CodeBytes > 0 && strings.Contains(m.Config, "both"):
		return int64(m.CodeBytes) + m.Run.BBVVersionBytes
	default:
		return m.Run.BBVVersionBytes
	}
}

// StrategyTable is the E-BBV head-to-head: every benchmark under
// splitting, lazy basic-block versioning, and both, with executed and
// removed type-test counts, send counts, version/cap activity, and
// modelled code size.
func (r *Runner) StrategyTable() (*Table, error) {
	base := strategyBaseline()
	t := &Table{
		Title: "Specialization strategies head-to-head: splitting vs lazy basic-block versioning  [E-BBV]",
		Header: []string{"benchmark", "strategy", "cycles", "tests run", "tests removed",
			"elided ctx", "elided shape", "sends", "versions", "cap hits", "size B"},
	}
	for _, b := range All() {
		mb, err := r.Get(b, base)
		if err != nil {
			return nil, err
		}
		for _, cfg := range strategyConfigs() {
			m, err := r.Get(b, cfg)
			if err != nil {
				return nil, err
			}
			if m.Value != mb.Value {
				return nil, fmt.Errorf("%s under %s: value %d differs from baseline %d",
					b.Name, cfg.Name, m.Value, mb.Value)
			}
			strat := strings.TrimSuffix(strings.TrimPrefix(cfg.Name, "new SELF ("), ")")
			t.Rows = append(t.Rows, []string{
				b.Name, strat,
				fmt.Sprintf("%d", m.Cycles),
				fmt.Sprintf("%d", m.Run.TypeTests),
				fmt.Sprintf("%d", mb.Run.TypeTests-m.Run.TypeTests),
				fmt.Sprintf("%d", m.Run.BBVElidedCtx),
				fmt.Sprintf("%d", m.Run.BBVElidedShape),
				fmt.Sprintf("%d", m.Run.Sends),
				fmt.Sprintf("%d", m.Run.BBVVersions),
				fmt.Sprintf("%d", m.Run.BBVCapHits),
				fmt.Sprintf("%d", StrategySize(m)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"tests removed = executed type tests under new SELF with all type-derivation passes off,",
		"minus the strategy's executed tests. size: eager compiled bytes (split), lazily",
		"materialized version bytes (bbv), or their sum (both).")
	return t, nil
}

// JSON dumps every cached measurement as machine-readable records,
// measuring any (benchmark, config) pairs not yet in the cache for the
// standard table set first.
func (r *Runner) JSON() ([]byte, error) {
	if _, err := r.AllTables(); err != nil {
		return nil, err
	}
	type rec struct {
		Bench        string  `json:"bench"`
		Group        string  `json:"group"`
		Config       string  `json:"config"`
		Value        int64   `json:"value"`
		Cycles       int64   `json:"cycles"`
		PctOfC       float64 `json:"pct_of_c"`
		Sends        int64   `json:"sends"`
		ICHits       int64   `json:"ic_hits"`
		ICMisses     int64   `json:"ic_misses"`
		TypeTests    int64   `json:"type_tests"`
		OvflChecks   int64   `json:"overflow_checks"`
		BoundsChecks int64   `json:"bounds_checks"`
		CompileMs    float64 `json:"compile_ms"`
		CodeBytes    int     `json:"code_bytes"`
		Methods      int     `json:"methods"`
	}
	var keys []string
	for k := range r.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []rec
	for _, k := range keys {
		m := r.cache[k]
		pct := 0.0
		if b, ok := ByName(m.Bench); ok {
			if mc, err := r.Get(b, selfgo.OptimizedC); err == nil && m.Cycles > 0 {
				pct = 100 * float64(mc.Cycles) / float64(m.Cycles)
			}
		}
		out = append(out, rec{
			Bench: m.Bench, Group: m.Group, Config: m.Config,
			Value: m.Value, Cycles: m.Cycles, PctOfC: pct,
			Sends: m.Run.Sends, ICHits: m.Run.ICHits, ICMisses: m.Run.ICMisses,
			TypeTests: m.Run.TypeTests, OvflChecks: m.Run.OvflChecks,
			BoundsChecks: m.Run.BoundsChecks,
			CompileMs:    float64(m.CompileTime) / float64(time.Millisecond),
			CodeBytes:    m.CodeBytes, Methods: m.Methods,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// GuardRecord pins one (benchmark, config) point of the §6.1 speed
// table: the check value and the modelled cycle count. BENCH_*.json
// files of these records are committed so a test can prove that
// infrastructure changes (cache sharing, VM refactors) do not drift
// the cost model or execution semantics.
type GuardRecord struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Value  int64  `json:"value"`
	Cycles int64  `json:"cycles"`
}

// GuardRecords measures every benchmark under the §6.1 configurations
// (the four speed columns plus the optimized-C baseline) and returns
// the pinned records.
func (r *Runner) GuardRecords() ([]GuardRecord, error) {
	configs := append(speedConfigs(), selfgo.OptimizedC)
	var out []GuardRecord
	for _, b := range All() {
		for _, cfg := range configs {
			m, err := r.Get(b, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, GuardRecord{Bench: b.Name, Config: cfg.Name, Value: m.Value, Cycles: m.Cycles})
		}
	}
	return out, nil
}

// AllTables renders every experiment table in order.
func (r *Runner) AllTables() (string, error) {
	var parts []string
	for _, f := range []func() (*Table, error){
		r.SpeedSummaryTable, r.CompileSummaryTable, r.SpeedTable,
		r.CodeSizeTable, r.CompileTimeTable, r.AblationTable,
	} {
		t, err := f()
		if err != nil {
			return "", err
		}
		parts = append(parts, t.String())
	}
	return strings.Join(parts, "\n"), nil
}
