package bench

import (
	"fmt"
	"testing"

	"selfgo"
)

// TestCrossConfigConsistency runs every benchmark under every compiler
// configuration: all six systems must compute identical results (the
// optimizations must preserve semantics), and the known check values
// must hold.
func TestCrossConfigConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-product is slow")
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			var ref int64
			var refCfg string
			for i, cfg := range selfgo.Configs() {
				m, err := Run(b, cfg)
				if err != nil {
					t.Fatalf("%s under %s: %v", b.Name, cfg.Name, err)
				}
				if i == 0 {
					ref, refCfg = m.Value, cfg.Name
				} else if m.Value != ref {
					t.Errorf("%s: %s computed %d but %s computed %d",
						b.Name, cfg.Name, m.Value, refCfg, ref)
				}
			}
		})
	}
}

// TestSpeedOrdering spot-checks the paper's headline ordering on a
// representative subset: optimized C fastest, then new SELF, old
// SELF-89, old SELF-90, with ST-80 slowest.
func TestSpeedOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, name := range []string{"sumTo", "bubble", "queens", "richards", "towers-oo"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		cycles := map[string]int64{}
		for _, cfg := range selfgo.Configs() {
			m, err := Run(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cycles[cfg.Name] = m.Cycles
		}
		line := name + ":"
		for _, cfg := range selfgo.Configs() {
			line += fmt.Sprintf(" %s=%.0f%%", cfg.Name, 100*float64(cycles["optimized C"])/float64(cycles[cfg.Name]))
		}
		t.Log(line)
		if !(cycles["optimized C"] <= cycles["new SELF"]) {
			t.Errorf("%s: C (%d) should beat new SELF (%d)", name, cycles["optimized C"], cycles["new SELF"])
		}
		if !(cycles["new SELF"] <= cycles["ST-80"]) {
			t.Errorf("%s: new SELF (%d) should beat ST-80 (%d)", name, cycles["new SELF"], cycles["ST-80"])
		}
		if !(cycles["old SELF-89"] <= cycles["old SELF-90"]) {
			t.Errorf("%s: SELF-89 (%d) should beat SELF-90 (%d)", name, cycles["old SELF-89"], cycles["old SELF-90"])
		}
	}
}
