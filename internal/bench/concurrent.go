package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"selfgo"
)

// Limits bounds a concurrent measurement: a wall-clock timeout applied
// to every worker's context, and a per-run Budget installed on every
// worker VM. Zero fields are unlimited.
type Limits struct {
	Timeout time.Duration
	Budget  selfgo.Budget
}

// ConcurrentMeasurement is one benchmark run on N worker VMs sharing a
// single world and code cache.
type ConcurrentMeasurement struct {
	Bench   string
	Config  string
	Workers int
	Reps    int // runs per worker

	Value       int64 // the check value (identical across all runs)
	Elapsed     time.Duration
	TotalCycles int64 // modelled cycles summed over every run
	Methods     int   // compilations performed (summed across workers)

	Cache selfgo.CacheStats
}

// RunsPerSec is wall-clock throughput across all workers.
func (m *ConcurrentMeasurement) RunsPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Workers*m.Reps) / m.Elapsed.Seconds()
}

// CompileOnce reports whether every (method, receiver map)
// customization was compiled exactly once — the shared cache's
// single-flight guarantee, checked from its counters.
func (m *ConcurrentMeasurement) CompileOnce() bool {
	return m.Cache.CompileOnce()
}

// RunConcurrent measures b under cfg with `workers` goroutines sharing
// one world and one code cache, each running the benchmark `reps`
// times. All workers start cold and simultaneously, so the first wave
// of requests exercises the cache's single-flight path; every run's
// check value is verified against Expect (when known) and against the
// other runs.
func RunConcurrent(b Benchmark, cfg selfgo.Config, workers, reps int) (*ConcurrentMeasurement, error) {
	return RunConcurrentLimits(b, cfg, workers, reps, Limits{})
}

// RunConcurrentLimits is RunConcurrent under Limits: runaway or hung
// benchmark programs abort with an error (KindOutOfFuel, KindCancelled)
// instead of wedging the measurement harness.
func RunConcurrentLimits(b Benchmark, cfg selfgo.Config, workers, reps int, lim Limits) (*ConcurrentMeasurement, error) {
	if !b.ParallelSafe {
		return nil, fmt.Errorf("%s mutates lobby globals and cannot run on concurrent workers", b.Name)
	}
	if workers < 1 || reps < 1 {
		return nil, fmt.Errorf("workers and reps must be positive")
	}
	root, err := selfgo.NewSharedSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := root.LoadSource(b.Source); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	root.SetBudget(lim.Budget)
	systems := make([]*selfgo.System, workers)
	systems[0] = root
	for i := 1; i < workers; i++ {
		if systems[i], err = root.Fork(); err != nil {
			return nil, err
		}
	}
	ctx := context.Background()
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}

	values := make([]int64, workers)
	cycles := make([]int64, workers)
	methods := make([]int, workers)
	errs := make([]error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range systems {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for r := 0; r < reps; r++ {
				res, err := systems[i].CallCtx(ctx, b.Entry)
				if err != nil {
					errs[i] = fmt.Errorf("worker %d rep %d: %w", i, r, err)
					return
				}
				if b.HasExpect && res.Value.I() != b.Expect {
					errs[i] = fmt.Errorf("worker %d rep %d: got %d, want %d", i, r, res.Value.I(), b.Expect)
					return
				}
				if r == 0 {
					values[i] = res.Value.I()
				} else if res.Value.I() != values[i] {
					errs[i] = fmt.Errorf("worker %d rep %d: got %d, previous reps got %d", i, r, res.Value.I(), values[i])
					return
				}
				cycles[i] += res.Run.Cycles
				// Compile counters are cumulative per VM; read the final
				// value after the loop.
				methods[i] = res.Compile.Methods
			}
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	m := &ConcurrentMeasurement{
		Bench: b.Name, Config: cfg.Name,
		Workers: workers, Reps: reps,
		Value: values[0], Elapsed: elapsed,
	}
	for i := range systems {
		if errs[i] != nil {
			return nil, fmt.Errorf("%s under %s: %w", b.Name, cfg.Name, errs[i])
		}
		if values[i] != m.Value {
			return nil, fmt.Errorf("%s under %s: worker %d computed %d but worker 0 computed %d",
				b.Name, cfg.Name, i, values[i], m.Value)
		}
		m.TotalCycles += cycles[i]
		m.Methods += methods[i]
	}
	st, _ := root.CacheStats()
	m.Cache = st
	return m, nil
}
