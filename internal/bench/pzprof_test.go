package bench

import (
	"testing"

	"selfgo"
)

func TestPuzzleCompileOnly(t *testing.T) {
	b, _ := ByName("puzzle")
	sys, _ := selfgo.NewSystem(selfgo.NewSELF)
	if err := sys.LoadSource(b.Source); err != nil {
		t.Fatal(err)
	}
	g, st, err := sys.GraphFor("pzTrial:")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pzTrial: %v nodes=%d iters=%d splits=%d forced=%d", st.Duration, st.Nodes, st.LoopIterations, st.Splits, st.ForcedMerges)
	_ = g
	g2, st2, err := sys.GraphFor("puzzleBench")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("puzzleBench: %v nodes=%d iters=%d splits=%d forced=%d allocatedNodes=%d", st2.Duration, st2.Nodes, st2.LoopIterations, st2.Splits, st2.ForcedMerges, len(g2.Nodes()))
}
