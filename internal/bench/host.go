// Host-speed benchmark rail: while BENCH_guard.json pins the MODELLED
// quantities (cycles, instrs — the paper's numbers), this file measures
// how fast the host actually executes them, so host-performance claims
// about the interpreter are provable. `selfbench -hostbench` emits
// BENCH_host.json; the committed file carries before/after records so
// every future PR has a trajectory to compare against.
package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"selfgo"
)

// HostRecord is one benchmark's host-speed measurement under one
// compiler configuration: wall-clock per run, modelled (guest)
// instructions retired per wall-clock second, and Go allocation
// traffic per run. Guest quantities are fixed by the cost-model guard;
// this record tracks the host-side cost of executing them.
type HostRecord struct {
	Bench              string  `json:"bench"`
	Group              string  `json:"group"`
	Config             string  `json:"config"`
	NsPerOp            int64   `json:"nsPerOp"`
	GuestInstrs        int64   `json:"guestInstrs"`        // modelled instrs per run
	GuestMInstrsPerSec float64 `json:"guestMInstrsPerSec"` // million guest instrs / wall second
	AllocsPerOp        int64   `json:"allocsPerOp"`        // Go allocations per run (steady state)
	BytesPerOp         int64   `json:"bytesPerOp"`         // Go bytes allocated per run

	// Tier-schedule fields, present only for non-default schedules
	// (eager optimizing records keep them empty so files from before
	// tiering still match as geomean baselines). Compile counts are per
	// tier; PromoteNsMean is the mean hot-trigger-to-install latency of
	// the promotions the warm-up performed.
	TierMode           string `json:"tierMode,omitempty"`
	BaselineCompiles   int    `json:"baselineCompiles,omitempty"`
	OptimizingCompiles int    `json:"optimizingCompiles,omitempty"`
	NativeCompiles     int    `json:"nativeCompiles,omitempty"`
	DegradedCompiles   int    `json:"degradedCompiles,omitempty"`
	Promotions         int64  `json:"promotions,omitempty"`
	PromoteNsMean      int64  `json:"promoteNsMean,omitempty"`
}

// HostFile is the schema of BENCH_host.json. Records holds the current
// measurements; Baseline, when present, the measurements from before
// the change being evaluated (`selfbench -hostbench -hostbase old.json`
// copies the old file's records there and computes the geomean
// speedup of guest-instrs/sec across matching records).
type HostFile struct {
	Note           string       `json:"note"`
	Records        []HostRecord `json:"records"`
	Baseline       []HostRecord `json:"baseline,omitempty"`
	GeomeanSpeedup float64      `json:"geomeanSpeedup,omitempty"`
}

// HostBenchOne measures one benchmark under one configuration with
// testing.Benchmark: the system is warmed (code compiled, inline
// caches filled, result checked) before timing, so the measurement is
// steady-state interpretation, not compilation.
func HostBenchOne(cfg selfgo.Config, b Benchmark) (*HostRecord, error) {
	return HostBenchOneMode(cfg, b, selfgo.ModeOpt, 0)
}

// HostBenchOneMode is HostBenchOne under a tier schedule. For
// non-default schedules the warm-up additionally drains background
// promotions (so adaptive mode is timed on its promoted steady state)
// and the record carries the per-tier compile counts and promotion
// latency.
func HostBenchOneMode(cfg selfgo.Config, b Benchmark, mode selfgo.TierMode, threshold int64) (*HostRecord, error) {
	var sys *selfgo.System
	var err error
	if mode == selfgo.ModeOpt {
		sys, err = selfgo.NewSystem(cfg)
	} else {
		sys, err = selfgo.NewTieredSystem(cfg, mode, threshold)
	}
	if err != nil {
		return nil, err
	}
	if err := sys.LoadSource(b.Source); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	warm, err := sys.Call(b.Entry)
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", b.Name, cfg.Name, err)
	}
	if b.HasExpect && warm.Value.I() != b.Expect {
		return nil, fmt.Errorf("%s under %s: got %d, want %d", b.Name, cfg.Name, warm.Value.I(), b.Expect)
	}
	if mode != selfgo.ModeOpt {
		// Let in-flight promotions land and take another warm lap so
		// the timed loop runs the promoted code. Adaptive mode has two
		// promotion rungs (baseline → optimizing → native) and the lap
		// on freshly promoted code re-accrues hotness for the next
		// rung, so drain-and-lap twice to reach the top tier.
		for i := 0; i < 2; i++ {
			sys.DrainPromotions()
			if warm, err = sys.Call(b.Entry); err != nil {
				return nil, fmt.Errorf("%s under %s (steady): %w", b.Name, cfg.Name, err)
			}
		}
	}
	instrs := warm.Run.Instrs

	var failed error
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			if _, err := sys.Call(b.Entry); err != nil {
				failed = err
				tb.FailNow()
			}
			// Iterations are request boundaries: recycle the arena so
			// steady-state allocation traffic reflects the serving
			// shape (vectors and clones from reused chunks, not fresh
			// Go heap every lap).
			sys.ResetArena()
		}
	})
	if failed != nil {
		return nil, fmt.Errorf("%s under %s: %w", b.Name, cfg.Name, failed)
	}
	ns := r.NsPerOp()
	rec := &HostRecord{
		Bench:       b.Name,
		Group:       b.Group,
		Config:      cfg.Name,
		NsPerOp:     ns,
		GuestInstrs: instrs,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if ns > 0 {
		rec.GuestMInstrsPerSec = float64(instrs) / (float64(ns) / 1e9) / 1e6
	}
	if mode != selfgo.ModeOpt {
		rec.TierMode = mode.String()
		tiers := sys.TierCounts()
		rec.BaselineCompiles = tiers["baseline"]
		rec.OptimizingCompiles = tiers["optimizing"]
		rec.NativeCompiles = tiers["native"]
		rec.DegradedCompiles = tiers["degraded"]
		ps := sys.PromotionStats()
		rec.Promotions = ps.Installed
		rec.PromoteNsMean = ps.MeanLatency.Nanoseconds()
	}
	return rec, nil
}

// HostBench measures benches under cfg, in order.
func HostBench(cfg selfgo.Config, benches []Benchmark, progress func(r *HostRecord)) ([]HostRecord, error) {
	return HostBenchMode(cfg, benches, selfgo.ModeOpt, 0, progress)
}

// HostBenchMode measures benches under cfg and a tier schedule.
func HostBenchMode(cfg selfgo.Config, benches []Benchmark, mode selfgo.TierMode, threshold int64, progress func(r *HostRecord)) ([]HostRecord, error) {
	out := make([]HostRecord, 0, len(benches))
	for _, b := range benches {
		rec, err := HostBenchOneMode(cfg, b, mode, threshold)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(rec)
		}
		out = append(out, *rec)
	}
	return out, nil
}

// HostAllocGuard compares freshly measured records against a committed
// baseline and reports an error if host allocation traffic regressed:
// more than 10% above the baseline's allocsPerOp or bytesPerOp, beyond
// a small absolute slack that keeps near-zero baselines (an arena-hit
// benchmark allocates single-digit objects per run) from tripping on
// scheduler noise. Records match on (bench, config, tier mode);
// measured records with no baseline are skipped — the guard pins known
// points, it does not freeze the benchmark set.
func HostAllocGuard(baseline, measured []HostRecord) error {
	key := func(r HostRecord) string { return r.Bench + "\x00" + r.Config + "\x00" + r.TierMode }
	base := map[string]HostRecord{}
	for _, r := range baseline {
		base[key(r)] = r
	}
	const (
		slackAllocs = 64   // absolute allocs/op ignored before the ratio applies
		slackBytes  = 8192 // absolute bytes/op ignored before the ratio applies
	)
	limit := func(b, slack int64) int64 { return b + b/10 + slack }
	var bad []string
	matched := 0
	for _, r := range measured {
		b, ok := base[key(r)]
		if !ok {
			continue
		}
		matched++
		if r.AllocsPerOp > limit(b.AllocsPerOp, slackAllocs) {
			bad = append(bad, fmt.Sprintf("%s/%s: allocsPerOp %d > baseline %d (+10%%)",
				r.Bench, r.Config, r.AllocsPerOp, b.AllocsPerOp))
		}
		if r.BytesPerOp > limit(b.BytesPerOp, slackBytes) {
			bad = append(bad, fmt.Sprintf("%s/%s: bytesPerOp %d > baseline %d (+10%%)",
				r.Bench, r.Config, r.BytesPerOp, b.BytesPerOp))
		}
	}
	if matched == 0 {
		return fmt.Errorf("alloc guard: no measured record matches the baseline file")
	}
	if len(bad) > 0 {
		return fmt.Errorf("host allocation regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// HostGeomeanSpeedup returns the geometric mean over matching
// (bench, config, tier-mode) triples of after/before
// guest-instrs-per-second — >1 means the interpreter got faster. Zero
// when nothing matches. Eager records carry an empty TierMode, so
// files written before tiering existed still match.
func HostGeomeanSpeedup(before, after []HostRecord) float64 {
	key := func(r HostRecord) string { return r.Bench + "\x00" + r.Config + "\x00" + r.TierMode }
	base := map[string]HostRecord{}
	for _, r := range before {
		base[key(r)] = r
	}
	logSum, n := 0.0, 0
	for _, r := range after {
		b, ok := base[key(r)]
		if !ok || b.GuestMInstrsPerSec <= 0 || r.GuestMInstrsPerSec <= 0 {
			continue
		}
		logSum += math.Log(r.GuestMInstrsPerSec / b.GuestMInstrsPerSec)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
