// Package bench contains the paper's benchmark programs written in the
// selfgo dialect — the Stanford integer suite, its object-oriented
// rewrites, the "small" micro suite, and richards — plus the harness
// that measures them under every compiler configuration and regenerates
// the tables of §6 and Appendices A–C.
package bench

import (
	"fmt"
	"time"

	"selfgo"
)

// Benchmark is one program: lobby slot definitions plus a unary entry
// selector that runs it and returns an integer check value.
type Benchmark struct {
	Name   string
	Group  string // "small", "stanford", "stanford-oo", "richards"
	Source string
	Entry  string

	// Expect is the known-correct result (verified against the
	// published benchmark where one exists); Expect==0 && !HasExpect
	// means only cross-configuration consistency is checked.
	Expect    int64
	HasExpect bool

	// ParallelSafe marks benchmarks whose runs touch no shared mutable
	// state (no lobby-level data slots: all mutation happens in method
	// locals or objects cloned per run), so N worker VMs can run them
	// concurrently against one world. The plain Stanford programs keep
	// their state in lobby globals, exactly like the C originals, and
	// are excluded from concurrent mode.
	ParallelSafe bool
}

// All returns every benchmark in presentation order (the order of the
// paper's appendices).
func All() []Benchmark {
	var out []Benchmark
	out = append(out, Stanford()...)
	out = append(out, StanfordOO()...)
	out = append(out, Small()...)
	out = append(out, Richards())
	return out
}

// ByGroup filters All() by group name.
func ByGroup(group string) []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.Group == group {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ParallelSafe returns the benchmarks that can run on concurrent
// worker VMs sharing one world.
func ParallelSafe() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.ParallelSafe {
			out = append(out, b)
		}
	}
	return out
}

// Measurement is one (benchmark, configuration) data point.
type Measurement struct {
	Bench  string
	Group  string
	Config string

	Value       int64 // the program's check value
	Cycles      int64 // modelled execution cycles
	Run         selfgo.RunStats
	CompileTime time.Duration // compiler time for all methods the run forced
	CodeBytes   int           // bytes of compiled code produced
	Methods     int           // methods (and blocks) compiled
}

// Run measures one benchmark under one configuration with a fresh
// system (cold code cache, as in the paper's methodology: compile time
// and code space are what the benchmark forces the dynamic compiler to
// produce).
func Run(b Benchmark, cfg selfgo.Config) (*Measurement, error) {
	sys, err := selfgo.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.LoadSource(b.Source); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	res, err := sys.Call(b.Entry)
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", b.Name, cfg.Name, err)
	}
	if b.HasExpect && res.Value.I() != b.Expect {
		return nil, fmt.Errorf("%s under %s: got %d, want %d", b.Name, cfg.Name, res.Value.I(), b.Expect)
	}
	return &Measurement{
		Bench:       b.Name,
		Group:       b.Group,
		Config:      cfg.Name,
		Value:       res.Value.I(),
		Cycles:      res.Run.Cycles,
		Run:         res.Run,
		CompileTime: res.CompileTime,
		CodeBytes:   res.Compile.CodeBytes,
		Methods:     res.Compile.Methods,
	}, nil
}
