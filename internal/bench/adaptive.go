// Tiered-mode benchmark rail: measuring what adaptive compilation
// actually does on a benchmark — how the first (cold, baseline-tier)
// run compares with the steady state after hot methods were promoted,
// and how much compilation each tier performed.
package bench

import (
	"fmt"

	"selfgo"
)

// TieredMeasurement is one benchmark run under a tier schedule.
type TieredMeasurement struct {
	Bench string
	Mode  selfgo.TierMode
	Value int64

	// FirstRun is the cold run: compiles at the first tier, accrues
	// hotness, and (in adaptive mode) fires the promotion requests.
	FirstRun selfgo.RunStats
	// SteadyRun is a run after DrainPromotions: in adaptive mode it
	// executes the promoted code.
	SteadyRun selfgo.RunStats

	Promotions selfgo.PromotionStats
	// TierCounts is the number of compilations per tier label.
	TierCounts map[string]int
	Cache      selfgo.CacheStats
}

// RunTiered measures b under cfg with the given tier schedule: one cold
// run, a drain of background promotions, then one steady-state run.
// Both runs are checked against the benchmark's expected value.
func RunTiered(b Benchmark, cfg selfgo.Config, mode selfgo.TierMode, threshold int64) (*TieredMeasurement, error) {
	sys, err := selfgo.NewTieredSystem(cfg, mode, threshold)
	if err != nil {
		return nil, err
	}
	if err := sys.LoadSource(b.Source); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	first, err := sys.Call(b.Entry)
	if err != nil {
		return nil, fmt.Errorf("%s under %s/%s: %w", b.Name, cfg.Name, mode, err)
	}
	// Adaptive mode promotes in two rungs (baseline → optimizing →
	// native), and the lap on freshly promoted code re-accrues the
	// hotness that fires the next rung — so drain and re-run twice; the
	// last lap is the steady state on fully promoted code.
	var steady *selfgo.Result
	for i := 0; i < 2; i++ {
		sys.DrainPromotions()
		if steady, err = sys.Call(b.Entry); err != nil {
			return nil, fmt.Errorf("%s under %s/%s (steady): %w", b.Name, cfg.Name, mode, err)
		}
	}
	sys.DrainPromotions()
	for _, v := range []selfgo.Value{first.Value, steady.Value} {
		if b.HasExpect && v.I() != b.Expect {
			return nil, fmt.Errorf("%s under %s/%s: got %d, want %d", b.Name, cfg.Name, mode, v.I(), b.Expect)
		}
	}
	if first.Value.I() != steady.Value.I() {
		return nil, fmt.Errorf("%s under %s/%s: value changed across promotion: %d -> %d",
			b.Name, cfg.Name, mode, first.Value.I(), steady.Value.I())
	}
	cache, _ := sys.CacheStats()
	return &TieredMeasurement{
		Bench:      b.Name,
		Mode:       mode,
		Value:      steady.Value.I(),
		FirstRun:   first.Run,
		SteadyRun:  steady.Run,
		Promotions: sys.PromotionStats(),
		TierCounts: sys.TierCounts(),
		Cache:      cache,
	}, nil
}
