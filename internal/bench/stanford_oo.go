package bench

// StanfordOO returns the object-oriented rewrites of the Stanford
// benchmarks (§6): "the changes are chiefly to redirect the target of
// messages from the benchmark object to the data structures
// manipulated by the benchmark"; algorithms are unchanged. puzzle was
// not rewritten but the paper includes it in this group's summaries —
// the table harness does the same.
func StanfordOO() []Benchmark {
	return []Benchmark{
		{
			Name:  "perm-oo",
			Group: "stanford-oo",
			Source: `
permuter = (| parent* = lobby.
    items.
    count <- 0.
    init: n = (
        items: vector copySize: n + 1.
        0 upTo: n + 1 Do: [ :i | items at: i Put: i + 1 ].
        count: 0.
        self ).
    swap: i With: j = ( | t |
        t: items at: i.
        items at: i Put: (items at: j).
        items at: j Put: t ).
    permute: n = ( | n1 |
        count: count + 1.
        (n != 0) ifTrue: [
            n1: n - 1.
            permute: n1.
            n1 downTo: 0 Do: [ :i |
                swap: n1 With: i.
                permute: n1.
                swap: n1 With: i ] ] ).
|).
permOOBench = ( | p |
    p: permuter _Clone.
    p init: 6.
    p permute: 6.
    p count ).`,
			Entry:        "permOOBench",
			ParallelSafe: true,
			Expect:       8660,
			HasExpect:    true,
		},
		{
			Name:  "towers-oo",
			Group: "stanford-oo",
			Source: `
towerStack = (| parent* = lobby.
    cells.
    top <- 0.
    init = ( cells: vector copySize: 15. top: 0. self ).
    push: d = (
        (top > 0) ifTrue: [
            ((cells at: top - 1) <= d) ifTrue: [ error: 'disc size error' ] ].
        cells at: top Put: d.
        top: top + 1 ).
    pop = (
        (top < 1) ifTrue: [ error: 'nothing to pop' ].
        top: top - 1.
        cells at: top ).
|).
towersGame = (| parent* = lobby.
    stacks.
    moves <- 0.
    init: n = (
        stacks: vector copySize: 3.
        0 upTo: 3 Do: [ :i | stacks at: i Put: towerStack _Clone init ].
        moves: 0.
        n downTo: 1 Do: [ :d | (stacks at: 0) push: d ].
        self ).
    move: n From: a To: b Via: c = (
        (n = 1)
            ifTrue: [
                (stacks at: b) push: ((stacks at: a) pop).
                moves: moves + 1 ]
            False: [
                move: n - 1 From: a To: c Via: b.
                (stacks at: b) push: ((stacks at: a) pop).
                moves: moves + 1.
                move: n - 1 From: c To: b Via: a ] ).
|).
towersOOBench = ( | g |
    g: towersGame _Clone init: 14.
    g move: 14 From: 0 To: 2 Via: 1.
    g moves ).`,
			Entry:        "towersOOBench",
			ParallelSafe: true,
			Expect:       16383,
			HasExpect:    true,
		},
		{
			Name:  "queens-oo",
			Group: "stanford-oo",
			Source: `
queensBoard = (| parent* = lobby.
    rowFree. diagA. diagB.
    solutions <- 0.
    init = (
        rowFree: vector copySize: 8 FillWith: 1.
        diagA: vector copySize: 15 FillWith: 1.
        diagB: vector copySize: 15 FillWith: 1.
        solutions: 0.
        self ).
    rowOK: r Col: c = (
        ((rowFree at: r) = 1) and: [
            ((diagA at: r + c) = 1) and: [
                (diagB at: (r - c) + 7) = 1 ] ] ).
    place: r Col: c = (
        rowFree at: r Put: 0.
        diagA at: r + c Put: 0.
        diagB at: (r - c) + 7 Put: 0 ).
    unplace: r Col: c = (
        rowFree at: r Put: 1.
        diagA at: r + c Put: 1.
        diagB at: (r - c) + 7 Put: 1 ).
    try: col = (
        0 upTo: 8 Do: [ :row |
            (rowOK: row Col: col) ifTrue: [
                place: row Col: col.
                (col = 7)
                    ifTrue: [ solutions: solutions + 1 ]
                    False: [ try: col + 1 ].
                unplace: row Col: col ] ] ).
|).
queensOOBench = ( | b |
    b: queensBoard _Clone init.
    b try: 0.
    b solutions ).`,
			Entry:        "queensOOBench",
			ParallelSafe: true,
			Expect:       92,
			HasExpect:    true,
		},
		{
			Name:  "intmm-oo",
			Group: "stanford-oo",
			Source: `
imooSeed <- 0.
imooRand = (
    imooSeed: ((imooSeed * 1309) + 13849) % 65536.
    imooSeed ).
imMatrix = (| parent* = lobby.
    rows.
    n <- 0.
    init: size = (
        n: size.
        rows: vector copySize: size.
        0 upTo: size Do: [ :i | rows at: i Put: (vector copySize: size FillWith: 0) ].
        self ).
    r: i C: j = ( (rows at: i) at: j ).
    r: i C: j Put: v = ( (rows at: i) at: j Put: v ).
    fillRandom = (
        0 upTo: n Do: [ :i |
            0 upTo: n Do: [ :j | r: i C: j Put: (imooRand % 120) - 60 ] ].
        self ).
    times: other Into: result = (
        0 upTo: n Do: [ :i |
            0 upTo: n Do: [ :j |
                | sum <- 0 |
                0 upTo: n Do: [ :k |
                    sum: sum + ((r: i C: k) * (other r: k C: j)) ].
                result r: i C: j Put: sum ] ] ).
|).
intmmOOBench = ( | a. b. c. check <- 0. n <- 24 |
    imooSeed: 74755.
    a: imMatrix _Clone init: n. a fillRandom.
    b: imMatrix _Clone init: n. b fillRandom.
    c: imMatrix _Clone init: n.
    a times: b Into: c.
    0 upTo: n Do: [ :i |
        0 upTo: n Do: [ :j | check: check + ((c r: i C: j) % 1000) ] ].
    check ).`,
			Entry: "intmmOOBench",
		},
		{
			Name:  "quick-oo",
			Group: "stanford-oo",
			Source: sortableSource + `
quickOOBench = ( | s |
    s: sortable _Clone init: 1000 Seed: 74755.
    s quickSort.
    (s at: 0) + (s at: 999) + s disorder ).`,
			Entry:        "quickOOBench",
			ParallelSafe: true,
		},
		{
			Name:  "bubble-oo",
			Group: "stanford-oo",
			Source: sortableSource + `
bubbleOOBench = ( | s |
    s: sortable _Clone init: 175 Seed: 74755.
    s bubbleSort.
    (s at: 0) + (s at: 174) + s disorder ).`,
			Entry:        "bubbleOOBench",
			ParallelSafe: true,
		},
		{
			Name:  "tree-oo",
			Group: "stanford-oo",
			Source: `
treeNode = (| parent* = lobby.
    key <- 0.
    left. right.
    setKey: k = ( key: k. self ).
    insert: k = (
        (k < key)
            ifTrue: [
                left isNil
                    ifTrue: [ left: (treeNode _Clone setKey: k) ]
                    False: [ left insert: k ] ]
            False: [
                right isNil
                    ifTrue: [ right: (treeNode _Clone setKey: k) ]
                    False: [ right insert: k ] ] ).
    find: k = (
        (k = key) ifTrue: [ ^ 1 ].
        (k < key)
            ifTrue: [ left isNil ifTrue: [ 0 ] False: [ left find: k ] ]
            False: [ right isNil ifTrue: [ 0 ] False: [ right find: k ] ] ).
|).
trooSeed <- 0.
trooRand = (
    trooSeed: ((trooSeed * 1309) + 13849) % 65536.
    trooSeed ).
treeOOBench = ( | root. found <- 0. n <- 1000 |
    trooSeed: 74755.
    root: treeNode _Clone setKey: trooRand.
    1 upTo: n Do: [ :i | root insert: trooRand ].
    trooSeed: 74755.
    0 upTo: n Do: [ :i | found: found + (root find: trooRand) ].
    found ).`,
			Entry:     "treeOOBench",
			Expect:    1000,
			HasExpect: true,
		},
	}
}

// sortableSource is the shared sortable-collection prototype of the
// quick-oo and bubble-oo benchmarks: the sort methods live on the data
// structure itself.
const sortableSource = `
sortable = (| parent* = lobby.
    data.
    size <- 0.
    init: n Seed: s = ( | seed |
        size: n.
        data: vector copySize: n.
        seed: s.
        0 upTo: n Do: [ :i |
            seed: ((seed * 1309) + 13849) % 65536.
            data at: i Put: seed ].
        self ).
    at: i = ( data at: i ).
    at: i Put: v = ( data at: i Put: v ).
    swap: i With: j = ( | t |
        t: data at: i.
        data at: i Put: (data at: j).
        data at: j Put: t ).
    quickLo: lo Hi: hi = ( | i. j. pivot |
        i: lo.
        j: hi.
        pivot: (at: (lo + hi) / 2).
        [ i <= j ] whileTrue: [
            [ (at: i) < pivot ] whileTrue: [ i: i + 1 ].
            [ pivot < (at: j) ] whileTrue: [ j: j - 1 ].
            (i <= j) ifTrue: [
                swap: i With: j.
                i: i + 1.
                j: j - 1 ] ].
        (lo < j) ifTrue: [ quickLo: lo Hi: j ].
        (i < hi) ifTrue: [ quickLo: i Hi: hi ] ).
    quickSort = ( quickLo: 0 Hi: size - 1 ).
    bubbleSort = ( | top |
        top: size - 1.
        [ top > 0 ] whileTrue: [
            | i <- 0 |
            [ i < top ] whileTrue: [
                ((at: i) > (at: i + 1)) ifTrue: [ swap: i With: i + 1 ].
                i: i + 1 ].
            top: top - 1 ] ).
    disorder = ( | bad <- 0 |
        0 upTo: size - 1 Do: [ :i |
            ((at: i) > (at: i + 1)) ifTrue: [ bad: bad + 1 ] ].
        bad ).
|).
`
