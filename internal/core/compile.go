package core

import (
	"fmt"
	"time"

	"selfgo/internal/ast"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/types"
)

// Compiler compiles methods of a world under one configuration.
//
// A Compiler holds no per-compilation state — each CompileMethod call
// builds its own context — so one Compiler may serve concurrent
// compilations, as the shared code cache's single-flight path does,
// provided the world is not mutated while compilations run.
type Compiler struct {
	World *obj.World
	Cfg   Config
}

// New returns a compiler for the world under cfg.
func New(world *obj.World, cfg Config) *Compiler {
	return &Compiler{World: world, Cfg: cfg}
}

// CompileMethod compiles meth customized for receiver map rmap. With
// customization disabled (or rmap nil) the receiver is unknown, as in
// Smalltalk-80. Returns the optimized control flow graph.
func (c *Compiler) CompileMethod(meth *obj.Method, rmap *obj.Map) (*ir.Graph, *Stats, error) {
	return c.compileMethodFB(meth, rmap, nil)
}

// compileMethodFB is CompileMethod seeded with receiver-map type
// feedback harvested from a lower tier's inline caches (nil feedback
// compiles bit-identically to CompileMethod); the Pipeline's hot
// recompiles use it.
func (c *Compiler) compileMethodFB(meth *obj.Method, rmap *obj.Map, fb *types.Feedback) (*ir.Graph, *Stats, error) {
	cp := newCompilation(c)
	cp.fb = fb
	name := meth.String()
	if c.Cfg.Customization && rmap != nil {
		name = fmt.Sprintf("%s>>%s", rmap.Name, meth.Sel)
	}
	g := ir.NewGraph(name)
	cp.g = g

	sc := &scope{kind: methodScope, vars: map[string]ir.Reg{}, params: map[string]bool{}}
	sc.selfReg = cp.newVarReg()
	sc.ret = &retCollector{resultReg: cp.newVarReg()}
	cp.topScope = sc
	// The method being compiled never inlines itself: recursion becomes
	// a (customized) call, as in the SELF compiler.
	cp.inlineStack = append(cp.inlineStack, meth.Ast)
	sc.stackDepth = len(cp.inlineStack)

	f0 := &flow{from: g.Entry, slot: 0, env: env{}}
	if c.Cfg.Customization && rmap != nil {
		f0.env.set(sc.selfReg, types.NewClass(rmap, c.World.IntMap))
	} else {
		f0.env.set(sc.selfReg, types.Unknown{})
	}

	for _, p := range meth.Ast.Params {
		r := cp.newVarReg()
		sc.vars[p] = r
		sc.params[p] = true
		f0.env.set(r, types.Unknown{})
	}

	flows := []*flow{f0}
	flows = cp.declareLocals(flows, sc, meth.Ast.Locals)
	flows, res := cp.compileBody(flows, meth.Ast.Body, sc)
	if res == ir.NoReg {
		res = sc.selfReg // empty body: a method returns self
	}
	cp.finishMethod(flows, res, sc)
	cp.stats.Duration = time.Since(cp.start)
	cp.stats.Nodes = len(g.Reachable())
	return g, cp.stats, cp.err
}

// CompileBlock compiles a block as out-of-line closure code: the named
// captures become up-level accesses, ^ becomes a non-local return.
// upNames must list the closure's captured variables (the names the
// MkBlk instruction recorded), so compilation agrees with the runtime
// representation.
func (c *Compiler) CompileBlock(blk *ast.Block, upNames []string) (*ir.Graph, *Stats, error) {
	return c.compileBlockFB(blk, upNames, nil)
}

// compileBlockFB is CompileBlock with optional type feedback (see
// compileMethodFB).
func (c *Compiler) compileBlockFB(blk *ast.Block, upNames []string, fb *types.Feedback) (*ir.Graph, *Stats, error) {
	cp := newCompilation(c)
	cp.fb = fb
	g := ir.NewGraph(fmt.Sprintf("block@%s", blk.P))
	cp.g = g

	sc := &scope{kind: blockScope, compiledBlock: true, vars: map[string]ir.Reg{}, params: map[string]bool{}, upNames: map[string]bool{}}
	for _, n := range upNames {
		sc.upNames[n] = true
	}
	sc.selfReg = cp.newVarReg()
	sc.ret = &retCollector{resultReg: cp.newVarReg()}
	cp.topScope = sc

	f0 := &flow{from: g.Entry, slot: 0, env: env{}}
	selfLoad := g.NewNode(ir.LoadUp)
	selfLoad.Dst = sc.selfReg
	selfLoad.Sel = "self"
	cp.emit(f0, selfLoad)
	f0.env.set(sc.selfReg, types.Unknown{})

	for _, p := range blk.Params {
		r := cp.newVarReg()
		sc.vars[p] = r
		sc.params[p] = true
		f0.env.set(r, types.Unknown{})
	}

	flows := []*flow{f0}
	flows = cp.declareLocals(flows, sc, blk.Locals)
	flows, res := cp.compileBody(flows, blk.Body, sc)
	if res == ir.NoReg {
		res = sc.selfReg
	}
	cp.finishMethod(flows, res, sc)
	cp.stats.Duration = time.Since(cp.start)
	cp.stats.Nodes = len(g.Reachable())
	return g, cp.stats, cp.err
}

// compilation is the state of one CompileMethod/CompileBlock run.
type compilation struct {
	c     *Compiler
	w     *obj.World
	cfg   Config
	g     *ir.Graph
	stats *Stats
	start time.Time

	inlineStack []*ast.Method
	writeLogs   []map[ir.Reg]bool // active loop-invariance write logs
	tracked     []ir.Reg          // registers whose types survive merges
	trackedSet  map[ir.Reg]bool
	volatile    map[ir.Reg]bool // assigned by escaped closures: always unknown
	topScope    *scope          // the outermost (non-inlined) scope
	mergeSeq    int
	err         error

	// fb is receiver-map type feedback from a lower tier's inline
	// caches (nil outside feedback-seeded recompiles); sendUnknown
	// consults it when neither static types nor prediction decide a
	// receiver.
	fb *types.Feedback

	protoCache map[*ast.ObjectLit]obj.Value
}

func newCompilation(c *Compiler) *compilation {
	return &compilation{
		c:          c,
		w:          c.World,
		cfg:        c.Cfg,
		stats:      &Stats{},
		start:      time.Now(),
		trackedSet: map[ir.Reg]bool{},
		volatile:   map[ir.Reg]bool{},
		protoCache: map[*ast.ObjectLit]obj.Value{},
	}
}

func (cp *compilation) intMap() *obj.Map { return cp.w.IntMap }

func (cp *compilation) errorf(format string, args ...any) {
	if cp.err == nil {
		cp.err = fmt.Errorf(format, args...)
	}
}

// newVarReg allocates a register tracked across merges (scope
// variables, loop-carried values).
func (cp *compilation) newVarReg() ir.Reg {
	r := cp.g.NewReg()
	cp.track(r)
	return r
}

// track marks an existing register as type-tracked across merges (used
// when an inlined callee aliases a caller register).
func (cp *compilation) track(r ir.Reg) {
	if r == ir.NoReg || cp.trackedSet[r] {
		return
	}
	cp.trackedSet[r] = true
	cp.tracked = append(cp.tracked, r)
}

// trackMark/trackRelease bracket an inlined scope: its registers stop
// being tracked once the inline completes, keeping environments (and
// every merge and loop fix-point over them) small. Dropping a type is
// always sound — the register reads as unknown afterwards.
func (cp *compilation) trackMark() int { return len(cp.tracked) }

func (cp *compilation) trackRelease(mark int) {
	for _, r := range cp.tracked[mark:] {
		delete(cp.trackedSet, r)
	}
	cp.tracked = cp.tracked[:mark]
}

// emit appends n to flow f's open edge.
func (cp *compilation) emit(f *flow, n *ir.Node) {
	setSucc(f.from, f.slot, n)
	n.Uncommon = n.Uncommon || f.uncommon
	f.from = n
	f.slot = 0
	f.copied++
	if n.Dst != ir.NoReg {
		for _, log := range cp.writeLogs {
			log[n.Dst] = true
		}
	}
	if cp.cfg.AnnotateTypes {
		cp.annotate(f, n)
	}
}

// annotate attaches incoming operand types to nodes whose dumps the
// paper's figures label (sends, tests, compares, arithmetic).
func (cp *compilation) annotate(f *flow, n *ir.Node) {
	show := func(r ir.Reg) string {
		return fmt.Sprintf("r%d:%s", r, f.env.get(r))
	}
	var note string
	switch n.Op {
	case ir.Send, ir.Call, ir.PrimOp:
		if len(n.Args) > 0 {
			note = "recv " + show(n.Args[0])
		}
	case ir.TypeTest:
		note = "on " + show(n.A)
	case ir.CmpBr, ir.Arith:
		note = show(n.A) + " , " + show(n.B)
	default:
		return
	}
	if n.Note != "" {
		note = n.Note + "; " + note
	}
	n.Note = note
}

// declareLocals emits constant initializers for locals (§3.2.1: "local
// variables in SELF are always initialized to compile-time constants").
func (cp *compilation) declareLocals(flows []*flow, sc *scope, locals []*ast.Local) []*flow {
	for _, l := range locals {
		r := cp.newVarReg()
		sc.vars[l.Name] = r
		v, ty := cp.localInit(l.Init)
		for _, f := range flows {
			n := cp.g.NewNode(ir.Const)
			n.Dst = r
			n.Val = v
			cp.emit(f, n)
			f.env.set(r, ty)
		}
	}
	return flows
}

func (cp *compilation) localInit(e ast.Expr) (obj.Value, types.Type) {
	switch n := e.(type) {
	case nil:
		return obj.Nil(), types.NewVal(obj.Nil(), cp.w.NilMap)
	case *ast.IntLit:
		return obj.Int(n.Value), types.NewVal(obj.Int(n.Value), cp.intMap())
	case *ast.StrLit:
		return obj.Str(n.Value), types.NewVal(obj.Str(n.Value), cp.w.StrMap)
	case *ast.Ident:
		if v, ok := cp.w.GlobalValue(n.Name); ok {
			return v, types.NewVal(v, cp.w.MapOf(v))
		}
	}
	cp.errorf("%s: local initializer must be a compile-time constant", e.Pos())
	return obj.Nil(), types.NewVal(obj.Nil(), cp.w.NilMap)
}

// finishMethod emits returns for the fall-through flows and for every
// flow collected by ^ expressions.
func (cp *compilation) finishMethod(flows []*flow, res ir.Reg, sc *scope) {
	for _, f := range flows {
		cp.materialize(f, res) // returned blocks escape to the caller
		n := cp.g.NewNode(ir.Return)
		n.A = res
		cp.emit(f, n)
	}
	for _, f := range sc.ret.flows {
		cp.materialize(f, sc.ret.resultReg)
		n := cp.g.NewNode(ir.Return)
		n.A = sc.ret.resultReg
		cp.emit(f, n)
	}
}

// compileBody compiles a statement list, applying the merge policy
// between statements. Returns the flows and the register holding the
// last statement's value.
func (cp *compilation) compileBody(flows []*flow, body []ast.Expr, sc *scope) ([]*flow, ir.Reg) {
	res := ir.NoReg
	for _, stmt := range body {
		if len(flows) == 0 || cp.err != nil {
			return flows, res
		}
		flows, res = cp.compileExpr(flows, stmt, sc)
		flows = cp.mergePolicy(flows, res)
	}
	return flows, res
}

// mergePolicy decides, at a potential merge point, whether to keep
// flows split (extended splitting) or merge them (forming merge types).
// Uncommon flows are never kept split from each other, and splitting
// stops once the copied-node budget is exceeded (§4).
func (cp *compilation) mergePolicy(flows []*flow, keep ir.Reg) []*flow {
	if len(flows) <= 1 {
		if len(flows) == 1 {
			flows[0].copied = 0
		}
		return flows
	}
	var common, uncommon []*flow
	for _, f := range flows {
		if f.uncommon {
			uncommon = append(uncommon, f)
		} else {
			common = append(common, f)
		}
	}
	// Merge flows whose environments agree on the tracked registers —
	// there is nothing to split for.
	common = cp.mergeEqual(common, keep)
	uncommon = cp.mergeEqual(uncommon, keep)

	keepSplit := cp.cfg.ExtendedSplitting && len(common) <= cp.cfg.MaxFlows
	if keepSplit {
		for _, f := range common {
			if f.copied > cp.cfg.SplitNodeThreshold {
				keepSplit = false
				cp.stats.ForcedMerges++
				break
			}
		}
	}
	if !keepSplit && len(common) > 1 {
		common = []*flow{cp.mergeFlows(common, keep)}
	} else if len(common) > 1 {
		cp.stats.Splits++
	}
	if len(uncommon) > 1 {
		uncommon = []*flow{cp.mergeFlows(uncommon, keep)}
	}
	if len(common) == 1 {
		common[0].copied = 0
	}
	return append(common, uncommon...)
}

// mergeEqual merges flows with identical tracked environments.
func (cp *compilation) mergeEqual(flows []*flow, keep ir.Reg) []*flow {
	if len(flows) <= 1 {
		return flows
	}
	regs := cp.mergeRegs(keep)
	var out []*flow
	for _, f := range flows {
		merged := false
		for _, o := range out {
			if f.env.equalOn(o.env, regs) {
				cp.attachToMerge(o, f)
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, f)
		}
	}
	return out
}

// attachToMerge routes flow f into the merge point flow o already
// heads. If o's current node is not a merge node, one is created.
// Path knowledge is per-path: the merged flow keeps none.
func (cp *compilation) attachToMerge(o, f *flow) {
	if o.from.Op != ir.Merge || o.slot != 0 {
		m := cp.newMergeNode()
		cp.emit(o, m)
	}
	setSucc(f.from, f.slot, o.from)
	o.uncommon = o.uncommon && f.uncommon
	o.dropFacts()
}

func (cp *compilation) newMergeNode() *ir.Node {
	cp.mergeSeq++
	n := cp.g.NewNode(ir.Merge)
	n.Index = cp.mergeSeq
	return n
}

// mergeFlows merges all flows into one at a fresh merge node, merging
// the type environments pointwise (creating merge types where they
// differ, §4). A register holding an unmaterialized block literal on
// some flows but not others must be materialized first: after the
// merge dilutes its type, uses compile to dynamic value: sends, which
// need a real closure in the register.
func (cp *compilation) mergeFlows(flows []*flow, keep ir.Reg) *flow {
	if len(flows) == 1 {
		return flows[0]
	}
	// Registers holding block literals must never lose that knowledge
	// silently: if all flows agree the entry survives the merge, else
	// the closures are materialized first (the dilution makes later
	// uses dynamic, which needs real closures in the register).
	blkKeys := map[ir.Reg]bool{}
	for _, f := range flows {
		for r, t := range f.env {
			if _, ok := t.(types.Blk); ok {
				blkKeys[r] = true
			}
		}
	}
	var keepBlk []ir.Reg
	for r := range blkKeys {
		first := flows[0].env.get(r)
		same := true
		for _, f := range flows[1:] {
			if !types.Equal(f.env.get(r), first) {
				same = false
				break
			}
		}
		if same {
			keepBlk = append(keepBlk, r)
			continue
		}
		for _, f := range flows {
			cp.materialize(f, r)
		}
	}

	m := cp.newMergeNode()
	allUncommon := true
	for _, f := range flows {
		setSucc(f.from, f.slot, m)
		allUncommon = allUncommon && f.uncommon
	}
	merged := env{}
	for _, r := range append(cp.mergeRegs(keep), keepBlk...) {
		var t types.Type
		first := true
		for _, f := range flows {
			ft := f.env.get(r)
			if first {
				t = ft
				first = false
				continue
			}
			t = types.MergeOf(t, ft, m.Index, cp.intMap())
		}
		merged.set(r, t)
	}
	return &flow{from: m, slot: 0, env: merged, uncommon: allUncommon}
}

// mergeRegs is the set of registers whose types are carried across
// merges: all tracked registers plus the statement result.
func (cp *compilation) mergeRegs(keep ir.Reg) []ir.Reg {
	if keep == ir.NoReg {
		return cp.tracked
	}
	for _, r := range cp.tracked {
		if r == keep {
			return cp.tracked
		}
	}
	return append(append([]ir.Reg(nil), cp.tracked...), keep)
}

// --- Expression compilation ---

// compileExpr compiles e along every flow. The result register is the
// same on every returned flow.
func (cp *compilation) compileExpr(flows []*flow, e ast.Expr, sc *scope) ([]*flow, ir.Reg) {
	if cp.err != nil || len(flows) == 0 {
		return flows, cp.g.NewReg()
	}
	switch n := e.(type) {
	case *ast.IntLit:
		return cp.compileConst(flows, obj.Int(n.Value))
	case *ast.StrLit:
		return cp.compileConst(flows, obj.Str(n.Value))
	case *ast.Block:
		dst := cp.newVarReg()
		for _, f := range flows {
			f.env.set(dst, types.Blk{B: n, Scope: sc, M: cp.w.BlockMap})
		}
		return flows, dst
	case *ast.Ident:
		return cp.compileIdent(flows, n, sc)
	case *ast.UnaryMsg:
		flows, rr := cp.compileExpr(flows, n.Recv, sc)
		return cp.compileSend(flows, rr, n.Sel, nil, sc)
	case *ast.BinMsg:
		flows, rr := cp.compileExpr(flows, n.Recv, sc)
		flows, ar := cp.compileExpr(flows, n.Arg, sc)
		return cp.compileSend(flows, rr, n.Op, []ir.Reg{ar}, sc)
	case *ast.KeywordMsg:
		return cp.compileKeyword(flows, n, sc)
	case *ast.PrimCall:
		return cp.compilePrimCall(flows, n, sc)
	case *ast.Return:
		return cp.compileReturn(flows, n, sc)
	case *ast.ObjectLit:
		return cp.compileObjectLit(flows, n)
	}
	cp.errorf("%s: cannot compile %T", e.Pos(), e)
	return flows, cp.g.NewReg()
}

func (cp *compilation) compileConst(flows []*flow, v obj.Value) ([]*flow, ir.Reg) {
	dst := cp.g.NewReg()
	t := types.NewVal(v, cp.w.MapOf(v))
	for _, f := range flows {
		n := cp.g.NewNode(ir.Const)
		n.Dst = dst
		n.Val = v
		cp.emit(f, n)
		f.env.set(dst, t)
	}
	return flows, dst
}

func (cp *compilation) compileIdent(flows []*flow, n *ast.Ident, sc *scope) ([]*flow, ir.Reg) {
	if n.Name == "self" {
		return flows, sc.selfScope().selfReg
	}
	if r, up, ok := sc.lookupVar(n.Name); ok {
		if !up {
			return flows, r
		}
		// Up-level variable of an out-of-line block.
		dst := cp.g.NewReg()
		for _, f := range flows {
			ld := cp.g.NewNode(ir.LoadUp)
			ld.Dst = dst
			ld.Sel = n.Name
			cp.emit(f, ld)
			f.env.set(dst, types.Unknown{})
		}
		return flows, dst
	}
	// Unary message to the implicit receiver.
	return cp.compileSend(flows, sc.selfScope().selfReg, n.Name, nil, sc)
}

func (cp *compilation) compileKeyword(flows []*flow, n *ast.KeywordMsg, sc *scope) ([]*flow, ir.Reg) {
	if n.Recv == nil {
		// Implicit receiver: assignment to a lexical variable, or a
		// send to self.
		parts := ast.SplitSelector(n.Sel)
		if len(parts) == 1 && len(n.Args) == 1 {
			name := n.Sel[:len(n.Sel)-1]
			if r, up, ok := sc.lookupVar(name); ok {
				if sc.isParam(name) {
					cp.errorf("%s: cannot assign to parameter %q", n.P, name)
					return flows, r
				}
				return cp.compileAssign(flows, r, up, name, n.Args[0], sc)
			}
		}
		recv := sc.selfScope().selfReg
		var args []ir.Reg
		for _, a := range n.Args {
			var ar ir.Reg
			flows, ar = cp.compileExpr(flows, a, sc)
			args = append(args, ar)
		}
		return cp.compileSend(flows, recv, n.Sel, args, sc)
	}
	flows, rr := cp.compileExpr(flows, n.Recv, sc)
	var args []ir.Reg
	for _, a := range n.Args {
		var ar ir.Reg
		flows, ar = cp.compileExpr(flows, a, sc)
		args = append(args, ar)
	}
	return cp.compileSend(flows, rr, n.Sel, args, sc)
}

func (cp *compilation) compileAssign(flows []*flow, r ir.Reg, up bool, name string, arg ast.Expr, sc *scope) ([]*flow, ir.Reg) {
	flows, ar := cp.compileExpr(flows, arg, sc)
	for _, f := range flows {
		if up {
			// Up-level storage is runtime state: block values must be
			// real closures there.
			cp.materialize(f, ar)
			st := cp.g.NewNode(ir.StoreUp)
			st.Sel = name
			st.A = ar
			cp.emit(f, st)
			continue
		}
		if !cp.cfg.TypeAnalysis {
			// The assignment erases the type (see below), so a block
			// literal must become a real closure now.
			cp.materialize(f, ar)
		}
		mv := cp.g.NewNode(ir.Move)
		mv.Dst = r
		mv.A = ar
		cp.emit(f, mv)
		f.invalidateReg(r)
		if cp.cfg.ComparisonFacts {
			f.aliasReg(r, ar)
		}
		if cp.cfg.TypeAnalysis {
			f.env.set(r, f.env.get(ar))
		} else {
			// The original SELF compiler performed no type analysis:
			// assigned locals are always of unknown type (§5).
			f.env.set(r, types.Unknown{})
		}
	}
	return flows, ar
}

func (cp *compilation) compileReturn(flows []*flow, n *ast.Return, sc *scope) ([]*flow, ir.Reg) {
	flows, res := cp.compileExpr(flows, n.E, sc)
	home := sc.homeMethod()
	for _, f := range flows {
		if home == nil {
			// Out-of-line block: non-local return through the closure.
			cp.materialize(f, res)
			nl := cp.g.NewNode(ir.NLReturn)
			nl.A = res
			cp.emit(f, nl)
			continue
		}
		mv := cp.g.NewNode(ir.Move)
		mv.Dst = home.ret.resultReg
		mv.A = res
		cp.emit(f, mv)
		f.env.set(home.ret.resultReg, f.env.get(res))
		home.ret.flows = append(home.ret.flows, f)
	}
	// All flows ended; callers see an empty flow set.
	return nil, res
}

func (cp *compilation) compileObjectLit(flows []*flow, n *ast.ObjectLit) ([]*flow, ir.Reg) {
	proto, ok := cp.protoCache[n]
	if !ok {
		v, err := cp.w.BuildObject(n)
		if err != nil {
			cp.errorf("%s: %v", n.P, err)
			return flows, cp.g.NewReg()
		}
		proto = v
		cp.protoCache[n] = proto
	}
	// Each evaluation yields a fresh clone of the literal prototype.
	tmp := cp.g.NewReg()
	dst := cp.g.NewReg()
	t := types.NewClass(proto.Obj().Map, cp.intMap())
	for _, f := range flows {
		cn := cp.g.NewNode(ir.Const)
		cn.Dst = tmp
		cn.Val = proto
		cp.emit(f, cn)
		cl := cp.g.NewNode(ir.CloneOp)
		cl.Dst = dst
		cl.A = tmp
		cp.emit(f, cl)
		f.env.set(dst, t)
	}
	return flows, dst
}
