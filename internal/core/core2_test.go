package core

import (
	"strings"
	"testing"

	"selfgo/internal/ir"
	"selfgo/internal/obj"
)

// TestWhileFalseNegation: whileFalse: swaps the loop's branch sense.
func TestWhileFalseNegation(t *testing.T) {
	w := buildWorld(t, `go = ( | i <- 0 | [ i >= 5 ] whileFalse: [ i: i + 1 ]. i ).`)
	g, st := compileLobby(t, w, NewSELF, "go")
	if st.LoopVersions == 0 {
		t.Fatalf("no loop compiled:\n%s", g.Dump())
	}
	var hasLoop bool
	for _, n := range g.Reachable() {
		if n.Op == ir.LoopHead {
			hasLoop = true
		}
	}
	if !hasLoop {
		t.Error("no loop head")
	}
}

// TestNestedLoopsCompileIndependently: each nesting level gets its own
// head and its own iterative analysis.
func TestNestedLoopsCompileIndependently(t *testing.T) {
	w := buildWorld(t, `
	go = ( | s <- 0 |
		0 upTo: 3 Do: [ :i |
			0 upTo: 3 Do: [ :j | s: (s + (i * j)) % 1000 ] ].
		s ).`)
	g, st := compileLobby(t, w, NewSELF, "go")
	heads := 0
	for _, n := range g.Reachable() {
		if n.Op == ir.LoopHead {
			heads++
		}
	}
	if heads != 2 {
		t.Errorf("loop heads = %d, want 2\n%s", heads, g.Dump())
	}
	if st.LoopIterations < 4 {
		t.Errorf("iterations = %d: nested loops should each iterate", st.LoopIterations)
	}
}

// TestBoolPredictionShape: ifTrue: on a data-slot boolean tests true
// then false, with a dynamic fallback out of line.
func TestBoolPredictionShape(t *testing.T) {
	w := buildWorld(t, `
	holder = (| parent* = lobby. flag <- nil |).
	go: h = ( (h flag) ifTrue: [ 1 ] False: [ 2 ] ).`)
	g, _ := compileLobby(t, w, NewSELF, "go:")
	var trueTest, falseTest, fallback bool
	for _, n := range g.Reachable() {
		if n.Op == ir.TypeTest {
			switch n.TestMap.Name {
			case "true":
				trueTest = true
			case "false":
				falseTest = true
			}
		}
		if n.Op == ir.Send && n.Sel == "ifTrue:False:" && n.Uncommon {
			fallback = true
		}
	}
	if !trueTest || !falseTest || !fallback {
		t.Errorf("bool prediction shape wrong (true=%v false=%v fallback=%v)\n%s",
			trueTest, falseTest, fallback, g.Dump())
	}
}

// TestPredictionDisabled: without type prediction an unknown + compiles
// to a plain dynamic send, no tests.
func TestPredictionDisabled(t *testing.T) {
	w := buildWorld(t, `bump: x = ( x + 1 ).`)
	cfg := NewSELF
	cfg.TypePrediction = false
	g, _ := compileLobby(t, w, cfg, "bump:")
	s := g.ComputeStats()
	if s.TypeTests != 0 {
		t.Errorf("type tests = %d with prediction off", s.TypeTests)
	}
	if s.Sends == 0 {
		t.Error("expected a dynamic send")
	}
}

// TestAnnotateTypes: the flag attaches operand types to dumps.
func TestAnnotateTypes(t *testing.T) {
	w := buildWorld(t, `bump: x = ( x + 1 ).`)
	cfg := NewSELF
	cfg.AnnotateTypes = true
	g, _ := compileLobby(t, w, cfg, "bump:")
	d := g.Dump()
	if !strings.Contains(d, ":?") && !strings.Contains(d, ":int") {
		t.Errorf("dump lacks type annotations:\n%s", d)
	}
}

// TestBlockArityMismatch is a compile-time error: invoking a one-arg
// block with zero arguments.
func TestBlockArityMismatch(t *testing.T) {
	w := buildWorld(t, `go = ( | blk | blk: [ :x | x ]. blk value ).`)
	r := obj.Lookup(w.Lobby.Map, "go")
	_, _, err := New(w, NewSELF).CompileMethod(r.Slot.Meth, w.Lobby.Map)
	if err == nil || !strings.Contains(err.Error(), "block takes") {
		t.Errorf("expected block arity error, got %v", err)
	}
}

// TestStaticIdealLoopShape: the C stand-in compiles a counted loop to
// compare + add + branch, nothing else costly.
func TestStaticIdealLoopShape(t *testing.T) {
	w := buildWorld(t, `go = ( | s <- 0 | 1 to: 100 Do: [ :i | s: s + i ]. s ).`)
	g, _ := compileLobby(t, w, StaticIdealC, "go")
	for _, n := range g.Reachable() {
		switch n.Op {
		case ir.Send, ir.Call, ir.TypeTest, ir.PrimOp, ir.MkBlk:
			t.Errorf("static ideal emitted %v\n%s", n.Op, g.Dump())
		case ir.Arith:
			if n.Checked {
				t.Errorf("static ideal kept a checked op\n%s", g.Dump())
			}
		}
	}
}

// TestUncommonNeverSplit: flows downstream of failures are merged, not
// multiplied — count primitiveFailed sends; each failing op contributes
// one, not a copy per upstream path.
func TestUncommonNeverSplit(t *testing.T) {
	w := buildWorld(t, `
	go: a With: b = ( | x |
		(a < b) ifTrue: [ x: a ] False: [ x: b ].
		x + a + b ).`)
	g, _ := compileLobby(t, w, NewSELF, "go:With:")
	fails := 0
	for _, n := range g.Reachable() {
		if n.Op == ir.Send && n.Sel == "primitiveFailed:" {
			fails++
		}
	}
	// Each arithmetic op contributes one failure send per live common
	// flow (<= MaxFlows) plus the uncommon path's own: linear, around a
	// dozen here. What must NOT happen is exponential copying (hundreds).
	if fails > 25 {
		t.Errorf("%d failure sends: uncommon paths look split\n%s", fails, g.Dump())
	}
}

// TestOldSELFLocalVarsUnknown (§5): under the original compiler a local
// keeps no type knowledge across statements — an assigned-then-used
// local needs a type test even straight-line.
func TestOldSELFLocalVarsUnknown(t *testing.T) {
	w := buildWorld(t, `
	go = ( | x |
		x: 3.
		x + 1 ).`)
	gOld, _ := compileLobby(t, w, OldSELF89, "go")
	gNew, _ := compileLobby(t, w, NewSELF, "go")
	oldTests := gOld.ComputeStats().TypeTests
	newTests := gNew.ComputeStats().TypeTests
	if oldTests == 0 {
		t.Errorf("old compiler should re-test the assigned local\n%s", gOld.Dump())
	}
	if newTests != 0 {
		t.Errorf("new compiler should know x is 3\n%s", gNew.Dump())
	}
}

// TestConstantConditionFoldsBranch: a statically-true condition
// eliminates the other arm entirely.
func TestConstantConditionFoldsBranch(t *testing.T) {
	w := buildWorld(t, `go = ( (3 < 4) ifTrue: [ 111 ] False: [ 222 ] ).`)
	g, _ := compileLobby(t, w, NewSELF, "go")
	for _, n := range g.Reachable() {
		if n.Op == ir.Const && n.Val.K() == 1 /* KInt */ && n.Val.I() == 222 {
			t.Errorf("dead arm not folded:\n%s", g.Dump())
		}
		if n.Op == ir.CmpBr {
			t.Errorf("constant comparison not folded:\n%s", g.Dump())
		}
	}
}

// TestEmptyMethodReturnsSelf.
func TestEmptyMethodReturnsSelf(t *testing.T) {
	w := buildWorld(t, `noop = (  ).`)
	g, _ := compileLobby(t, w, NewSELF, "noop")
	var ret *ir.Node
	for _, n := range g.Reachable() {
		if n.Op == ir.Return {
			ret = n
		}
	}
	if ret == nil || ret.A != 0 {
		t.Errorf("empty method should return self (r0):\n%s", g.Dump())
	}
}
