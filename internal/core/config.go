// Package core implements the paper's contribution: the intermediate
// compiler phase that builds a control flow graph from source while
// simultaneously performing type analysis, message and primitive
// inlining, type prediction, extended message splitting (§4), and
// iterative type analysis with multi-version loops (§5).
//
// A Config selects which generation of compiler to emulate, so the same
// pipeline reproduces the paper's five measured systems.
package core

import (
	"fmt"
	"time"
)

// Strategy selects how the system removes type tests: the paper's
// eager iterative analysis + extended splitting, lazy basic-block
// versioning (Chevalier-Boisvert & Feeley) with typed object shapes,
// or both at once. It is an axis orthogonal to tiers: any tier of any
// preset can run under any strategy.
type Strategy uint8

const (
	// StrategySplit is the paper's system as measured: all
	// specialization happens eagerly at compile time. The zero value,
	// so every existing preset and saved config is unchanged.
	StrategySplit Strategy = iota

	// StrategyBBV turns the eager analysis off and relies on lazy
	// basic-block versioning at run time: code compiles as an
	// unspecialized stub and blocks specialize per entry type context
	// on first execution (internal/bbv).
	StrategyBBV

	// StrategyBoth layers BBV on top of the full eager repertoire:
	// splitting removes what analysis proves, versioning removes what
	// only run-time contexts prove (shape facts, cross-merge facts the
	// split budget dropped).
	StrategyBoth
)

func (s Strategy) String() string {
	switch s {
	case StrategySplit:
		return "split"
	case StrategyBBV:
		return "bbv"
	case StrategyBoth:
		return "both"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy maps a -strategy flag value to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "split", "":
		return StrategySplit, nil
	case "bbv":
		return StrategyBBV, nil
	case "both":
		return StrategyBoth, nil
	}
	return StrategySplit, fmt.Errorf("unknown strategy %q (want split, bbv or both)", name)
}

// Config selects the optimization repertoire. The presets below
// correspond to the systems measured in §6 of the paper.
type Config struct {
	Name string

	// Customization compiles one machine method per receiver map so
	// the receiver's type is known at compile time (§2).
	Customization bool

	// TypeAnalysis maintains the variable→type mapping of §3. When
	// off, local variables are always of unknown type, as in the
	// original SELF compiler.
	TypeAnalysis bool

	// RangeAnalysis enables integer subrange analysis (§3.2.1/§3.2.3):
	// folding comparisons and removing overflow checks.
	RangeAnalysis bool

	// TypePrediction inserts run-time type tests guessing the receiver
	// of well-known selectors (§2).
	TypePrediction bool

	// InlineMethods inlines user-defined methods once the receiver map
	// is known.
	InlineMethods bool

	// InlinePrimitives expands robust primitives into their type tests,
	// checks and raw operation (§3.2.3); when off, primitives run as
	// out-of-line calls with every check.
	InlinePrimitives bool

	// LocalSplitting splits messages immediately following a merge
	// (the '89 compiler). ExtendedSplitting splits across arbitrary
	// distances, bounded by SplitNodeThreshold copied nodes (§4).
	LocalSplitting     bool
	ExtendedSplitting  bool
	SplitNodeThreshold int

	// MaxFlows bounds how many split paths the compiler keeps alive at
	// once (splitting is only attempted along common-case branches).
	MaxFlows int

	// IterativeLoops enables iterative type analysis for loops (§5.1);
	// when off, loop variables are pessimistically unknown.
	IterativeLoops bool

	// MultiVersionLoops lets loop heads and tails split, producing a
	// common-case loop version free of type tests plus a general
	// version (§5.2). The paper's measured "new SELF" had this broken
	// and disabled; our NewSELF preset matches that, and
	// NewSELFMultiLoop enables it for the ablation.
	MultiVersionLoops bool

	// MaxLoopIterations bounds the fix-point iteration before falling
	// back to pessimistic bindings.
	MaxLoopIterations int

	// InlineDepth and InlineBudget bound method inlining (depth of the
	// inline stack; AST node count of the candidate).
	InlineDepth  int
	InlineBudget int

	// StaticIdeal is the "optimized C" stand-in: all receiver types
	// assumed correct without tests, all overflow/bounds checks
	// removed, all remaining dispatch charged as direct calls. §5.3:
	// "a compiler for a statically-typed, non-object-oriented language
	// could do no better."
	StaticIdeal bool

	// CallSiteICMissHandlers models the §6.1 proposal: call-site
	// specific inline-cache miss handlers that nearly eliminate the
	// polymorphic-send bottleneck seen in richards. Used by the
	// ablation table only; it changes the cost model, not the code.
	CallSiteICMissHandlers bool

	// PolymorphicInlineCaches upgrades send sites to PICs (what the
	// §6.1 proposal became in the follow-up SELF work): each site
	// caches several receiver maps, so polymorphic sites like richards'
	// runPacket: stop taking the full-lookup miss path. A PIC hit costs
	// slightly more than a monomorphic hit (the dispatch sequence
	// compares against each cached map).
	PolymorphicInlineCaches bool

	// SendOverheadExtra adds cycles to every dynamic send, modelling
	// the old SELF-90 system's "more elaborate semantics for message
	// lookup and blocks" and reduced tuning relative to SELF-89 (§6).
	SendOverheadExtra int

	// ComparisonFacts enables the §7 future-work extension: the
	// compiler records the results of comparisons against non-constant
	// integers (and reuses loaded vector lengths), eliminating repeated
	// array bounds checks whose limit is a run-time length — the
	// optimization the paper credits to the TS Typed Smalltalk compiler
	// and leaves as future work.
	ComparisonFacts bool

	// AnnotateTypes attaches the incoming operand types to interesting
	// nodes (sends, tests, arithmetic, loop heads) so CFG dumps read
	// like the paper's figures. Costs compile time; used by selfc.
	AnnotateTypes bool

	// NoSuperinstructions disables the VM's superinstruction fusion
	// pass (internal/vm/fuse.go), a host-speed interpreter-dispatch
	// optimization with no effect on any modelled quantity. The zero
	// value — fusion on — is right for every preset; the flag exists so
	// differential tests can run the unfused interpreter as a bit-exact
	// oracle against the fused one.
	NoSuperinstructions bool

	// PerInstrOverhead adds cycles to every executed instruction,
	// modelling the code quality of ParcPlace's dynamic translation:
	// a stack machine without global register allocation keeps
	// temporaries in memory, roughly doubling the cost of straight-line
	// code relative to the SELF compilers' registerized output.
	PerInstrOverhead int

	// NativeBackend lowers assembled code into closure-threaded form
	// (internal/vm/backend_native.go): one directly-called Go closure
	// per instruction, branches as array indices. A host-speed backend
	// selection with no effect on any modelled quantity — the native
	// driver charges the identical per-instruction Cost/Instrs
	// accounting, polls the budget at the same stride, and raises the
	// same faults as the switch interpreter (pinned by the native
	// differential oracle). Off in every preset; TierNative turns it
	// on (see tier.go).
	NativeBackend bool

	// Strategy selects the specialization strategy (see the Strategy
	// type): eager splitting (the zero value — the paper's system),
	// lazy basic-block versioning, or both. ApplyStrategy derives the
	// per-strategy knob settings; the degraded tier forces split, the
	// paper's well-exercised fallback.
	Strategy Strategy

	// MaxVers bounds the specialized versions BBV materializes per
	// basic block before the generic fallback takes the tail
	// (0 = the bbv package default). Ignored under StrategySplit.
	MaxVers int
}

// ApplyStrategy derives the knob settings a strategy implies. Under
// StrategyBBV the eager specialization machinery is switched off —
// type and range analysis, splitting in both forms, iterative and
// multi-version loops, comparison facts — leaving the '89-style
// repertoire (customization, prediction, method and primitive
// inlining) that BBV's run-time versioning then specializes; under
// StrategyBoth the full eager repertoire stays on and versioning
// removes what survives it. Both BBV strategies force the plain
// unfused switch interpreter: versions anchor on per-instruction pcs,
// so superinstruction fusion and the native backend are disabled (both
// are host-speed engine selections with no modelled effect).
func ApplyStrategy(c Config) Config {
	switch c.Strategy {
	case StrategyBBV:
		c.TypeAnalysis = false
		c.RangeAnalysis = false
		c.LocalSplitting = false
		c.ExtendedSplitting = false
		c.IterativeLoops = false
		c.MultiVersionLoops = false
		c.ComparisonFacts = false
		c.NoSuperinstructions = true
		c.NativeBackend = false
	case StrategyBoth:
		c.NoSuperinstructions = true
		c.NativeBackend = false
	}
	return c
}

// The five measured systems, plus the multi-version-loop ablation.
var (
	// NewSELF is the paper's new compiler exactly as measured in §6:
	// everything on except multi-version loops (broken at the time).
	NewSELF = Config{
		Name:               "new SELF",
		Customization:      true,
		TypeAnalysis:       true,
		RangeAnalysis:      true,
		TypePrediction:     true,
		InlineMethods:      true,
		InlinePrimitives:   true,
		LocalSplitting:     true,
		ExtendedSplitting:  true,
		SplitNodeThreshold: 24,
		MaxFlows:           6,
		IterativeLoops:     true,
		MultiVersionLoops:  false,
		MaxLoopIterations:  6,
		InlineDepth:        10,
		InlineBudget:       220,
	}

	// NewSELFMultiLoop is NewSELF with multi-version loops repaired —
	// the configuration the paper expected to be even faster.
	NewSELFMultiLoop = withName(withMultiLoop(NewSELF), "new SELF (multi-version loops)")

	// NewSELFExtended adds everything the paper left as future work:
	// multi-version loops plus §7's comparison-fact propagation.
	NewSELFExtended = func() Config {
		c := withMultiLoop(NewSELF)
		c.Name = "new SELF (extended)"
		c.ComparisonFacts = true
		return c
	}()

	// OldSELF89 is the original compiler as tuned in early 1989:
	// customization, prediction, primitive and method inlining, local
	// splitting only, no type analysis of locals, no range analysis,
	// pessimistic loops.
	OldSELF89 = Config{
		Name:              "old SELF-89",
		Customization:     true,
		TypeAnalysis:      false,
		RangeAnalysis:     false,
		TypePrediction:    true,
		InlineMethods:     true,
		InlinePrimitives:  true,
		LocalSplitting:    true,
		ExtendedSplitting: false,
		MaxFlows:          4,
		IterativeLoops:    false,
		MaxLoopIterations: 1,
		InlineDepth:       8,
		InlineBudget:      180,
	}

	// OldSELF90 is the same compiler in the 1990 production system:
	// identical repertoire but slower sends ("more elaborate semantics
	// for message lookup and blocks, and ... not as highly tuned").
	OldSELF90 = func() Config {
		c := OldSELF89
		c.Name = "old SELF-90"
		c.SendOverheadExtra = 6
		return c
	}()

	// ST80 models ParcPlace Smalltalk-80 V2.4: dynamic compilation
	// with inline caches and special-selector fast paths, but no
	// customization, no type analysis, and no user-method inlining.
	ST80 = Config{
		Name:              "ST-80",
		Customization:     false,
		TypeAnalysis:      false,
		RangeAnalysis:     false,
		TypePrediction:    true, // special selectors: + - < = ifTrue: ...
		InlineMethods:     false,
		InlinePrimitives:  true,
		LocalSplitting:    false,
		ExtendedSplitting: false,
		MaxFlows:          2,
		IterativeLoops:    false,
		MaxLoopIterations: 1,
		InlineDepth:       1,
		InlineBudget:      0,
		PerInstrOverhead:  2,
	}

	// StaticIdealC is the optimized-C stand-in (see Config.StaticIdeal).
	StaticIdealC = Config{
		Name:               "optimized C",
		Customization:      true,
		TypeAnalysis:       true,
		RangeAnalysis:      true,
		TypePrediction:     true,
		InlineMethods:      true,
		InlinePrimitives:   true,
		LocalSplitting:     true,
		ExtendedSplitting:  true,
		SplitNodeThreshold: 24,
		MaxFlows:           6,
		IterativeLoops:     true,
		MaxLoopIterations:  6,
		InlineDepth:        10,
		InlineBudget:       220,
		StaticIdeal:        true,
	}
)

// Degraded is the fallback tier used when an optimizing compilation
// fails or panics (the tier-fallback shape of basic-block-versioning
// JITs). It is TierDegraded applied to c — see tier.go for the single
// table all tiers derive from. Customization is kept as-is: the cache
// key still carries the receiver map, and compiling a customized key
// without exploiting the map is sound, merely less specialized.
func Degraded(c Config) Config {
	return TierDegraded.Apply(c)
}

func withMultiLoop(c Config) Config {
	c.MultiVersionLoops = true
	return c
}

func withName(c Config, name string) Config {
	c.Name = name
	return c
}

// Stats records what one compilation did, for the compile-time and
// code-size tables and the ablation discussion.
type Stats struct {
	Duration       time.Duration
	LoopIterations int // loop-body recompilations performed (§5.1)
	LoopVersions   int // loop versions emitted (§5.2)
	Splits         int // times flows were kept apart past a merge point
	ForcedMerges   int // times the split budget forced a merge
	InlinedMethods int
	InlinedPrims   int
	FoldedPrims    int // constant-folded primitives
	RemovedOvfl    int // overflow checks removed by range analysis
	RemovedTests   int // type tests eliminated by analysis
	FeedbackTests  int // run-time type tests inserted from harvested PIC feedback
	Nodes          int // reachable IR nodes emitted

	// Passes is the per-pass breakdown recorded by Pipeline compiles
	// (nil when a bare Compiler was driven directly); see PassStat.
	Passes []PassStat
}
