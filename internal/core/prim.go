package core

import (
	"strings"

	"selfgo/internal/ast"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/types"
)

// debugBounds, when set by tests, traces bounds-check decisions.
var debugBounds func(f *flow, vec, idx ir2, haveLen bool, ln ir2, hit bool)

type ir2 = ir.Reg

// compilePrimCall compiles a robust primitive (§3.2.3): constant-fold
// when possible, otherwise inline the primitive's type tests, checks
// and raw operation, eliminating whatever the type and range analysis
// proves unnecessary.
func (cp *compilation) compilePrimCall(flows []*flow, n *ast.PrimCall, sc *scope) ([]*flow, ir.Reg) {
	base := n.Sel
	failIdx := -1
	if strings.HasSuffix(base, "IfFail:") {
		base = strings.TrimSuffix(base, "IfFail:")
		failIdx = len(n.Args) - 1
	}
	flows, rr := cp.compileExpr(flows, n.Recv, sc)
	var args []ir.Reg
	for _, a := range n.Args {
		var ar ir.Reg
		flows, ar = cp.compileExpr(flows, a, sc)
		args = append(args, ar)
	}
	failReg := ir.NoReg
	if failIdx >= 0 {
		failReg = args[failIdx]
		args = args[:failIdx]
	}
	if cp.err != nil || len(flows) == 0 {
		return flows, cp.g.NewReg()
	}
	if len(flows) > cp.cfg.MaxFlows+2 {
		flows = cp.mergePolicy(flows, rr)
	}
	if len(flows) == 1 {
		return cp.primOne(flows[0], base, rr, args, failReg, sc)
	}
	dst := cp.g.NewReg()
	var out []*flow
	for _, f := range flows {
		fs, res := cp.primOne(f, base, rr, args, failReg, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

func (cp *compilation) primOne(f *flow, base string, rr ir.Reg, args []ir.Reg, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	if !cp.cfg.InlinePrimitives {
		return cp.emitPrimOp(f, base, rr, args, failReg)
	}
	switch base {
	case "_IntAdd:":
		return cp.intArith(f, ir.Add, rr, args, failReg, sc)
	case "_IntSub:":
		return cp.intArith(f, ir.Sub, rr, args, failReg, sc)
	case "_IntMul:":
		return cp.intArith(f, ir.Mul, rr, args, failReg, sc)
	case "_IntDiv:":
		return cp.intArith(f, ir.Div, rr, args, failReg, sc)
	case "_IntMod:":
		return cp.intArith(f, ir.Mod, rr, args, failReg, sc)
	case "_IntAnd:":
		return cp.intArith(f, ir.BAnd, rr, args, failReg, sc)
	case "_IntOr:":
		return cp.intArith(f, ir.BOr, rr, args, failReg, sc)
	case "_IntXor:":
		return cp.intArith(f, ir.BXor, rr, args, failReg, sc)
	case "_IntLT:":
		return cp.intCmp(f, ir.LT, rr, args, failReg, sc)
	case "_IntLE:":
		return cp.intCmp(f, ir.LE, rr, args, failReg, sc)
	case "_IntGT:":
		return cp.intCmp(f, ir.GT, rr, args, failReg, sc)
	case "_IntGE:":
		return cp.intCmp(f, ir.GE, rr, args, failReg, sc)
	case "_IntEQ:":
		return cp.intCmp(f, ir.EQ, rr, args, failReg, sc)
	case "_IntNE:":
		return cp.intCmp(f, ir.NE, rr, args, failReg, sc)
	case "_Eq:":
		return cp.identityEq(f, rr, args)
	case "_At:":
		return cp.vecAt(f, rr, args, failReg, sc)
	case "_At:Put:":
		return cp.vecAtPut(f, rr, args, failReg, sc)
	case "_Size":
		return cp.vecSize(f, rr, failReg, sc)
	case "_NewVec:", "_NewVec:Fill:":
		return cp.newVec(f, rr, args, failReg, sc)
	case "_Clone":
		return cp.cloneObj(f, rr)
	case "_Error", "_Error:", "_Print", "_PrintLine":
		if strings.HasPrefix(base, "_Error") {
			n := cp.g.NewNode(ir.Fail)
			n.Sel = base
			n.A = rr // the receiver is the error message
			if len(args) > 0 {
				n.A = args[0]
			}
			n.Uncommon = true
			cp.emit(f, n)
			return nil, ir.NoReg
		}
		return cp.emitPrimOp(f, base, rr, args, ir.NoReg)
	}
	return cp.emitPrimOp(f, base, rr, args, failReg)
}

// emitPrimOp emits an out-of-line primitive call carrying every check.
func (cp *compilation) emitPrimOp(f *flow, base string, rr ir.Reg, args []ir.Reg, failReg ir.Reg) ([]*flow, ir.Reg) {
	cp.materialize(f, rr)
	for _, a := range args {
		cp.materialize(f, a)
	}
	if failReg != ir.NoReg {
		cp.materialize(f, failReg)
	}
	dst := cp.g.NewReg()
	n := cp.g.NewNode(ir.PrimOp)
	n.Dst = dst
	n.Sel = base
	n.Args = append([]ir.Reg{rr}, args...)
	n.FailBlk = failReg
	cp.emit(f, n)
	cp.clobberVolatile(f)
	f.env.set(dst, types.Unknown{})
	return []*flow{f}, dst
}

// ensureInt guarantees reg holds a small integer, emitting a type test
// unless the analysis already knows (pass may be nil when it can never
// be an integer). The failure flow, if any, is appended to fails.
func (cp *compilation) ensureInt(f *flow, reg ir.Reg, fails *[]*flow) *flow {
	pass, fail := cp.emitTypeTest(f, reg, cp.intMap())
	if fail != nil {
		*fails = append(*fails, fail)
	}
	return pass
}

// rangeFor returns the range the analysis may use for an
// already-int-ensured register: the true range under range analysis,
// the full class range otherwise.
func (cp *compilation) rangeFor(f *flow, reg ir.Reg) types.Range {
	if cp.cfg.RangeAnalysis {
		if r, ok := types.RangeOf(f.env.get(reg)); ok {
			return r
		}
	}
	return types.FullRange()
}

// intArith inlines an integer arithmetic primitive: receiver and
// argument type tests, the raw instruction, and an overflow (or
// divide-by-zero) check — each dropped when provably unnecessary.
func (cp *compilation) intArith(f *flow, op ir.ArithKind, rr ir.Reg, args []ir.Reg, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	if len(args) != 1 {
		cp.errorf("integer primitive expects 1 argument")
		return []*flow{f}, ir.NoReg
	}
	ar := args[0]
	dst := cp.g.NewReg()
	var fails []*flow
	var out []*flow

	ok := cp.ensureInt(f, rr, &fails)
	if ok != nil {
		ok = cp.ensureInt(ok, ar, &fails)
	}
	if ok != nil {
		out = cp.arithCore(ok, op, dst, rr, ar, &fails)
	}
	// Compile the failure paths and unify.
	for _, ff := range fails {
		fs, res := cp.primFailure(ff, op.String(), failReg, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

// arithCore emits (or folds) the raw operation with its checks.
func (cp *compilation) arithCore(f *flow, op ir.ArithKind, dst, rr, ar ir.Reg, fails *[]*flow) []*flow {
	// Constant folding (§3.2.3) — available to every compiler
	// generation, independent of range analysis.
	if ca, okA := types.Constant(f.env.get(rr)); okA {
		if cb, okB := types.Constant(f.env.get(ar)); okB {
			divZero := (op == ir.Div || op == ir.Mod) && cb.I() == 0
			if !divZero {
				v := foldArith(op, ca.I(), cb.I())
				if v >= obj.MinSmallInt && v <= obj.MaxSmallInt {
					n := cp.g.NewNode(ir.Const)
					n.Dst = dst
					n.Val = obj.Int(v)
					cp.emit(f, n)
					f.env.set(dst, types.NewVal(obj.Int(v), cp.intMap()))
					cp.stats.FoldedPrims++
					return []*flow{f}
				}
			}
		}
	}
	ra := cp.rangeFor(f, rr)
	rb := cp.rangeFor(f, ar)
	var z types.Range
	var mayFail bool
	switch op {
	case ir.Add:
		z, mayFail = types.AddRanges(ra, rb)
	case ir.Sub:
		z, mayFail = types.SubRanges(ra, rb)
	case ir.Mul:
		z, mayFail = types.MulRanges(ra, rb)
	case ir.Div:
		z, mayFail = types.DivRanges(ra, rb)
	case ir.Mod:
		z, mayFail = types.ModRanges(ra, rb)
	case ir.BAnd, ir.BOr, ir.BXor:
		z, mayFail = types.BitRanges(ra, rb)
	}
	if !cp.cfg.RangeAnalysis && !cp.cfg.StaticIdeal {
		z = types.FullRange()
		mayFail = true
	}
	if cp.cfg.StaticIdeal && mayFail {
		mayFail = false
		cp.stats.RemovedOvfl++
	}

	n := cp.g.NewNode(ir.Arith)
	n.Dst = dst
	n.A = rr
	n.B = ar
	n.AOp = op
	n.Checked = mayFail
	cp.emit(f, n)
	if !mayFail && cp.cfg.RangeAnalysis && !cp.cfg.StaticIdeal {
		cp.stats.RemovedOvfl++
		n.Note = "overflow check removed by range analysis"
	}
	okFlow := f
	if mayFail {
		okFlow = &flow{from: n, slot: 0, env: f.env, uncommon: f.uncommon, copied: f.copied}
		okFlow.copyFacts(f) // the op writes only its fresh destination
		failFlow := &flow{from: n, slot: 1, env: f.env.clone(), uncommon: true, copied: f.copied}
		failFlow.env.set(dst, types.Unknown{})
		*fails = append(*fails, failFlow)
	}
	okFlow.env.set(dst, z)
	return []*flow{okFlow}
}

func foldArith(op ir.ArithKind, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		return a / b
	case ir.Mod:
		return a % b
	case ir.BAnd:
		return a & b
	case ir.BOr:
		return a | b
	case ir.BXor:
		return a ^ b
	}
	return 0
}

// intCmp inlines an integer comparison primitive: folded outright when
// the subranges do not overlap, otherwise a compare-and-branch whose
// branches refine the argument ranges (§3.2.1).
func (cp *compilation) intCmp(f *flow, op ir.CmpKind, rr ir.Reg, args []ir.Reg, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	if len(args) != 1 {
		cp.errorf("integer comparison expects 1 argument")
		return []*flow{f}, ir.NoReg
	}
	ar := args[0]
	dst := cp.g.NewReg()
	var fails []*flow
	var out []*flow

	ok := cp.ensureInt(f, rr, &fails)
	if ok != nil {
		ok = cp.ensureInt(ok, ar, &fails)
	}
	if ok != nil {
		out = cp.cmpCore(ok, op, dst, rr, ar)
	}
	for _, ff := range fails {
		fs, res := cp.primFailure(ff, op.String(), failReg, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

func (cp *compilation) cmpCore(f *flow, op ir.CmpKind, dst, rr, ar ir.Reg) []*flow {
	ra := cp.rangeFor(f, rr)
	rb := cp.rangeFor(f, ar)
	// Folding on value types is available to every compiler; folding on
	// overlapping-free subranges needs range analysis (§3.2.3).
	bothConst := false
	if _, ok := types.Constant(f.env.get(rr)); ok {
		_, bothConst = types.Constant(f.env.get(ar))
	}
	if cp.cfg.RangeAnalysis || bothConst {
		if bothConst && !cp.cfg.RangeAnalysis {
			ca, _ := types.Constant(f.env.get(rr))
			cb, _ := types.Constant(f.env.get(ar))
			ra = types.Range{Lo: ca.I(), Hi: ca.I()}
			rb = types.Range{Lo: cb.I(), Hi: cb.I()}
		}
		if tri := foldCmp(op, ra, rb); tri != types.MaybeTrue {
			v := cp.w.Bool(tri == types.AlwaysTrue)
			n := cp.g.NewNode(ir.Const)
			n.Dst = dst
			n.Val = v
			cp.emit(f, n)
			f.env.set(dst, types.NewVal(v, cp.w.MapOf(v)))
			cp.stats.FoldedPrims++
			return []*flow{f}
		}
	}
	n := cp.g.NewNode(ir.CmpBr)
	n.A = rr
	n.B = ar
	n.COp = op
	cp.emit(f, n)

	tf := &flow{from: n, slot: 0, env: f.env.clone(), uncommon: f.uncommon, copied: f.copied}
	ff := &flow{from: n, slot: 1, env: f.env, uncommon: f.uncommon, copied: f.copied}
	tf.copyFacts(f)
	ff.copyFacts(f)
	if cp.cfg.ComparisonFacts {
		// §7 extension: remember what each branch proved.
		switch op {
		case ir.LT:
			tf.addFact(rr, ar)
		case ir.GT:
			tf.addFact(ar, rr)
		case ir.LE:
			ff.addFact(ar, rr)
		case ir.GE:
			ff.addFact(rr, ar)
		}
	}
	cst := func(fl *flow, b bool) {
		c := cp.g.NewNode(ir.Const)
		c.Dst = dst
		c.Val = cp.w.Bool(b)
		cp.emit(fl, c)
		fl.env.set(dst, types.NewVal(cp.w.Bool(b), cp.w.MapOf(cp.w.Bool(b))))
	}
	cst(tf, true)
	cst(ff, false)
	if cp.cfg.RangeAnalysis {
		tx, ty, fx, fy := refineCmp(op, ra, rb)
		setIfInt := func(fl *flow, reg ir.Reg, r types.Range) {
			if !r.Empty() {
				fl.env.set(reg, r)
			}
		}
		setIfInt(tf, rr, tx)
		setIfInt(tf, ar, ty)
		setIfInt(ff, rr, fx)
		setIfInt(ff, ar, fy)
	}
	return []*flow{tf, ff}
}

func foldCmp(op ir.CmpKind, a, b types.Range) types.Tri {
	switch op {
	case ir.LT:
		return types.CmpLT(a, b)
	case ir.LE:
		return types.CmpLE(a, b)
	case ir.GT:
		return types.CmpLT(b, a)
	case ir.GE:
		return types.CmpLE(b, a)
	case ir.EQ:
		return types.CmpEQ(a, b)
	case ir.NE:
		switch types.CmpEQ(a, b) {
		case types.AlwaysTrue:
			return types.AlwaysFalse
		case types.AlwaysFalse:
			return types.AlwaysTrue
		}
	}
	return types.MaybeTrue
}

func refineCmp(op ir.CmpKind, a, b types.Range) (tx, ty, fx, fy types.Range) {
	switch op {
	case ir.LT:
		return types.RefineLT(a, b)
	case ir.LE:
		return types.RefineLE(a, b)
	case ir.GT:
		ty, tx, fy, fx = types.RefineLT(b, a)
		return
	case ir.GE:
		ty, tx, fy, fx = types.RefineLE(b, a)
		return
	case ir.EQ:
		tx, ty = types.RefineEQ(a, b)
		fx, fy = a, b
		return
	case ir.NE:
		fx, fy = types.RefineEQ(a, b)
		tx, ty = a, b
		return
	}
	return a, b, a, b
}

// identityEq inlines the identity primitive: folds on constants or
// provably disjoint types, otherwise compares values directly.
func (cp *compilation) identityEq(f *flow, rr ir.Reg, args []ir.Reg) ([]*flow, ir.Reg) {
	if len(args) != 1 {
		cp.errorf("_Eq: expects 1 argument")
		return []*flow{f}, ir.NoReg
	}
	ar := args[0]
	dst := cp.g.NewReg()
	ta, tb := f.env.get(rr), f.env.get(ar)
	emitBool := func(b bool) ([]*flow, ir.Reg) {
		v := cp.w.Bool(b)
		n := cp.g.NewNode(ir.Const)
		n.Dst = dst
		n.Val = v
		cp.emit(f, n)
		f.env.set(dst, types.NewVal(v, cp.w.MapOf(v)))
		cp.stats.FoldedPrims++
		return []*flow{f}, dst
	}
	if va, ok := types.Constant(ta); ok {
		if vb, ok2 := types.Constant(tb); ok2 {
			return emitBool(va.Eq(vb))
		}
	}
	if types.Disjoint(ta, tb, cp.intMap()) {
		return emitBool(false)
	}
	cp.materialize(f, rr)
	cp.materialize(f, ar)
	n := cp.g.NewNode(ir.CmpBr)
	n.A = rr
	n.B = ar
	n.COp = ir.EQ
	n.Note = "identity"
	cp.emit(f, n)
	tf := &flow{from: n, slot: 0, env: f.env.clone(), uncommon: f.uncommon, copied: f.copied}
	ff := &flow{from: n, slot: 1, env: f.env, uncommon: f.uncommon, copied: f.copied}
	tf.copyFacts(f)
	ff.copyFacts(f)
	for _, p := range []struct {
		fl *flow
		b  bool
	}{{tf, true}, {ff, false}} {
		c := cp.g.NewNode(ir.Const)
		c.Dst = dst
		c.Val = cp.w.Bool(p.b)
		cp.emit(p.fl, c)
		p.fl.env.set(dst, types.NewVal(cp.w.Bool(p.b), cp.w.MapOf(cp.w.Bool(p.b))))
	}
	// The true branch learns the operands are identical: propagate a
	// constant when one side is known.
	if va, ok := types.Constant(ta); ok {
		tf.env.set(ar, types.NewVal(va, cp.w.MapOf(va)))
	} else if vb, ok := types.Constant(tb); ok {
		tf.env.set(rr, types.NewVal(vb, cp.w.MapOf(vb)))
	}
	return []*flow{tf, ff}, dst
}

// ensureVec guarantees reg holds a vector.
func (cp *compilation) ensureVec(f *flow, reg ir.Reg, fails *[]*flow) *flow {
	pass, fail := cp.emitTypeTest(f, reg, cp.w.VecMap)
	if fail != nil {
		*fails = append(*fails, fail)
	}
	return pass
}

// boundsCheck emits "0 <= idx < len" unless the analysis discharges
// it. The paper's range analysis can remove the lower bound when the
// index range is provably non-negative, but (as §7 concedes) usually
// not the upper bound, whose limit is a run-time vector length.
func (cp *compilation) boundsCheck(f *flow, vec, idx ir.Reg, fails *[]*flow) *flow {
	if cp.cfg.StaticIdeal {
		return f
	}
	ri := cp.rangeFor(f, idx)
	if !(cp.cfg.RangeAnalysis && ri.Lo >= 0) {
		zero := cp.g.NewReg()
		zn := cp.g.NewNode(ir.Const)
		zn.Dst = zero
		zn.Val = obj.Int(0)
		cp.emit(f, zn)
		n := cp.g.NewNode(ir.CmpBr)
		n.A = idx
		n.B = zero
		n.COp = ir.GE
		n.Note = "bounds(lower)"
		cp.emit(f, n)
		pass := &flow{from: n, slot: 0, env: f.env.clone(), uncommon: f.uncommon, copied: f.copied}
		pass.copyFacts(f)
		fail := &flow{from: n, slot: 1, env: f.env, uncommon: true, copied: f.copied}
		*fails = append(*fails, fail)
		f = pass
		if cp.cfg.RangeAnalysis {
			f.env.set(idx, types.Range{Lo: max(ri.Lo, 0), Hi: ri.Hi})
		}
	} else if cp.cfg.RangeAnalysis {
		cp.stats.RemovedTests++
	}
	// §7 extension: reuse a length already loaded for this vector, and
	// skip the upper check when this very comparison already succeeded
	// on this path.
	var ln ir.Reg
	haveLen := false
	if cp.cfg.ComparisonFacts {
		if cached, ok := f.lens[f.canon(vec)]; ok {
			ln = cached
			haveLen = true
		}
	}
	if debugBounds != nil {
		debugBounds(f, vec, idx, haveLen, ln, haveLen && f.hasFact(idx, ln))
	}
	if !haveLen {
		ln = cp.g.NewReg()
		vl := cp.g.NewNode(ir.VecLen)
		vl.Dst = ln
		vl.A = vec
		cp.emit(f, vl)
		f.env.set(ln, types.Range{Lo: 0, Hi: obj.MaxSmallInt})
		if cp.cfg.ComparisonFacts {
			if f.lens == nil {
				f.lens = map[ir.Reg]ir.Reg{}
			}
			f.lens[f.canon(vec)] = ln
		}
	}
	if cp.cfg.ComparisonFacts && f.hasFact(idx, ln) {
		cp.stats.RemovedTests++
		return f
	}
	n := cp.g.NewNode(ir.CmpBr)
	n.A = idx
	n.B = ln
	n.COp = ir.LT
	n.Note = "bounds(upper)"
	cp.emit(f, n)
	pass := &flow{from: n, slot: 0, env: f.env.clone(), uncommon: f.uncommon, copied: f.copied}
	pass.copyFacts(f)
	if cp.cfg.ComparisonFacts {
		pass.addFact(idx, ln)
	}
	fail := &flow{from: n, slot: 1, env: f.env, uncommon: true, copied: f.copied}
	*fails = append(*fails, fail)
	return pass
}

func (cp *compilation) vecAt(f *flow, rr ir.Reg, args []ir.Reg, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	if len(args) != 1 {
		cp.errorf("_At: expects 1 argument")
		return []*flow{f}, ir.NoReg
	}
	idx := args[0]
	dst := cp.g.NewReg()
	var fails []*flow
	var out []*flow
	ok := cp.ensureVec(f, rr, &fails)
	if ok != nil {
		ok = cp.ensureInt(ok, idx, &fails)
	}
	if ok != nil {
		ok = cp.boundsCheck(ok, rr, idx, &fails)
	}
	if ok != nil {
		n := cp.g.NewNode(ir.LoadE)
		n.Dst = dst
		n.A = rr
		n.B = idx
		cp.emit(ok, n)
		ok.env.set(dst, types.Unknown{})
		out = append(out, ok)
	}
	for _, ff := range fails {
		fs, res := cp.primFailure(ff, "_At:", failReg, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

func (cp *compilation) vecAtPut(f *flow, rr ir.Reg, args []ir.Reg, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	if len(args) != 2 {
		cp.errorf("_At:Put: expects 2 arguments")
		return []*flow{f}, ir.NoReg
	}
	idx, val := args[0], args[1]
	var fails []*flow
	var out []*flow
	ok := cp.ensureVec(f, rr, &fails)
	if ok != nil {
		ok = cp.ensureInt(ok, idx, &fails)
	}
	if ok != nil {
		ok = cp.boundsCheck(ok, rr, idx, &fails)
	}
	if ok != nil {
		cp.materialize(ok, val)
		n := cp.g.NewNode(ir.StoreE)
		n.A = rr
		n.B = idx
		n.C = val
		cp.emit(ok, n)
		out = append(out, ok)
	}
	dst := val
	for _, ff := range fails {
		fs, res := cp.primFailure(ff, "_At:Put:", failReg, sc)
		// Unify into the value register's role: allocate a fresh dst
		// only when failure paths exist.
		if dst == val && res != val {
			nd := cp.g.NewReg()
			out = cp.moveInto(out, nd, val)
			dst = nd
		}
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

func (cp *compilation) vecSize(f *flow, rr ir.Reg, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	dst := cp.g.NewReg()
	var fails []*flow
	var out []*flow
	ok := cp.ensureVec(f, rr, &fails)
	if ok != nil {
		n := cp.g.NewNode(ir.VecLen)
		n.Dst = dst
		n.A = rr
		cp.emit(ok, n)
		ok.env.set(dst, types.Range{Lo: 0, Hi: obj.MaxSmallInt})
		if cp.cfg.ComparisonFacts {
			// The §7 extension remembers this register holds rr's
			// length, so a later bounds check can match comparisons
			// against it (e.g. the loop condition "i < v size").
			if ok.lens == nil {
				ok.lens = map[ir.Reg]ir.Reg{}
			}
			ok.lens[ok.canon(rr)] = dst
		}
		out = append(out, ok)
	}
	for _, ff := range fails {
		fs, res := cp.primFailure(ff, "_Size", failReg, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

func (cp *compilation) newVec(f *flow, rr ir.Reg, args []ir.Reg, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	size := args[0]
	fill := ir.NoReg
	if len(args) > 1 {
		fill = args[1]
	}
	dst := cp.g.NewReg()
	var fails []*flow
	var out []*flow
	ok := cp.ensureInt(f, size, &fails)
	if ok != nil && !cp.cfg.StaticIdeal {
		rs := cp.rangeFor(ok, size)
		if !(cp.cfg.RangeAnalysis && rs.Lo >= 0) {
			zero := cp.g.NewReg()
			zn := cp.g.NewNode(ir.Const)
			zn.Dst = zero
			zn.Val = obj.Int(0)
			cp.emit(ok, zn)
			n := cp.g.NewNode(ir.CmpBr)
			n.A = size
			n.B = zero
			n.COp = ir.GE
			n.Note = "bounds(size)"
			cp.emit(ok, n)
			pass := &flow{from: n, slot: 0, env: ok.env.clone(), uncommon: ok.uncommon}
			pass.copyFacts(ok)
			fail := &flow{from: n, slot: 1, env: ok.env, uncommon: true}
			fails = append(fails, fail)
			ok = pass
		}
	}
	if ok != nil {
		if fill != ir.NoReg {
			cp.materialize(ok, fill)
		}
		n := cp.g.NewNode(ir.NewVec)
		n.Dst = dst
		n.A = size
		n.B = fill
		cp.emit(ok, n)
		ok.env.set(dst, types.NewClass(cp.w.VecMap, cp.intMap()))
		out = append(out, ok)
	}
	for _, ff := range fails {
		fs, res := cp.primFailure(ff, "_NewVec:", failReg, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

func (cp *compilation) cloneObj(f *flow, rr ir.Reg) ([]*flow, ir.Reg) {
	dst := cp.g.NewReg()
	if m := types.MapOf(f.env.get(rr), cp.intMap()); m != nil {
		n := cp.g.NewNode(ir.CloneOp)
		n.Dst = dst
		n.A = rr
		cp.emit(f, n)
		f.env.set(dst, types.NewClass(m, cp.intMap()))
		return []*flow{f}, dst
	}
	return cp.emitPrimOp(f, "_Clone", rr, nil, ir.NoReg)
}

// primFailure compiles the failure path of a robust primitive: the
// user's IfFail: block when supplied (inlined), else the default
// failure — a send to the standard error routine whose result, as in
// the paper's analysis, is of unknown type.
func (cp *compilation) primFailure(f *flow, what string, failReg ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	f.uncommon = true
	if failReg != ir.NoReg {
		if bt, ok := f.env.get(failReg).(types.Blk); ok {
			return cp.inlineBlock(f, bt, nil, "value")
		}
		// A runtime closure: invoke it dynamically.
		return cp.emitDynSend(f, failReg, "value", nil, false)
	}
	flows, str := cp.compileConst([]*flow{f}, obj.Str(what))
	return cp.emitDynSend(flows[0], sc.selfScope().selfReg, "primitiveFailed:", []ir.Reg{str}, false)
}
