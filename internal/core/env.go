package core

import (
	"fmt"
	"sort"
	"strings"

	"selfgo/internal/ir"
	"selfgo/internal/types"
)

// env is the variable→type mapping of §3: the compiler's knowledge at
// one point on one control-flow path, keyed by virtual register.
type env map[ir.Reg]types.Type

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// get returns the type bound to r; absent bindings are unknown.
func (e env) get(r ir.Reg) types.Type {
	if t, ok := e[r]; ok {
		return t
	}
	return types.Unknown{}
}

func (e env) set(r ir.Reg, t types.Type) {
	if r == ir.NoReg {
		return
	}
	e[r] = t
}

// equalOn reports whether two envs agree on every register in regs.
func (e env) equalOn(o env, regs []ir.Reg) bool {
	for _, r := range regs {
		if !types.Equal(e.get(r), o.get(r)) {
			return false
		}
	}
	return true
}

func (e env) String() string {
	keys := make([]int, 0, len(e))
	for k := range e {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("r%d:%s", k, e[ir.Reg(k)]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// flow is one control-flow path under construction: an attachment point
// in the graph plus the type environment along that path. The compiler
// carries a set of flows; deferring the merge of flows whose envs
// differ is our forward formulation of extended message splitting (see
// DESIGN.md §4).
type flow struct {
	from *ir.Node // node whose successor slot `slot` is the open edge
	slot int
	env  env

	// uncommon marks paths downstream of primitive failures or failed
	// type tests; splitting never keeps extra copies of them (§4).
	uncommon bool

	// copied counts nodes emitted on this flow while other common
	// flows were alive — the "number of copied nodes" of the paper's
	// splitting threshold.
	copied int

	// facts, lens and copies implement the §7 future-work extension
	// (Config.ComparisonFacts): facts records "a < b" relations proved
	// by taken branches, lens maps a vector register to a register
	// already holding its length, and copies canonicalizes registers
	// across Moves so a fact proved about a copy matches. All three are
	// path knowledge: merges drop them, assignments invalidate them.
	facts  map[factKey]bool
	lens   map[ir.Reg]ir.Reg
	copies map[ir.Reg]ir.Reg
}

// factKey is a proved strict "A < B" relation between registers.
type factKey struct {
	a, b ir.Reg
}

func (f *flow) clone() *flow {
	nf := &flow{from: f.from, slot: f.slot, env: f.env.clone(), uncommon: f.uncommon, copied: f.copied}
	nf.copyFacts(f)
	return nf
}

// copyFacts copies path knowledge from another flow (used when a branch
// creates successor flows).
func (f *flow) copyFacts(from *flow) {
	if len(from.facts) > 0 {
		f.facts = make(map[factKey]bool, len(from.facts))
		for k := range from.facts {
			f.facts[k] = true
		}
	}
	if len(from.lens) > 0 {
		f.lens = make(map[ir.Reg]ir.Reg, len(from.lens))
		for k, v := range from.lens {
			f.lens[k] = v
		}
	}
	if len(from.copies) > 0 {
		f.copies = make(map[ir.Reg]ir.Reg, len(from.copies))
		for k, v := range from.copies {
			f.copies[k] = v
		}
	}
}

// canon follows the copy chain to the defining register.
func (f *flow) canon(r ir.Reg) ir.Reg {
	for i := 0; i < 32; i++ {
		c, ok := f.copies[r]
		if !ok {
			return r
		}
		r = c
	}
	return r
}

// noteCopy records that dst is a copy of src.
func (f *flow) noteCopy(dst, src ir.Reg) {
	if f.copies == nil {
		f.copies = map[ir.Reg]ir.Reg{}
	}
	f.copies[dst] = f.canon(src)
}

// addFact records a proved "a < b" (registers canonicalized).
func (f *flow) addFact(a, b ir.Reg) {
	if f.facts == nil {
		f.facts = map[factKey]bool{}
	}
	f.facts[factKey{f.canon(a), f.canon(b)}] = true
}

// hasFact reports a proved "a < b" (registers canonicalized).
func (f *flow) hasFact(a, b ir.Reg) bool {
	return f.facts[factKey{f.canon(a), f.canon(b)}]
}

// invalidateReg drops all knowledge involving register r (called when r
// is reassigned).
func (f *flow) invalidateReg(r ir.Reg) {
	for k := range f.facts {
		if k.a == r || k.b == r {
			delete(f.facts, k)
		}
	}
	for vec, ln := range f.lens {
		if vec == r || ln == r {
			delete(f.lens, vec)
		}
	}
	delete(f.copies, r)
	for k, v := range f.copies {
		if v == r {
			delete(f.copies, k)
		}
	}
}

// dropFacts clears all path knowledge (merges, escapes).
func (f *flow) dropFacts() {
	f.facts = nil
	f.lens = nil
}

// aliasReg records that dst now holds the same value as src (a Move).
func (f *flow) aliasReg(dst, src ir.Reg) {
	f.noteCopy(dst, src)
	if ln, ok := f.lens[f.canon(src)]; ok {
		if f.lens == nil {
			f.lens = map[ir.Reg]ir.Reg{}
		}
		f.lens[dst] = ln
	}
}

// setSucc wires slot s of node n to t, growing the successor list.
func setSucc(n *ir.Node, s int, t *ir.Node) {
	for len(n.Succ) <= s {
		n.Succ = append(n.Succ, nil)
	}
	n.Succ[s] = t
}

// scopeKind distinguishes method scopes (which ^ returns from) from
// block scopes.
type scopeKind uint8

const (
	methodScope scopeKind = iota
	blockScope
)

// scope is one lexical contour during compilation: a source method or
// block, possibly inlined into an enclosing scope.
type scope struct {
	kind   scopeKind
	parent *scope

	vars   map[string]ir.Reg // params and locals declared here
	params map[string]bool   // subset of vars that are parameters (immutable)

	selfReg  ir.Reg
	selfType types.Type

	// ret collects the flows produced by ^ expressions targeting this
	// method scope (nil for block scopes — blocks delegate to their
	// lexically enclosing method scope).
	ret *retCollector

	// nlrLanding, created on demand, is the merge node where run-time
	// non-local returns from this (inlined) method scope's escaped
	// blocks land; it feeds the scope's return collector.
	nlrLanding *ir.Node

	// stackDepth is the inline-stack depth at which this scope's source
	// text lives. Inlining a block body masks the stack back to the
	// block's defining depth: the intervening inlined methods (e.g.
	// ifTrue:False: itself) are not lexical ancestors of the block's
	// code, so sends inside it may still inline them.
	stackDepth int

	// compiledBlock is set when this scope is the body of a block
	// being compiled out-of-line (a runtime closure): names in upNames
	// resolve to up-level accesses through the closure; anything else
	// unresolved is an implicit-self send as usual.
	compiledBlock bool
	upNames       map[string]bool
}

// retCollector gathers early-return flows for a method scope so they
// merge with the fall-through result at the end of the method.
type retCollector struct {
	resultReg ir.Reg
	flows     []*flow
}

// lookupVar resolves a name through the scope chain. It reports the
// register and true, or — when crossing into an out-of-line block
// compilation — NoReg with upLevel=true, meaning the variable lives in
// the closure's captured environment.
func (s *scope) lookupVar(name string) (reg ir.Reg, upLevel, ok bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if r, found := cur.vars[name]; found {
			return r, false, true
		}
		if cur.compiledBlock && cur.parent == nil {
			// Out-of-line block: captured names resolve through the
			// closure; anything else is not a variable.
			if cur.upNames[name] {
				return ir.NoReg, true, true
			}
			return ir.NoReg, false, false
		}
	}
	return ir.NoReg, false, false
}

// isParam reports whether name resolves to a parameter. Parameters are
// immutable in SELF; inlining exploits this by aliasing them to the
// caller's argument registers, so type refinements on a parameter
// propagate to the variable the caller passed.
func (s *scope) isParam(name string) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if _, found := cur.vars[name]; found {
			return cur.params[name]
		}
		if cur.compiledBlock && cur.parent == nil {
			return false
		}
	}
	return false
}

// homeMethod returns the nearest enclosing method scope (where ^
// returns to), or nil when the home is outside this compilation (an
// out-of-line block: ^ becomes a non-local return instruction).
func (s *scope) homeMethod() *scope {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.kind == methodScope {
			return cur
		}
		if cur.compiledBlock && cur.parent == nil {
			return nil
		}
	}
	return nil
}

// selfScope returns the scope defining the current receiver: blocks
// share the self of their lexically enclosing method.
func (s *scope) selfScope() *scope {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.kind == methodScope || (cur.compiledBlock && cur.parent == nil) {
			return cur
		}
	}
	return s
}
