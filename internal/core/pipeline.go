// Pipeline is the compile driver refactored into an ordered, named
// pass pipeline: inline → iterative-analysis → split → range →
// assemble. The first four passes are the front end's interleaved
// abstract interpretation (the paper compiles, analyzes, inlines and
// splits in a single traversal — see compile.go), so their enablement
// maps onto Config knobs and their per-pass activity is reported from
// the compilation's event counters; the assemble pass linearizes the
// graph to executable Code (vm.Assemble + superinstruction fusion).
//
// A Pipeline is also where compilation tiers become concrete: it is
// constructed for one Tier, applies that tier's configuration (see
// tier.go), labels the produced Code with the tier, and threads
// harvested type feedback into hot recompiles. The optimizing tier
// with nil feedback is bit-identical to driving Compiler + vm.Assemble
// + vm.Fuse by hand — the tier differential test pins this.
package core

import (
	"fmt"
	"time"

	"selfgo/internal/ast"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/types"
	"selfgo/internal/vm"
)

// PassStat is one pass's contribution to a compilation.
type PassStat struct {
	Name    string
	Enabled bool
	// Events counts the pass's characteristic actions in this
	// compilation (inlines performed, type tests removed + loop-body
	// reanalyses, splits kept, overflow checks removed, instructions
	// assembled).
	Events int
	// Duration is measured for the assemble pass; the four front-end
	// passes run interleaved in one traversal whose total time is
	// Stats.Duration, so their individual Duration is zero.
	Duration time.Duration
}

// passSpec ties a pass name to the Config knobs that enable it and the
// Stats counters that witness it.
type passSpec struct {
	name    string
	enabled func(*Config) bool
	disable func(*Config)
	events  func(*Stats) int
}

// passOrder is the pipeline, in compilation order.
var passOrder = []passSpec{
	{
		name:    "inline",
		enabled: func(c *Config) bool { return c.InlineMethods || c.InlinePrimitives },
		disable: func(c *Config) { c.InlineMethods = false; c.InlinePrimitives = false },
		events:  func(s *Stats) int { return s.InlinedMethods + s.InlinedPrims + s.FoldedPrims },
	},
	{
		name:    "iterative-analysis",
		enabled: func(c *Config) bool { return c.TypeAnalysis || c.IterativeLoops },
		disable: func(c *Config) { c.TypeAnalysis = false; c.IterativeLoops = false },
		events:  func(s *Stats) int { return s.LoopIterations + s.RemovedTests + s.FeedbackTests },
	},
	{
		name:    "split",
		enabled: func(c *Config) bool { return c.LocalSplitting || c.ExtendedSplitting },
		disable: func(c *Config) { c.LocalSplitting = false; c.ExtendedSplitting = false },
		events:  func(s *Stats) int { return s.Splits + s.LoopVersions },
	},
	{
		name:    "range",
		enabled: func(c *Config) bool { return c.RangeAnalysis },
		disable: func(c *Config) { c.RangeAnalysis = false },
		events:  func(s *Stats) int { return s.RemovedOvfl },
	},
	{
		name:    "assemble",
		enabled: func(c *Config) bool { return true },
		disable: func(c *Config) {},
		events:  func(s *Stats) int { return s.Nodes },
	},
}

// PassNames lists the pipeline's passes in order.
func PassNames() []string {
	out := make([]string, len(passOrder))
	for i, p := range passOrder {
		out[i] = p.name
	}
	return out
}

// Pipeline drives compilation for one tier: front-end passes under the
// tier-resolved Config, then assembly and fusion into vm.Code.
type Pipeline struct {
	// Tier is the tier this pipeline compiles at.
	Tier Tier
	// Cfg is the tier-resolved configuration the passes run under
	// (Tier.Apply of the base config, possibly with individual passes
	// disabled afterwards).
	Cfg Config

	compiler *Compiler
}

// NewPipeline builds the pipeline for base's tier-resolved
// configuration. The strategy derivation runs after the tier's: a
// degraded compile has already had Strategy forced back to split by
// the tier table, so ApplyStrategy is the identity for it.
func NewPipeline(w *obj.World, base Config, tier Tier) *Pipeline {
	cfg := ApplyStrategy(tier.Apply(base))
	return &Pipeline{Tier: tier, Cfg: cfg, compiler: New(w, cfg)}
}

// Compiler exposes the underlying front-end compiler (tools like
// GraphFor want the graph before assembly).
func (p *Pipeline) Compiler() *Compiler { return p.compiler }

// PassEnabled reports whether the named pass is enabled under the
// pipeline's configuration.
func (p *Pipeline) PassEnabled(name string) (bool, error) {
	for i := range passOrder {
		if passOrder[i].name == name {
			return passOrder[i].enabled(&p.Cfg), nil
		}
	}
	return false, fmt.Errorf("core: unknown pass %q", name)
}

// DisablePass switches one named pass off (the per-pass enable flag:
// disabling maps onto the pass's Config knobs, so the front end skips
// the corresponding work). The assemble pass cannot be disabled.
// Enabling works the other way — build the pipeline from a config
// that has the pass on.
func (p *Pipeline) DisablePass(name string) error {
	if name == "assemble" {
		return fmt.Errorf("core: the assemble pass cannot be disabled")
	}
	for i := range passOrder {
		if passOrder[i].name == name {
			passOrder[i].disable(&p.Cfg)
			p.compiler = New(p.compiler.World, p.Cfg)
			return nil
		}
	}
	return fmt.Errorf("core: unknown pass %q", name)
}

// CompileMethod runs the full pipeline on meth customized for rmap,
// optionally seeded with type feedback (fb nil for none), and returns
// executable Code labeled with the pipeline's tier and origin. The
// returned Stats carries the per-pass breakdown in Stats.Passes.
func (p *Pipeline) CompileMethod(meth *obj.Method, rmap *obj.Map, fb *types.Feedback) (*vm.Code, *Stats, error) {
	g, st, err := p.compiler.compileMethodFB(meth, rmap, fb)
	if err != nil {
		return nil, st, err
	}
	c, err := p.assemble(g, st)
	if err != nil {
		return nil, st, err
	}
	c.Origin = vm.Origin{Meth: meth, RMap: rmap}
	return c, st, nil
}

// CompileBlock runs the full pipeline on an out-of-line block. Block
// code carries no Origin — blocks are not promoted directly; a hot
// method's recompile re-inlines its blocks instead.
func (p *Pipeline) CompileBlock(blk *ast.Block, upNames []string, fb *types.Feedback) (*vm.Code, *Stats, error) {
	g, st, err := p.compiler.compileBlockFB(blk, upNames, fb)
	if err != nil {
		return nil, st, err
	}
	c, err := p.assemble(g, st)
	if err != nil {
		return nil, st, err
	}
	c.IsBlock = true
	return c, st, nil
}

// assemble is the pipeline's final pass: linearize, fuse (unless
// disabled), lower to the native backend (when the tier-resolved
// config selects it), label, and record the per-pass breakdown. A
// lowering failure is a compile failure: the caller's degraded retry
// (eager modes) or the promotion flight's keep-old-tier path (adaptive
// mode) contains it.
func (p *Pipeline) assemble(g *ir.Graph, st *Stats) (*vm.Code, error) {
	t0 := time.Now()
	c := vm.Assemble(g)
	if !p.Cfg.NoSuperinstructions {
		vm.Fuse(c)
	}
	if p.Cfg.NativeBackend {
		if err := vm.PrepareNative(c); err != nil {
			return nil, fmt.Errorf("lowering %s to the native backend: %w", c.Name, err)
		}
	}
	if p.Cfg.Strategy != StrategySplit {
		vm.EnableBBV(c, p.Cfg.MaxVers)
	}
	asm := time.Since(t0)
	st.Duration += asm
	st.Nodes = len(c.Instrs)
	c.TierLabel = p.Tier.String()

	st.Passes = make([]PassStat, len(passOrder))
	for i := range passOrder {
		ps := &passOrder[i]
		st.Passes[i] = PassStat{Name: ps.name, Enabled: ps.enabled(&p.Cfg), Events: ps.events(st)}
	}
	st.Passes[len(st.Passes)-1].Duration = asm
	return c, nil
}
