package core

import (
	"reflect"
	"testing"

	"selfgo/internal/obj"
	"selfgo/internal/vm"
)

func allPresets() []Config {
	return []Config{NewSELF, NewSELFMultiLoop, NewSELFExtended, OldSELF89, OldSELF90, ST80, StaticIdealC}
}

// TestTierTableCoversEveryConfigField: the table-driven tier derivation
// exists so a new Config knob cannot silently be dropped from a tier —
// this test is the enforcement: every Config field must appear in
// tierTable exactly once, and every tierTable row must name a real
// field.
func TestTierTableCoversEveryConfigField(t *testing.T) {
	ct := reflect.TypeOf(Config{})
	want := map[string]bool{}
	for i := 0; i < ct.NumField(); i++ {
		want[ct.Field(i).Name] = false
	}
	for _, r := range tierTable {
		seen, ok := want[r.Field]
		if !ok {
			t.Errorf("tierTable names %q, which is not a Config field", r.Field)
			continue
		}
		if seen {
			t.Errorf("tierTable names %q twice", r.Field)
		}
		want[r.Field] = true
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("Config field %q missing from tierTable: decide its baseline and degraded values", f)
		}
	}
}

// legacyDegraded is the hand-written field-by-field Degraded function
// this table replaced, kept verbatim as the oracle.
func legacyDegraded(c Config) Config {
	c.Name = c.Name + " (degraded)"
	c.TypeAnalysis = false
	c.RangeAnalysis = false
	c.InlineMethods = false
	c.LocalSplitting = false
	c.ExtendedSplitting = false
	c.IterativeLoops = false
	c.MultiVersionLoops = false
	c.MaxLoopIterations = 1
	c.MaxFlows = 2
	c.InlineDepth = 1
	c.InlineBudget = 0
	c.StaticIdeal = false
	c.ComparisonFacts = false
	c.AnnotateTypes = false
	return c
}

// TestTierDegradedMatchesLegacy: the table-derived degraded tier is
// exactly the old Degraded function on every preset.
func TestTierDegradedMatchesLegacy(t *testing.T) {
	for _, cfg := range allPresets() {
		got := TierDegraded.Apply(cfg)
		want := legacyDegraded(cfg)
		if got != want {
			t.Errorf("%s: TierDegraded.Apply diverges from legacy Degraded:\n got %+v\nwant %+v", cfg.Name, got, want)
		}
		if d := Degraded(cfg); d != want {
			t.Errorf("%s: Degraded() no longer matches its legacy behavior", cfg.Name)
		}
	}
}

// TestTierOptimizingIsIdentity: the optimizing tier is the base config
// untouched — the bit-identity guarantee for -tier=opt starts here.
func TestTierOptimizingIsIdentity(t *testing.T) {
	for _, cfg := range allPresets() {
		if got := TierOptimizing.Apply(cfg); got != cfg {
			t.Errorf("%s: TierOptimizing.Apply is not the identity:\n got %+v\nwant %+v", cfg.Name, got, cfg)
		}
	}
}

// TestTierBaselineShape: spot-check the baseline tier — heavy analysis
// off, dispatch mechanisms kept, name labeled.
func TestTierBaselineShape(t *testing.T) {
	b := TierBaseline.Apply(NewSELF)
	if b.Name != NewSELF.Name+" (baseline)" {
		t.Errorf("baseline name = %q", b.Name)
	}
	for name, got := range map[string]bool{
		"TypeAnalysis":      b.TypeAnalysis,
		"RangeAnalysis":     b.RangeAnalysis,
		"InlineMethods":     b.InlineMethods,
		"ExtendedSplitting": b.ExtendedSplitting,
		"IterativeLoops":    b.IterativeLoops,
		"MultiVersionLoops": b.MultiVersionLoops,
	} {
		if got {
			t.Errorf("baseline keeps %s on; it must be a cheap tier", name)
		}
	}
	// What makes baseline code still runnable and still profilable:
	// customization, primitive inlining, local splitting and the
	// IC/PIC machinery are preserved from the base config.
	if b.Customization != NewSELF.Customization ||
		b.InlinePrimitives != NewSELF.InlinePrimitives ||
		b.LocalSplitting != NewSELF.LocalSplitting ||
		b.PolymorphicInlineCaches != NewSELF.PolymorphicInlineCaches ||
		b.TypePrediction != NewSELF.TypePrediction {
		t.Errorf("baseline dropped a kept-from-base knob: %+v", b)
	}
	if b.MaxFlows != 4 || b.MaxLoopIterations != 1 || b.InlineDepth != 1 {
		t.Errorf("baseline limits wrong: MaxFlows=%d MaxLoopIterations=%d InlineDepth=%d",
			b.MaxFlows, b.MaxLoopIterations, b.InlineDepth)
	}
	// Degraded is strictly below baseline: everything baseline turns
	// off stays off, and splitting goes too.
	d := TierDegraded.Apply(NewSELF)
	if d.LocalSplitting || d.MaxFlows >= b.MaxFlows {
		t.Errorf("degraded not strictly below baseline: %+v", d)
	}
}

// TestTierOrderAndNames: tier ordering and labels are what the rest of
// the system keys on (Code.TierLabel, compile-log Tier).
func TestTierOrderAndNames(t *testing.T) {
	if !(TierDegraded < TierBaseline && TierBaseline < TierOptimizing) {
		t.Fatalf("tier order broken: %d %d %d", TierDegraded, TierBaseline, TierOptimizing)
	}
	for tier, want := range map[Tier]string{
		TierDegraded: "degraded", TierBaseline: "baseline", TierOptimizing: "optimizing",
	} {
		if tier.String() != want {
			t.Errorf("%d.String() = %q, want %q", tier, tier.String(), want)
		}
	}
}

// TestPipelinePassStats: a Pipeline compile fills the per-pass
// breakdown — ordered pass names, enablement reflecting the tier's
// config, events attributed, assemble measured.
func TestPipelinePassStats(t *testing.T) {
	w := buildWorld(t, triangleSrc)
	r := obj.Lookup(w.Lobby.Map, "triangleNumber:")
	p := NewPipeline(w, NewSELF, TierOptimizing)
	c, st, err := p.CompileMethod(r.Slot.Meth, w.Lobby.Map, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.TierLabel != "optimizing" {
		t.Errorf("TierLabel = %q", c.TierLabel)
	}
	if c.Origin.Meth != r.Slot.Meth || c.Origin.RMap != w.Lobby.Map {
		t.Errorf("Origin not recorded: %+v", c.Origin)
	}
	names := PassNames()
	if len(st.Passes) != len(names) {
		t.Fatalf("got %d pass stats, want %d", len(st.Passes), len(names))
	}
	for i, ps := range st.Passes {
		if ps.Name != names[i] {
			t.Errorf("pass %d = %q, want %q", i, ps.Name, names[i])
		}
	}
	byName := map[string]PassStat{}
	for _, ps := range st.Passes {
		byName[ps.Name] = ps
	}
	for _, name := range []string{"inline", "iterative-analysis", "split", "range", "assemble"} {
		if !byName[name].Enabled {
			t.Errorf("pass %q disabled under the optimizing tier of NewSELF", name)
		}
	}
	if byName["assemble"].Events != len(c.Instrs) {
		t.Errorf("assemble events = %d, want instruction count %d", byName["assemble"].Events, len(c.Instrs))
	}
	if byName["assemble"].Duration <= 0 {
		t.Error("assemble duration not measured")
	}
	if byName["inline"].Events == 0 {
		t.Error("triangleNumber: under NewSELF should inline something")
	}

	// The baseline tier reports its disabled passes.
	pb := NewPipeline(w, NewSELF, TierBaseline)
	_, stb, err := pb.CompileMethod(r.Slot.Meth, w.Lobby.Map, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range stb.Passes {
		switch ps.Name {
		case "inline":
			// InlinePrimitives is kept at baseline, so the pass stays
			// enabled; it just inlines no user methods.
			if !ps.Enabled {
				t.Error("baseline inline pass should stay enabled for primitives")
			}
		case "iterative-analysis", "range":
			if ps.Enabled {
				t.Errorf("baseline pass %q should be disabled", ps.Name)
			}
		}
	}
}

// TestPipelineDisablePass: the per-pass enable flag switches a pass's
// work off and is reported in the stats.
func TestPipelineDisablePass(t *testing.T) {
	w := buildWorld(t, triangleSrc)
	r := obj.Lookup(w.Lobby.Map, "triangleNumber:")
	p := NewPipeline(w, NewSELF, TierOptimizing)
	if err := p.DisablePass("range"); err != nil {
		t.Fatal(err)
	}
	if on, err := p.PassEnabled("range"); err != nil || on {
		t.Fatalf("range still enabled after DisablePass (err=%v)", err)
	}
	_, st, err := p.CompileMethod(r.Slot.Meth, w.Lobby.Map, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range st.Passes {
		if ps.Name == "range" && (ps.Enabled || ps.Events != 0) {
			t.Errorf("disabled range pass still reports activity: %+v", ps)
		}
	}
	if err := p.DisablePass("assemble"); err == nil {
		t.Error("assemble must not be disableable")
	}
	if err := p.DisablePass("no-such-pass"); err == nil {
		t.Error("unknown pass accepted")
	}
	if _, err := p.PassEnabled("no-such-pass"); err == nil {
		t.Error("unknown pass accepted by PassEnabled")
	}
}

// TestPipelineOptMatchesBareCompiler: driving the optimizing pipeline
// produces the same instruction stream and modelled quantities as
// driving Compiler+Assemble+Fuse by hand (the pre-refactor path) — the
// package-level half of the -tier=opt bit-identity guarantee.
func TestPipelineOptMatchesBareCompiler(t *testing.T) {
	// Duration is wall-clock and Passes is pipeline-only: zero both
	// before comparing. The pipeline redefines Nodes as assembled
	// instruction count, so the bare oracle gets the same treatment.
	scrub := func(s Stats) Stats {
		s.Duration = 0
		s.Passes = nil
		return s
	}
	for _, cfg := range allPresets() {
		w := buildWorld(t, triangleSrc)
		r := obj.Lookup(w.Lobby.Map, "triangleNumber:")
		rmap := w.Lobby.Map
		if !cfg.Customization {
			rmap = nil
		}
		p := NewPipeline(w, cfg, TierOptimizing)
		pc, pst, err := p.CompileMethod(r.Slot.Meth, rmap, nil)
		if err != nil {
			t.Fatalf("%s: pipeline: %v", cfg.Name, err)
		}
		g, bst, err := New(w, cfg).CompileMethod(r.Slot.Meth, rmap)
		if err != nil {
			t.Fatalf("%s: bare: %v", cfg.Name, err)
		}
		bc := vm.Assemble(g)
		if !cfg.NoSuperinstructions {
			vm.Fuse(bc)
		}
		bst.Nodes = len(bc.Instrs)
		if !reflect.DeepEqual(scrub(*pst), scrub(*bst)) {
			t.Errorf("%s: stats diverge:\npipeline %+v\nbare     %+v", cfg.Name, scrub(*pst), scrub(*bst))
		}
		if len(pc.Instrs) != len(bc.Instrs) || pc.Bytes != bc.Bytes || pc.NumRegs != bc.NumRegs {
			t.Errorf("%s: code diverges: %d/%d instrs, %d/%d bytes",
				cfg.Name, len(pc.Instrs), len(bc.Instrs), pc.Bytes, bc.Bytes)
		}
	}
}
