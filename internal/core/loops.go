package core

import (
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/types"
)

// compileLoop compiles "[cond] whileTrue: [body]" (the sole looping
// protocol; upTo:Do: and friends inline down to it) using iterative
// type analysis (§5.1): the body is repeatedly recompiled until the
// loop-tail type bindings reach a fix-point with the loop head, with
// the loop-head generalization rule to converge quickly. With
// multi-version loops enabled, a merge-typed fix-point is projected
// onto a common-case version (no type tests) and a general version,
// and every back edge is wired to a compatible head (§5.2).
func (cp *compilation) compileLoop(f *flow, condT, bodyT types.Blk, negate bool, sc *scope) ([]*flow, ir.Reg) {
	origin := cp.nextMergeID()

	// Only registers live at loop entry participate in the head/tail
	// type comparisons: temporaries created inside the body are dead
	// across the back edge.
	loopRegs := append([]ir.Reg(nil), cp.tracked...)

	// For the §7 comparison-facts extension, log which registers the
	// loop body writes: facts and length mappings between unwritten
	// (loop-invariant) registers survive into the loop versions.
	var writes map[ir.Reg]bool
	if cp.cfg.ComparisonFacts {
		writes = map[ir.Reg]bool{}
		cp.writeLogs = append(cp.writeLogs, writes)
		defer func() { cp.writeLogs = cp.writeLogs[:len(cp.writeLogs)-1] }()
	}

	// Phase 1: find the loop-head type bindings.
	headEnv := f.env.clone()
	if cp.cfg.IterativeLoops {
		converged := false
		for it := 0; it < cp.cfg.MaxLoopIterations; it++ {
			cp.stats.LoopIterations++
			tails := cp.simulateLoopBody(headEnv, condT, bodyT, negate)
			newHead := headEnv.clone()
			changed := false
			for _, te := range tails {
				for _, r := range loopRegs {
					g := types.LoopGeneralize(newHead.get(r), te.get(r), origin, cp.intMap())
					if !types.Equal(g, newHead.get(r)) {
						newHead.set(r, g)
						changed = true
					}
				}
			}
			if !changed {
				converged = true
				break
			}
			headEnv = newHead
		}
		if !converged {
			headEnv = cp.pessimize(f.env, condT, bodyT, negate, loopRegs)
		}
	} else {
		// Pessimistic type analysis (§5): every local assigned within
		// the loop is of unknown type — the original SELF compiler.
		headEnv = cp.pessimize(f.env, condT, bodyT, negate, loopRegs)
	}

	// Phase 2: choose the loop versions.
	versions := []env{headEnv}
	if cp.cfg.MultiVersionLoops && !cp.cfg.StaticIdeal {
		if common, ok := cp.projectCommon(headEnv, loopRegs); ok {
			// Fold the common version's tail types into the general
			// head so every back edge of either version finds a
			// containing head.
			cp.stats.LoopIterations++
			for _, te := range cp.simulateLoopBody(common, condT, bodyT, negate) {
				for _, r := range loopRegs {
					headEnv.set(r, types.LoopGeneralize(headEnv.get(r), te.get(r), origin, cp.intMap()))
				}
			}
			versions = []env{common, headEnv}
		}
	}

	// Phase 3: build the loop(s) for real.
	heads := make([]*ir.Node, len(versions))
	for i := range versions {
		heads[i] = cp.g.NewNode(ir.LoopHead)
		heads[i].Version = i + 1
		if len(versions) > 1 && i == 0 {
			heads[i].Note = "common-case version"
		}
	}
	cp.stats.LoopVersions += len(versions)

	// Route the entry edge to the first version that contains the
	// incoming types (the general version always does).
	entryIdx := len(versions) - 1
	for i, venv := range versions {
		if cp.envContains(venv, f.env, loopRegs) {
			entryIdx = i
			break
		}
	}
	cp.conformBlocks(f, versions[entryIdx], loopRegs)
	setSucc(f.from, f.slot, heads[entryIdx])

	var exits []*flow
	for i, venv := range versions {
		hf := &flow{from: heads[i], slot: 0, env: venv.clone(), uncommon: f.uncommon}
		cp.seedInvariantFacts(hf, f, writes)
		tails, vexits := cp.buildLoopBody(hf, condT, bodyT, negate)
		exits = append(exits, vexits...)
		for _, tf := range tails {
			tgt := -1
			for j, henv := range versions {
				if cp.envCompatible(henv, tf.env, loopRegs) {
					tgt = j
					break
				}
			}
			if tgt == -1 {
				// The fix-point should make the general version
				// compatible; fall back to it regardless (its types
				// contain the tail's by construction of phase 1).
				tgt = len(versions) - 1
			}
			cp.conformBlocks(tf, versions[tgt], loopRegs)
			setSucc(tf.from, tf.slot, heads[tgt])
		}
	}

	// A loop evaluates to nil.
	if len(exits) == 0 {
		// The loop provably never exits; downstream code is dead.
		return nil, cp.g.NewReg()
	}
	exits = cp.mergePolicy(exits, ir.NoReg)
	return cp.compileConst(exits, obj.Nil())
}

// seedInvariantFacts carries entry-path knowledge whose registers the
// loop body provably never writes into a loop version's head flow.
func (cp *compilation) seedInvariantFacts(hf, entry *flow, writes map[ir.Reg]bool) {
	if writes == nil {
		return
	}
	for vec, ln := range entry.lens {
		if !writes[vec] && !writes[ln] {
			if hf.lens == nil {
				hf.lens = map[ir.Reg]ir.Reg{}
			}
			hf.lens[vec] = ln
		}
	}
	for k := range entry.facts {
		if !writes[k.a] && !writes[k.b] {
			hf.addFact(k.a, k.b)
		}
	}
	for dst, src := range entry.copies {
		if !writes[dst] && !writes[src] {
			hf.noteCopy(dst, src)
		}
	}
}

// conformBlocks materializes any block literal whose type the target
// environment dilutes (the head will treat the register dynamically).
func (cp *compilation) conformBlocks(f *flow, target env, regs []ir.Reg) {
	for _, r := range regs {
		t := f.env.get(r)
		if _, ok := t.(types.Blk); !ok {
			continue
		}
		if !types.Equal(target.get(r), t) {
			cp.materialize(f, r)
		}
	}
}

func (cp *compilation) nextMergeID() int {
	cp.mergeSeq++
	return cp.mergeSeq
}

// simulateLoopBody compiles the loop once from headEnv into a detached
// subgraph — the recompilation step of iterative type analysis — and
// returns the type environments at the loop tail. The nodes built here
// stay unreachable; only the type information survives (and the
// compile-time cost, which the paper pays too).
func (cp *compilation) simulateLoopBody(headEnv env, condT, bodyT types.Blk, negate bool) []env {
	savedRegs := cp.g.NumRegs
	savedTracked := len(cp.tracked)

	fake := cp.g.NewNode(ir.Merge)
	hf := &flow{from: fake, slot: 0, env: headEnv.clone()}
	tails, _ := cp.buildLoopBody(hf, condT, bodyT, negate)

	out := make([]env, 0, len(tails))
	for _, tf := range tails {
		// Cap the environments to the registers that existed before
		// the simulation, so scratch registers don't leak.
		e := env{}
		for _, r := range cp.tracked[:savedTracked] {
			e.set(r, tf.env.get(r))
		}
		out = append(out, e)
	}
	cp.g.NumRegs = savedRegs
	for _, r := range cp.tracked[savedTracked:] {
		delete(cp.trackedSet, r)
	}
	cp.tracked = cp.tracked[:savedTracked]
	return out
}

// buildLoopBody compiles cond and body once from hf. Returned tails are
// the back-edge flows (their successor slot is still open); exits are
// the flows leaving the loop.
func (cp *compilation) buildLoopBody(hf *flow, condT, bodyT types.Blk, negate bool) (tails, exits []*flow) {
	condFlows, condReg := cp.inlineBlock(hf, condT, nil, "value")
	var bodyEntries []*flow
	for _, cf := range condFlows {
		enter, leave := cp.branchOnBool(cf, condReg)
		if negate {
			enter, leave = leave, enter
		}
		bodyEntries = append(bodyEntries, enter...)
		exits = append(exits, leave...)
	}
	bodyEntries = cp.mergePolicy(bodyEntries, ir.NoReg)
	for _, bf := range bodyEntries {
		outs, _ := cp.inlineBlock(bf, bodyT, nil, "value")
		tails = append(tails, outs...)
	}
	tails = cp.mergePolicy(tails, ir.NoReg)
	return tails, exits
}

// branchOnBool routes a flow by the boolean in reg: constant booleans
// cost nothing, otherwise run-time tests are emitted (true, then
// false, with a failure for non-booleans).
func (cp *compilation) branchOnBool(f *flow, reg ir.Reg) (whenTrue, whenFalse []*flow) {
	t := f.env.get(reg)
	if v, ok := types.Constant(t); ok {
		if v.K() == obj.KObj && v.Obj() == cp.w.TrueObj {
			return []*flow{f}, nil
		}
		if v.K() == obj.KObj && v.Obj() == cp.w.FalseObj {
			return nil, []*flow{f}
		}
	}
	passT, rest := cp.emitTypeTest(f, reg, cp.w.TrueObj.Map)
	if passT != nil {
		whenTrue = append(whenTrue, passT)
	}
	if rest != nil {
		wasUncommon := rest.uncommon
		passF, fail := cp.emitTypeTest(rest, reg, cp.w.FalseObj.Map)
		if passF != nil {
			passF.uncommon = wasUncommon && passF.uncommon
			whenFalse = append(whenFalse, passF)
		}
		if fail != nil {
			n := cp.g.NewNode(ir.Fail)
			n.Sel = "loop condition must be a boolean"
			n.Uncommon = true
			cp.emit(fail, n)
		}
	}
	return whenTrue, whenFalse
}

// pessimize rebinds every local whose value can change within the loop
// to the unknown type (§5's "pessimistic type analysis"). The assigned
// set is discovered semantically: compile the body once (discarded)
// and widen every register whose tail type escapes its entry type,
// iterating because widening one variable can expose assignments to
// another.
func (cp *compilation) pessimize(e env, condT, bodyT types.Blk, negate bool, loopRegs []ir.Reg) env {
	out := e.clone()
	// Without type analysis every assignment already binds unknown, so
	// one discovery pass is complete; with it, widening one variable
	// can expose assignments hidden behind folding, so iterate.
	maxPasses := 5
	if !cp.cfg.TypeAnalysis {
		maxPasses = 1
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		tails := cp.simulateLoopBody(out, condT, bodyT, negate)
		for _, r := range loopRegs {
			if _, isUnknown := out.get(r).(types.Unknown); isUnknown {
				continue
			}
			for _, te := range tails {
				if !types.Contains(out.get(r), te.get(r), cp.intMap()) {
					out.set(r, types.Unknown{})
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// projectCommon builds the common-case projection of a merge-typed
// loop-head environment: each merge type is replaced by its
// best class-typed constituent. Reports false when the head has no
// merge types (a single version suffices).
func (cp *compilation) projectCommon(headEnv env, loopRegs []ir.Reg) (env, bool) {
	out := headEnv.clone()
	found := false
	for _, r := range loopRegs {
		m, ok := headEnv.get(r).(types.Merge)
		if !ok {
			continue
		}
		var best types.Type
		for _, e := range m.Elems {
			if types.MapOf(e, cp.intMap()) != nil {
				best = e
				break
			}
		}
		if best != nil {
			out.set(r, best)
			found = true
		}
	}
	return out, found
}

// envContains reports whether head's types contain e's on every
// tracked register.
func (cp *compilation) envContains(head, e env, loopRegs []ir.Reg) bool {
	for _, r := range loopRegs {
		if !types.Contains(head.get(r), e.get(r), cp.intMap()) {
			return false
		}
	}
	return true
}

// envCompatible applies the §5.2 head/tail compatibility rule
// pointwise.
func (cp *compilation) envCompatible(head, tail env, loopRegs []ir.Reg) bool {
	for _, r := range loopRegs {
		if !types.Compatible(head.get(r), tail.get(r), cp.intMap()) {
			return false
		}
	}
	return true
}
