package core

import (
	"sort"
	"strings"

	"selfgo/internal/ast"
	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/types"
)

// compileSend compiles a message send along every flow, applying
// message inlining (§3.2.2), type prediction, and splitting. The result
// register is the same on every returned flow.
func (cp *compilation) compileSend(flows []*flow, rr ir.Reg, sel string, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	if cp.err != nil || len(flows) == 0 {
		return flows, cp.g.NewReg()
	}
	// Splitting is bounded even inside one statement: past the flow
	// budget the merge policy folds paths together (forming merge
	// types), exactly as at statement boundaries.
	if len(flows) > cp.cfg.MaxFlows+2 {
		flows = cp.mergePolicy(flows, rr)
	}
	if (sel == "whileTrue:" || sel == "whileFalse:") && len(flows) > 1 {
		// A loop head is itself a merge point: merge before looping so
		// one loop is compiled (its versions come from §5.2 splitting,
		// not from upstream path splits).
		flows = []*flow{cp.mergeFlows(flows, rr)}
	}
	if len(flows) == 1 {
		return cp.sendOne(flows[0], rr, sel, args, sc)
	}
	// Each flow is compiled separately — this is splitting: the send
	// is duplicated along paths carrying different type information.
	dst := cp.g.NewReg()
	var out []*flow
	for _, f := range flows {
		fs, res := cp.sendOne(f, rr, sel, args, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

// moveInto routes a result register into dst on every flow (no move
// when they already coincide).
func (cp *compilation) moveInto(fs []*flow, dst, res ir.Reg) []*flow {
	for _, f := range fs {
		if res == dst {
			continue
		}
		mv := cp.g.NewNode(ir.Move)
		mv.Dst = dst
		mv.A = res
		cp.emit(f, mv)
		f.env.set(dst, f.env.get(res))
		if cp.cfg.ComparisonFacts {
			f.invalidateReg(dst)
			f.aliasReg(dst, res)
		}
	}
	return fs
}

// sendOne compiles one send along one flow.
func (cp *compilation) sendOne(f *flow, rr ir.Reg, sel string, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	if cp.err != nil {
		return []*flow{f}, cp.g.NewReg()
	}
	rt := f.env.get(rr)

	// Block-literal receivers: inline block invocation and recognize
	// the looping protocol.
	if bt, ok := rt.(types.Blk); ok {
		switch {
		case isValueSel(sel, len(args)):
			return cp.inlineBlock(f, bt, args, sel)
		case sel == "whileTrue:" && len(args) == 1:
			if at, ok := f.env.get(args[0]).(types.Blk); ok {
				return cp.compileLoop(f, bt, at, false, sc)
			}
		case sel == "whileFalse:" && len(args) == 1:
			if at, ok := f.env.get(args[0]).(types.Blk); ok {
				return cp.compileLoop(f, bt, at, true, sc)
			}
		}
		// Fall through to a dynamic send on a materialized closure.
	}

	if m := types.MapOf(rt, cp.intMap()); m != nil {
		if m == cp.w.BlockMap && isValueSel(sel, len(args)) {
			// The value protocol of materialized closures is handled
			// by the runtime, not by slot lookup.
			return cp.emitDynSend(f, rr, sel, args, cp.cfg.StaticIdeal)
		}
		return cp.sendStatic(f, m, rr, sel, args, sc)
	}
	return cp.sendUnknown(f, rr, sel, args, sc)
}

// sendStatic compiles a send whose receiver map is statically known:
// the lookup happens at compile time and the slot is inlined (§3.2.2).
func (cp *compilation) sendStatic(f *flow, m *obj.Map, rr ir.Reg, sel string, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	res := obj.Lookup(m, sel)
	if res == nil {
		// Message not understood: compile the error out of line.
		n := cp.g.NewNode(ir.Fail)
		n.Sel = "doesNotUnderstand: " + sel
		n.Uncommon = true
		cp.emit(f, n)
		return nil, ir.NoReg
	}
	switch res.Slot.Kind {
	case obj.ConstSlot, obj.ParentSlot:
		dst := cp.g.NewReg()
		n := cp.g.NewNode(ir.Const)
		n.Dst = dst
		n.Val = res.Slot.Value
		cp.emit(f, n)
		f.env.set(dst, types.NewVal(res.Slot.Value, cp.w.MapOf(res.Slot.Value)))
		return []*flow{f}, dst

	case obj.DataSlot:
		dst := cp.g.NewReg()
		base := cp.holderReg(f, rr, res)
		n := cp.g.NewNode(ir.LoadF)
		n.Dst = dst
		n.A = base
		n.Index = res.Slot.Index
		cp.emit(f, n)
		// §3.2.1: a memory load binds its result to the unknown type.
		f.env.set(dst, types.Unknown{})
		return []*flow{f}, dst

	case obj.AssignSlot:
		if len(args) != 1 {
			cp.errorf("assignment %q expects 1 argument", sel)
			return []*flow{f}, ir.NoReg
		}
		cp.materialize(f, args[0])
		base := cp.holderReg(f, rr, res)
		n := cp.g.NewNode(ir.StoreF)
		n.A = base
		n.Index = res.Slot.Index
		n.B = args[0]
		cp.emit(f, n)
		return []*flow{f}, args[0]

	case obj.MethodSlot:
		meth := res.Slot.Meth
		if cp.canInline(meth, m) {
			return cp.inlineMethod(f, meth, rr, args, sc)
		}
		cp.materialize(f, rr)
		for _, a := range args {
			cp.materialize(f, a)
		}
		dst := cp.g.NewReg()
		n := cp.g.NewNode(ir.Call)
		n.Dst = dst
		n.Callee = &ir.Callee{Sel: sel, RMap: m, Meth: meth}
		n.Args = append([]ir.Reg{rr}, args...)
		cp.emit(f, n)
		cp.clobberVolatile(f)
		f.env.set(dst, types.Unknown{})
		return []*flow{f}, dst
	}
	cp.errorf("unexpected slot kind for %q", sel)
	return []*flow{f}, ir.NoReg
}

// holderReg returns the register holding the object whose fields an
// accessed data slot lives in: the receiver itself, or — for a slot
// inherited from a constant parent — that parent object, loaded as a
// constant.
func (cp *compilation) holderReg(f *flow, rr ir.Reg, res *obj.LookupResult) ir.Reg {
	if res.Holder == nil {
		return rr
	}
	hr := cp.g.NewReg()
	n := cp.g.NewNode(ir.Const)
	n.Dst = hr
	n.Val = obj.Obj(res.Holder)
	cp.emit(f, n)
	f.env.set(hr, types.NewVal(n.Val, res.Holder.Map))
	return hr
}

// sendUnknown compiles a send whose receiver type spans several maps:
// type prediction (§3.2.2) inserts a run-time test and splits the send;
// otherwise a dynamically-dispatched send node is emitted.
func (cp *compilation) sendUnknown(f *flow, rr ir.Reg, sel string, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	rt := f.env.get(rr)

	if cp.cfg.StaticIdeal {
		// "Optimized C" mode: assume the prediction holds without a
		// test; a static compiler would know the type. Boolean control
		// selectors still compile to branches.
		if isBoolControlSel(sel) && !types.Disjoint(rt, boolEither(cp.w), cp.intMap()) {
			return cp.predictBool(f, rr, sel, args, sc)
		}
		if p := cp.predictedType(sel); p != nil {
			if refined := types.Intersect(rt, p, cp.intMap()); refined != nil {
				f.env.set(rr, refined)
				if types.MapOf(refined, cp.intMap()) != nil {
					return cp.sendOne(f, rr, sel, args, sc)
				}
			}
		}
		return cp.emitDynSend(f, rr, sel, args, true)
	}

	if cp.cfg.TypePrediction {
		if p := cp.predictedType(sel); p != nil && !types.Disjoint(rt, p, cp.intMap()) {
			if _, isInt := p.(types.Range); isInt {
				return cp.predictSplit(f, rr, cp.intMap(), sel, args, sc)
			}
		}
		if isBoolControlSel(sel) && !types.Disjoint(rt, boolEither(cp.w), cp.intMap()) {
			return cp.predictBool(f, rr, sel, args, sc)
		}
	}
	if maps := cp.fb.Maps(sel); len(maps) > 0 {
		return cp.feedbackSplit(f, rr, maps, sel, args, sc)
	}
	return cp.emitDynSend(f, rr, sel, args, false)
}

// feedbackSplit compiles a send on a statically-unknown receiver using
// harvested type feedback: the receiver is tested against each observed
// map in turn and the send is compiled statically (usually inlined)
// along every passing branch, with a dynamically-dispatched send left
// on the final fall-through — structurally identical to predictSplit,
// but driven by what a lower tier's inline caches actually saw rather
// than by the selector's statistical prior. Always sound: a receiver
// matching none of the observed maps takes the dynamic send.
func (cp *compilation) feedbackSplit(f *flow, rr ir.Reg, maps []*obj.Map, sel string, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	dst := cp.g.NewReg()
	var out []*flow
	rest := f
	for _, m := range maps {
		if rest == nil {
			break
		}
		if types.Disjoint(rest.env.get(rr), types.NewClass(m, cp.intMap()), cp.intMap()) {
			continue
		}
		pass, fail := cp.emitTypeTest(rest, rr, m)
		cp.stats.FeedbackTests++
		if pass != nil {
			// Every observed map is a common case: do not let the
			// previous test's fall-through mark this branch uncommon.
			pass.uncommon = f.uncommon
			fs, res := cp.sendOne(pass, rr, sel, args, sc)
			out = append(out, cp.moveInto(fs, dst, res)...)
		}
		rest = fail
	}
	if rest != nil {
		fs, res := cp.emitDynSend(rest, rr, sel, args, false)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	if len(out) == 0 {
		// Defensive: every branch proved impossible (cannot normally
		// happen — the dynamic fall-through only folds away when a test
		// always passes, which produces a pass branch).
		return cp.emitDynSend(f, rr, sel, args, false)
	}
	return out, dst
}

// predictSplit tests the receiver against a predicted map and compiles
// the send separately along each branch (local message splitting of the
// predicted message, §3.2.2).
func (cp *compilation) predictSplit(f *flow, rr ir.Reg, pm *obj.Map, sel string, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	pass, fail := cp.emitTypeTest(f, rr, pm)
	dst := cp.g.NewReg()
	var out []*flow
	if pass != nil {
		fs, res := cp.sendOne(pass, rr, sel, args, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	if fail != nil {
		fs, res := cp.emitDynSend(fail, rr, sel, args, false)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	return out, dst
}

// predictBool handles ifTrue:/ifFalse:-family sends on unknown
// receivers: test for true, then false, then fall back to a real send.
func (cp *compilation) predictBool(f *flow, rr ir.Reg, sel string, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	dst := cp.g.NewReg()
	var out []*flow
	passT, rest := cp.emitTypeTest(f, rr, cp.w.TrueObj.Map)
	if passT != nil {
		fs, res := cp.sendOne(passT, rr, sel, args, sc)
		out = append(out, cp.moveInto(fs, dst, res)...)
	}
	if rest != nil {
		passF, fail := cp.emitTypeTest(rest, rr, cp.w.FalseObj.Map)
		if passF != nil {
			// The second test's success branch is still the common
			// case — a boolean that wasn't true is false.
			passF.uncommon = f.uncommon
			fs, res := cp.sendOne(passF, rr, sel, args, sc)
			out = append(out, cp.moveInto(fs, dst, res)...)
		}
		if fail != nil {
			fs, res := cp.emitDynSend(fail, rr, sel, args, false)
			out = append(out, cp.moveInto(fs, dst, res)...)
		}
	}
	return out, dst
}

// emitTypeTest inserts a run-time type test of reg against map pm,
// folding it away when the static type already decides it (§3.2.1).
// Either returned flow may be nil (impossible branch).
func (cp *compilation) emitTypeTest(f *flow, reg ir.Reg, pm *obj.Map) (pass, fail *flow) {
	rt := f.env.get(reg)
	tt := types.NewClass(pm, cp.intMap())
	passT := types.Intersect(rt, tt, cp.intMap())
	failT := types.Subtract(rt, tt, cp.intMap())
	// The static-ideal mode drops type tests — but not tests against
	// true/false, which implement genuine control flow (a C compiler
	// still branches on a boolean).
	boolTest := pm == cp.w.TrueObj.Map || pm == cp.w.FalseObj.Map
	if cp.cfg.StaticIdeal && passT != nil && !boolTest {
		cp.stats.RemovedTests++
		f.env.set(reg, passT)
		return f, nil
	}
	if failT == nil {
		// The test always succeeds: no code.
		cp.stats.RemovedTests++
		f.env.set(reg, passT)
		return f, nil
	}
	if passT == nil {
		// The test always fails: no code, failure path only.
		cp.stats.RemovedTests++
		f.env.set(reg, failT)
		f.uncommon = true
		return nil, f
	}
	n := cp.g.NewNode(ir.TypeTest)
	n.A = reg
	n.TestMap = pm
	cp.emit(f, n)
	pass = &flow{from: n, slot: 0, env: f.env.clone(), uncommon: f.uncommon, copied: f.copied}
	pass.copyFacts(f) // type tests write no registers; facts survive
	pass.env.set(reg, passT)
	fail = &flow{from: n, slot: 1, env: f.env, uncommon: true, copied: f.copied}
	fail.copyFacts(f)
	fail.env.set(reg, failT)
	return pass, fail
}

// emitDynSend emits a dynamically-dispatched send node. direct marks
// static-ideal dispatch (charged as a plain procedure call).
func (cp *compilation) emitDynSend(f *flow, rr ir.Reg, sel string, args []ir.Reg, direct bool) ([]*flow, ir.Reg) {
	cp.materialize(f, rr)
	for _, a := range args {
		cp.materialize(f, a)
	}
	dst := cp.g.NewReg()
	n := cp.g.NewNode(ir.Send)
	n.Dst = dst
	n.Sel = sel
	n.Args = append([]ir.Reg{rr}, args...)
	n.Direct = direct
	cp.emit(f, n)
	cp.clobberVolatile(f)
	f.env.set(dst, types.Unknown{})
	return []*flow{f}, dst
}

// canInline decides whether to inline a looked-up method (§3.2.2).
// Trivial primitive wrappers (the bodies of +, <, at:, …) are
// inlinable even when general method inlining is off — they model
// Smalltalk-80's special-selector fast paths. Boolean control methods
// (ifTrue:False: and friends on true/false) are likewise always
// worth inlining once the receiver is known.
func (cp *compilation) canInline(m *obj.Method, rmap *obj.Map) bool {
	// Recursion check: a method already being inlined (or the method
	// being compiled, which CompileMethod pushes) compiles as a real
	// call. Since self-recursion is cut at the method's own frame,
	// shared control methods like ifTrue: and upTo:Do: never repeat on
	// the stack for non-recursive reasons.
	for _, a := range cp.inlineStack {
		if a == m.Ast {
			return false
		}
	}
	if len(cp.inlineStack) >= cp.cfg.InlineDepth+4 {
		return false
	}
	if cp.cfg.InlineMethods && len(cp.inlineStack) < cp.cfg.InlineDepth && astSize(m.Ast) <= cp.cfg.InlineBudget {
		return true
	}
	if cp.cfg.InlinePrimitives && isTrivialPrimMethod(m.Ast) {
		return true
	}
	if cp.cfg.TypePrediction && (rmap == cp.w.TrueObj.Map || rmap == cp.w.FalseObj.Map) {
		return true
	}
	return false
}

// inlineMethod splices a method body into the current graph with the
// receiver and arguments bound, creating a fresh scope (the paper's
// message inlining: "new variables for its formals and locals are
// created and added to the type mapping").
func (cp *compilation) inlineMethod(f *flow, meth *obj.Method, rr ir.Reg, args []ir.Reg, sc *scope) ([]*flow, ir.Reg) {
	a := meth.Ast
	if len(args) != len(a.Params) {
		cp.errorf("%s: selector %q: %d args for %d params", a.P, a.Sel, len(args), len(a.Params))
		return []*flow{f}, ir.NoReg
	}
	cp.inlineStack = append(cp.inlineStack, a)
	defer func() { cp.inlineStack = cp.inlineStack[:len(cp.inlineStack)-1] }()
	cp.stats.InlinedMethods++

	sc2 := &scope{kind: methodScope, vars: map[string]ir.Reg{}, params: map[string]bool{}}
	sc2.stackDepth = len(cp.inlineStack)
	sc2.selfReg = rr
	cp.track(rr)
	for i, p := range a.Params {
		// Alias each formal to the caller's argument register:
		// parameters are immutable, so this costs nothing and lets
		// type tests inside the callee refine the caller's variable —
		// the effect that hoists the n-is-integer test in §5.3.
		sc2.vars[p] = args[i]
		sc2.params[p] = true
		cp.track(args[i])
	}
	sc2.ret = &retCollector{resultReg: cp.newVarReg()}
	mark := cp.trackMark()

	flows := cp.declareLocals([]*flow{f}, sc2, a.Locals)
	flows, res := cp.compileBody(flows, a.Body, sc2)
	if res == ir.NoReg {
		res = rr // empty body returns self
	}
	out := cp.moveInto(flows, sc2.ret.resultReg, res)
	out = append(out, sc2.ret.flows...)
	cp.trackRelease(mark)
	out = cp.mergePolicy(out, sc2.ret.resultReg)
	return out, sc2.ret.resultReg
}

// inlineBlock splices a block body in, binding parameters; the block's
// lexical scope chain is reconstructed from its Blk type so free
// variables resolve to the defining activation's registers.
func (cp *compilation) inlineBlock(f *flow, bt types.Blk, args []ir.Reg, sel string) ([]*flow, ir.Reg) {
	blk := bt.B
	if len(args) != len(blk.Params) {
		cp.errorf("%s: block takes %d args, %q supplies %d", blk.P, len(blk.Params), sel, len(args))
		return []*flow{f}, ir.NoReg
	}
	parent, _ := bt.Scope.(*scope)
	sc2 := &scope{kind: blockScope, parent: parent, vars: map[string]ir.Reg{}, params: map[string]bool{}}
	sc2.selfReg = ir.NoReg // blocks share self with their home scope
	for i, p := range blk.Params {
		sc2.vars[p] = args[i]
		sc2.params[p] = true
		cp.track(args[i])
	}
	// The block's code is lexically the defining method's, not the
	// inlined callee's: mask the inline stack back to the defining
	// depth so the intervening methods can be inlined again inside it.
	saved := cp.inlineStack
	if parent != nil && parent.stackDepth < len(saved) {
		cp.inlineStack = append([]*ast.Method(nil), saved[:parent.stackDepth]...)
	}
	sc2.stackDepth = len(cp.inlineStack)
	mark := cp.trackMark()
	flows := cp.declareLocals([]*flow{f}, sc2, blk.Locals)
	flows, res := cp.compileBody(flows, blk.Body, sc2)
	cp.inlineStack = saved
	cp.trackRelease(mark)
	if res == ir.NoReg {
		// An empty block evaluates to nil.
		return cp.compileConst(flows, obj.Nil())
	}
	return flows, res
}

// materialize turns a deferred block literal into a real closure just
// before its value escapes the compiler's sight (into a send, a store,
// a call or a return). Variables the escaping block assigns become
// volatile: from here on the compiler knows nothing about them — the
// paper's "up-level assignments" source of the unknown type.
func (cp *compilation) materialize(f *flow, reg ir.Reg) {
	bt, ok := f.env.get(reg).(types.Blk)
	if !ok {
		return
	}
	n := cp.g.NewNode(ir.MkBlk)
	n.Dst = reg
	n.Blk = bt.B
	n.Caps = cp.scanCaptures(bt)
	// Blocks performing ^ need a home for the non-local return. When
	// the home method was inlined, a landing node marks where execution
	// resumes (the inlined epilogue) with the returned value.
	if bsc, ok := bt.Scope.(*scope); ok && blockHasReturn(bt.B) {
		if home := bsc.homeMethod(); home != nil && home != cp.topScope {
			if home.nlrLanding == nil {
				home.nlrLanding = cp.newMergeNode()
				home.ret.flows = append(home.ret.flows, &flow{
					from:     home.nlrLanding,
					env:      env{},
					uncommon: true,
				})
			}
			n.Landing = home.nlrLanding
			n.A = home.ret.resultReg
		}
	}
	cp.emit(f, n)
	f.env.set(reg, types.NewClass(cp.w.BlockMap, cp.intMap()))
	if sc, ok := bt.Scope.(*scope); ok {
		for _, name := range assignedUpNames(bt.B) {
			if r, up, found := sc.lookupVar(name); found && !up {
				cp.volatile[r] = true
			}
		}
	}
	cp.clobberVolatile(f)
}

// clobberVolatile forgets everything about registers an escaped
// closure may assign; called after every instruction that could run
// arbitrary code.
func (cp *compilation) clobberVolatile(f *flow) {
	for r := range cp.volatile {
		f.env.set(r, types.Unknown{})
		f.invalidateReg(r)
	}
}

// assignedUpNames lists the names a block (or its nested blocks)
// assigns.
func assignedUpNames(blk *ast.Block) []string {
	var out []string
	seen := map[string]bool{}
	var visit func(e ast.Expr, bound map[string]bool)
	visitBlock := func(b *ast.Block, bound map[string]bool) {
		inner := map[string]bool{}
		for k := range bound {
			inner[k] = true
		}
		for _, p := range b.Params {
			inner[p] = true
		}
		for _, l := range b.Locals {
			inner[l.Name] = true
		}
		for _, s := range b.Body {
			visit(s, inner)
		}
	}
	visit = func(e ast.Expr, bound map[string]bool) {
		switch n := e.(type) {
		case *ast.KeywordMsg:
			if n.Recv == nil && len(ast.SplitSelector(n.Sel)) == 1 {
				name := n.Sel[:len(n.Sel)-1]
				if !bound[name] && !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
			}
			if n.Recv != nil {
				visit(n.Recv, bound)
			}
			for _, a := range n.Args {
				visit(a, bound)
			}
		case *ast.UnaryMsg:
			visit(n.Recv, bound)
		case *ast.BinMsg:
			visit(n.Recv, bound)
			visit(n.Arg, bound)
		case *ast.PrimCall:
			visit(n.Recv, bound)
			for _, a := range n.Args {
				visit(a, bound)
			}
		case *ast.Return:
			visit(n.E, bound)
		case *ast.Block:
			visitBlock(n, bound)
		}
	}
	visitBlock(blk, map[string]bool{})
	return out
}

// scanCaptures computes the closure's captured variables: every free
// name of the block that resolves in its lexical scope, plus self.
func (cp *compilation) scanCaptures(bt types.Blk) []ir.Capture {
	sc, _ := bt.Scope.(*scope)
	if sc == nil {
		return nil
	}
	names := freeNames(bt.B)
	sort.Strings(names)
	var caps []ir.Capture
	for _, name := range names {
		if r, up, ok := sc.lookupVar(name); ok {
			caps = append(caps, ir.Capture{Name: name, Src: r, FromUp: up, ByValue: sc.isParam(name)})
		}
	}
	selfSc := sc.selfScope()
	if selfSc.compiledBlock {
		caps = append(caps, ir.Capture{Name: "self", FromUp: true, Src: ir.NoReg})
	} else {
		caps = append(caps, ir.Capture{Name: "self", Src: selfSc.selfReg})
	}
	return caps
}

// blockHasReturn reports whether the block (or any nested block)
// contains a ^ expression.
func blockHasReturn(blk *ast.Block) bool {
	found := false
	for _, s := range blk.Body {
		ast.Walk(s, func(e ast.Expr) {
			if _, ok := e.(*ast.Return); ok {
				found = true
			}
		})
	}
	return found
}

// freeNames lists names referenced by the block (reads and assignment
// targets) that are not bound by the block itself or a nested block.
func freeNames(blk *ast.Block) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(e ast.Expr, bound map[string]bool)
	addName := func(name string, bound map[string]bool) {
		if name == "self" || bound[name] || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	visitBlock := func(b *ast.Block, bound map[string]bool) {
		inner := map[string]bool{}
		for k := range bound {
			inner[k] = true
		}
		for _, p := range b.Params {
			inner[p] = true
		}
		for _, l := range b.Locals {
			inner[l.Name] = true
		}
		for _, s := range b.Body {
			visit(s, inner)
		}
	}
	visit = func(e ast.Expr, bound map[string]bool) {
		switch n := e.(type) {
		case *ast.Ident:
			addName(n.Name, bound)
		case *ast.UnaryMsg:
			visit(n.Recv, bound)
		case *ast.BinMsg:
			visit(n.Recv, bound)
			visit(n.Arg, bound)
		case *ast.KeywordMsg:
			if n.Recv == nil {
				parts := ast.SplitSelector(n.Sel)
				if len(parts) == 1 {
					addName(n.Sel[:len(n.Sel)-1], bound)
				}
			} else {
				visit(n.Recv, bound)
			}
			for _, a := range n.Args {
				visit(a, bound)
			}
		case *ast.PrimCall:
			visit(n.Recv, bound)
			for _, a := range n.Args {
				visit(a, bound)
			}
		case *ast.Return:
			visit(n.E, bound)
		case *ast.Block:
			visitBlock(n, bound)
		}
	}
	visitBlock(blk, map[string]bool{})
	return out
}

// astSize counts AST nodes, the inlining budget metric.
func astSize(m *ast.Method) int {
	n := 0
	for _, e := range m.Body {
		ast.Walk(e, func(ast.Expr) { n++ })
	}
	return n
}

// isTrivialPrimMethod recognizes one-statement primitive wrappers like
// "+ n = ( _IntAdd: n )" — the special selectors every generation of
// compiler (and ST-80) expands inline.
func isTrivialPrimMethod(m *ast.Method) bool {
	if len(m.Body) != 1 || len(m.Locals) != 0 {
		return false
	}
	pc, ok := m.Body[0].(*ast.PrimCall)
	if !ok {
		return false
	}
	simple := func(e ast.Expr) bool {
		switch e.(type) {
		case *ast.Ident, *ast.IntLit, *ast.StrLit, *ast.Block:
			return true
		}
		return false
	}
	if !simple(pc.Recv) {
		return false
	}
	for _, a := range pc.Args {
		if !simple(a) {
			return false
		}
	}
	return true
}

// isValueSel recognizes block invocation selectors.
func isValueSel(sel string, nargs int) bool {
	switch {
	case sel == "value" && nargs == 0:
		return true
	case sel == "value:" && nargs == 1:
		return true
	case strings.HasPrefix(sel, "value:") && strings.Count(sel, ":") == nargs:
		return sel == "value:"+strings.Repeat("Value:", nargs-1)
	}
	return false
}

// isBoolControlSel lists the selectors predicted to have boolean
// receivers.
func isBoolControlSel(sel string) bool {
	switch sel {
	case "ifTrue:", "ifFalse:", "ifTrue:False:", "ifFalse:True:",
		"and:", "or:", "not":
		return true
	}
	return false
}

// predictedType returns the type the selector's receiver is predicted
// to have (§2: "the receiver of a + message is nine times more likely
// to be a small integer than any other type").
func (cp *compilation) predictedType(sel string) types.Type {
	switch sel {
	case "+", "-", "*", "/", "%", "<", "<=", ">", ">=", "=", "!=",
		"min:", "max:", "succ", "pred", "abs", "negate",
		"to:Do:", "upTo:Do:", "downTo:Do:", "timesRepeat:", "rem:", "quo:":
		return types.FullRange()
	}
	if isBoolControlSel(sel) {
		return boolEither(cp.w)
	}
	return nil
}

// boolEither is the union {true, false}.
func boolEither(w *obj.World) types.Type {
	return types.Union{Elems: []types.Type{
		types.NewVal(w.Bool(true), w.TrueObj.Map),
		types.NewVal(w.Bool(false), w.FalseObj.Map),
	}}
}
