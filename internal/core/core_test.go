package core

import (
	"strings"
	"testing"

	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/parser"
	"selfgo/internal/prelude"
)

// buildWorld loads the prelude plus src into a fresh world.
func buildWorld(t *testing.T, src string) *obj.World {
	t.Helper()
	w := obj.NewWorld()
	for _, s := range []string{prelude.Source, src} {
		f, err := parser.ParseFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Load(f); err != nil {
			t.Fatal(err)
		}
	}
	w.Finalize()
	return w
}

// compileLobby compiles the lobby method named sel under cfg.
func compileLobby(t *testing.T, w *obj.World, cfg Config, sel string) (*ir.Graph, *Stats) {
	t.Helper()
	r := obj.Lookup(w.Lobby.Map, sel)
	if r == nil || r.Slot.Kind != obj.MethodSlot {
		t.Fatalf("no method %q", sel)
	}
	rmap := w.Lobby.Map
	if !cfg.Customization {
		rmap = nil
	}
	g, st, err := New(w, cfg).CompileMethod(r.Slot.Meth, rmap)
	if err != nil {
		t.Fatalf("compile %s: %v", sel, err)
	}
	return g, st
}

const triangleSrc = `triangleNumber: n = ( | sum <- 0 |
	1 upTo: n Do: [ :i | sum: sum + i ].
	sum ).`

// TestTriangleNumberMultiVersion reproduces the §5.3 worked example
// (F1): with multi-version loops the compiler emits a common-case loop
// version containing NO type tests (the gray box), plus a general
// version carrying the tests — effectively hoisting the n-is-integer
// test out of the loop.
func TestTriangleNumberMultiVersion(t *testing.T) {
	w := buildWorld(t, triangleSrc)
	g, st := compileLobby(t, w, NewSELFMultiLoop, "triangleNumber:")

	if st.LoopVersions != 2 {
		t.Fatalf("loop versions = %d, want 2\n%s", st.LoopVersions, g.Dump())
	}
	// Partition the loop bodies: walk from each LoopHead to the back
	// edge counting type tests on the common (non-uncommon) path.
	var heads []*ir.Node
	for _, n := range g.Reachable() {
		if n.Op == ir.LoopHead {
			heads = append(heads, n)
		}
	}
	if len(heads) != 2 {
		t.Fatalf("found %d loop heads", len(heads))
	}
	counts := map[*ir.Node]int{}
	for _, h := range heads {
		seen := map[*ir.Node]bool{}
		var walk func(n *ir.Node)
		walk = func(n *ir.Node) {
			if n == nil || seen[n] || (n.Op == ir.LoopHead && n != h) {
				return
			}
			seen[n] = true
			if n.Op == ir.TypeTest && !n.Uncommon {
				counts[h]++
			}
			for _, s := range n.Succ {
				if s != nil && !s.Uncommon {
					walk(s)
				}
			}
		}
		walk(h)
	}
	var common *ir.Node
	for _, h := range heads {
		if strings.Contains(h.Note, "common-case") {
			common = h
		}
	}
	if common == nil {
		t.Fatalf("no head marked common-case\n%s", g.Dump())
	}
	if counts[common] != 0 {
		t.Errorf("common-case loop version contains %d type tests, want 0 (the §5.3 gray box)\n%s",
			counts[common], g.Dump())
	}
	for _, h := range heads {
		if h != common && counts[h] == 0 {
			t.Errorf("general loop version has no type tests — nothing was hoisted")
		}
	}
	// §5.3: the remaining overflow check on sum cannot be eliminated;
	// the increment's check is removed by range analysis.
	if st.RemovedOvfl == 0 {
		t.Error("range analysis removed no overflow checks")
	}
}

// TestIterativeAnalysisIterates checks §5.1: the loop body is
// recompiled until the fix-point (at least two iterations for the
// constant-seeded counter of triangleNumber).
func TestIterativeAnalysisIterates(t *testing.T) {
	w := buildWorld(t, triangleSrc)
	_, st := compileLobby(t, w, NewSELF, "triangleNumber:")
	if st.LoopIterations < 2 {
		t.Errorf("loop iterations = %d, want >= 2", st.LoopIterations)
	}
	// The paper's generalization rule reaches the fix-point quickly.
	if st.LoopIterations > 8 {
		t.Errorf("loop iterations = %d: generalization failed to converge quickly", st.LoopIterations)
	}
}

// TestPessimisticLoops checks that the old compiler's strategy leaves
// the loop-carried variables unknown: type tests remain in the loop.
func TestPessimisticLoops(t *testing.T) {
	w := buildWorld(t, triangleSrc)
	gOld, stOld := compileLobby(t, w, OldSELF89, "triangleNumber:")
	gNew, _ := compileLobby(t, w, NewSELF, "triangleNumber:")
	if stOld.LoopIterations != 0 {
		// pessimize runs discovery simulations but no iterative
		// refinement is recorded as iterations
		t.Logf("note: old compiler recorded %d iterations", stOld.LoopIterations)
	}
	oldTests := gOld.ComputeStats().TypeTests
	newTests := gNew.ComputeStats().TypeTests
	// Static counts are similar, but the OLD graph tests the counter
	// and accumulator inside the loop; the new one proves them integer.
	// Compare dynamic shape instead: the new graph removes at least one
	// overflow check that the old one keeps.
	oldOvfl := gOld.ComputeStats().OverflowChecks
	newOvfl := gNew.ComputeStats().OverflowChecks
	if newOvfl >= oldOvfl {
		t.Errorf("overflow checks: new %d vs old %d — range analysis bought nothing", newOvfl, oldOvfl)
	}
	_ = oldTests
	_ = newTests
}

// TestPrimitiveInliningChecks (F2) verifies §3.2.3 at the graph level:
// unknown operands keep both type tests and the overflow check; known
// small ranges eliminate all three.
func TestPrimitiveInliningChecks(t *testing.T) {
	w := buildWorld(t, `
		addUnknown: a And: b = ( a _IntAdd: b ).
		addKnown = ( | x <- 3. y <- 4 | x _IntAdd: y ).
		addHalfKnown: b = ( 3 _IntAdd: b ).
	`)
	g, _ := compileLobby(t, w, NewSELF, "addUnknown:And:")
	s := g.ComputeStats()
	if s.TypeTests != 2 {
		t.Errorf("addUnknown: %d type tests, want 2 (receiver and argument)\n%s", s.TypeTests, g.Dump())
	}
	if s.OverflowChecks != 1 {
		t.Errorf("addUnknown: %d overflow checks, want 1", s.OverflowChecks)
	}

	g, st := compileLobby(t, w, NewSELF, "addKnown")
	s = g.ComputeStats()
	if s.TypeTests != 0 || s.OverflowChecks != 0 {
		t.Errorf("addKnown: %d tests, %d overflow checks, want 0/0 (constant folding)\n%s",
			s.TypeTests, s.OverflowChecks, g.Dump())
	}
	if st.FoldedPrims == 0 {
		t.Error("addKnown: primitive was not constant-folded")
	}

	g, _ = compileLobby(t, w, NewSELF, "addHalfKnown:")
	s = g.ComputeStats()
	if s.TypeTests != 1 {
		t.Errorf("addHalfKnown: %d type tests, want 1 (argument only)", s.TypeTests)
	}
}

// TestComparisonFoldingOnRanges checks §3.2.3's range-based folding:
// comparing provably-disjoint subranges compiles to a constant.
func TestComparisonFoldingOnRanges(t *testing.T) {
	w := buildWorld(t, `
		cmp = ( | a <- 3. b <- 100 | (a < b) ifTrue: [ 1 ] False: [ 2 ] ).
	`)
	g, _ := compileLobby(t, w, NewSELF, "cmp")
	for _, n := range g.Reachable() {
		if n.Op == ir.CmpBr {
			t.Errorf("comparison was not folded:\n%s", g.Dump())
			break
		}
	}
}

// TestExtendedSplitting (F3) reproduces the §4 figure: a merge dilutes
// the type of x, and a later send of a predicted selector must either
// be split back (extended splitting: no run-time test of x after the
// merge on the common path... the split versions know the type) or
// re-test at run time.
func TestExtendedSplitting(t *testing.T) {
	// x is 3 or 4 after the conditional — an integer either way, but
	// through a merge. Intervening statements separate the merge from
	// the use, so local splitting alone cannot recover the type.
	src := `
	split: c = ( | x. pad <- 0 |
		(c = 0) ifTrue: [ x: 3 ] False: [ x: 4 ].
		pad: pad + 1.
		pad: pad + 2.
		x + 10 ).`
	w := buildWorld(t, src)

	// With extended splitting the x+10 send is compiled on both arms:
	// no type test of x survives (both arms know x exactly), and the
	// compiler records kept splits.
	g, st := compileLobby(t, w, NewSELF, "split:")
	testsOnX := 0
	for _, n := range g.Reachable() {
		if n.Op == ir.TypeTest && !n.Uncommon {
			testsOnX++
		}
	}
	// The only legitimate test is on c (argument of =); x needs none.
	if testsOnX > 1 {
		t.Errorf("extended splitting left %d common-path type tests, want <= 1 (only on c)\n%s", testsOnX, g.Dump())
	}
	if st.Splits == 0 {
		t.Error("no splits recorded under extended splitting")
	}

	// Without extended splitting the merge forms, the constants are
	// merged, and the + must re-discover x's type at run time.
	cfg := NewSELF
	cfg.Name = "no-ext"
	cfg.ExtendedSplitting = false
	g2, _ := compileLobby(t, w, cfg, "split:")
	testsNoExt := 0
	for _, n := range g2.Reachable() {
		if n.Op == ir.TypeTest && !n.Uncommon {
			testsNoExt++
		}
	}
	if testsNoExt <= testsOnX {
		t.Errorf("disabling extended splitting should add type tests: ext=%d noext=%d", testsOnX, testsNoExt)
	}
}

// TestSplitBudgetForcesMerge: a tiny copied-node threshold forces the
// compiler to merge (forming merge types) instead of splitting.
func TestSplitBudgetForcesMerge(t *testing.T) {
	src := `
	split: c = ( | x |
		(c = 0) ifTrue: [ x: 3 ] False: [ x: 4 ].
		c print. c print. c print. c print. c print. c print.
		x + 10 ).`
	w := buildWorld(t, src)
	cfg := NewSELF
	cfg.SplitNodeThreshold = 2
	_, st := compileLobby(t, w, cfg, "split:")
	if st.ForcedMerges == 0 {
		t.Error("tiny split budget never forced a merge")
	}
}

// TestTypePredictionInsertsTest: a + on an unknown receiver gets an
// integer type test with the true send out of line (§3.2.2).
func TestTypePredictionInsertsTest(t *testing.T) {
	w := buildWorld(t, `bump: x = ( x + 1 ).`)
	g, _ := compileLobby(t, w, NewSELF, "bump:")
	var hasIntTest, hasUncommonSend bool
	for _, n := range g.Reachable() {
		if n.Op == ir.TypeTest && n.TestMap == w.IntMap {
			hasIntTest = true
		}
		if n.Op == ir.Send && n.Uncommon && n.Sel == "+" {
			hasUncommonSend = true
		}
	}
	if !hasIntTest {
		t.Errorf("no integer type test inserted:\n%s", g.Dump())
	}
	if !hasUncommonSend {
		t.Errorf("the non-integer case should be an out-of-line send:\n%s", g.Dump())
	}
}

// TestCustomizationKnowsReceiver: under customization a method sees its
// receiver's map, so self sends inline with zero dynamic sends; without
// customization (ST-80) the self send stays dynamic.
func TestCustomizationKnowsReceiver(t *testing.T) {
	src := `
	o = (| parent* = lobby. double = ( two * 2 ). two = ( 2 ) |).
	`
	w := buildWorld(t, src)
	ov, _ := w.GlobalValue("o")
	r := obj.Lookup(ov.Obj().Map, "double")

	g, _, err := New(w, NewSELF).CompileMethod(r.Slot.Meth, ov.Obj().Map)
	if err != nil {
		t.Fatal(err)
	}
	// Customization: self's map is known, "two" inlines to a constant,
	// and the multiply folds: no sends anywhere, common or uncommon.
	if s := g.ComputeStats(); s.Sends != 0 {
		t.Errorf("customized compile kept %d dynamic sends\n%s", s.Sends, g.Dump())
	}

	g2, _, err := New(w, ST80).CompileMethod(r.Slot.Meth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := g2.ComputeStats(); s.Sends == 0 {
		t.Errorf("uncustomized compile should keep a dynamic send\n%s", g2.Dump())
	}
}

// TestBoundsChecksRemain documents the §7 limitation our reproduction
// shares with the paper: the upper array bounds check survives because
// the index range overlaps the (unknown) vector length.
func TestBoundsChecksRemain(t *testing.T) {
	w := buildWorld(t, `
	sumVec: n = ( | s <- 0. v |
		v: vector copySize: n.
		0 upTo: n Do: [ :i | s: s + (v at: i) ].
		s ).`)
	g, _ := compileLobby(t, w, NewSELF, "sumVec:")
	s := g.ComputeStats()
	if s.BoundsChecks == 0 {
		t.Errorf("expected a surviving upper bounds check\n%s", g.Dump())
	}
	// The lower bound (i >= 0) is provable by range analysis: only the
	// upper check should remain per at: on the common path.
	for _, n := range g.Reachable() {
		if n.Op == ir.CmpBr && strings.HasPrefix(n.Note, "bounds(lower)") && !n.Uncommon {
			t.Errorf("lower bounds check not eliminated by range analysis:\n%s", g.Dump())
		}
	}
	// And the C stand-in drops them all.
	gc, _ := compileLobby(t, w, StaticIdealC, "sumVec:")
	if sc := gc.ComputeStats(); sc.BoundsChecks != 0 {
		t.Errorf("static-ideal kept %d bounds checks", sc.BoundsChecks)
	}
}

// TestUncommonCodeOutOfLine: assembled failure paths land after the
// main body (the paper's out-of-line failure blocks).
func TestUncommonCodeOutOfLine(t *testing.T) {
	w := buildWorld(t, `bump: x = ( x + 1 ).`)
	g, _ := compileLobby(t, w, NewSELF, "bump:")
	// Find positions: every common node's reachable-order index must
	// precede the first uncommon Send in the assembled code. We check
	// via the ir dump ordering after assembly in vm tests; here, just
	// assert the uncommon markers exist.
	uncommon := 0
	for _, n := range g.Reachable() {
		if n.Uncommon {
			uncommon++
		}
	}
	if uncommon == 0 {
		t.Error("no uncommon nodes marked")
	}
}

// TestStaticIdealHasNoChecks: the optimized-C stand-in compiles the
// triangleNumber loop to the §5.3 "gray box" with nothing but moves,
// compares and adds.
func TestStaticIdealHasNoChecks(t *testing.T) {
	w := buildWorld(t, triangleSrc)
	g, _ := compileLobby(t, w, StaticIdealC, "triangleNumber:")
	s := g.ComputeStats()
	if s.TypeTests != 0 || s.OverflowChecks != 0 || s.Sends != 0 || s.BoundsChecks != 0 {
		t.Errorf("static ideal kept checks: %+v\n%s", s, g.Dump())
	}
}

// TestMergeTypesKeepIdentity: after a forced merge of int with unknown,
// prediction still splits the + (the merge type retains the integer
// constituent, so the test is against int, not a blind guess).
func TestMergeTypesKeepIdentity(t *testing.T) {
	w := buildWorld(t, `
	m: c With: u = ( | x |
		(c = 0) ifTrue: [ x: 3 ] False: [ x: u ].
		x + 1 ).`)
	cfg := NewSELF
	cfg.ExtendedSplitting = false // force the merge
	g, _ := compileLobby(t, w, cfg, "m:With:")
	// x is merge{int, ?}: the + needs exactly one test on x.
	var tests int
	for _, n := range g.Reachable() {
		if n.Op == ir.TypeTest && n.TestMap == w.IntMap && !n.Uncommon {
			tests++
		}
	}
	if tests == 0 {
		t.Errorf("no integer test on the merged receiver:\n%s", g.Dump())
	}
}

// TestInlineBudgetRespected: a method bigger than the budget compiles
// as a call, not inline.
func TestInlineBudgetRespected(t *testing.T) {
	big := `big = ( 1 print. 2 print. 3 print. 4 print. 5 print. 6 print. 7 print. 8 print. 9 print. 10 print. 0 ).
	        go = ( big ).`
	w := buildWorld(t, big)
	cfg := NewSELF
	cfg.InlineBudget = 5
	g, _ := compileLobby(t, w, cfg, "go")
	var hasCall bool
	for _, n := range g.Reachable() {
		if n.Op == ir.Call && n.Callee.Sel == "big" {
			hasCall = true
		}
	}
	if !hasCall {
		t.Errorf("oversized method was inlined despite the budget:\n%s", g.Dump())
	}
}

// TestRecursionCompilesAsCall: self-recursion cannot unroll forever.
func TestRecursionCompilesAsCall(t *testing.T) {
	w := buildWorld(t, `f: n = ( (n = 0) ifTrue: [ 0 ] False: [ f: n - 1 ] ).`)
	g, _ := compileLobby(t, w, NewSELF, "f:")
	var hasSelfCall bool
	for _, n := range g.Reachable() {
		if n.Op == ir.Call && n.Callee.Sel == "f:" {
			hasSelfCall = true
		}
	}
	if !hasSelfCall {
		t.Errorf("recursive send neither called nor bounded:\n%s", g.Dump())
	}
}

// TestLoopVersionStats: multi-version only splits when merge types
// arise; a loop over fully-known types stays single-version.
func TestLoopVersionStats(t *testing.T) {
	w := buildWorld(t, `go = ( | s <- 0 | 1 upTo: 10 Do: [ :i | s: s + i ]. s ).`)
	_, st := compileLobby(t, w, NewSELFMultiLoop, "go")
	// sum's overflow failure path still introduces {int, ?}, so two
	// versions are expected here too — but a loop with no failure
	// paths stays single-version:
	if st.LoopVersions == 0 {
		t.Fatal("no loops compiled")
	}
	w2 := buildWorld(t, `go2 = ( | s <- 0 | 1 upTo: 10 Do: [ :i | s: i ]. s ).`)
	_, st2 := compileLobby(t, w2, NewSELFMultiLoop, "go2")
	if st2.LoopVersions != 1 {
		t.Errorf("assignment-only loop compiled %d versions, want 1", st2.LoopVersions)
	}
}

// TestComparisonFactsEliminateRepeatedBounds exercises the §7
// future-work extension on the guarded-access pattern the paper
// describes: "the index is still always less than the array length, and
// so the array bounds check can be eliminated". The guard's comparison
// proves the fact the body's upper bounds checks need; the loaded
// vector length is also reused.
func TestComparisonFactsEliminateRepeatedBounds(t *testing.T) {
	src := `
	bump: n = ( | v |
		v: vector copySize: 10.
		(n < v size) ifTrue: [
			v at: n Put: (v at: n) + 1 ].
		v size ).`
	w := buildWorld(t, src)

	factsOnly := NewSELF
	factsOnly.Name = "new SELF + comparison facts"
	factsOnly.ComparisonFacts = true

	countUpper := func(g *ir.Graph) int {
		n := 0
		for _, nd := range g.Reachable() {
			if nd.Op == ir.CmpBr && strings.HasPrefix(nd.Note, "bounds(upper)") && !nd.Uncommon {
				n++
			}
		}
		return n
	}
	base, _ := compileLobby(t, w, NewSELF, "bump:")
	ext, _ := compileLobby(t, w, factsOnly, "bump:")
	nBase := countUpper(base)
	nExt := countUpper(ext)
	if nBase < 2 {
		t.Fatalf("baseline has %d upper bounds checks, expected >= 2 (at: and at:Put:)\n%s", nBase, base.Dump())
	}
	if nExt != 0 {
		t.Errorf("comparison facts left %d upper bounds checks (base %d)\n%s", nExt, nBase, ext.Dump())
	}
	// The lower checks must remain: the guard proves nothing about
	// negative indices.
	lower := 0
	for _, nd := range ext.Reachable() {
		if nd.Op == ir.CmpBr && strings.HasPrefix(nd.Note, "bounds(lower)") && !nd.Uncommon {
			lower++
		}
	}
	if lower == 0 {
		t.Error("the extension must not remove the lower bounds checks here")
	}
}

// TestComparisonFactsSound: the extension must not change results even
// when the index pattern would tempt a stale fact (reassignment
// invalidates).
func TestComparisonFactsSound(t *testing.T) {
	src := `
	go = ( | v. i <- 0. s <- 0 |
		v: vector copySize: 4 FillWith: 5.
		[ i < v size ] whileTrue: [
			s: s + (v at: i).
			i: i + 1 ].
		s ).`
	w := buildWorld(t, src)
	factsOnly := NewSELF
	factsOnly.ComparisonFacts = true
	// Execution-level equivalence is covered by the public-API suite;
	// here we just require both compiles to succeed and the extension
	// to never *add* checks.
	gBase, _ := compileLobby(t, w, NewSELF, "go")
	gExt, _ := compileLobby(t, w, factsOnly, "go")
	if gExt.ComputeStats().BoundsChecks > gBase.ComputeStats().BoundsChecks {
		t.Error("extension added bounds checks")
	}
}
