package core

import (
	"reflect"
	"testing"

	"selfgo/internal/ir"
	"selfgo/internal/obj"
	"selfgo/internal/types"
)

// counterSrc defines an object with a non-predicted selector and a
// lobby method that sends it to a statically-unknown receiver (the
// argument) — the shape where the eager compiler must emit a dynamic
// send but harvested feedback lets a recompile test-and-inline.
const counterSrc = `
counter = (| parent* = lobby.
    n <- 0.
    bump = ( n: n + 1. n ).
|).
poke: c = ( c bump ).`

func lobbyMethod(t *testing.T, w *obj.World, sel string) *obj.Method {
	t.Helper()
	r := obj.Lookup(w.Lobby.Map, sel)
	if r == nil || r.Slot.Kind != obj.MethodSlot {
		t.Fatalf("no method %q", sel)
	}
	return r.Slot.Meth
}

func constObjMap(t *testing.T, w *obj.World, name string) *obj.Map {
	t.Helper()
	r := obj.Lookup(w.Lobby.Map, name)
	if r == nil || r.Slot.Value.Obj() == nil {
		t.Fatalf("no object %q on the lobby", name)
	}
	return r.Slot.Value.Obj().Map
}

func countNodes(g *ir.Graph, pred func(*ir.Node) bool) int {
	n := 0
	for _, nd := range g.Reachable() {
		if pred(nd) {
			n++
		}
	}
	return n
}

// TestFeedbackSplitInlinesObservedReceiver: compiling poke: with no
// feedback leaves `c bump` as a dynamic send; seeding the observed
// receiver map turns it into a type test whose passing branch inlines
// bump, with the dynamic send only on the fall-through — and the
// FeedbackTests stat witnesses the inserted test.
func TestFeedbackSplitInlinesObservedReceiver(t *testing.T) {
	w := buildWorld(t, counterSrc)
	meth := lobbyMethod(t, w, "poke:")
	cmap := constObjMap(t, w, "counter")

	isBump := func(n *ir.Node) bool { return n.Op == ir.Send && n.Sel == "bump" && !n.Direct }
	isTest := func(n *ir.Node) bool { return n.Op == ir.TypeTest && n.TestMap == cmap }

	// Cold compile: receiver unknown, no feedback — dynamic send, no
	// test against counter's map, nothing inlined.
	cold, coldSt, err := New(w, NewSELF).compileMethodFB(meth, w.Lobby.Map, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coldSt.FeedbackTests != 0 {
		t.Errorf("cold compile inserted %d feedback tests", coldSt.FeedbackTests)
	}
	if got := countNodes(cold, isBump); got != 1 {
		t.Fatalf("cold compile: %d dynamic bump sends, want 1\n%s", got, cold.Dump())
	}
	if got := countNodes(cold, isTest); got != 0 {
		t.Errorf("cold compile tests against counter's map without feedback")
	}

	// Hot recompile with feedback: what Harvest would return after the
	// send site observed counter instances.
	fb := types.NewFeedback()
	fb.Add("bump", cmap)
	hot, hotSt, err := New(w, NewSELF).compileMethodFB(meth, w.Lobby.Map, fb)
	if err != nil {
		t.Fatal(err)
	}
	if hotSt.FeedbackTests != 1 {
		t.Errorf("FeedbackTests = %d, want 1", hotSt.FeedbackTests)
	}
	if got := countNodes(hot, isTest); got != 1 {
		t.Fatalf("feedback compile: %d type tests against counter's map, want 1\n%s", got, hot.Dump())
	}
	if hotSt.InlinedMethods < 1 {
		t.Errorf("feedback compile inlined %d methods; bump should inline on the tested branch", hotSt.InlinedMethods)
	}
	// The fall-through keeps a sound dynamic send for unobserved
	// receivers; the tested branch must not re-dispatch bump.
	if got := countNodes(hot, isBump); got != 1 {
		t.Errorf("feedback compile: %d dynamic bump sends, want exactly the fall-through one\n%s", got, hot.Dump())
	}
}

// TestFeedbackNilIsBitIdentical: compileMethodFB with nil feedback is
// exactly CompileMethod — the guarantee that lets -tier=opt share the
// pipeline code path and stay bit-identical.
func TestFeedbackNilIsBitIdentical(t *testing.T) {
	w := buildWorld(t, counterSrc)
	meth := lobbyMethod(t, w, "poke:")
	g1, st1, err := New(w, NewSELF).compileMethodFB(meth, w.Lobby.Map, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, st2, err := New(w, NewSELF).CompileMethod(meth, w.Lobby.Map)
	if err != nil {
		t.Fatal(err)
	}
	st1.Duration, st2.Duration = 0, 0
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("stats diverge: %+v vs %+v", st1, st2)
	}
	if g1.Dump() != g2.Dump() {
		t.Errorf("graphs diverge:\n%s\nvs\n%s", g1.Dump(), g2.Dump())
	}
}

// TestFeedbackMegamorphicStaysDynamic: feedback listing several maps
// chains tests in observation order but still ends in a dynamic send;
// an empty feedback object changes nothing.
func TestFeedbackMultipleMaps(t *testing.T) {
	src := counterSrc + `
gauge = (| parent* = lobby.
    m <- 0.
    bump = ( m: m + 2. m ).
|).`
	w := buildWorld(t, src)
	meth := lobbyMethod(t, w, "poke:")
	cmap := constObjMap(t, w, "counter")
	gmap := constObjMap(t, w, "gauge")

	fb := types.NewFeedback()
	fb.Add("bump", cmap)
	fb.Add("bump", gmap)
	g, st, err := New(w, NewSELF).compileMethodFB(meth, w.Lobby.Map, fb)
	if err != nil {
		t.Fatal(err)
	}
	if st.FeedbackTests != 2 {
		t.Errorf("FeedbackTests = %d, want 2", st.FeedbackTests)
	}
	tests := countNodes(g, func(n *ir.Node) bool {
		return n.Op == ir.TypeTest && (n.TestMap == cmap || n.TestMap == gmap)
	})
	if tests != 2 {
		t.Errorf("%d chained type tests, want 2\n%s", tests, g.Dump())
	}
	if st.InlinedMethods < 2 {
		t.Errorf("inlined %d methods, want both bump bodies", st.InlinedMethods)
	}
	if dyn := countNodes(g, func(n *ir.Node) bool { return n.Op == ir.Send && n.Sel == "bump" && !n.Direct }); dyn != 1 {
		t.Errorf("%d dynamic fall-through sends, want 1\n%s", dyn, g.Dump())
	}

	empty := types.NewFeedback()
	ge, ste, err := New(w, NewSELF).compileMethodFB(meth, w.Lobby.Map, empty)
	if err != nil {
		t.Fatal(err)
	}
	gn, stn, err := New(w, NewSELF).compileMethodFB(meth, w.Lobby.Map, nil)
	if err != nil {
		t.Fatal(err)
	}
	ste.Duration, stn.Duration = 0, 0
	if !reflect.DeepEqual(ste, stn) || ge.Dump() != gn.Dump() {
		t.Errorf("empty feedback is not a no-op")
	}
}
