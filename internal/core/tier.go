package core

import (
	"fmt"
	"reflect"
)

// Tier is a first-class compilation tier: a named transformation of a
// base Config. The optimizing tier is the configuration itself (the
// paper's eager compiler); the baseline tier is the cheap first tier
// of the adaptive system (compile fast, count executions, recompile
// hot methods at the optimizing tier with type feedback); the degraded
// tier is the fault-containment fallback used when an optimizing
// compilation fails or panics.
//
// Every tier is derived from the single tierTable below, so a new
// Config knob cannot silently be dropped from one tier's derivation:
// the table names every field exactly once (enforced by a reflection
// test), and Apply refuses fields the table does not know.
type Tier int

const (
	// TierDegraded is the fault-containment fallback: splitting,
	// method inlining, type and range analysis, multi-version loops,
	// comparison facts and the static-ideal check removal are switched
	// off, landing on the simple, well-exercised ST-80-shaped
	// repertoire (robust inlined primitives, special-selector
	// prediction, pessimistic loops). Degraded code is slower but
	// carries every run-time check, so a bug in an optimization pass
	// degrades one method's code quality instead of failing the
	// request.
	TierDegraded Tier = iota

	// TierBaseline is the cheap first tier of adaptive compilation:
	// like the degraded tier it skips type analysis, method inlining
	// and iterative loops, but it keeps local splitting (the '89
	// compiler's cheap one-merge-deep form) and a slightly wider flow
	// budget — fast to compile, honest about every check, and leaving
	// user-method sends as dispatched calls whose inline caches feed
	// the optimizing recompile.
	TierBaseline

	// TierOptimizing is the configuration as given: the paper's full
	// eager repertoire (whatever the preset enables). Apply is the
	// identity for this tier.
	TierOptimizing

	// TierNative is the top tier: the optimizing configuration with the
	// closure-threaded native backend switched on (Config.NativeBackend
	// — see internal/vm/backend_native.go). The front end is untouched,
	// so native code is instruction-for-instruction the optimizing
	// tier's stream; only the execution engine changes, and the native
	// differential oracle pins every modelled quantity bit-identical.
	TierNative
)

func (t Tier) String() string {
	switch t {
	case TierDegraded:
		return "degraded"
	case TierBaseline:
		return "baseline"
	case TierOptimizing:
		return "optimizing"
	case TierNative:
		return "native"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// keep is the tierTable marker for "inherit the base Config's value".
type keepT struct{}

var keep keepT

// tierRule says what each non-optimizing tier does to one Config
// field: keep the base value, or force the given one. The optimizing
// tier always keeps everything; the native tier keeps everything too
// except the backend-selection knob it exists to set.
type tierRule struct {
	Field    string
	Baseline any
	Degraded any
	Native   any
}

// tierTable is the single source of truth for tier derivation. It must
// name every Config field exactly once — TestTierTableCoversConfig
// fails the build's test run when a new knob is added without deciding
// what the baseline, degraded and native tiers do with it.
var tierTable = []tierRule{
	{"Name", keep, keep, keep}, // Apply appends the tier suffix itself
	{"Customization", keep, keep, keep},
	{"TypeAnalysis", false, false, keep},
	{"RangeAnalysis", false, false, keep},
	{"TypePrediction", keep, keep, keep},
	{"InlineMethods", false, false, keep},
	{"InlinePrimitives", keep, keep, keep},
	{"LocalSplitting", keep, false, keep},
	{"ExtendedSplitting", false, false, keep},
	{"SplitNodeThreshold", keep, keep, keep},
	{"MaxFlows", 4, 2, keep},
	{"IterativeLoops", false, false, keep},
	{"MultiVersionLoops", false, false, keep},
	{"MaxLoopIterations", 1, 1, keep},
	{"InlineDepth", 1, 1, keep},
	{"InlineBudget", 0, 0, keep},
	{"StaticIdeal", false, false, keep},
	{"CallSiteICMissHandlers", keep, keep, keep},
	{"PolymorphicInlineCaches", keep, keep, keep},
	{"SendOverheadExtra", keep, keep, keep},
	{"ComparisonFacts", false, false, keep},
	{"AnnotateTypes", false, false, keep},
	{"NoSuperinstructions", keep, keep, keep},
	{"PerInstrOverhead", keep, keep, keep},
	// The lower tiers must run the interpreter even when the base
	// config asks for the native backend: baseline code exists to be
	// cheap to produce and to feed inline caches, and degraded code is
	// the fault-containment path — both stay on the well-exercised
	// switch loop.
	{"NativeBackend", false, false, true},
	// The degraded tier is the fault-containment path: it falls back
	// to the eager-split world (no version tables, no run-time
	// specialization machinery) so a bug in BBV materialization
	// degrades code quality instead of the request. Baseline keeps the
	// strategy: cheap stub code is exactly what BBV wants to version.
	{"Strategy", keep, StrategySplit, keep},
	{"MaxVers", keep, keep, keep},
}

// Apply derives the tier's configuration from base. TierOptimizing
// returns base unchanged (the differential tests pin this: an opt-tier
// system is bit-identical to compiling base directly). Other tiers
// rewrite each field per tierTable and suffix the name.
func (t Tier) Apply(base Config) Config {
	if t == TierOptimizing {
		return base
	}
	c := base
	v := reflect.ValueOf(&c).Elem()
	for _, r := range tierTable {
		var act any
		switch t {
		case TierDegraded:
			act = r.Degraded
		case TierNative:
			act = r.Native
		default:
			act = r.Baseline
		}
		if _, isKeep := act.(keepT); isKeep {
			continue
		}
		f := v.FieldByName(r.Field)
		if !f.IsValid() {
			panic("core: tier table names unknown Config field " + r.Field)
		}
		f.Set(reflect.ValueOf(act).Convert(f.Type()))
	}
	c.Name = base.Name + " (" + t.String() + ")"
	return c
}
