// Package token defines the lexical tokens of the SELF-like source
// language accepted by selfgo, together with source positions.
//
// The dialect follows SELF'90 syntax closely: double-quoted comments,
// single-quoted strings, unary/binary/keyword selectors, object and
// block literals, slot lists, and primitive selectors beginning with an
// underscore (for example _IntAdd:IfFail:).
package token

import "fmt"

// Kind enumerates the lexical token kinds.
type Kind int

// Token kinds.
const (
	// Special.
	EOF Kind = iota
	Illegal

	// Literals and names.
	Int         // 123, -17 (sign handled by parser), 16r1F
	String      // 'hello'
	Ident       // lower-case identifier: unary selector or variable
	Keyword     // identifier followed by a colon: at:, ifTrue:
	CapKeyword  // capitalized keyword continuing a selector: Put:, IfFail:
	Primitive   // _IntAdd (unary primitive selector)
	PrimKeyword // _IntAdd: (keyword primitive selector part)
	BinOp       // + - * / % < > <= >= = != & |(only in binop position)

	// Punctuation.
	LParen    // (
	RParen    // )
	LBracket  // [
	RBracket  // ]
	LSlotList // (| — begins an object literal's slot list
	VBar      // |
	Dot       // .
	Semi      // ;  (cascades are not supported; reserved)
	Caret     // ^
	Colon     // : (only as block-argument marker, e.g. [ :i | ... ])
	Arrow     // <- (data slot initializer)
	Eq        // =  (constant slot initializer; also binary = inside code)
	Star      // * (parent slot suffix; also binary * inside code)
)

var kindNames = map[Kind]string{
	EOF:         "EOF",
	Illegal:     "Illegal",
	Int:         "Int",
	String:      "String",
	Ident:       "Ident",
	Keyword:     "Keyword",
	CapKeyword:  "CapKeyword",
	Primitive:   "Primitive",
	PrimKeyword: "PrimKeyword",
	BinOp:       "BinOp",
	LParen:      "LParen",
	RParen:      "RParen",
	LBracket:    "LBracket",
	RBracket:    "RBracket",
	LSlotList:   "LSlotList",
	VBar:        "VBar",
	Dot:         "Dot",
	Semi:        "Semi",
	Caret:       "Caret",
	Colon:       "Colon",
	Arrow:       "Arrow",
	Eq:          "Eq",
	Star:        "Star",
}

// String returns the name of the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String formats a position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text; for String, the decoded contents
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Text == "" {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
}
