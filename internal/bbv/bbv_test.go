package bbv

import (
	"fmt"
	"testing"

	"selfgo/internal/obj"
)

func testMaps(n int) []*obj.Map {
	out := make([]*obj.Map, n)
	for i := range out {
		out[i] = &obj.Map{ID: i + 1, Name: fmt.Sprintf("m%d", i+1)}
	}
	return out
}

func TestContextWithGetWithout(t *testing.T) {
	m := testMaps(3)
	c := EmptyContext()
	if c.Len() != 0 || c.Key() != "" || c.UsesShape() || c.Generation() != NoShapeGen {
		t.Fatalf("empty context: len=%d key=%q usesShape=%v gen=%d", c.Len(), c.Key(), c.UsesShape(), c.Generation())
	}
	c = c.With(3, m[0], false, NoShapeGen)
	c = c.With(1, m[1], false, NoShapeGen)
	c = c.With(7, m[2], false, NoShapeGen)
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Facts come back sorted by register regardless of insertion order.
	for i, want := range []struct {
		reg int32
		m   *obj.Map
	}{{1, m[1]}, {3, m[0]}, {7, m[2]}} {
		f := c.Get(want.reg)
		if f == nil || f.Map != want.m {
			t.Fatalf("fact %d (reg %d): got %+v, want map %s", i, want.reg, f, want.m.Name)
		}
	}
	if c.Get(2) != nil || c.Get(0) != nil || c.Get(100) != nil {
		t.Fatal("Get on absent registers must return nil")
	}
	// Overwrite keeps the set size and replaces the map.
	c2 := c.With(3, m[2], false, NoShapeGen)
	if c2.Len() != 3 || c2.Get(3).Map != m[2] {
		t.Fatalf("overwrite: len=%d map=%v", c2.Len(), c2.Get(3).Map)
	}
	// The original is untouched (immutability).
	if c.Get(3).Map != m[0] {
		t.Fatal("With mutated the receiver")
	}
	// Without removes exactly one fact.
	c3 := c.Without(3)
	if c3.Len() != 2 || c3.Get(3) != nil || c3.Get(1) == nil || c3.Get(7) == nil {
		t.Fatalf("Without(3): len=%d", c3.Len())
	}
	// Without on an absent register is identity.
	if c3.Without(42).Len() != 2 {
		t.Fatal("Without on absent register changed the context")
	}
	// With(nil map) kills the fact.
	if c.With(3, nil, false, NoShapeGen).Get(3) != nil {
		t.Fatal("With(nil) must drop the fact")
	}
}

func TestContextKey(t *testing.T) {
	m := testMaps(2)
	a := EmptyContext().With(1, m[0], false, NoShapeGen).With(2, m[1], false, NoShapeGen)
	b := EmptyContext().With(2, m[1], false, NoShapeGen).With(1, m[0], false, NoShapeGen)
	if a.Key() != b.Key() {
		t.Fatal("insertion order must not change the key")
	}
	// Different map → different key.
	if a.Key() == EmptyContext().With(1, m[1], false, NoShapeGen).With(2, m[1], false, NoShapeGen).Key() {
		t.Fatal("different maps must yield different keys")
	}
	// Same facts but shape provenance differs → different key (a shape
	// fact needs a run-time guard the pure fact doesn't).
	if a.Key() == EmptyContext().With(1, m[0], true, 5).With(2, m[1], false, NoShapeGen).Key() {
		t.Fatal("shape provenance must be part of the key")
	}
}

func TestContextGeneration(t *testing.T) {
	m := testMaps(2)
	// Pure facts: no generation.
	c := EmptyContext().With(1, m[0], false, NoShapeGen)
	if c.UsesShape() || c.Generation() != NoShapeGen {
		t.Fatal("pure context must not carry a shape generation")
	}
	// A shape fact stamps its generation; a second, older one lowers it.
	c = c.With(2, m[1], true, 7)
	if !c.UsesShape() || c.Generation() != 7 {
		t.Fatalf("gen = %d, want 7", c.Generation())
	}
	c2 := c.With(3, m[0], true, 4)
	if c2.Generation() != 4 {
		t.Fatalf("gen = %d, want min(7,4)=4", c2.Generation())
	}
	// Dropping the last shape fact restores NoShapeGen.
	c3 := c.Without(2)
	if c3.UsesShape() || c3.Generation() != NoShapeGen {
		t.Fatalf("after dropping the shape fact: gen = %d, want NoShapeGen", c3.Generation())
	}
	// Overwriting the shape fact with a pure one does too.
	c4 := c.With(2, m[1], false, NoShapeGen)
	if c4.UsesShape() {
		t.Fatal("overwriting the shape fact with a pure one must clear the generation")
	}
}

func TestVersionFreshAndOut(t *testing.T) {
	m := testMaps(1)
	v := &Version{ShapeGen: NoShapeGen}
	if !v.Fresh(0) || !v.Fresh(99) {
		t.Fatal("a version with no shape facts is always fresh")
	}
	v = &Version{ShapeGen: 3}
	if !v.Fresh(3) || v.Fresh(4) {
		t.Fatal("a shape version is fresh only at its own generation")
	}
	outT := EmptyContext().With(1, m[0], false, NoShapeGen)
	v = &Version{OutT: outT, OutF: EmptyContext()}
	if v.Out(true).Len() != 1 || v.Out(false).Len() != 0 {
		t.Fatal("Out must select the per-edge context")
	}
	// Successor memoization round-trips per edge.
	sT, sF := &Version{Entry: 10}, &Version{Entry: 20}
	if v.Succ(true) != nil || v.Succ(false) != nil {
		t.Fatal("successors start nil")
	}
	v.SetSucc(true, sT)
	v.SetSucc(false, sF)
	if v.Succ(true) != sT || v.Succ(false) != sF {
		t.Fatal("SetSucc/Succ must round-trip per edge")
	}
}

// countingMat is a materializer stub that tags versions in creation
// order.
func countingMat() (func(*Version), *int) {
	n := new(int)
	return func(v *Version) {
		*n++
		v.Bytes = int64(*n)
	}, n
}

func TestStateEnterReuse(t *testing.T) {
	m := testMaps(1)
	st := NewState(0)
	if st.MaxVers() != DefaultMaxVers {
		t.Fatalf("MaxVers = %d, want default %d", st.MaxVers(), DefaultMaxVers)
	}
	mat, calls := countingMat()
	ctx := EmptyContext().With(1, m[0], false, NoShapeGen)

	v1, materialized, capped := st.Enter(0, ctx, 0, mat)
	if !materialized || capped || v1 == nil {
		t.Fatalf("first entry: materialized=%v capped=%v", materialized, capped)
	}
	// Same context again: reused, no new materialization.
	v2, materialized, capped := st.Enter(0, ctx, 0, mat)
	if materialized || capped || v2 != v1 {
		t.Fatalf("second entry: materialized=%v capped=%v same=%v", materialized, capped, v2 == v1)
	}
	if *calls != 1 {
		t.Fatalf("materializer ran %d times, want 1", *calls)
	}
	vers, caps := st.Counts()
	if vers != 1 || caps != 0 {
		t.Fatalf("Counts = (%d, %d), want (1, 0)", vers, caps)
	}
	if st.VersionsAt(0) != 1 {
		t.Fatalf("VersionsAt(0) = %d, want 1", st.VersionsAt(0))
	}
}

func TestStateEnterCap(t *testing.T) {
	maps := testMaps(8)
	st := NewState(3)
	mat, _ := countingMat()

	// 3 distinct contexts fill the table.
	for i := 0; i < 3; i++ {
		ctx := EmptyContext().With(1, maps[i], false, NoShapeGen)
		if _, materialized, capped := st.Enter(0, ctx, 0, mat); !materialized || capped {
			t.Fatalf("context %d should materialize under the cap", i)
		}
	}
	// The 4th..8th distinct contexts are all served the SAME generic
	// fallback and counted as cap hits; the table stays at the cap.
	var generic *Version
	for i := 3; i < 8; i++ {
		ctx := EmptyContext().With(1, maps[i], false, NoShapeGen)
		v, _, capped := st.Enter(0, ctx, 0, mat)
		if !capped {
			t.Fatalf("context %d must be capped", i)
		}
		if !v.Generic {
			t.Fatalf("context %d must be served the generic version", i)
		}
		if generic == nil {
			generic = v
		} else if v != generic {
			t.Fatal("all capped contexts must share one generic version")
		}
	}
	if st.VersionsAt(0) != 3 {
		t.Fatalf("VersionsAt(0) = %d, want the cap 3", st.VersionsAt(0))
	}
	vers, caps := st.Counts()
	// 3 specialized + 1 generic materialized; 5 cap hits.
	if vers != 4 || caps != 5 {
		t.Fatalf("Counts = (%d, %d), want (4, 5)", vers, caps)
	}
	// The generic version itself (empty context) is always reusable and
	// never a cap hit.
	if v, materialized, capped := st.Enter(0, EmptyContext(), 0, mat); materialized || capped || v != generic {
		t.Fatalf("empty-context entry: materialized=%v capped=%v same=%v", materialized, capped, v == generic)
	}
}

func TestStateEnterShapeStaleness(t *testing.T) {
	m := testMaps(1)
	st := NewState(5)
	// The materializer simulates a region that derives a shape fact at
	// the current world generation.
	var worldGen uint64 = 1
	mat := func(v *Version) { v.ShapeGen = worldGen }

	ctx := EmptyContext().With(1, m[0], true, 1)
	v1, materialized, _ := st.Enter(0, ctx, worldGen, mat)
	if !materialized || v1.ShapeGen != 1 {
		t.Fatalf("first entry: materialized=%v gen=%d", materialized, v1.ShapeGen)
	}

	// A widening moves the world on. A flow arriving with a CURRENT
	// context must not be handed the stale version: it re-materializes
	// in place, regaining elisions at the new generation.
	worldGen = 2
	ctx2 := EmptyContext().With(1, m[0], true, 2)
	v2, materialized, _ := st.Enter(0, ctx2, worldGen, mat)
	if !materialized || v2.ShapeGen != 2 {
		t.Fatalf("post-widening entry: materialized=%v gen=%d", materialized, v2.ShapeGen)
	}
	if st.VersionsAt(0) != 1 {
		t.Fatalf("refresh must replace in place, VersionsAt = %d", st.VersionsAt(0))
	}

	// A flow arriving with an OLDER context generation than the stored
	// version must not reuse it either (its guards could pass on facts
	// the flow never verified): Enter re-materializes.
	ctxOld := EmptyContext().With(1, m[0], true, 1)
	v3, materialized, _ := st.Enter(0, ctxOld, worldGen, mat)
	if !materialized {
		t.Fatalf("older-flow entry must re-materialize, got reuse of gen %d", v3.ShapeGen)
	}
}
