// Package bbv implements the machinery of lazy basic-block versioning
// (Chevalier-Boisvert & Feeley, "Removing Dynamic Type Tests with
// Context-Driven Basic Block Versioning"), extended with typed object
// shapes — the third specialization strategy next to the paper's
// iterative type analysis and extended message splitting.
//
// Where eager splitting copies merge nodes at compile time so type
// facts survive control-flow joins, BBV compiles each method once as
// an unspecialized stub and materializes specialized *versions* of its
// basic blocks lazily, at the first execution of each (block, incoming
// type context) pair. A version records which register facts hold at
// entry, which facts each outgoing edge propagates, and whether the
// block's terminating type test is already proven by the context — in
// which case the test is dropped exactly as splitting drops it, just
// at run time instead of compile time.
//
// The versioning unit is the extended basic block the interpreter
// actually executes: the linear run of instructions from a branch
// target to the next control transfer (type test, compare-branch,
// jump, or return). Versions per entry point are bounded by a maxvers
// knob; once a block's table is full, new contexts fall back to a
// shared generic version (empty context — no elisions, but its out
// edges still seed specialized successors), so version tables — and
// with them host memory — stay bounded no matter how megamorphic the
// program is.
//
// Typed shapes (obj.Map.Tags) feed the second fact source: loading a
// field whose tag is monomorphic contributes the tagged map to the
// context without any test. Shape-derived facts are stamped with the
// world's shape generation; a widening store anywhere moves the
// generation, which makes stale versions fail their run-time guard
// (the elided test is performed for real) and re-materialize on their
// next entry, while the owning map's customizations are invalidated
// through the ordinary OnMapChange path.
package bbv

import (
	"sync"
	"sync/atomic"

	"selfgo/internal/obj"
)

// NoShapeGen marks a context or version that consumed no shape facts:
// it can never go stale.
const NoShapeGen = ^uint64(0)

// Fact is one register's known map. Shape marks facts that originated
// from a typed-shape tag (directly or by propagation): elisions that
// consume them must be generation-guarded at run time.
type Fact struct {
	Reg   int32
	Map   *obj.Map
	Shape bool
}

// Context is an immutable set of register facts, sorted by register.
// The zero Context is the empty (generic) context. Gen is the shape
// generation its shape-derived facts were valid at (NoShapeGen when
// none are).
type Context struct {
	facts []Fact
	Gen   uint64
}

// EmptyContext is the generic context.
func EmptyContext() Context { return Context{Gen: NoShapeGen} }

// Get returns the fact for reg, or nil.
func (c Context) Get(reg int32) *Fact {
	lo, hi := 0, len(c.facts)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.facts[mid].Reg < reg {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.facts) && c.facts[lo].Reg == reg {
		return &c.facts[lo]
	}
	return nil
}

// With returns c plus (or overwriting) a fact for reg. gen is the
// shape generation the fact was read at (NoShapeGen for pure context
// facts); the context's own generation is the minimum over its facts.
func (c Context) With(reg int32, m *obj.Map, shape bool, gen uint64) Context {
	if m == nil {
		return c.Without(reg)
	}
	out := Context{facts: make([]Fact, 0, len(c.facts)+1), Gen: c.gen()}
	inserted := false
	for _, f := range c.facts {
		if f.Reg == reg {
			continue
		}
		if !inserted && f.Reg > reg {
			out.facts = append(out.facts, Fact{Reg: reg, Map: m, Shape: shape})
			inserted = true
		}
		out.facts = append(out.facts, f)
	}
	if !inserted {
		out.facts = append(out.facts, Fact{Reg: reg, Map: m, Shape: shape})
	}
	if shape && gen < out.Gen {
		out.Gen = gen
	}
	return out.normalize()
}

// Without returns c with any fact for reg removed.
func (c Context) Without(reg int32) Context {
	if c.Get(reg) == nil {
		return c
	}
	out := Context{facts: make([]Fact, 0, len(c.facts)-1), Gen: c.gen()}
	for _, f := range c.facts {
		if f.Reg != reg {
			out.facts = append(out.facts, f)
		}
	}
	return out.normalize()
}

func (c Context) gen() uint64 {
	if c.Gen == 0 && len(c.facts) == 0 {
		return NoShapeGen // the zero Context
	}
	return c.Gen
}

// normalize recomputes Gen from the surviving facts, so dropping the
// last shape fact restores NoShapeGen.
func (c Context) normalize() Context {
	hasShape := false
	for _, f := range c.facts {
		if f.Shape {
			hasShape = true
			break
		}
	}
	if !hasShape {
		c.Gen = NoShapeGen
	}
	return c
}

// Len reports the number of facts.
func (c Context) Len() int { return len(c.facts) }

// Generation is the shape generation the context's shape-derived facts
// were valid at (NoShapeGen when it has none).
func (c Context) Generation() uint64 { return c.gen() }

// UsesShape reports whether any fact is shape-derived.
func (c Context) UsesShape() bool { return c.gen() != NoShapeGen }

// Key is the canonical identity of the context within a version table:
// two contexts with the same facts (registers, maps and provenance)
// share a version.
func (c Context) Key() string {
	if len(c.facts) == 0 {
		return ""
	}
	// Map identity via the map's world-unique ID keeps the key compact
	// and stable.
	buf := make([]byte, 0, len(c.facts)*10)
	for _, f := range c.facts {
		buf = appendVarint(buf, uint64(f.Reg))
		buf = appendVarint(buf, uint64(f.Map.ID))
		if f.Shape {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return string(buf)
}

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// Elide says what the materializer proved about a version's
// terminating type test.
type Elide uint8

const (
	// ElideNone: the test must run.
	ElideNone Elide = iota
	// ElideTrue / ElideFalse: a context fact proves the outcome; the
	// test is dropped and the recorded edge taken unconditionally.
	ElideTrue
	ElideFalse
	// ElideTrueShape / ElideFalseShape: proven by a shape-derived
	// fact; dropped only while the version's shape generation is
	// current, performed for real otherwise.
	ElideTrueShape
	ElideFalseShape
)

// Version is one materialized specialization of a basic block: the
// entry pc, the context it was specialized under, and what the
// materializer's abstract walk of the region derived.
type Version struct {
	Entry int
	Ctx   Context
	// Generic marks the block's fallback version (empty context),
	// served once the table hits the cap.
	Generic bool

	// The materializer fills the rest.

	// BranchPC is the pc of the control transfer terminating the
	// region (-1 when the region ends in a return/fault instead): the
	// run-time guard that keeps a version honest when control arrives
	// somewhere the walk didn't go (overflow branches, landing pads).
	BranchPC int
	// Elide records the fate of the terminating type test.
	Elide Elide
	// ShapeGen is the shape generation this version's shape facts
	// (inherited or read) were valid at; NoShapeGen when it has none.
	ShapeGen uint64
	// OutT/OutF are the contexts flowing out of the taken/not-taken
	// edge of the terminating branch.
	OutT, OutF Context
	// Bytes is the modelled code size of this version's region — what
	// a lazy code generator would have emitted for it (elided type
	// tests excluded).
	Bytes int64

	// succT/succF memoize the successor version per edge, so the
	// steady-state transition is one atomic load with no table lookup.
	succT, succF atomic.Pointer[Version]
}

// UsesShape reports whether the version depends on shape facts.
func (v *Version) UsesShape() bool { return v.ShapeGen != NoShapeGen }

// Fresh reports whether the version's shape facts are still current:
// its run-time elide guard would pass.
func (v *Version) Fresh(shapeGen uint64) bool {
	return v.ShapeGen == NoShapeGen || v.ShapeGen == shapeGen
}

// usable reports whether a stored version is sound to serve to a flow
// arriving with context generation ctxGen: the version's guards must
// never pass while an inherited fact is unverified, which holds
// exactly when the version's generation does not exceed the flow's
// (a version stamped with a newer generation than the facts it
// inherits could elide on facts the current flow never verified).
func (v *Version) usable(ctxGen uint64) bool {
	return v.ShapeGen <= ctxGen || v.ShapeGen == NoShapeGen
}

// Out returns the context flowing out of the taken (true) or
// not-taken edge.
func (v *Version) Out(taken bool) Context {
	if taken {
		return v.OutT
	}
	return v.OutF
}

// Succ returns the memoized successor for the edge, if any.
func (v *Version) Succ(taken bool) *Version {
	if taken {
		return v.succT.Load()
	}
	return v.succF.Load()
}

// SetSucc memoizes the successor for the edge.
func (v *Version) SetSucc(taken bool, s *Version) {
	if taken {
		v.succT.Store(s)
	} else {
		v.succF.Store(s)
	}
}

// block is one entry point's version table.
type block struct {
	vers    map[string]*Version
	generic *Version
}

// State is the version store of one compiled Code: entry pc → bounded
// version table. It is shared by every VM running the code, so all
// table mutation is under one mutex; the interpreter's steady state
// never takes it (memoized successor pointers).
type State struct {
	maxVers int

	mu     sync.Mutex
	blocks map[int]*block

	// entry memoizes the method-entry (pc 0) version so steady-state
	// invocation skips the table entirely.
	entry atomic.Pointer[Version]

	// versions/capHits are lifetime totals across all VMs (the
	// host-memory bound the cap test asserts); per-run deltas are
	// accounted by the VM into its RunStats.
	versions atomic.Int64
	capHits  atomic.Int64
}

// DefaultMaxVers is the version cap used when the config leaves
// MaxVers zero — the sweet spot reported by Chevalier-Boisvert &
// Feeley (≥5 captures nearly all elisions at modest code growth).
const DefaultMaxVers = 5

// NewState builds an empty version store with the given cap per block
// (<=0 selects DefaultMaxVers).
func NewState(maxVers int) *State {
	if maxVers <= 0 {
		maxVers = DefaultMaxVers
	}
	return &State{maxVers: maxVers, blocks: map[int]*block{}}
}

// MaxVers reports the per-block version cap.
func (s *State) MaxVers() int { return s.maxVers }

// Counts reports lifetime totals: versions materialized and cap hits
// (specialized contexts served by the generic fallback).
func (s *State) Counts() (versions, capHits int64) {
	return s.versions.Load(), s.capHits.Load()
}

// VersionsAt reports how many specialized versions exist for the
// block at pc (tests).
func (s *State) VersionsAt(pc int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.blocks[pc]; b != nil {
		return len(b.vers)
	}
	return 0
}

// PerBlockMax reports the largest specialized-version table across all
// blocks — the cap invariant the version-bound test asserts: no block
// ever holds more than MaxVers specialized versions, however
// megamorphic the program.
func (s *State) PerBlockMax() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0
	for _, b := range s.blocks {
		if len(b.vers) > max {
			max = len(b.vers)
		}
	}
	return max
}

// Entry returns the memoized method-entry version (nil before the
// first anchor). The caller re-validates freshness.
func (s *State) Entry() *Version { return s.entry.Load() }

// SetEntry memoizes the method-entry version.
func (s *State) SetEntry(v *Version) { s.entry.Store(v) }

// Enter resolves (pc, ctx) to a version, materializing through mat on
// first sight — the lazy-stub discipline: nothing is specialized until
// an edge is actually traversed. worldGen is the world's current shape
// generation. A stored version is re-materialized in place when it is
// either too new for the arriving flow (stamped past the flow's
// context generation, so its guards could pass on unverified facts —
// see Version.usable) or stale while the flow is current (re-deriving
// regains the elisions a widening suspended). A specialized context
// arriving at a full table is served the block's generic version
// instead (materialized on demand, not counted against the cap) and
// reported as a cap hit.
func (s *State) Enter(pc int, ctx Context, worldGen uint64, mat func(*Version)) (v *Version, materialized, capped bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.blocks[pc]
	if b == nil {
		b = &block{vers: map[string]*Version{}}
		s.blocks[pc] = b
	}
	ctxGen := ctx.gen()
	reuse := func(v *Version) bool {
		if !v.usable(ctxGen) {
			return false
		}
		// Usable but stale while the flow is current: re-specialize.
		refresh := v.ShapeGen != NoShapeGen && v.ShapeGen != worldGen && ctxGen >= worldGen
		return !refresh
	}
	key := ctx.Key()
	generic := key == ""
	if !generic {
		if v := b.vers[key]; v != nil {
			if reuse(v) {
				return v, false, false
			}
			nv := s.materialize(pc, ctx, false, mat)
			b.vers[key] = nv
			return nv, true, false
		}
		if len(b.vers) < s.maxVers {
			nv := s.materialize(pc, ctx, false, mat)
			b.vers[key] = nv
			return nv, true, false
		}
		// Table full: the generic version takes the tail.
		s.capHits.Add(1)
		capped = true
	}
	// The generic version inherits nothing, so soundness never depends
	// on the arriving flow's generation: reuse it whenever its own
	// in-region derivations are current (or it has none), and
	// re-materialize only to recover elisions after a widening.
	if v := b.generic; v != nil && (v.ShapeGen == NoShapeGen || v.ShapeGen == worldGen) {
		return v, false, capped
	}
	nv := s.materialize(pc, EmptyContext(), true, mat)
	b.generic = nv
	return nv, true, capped
}

func (s *State) materialize(pc int, ctx Context, generic bool, mat func(*Version)) *Version {
	v := &Version{Entry: pc, Ctx: ctx, Generic: generic, BranchPC: -1, ShapeGen: NoShapeGen}
	mat(v)
	s.versions.Add(1)
	return v
}
