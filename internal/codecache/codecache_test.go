package codecache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selfgo/internal/obj"
)

func methKey(w *obj.World, sel string, rmap *obj.Map) Key {
	return Key{Meth: &obj.Method{Sel: sel, Holder: w.Lobby.Map}, RMap: rmap}
}

func TestGetCompilesOncePerKey(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "fib:", w.IntMap)

	var compiles int32
	compile := func() (string, error) {
		atomic.AddInt32(&compiles, 1)
		return "code", nil
	}
	v, out, err := c.Get(k, compile)
	if err != nil || v != "code" || out != Compiled {
		t.Fatalf("first Get = %q, %v, %v", v, out, err)
	}
	v, out, err = c.Get(k, compile)
	if err != nil || v != "code" || out != Hit {
		t.Fatalf("second Get = %q, %v, %v", v, out, err)
	}
	if n := atomic.LoadInt32(&compiles); n != 1 {
		t.Fatalf("compiled %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleFlightDeduplicates(t *testing.T) {
	w := obj.NewWorld()
	c := New[int]()
	k := methKey(w, "slow", w.IntMap)

	var compiles int32
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Get(k, func() (int, error) {
				atomic.AddInt32(&compiles, 1)
				once.Do(func() { close(started) })
				<-release // hold the flight open so everyone piles up
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	<-started
	close(release)
	wg.Wait()

	if got := atomic.LoadInt32(&compiles); got != 1 {
		t.Fatalf("%d goroutines triggered %d compiles, want exactly 1", n, got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Waits+st.Hits != n-1 {
		t.Fatalf("waits+hits = %d, want %d (stats %+v)", st.Waits+st.Hits, n-1, st)
	}
	if !st.CompileOnce() {
		t.Fatalf("CompileOnce violated: %+v", st)
	}
}

func TestFailedCompileIsRetried(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "bad", nil)

	boom := errors.New("boom")
	_, _, err := c.Get(k, func() (string, error) { return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed compile left %d entries", st.Entries)
	}
	v, out, err := c.Get(k, func() (string, error) { return "fixed", nil })
	if err != nil || v != "fixed" || out != Compiled {
		t.Fatalf("retry Get = %q, %v, %v", v, out, err)
	}
}

func TestInvalidateMap(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	keep := methKey(w, "keep", w.StrMap)
	byRecv := methKey(w, "m1", w.IntMap)
	holder := Key{Meth: &obj.Method{Sel: "m2", Holder: w.IntMap}, RMap: w.StrMap}

	for _, k := range []Key{keep, byRecv, holder} {
		if _, _, err := c.Get(k, func() (string, error) { return "c", nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.InvalidateMap(w.IntMap); n != 2 {
		t.Fatalf("invalidated %d entries, want 2 (receiver-map and holder matches)", n)
	}
	if _, ok := c.Peek(keep); !ok {
		t.Fatal("unrelated entry was evicted")
	}
	if _, ok := c.Peek(byRecv); ok {
		t.Fatal("customization for invalidated receiver map survived")
	}
	st := c.Stats()
	if st.Evicted != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.CompileOnce() {
		t.Fatalf("CompileOnce should hold across eviction: %+v", st)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	w := obj.NewWorld()
	c := New[int]()
	maps := []*obj.Map{w.IntMap, w.StrMap, w.VecMap, w.NilMap}
	keys := make([]Key, 0, 32)
	for i := 0; i < 8; i++ {
		for _, m := range maps {
			keys = append(keys, methKey(w, fmt.Sprintf("sel%d:", i), m))
		}
	}
	var compiles int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, k := range keys {
					want := i
					v, _, err := c.Get(k, func() (int, error) {
						atomic.AddInt32(&compiles, 1)
						return want, nil
					})
					if err != nil || v != want {
						t.Errorf("key %d: got %d, %v", i, v, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt32(&compiles); got != int32(len(keys)) {
		t.Fatalf("%d compiles for %d keys", got, len(keys))
	}
	st := c.Stats()
	if st.Entries != int64(len(keys)) || !st.CompileOnce() {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardStatsSumToStats(t *testing.T) {
	w := obj.NewWorld()
	c := New[int]()
	for i := 0; i < 40; i++ {
		k := methKey(w, fmt.Sprintf("s%d", i), w.IntMap)
		if _, _, err := c.Get(k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	var sum Stats
	populated := 0
	for _, s := range c.ShardStats() {
		sum.Add(s)
		if s.Entries > 0 {
			populated++
		}
	}
	if sum != c.Stats() {
		t.Fatalf("shard sum %+v != total %+v", sum, c.Stats())
	}
	if populated < 2 {
		t.Fatalf("40 distinct selectors landed in %d shard(s); hash is degenerate", populated)
	}
}

func TestFlush(t *testing.T) {
	w := obj.NewWorld()
	c := New[int]()
	for i := 0; i < 5; i++ {
		k := methKey(w, fmt.Sprintf("f%d", i), nil)
		c.Get(k, func() (int, error) { return i, nil })
	}
	if n := c.Flush(); n != 5 {
		t.Fatalf("flushed %d, want 5", n)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Evicted != 5 {
		t.Fatalf("stats after flush = %+v", st)
	}
}

// TestPanickingCompileNoDeadlock is the regression test for the flight
// finalization bug: a panicking compile() used to leave e.done open
// forever, deadlocking every waiter of that flight and every later Get
// for the key. Eight goroutines request the same key while the compile
// panics; all must return (with errors), promptly.
func TestPanickingCompileNoDeadlock(t *testing.T) {
	w := obj.NewWorld()
	c := New[int]()
	k := methKey(w, "boom", w.IntMap)

	const n = 8
	var invoked atomic.Int32
	gate := make(chan struct{})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			_, _, errs[i] = c.Get(k, func() (int, error) {
				invoked.Add(1)
				panic("compiler bug")
			})
		}()
	}
	close(gate)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: goroutines still blocked on a panicked flight")
	}

	for i, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d got nil error from a panicked compile", i)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("goroutine %d: error %v is not a *PanicError", i, err)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("goroutine %d: PanicError carries no Go stack", i)
		}
	}
	// Losers of the flight wait on the winner's result; goroutines
	// arriving after a failed flight may retry, but never past the
	// negative-cache bound.
	if got := invoked.Load(); got < 1 || got > maxCompileFails {
		t.Fatalf("compile invoked %d times, want between 1 and %d", got, maxCompileFails)
	}
}

// TestNegativeCacheBoundsRetries: after maxCompileFails consecutive
// failed flights, the error entry stays resident — later Gets return
// the cached error without re-running the compiler — until the key is
// invalidated, which clears the negative cache and lets a fixed
// compiler succeed.
func TestNegativeCacheBoundsRetries(t *testing.T) {
	w := obj.NewWorld()
	c := New[int]()
	k := methKey(w, "persistentlyBroken", w.IntMap)
	failErr := errors.New("bad method")

	calls := 0
	for i := 0; i < maxCompileFails; i++ {
		_, out, err := c.Get(k, func() (int, error) { calls++; return 0, failErr })
		if err != failErr || out != Compiled {
			t.Fatalf("attempt %d: got (%v, %v), want (Compiled, failErr)", i, out, err)
		}
	}
	if calls != maxCompileFails {
		t.Fatalf("compile ran %d times, want %d", calls, maxCompileFails)
	}

	// The next Get must hit the resident error entry without compiling.
	_, out, err := c.Get(k, func() (int, error) { calls++; return 42, nil })
	if calls != maxCompileFails {
		t.Fatalf("negative cache did not stop the retry: compile ran %d times", calls)
	}
	if err != failErr || out != Hit {
		t.Fatalf("negative-cached Get = (%v, %v), want (Hit, failErr)", out, err)
	}

	// Invalidation clears both the entry and its failure count: the key
	// gets a fresh run of retries and can now succeed.
	if n := c.InvalidateMap(w.IntMap); n != 1 {
		t.Fatalf("InvalidateMap removed %d entries, want 1", n)
	}
	v, out, err := c.Get(k, func() (int, error) { calls++; return 42, nil })
	if err != nil || v != 42 || out != Compiled {
		t.Fatalf("post-invalidation Get = (%d, %v, %v), want (42, Compiled, nil)", v, out, err)
	}
}

func TestInvalidateKey(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k1 := methKey(w, "one", w.IntMap)
	k2 := methKey(w, "two", w.IntMap)
	compiles := 0
	compile := func() (string, error) { compiles++; return "code", nil }
	for _, k := range []Key{k1, k2} {
		if _, _, err := c.Get(k, compile); err != nil {
			t.Fatal(err)
		}
	}
	g0 := c.Generation()

	if !c.Invalidate(k1) {
		t.Fatal("Invalidate(k1) = false, want true")
	}
	if c.Generation() == g0 {
		t.Fatal("generation did not move on invalidation")
	}
	if _, ok := c.Peek(k1); ok {
		t.Fatal("k1 still resident after Invalidate")
	}
	if _, ok := c.Peek(k2); !ok {
		t.Fatal("Invalidate(k1) evicted unrelated k2")
	}
	// Absent key: no eviction, no generation churn.
	g1 := c.Generation()
	if c.Invalidate(k1) {
		t.Fatal("Invalidate of absent key = true")
	}
	if c.Generation() != g1 {
		t.Fatal("generation moved for a no-op invalidation")
	}
	// The key recompiles on the next Get and the eviction is counted.
	if _, out, err := c.Get(k1, compile); err != nil || out != Compiled {
		t.Fatalf("Get after Invalidate = %v, %v", out, err)
	}
	st := c.Stats()
	if st.Evicted != 1 || compiles != 3 {
		t.Fatalf("evicted=%d compiles=%d, want 1 and 3", st.Evicted, compiles)
	}
	if !st.CompileOnce() {
		t.Fatalf("CompileOnce violated: %+v", st)
	}
}

func TestInvalidateKeyClearsFailStreak(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "bad", w.IntMap)
	boom := errors.New("boom")
	for i := 0; i < maxCompileFails; i++ {
		if _, _, err := c.Get(k, func() (string, error) { return "", boom }); !errors.Is(err, boom) {
			t.Fatalf("fail %d: err = %v", i, err)
		}
	}
	// Negative-cached now: the compiler must not run again.
	if _, _, err := c.Get(k, func() (string, error) { t.Fatal("compiled through negative cache"); return "", nil }); !errors.Is(err, boom) {
		t.Fatalf("negative cache err = %v", err)
	}
	c.Invalidate(k)
	if v, out, err := c.Get(k, func() (string, error) { return "fixed", nil }); err != nil || v != "fixed" || out != Compiled {
		t.Fatalf("Get after Invalidate = %q, %v, %v", v, out, err)
	}
}
