// Package codecache is a process-wide cache of compiled code shared by
// concurrently-running VMs. Customization ("one compiled method per
// receiver map", Chambers & Ungar §2) makes this the hot shared
// structure of the whole system: every send that misses its inline
// cache ends here, so the cache is sharded to keep goroutines off each
// other's locks, and compilation is single-flight — when N goroutines
// request the same (method, receiver map) customization at once,
// exactly one runs the compiler while the rest block on its result.
//
// The design follows the shared versioned code caches of basic-block
// versioning systems (Chevalier-Boisvert & Feeley): entries are keyed
// by code identity plus the type context they were specialized for (a
// receiver map, here), and are invalidated when that context changes
// shape (a map's slots are added, replaced or re-parented).
package codecache

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"selfgo/internal/ast"
	"selfgo/internal/obj"
)

// numShards spreads unrelated customizations across independent locks.
// Keys distribute by selector and receiver-map identity, so the common
// fan-out — many goroutines warming different methods — rarely
// contends.
const numShards = 16

// Key identifies one unit of compiled code: a method customized for a
// receiver map (RMap nil when customization is off), or an out-of-line
// block. Exactly one of Meth/Blk is set. Strat is the specialization
// strategy the code was compiled under (core.Strategy's numeric value):
// replicas running different strategies in one process specialize the
// same method differently, so they must not share entries.
type Key struct {
	Meth  *obj.Method
	RMap  *obj.Map
	Blk   *ast.Block
	Strat uint8
}

// shardIndex hashes the key's stable identity (selector text, map IDs,
// block position) rather than pointer bits, so the distribution is
// deterministic across runs.
func (k Key) shardIndex() int {
	h := uint32(2166136261)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= 16777619
	}
	mixInt := func(v int) {
		mix(byte(v))
		mix(byte(v >> 8))
		mix(byte(v >> 16))
		mix(byte(v >> 24))
	}
	if k.Meth != nil {
		for i := 0; i < len(k.Meth.Sel); i++ {
			mix(k.Meth.Sel[i])
		}
		if k.Meth.Holder != nil {
			mixInt(k.Meth.Holder.ID)
		}
	}
	if k.RMap != nil {
		mixInt(k.RMap.ID)
	}
	if k.Blk != nil {
		mixInt(k.Blk.P.Line)
		mixInt(k.Blk.P.Col)
	}
	mix(k.Strat)
	return int(h % numShards)
}

// Outcome says how a Get was satisfied.
type Outcome uint8

// Get outcomes.
const (
	// Hit: the code was already compiled.
	Hit Outcome = iota
	// Wait: another goroutine was compiling it; we blocked on its
	// result (the single-flight path).
	Wait
	// Compiled: this call won the flight and ran the compiler.
	Compiled
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Wait:
		return "wait"
	case Compiled:
		return "compiled"
	}
	return "outcome?"
}

// Stats is a point-in-time snapshot of one shard's (or, summed, the
// whole cache's) counters.
type Stats struct {
	Hits    int64 // Get found completed code
	Misses  int64 // Get compiled (each miss is exactly one compiler run)
	Waits   int64 // Get blocked on another goroutine's compile
	Evicted int64 // entries removed by invalidation
	Entries int64 // entries currently resident

	// Promotion outcomes (see Promote). A promotion swaps an entry in
	// place, so it affects none of the counters above: CompileOnce
	// keeps holding in adaptive runs, with the higher-tier recompiles
	// accounted here instead.
	Promotions      int64 // promoted code installed
	PromoteFails    int64 // promotion compile failed or panicked
	PromoteDiscards int64 // promoted code discarded (entry invalidated meanwhile)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Waits += o.Waits
	s.Evicted += o.Evicted
	s.Entries += o.Entries
	s.Promotions += o.Promotions
	s.PromoteFails += o.PromoteFails
	s.PromoteDiscards += o.PromoteDiscards
}

// entry is one cached compilation. done is closed when val/err are
// valid; val and err are written exactly once, before the close, so
// readers that observed the close may read them without the shard lock.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type shard[V any] struct {
	mu      sync.Mutex
	entries map[Key]*entry[V]

	// fails counts consecutive failed flights per key; at
	// maxCompileFails the error entry stays resident (negative cache)
	// so persistently-failing keys cannot start a retry storm. Cleared
	// by a successful compile or by invalidation.
	fails map[Key]int

	// promoting marks keys with a tier-promotion flight in progress
	// (see Promote); concurrent Promote calls for such a key return
	// false instead of starting a second compile.
	promoting map[Key]bool

	hits, misses, waits, evicted              int64
	promotions, promoteFails, promoteDiscards int64
}

// maxCompileFails bounds retry storms: after this many consecutive
// failed flights for one key, the error itself is cached and later
// Gets return it without re-running the compiler, until the key is
// invalidated or the cache flushed.
const maxCompileFails = 3

// PanicError is delivered to every caller of a flight whose compile
// callback panicked: the panic is contained inside Get (the flight's
// entry is always completed, so waiters never deadlock) and surfaces
// as an error instead of crashing the process. Stack holds the Go
// stack captured at the panic.
type PanicError struct {
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("compile panicked: %v", e.Val) }

// Cache is the sharded single-flight code cache. V is the compiled
// representation (the VM instantiates it with *vm.Code; keeping it a
// type parameter avoids an import cycle and keeps this package
// mechanism-only).
type Cache[V any] struct {
	shards [numShards]shard[V]

	// gen counts invalidations. VMs keep private read-through memos of
	// resolved code (sends are far hotter than compiles — a shard lock
	// per send would serialize the workers) and drop them whenever the
	// generation moves, so eviction still reaches every VM. Successful
	// promotions bump it too: swapping in higher-tier code must reach
	// every VM's memo the same way eviction does.
	gen atomic.Int64

	// promWG tracks in-flight promotion goroutines (DrainPromotions).
	promWG sync.WaitGroup
}

// Generation returns the invalidation epoch. Any privately memoized
// result read at generation g is stale once Generation() != g.
func (c *Cache[V]) Generation() int64 { return c.gen.Load() }

// New returns an empty cache.
func New[V any]() *Cache[V] {
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].entries = map[Key]*entry[V]{}
		c.shards[i].fails = map[Key]int{}
		c.shards[i].promoting = map[Key]bool{}
	}
	return c
}

// Get returns the code for k, compiling it at most once per residency:
// the first requester runs compile outside the shard lock while
// concurrent requesters for the same key block on its result. A failed
// compile is not cached — the error is delivered to every goroutine of
// that flight, and a later Get retries — until maxCompileFails
// consecutive failures, after which the error entry stays resident and
// later Gets return it without recompiling (bounded retry storms).
//
// Get never lets a panicking compile escape: the flight's entry is
// completed (and e.done closed) on every path, so waiters cannot
// deadlock, and the panic reaches every caller as a *PanicError.
func (c *Cache[V]) Get(k Key, compile func() (V, error)) (v V, outcome Outcome, err error) {
	s := &c.shards[k.shardIndex()]
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		select {
		case <-e.done:
			s.hits++
			s.mu.Unlock()
			return e.val, Hit, e.err
		default:
			s.waits++
			s.mu.Unlock()
			<-e.done
			return e.val, Wait, e.err
		}
	}
	e := &entry[V]{done: make(chan struct{})}
	s.entries[k] = e
	s.misses++
	s.mu.Unlock()

	outcome = Compiled
	completed := false
	defer func() {
		if r := recover(); r != nil {
			var zero V
			v, err = zero, &PanicError{Val: r, Stack: debug.Stack()}
		} else if !completed && err == nil {
			// compile unwound without returning or panicking
			// (runtime.Goexit): still complete the flight.
			err = errors.New("codecache: compile aborted before returning")
		}
		s.mu.Lock()
		if err != nil {
			// Only touch our own entry: an invalidation may have
			// removed it already, and a fresh flight may have taken
			// the slot.
			if s.entries[k] == e {
				s.fails[k]++
				if s.fails[k] < maxCompileFails {
					delete(s.entries, k) // a later Get retries
				}
			}
		} else {
			delete(s.fails, k)
		}
		s.mu.Unlock()
		e.val, e.err = v, err
		close(e.done)
	}()
	v, err = compile()
	completed = true
	return v, Compiled, err
}

// Peek reports whether k is resident and compiled, without counting a
// hit or waiting on an in-flight compile.
func (c *Cache[V]) Peek(k Key) (V, bool) {
	s := &c.shards[k.shardIndex()]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		select {
		case <-e.done:
			if e.err == nil {
				return e.val, true
			}
		default:
		}
	}
	var zero V
	return zero, false
}

// ForEach calls fn for every completed, successful entry. In-flight
// compiles and negative-cached failures are skipped. The snapshot is
// taken shard by shard under each shard's lock, so fn runs without any
// lock held and may call back into the cache; entries added or removed
// while ForEach runs may or may not be seen. The manifest exporter of
// world images is the consumer: it persists keys and tiers, never
// machine code.
func (c *Cache[V]) ForEach(fn func(Key, V)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		snap := make(map[Key]*entry[V], len(s.entries))
		for k, e := range s.entries {
			snap[k] = e
		}
		s.mu.Unlock()
		for k, e := range snap {
			select {
			case <-e.done:
				if e.err == nil {
					fn(k, e.val)
				}
			default:
			}
		}
	}
}

// InvalidateMap removes every customization that depends on m: code
// customized for receivers of m, and code compiled from methods whose
// holder is m (the method body itself may have been redefined). Blocks
// are compiled per-AST and survive; a redefined enclosing method
// produces new block ASTs. Goroutines already waiting on an in-flight
// compile of a removed entry still receive its (now stale but
// internally consistent) result; the next Get recompiles against the
// new shape. Returns the number of entries removed.
func (c *Cache[V]) InvalidateMap(m *obj.Map) int {
	if m == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			if k.RMap == m || (k.Meth != nil && k.Meth.Holder == m) {
				delete(s.entries, k)
				s.evicted++
				n++
			}
		}
		// The reshaped map may fix what made a key fail: give it a
		// fresh run of retries.
		for k := range s.fails {
			if k.RMap == m || (k.Meth != nil && k.Meth.Holder == m) {
				delete(s.fails, k)
			}
		}
		s.mu.Unlock()
	}
	if n > 0 {
		c.gen.Add(1)
	}
	return n
}

// Invalidate removes k's entry (resident or still compiling),
// counting it as evicted and bumping the generation so every VM's
// private memo of it drops. Goroutines waiting on an in-flight compile
// of k still receive its result (the flight completes into its own
// entry object); the key's failure streak is cleared too. Returns
// whether an entry was removed. Servers use this to evict interned
// one-off programs whose keys would otherwise stay resident forever.
func (c *Cache[V]) Invalidate(k Key) bool {
	s := &c.shards[k.shardIndex()]
	s.mu.Lock()
	_, ok := s.entries[k]
	if ok {
		delete(s.entries, k)
		s.evicted++
	}
	delete(s.fails, k)
	s.mu.Unlock()
	if ok {
		c.gen.Add(1)
	}
	return ok
}

// Flush empties the cache entirely, counting every resident entry as
// evicted.
func (c *Cache[V]) Flush() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			delete(s.entries, k)
			s.evicted++
			n++
		}
		clear(s.fails)
		s.mu.Unlock()
	}
	if n > 0 {
		c.gen.Add(1)
	}
	return n
}

// Stats sums the per-shard counters.
func (c *Cache[V]) Stats() Stats {
	var t Stats
	for _, s := range c.ShardStats() {
		t.Add(s)
	}
	return t
}

// ShardStats snapshots each shard's counters (the per-shard view that
// selfbench -workers prints to show lock spread).
func (c *Cache[V]) ShardStats() []Stats {
	out := make([]Stats, numShards)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = Stats{
			Hits: s.hits, Misses: s.misses, Waits: s.waits,
			Evicted: s.evicted, Entries: int64(len(s.entries)),
			Promotions: s.promotions, PromoteFails: s.promoteFails,
			PromoteDiscards: s.promoteDiscards,
		}
		s.mu.Unlock()
	}
	return out
}

// CompileOnce reports the cache's core invariant for a warmed run: each
// resident-or-evicted entry was produced by exactly one compiler run
// (misses == entries + evicted). It is what `selfbench -workers`
// asserts to demonstrate compile-once/run-many.
func (s Stats) CompileOnce() bool {
	return s.Misses == s.Entries+s.Evicted
}
