// Tier promotion: recompiling a resident entry at a higher tier in the
// background and atomically swapping the cached code, without ever
// making readers wait — they keep getting the current code until the
// swap lands. The swap obeys the same generation discipline as
// invalidation, so every VM's private L1 memo of the old code is
// dropped and the next resolve observes the promoted code.
package codecache

import (
	"runtime/debug"
)

// Promote recompiles k in the background and swaps the result in. It
// returns true when a promotion flight was started, false when k is
// not resident-and-completed-successfully, or a promotion for k is
// already in flight (single-flight: concurrent Promote calls for one
// key run compile at most once per accepted flight).
//
// compile runs on a fresh goroutine; panics are contained as
// *PanicError. The install is guarded against the invalidation race:
// the flight captures the entry it is promoting, and installs only if
// that very entry is still resident when the compile finishes — if an
// InvalidateMap (or Flush, or a fresh Get flight after one) removed or
// replaced it meanwhile, the promoted code is discarded rather than
// resurrected over code compiled against the newer world shape. A
// successful install bumps the invalidation generation, so per-VM L1
// memos drop exactly as they do for map-change invalidation.
//
// On a failed or discarded promotion the old entry stays resident and
// keeps being served — the key falls back to its current tier.
//
// onDone, when non-nil, runs on the flight goroutine after the
// install decision: installed reports whether the new code was swapped
// in (false for both failures and discards).
func (c *Cache[V]) Promote(k Key, compile func() (V, error), onDone func(v V, err error, installed bool)) bool {
	s := &c.shards[k.shardIndex()]
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok || s.promoting[k] {
		s.mu.Unlock()
		return false
	}
	select {
	case <-e.done:
		if e.err != nil {
			// A negatively-cached failure is not promotable; a fresh
			// Get must recompile it at its own tier first.
			s.mu.Unlock()
			return false
		}
	default:
		// Still being compiled by a Get flight.
		s.mu.Unlock()
		return false
	}
	s.promoting[k] = true
	s.mu.Unlock()

	c.promWG.Add(1)
	go func() {
		defer c.promWG.Done()
		var v V
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					var zero V
					v, err = zero, &PanicError{Val: r, Stack: debug.Stack()}
				}
			}()
			v, err = compile()
		}()

		installed := false
		s.mu.Lock()
		delete(s.promoting, k)
		switch {
		case err != nil:
			s.promoteFails++
		case s.entries[k] != e:
			// Invalidated (or replaced by a fresh flight) while we
			// compiled: the promoted code was built against a world
			// shape that may no longer hold. Discard — installing it
			// would resurrect stale code past the invalidation.
			s.promoteDiscards++
		default:
			ne := &entry[V]{done: closedChan(), val: v}
			s.entries[k] = ne
			s.promotions++
			installed = true
		}
		s.mu.Unlock()
		if installed {
			// Same discipline as InvalidateMap: move the generation so
			// every VM's private memo of the old code is dropped.
			c.gen.Add(1)
		}
		if onDone != nil {
			onDone(v, err, installed)
		}
	}()
	return true
}

// closedChan returns an already-closed channel, for entries installed
// in completed state.
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// DrainPromotions blocks until every in-flight promotion has finished
// (installed, failed, or discarded). Tests and benchmarks use it to
// make promotion effects deterministic.
func (c *Cache[V]) DrainPromotions() {
	c.promWG.Wait()
}
