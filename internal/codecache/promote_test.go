package codecache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"selfgo/internal/obj"
)

// seed makes k resident with successfully-compiled code.
func seed(t *testing.T, c *Cache[string], k Key, code string) {
	t.Helper()
	v, out, err := c.Get(k, func() (string, error) { return code, nil })
	if err != nil || v != code || out != Compiled {
		t.Fatalf("seed Get = %q, %v, %v", v, out, err)
	}
}

func TestPromoteSwapsInPlace(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "hot", w.IntMap)
	seed(t, c, k, "baseline-code")
	gen0 := c.Generation()

	done := make(chan bool, 1)
	if !c.Promote(k, func() (string, error) { return "optimized-code", nil },
		func(v string, err error, installed bool) { done <- installed }) {
		t.Fatal("Promote refused a resident completed entry")
	}
	if !<-done {
		t.Fatal("promotion not installed")
	}
	c.DrainPromotions()

	if v, out, err := c.Get(k, nil); err != nil || v != "optimized-code" || out != Hit {
		t.Fatalf("post-promotion Get = %q, %v, %v", v, out, err)
	}
	if c.Generation() == gen0 {
		t.Error("successful promotion must bump the generation so per-VM memos drop")
	}
	st := c.Stats()
	if st.Promotions != 1 || st.PromoteFails != 0 || st.PromoteDiscards != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The swap is in place: no extra miss, no eviction, CompileOnce
	// still holds for the Get-side counters.
	if st.Misses != 1 || st.Evicted != 0 || !st.CompileOnce() {
		t.Errorf("promotion disturbed the Get counters: %+v", st)
	}
}

// TestPromoteInvalidationRace pins the close of the promote-vs-
// invalidate window: an InvalidateMap that lands while the promotion
// compile is running must win — the promoted code was built against
// the old world shape and installing it would resurrect stale code
// past the invalidation. The flight detects the entry swap and
// discards.
func TestPromoteInvalidationRace(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "racy", w.IntMap)
	seed(t, c, k, "old-code")

	compiling := make(chan struct{})
	release := make(chan struct{})
	done := make(chan bool, 1)
	ok := c.Promote(k, func() (string, error) {
		close(compiling) // promotion compile has started...
		<-release        // ...and now blocks until the test invalidates
		return "stale-promoted-code", nil
	}, func(v string, err error, installed bool) { done <- installed })
	if !ok {
		t.Fatal("Promote refused")
	}

	<-compiling
	if n := c.InvalidateMap(w.IntMap); n != 1 {
		t.Fatalf("InvalidateMap removed %d entries, want 1", n)
	}
	close(release)
	if <-done {
		t.Fatal("promotion installed over an invalidation")
	}
	c.DrainPromotions()

	// The stale code must not have been resurrected: the key is simply
	// gone, and the next Get compiles fresh.
	if _, ok := c.Peek(k); ok {
		t.Fatal("invalidated key resident after discarded promotion")
	}
	v, out, err := c.Get(k, func() (string, error) { return "new-code", nil })
	if err != nil || v != "new-code" || out != Compiled {
		t.Fatalf("post-race Get = %q, %v, %v", v, out, err)
	}
	st := c.Stats()
	if st.PromoteDiscards != 1 || st.Promotions != 0 {
		t.Errorf("stats = %+v, want exactly one discard", st)
	}
}

// TestPromoteRecompileRace: same window, but a fresh Get flight
// recompiled the key after the invalidation. The promotion must not
// clobber the newer entry either.
func TestPromoteRecompileRace(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "reflow", w.IntMap)
	seed(t, c, k, "old-code")

	compiling := make(chan struct{})
	release := make(chan struct{})
	done := make(chan bool, 1)
	c.Promote(k, func() (string, error) {
		close(compiling)
		<-release
		return "stale-promoted-code", nil
	}, func(v string, err error, installed bool) { done <- installed })

	<-compiling
	c.InvalidateMap(w.IntMap)
	seed(t, c, k, "recompiled-code") // fresh flight takes the slot
	close(release)
	if <-done {
		t.Fatal("promotion clobbered a newer entry")
	}
	c.DrainPromotions()
	if v, _, err := c.Get(k, nil); err != nil || v != "recompiled-code" {
		t.Fatalf("Get = %q, %v; the recompiled entry must survive", v, err)
	}
}

func TestPromoteFailureKeepsOldCode(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "fragile", w.IntMap)
	seed(t, c, k, "working-code")
	gen0 := c.Generation()

	done := make(chan bool, 1)
	c.Promote(k, func() (string, error) { return "", errors.New("opt pass exploded") },
		func(v string, err error, installed bool) { done <- installed })
	if <-done {
		t.Fatal("failed promotion reported installed")
	}
	c.DrainPromotions()

	if v, out, err := c.Get(k, nil); err != nil || v != "working-code" || out != Hit {
		t.Fatalf("Get after failed promotion = %q, %v, %v; old tier must keep serving", v, out, err)
	}
	if c.Generation() != gen0 {
		t.Error("failed promotion moved the generation")
	}
	if st := c.Stats(); st.PromoteFails != 1 || st.Promotions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPromotePanicIsContained(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "explosive", w.IntMap)
	seed(t, c, k, "working-code")

	done := make(chan error, 1)
	c.Promote(k, func() (string, error) { panic("compiler bug") },
		func(v string, err error, installed bool) { done <- err })
	err := <-done
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	c.DrainPromotions()
	if v, _, err := c.Get(k, nil); err != nil || v != "working-code" {
		t.Fatalf("Get after panicked promotion = %q, %v", v, err)
	}
	if st := c.Stats(); st.PromoteFails != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPromoteRefusals(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	nothing := func() (string, error) { return "x", nil }

	// Non-resident key.
	if c.Promote(methKey(w, "absent", w.IntMap), nothing, nil) {
		t.Error("promoted a non-resident key")
	}

	// Key mid-compile by a Get flight.
	k := methKey(w, "inflight", w.IntMap)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Get(k, func() (string, error) {
		close(started)
		<-release
		return "code", nil
	})
	<-started
	if c.Promote(k, nothing, nil) {
		t.Error("promoted a key whose Get flight is still compiling")
	}
	close(release)

	// Negatively-cached failure.
	kf := methKey(w, "alwaysfails", w.IntMap)
	for i := 0; i < maxCompileFails; i++ {
		c.Get(kf, func() (string, error) { return "", errors.New("nope") })
	}
	if _, _, err := c.Get(kf, nil); err == nil {
		t.Fatal("failure not negatively cached; test setup wrong")
	}
	if c.Promote(kf, nothing, nil) {
		t.Error("promoted a negatively-cached failure")
	}
	c.DrainPromotions()
}

// TestPromoteSingleFlight: N concurrent Promote calls for one hot key
// run the higher-tier compile at most once; the rest are refused.
func TestPromoteSingleFlight(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "contested", w.IntMap)
	seed(t, c, k, "baseline-code")

	var compiles, accepted int32
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok := c.Promote(k, func() (string, error) {
				atomic.AddInt32(&compiles, 1)
				<-release
				return "optimized-code", nil
			}, nil)
			if ok {
				atomic.AddInt32(&accepted, 1)
			}
		}()
	}
	wg.Wait()
	close(release)
	c.DrainPromotions()

	if got := atomic.LoadInt32(&accepted); got != 1 {
		t.Errorf("%d Promote calls accepted, want 1", got)
	}
	if got := atomic.LoadInt32(&compiles); got != 1 {
		t.Errorf("compile ran %d times, want 1", got)
	}
	if v, _, err := c.Get(k, nil); err != nil || v != "optimized-code" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if st := c.Stats(); st.Promotions != 1 {
		t.Errorf("stats = %+v", st)
	}

	// After the flight lands the key is promotable again (e.g. a future
	// higher tier); the promoting mark must have been cleared.
	done := make(chan bool, 1)
	if !c.Promote(k, func() (string, error) { return "re-promoted", nil },
		func(v string, err error, installed bool) { done <- installed }) {
		t.Fatal("key not promotable after its flight completed")
	}
	if !<-done {
		t.Fatal("second promotion not installed")
	}
	c.DrainPromotions()
}

// TestPromoteSecondRungDiscard: the promote-vs-invalidate window at
// the *second* rung. A method already promoted once (baseline →
// optimizing) is being promoted again (optimizing → native) when an
// invalidation lands: the native code was built against the old world
// shape and must be discarded, exactly as at the first rung — the
// discard discipline is rung-agnostic.
func TestPromoteSecondRungDiscard(t *testing.T) {
	w := obj.NewWorld()
	c := New[string]()
	k := methKey(w, "climber", w.IntMap)
	seed(t, c, k, "baseline-code")

	// First rung lands normally.
	done := make(chan bool, 1)
	if !c.Promote(k, func() (string, error) { return "optimizing-code", nil },
		func(v string, err error, installed bool) { done <- installed }) {
		t.Fatal("first-rung Promote refused")
	}
	if !<-done {
		t.Fatal("first-rung promotion not installed")
	}
	if v, ok := c.Peek(k); !ok || v != "optimizing-code" {
		t.Fatalf("after first rung Peek = %q, %v", v, ok)
	}

	// Second rung: invalidate while the native compile is in flight.
	compiling := make(chan struct{})
	release := make(chan struct{})
	if !c.Promote(k, func() (string, error) {
		close(compiling)
		<-release
		return "native-code", nil
	}, func(v string, err error, installed bool) { done <- installed }) {
		t.Fatal("second-rung Promote refused")
	}
	<-compiling
	if n := c.InvalidateMap(w.IntMap); n != 1 {
		t.Fatalf("InvalidateMap removed %d entries, want 1", n)
	}
	close(release)
	if <-done {
		t.Fatal("native promotion installed over an invalidation")
	}
	c.DrainPromotions()

	if _, ok := c.Peek(k); ok {
		t.Fatal("invalidated key resident after discarded native promotion")
	}
	st := c.Stats()
	if st.Promotions != 1 || st.PromoteDiscards != 1 {
		t.Errorf("stats = %+v, want one install (first rung) and one discard (second)", st)
	}
}
