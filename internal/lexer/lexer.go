// Package lexer turns SELF-like source text into a token stream.
package lexer

import (
	"fmt"
	"strings"

	"selfgo/internal/token"
)

// Lexer scans one source buffer.
type Lexer struct {
	src  string
	off  int // byte offset of the next unread character
	line int
	col  int

	errs []error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the scan errors collected so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentPart(c byte) bool { return isLetter(c) || isDigit(c) || c == '_' }

func isBinOpChar(c byte) bool {
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '@':
		return true
	}
	return false
}

// skipSpace consumes whitespace and "double quoted comments".
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '"':
			p := l.pos()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.advance() == '"' {
					closed = true
					break
				}
			}
			if !closed {
				l.errorf(p, "unterminated comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token in the stream.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	p := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: p}
	}
	c := l.peek()
	switch {
	case isDigit(c):
		return l.lexNumber(p)
	case c == '_' || isLetter(c):
		return l.lexName(p)
	case c == '\'':
		return l.lexString(p)
	}
	l.advance()
	switch c {
	case '(':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LSlotList, Text: "(|", Pos: p}
		}
		return token.Token{Kind: token.LParen, Text: "(", Pos: p}
	case ')':
		return token.Token{Kind: token.RParen, Text: ")", Pos: p}
	case '[':
		return token.Token{Kind: token.LBracket, Text: "[", Pos: p}
	case ']':
		return token.Token{Kind: token.RBracket, Text: "]", Pos: p}
	case '|':
		return token.Token{Kind: token.VBar, Text: "|", Pos: p}
	case '.':
		return token.Token{Kind: token.Dot, Text: ".", Pos: p}
	case ';':
		return token.Token{Kind: token.Semi, Text: ";", Pos: p}
	case '^':
		return token.Token{Kind: token.Caret, Text: "^", Pos: p}
	case ':':
		// ":name" introduces a block argument; a bare ':' is illegal
		// elsewhere (keyword colons are attached to the identifier).
		return token.Token{Kind: token.Colon, Text: ":", Pos: p}
	}
	if c == '<' && l.peek() == '-' {
		l.advance()
		return token.Token{Kind: token.Arrow, Text: "<-", Pos: p}
	}
	if isBinOpChar(c) {
		text := string(c)
		// Multi-character operators: <= >= != ==.
		if (c == '<' || c == '>' || c == '!' || c == '=') && l.peek() == '=' {
			l.advance()
			text += "="
		}
		switch text {
		case "=":
			return token.Token{Kind: token.Eq, Text: "=", Pos: p}
		case "*":
			return token.Token{Kind: token.Star, Text: "*", Pos: p}
		}
		return token.Token{Kind: token.BinOp, Text: text, Pos: p}
	}
	l.errorf(p, "illegal character %q", c)
	return token.Token{Kind: token.Illegal, Text: string(c), Pos: p}
}

func (l *Lexer) lexNumber(p token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	// Radix literal 16r1F (SELF style).
	if l.peek() == 'r' && l.off+1 < len(l.src) && isHexDigit(l.peek2()) {
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	}
	return token.Token{Kind: token.Int, Text: l.src[start:l.off], Pos: p}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *Lexer) lexString(p token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			l.errorf(p, "unterminated string")
			return token.Token{Kind: token.Illegal, Text: b.String(), Pos: p}
		}
		c := l.advance()
		if c == '\'' {
			if l.peek() == '\'' { // doubled quote escapes a quote
				l.advance()
				b.WriteByte('\'')
				continue
			}
			break
		}
		if c == '\\' && l.off < len(l.src) {
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'':
				b.WriteByte(e)
			default:
				l.errorf(p, "unknown escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	return token.Token{Kind: token.String, Text: b.String(), Pos: p}
}

func (l *Lexer) lexName(p token.Pos) token.Token {
	start := l.off
	prim := l.peek() == '_'
	if prim {
		l.advance()
	}
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if l.peek() == ':' && l.peek2() != '=' {
		l.advance()
		text += ":"
		switch {
		case prim:
			return token.Token{Kind: token.PrimKeyword, Text: text, Pos: p}
		case text[0] >= 'A' && text[0] <= 'Z':
			return token.Token{Kind: token.CapKeyword, Text: text, Pos: p}
		default:
			return token.Token{Kind: token.Keyword, Text: text, Pos: p}
		}
	}
	if prim {
		return token.Token{Kind: token.Primitive, Text: text, Pos: p}
	}
	return token.Token{Kind: token.Ident, Text: text, Pos: p}
}

// All scans the entire buffer and returns every token up to and
// including EOF. It is a convenience for tests and the parser.
func All(src string) []token.Token {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
