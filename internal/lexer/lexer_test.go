package lexer

import (
	"testing"

	"selfgo/internal/token"
)

func kinds(src string) []token.Kind {
	var ks []token.Kind
	for _, t := range All(src) {
		ks = append(ks, t.Kind)
	}
	return ks
}

func TestBasicTokens(t *testing.T) {
	toks := All("sum: sum + i.")
	want := []struct {
		k token.Kind
		s string
	}{
		{token.Keyword, "sum:"},
		{token.Ident, "sum"},
		{token.BinOp, "+"},
		{token.Ident, "i"},
		{token.Dot, "."},
		{token.EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.k || toks[i].Text != w.s {
			t.Errorf("tok %d = %v, want %v %q", i, toks[i], w.k, w.s)
		}
	}
}

func TestSlotListToken(t *testing.T) {
	toks := All("(| x <- 0 |)")
	if toks[0].Kind != token.LSlotList {
		t.Fatalf("got %v, want LSlotList", toks[0])
	}
	if toks[1].Kind != token.Ident || toks[2].Kind != token.Arrow {
		t.Fatalf("got %v %v", toks[1], toks[2])
	}
}

func TestCapitalizedKeyword(t *testing.T) {
	toks := All("1 upTo: n Do: [ :i | x ]")
	var caps, kws int
	for _, tk := range toks {
		switch tk.Kind {
		case token.CapKeyword:
			caps++
			if tk.Text != "Do:" {
				t.Errorf("CapKeyword text = %q", tk.Text)
			}
		case token.Keyword:
			kws++
			if tk.Text != "upTo:" {
				t.Errorf("Keyword text = %q", tk.Text)
			}
		}
	}
	if caps != 1 || kws != 1 {
		t.Errorf("caps=%d kws=%d, want 1,1", caps, kws)
	}
}

func TestPrimitiveTokens(t *testing.T) {
	toks := All("a _IntAdd: b IfFail: [ :e | 0 ]. v _Clone")
	if toks[1].Kind != token.PrimKeyword || toks[1].Text != "_IntAdd:" {
		t.Fatalf("got %v", toks[1])
	}
	var sawClone bool
	for _, tk := range toks {
		if tk.Kind == token.Primitive && tk.Text == "_Clone" {
			sawClone = true
		}
	}
	if !sawClone {
		t.Error("missing _Clone primitive token")
	}
}

func TestComments(t *testing.T) {
	toks := All(`x "this is a comment" y`)
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("got %v", toks)
	}
}

func TestStrings(t *testing.T) {
	toks := All(`'hello ''world'' \n'`)
	if toks[0].Kind != token.String {
		t.Fatalf("got %v", toks[0])
	}
	if toks[0].Text != "hello 'world' \n" {
		t.Fatalf("text = %q", toks[0].Text)
	}
}

func TestOperators(t *testing.T) {
	ks := kinds("a <= b >= c != d = e * f <- g")
	want := []token.Kind{
		token.Ident, token.BinOp, token.Ident, token.BinOp, token.Ident,
		token.BinOp, token.Ident, token.Eq, token.Ident, token.Star,
		token.Ident, token.Arrow, token.Ident, token.EOF,
	}
	if len(ks) != len(want) {
		t.Fatalf("got %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("tok %d = %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestRadixInteger(t *testing.T) {
	toks := All("16r1F 2r101")
	if toks[0].Text != "16r1F" || toks[0].Kind != token.Int {
		t.Fatalf("got %v", toks[0])
	}
	if toks[1].Text != "2r101" {
		t.Fatalf("got %v", toks[1])
	}
}

func TestUnterminatedCommentAndString(t *testing.T) {
	l := New(`"never closed`)
	l.Next()
	if len(l.Errors()) == 0 {
		t.Error("expected error for unterminated comment")
	}
	l2 := New(`'never closed`)
	l2.Next()
	if len(l2.Errors()) == 0 {
		t.Error("expected error for unterminated string")
	}
}

func TestPositions(t *testing.T) {
	toks := All("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestIllegalCharacter(t *testing.T) {
	l := New("a ~ b")
	for {
		tk := l.Next()
		if tk.Kind == token.EOF {
			break
		}
	}
	if len(l.Errors()) == 0 {
		t.Error("expected error for ~")
	}
}

func TestBlockArgColon(t *testing.T) {
	ks := kinds("[ :i | i ]")
	want := []token.Kind{token.LBracket, token.Colon, token.Ident, token.VBar, token.Ident, token.RBracket, token.EOF}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("tok %d = %v, want %v (all: %v)", i, ks[i], want[i], ks)
		}
	}
}
