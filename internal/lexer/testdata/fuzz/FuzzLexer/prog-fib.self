go test fuzz v1
string("\"Recursive Fibonacci — run with:\n   go run ./cmd/selfrun -stats examples/programs/fib.self -args 20 fib:\"\nfib: n = (\n    (n < 2) ifTrue: [ n ] False: [ (fib: n - 1) + (fib: n - 2) ] ).\n")
