package lexer

import (
	"os"
	"path/filepath"
	"testing"

	"selfgo/internal/token"
)

// seedPrograms feeds every example program to the fuzzer as a seed, so
// mutation starts from realistic SELF source rather than byte soup.
func seedPrograms(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.self"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzLexer: the lexer must terminate on arbitrary input without
// panicking, always produce EOF as its final token, and be
// deterministic — two scans of the same input yield identical token
// streams.
func FuzzLexer(f *testing.F) {
	seedPrograms(f)
	f.Add("")
	f.Add("| x <- 1 | x: x + 1. x")
	f.Add("'unterminated")
	f.Add("'esc \\n \\t \\\\ '' done'")
	f.Add("0x1F 0xG 123 99999999999999999999")
	f.Add("a: b C: [ :p | ^p ] <-> = * _foo")
	f.Add("\"comment \" \"unterminated comment")

	f.Fuzz(func(t *testing.T, src string) {
		toks := All(src)
		if len(toks) == 0 {
			t.Fatalf("no tokens for %q (expected at least EOF)", src)
		}
		if last := toks[len(toks)-1]; last.Kind != token.EOF {
			t.Fatalf("last token is %v, want EOF: %q", last, src)
		}
		for _, tok := range toks[:len(toks)-1] {
			if tok.Kind == token.EOF {
				t.Fatalf("EOF token before the end of the stream: %q", src)
			}
		}
		again := All(src)
		if len(again) != len(toks) {
			t.Fatalf("non-deterministic: %d tokens then %d for %q", len(toks), len(again), src)
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("non-deterministic token %d: %v then %v for %q", i, toks[i], again[i], src)
			}
		}
	})
}
