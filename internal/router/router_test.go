package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"selfgo/internal/server"
	"selfgo/internal/wire"
)

// ---------------------------------------------------------------------
// Rendezvous properties

func mkReplicas(names ...string) []*replica {
	out := make([]*replica, len(names))
	for i, n := range names {
		out[i] = &replica{name: n}
		out[i].healthy.Store(true)
	}
	return out
}

// TestRendezvousStable: ranking is a pure function of the strings —
// same key, same order, every time — and keys spread over replicas.
func TestRendezvousStable(t *testing.T) {
	reps := mkReplicas("http://a", "http://b", "http://c")
	owners := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("eval:key-%d", i)
		r1 := rank(key, reps)
		r2 := rank(key, reps)
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("key %s: ranking not deterministic", key)
			}
		}
		owners[r1[0].name]++
	}
	// 300 keys over 3 replicas: each must own a healthy share (the
	// hash would have to be badly broken to give one replica < 50).
	for name, n := range owners {
		if n < 50 {
			t.Errorf("replica %s owns only %d of 300 keys", name, n)
		}
	}
	if len(owners) != 3 {
		t.Fatalf("owners %v", owners)
	}
}

// TestRendezvousMinimalDisruption: removing one replica moves ONLY
// the keys it owned; every other key keeps its home. This is the
// property that makes drain cheap for the fleet's caches.
func TestRendezvousMinimalDisruption(t *testing.T) {
	all := mkReplicas("http://a", "http://b", "http://c")
	without := []*replica{all[0], all[1]} // c removed
	moved, kept := 0, 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("bench:key-%d", i)
		before := rank(key, all)[0]
		after := rank(key, without)[0]
		if before.name == "http://c" {
			moved++
			// Its keys land on their own next preference.
			if want := rank(key, all)[1]; after != want {
				t.Fatalf("key %s: moved to %s, want next-ranked %s", key, after.name, want.name)
			}
		} else {
			kept++
			if after != before {
				t.Fatalf("key %s: home changed %s -> %s though its replica stayed",
					key, before.name, after.name)
			}
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split moved=%d kept=%d", moved, kept)
	}
}

// ---------------------------------------------------------------------
// Stub-replica harness (deterministic failover behavior)

// stubReplica is a fake selfserved: scripted answers on /eval, a
// togglable /readyz, and a log of the request ids it saw.
type stubReplica struct {
	ts     *httptest.Server
	mu     sync.Mutex
	hits   int
	rids   []string
	answer func(w http.ResponseWriter, r *http.Request)
	ready  bool
}

func newStub(t *testing.T, answer func(w http.ResponseWriter, r *http.Request)) *stubReplica {
	t.Helper()
	s := &stubReplica{answer: answer, ready: true}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ready := s.ready
		s.mu.Unlock()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("/eval", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.hits++
		s.rids = append(s.rids, r.Header.Get(wire.RequestIDHeader))
		s.mu.Unlock()
		s.answer(w, r)
	})
	mux.HandleFunc("/run", mux.ServeHTTP)
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stubReplica) setReady(ready bool) {
	s.mu.Lock()
	s.ready = ready
	s.mu.Unlock()
}

func (s *stubReplica) hitCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

func ok200(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"value": "7", "int": 7}`)
}

func shed429(retryAfter string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", retryAfter)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error": {"kind": "overload", "message": "stub shed"}}`)
	}
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// tenantFor finds a tenant whose preference list ranks `first` ahead
// of the others — the deterministic way to aim a request at one stub.
func tenantFor(t *testing.T, rt *Router, first string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		tenant := fmt.Sprintf("t%d", i)
		if rank("tenant:"+tenant, rt.replicas)[0].name == first {
			return tenant
		}
	}
	t.Fatal("no tenant found ranking the wanted replica first")
	return ""
}

func postTenant(t *testing.T, url, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/eval", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestFailoverOnShed: the home replica sheds with 429; the router
// retries once on the next-ranked replica and the client sees its
// 200. The failover is counted by reason.
func TestFailoverOnShed(t *testing.T) {
	shedder := newStub(t, shed429("7"))
	healthy := newStub(t, ok200)
	rt, ts := newTestRouter(t, Config{Replicas: []string{shedder.ts.URL, healthy.ts.URL}})

	tenant := tenantFor(t, rt, shedder.ts.URL)
	resp := postTenant(t, ts.URL, tenant, `{"expr": "3 + 4"}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"int": 7`) {
		t.Fatalf("failover answer: %d %s", resp.StatusCode, body)
	}
	if shedder.hitCount() != 1 || healthy.hitCount() != 1 {
		t.Fatalf("hits shedder=%d healthy=%d, want 1/1", shedder.hitCount(), healthy.hitCount())
	}
	if got := rt.m.failovers.With(reasonShed).Value(); got != 1 {
		t.Fatalf("shed failovers %d, want 1", got)
	}
	// The skipped home replica stays in the ring — shedding is load,
	// not sickness.
	if len(rt.healthySnapshot()) != 2 {
		t.Fatal("shed replica dropped from ring")
	}
}

// TestBothShedPropagatesRetryAfter: when home AND failover shed, the
// client gets the 429 with the LARGER Retry-After — the honest
// "whole cluster is busy" signal.
func TestBothShedPropagatesRetryAfter(t *testing.T) {
	a := newStub(t, shed429("7"))
	b := newStub(t, shed429("3"))
	rt, ts := newTestRouter(t, Config{Replicas: []string{a.ts.URL, b.ts.URL}})

	resp := postTenant(t, ts.URL, tenantFor(t, rt, a.ts.URL), `{"expr": "1"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the larger hint 7", got)
	}
	if got := rt.m.failovers.With(reasonShed).Value(); got != 1 {
		t.Fatalf("shed failovers %d, want 1", got)
	}
}

// TestTransportFailover: a dead replica (connection refused) is
// skipped, dropped from the ring immediately, and the request
// succeeds on the next-ranked one.
func TestTransportFailover(t *testing.T) {
	dead := newStub(t, ok200)
	deadURL := dead.ts.URL
	dead.ts.Close() // kill it: connections now refuse
	alive := newStub(t, ok200)
	rt, ts := newTestRouter(t, Config{
		Replicas:    []string{deadURL, alive.ts.URL},
		HealthEvery: time.Hour, // only the request path may drop it
	})
	// The boot-time probe (async) sees the corpse; wait for it, then
	// resurrect the ring entry to model a replica dying BETWEEN polls.
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.healthySnapshot()) != 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	for _, rep := range rt.replicas {
		rep.healthy.Store(true)
	}

	resp := postTenant(t, ts.URL, tenantFor(t, rt, deadURL), `{"expr": "1"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if got := rt.m.failovers.With(reasonTransport).Value(); got != 1 {
		t.Fatalf("transport failovers %d, want 1", got)
	}
	if len(rt.healthySnapshot()) != 1 {
		t.Fatal("dead replica not dropped from ring")
	}
}

// TestHealthGate: a replica whose /readyz flips 503 leaves the ring
// within a poll interval and traffic avoids it; when it recovers, its
// keys come home.
func TestHealthGate(t *testing.T) {
	a := newStub(t, ok200)
	b := newStub(t, ok200)
	rt, ts := newTestRouter(t, Config{
		Replicas:    []string{a.ts.URL, b.ts.URL},
		HealthEvery: 10 * time.Millisecond,
	})
	tenant := tenantFor(t, rt, a.ts.URL)

	a.setReady(false)
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.healthySnapshot()) != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(rt.healthySnapshot()) != 1 {
		t.Fatal("unready replica never left the ring")
	}
	before := a.hitCount()
	resp := postTenant(t, ts.URL, tenant, `{"expr": "1"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d with one healthy replica", resp.StatusCode)
	}
	if a.hitCount() != before {
		t.Fatal("gated replica still saw traffic")
	}

	a.setReady(true)
	deadline = time.Now().Add(5 * time.Second)
	for len(rt.healthySnapshot()) != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	resp = postTenant(t, ts.URL, tenant, `{"expr": "1"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if a.hitCount() != before+1 {
		t.Fatal("recovered replica did not get its key back")
	}
}

// TestNoHealthyReplica: everything down — clients get 503 in the wire
// error encoding and the router's own readiness flips.
func TestNoHealthyReplica(t *testing.T) {
	a := newStub(t, ok200)
	rt, ts := newTestRouter(t, Config{Replicas: []string{a.ts.URL}, HealthEvery: 10 * time.Millisecond})
	a.setReady(false)
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.healthySnapshot()) != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	resp := postTenant(t, ts.URL, "", `{"expr": "1"}`)
	var res wire.Result
	err := json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || err != nil || res.Error == nil {
		t.Fatalf("no-replica answer: %d %v %+v", resp.StatusCode, err, res.Error)
	}
	if rt.m.noReplica.Value() != 1 {
		t.Fatalf("no_replica counter %d", rt.m.noReplica.Value())
	}
	r2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router readyz %d with empty ring", r2.StatusCode)
	}
}

// TestRequestIDThroughRouter: a client id is forwarded to the replica
// and echoed back; absent one, the router mints an id and both sides
// see the same value.
func TestRequestIDThroughRouter(t *testing.T) {
	stub := newStub(t, ok200)
	_, ts := newTestRouter(t, Config{Replicas: []string{stub.ts.URL}})

	req, _ := http.NewRequest("POST", ts.URL+"/eval", strings.NewReader(`{"expr": "1"}`))
	req.Header.Set(wire.RequestIDHeader, "client-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(wire.RequestIDHeader); got != "client-rid-1" {
		t.Fatalf("echoed id %q", got)
	}

	resp2 := postTenant(t, ts.URL, "", `{"expr": "1"}`)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	minted := resp2.Header.Get(wire.RequestIDHeader)
	if !wire.ValidRequestID(minted) {
		t.Fatalf("minted id %q", minted)
	}

	stub.mu.Lock()
	rids := append([]string(nil), stub.rids...)
	stub.mu.Unlock()
	if len(rids) != 2 || rids[0] != "client-rid-1" || rids[1] != minted {
		t.Fatalf("replica saw ids %v, want [client-rid-1 %s]", rids, minted)
	}
}

// ---------------------------------------------------------------------
// Real-replica tests: affinity, scatter, drain

// newCluster boots n real selfserved cores (each its own world and
// code cache, like separate processes) behind a router.
func newCluster(t *testing.T, n int, pol Policy, cfg server.Config) ([]*server.Server, *Router, *httptest.Server) {
	t.Helper()
	if cfg.Benches == nil {
		cfg.Benches = []string{}
	}
	var servers []*server.Server
	var urls []string
	for i := 0; i < n; i++ {
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, s)
		urls = append(urls, ts.URL)
	}
	rt, front := newTestRouter(t, Config{
		Replicas:    urls,
		Policy:      pol,
		HealthEvery: 20 * time.Millisecond,
	})
	return servers, rt, front
}

// evalBodies builds k distinct eval bodies (distinct affinity keys).
func evalBodies(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf(`{"expr": "%d + %d"}`, 100+i, i)
	}
	return out
}

// TestAffinityCompileOnce is the tentpole's acceptance criterion in
// miniature: K distinct programs, repeated, through a 3-replica
// cluster — every program must intern (and compile) on EXACTLY one
// replica, so the fleet pays K compiles, not 3K.
func TestAffinityCompileOnce(t *testing.T) {
	servers, rt, front := newCluster(t, 3, PolicyAffinity, server.Config{Pool: 2})
	const K = 12
	bodies := evalBodies(K)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, body := range bodies {
					resp := postTenant(t, front.URL, "", body)
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("worker %d body %d: status %d %s", w, i, resp.StatusCode, b)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	total, replicasUsed := 0, 0
	for i, s := range servers {
		n := s.InternedExprs()
		total += n
		if n > 0 {
			replicasUsed++
		}
		t.Logf("replica %d interned %d exprs", i, n)
	}
	if total != K {
		t.Fatalf("fleet interned %d distinct exprs for %d keys — affinity must pin each to one replica", total, K)
	}
	if replicasUsed < 2 {
		t.Fatalf("all keys landed on %d replica(s) — rendezvous not spreading", replicasUsed)
	}
	// No failovers happened, so routed splits exactly along ownership.
	var routedTotal int64
	for _, s := range rt.replicas {
		routedTotal += rt.m.routed.With(s.name).Value()
	}
	if want := int64(4 * 3 * K); routedTotal != want {
		t.Fatalf("routed %d, want %d", routedTotal, want)
	}
}

// TestRandomPolicyScattersCompiles is the control arm: the same trace
// under PolicyRandom compiles each program on (almost surely) more
// than one replica — the redundant work affinity routing exists to
// avoid. The >= 2x bound here is the BENCH_serve acceptance bar.
func TestRandomPolicyScattersCompiles(t *testing.T) {
	servers, _, front := newCluster(t, 3, PolicyRandom, server.Config{Pool: 2})
	const K = 12
	bodies := evalBodies(K)
	for rep := 0; rep < 6; rep++ {
		for _, body := range bodies {
			resp := postTenant(t, front.URL, "", body)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("status %d", resp.StatusCode)
			}
		}
	}
	total := 0
	for _, s := range servers {
		total += s.InternedExprs()
	}
	if total < 2*K {
		t.Fatalf("random routing interned %d exprs for %d keys, want >= %d (scatter)", total, K, 2*K)
	}
}

// TestTenantOverridesBodyKey: with a tenant header, two DIFFERENT
// programs from one tenant land on one replica — tenant isolation is
// coarser than program affinity.
func TestTenantOverridesBodyKey(t *testing.T) {
	servers, _, front := newCluster(t, 3, PolicyAffinity, server.Config{Pool: 2})
	bodies := evalBodies(8)
	for _, body := range bodies {
		resp := postTenant(t, front.URL, "acme-corp", body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	used := 0
	for _, s := range servers {
		if s.InternedExprs() > 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("tenant's programs spread over %d replicas, want 1", used)
	}
}

// TestDrainUnderRouter: the satellite's scenario. A replica serving
// live traffic starts a SIGTERM-style drain: its /readyz flips, the
// health poll drops it from the ring, its keys fail over, in-flight
// requests finish — and the client behind the router observes ZERO
// failed responses throughout.
func TestDrainUnderRouter(t *testing.T) {
	servers, rt, front := newCluster(t, 3, PolicyAffinity,
		server.Config{Pool: 2, DefaultDeadline: time.Minute})
	const K = 9
	bodies := evalBodies(K)

	// Park a slow request on whichever replica owns its key, so the
	// drain provably overlaps an in-flight run.
	slowDone := make(chan int, 1)
	go func() {
		resp := postTenant(t, front.URL, "",
			`{"expr": "| s <- 0 | 1 upTo: 3000000 Do: [ :i | s: s + 1 ]. s"}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	var victim *server.Server
	deadline := time.Now().Add(10 * time.Second)
	for victim == nil && time.Now().Before(deadline) {
		for _, s := range servers {
			if s.InFlight() > 0 {
				victim = s
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if victim == nil {
		t.Fatal("slow request never showed up in flight")
	}

	// Steady traffic through the drain, all statuses recorded.
	var mu sync.Mutex
	statuses := map[int]int{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp := postTenant(t, front.URL, "", bodies[(w+i)%K])
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond) // traffic flowing
	victim.Drain()                    // what SIGTERM does in cmd/selfserved

	// The ring must drop the draining replica.
	deadline = time.Now().Add(5 * time.Second)
	for len(rt.healthySnapshot()) != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(rt.healthySnapshot()); got != 2 {
		t.Fatalf("ring has %d replicas after drain, want 2", got)
	}
	time.Sleep(100 * time.Millisecond) // keep load on the shrunken ring
	close(stop)
	wg.Wait()

	// The in-flight request on the drained replica finished fine.
	if code := <-slowDone; code != 200 {
		t.Fatalf("in-flight request during drain answered %d", code)
	}
	// Zero failed responses at the router: every request answered 200.
	mu.Lock()
	defer mu.Unlock()
	if statuses[200] == 0 {
		t.Fatal("no traffic observed")
	}
	for code, n := range statuses {
		if code != 200 {
			t.Errorf("%d responses with status %d during drain, want none", n, code)
		}
	}
}

// TestStatuszAndMetricsExposition: the router's own observability
// surface carries the ring and the routing counters.
func TestStatuszAndMetricsExposition(t *testing.T) {
	stub := newStub(t, ok200)
	_, ts := newTestRouter(t, Config{Replicas: []string{stub.ts.URL}})
	resp := postTenant(t, ts.URL, "", `{"expr": "1"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	r2, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var view statuszView
	err = json.NewDecoder(r2.Body).Decode(&view)
	r2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if view.Policy != "affinity" || len(view.Replicas) != 1 ||
		!view.Replicas[0].Healthy || view.Replicas[0].Routed != 1 {
		t.Fatalf("statusz %+v", view)
	}

	r3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	for _, want := range []string{
		`selfrouter_requests_total{endpoint="/eval",code="200"} 1`,
		`selfrouter_routed_total{replica="` + stub.ts.URL + `"} 1`,
		`selfrouter_failovers_total{reason="shed"} 0`,
		"selfrouter_replicas_healthy 1",
		`selfrouter_affinity_keys_total{source="body"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestStatuszBootProvenance: the router's /statusz carries the
// fleet-wide boot block — always "cold" (a router has no world), with
// a recorded construction time.
func TestStatuszBootProvenance(t *testing.T) {
	a := newStub(t, ok200)
	_, ts := newTestRouter(t, Config{Replicas: []string{a.ts.URL}})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Boot struct {
			Image       string  `json:"image"`
			BootSeconds float64 `json:"boot_seconds"`
			Prepromoted int64   `json:"prepromoted"`
			Ready       bool    `json:"ready"`
		} `json:"boot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Boot.Image != "cold" || !view.Boot.Ready || view.Boot.Prepromoted != 0 {
		t.Fatalf("router boot block: %+v", view.Boot)
	}
	if view.Boot.BootSeconds <= 0 {
		t.Fatalf("router boot_seconds %v, want > 0", view.Boot.BootSeconds)
	}
}
