// Package router is selfrouter's core: an HTTP front proxy that
// spreads selfserved traffic over N replicas by cache affinity, so
// each replica's code cache, inline caches and tier promotions stay
// warm for the keys it owns.
//
// Why affinity and not load balancing: the whole economy of the
// compile-once architecture (and of the paper's iterative type
// analysis underneath it) is that compiled, customized, promoted code
// is REUSED. A replica that keeps seeing the same programs answers
// from warm cache at native tier; a replica seeing a random sample of
// everything re-pays compilation and promotion for every key times N
// replicas. So the router hashes an affinity key — the tenant header
// if the client sent one, else the program/expression/benchmark
// identity derived from the body by internal/wire — onto the replica
// set with rendezvous (highest-random-weight) hashing:
//
//   - every key has a stable total order over replicas (its
//     "preference list"), so the same program always lands on the
//     same replica while that replica is healthy;
//   - when a replica leaves (drain, crash) only ITS keys move, each
//     to the next replica in its own preference list — no global
//     reshuffle, every other replica's cache stays intact;
//   - when it returns, its keys snap back.
//
// Replicas are health-gated on their /readyz (a draining selfserved
// flips it 503, see internal/server), and the router does shed-aware
// failover: a 429 (admission shed), 503 (drain raced the health
// poll) or transport error on the first-choice replica is retried
// once on the next replica in the key's preference list. The retry
// is counted per reason in the router's own /metrics; a shed answer
// that survives the retry is returned with the larger Retry-After of
// the two replicas, so clients and upstream load generators back off
// on an honest signal.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"selfgo/internal/metrics"
	"selfgo/internal/wire"
)

// Config shapes a Router.
type Config struct {
	// Replicas is the selfserved base URLs ("http://host:port"). At
	// least one is required.
	Replicas []string

	// Policy selects the routing policy: PolicyAffinity (default)
	// rendezvous-hashes the affinity key; PolicyRandom scatters
	// requests over healthy replicas ignoring the key — it exists as
	// the experimental control for the affinity win, not for
	// production use.
	Policy Policy

	// TenantHeader names the header whose value, when present,
	// overrides the body-derived affinity key (default "X-Tenant").
	// Routing whole tenants keeps every key of a tenant on one
	// replica — coarser, but it isolates noisy neighbors.
	TenantHeader string

	// HealthEvery is the /readyz poll interval (default 250ms);
	// HealthTimeout bounds each probe (default 1s).
	HealthEvery   time.Duration
	HealthTimeout time.Duration

	// MaxBody bounds the request bytes the router will buffer for
	// routing and retry (default wire.DefaultMaxBody). Larger bodies
	// are rejected with 413 before any replica sees them.
	MaxBody int64

	// Client issues the proxied requests (default: a client with no
	// overall timeout — per-request deadlines belong to the replicas'
	// budget machinery, and benchmark runs can be legitimately slow).
	Client *http.Client
}

// Policy is the routing policy.
type Policy int

const (
	// PolicyAffinity rendezvous-hashes the affinity key (default).
	PolicyAffinity Policy = iota
	// PolicyRandom ignores the key and scatters load — the control
	// arm of the affinity experiment.
	PolicyRandom
)

func (p Policy) String() string {
	if p == PolicyRandom {
		return "random"
	}
	return "affinity"
}

// PolicyByName parses a -policy flag value.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "affinity", "":
		return PolicyAffinity, nil
	case "random":
		return PolicyRandom, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want affinity or random)", name)
}

func (c Config) withDefaults() Config {
	if c.TenantHeader == "" {
		c.TenantHeader = "X-Tenant"
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = wire.DefaultMaxBody
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// replica is one backend and its gate state.
type replica struct {
	name    string // base URL, also the metrics label
	healthy atomic.Bool
}

// Router is the proxy's state. Build with New, serve Handler(), stop
// the health loop with Close.
type Router struct {
	cfg      Config
	reg      *metrics.Registry
	replicas []*replica
	start    time.Time
	bootDur  time.Duration // New() construction time; routers are always cold-booted
	stop     chan struct{}
	stopped  chan struct{}
	scatter  atomic.Uint64 // PolicyRandom sequence

	m routerMetrics
}

// New validates the config, marks every replica healthy (the first
// poll corrects optimism within HealthEvery), starts the health loop
// and wires the metrics registry.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: at least one replica is required")
	}
	seen := map[string]bool{}
	rt := &Router{
		cfg:     cfg,
		reg:     metrics.NewRegistry(),
		start:   time.Now(),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for _, name := range cfg.Replicas {
		if name == "" || seen[name] {
			return nil, fmt.Errorf("router: empty or duplicate replica %q", name)
		}
		seen[name] = true
		r := &replica{name: name}
		r.healthy.Store(true)
		rt.replicas = append(rt.replicas, r)
	}
	rt.registerMetrics()
	rt.bootDur = time.Since(rt.start)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop.
func (rt *Router) Close() {
	close(rt.stop)
	<-rt.stopped
}

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *metrics.Registry { return rt.reg }

// healthLoop polls every replica's /readyz on the configured cadence.
// A replica is in the ring iff its latest probe answered 200.
func (rt *Router) healthLoop() {
	defer close(rt.stopped)
	tick := time.NewTicker(rt.cfg.HealthEvery)
	defer tick.Stop()
	rt.probeAll() // correct the optimistic start immediately
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	for _, r := range rt.replicas {
		healthy := rt.probe(r)
		if healthy != r.healthy.Swap(healthy) {
			if healthy {
				rt.m.transitions.With(r.name, "up").Inc()
			} else {
				rt.m.transitions.With(r.name, "down").Inc()
			}
		}
	}
}

func (rt *Router) probe(r *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", r.name+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markUnhealthy drops a replica from the ring immediately on a
// transport failure, without waiting for the next probe — the probe
// loop will re-admit it when /readyz answers again.
func (rt *Router) markUnhealthy(r *replica) {
	if r.healthy.Swap(false) {
		rt.m.transitions.With(r.name, "down").Inc()
	}
}

// healthySnapshot returns the replicas currently in the ring.
func (rt *Router) healthySnapshot() []*replica {
	out := make([]*replica, 0, len(rt.replicas))
	for _, r := range rt.replicas {
		if r.healthy.Load() {
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Rendezvous hashing

// score is the rendezvous weight of (key, replica): a 64-bit FNV-1a
// over the key and the replica name, separated so "ab"+"c" and
// "a"+"bc" cannot collide. Deterministic across processes and
// restarts — the ranking is a pure function of the strings.
func score(key, replicaName string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	h.Write([]byte{0xff})
	io.WriteString(h, replicaName)
	return h.Sum64()
}

// rank orders the given replicas by descending rendezvous score for
// key: rank(...)[0] is the key's home, [1] the first failover target,
// and so on. Ties (vanishingly rare) break on name for determinism.
func rank(key string, replicas []*replica) []*replica {
	ranked := append([]*replica(nil), replicas...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score(key, ranked[i].name), score(key, ranked[j].name)
		if si != sj {
			return si > sj
		}
		return ranked[i].name < ranked[j].name
	})
	return ranked
}

// preference computes the routing order for one request: the key's
// rendezvous ranking over healthy replicas, or a scattered order
// under PolicyRandom (the experiment's control arm — successive
// requests cycle pseudo-randomly over the ring, so every key visits
// every replica).
func (rt *Router) preference(key string) []*replica {
	healthy := rt.healthySnapshot()
	if len(healthy) == 0 {
		return nil
	}
	if rt.cfg.Policy == PolicyRandom {
		// A splitmix-style scramble of a sequence counter: uniform,
		// cheap, and deliberately ignoring the key.
		seq := rt.scatter.Add(1) * 0x9e3779b97f4a7c15
		seq ^= seq >> 31
		start := int(seq % uint64(len(healthy)))
		out := make([]*replica, 0, len(healthy))
		for i := 0; i < len(healthy); i++ {
			out = append(out, healthy[(start+i)%len(healthy)])
		}
		return out
	}
	return rank(key, healthy)
}

// affinityKey derives the routing key: tenant header first (coarse,
// isolates tenants), else the body's program identity via wire, else
// a raw-bytes hash.
func (rt *Router) affinityKey(r *http.Request, endpoint string, body []byte) (key, source string) {
	if tenant := r.Header.Get(rt.cfg.TenantHeader); tenant != "" {
		return "tenant:" + tenant, "tenant"
	}
	if key, ok := wire.AffinityKey(endpoint, body); ok {
		return key, "body"
	}
	return wire.RawAffinityKey(body), "raw"
}

// ---------------------------------------------------------------------
// Proxy path

// Handler returns the router's HTTP surface: the two serving
// endpoints proxied by affinity, plus the router's own observability.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /eval", rt.proxy("/eval"))
	mux.Handle("POST /run", rt.proxy("/run"))
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /statusz", rt.handleStatusz)
	return mux
}

// failover reasons (the label values of selfrouter_failovers_total).
const (
	reasonShed      = "shed"      // 429: replica's admission queue full
	reasonDraining  = "draining"  // 503: replica draining, health poll hadn't caught it yet
	reasonTransport = "transport" // connection refused/reset mid-request
)

// proxy builds the handler for one routed endpoint.
func (rt *Router) proxy(endpoint string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := rt.route(w, r, endpoint)
		rt.m.requests.With(endpoint, strconv.Itoa(code)).Inc()
		rt.m.latency.With(endpoint).Observe(time.Since(start).Seconds())
	})
}

// route is the proxy path: buffer the body, derive the key, walk the
// key's preference list with at most one failover, relay the answer.
// Returns the status sent to the client.
func (rt *Router) route(w http.ResponseWriter, r *http.Request, endpoint string) int {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBody+1))
	if err != nil {
		return rt.fail(w, r, http.StatusBadRequest, "request", fmt.Sprintf("reading body: %v", err))
	}
	if int64(len(body)) > rt.cfg.MaxBody {
		return rt.fail(w, r, http.StatusRequestEntityTooLarge, "request",
			fmt.Sprintf("body exceeds %d bytes", rt.cfg.MaxBody))
	}

	// One id per client request, forwarded to every attempt, echoed on
	// the answer: the replica's logs and the client see the same id.
	rid := r.Header.Get(wire.RequestIDHeader)
	if !wire.ValidRequestID(rid) {
		rid = wire.NewRequestID()
	}
	w.Header().Set(wire.RequestIDHeader, rid)

	key, source := rt.affinityKey(r, endpoint, body)
	rt.m.keys.With(source).Inc()

	prefs := rt.preference(key)
	if len(prefs) == 0 {
		rt.m.noReplica.Inc()
		return rt.fail(w, r, http.StatusServiceUnavailable, "no_replica", "no healthy replica")
	}
	if len(prefs) > 2 {
		prefs = prefs[:2] // home + one failover: bounded work under overload
	}

	var lastShed *http.Response // kept only for the final 429 relay
	var lastShedBody []byte
	for i, rep := range prefs {
		resp, err := rt.forward(r, rep, endpoint, body, rid)
		if err != nil {
			rt.markUnhealthy(rep)
			if i+1 < len(prefs) {
				rt.m.failovers.With(reasonTransport).Inc()
				continue
			}
			return rt.fail(w, r, http.StatusBadGateway, "transport",
				fmt.Sprintf("replica %s: %v", rep.name, err))
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			// Shed-aware failover: the replica told us its queue is
			// full; the next replica in the preference list may have
			// room. Honor the Retry-After either way — if the retry
			// also sheds, the client gets the larger of the two hints.
			b, _ := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
			resp.Body.Close()
			if lastShed == nil || retryAfterOf(resp) > retryAfterOf(lastShed) {
				lastShed, lastShedBody = resp, b
			}
			if i+1 < len(prefs) {
				rt.m.failovers.With(reasonShed).Inc()
				continue
			}
			return rt.relayBuffered(w, lastShed, lastShedBody)
		case http.StatusServiceUnavailable:
			// The replica is draining and the health poll hasn't
			// flipped it yet. Take it out now and fail over.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.markUnhealthy(rep)
			if i+1 < len(prefs) {
				rt.m.failovers.With(reasonDraining).Inc()
				continue
			}
			return rt.fail(w, r, http.StatusServiceUnavailable, "draining",
				fmt.Sprintf("replica %s is draining", rep.name))
		}
		rt.m.routed.With(rep.name).Inc()
		return rt.relay(w, resp)
	}
	// Unreachable: the loop always returns on its last iteration.
	return rt.fail(w, r, http.StatusInternalServerError, "internal", "routing fell through")
}

// forward re-issues the buffered request to one replica.
func (rt *Router) forward(r *http.Request, rep *replica, endpoint string, body []byte, rid string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), "POST", rep.name+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(wire.RequestIDHeader, rid)
	if tenant := r.Header.Get(rt.cfg.TenantHeader); tenant != "" {
		req.Header.Set(rt.cfg.TenantHeader, tenant)
	}
	return rt.cfg.Client.Do(req)
}

// relay copies a replica's answer to the client: status, the headers
// that matter (content type, Retry-After), then the body streamed
// through.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) int {
	defer resp.Body.Close()
	copyRelayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return resp.StatusCode
}

// relayBuffered relays an answer whose body was already drained (the
// shed path reads bodies so it can pick the larger Retry-After).
func (rt *Router) relayBuffered(w http.ResponseWriter, resp *http.Response, body []byte) int {
	copyRelayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
	return resp.StatusCode
}

func copyRelayHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// retryAfterOf parses a response's Retry-After seconds (0 if absent
// or malformed).
func retryAfterOf(resp *http.Response) int {
	n, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// fail answers a router-level error in the wire error encoding, so
// clients see one vocabulary whether the failure happened here or on
// a replica.
func (rt *Router) fail(w http.ResponseWriter, r *http.Request, status int, kind, msg string) int {
	rid := w.Header().Get(wire.RequestIDHeader)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	res := &wire.Result{Error: &wire.ErrorJSON{Kind: kind, Message: msg, RequestID: rid}}
	_ = res.Encode(w)
	return status
}

// ---------------------------------------------------------------------
// Observability endpoints

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.WriteText(w)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: the router is ready iff it can route somewhere.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(rt.healthySnapshot()) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no healthy replica")
		return
	}
	fmt.Fprintln(w, "ready")
}

// statuszView is the human-readable JSON snapshot of the router.
type statuszView struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Policy        string          `json:"policy"`
	TenantHeader  string          `json:"tenant_header"`
	Boot          bootStatus      `json:"boot"`
	Replicas      []replicaStatus `json:"replicas"`
}

// bootStatus is the boot-provenance block every tier of the fleet
// exposes on /statusz. The router has no world to restore, so its
// image is always "cold" and prepromoted always 0; the fields exist so
// fleet tooling can scrape one shape everywhere.
type bootStatus struct {
	Image       string  `json:"image"`
	BootSeconds float64 `json:"boot_seconds"`
	Prepromoted int64   `json:"prepromoted"`
	Ready       bool    `json:"ready"`
}

type replicaStatus struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Routed  int64  `json:"routed"`
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	view := &statuszView{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Policy:        rt.cfg.Policy.String(),
		TenantHeader:  rt.cfg.TenantHeader,
		Boot: bootStatus{
			Image:       "cold",
			BootSeconds: rt.bootDur.Seconds(),
			Ready:       true,
		},
	}
	for _, rep := range rt.replicas {
		view.Replicas = append(view.Replicas, replicaStatus{
			Name:    rep.name,
			Healthy: rep.healthy.Load(),
			Routed:  rt.m.routed.With(rep.name).Value(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view)
}
