package router

import (
	"time"

	"selfgo/internal/metrics"
)

// routerMetrics holds the write-side handles of the router's own
// metric families — the fleet-level view the replicas cannot see:
// where requests landed, how often the first-choice replica had to be
// skipped, and how the ring's membership moved.
type routerMetrics struct {
	requests  *metrics.CounterVec   // endpoint, code: answers to clients
	latency   *metrics.HistogramVec // endpoint: client-observed, failover included
	routed    *metrics.CounterVec   // replica: requests answered by each backend
	failovers *metrics.CounterVec   // reason: first-choice skipped (shed/draining/transport)
	keys      *metrics.CounterVec   // source: how the affinity key was derived
	noReplica *metrics.Counter      // requests refused with no healthy replica

	transitions *metrics.CounterVec // replica, direction: ring membership changes
}

func (rt *Router) registerMetrics() {
	r := rt.reg

	rt.m.requests = r.CounterVec("selfrouter_requests_total",
		"Requests answered to clients, by endpoint and HTTP status code.", "endpoint", "code")
	rt.m.latency = r.HistogramVec("selfrouter_request_seconds",
		"Client-observed request latency by endpoint, failover retries included.",
		metrics.DefBuckets, "endpoint")
	rt.m.routed = r.CounterVec("selfrouter_routed_total",
		"Requests answered by each replica (failover target counted, skipped home not).", "replica")
	rt.m.failovers = r.CounterVec("selfrouter_failovers_total",
		"First-choice replica skipped and the next in the preference list tried, by reason.", "reason")
	rt.m.keys = r.CounterVec("selfrouter_affinity_keys_total",
		"Routed requests by affinity-key source: tenant header, body identity, or raw-bytes fallback.", "source")
	rt.m.noReplica = r.Counter("selfrouter_no_replica_total",
		"Requests refused with 503 because no replica was healthy.")
	rt.m.transitions = r.CounterVec("selfrouter_replica_transitions_total",
		"Ring membership changes per replica, by direction (up/down).", "replica", "direction")

	// Pre-create the per-replica and per-reason series so scrapes see
	// zeros instead of absent series before the first event.
	for _, rep := range rt.replicas {
		rt.m.routed.With(rep.name)
	}
	for _, reason := range []string{reasonShed, reasonDraining, reasonTransport} {
		rt.m.failovers.With(reason)
	}

	r.RegisterFunc("selfrouter_replica_healthy",
		"1 while the replica's latest /readyz probe answered 200.",
		metrics.KindGauge, []string{"replica"}, func() []metrics.Sample {
			out := make([]metrics.Sample, 0, len(rt.replicas))
			for _, rep := range rt.replicas {
				v := 0.0
				if rep.healthy.Load() {
					v = 1
				}
				out = append(out, metrics.Sample{Labels: []string{rep.name}, Value: v})
			}
			return out
		})
	r.GaugeFunc("selfrouter_replicas_healthy",
		"Replicas currently in the rendezvous ring.",
		func() float64 { return float64(len(rt.healthySnapshot())) })
	r.GaugeFunc("selfrouter_uptime_seconds",
		"Seconds since the router started.",
		func() float64 { return time.Since(rt.start).Seconds() })
}
