// Package server is selfserved's core: an HTTP/JSON front end that
// parses, compiles and runs Self programs on a pool of forked VMs
// sharing one world and one single-flight code cache — the
// compile-once/run-many architecture of the shared cache, turned into
// a long-running multi-tenant service.
//
// Production shape:
//
//   - a bounded pool of worker Systems (Fork of one shared root), one
//     request per worker at a time;
//   - a bounded admission queue in front of the pool — when it is
//     full, requests are shed immediately with 429 instead of piling
//     up;
//   - per-request Budget and deadline, clamped by server-wide caps,
//     enforced by the VM's cooperative poll (whose stride tightens
//     automatically for short deadlines);
//   - context cancellation end to end: a dropped client connection
//     aborts the guest run at the next poll;
//   - fault containment: guest faults, compiler failures and panics
//     surface as typed JSON errors (the RuntimeError kind taxonomy),
//     never as a crashed process;
//   - interning: repeated program texts load once, repeated eval
//     expressions compile once (bounded LRU, entries evicted from the
//     shared cache on rotation);
//   - observability: every layer (admission, VM run counters, code
//     cache, tier promotion) exports through internal/metrics on
//     /metrics, with /statusz as the human-readable JSON view.
package server

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"selfgo"
	"selfgo/internal/bench"
	"selfgo/internal/metrics"
	"selfgo/internal/wire"
)

// Config shapes a Server. The zero value is usable: it serves the
// paper's eager-optimizing tier with defaults suitable for tests.
type Config struct {
	// Compiler is the compiler generation (zero Name selects
	// selfgo.NewSELF).
	Compiler selfgo.Config
	// Mode is the tier schedule (ModeOpt, ModeBaseline, ModeAdaptive).
	Mode selfgo.TierMode
	// PromoteThreshold is the adaptive promotion threshold (<= 0 uses
	// the default).
	PromoteThreshold int64

	// Pool is the number of worker VMs (default 4).
	Pool int
	// QueueDepth bounds requests waiting for a worker; one more and
	// the server sheds with 429 (default 16).
	QueueDepth int

	// MaxInstrs/MaxAllocs/MaxDepth cap every request's budget; a
	// request may ask for less, never more. Defaults: 1e9 instructions,
	// 1e8 allocations, 10000 frames.
	MaxInstrs int64
	MaxAllocs int64
	MaxDepth  int
	// MaxBytes caps the modelled bytes of vector/clone storage a
	// request may allocate (16 bytes per element/field slot). Unlike
	// the poll-checked axes it is enforced at the allocation site, so
	// one hostile `_NewVec:` faults with 422 instead of OOMing the
	// host. Default 64 MiB — three orders of magnitude above what the
	// preloaded benchmarks touch, and it bounds each worker's peak
	// value storage to something a small container survives.
	MaxBytes int64
	// DefaultDeadline applies when a request names none (default 10s);
	// MaxDeadline caps what a request may ask for (default 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// PollEvery tightens the cooperative poll stride for every request
	// (0 keeps the VM default; requests may tighten further but not
	// loosen). Deadlines at or under ShortDeadline always poll at
	// least every shortDeadlineStride instructions.
	PollEvery int64

	// Limits bounds request decoding (zero fields take wire defaults).
	Limits wire.Limits

	// Benches names the benchmarks preloaded for POST /run; nil
	// preloads every ParallelSafe benchmark, empty-but-non-nil none.
	Benches []string

	// MaxPrograms bounds distinct program texts loaded into the world
	// over the server's lifetime (default 256; the world cannot unload
	// code, so past the cap new programs are rejected).
	MaxPrograms int
	// MaxEvalPrograms bounds the interned eval-expression LRU
	// (default 1024; past it the least-recently-used entry is dropped
	// and its compiled code evicted from the shared cache).
	MaxEvalPrograms int

	// ImagePath, when set, boots the world from that image instead of
	// cold-loading the prelude: the image's recorded sources are
	// replayed, saved object state is restored on top, interned eval
	// programs are re-seeded, and the code-cache manifest is
	// re-compiled in the background. /readyz stays 503 until that
	// pre-promotion finishes.
	ImagePath string
}

// ShortDeadline is the deadline at or below which the server forces a
// tight poll stride, so cancellation latency stays well under the
// deadline itself.
const ShortDeadline = 100 * time.Millisecond

const shortDeadlineStride = 128

func (c Config) withDefaults() Config {
	if c.Compiler.Name == "" {
		c.Compiler = selfgo.NewSELF
	}
	if c.Pool <= 0 {
		c.Pool = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxInstrs <= 0 {
		c.MaxInstrs = 1_000_000_000
	}
	if c.MaxAllocs <= 0 {
		c.MaxAllocs = 100_000_000
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10_000
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 256
	}
	if c.MaxEvalPrograms <= 0 {
		c.MaxEvalPrograms = 1024
	}
	return c
}

// benchEntry is one preloaded named benchmark.
type benchEntry struct {
	b bench.Benchmark
}

// Server is the daemon's state. Build with New, serve Handler().
type Server struct {
	cfg   Config
	reg   *metrics.Registry
	root  *selfgo.System
	pool  chan *selfgo.System
	start time.Time

	// worldMu serializes world mutation (program loads) against guest
	// runs: runs hold it shared, loads exclusive. Loads are rare
	// (once per distinct program text), so the common path is an
	// uncontended RLock.
	worldMu sync.RWMutex
	// loadMu serializes loaders so a burst of requests for the same
	// new program runs one load, not a convoy.
	loadMu sync.Mutex

	// progMu guards the two interning tables.
	progMu   sync.Mutex
	loaded   map[[sha256.Size]byte]bool // program texts already in the world
	exprs    map[[sha256.Size]byte]*exprEntry
	exprLRU  []*exprEntry // front = most recent
	benches  map[string]benchEntry
	queued   atomic.Int64
	inFlight atomic.Int64
	poolPeak atomic.Int64 // high-water mark of checked-out workers
	draining atomic.Bool
	served   atomic.Int64 // requests answered (any status)
	drained  atomic.Int64 // requests completed while draining

	// Boot provenance. imageHash and restoreDur are fixed at New
	// ("" / 0 for a cold boot); ready flips once background
	// pre-promotion finishes (immediately on a cold boot), and
	// readySeconds records the time-to-ready at that moment.
	imageHash        string
	restoreDur       time.Duration
	prepromoted      atomic.Int64
	prepromoteFailed atomic.Int64
	ready            atomic.Bool
	readySeconds     atomic.Int64 // microseconds, stored once

	m serverMetrics
}

type exprEntry struct {
	key  [sha256.Size]byte
	prog *selfgo.EvalProgram
	last int64 // logical clock for LRU
}

// New builds the shared system — cold (prelude load) or warm (world
// image replay + restore) — preloads the named benchmarks, forks the
// worker pool, and wires the metrics registry. On a warm boot the
// manifest pre-promotion runs in the background; /readyz reports 503
// until it finishes.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     metrics.NewRegistry(),
		pool:    make(chan *selfgo.System, cfg.Pool),
		start:   time.Now(),
		loaded:  map[[sha256.Size]byte]bool{},
		exprs:   map[[sha256.Size]byte]*exprEntry{},
		benches: map[string]benchEntry{},
	}

	var boot *selfgo.Boot
	if cfg.ImagePath != "" {
		f, err := os.Open(cfg.ImagePath)
		if err != nil {
			return nil, fmt.Errorf("opening image: %w", err)
		}
		boot, err = selfgo.BootFromImage(f, cfg.Compiler, cfg.Mode, cfg.PromoteThreshold)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("booting from image %s: %w", cfg.ImagePath, err)
		}
		s.root = boot.Sys
		s.imageHash = boot.Hash
		s.restoreDur = boot.RestoreDuration
		// The replayed sources are already in the world: seed the
		// program-dedup table so a trace that re-submits them does not
		// re-load (a re-load would reshape maps and invalidate the
		// code the manifest is about to rebuild). Same for the
		// restored eval programs: re-seeding the intern table keeps
		// their identity — and thus their pre-promoted cache entries —
		// live for replayed /eval traffic.
		for _, src := range boot.Sources {
			s.loaded[sha256.Sum256([]byte(src))] = true
		}
		for _, p := range boot.Programs {
			key := sha256.Sum256([]byte(p.Source))
			s.exprs[key] = &exprEntry{key: key, prog: p, last: s.touch()}
		}
	} else {
		root, err := selfgo.NewTieredSystem(cfg.Compiler, cfg.Mode, cfg.PromoteThreshold)
		if err != nil {
			return nil, err
		}
		s.root = root
	}

	// Preload benchmarks: their sources join the shared world once, so
	// every later /run request is pure execution against warm or
	// warming cache. A warm boot normally replayed them out of the
	// image already; only benchmarks the image does not carry load
	// here.
	names := cfg.Benches
	if names == nil {
		for _, b := range bench.ParallelSafe() {
			names = append(names, b.Name)
		}
	}
	for _, name := range names {
		b, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		if !b.ParallelSafe {
			return nil, fmt.Errorf("benchmark %q keeps state in lobby globals and cannot run on concurrent workers", name)
		}
		if !s.loaded[sha256.Sum256([]byte(b.Source))] {
			if err := s.root.LoadSource(b.Source); err != nil {
				return nil, fmt.Errorf("preloading %s: %w", name, err)
			}
		}
		s.benches[name] = benchEntry{b: b}
	}

	// The pool: the root plus Pool-1 forks. Every worker shares the
	// world, the pipelines and the code cache; each runs one request
	// at a time.
	s.pool <- s.root
	for i := 1; i < cfg.Pool; i++ {
		w, err := s.root.Fork()
		if err != nil {
			return nil, err
		}
		s.pool <- w
	}

	s.registerMetrics()

	if boot != nil && boot.ManifestLen() > 0 {
		// Rebuild the hot code set off the request path. Readiness is
		// gated on completion, so a load balancer only routes here
		// once the manifest's code is resident at its recorded tiers.
		go func() {
			compiled, failed := boot.Prepromote(cfg.Pool)
			s.prepromoted.Store(int64(compiled))
			s.prepromoteFailed.Store(int64(failed))
			s.markReady()
		}()
	} else {
		s.markReady()
	}
	return s, nil
}

// markReady flips the readiness gate once and records time-to-ready.
func (s *Server) markReady() {
	if s.ready.CompareAndSwap(false, true) {
		s.readySeconds.Store(time.Since(s.start).Microseconds())
	}
}

// Ready reports whether boot (including any background manifest
// pre-promotion) has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// BootInfo describes how this process came up, for /statusz.
type BootInfo struct {
	// Image is the booted image's hash, or "cold".
	Image string `json:"image"`
	// ReadySeconds is the time from New to readiness (0 while still
	// warming); RestoreSeconds the image decode+replay+restore time.
	ReadySeconds   float64 `json:"ready_seconds"`
	RestoreSeconds float64 `json:"restore_seconds"`
	// Prepromoted counts manifest entries re-compiled at boot;
	// PrepromoteFailed the ones that fell back to on-demand compiles.
	Prepromoted      int64 `json:"prepromoted"`
	PrepromoteFailed int64 `json:"prepromote_failed"`
	Ready            bool  `json:"ready"`
}

// Boot reports this server's boot provenance.
func (s *Server) Boot() BootInfo {
	info := BootInfo{
		Image:            "cold",
		RestoreSeconds:   s.restoreDur.Seconds(),
		ReadySeconds:     float64(s.readySeconds.Load()) / 1e6,
		Prepromoted:      s.prepromoted.Load(),
		PrepromoteFailed: s.prepromoteFailed.Load(),
		Ready:            s.ready.Load(),
	}
	if s.imageHash != "" {
		info.Image = s.imageHash
	}
	return info
}

// SaveImage writes a world image — sources, object state, interned
// eval programs, code-cache manifest — to path. Meant to run after
// Drain and listener shutdown: it takes the world lock exclusively, so
// any still-running request finishes first, and drains background
// promotions so the manifest sees settled tiers.
func (s *Server) SaveImage(path string) (*selfgo.ImageInfo, error) {
	s.root.DrainPromotions()
	s.worldMu.Lock()
	defer s.worldMu.Unlock()
	s.progMu.Lock()
	entries := make([]*exprEntry, 0, len(s.exprs))
	for _, e := range s.exprs {
		entries = append(entries, e)
	}
	s.progMu.Unlock()
	// Oldest first, so a restored process re-interns in the same
	// relative order and identical cache contents produce identical
	// images.
	sort.Slice(entries, func(i, j int) bool { return entries[i].last < entries[j].last })
	progs := make([]*selfgo.EvalProgram, len(entries))
	for i, e := range entries {
		progs[i] = e.prog
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating image file: %w", err)
	}
	info, err := s.root.SaveImage(f, progs)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("writing image: %w", cerr)
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return info, nil
}

// Registry exposes the metrics registry (cmd/selfserved adds process
// metadata; tests read it directly).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Mode returns the tier schedule the server runs.
func (s *Server) Mode() selfgo.TierMode { return s.cfg.Mode }

// Drain flips the server into draining: /readyz turns 503 so load
// balancers stop sending traffic, and new work is rejected with 503
// while requests already admitted run to completion. The HTTP
// listener's graceful Shutdown does the actual waiting.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Served returns the number of requests answered so far; DrainedOK the
// number completed after Drain.
func (s *Server) Served() int64    { return s.served.Load() }
func (s *Server) DrainedOK() int64 { return s.drained.Load() }

// InFlight returns the number of requests currently executing guest
// code.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// errShed is returned by acquire when the admission queue is full.
var errShed = fmt.Errorf("admission queue full")

// acquire hands out a worker VM, queueing boundedly: if the queue is
// already at QueueDepth the request is shed immediately (429 beats an
// unbounded pileup — the client can back off, the server stays
// responsive). A queued request still honors its context: cancelled
// or expired waiters leave the queue.
func (s *Server) acquire(ctx context.Context) (*selfgo.System, error) {
	select {
	case sys := <-s.pool:
		s.notePoolCheckout()
		return sys, nil
	default:
	}
	if n := s.queued.Add(1); n > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.m.shed.Inc()
		return nil, errShed
	}
	defer s.queued.Add(-1)
	select {
	case sys := <-s.pool:
		s.notePoolCheckout()
		return sys, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// notePoolCheckout folds the post-checkout occupancy into the pool's
// high-water mark. The live in-use gauge can only be point-sampled —
// a cached expression holds a worker for microseconds, so an external
// scraper watching the gauge under load may legitimately never catch
// it nonzero. The peak is the monotone record of the same live
// occupancy that load drivers can assert on after the fact.
func (s *Server) notePoolCheckout() {
	inUse := int64(s.cfg.Pool - len(s.pool))
	for {
		cur := s.poolPeak.Load()
		if inUse <= cur || s.poolPeak.CompareAndSwap(cur, inUse) {
			return
		}
	}
}

// Retry-After bounds: never tell a shed client to come back sooner
// than 1s (it would just be shed again) or later than 30s (past that
// the hint is noise — the client should re-resolve or give up).
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 30
)

// retryAfterSeconds derives the Retry-After hint for a shed request
// from live load: the backlog the client is behind (everything
// running plus everything queued) divided by the pool's parallelism,
// i.e. roughly how many "pool drains" must happen before a retry
// would find a free slot, at an assumed ~1s per drain. Coarse on
// purpose — the value's job is to spread retries of a thundering herd
// proportionally to how overloaded the server actually is, and to
// give a front router an honest shed signal, not to be a latency
// oracle. Always within [minRetryAfterSeconds, maxRetryAfterSeconds].
func (s *Server) retryAfterSeconds() int {
	backlog := s.inFlight.Load() + s.queued.Load()
	pool := int64(s.cfg.Pool)
	secs := (backlog + pool - 1) / pool // ceil(backlog / pool)
	if secs < minRetryAfterSeconds {
		return minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return int(secs)
}

func (s *Server) release(sys *selfgo.System) {
	sys.SetBudget(selfgo.Budget{})
	// End of the worker's arena epoch: if the finished run leaked
	// nothing (the common case — benchmark runs return small ints),
	// the arena's chunks are zeroed and recycled for the next request.
	// Values that escaped the run — stored into the shared world, or
	// returned as the result (runOnWorker pins those via MarkEscaped)
	// — flip the epoch dirty, and Reset abandons its chunks to the Go
	// heap instead, so every surviving reference stays valid.
	sys.ResetArena()
	s.pool <- sys
}

// effectiveBudget clamps the request's asks to the server caps. Zero
// asks mean "as much as allowed", not "unlimited".
func (s *Server) effectiveBudget(req *wire.Budget, deadline time.Duration) selfgo.Budget {
	b := selfgo.Budget{
		MaxInstrs: s.cfg.MaxInstrs,
		MaxAllocs: s.cfg.MaxAllocs,
		MaxDepth:  s.cfg.MaxDepth,
		MaxBytes:  s.cfg.MaxBytes,
		PollEvery: s.cfg.PollEvery,
	}
	if req != nil {
		if req.MaxInstrs > 0 && req.MaxInstrs < b.MaxInstrs {
			b.MaxInstrs = req.MaxInstrs
		}
		if req.MaxAllocs > 0 && req.MaxAllocs < b.MaxAllocs {
			b.MaxAllocs = req.MaxAllocs
		}
		if req.MaxBytes > 0 && req.MaxBytes < b.MaxBytes {
			b.MaxBytes = req.MaxBytes
		}
		if req.MaxDepth > 0 && req.MaxDepth < b.MaxDepth {
			b.MaxDepth = req.MaxDepth
		}
		if req.PollEvery > 0 && (b.PollEvery == 0 || req.PollEvery < b.PollEvery) {
			b.PollEvery = req.PollEvery
		}
	}
	// Short deadlines force a tight poll so the abort lands well
	// inside the deadline, whatever the caller asked for.
	if deadline > 0 && deadline <= ShortDeadline &&
		(b.PollEvery == 0 || b.PollEvery > shortDeadlineStride) {
		b.PollEvery = shortDeadlineStride
	}
	return b
}

// effectiveDeadline clamps the request's deadline to the server caps.
func (s *Server) effectiveDeadline(deadlineMS int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// ensureProgram loads a program text into the shared world, once per
// distinct text for the server's lifetime. The load takes the world
// write lock, so it waits for in-flight runs and briefly stalls new
// ones; repeated texts hit the table and pay nothing.
func (s *Server) ensureProgram(src string) error {
	key := sha256.Sum256([]byte(src))
	s.progMu.Lock()
	already := s.loaded[key]
	s.progMu.Unlock()
	if already {
		return nil
	}

	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	s.progMu.Lock()
	if s.loaded[key] { // lost the race to another loader: fine
		s.progMu.Unlock()
		return nil
	}
	full := len(s.loaded) >= s.cfg.MaxPrograms
	s.progMu.Unlock()
	if full {
		return &wire.RequestError{Status: http.StatusInsufficientStorage,
			Msg: fmt.Sprintf("program table full (%d distinct programs); restart or raise -max-programs", s.cfg.MaxPrograms)}
	}

	s.worldMu.Lock()
	err := s.root.LoadSource(src)
	s.worldMu.Unlock()
	if err != nil {
		return &wire.RequestError{Status: http.StatusBadRequest, Msg: fmt.Sprintf("loading program: %v", err)}
	}

	s.progMu.Lock()
	s.loaded[key] = true
	s.m.programsLoaded.Inc()
	// Interned eval expressions were parsed against the old world
	// shape; drop them (their compiled code too) rather than risk
	// running stale customizations.
	for _, e := range s.exprs {
		s.root.DropEvalProgram(e.prog)
	}
	clear(s.exprs)
	s.exprLRU = s.exprLRU[:0]
	s.progMu.Unlock()
	return nil
}

// internExpr resolves src to its interned EvalProgram, parsing it on
// first sight. The table is a bounded LRU: past MaxEvalPrograms the
// coldest entry is dropped and its compiled code evicted from the
// shared cache, so a tenant cycling through unique programs cannot
// grow the cache without bound.
func (s *Server) internExpr(src string) (*selfgo.EvalProgram, error) {
	key := sha256.Sum256([]byte(src))
	s.progMu.Lock()
	defer s.progMu.Unlock()
	if e, ok := s.exprs[key]; ok {
		e.last = s.touch()
		s.m.exprHits.Inc()
		return e.prog, nil
	}
	prog, err := s.root.ParseEval(src)
	if err != nil {
		return nil, &wire.RequestError{Status: http.StatusBadRequest, Msg: fmt.Sprintf("parsing expr: %v", err)}
	}
	if len(s.exprs) >= s.cfg.MaxEvalPrograms {
		s.evictColdestLocked()
	}
	s.exprs[key] = &exprEntry{key: key, prog: prog, last: s.touch()}
	s.m.exprInterned.Inc()
	return prog, nil
}

var lruClock atomic.Int64

func (s *Server) touch() int64 { return lruClock.Add(1) }

// evictColdestLocked drops the least-recently-used interned
// expression. Linear scan: the table is small (<= MaxEvalPrograms) and
// eviction only runs once the table is full.
func (s *Server) evictColdestLocked() {
	var coldest *exprEntry
	for _, e := range s.exprs {
		if coldest == nil || e.last < coldest.last {
			coldest = e
		}
	}
	if coldest == nil {
		return
	}
	s.root.DropEvalProgram(coldest.prog)
	delete(s.exprs, coldest.key)
	s.m.exprEvicted.Inc()
}

// LoadedPrograms and InternedExprs report interning table sizes (for
// /statusz and tests).
func (s *Server) LoadedPrograms() int {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	return len(s.loaded)
}

func (s *Server) InternedExprs() int {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	return len(s.exprs)
}
