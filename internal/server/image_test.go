package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// waitReady polls s.Ready() until true or the deadline passes.
func waitReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestImageSaveAndWarmBoot is the serving-layer warm-start oracle: a
// warmed server saves an image, a second server boots from it, holds
// /readyz until pre-promotion lands, reports provenance on /statusz,
// and then serves the warmed workload without a single new compile.
func TestImageSaveAndWarmBoot(t *testing.T) {
	cold, ts := newTestServer(t, Config{Pool: 2, Benches: []string{"sumTo", "sieve"}})
	// Warm: run the benches and intern an eval program.
	for i := 0; i < 3; i++ {
		if code, res := postJSON(t, ts.URL+"/run", `{"bench": "sumTo"}`); code != http.StatusOK {
			t.Fatalf("warmup run: status %d %+v", code, res)
		}
	}
	if code, res := postJSON(t, ts.URL+"/eval", `{"expr": "6 * 7"}`); code != http.StatusOK || res.Int != 42 {
		t.Fatalf("warmup eval: status %d %+v", code, res)
	}
	if b := cold.Boot(); b.Image != "cold" || !b.Ready || b.Prepromoted != 0 {
		t.Fatalf("cold server boot info: %+v", b)
	}

	path := filepath.Join(t.TempDir(), "world.img")
	info, err := cold.SaveImage(path)
	if err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	if info.Manifest == 0 {
		t.Fatal("warmed server saved an empty code manifest")
	}
	if info.Programs == 0 {
		t.Fatal("interned eval program missing from the image")
	}
	if st, err := os.Stat(path); err != nil || st.Size() != int64(info.Bytes) {
		t.Fatalf("image file: %v (size %v, want %d)", err, st, info.Bytes)
	}

	warm, wts := newTestServer(t, Config{Pool: 2, Benches: []string{"sumTo", "sieve"}, ImagePath: path})
	waitReady(t, warm)

	b := warm.Boot()
	if b.Image != info.Hash {
		t.Fatalf("warm boot image %q, want %q", b.Image, info.Hash)
	}
	if b.RestoreSeconds <= 0 || b.ReadySeconds <= 0 {
		t.Fatalf("warm boot timings missing: %+v", b)
	}
	if b.Prepromoted == 0 || b.PrepromoteFailed != 0 {
		t.Fatalf("pre-promotion: %+v", b)
	}
	if int(b.Prepromoted) != info.Manifest {
		t.Fatalf("pre-promoted %d of %d manifest entries", b.Prepromoted, info.Manifest)
	}

	// /readyz answers 200 and /statusz carries the provenance block.
	resp, err := http.Get(wts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz on a ready warm server: %d", resp.StatusCode)
	}
	var status struct {
		Boot BootInfo `json:"boot"`
	}
	getJSON(t, wts.URL+"/statusz", &status)
	if status.Boot.Image != info.Hash || !status.Boot.Ready {
		t.Fatalf("/statusz boot block: %+v", status.Boot)
	}

	// The warmed workload must hit pre-promoted code only: no compiles.
	before := warm.cacheStats()
	if code, res := postJSON(t, wts.URL+"/run", `{"bench": "sumTo"}`); code != http.StatusOK {
		t.Fatalf("warm run: status %d %+v", code, res)
	}
	if code, res := postJSON(t, wts.URL+"/eval", `{"expr": "6 * 7"}`); code != http.StatusOK || res.Int != 42 {
		t.Fatalf("warm eval: status %d %+v", code, res)
	}
	after := warm.cacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("warm server compiled under the warmed workload: %d new misses", after.Misses-before.Misses)
	}

	// A bench the image did not carry still works (and may compile).
	if code, res := postJSON(t, wts.URL+"/run", `{"bench": "sieve"}`); code != http.StatusOK {
		t.Fatalf("non-manifest bench on warm server: status %d %+v", code, res)
	}
}

// TestImageBootRejectsBadPath: a missing or corrupt image fails New
// loudly instead of silently falling back to a cold boot.
func TestImageBootRejectsBadPath(t *testing.T) {
	if _, err := New(Config{Pool: 1, Benches: []string{}, ImagePath: "/nonexistent/world.img"}); err == nil {
		t.Fatal("New accepted a missing image path")
	}
	bad := filepath.Join(t.TempDir(), "bad.img")
	if err := os.WriteFile(bad, []byte("not an image at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Pool: 1, Benches: []string{}, ImagePath: bad}); err == nil {
		t.Fatal("New accepted a corrupt image")
	}
}
