package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"selfgo"
	"selfgo/internal/wire"
)

// newTestServer builds a server (no preloaded benchmarks unless names
// are given) and an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Benches == nil {
		cfg.Benches = []string{}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, *wire.Result) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res wire.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, &res
}

func TestEvalBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	code, res := postJSON(t, ts.URL+"/eval", `{"expr": "3 + 4"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, res)
	}
	if res.Int != 7 || res.Value != "7" {
		t.Fatalf("result %+v", res)
	}
	if res.Run == nil || res.Run.Instrs == 0 {
		t.Fatalf("missing run stats: %+v", res)
	}
	if res.TierMode != "opt" {
		t.Fatalf("tier mode %q", res.TierMode)
	}
}

func TestEvalProgramAndEntry(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 2})
	body := `{"program": "triple: n = ( n * 3 ).", "entry": "triple:", "args": [14]}`
	for i := 0; i < 3; i++ {
		code, res := postJSON(t, ts.URL+"/eval", body)
		if code != http.StatusOK || res.Int != 42 {
			t.Fatalf("round %d: status %d result %+v", i, code, res)
		}
	}
	if n := s.LoadedPrograms(); n != 1 {
		t.Fatalf("program loaded %d times, want interning to 1", n)
	}
	// Unknown entry: 404, not a hang or a 500.
	code, res := postJSON(t, ts.URL+"/eval", `{"entry": "noSuchThing"}`)
	if code != http.StatusNotFound {
		t.Fatalf("unknown entry: status %d %+v", code, res)
	}
}

func TestEvalRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	for _, c := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"expr": "1", "entry": "x"}`, http.StatusBadRequest},
		{`{"entry": "fib:", "args": [1, 2]}`, http.StatusBadRequest},
		{`{"expr": "3 +"}`, http.StatusBadRequest}, // parse error
		{`{"program": "][", "expr": "1"}`, http.StatusBadRequest},
	} {
		code, res := postJSON(t, ts.URL+"/eval", c.body)
		if code != c.want {
			t.Errorf("%s: status %d want %d (%+v)", c.body, code, c.want, res)
		}
		if res.Error == nil {
			t.Errorf("%s: no error body", c.body)
		}
	}
}

// TestCompileOnceAcrossConnections is the acceptance criterion in
// miniature: 8 concurrent connections hammering the same expression
// and entry must not compile anything after warm-up — the shared
// cache's miss counter stays flat while the hit counter climbs.
func TestCompileOnceAcrossConnections(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 8})
	exprBody := `{"expr": "| s <- 0 | 1 upTo: 100 Do: [ :i | s: s + i ]. s"}`
	entryBody := `{"program": "square: n = ( n * n ).", "entry": "square:", "args": [12]}`

	// Warm-up: one pass of each compiles everything the requests need.
	// The program load comes first — loading mutates the lobby map,
	// which (correctly) invalidates customizations compiled before it.
	if code, res := postJSON(t, ts.URL+"/eval", entryBody); code != 200 || res.Int != 144 {
		t.Fatalf("warm-up entry: %d %+v", code, res)
	}
	if code, res := postJSON(t, ts.URL+"/eval", exprBody); code != 200 || res.Int != 4950 {
		t.Fatalf("warm-up expr: %d %+v", code, res)
	}
	warm := s.cacheStats()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body, want := exprBody, int64(4950)
				if (w+i)%2 == 1 {
					body, want = entryBody, 144
				}
				resp, err := http.Post(ts.URL+"/eval", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var res wire.Result
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 || res.Int != want {
					errs <- fmt.Errorf("worker %d: status %d result %+v", w, resp.StatusCode, &res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	after := s.cacheStats()
	if after.Misses != warm.Misses {
		t.Errorf("compile-once violated: misses %d -> %d under steady load", warm.Misses, after.Misses)
	}
	if after.Hits <= warm.Hits {
		t.Errorf("hits did not grow: %d -> %d", warm.Hits, after.Hits)
	}
	// The /metrics exposition agrees with the internal snapshot.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantLine := fmt.Sprintf("selfgo_codecache_misses_total %d", after.Misses)
	if !strings.Contains(string(text), wantLine) {
		t.Errorf("metrics missing %q", wantLine)
	}
}

// TestAdmissionShedding floods a pool-of-1, queue-of-1 server: exactly
// one request runs, one queues, and the rest get an immediate 429 —
// never a hang.
func TestAdmissionShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 1, DefaultDeadline: time.Minute})
	slow := `{"expr": "| s <- 0 | 1 upTo: 3000000 Do: [ :i | s: s + 1 ]. s"}`

	release := make(chan struct{})
	go func() {
		defer close(release)
		if code, res := postJSON(t, ts.URL+"/eval", slow); code != 200 {
			t.Errorf("slow request: %d %+v", code, res)
		}
	}()
	// Wait until the slow request holds the worker.
	for i := 0; s.InFlight() == 0 && i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if s.InFlight() == 0 {
		t.Fatal("slow request never started")
	}

	var wg sync.WaitGroup
	codes := make(chan int, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := postJSON(t, ts.URL+"/eval", `{"expr": "1 + 1"}`)
			codes <- code
		}()
	}
	wg.Wait()
	close(codes)
	shed, okCount := 0, 0
	for c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			okCount++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	// 1 worker busy + 1 queue slot: at least 4 of 6 must be shed.
	if shed < 4 {
		t.Errorf("shed %d of 6, want >= 4 (ok=%d)", shed, okCount)
	}
	if s.m.shed.Value() != int64(shed) {
		t.Errorf("shed counter %d, observed %d", s.m.shed.Value(), shed)
	}
	<-release
}

// TestDrain: after Drain, new work is refused with 503 and readiness
// flips, while a request already in flight runs to completion.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 2, DefaultDeadline: time.Minute})
	slow := `{"expr": "| s <- 0 | 1 upTo: 3000000 Do: [ :i | s: s + 1 ]. s"}`

	done := make(chan struct{})
	go func() {
		defer close(done)
		code, res := postJSON(t, ts.URL+"/eval", slow)
		if code != 200 || res.Int != 2999999 {
			t.Errorf("in-flight request after drain: %d %+v", code, res)
		}
	}()
	for i := 0; s.InFlight() == 0 && i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	s.Drain()

	if code, _ := postJSON(t, ts.URL+"/eval", `{"expr": "1"}`); code != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d (liveness must hold)", resp.StatusCode)
	}
	<-done
	if s.DrainedOK() == 0 {
		t.Error("no request recorded as completing during drain")
	}
}

// TestDeadline: a request-level deadline aborts the run with 504 and a
// cancelled-kind error, and the worker survives for the next request.
func TestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	code, res := postJSON(t, ts.URL+"/eval",
		`{"expr": "| s <- 0 | 1 upTo: 400000000 Do: [ :i | s: s + 1 ]. s", "deadline_ms": 50}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d %+v, want 504", code, res)
	}
	if res.Error == nil || res.Error.Kind != "cancelled" {
		t.Fatalf("error %+v, want kind cancelled", res.Error)
	}
	// Worker recovered.
	if code, res := postJSON(t, ts.URL+"/eval", `{"expr": "2 + 2"}`); code != 200 || res.Int != 4 {
		t.Fatalf("worker did not recover: %d %+v", code, res)
	}
}

// TestClientDisconnect: dropping the connection mid-run aborts the
// guest at the next poll and returns the worker to the pool.
func TestClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/eval",
		strings.NewReader(`{"expr": "| s <- 0 | 1 upTo: 400000000 Do: [ :i | s: s + 1 ]. s"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	for i := 0; s.InFlight() == 0 && i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected client-side error after cancel")
	}
	// The abort lands at the next budget poll; then the worker is free.
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if code, res := postJSON(t, ts.URL+"/eval", `{"expr": "5 * 5"}`); code != 200 || res.Int != 25 {
		t.Fatalf("worker did not recover after disconnect: %d %+v", code, res)
	}
	if got := s.m.faults.With("cancelled").Value(); got == 0 {
		t.Error("cancelled fault not counted")
	}
}

func TestRunBench(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2, Benches: []string{"sumTo", "sieve"}})
	code, res := postJSON(t, ts.URL+"/run", `{"bench": "sumTo"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d %+v", code, res)
	}
	if res.Bench != "sumTo" {
		t.Fatalf("bench %q", res.Bench)
	}
	if res.CheckOK == nil || !*res.CheckOK {
		t.Fatalf("check failed: %+v", res)
	}
	// Not preloaded: 404.
	if code, _ := postJSON(t, ts.URL+"/run", `{"bench": "richards"}`); code != http.StatusNotFound {
		t.Fatalf("unloaded bench: status %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/run", `{"bench": "perm"}`); code != http.StatusNotFound {
		t.Fatalf("non-parallel-safe bench: status %d, want 404", code)
	}
}

// TestAdaptivePromotionUnderLoad drives an adaptive-tier server until
// a background promotion lands — the acceptance criterion that the
// tiered pipeline works across HTTP tenants, not just in selfbench.
func TestAdaptivePromotionUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 4, Mode: selfgo.ModeAdaptive, PromoteThreshold: 10})
	body := `{"program": "spinUp: n = ( | s <- 0 | 1 upTo: n Do: [ :i | s: s + (i * i) ]. s ).",
	          "entry": "spinUp:", "args": [200]}`

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp, err := http.Post(ts.URL+"/eval", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	s.root.DrainPromotions()
	ps := s.root.PromotionStats()
	if ps.Installed == 0 {
		t.Fatalf("no background promotion landed: %+v (tiers %v)", ps, s.root.TierCounts())
	}
	// The promotion is visible on the wire too.
	code, res := postJSON(t, ts.URL+"/eval", `{"entry": "spinUp:", "args": [200]}`)
	if code != 200 || res.Promotions == nil || res.Promotions.Installed == 0 {
		t.Fatalf("promotions missing from response: %d %+v", code, res)
	}
	if res.TierMode != "adaptive" {
		t.Fatalf("tier mode %q", res.TierMode)
	}
}

func TestStatuszAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 3, QueueDepth: 7, Benches: []string{"sumTo"}})
	postJSON(t, ts.URL+"/eval", `{"expr": "1 + 1"}`)

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var view statuszView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if view.Pool != 3 || view.QueueDepth != 7 || view.TierMode != "opt" {
		t.Fatalf("statusz %+v", view)
	}
	if view.Served == 0 || view.Cache.Entries == 0 {
		t.Fatalf("statusz counters empty: %+v", view)
	}
	if len(view.Benches) != 1 || view.Benches[0] != "sumTo" {
		t.Fatalf("statusz benches %v", view.Benches)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE selfserved_requests_total counter",
		`selfserved_requests_total{endpoint="eval",code="200"}`,
		"# TYPE selfserved_request_seconds histogram",
		"selfgo_codecache_misses_total",
		"selfserved_pool_free 3",
		"selfserved_pool_in_use 0",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestExprLRUEviction: past MaxEvalPrograms the oldest interned
// expression is dropped and its cache entries evicted, so unique
// programs cannot grow the shared cache without bound.
func TestExprLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, MaxEvalPrograms: 4})
	for i := 0; i < 12; i++ {
		body := fmt.Sprintf(`{"expr": "%d + %d"}`, i, i)
		if code, res := postJSON(t, ts.URL+"/eval", body); code != 200 || res.Int != int64(2*i) {
			t.Fatalf("expr %d: %d %+v", i, code, res)
		}
	}
	if n := s.InternedExprs(); n != 4 {
		t.Fatalf("interned %d, want LRU capped at 4", n)
	}
	if got := s.m.exprEvicted.Value(); got != 8 {
		t.Fatalf("evicted %d, want 8", got)
	}
	if s.cacheStats().Evicted == 0 {
		t.Fatal("LRU rotation did not evict shared-cache entries")
	}
}

// TestHostileNewVecFaults: a request allocating a huge vector must be
// answered with 422 and the out-of-fuel taxonomy — the byte budget
// faults at the allocation site, before the host materializes the
// storage. The request-level budget can tighten the cap but never
// raise it above the server's.
func TestHostileNewVecFaults(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, MaxBytes: 1 << 20})

	// 5e8 elements would be 8 GB of value storage; the server cap is 1 MiB.
	code, res := postJSON(t, ts.URL+"/eval", `{"expr": "_NewVec: 500000000"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("hostile _NewVec: status %d (%+v), want 422", code, res)
	}
	if res.Error == nil || res.Error.Kind != "outOfFuel" {
		t.Fatalf("hostile _NewVec: error %+v, want kind outOfFuel", res.Error)
	}
	if !strings.Contains(res.Error.Message, "byte budget") {
		t.Fatalf("hostile _NewVec: message %q does not name the byte budget", res.Error.Message)
	}

	// A guest IfFail: handler cannot swallow the fault into a 200.
	code, res = postJSON(t, ts.URL+"/eval", `{"expr": "_NewVec: 500000000 IfFail: [ -1 ]"}`)
	if code != http.StatusUnprocessableEntity || res.Error == nil || res.Error.Kind != "outOfFuel" {
		t.Fatalf("IfFail: swallowed the byte fault: %d %+v", code, res)
	}

	// Requests may tighten the cap below the server's...
	code, res = postJSON(t, ts.URL+"/eval", `{"expr": "_NewVec: 1024", "budget": {"max_bytes": 1024}}`)
	if code != http.StatusUnprocessableEntity || res.Error == nil || res.Error.Kind != "outOfFuel" {
		t.Fatalf("request-tightened budget not honored: %d %+v", code, res)
	}
	// ...but never raise it above.
	code, res = postJSON(t, ts.URL+"/eval", `{"expr": "_NewVec: 500000000", "budget": {"max_bytes": 1099511627776}}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("request raised the byte cap above the server's: %d %+v", code, res)
	}

	// Reasonable allocation under the same cap still answers 200, with
	// the byte traffic reported.
	code, res = postJSON(t, ts.URL+"/eval", `{"expr": "(_NewVec: 16 Fill: 3) at: 2"}`)
	if code != http.StatusOK || res.Int != 3 {
		t.Fatalf("benign _NewVec: %d %+v, want 200/3", code, res)
	}
	if res.Run == nil || res.Run.AllocBytes <= 0 {
		t.Fatalf("benign _NewVec: run stats missing alloc_bytes: %+v", res.Run)
	}
}

// TestRequestID: a well-formed forwarded X-Request-Id is echoed on
// the response and stamped into error bodies; absent or malformed
// ids are replaced with a freshly minted one.
func TestRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})

	// Forwarded id: echoed verbatim.
	req, _ := http.NewRequest("POST", ts.URL+"/eval", strings.NewReader(`{"expr": "1 + 1"}`))
	req.Header.Set(RequestIDHeader, "router-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "router-abc-123" {
		t.Fatalf("forwarded id not echoed: %q", got)
	}

	// No id: one is minted (32 hex chars), echoed on the response.
	resp, err = http.Post(ts.URL+"/eval", "application/json", strings.NewReader(`{"expr": "1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); !wire.ValidRequestID(got) || len(got) != 32 {
		t.Fatalf("minted id %q", got)
	}

	// Malformed forwarded id: replaced, not parroted.
	req, _ = http.NewRequest("POST", ts.URL+"/eval", strings.NewReader(`{"expr": "1"}`))
	req.Header.Set(RequestIDHeader, "has spaces and \"quotes\"")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); !wire.ValidRequestID(got) {
		t.Fatalf("malformed id not replaced: %q", got)
	}

	// Error bodies carry the id, so a failure seen through a router
	// names the request it belongs to.
	req, _ = http.NewRequest("POST", ts.URL+"/eval", strings.NewReader(`{"expr": "3 +"}`))
	req.Header.Set(RequestIDHeader, "fail-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var res wire.Result
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Error == nil || res.Error.RequestID != "fail-42" {
		t.Fatalf("error body request id: %+v", res.Error)
	}
}

// TestRetryAfterLoadAware pins the bounds and monotonicity of the
// shed Retry-After hint: >= 1 always, <= 30 under any backlog, and
// growing with queue depth. (An earlier version hardcoded 1, which
// told a thundering herd to come back all at once.)
func TestRetryAfterLoadAware(t *testing.T) {
	s, err := New(Config{Pool: 4, Benches: []string{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle retry-after %d, want 1", got)
	}
	// Backlog of 8 on a pool of 4: two pool drains.
	s.inFlight.Store(4)
	s.queued.Store(4)
	if got := s.retryAfterSeconds(); got != 2 {
		t.Fatalf("retry-after %d with backlog 8 / pool 4, want 2", got)
	}
	// Deeper queue, larger hint.
	s.queued.Store(36)
	if got := s.retryAfterSeconds(); got != 10 {
		t.Fatalf("retry-after %d with backlog 40 / pool 4, want 10", got)
	}
	// Absurd backlog: clamped.
	s.queued.Store(1 << 40)
	if got := s.retryAfterSeconds(); got != maxRetryAfterSeconds {
		t.Fatalf("retry-after %d, want clamp at %d", got, maxRetryAfterSeconds)
	}
	s.inFlight.Store(0)
	s.queued.Store(0)

	// End to end: a shed response carries the header.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s2, ts2 := newTestServer(t, Config{Pool: 1, QueueDepth: 1, DefaultDeadline: time.Minute})
	slow := `{"expr": "| s <- 0 | 1 upTo: 3000000 Do: [ :i | s: s + 1 ]. s"}`
	release := make(chan struct{})
	go func() {
		defer close(release)
		postJSON(t, ts2.URL+"/eval", slow)
	}()
	for i := 0; s2.InFlight() == 0 && i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	shedHeaders := make(chan string, 6)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts2.URL+"/eval", "application/json", strings.NewReader(`{"expr": "1"}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shedHeaders <- resp.Header.Get("Retry-After")
			}
		}()
	}
	wg.Wait()
	close(shedHeaders)
	sawShed := false
	for h := range shedHeaders {
		sawShed = true
		ra, err := strconv.Atoi(h)
		if err != nil || ra < minRetryAfterSeconds || ra > maxRetryAfterSeconds {
			t.Fatalf("shed Retry-After %q out of bounds", h)
		}
	}
	if !sawShed {
		t.Fatal("never saw a 429 from the flooded server")
	}
	<-release
}

// scrapeGauge reads one metric's current value from /metrics text.
func scrapeGauge(t *testing.T, url, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(text), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err == nil {
				return f, true
			}
		}
	}
	return 0, false
}

// TestPoolGaugesTrackOccupancy: the pool gauges must read live
// occupancy off the pool channel — while a request holds a worker,
// in-use rises and free drops; idle, they return to 0 and capacity.
// (An earlier version exported the static config value, which never
// moved.)
func TestPoolGaugesTrackOccupancy(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})

	if free, ok := scrapeGauge(t, ts.URL, "selfserved_pool_free"); !ok || free != 2 {
		t.Fatalf("idle pool_free = %v (ok=%v), want 2", free, ok)
	}
	if used, ok := scrapeGauge(t, ts.URL, "selfserved_pool_in_use"); !ok || used != 0 {
		t.Fatalf("idle pool_in_use = %v (ok=%v), want 0", used, ok)
	}

	// Park one worker on a slow run and watch the gauges move.
	done := make(chan struct{})
	go func() {
		defer close(done)
		body := `{"expr": "[ true ] whileTrue: [ ]", "deadline_ms": 2000}`
		resp, err := http.Post(ts.URL+"/eval", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	moved := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		used, ok := scrapeGauge(t, ts.URL, "selfserved_pool_in_use")
		free, okF := scrapeGauge(t, ts.URL, "selfserved_pool_free")
		if ok && okF && used >= 1 && used+free == 2 {
			moved = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-done
	if !moved {
		t.Fatal("pool gauges never reflected the in-flight request")
	}

	// Back to idle after the run completes and the worker is released.
	deadline = time.Now().Add(5 * time.Second)
	idle := false
	for time.Now().Before(deadline) {
		used, ok := scrapeGauge(t, ts.URL, "selfserved_pool_in_use")
		if ok && used == 0 {
			idle = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !idle {
		t.Fatal("pool_in_use did not return to 0 after the request finished")
	}
	// The checkout high-water mark survives the return to idle — it is
	// what load drivers assert on when requests are too fast for the
	// live gauge to be caught nonzero.
	if peak, ok := scrapeGauge(t, ts.URL, "selfserved_pool_in_use_peak"); !ok || peak < 1 {
		t.Fatalf("pool_in_use_peak = %v (ok=%v) after load, want >= 1", peak, ok)
	}
}
