package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"selfgo"
	"selfgo/internal/obj"
	"selfgo/internal/vm"
	"selfgo/internal/wire"
)

// statusClientClosedRequest is the (nginx-convention) status logged
// when the client went away before the run finished. It never reaches
// the client — the connection is gone — but it keeps the metrics
// honest about why the run was aborted.
const statusClientClosedRequest = 499

// RequestIDHeader carries the request id end to end: a front router
// mints one (or forwards the client's), every replica echoes it on
// the response and stamps it into error bodies, so one failing
// request can be followed across processes.
const RequestIDHeader = wire.RequestIDHeader

// ridKey carries the request id through the handler's context.
type ridKey struct{}

// requestIDFrom reads the id instrument() stored.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /eval", s.instrument("eval", s.handleEval))
	mux.Handle("POST /run", s.instrument("run", s.handleRun))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.Handle("GET /statusz", s.instrument("statusz", s.handleStatusz))
	return mux
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with panic containment (a bug in the
// serving layer answers 500, it does not take the process down),
// request-id propagation and request accounting.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Accept a well-formed forwarded id, mint one otherwise; echo it
		// on the response before the handler can write, and thread it to
		// the error paths through the context.
		rid := r.Header.Get(RequestIDHeader)
		if !wire.ValidRequestID(rid) {
			rid = wire.NewRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				// The guest side has its own panic backstops; reaching
				// this one means a server bug. Contain it per-request.
				if sw.code == 0 {
					s.writeJSON(sw, http.StatusInternalServerError, &wire.Result{
						Error: &wire.ErrorJSON{Kind: "internal",
							Message:   fmt.Sprintf("server panic: %v", rec),
							RequestID: rid},
					})
				}
				_ = debug.Stack() // keep the stack retrievable in a debugger
			}
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			s.observe(endpoint, strconv.Itoa(code), time.Since(start))
		}()
		h(sw, r)
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeRunError maps a failed guest run (or admission failure) to an
// HTTP status plus the shared error encoding.
func (s *Server) writeRunError(w http.ResponseWriter, ctx context.Context, err error) {
	rid := requestIDFrom(ctx)
	var re *wire.RequestError
	if errors.As(err, &re) {
		s.writeJSON(w, re.Status, &wire.Result{
			Error: &wire.ErrorJSON{Kind: "request", Message: re.Msg, RequestID: rid}})
		return
	}
	if errors.Is(err, errShed) {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeJSON(w, http.StatusTooManyRequests, &wire.Result{
			Error: &wire.ErrorJSON{Kind: "overload", Message: err.Error(), RequestID: rid}})
		return
	}
	status := http.StatusUnprocessableEntity // guest fault: valid request, failed program
	var rte *vm.RuntimeError
	if errors.As(err, &rte) {
		s.m.faults.With(rte.Kind.String()).Inc()
		switch rte.Kind {
		case vm.KindCancelled:
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			} else {
				status = statusClientClosedRequest
			}
		case vm.KindInternal:
			status = http.StatusInternalServerError
		}
	} else if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	} else if errors.Is(ctx.Err(), context.Canceled) {
		status = statusClientClosedRequest
	}
	ej := wire.NewError(err)
	ej.RequestID = rid
	s.writeJSON(w, status, &wire.Result{Error: ej})
}

// runOnWorker is the shared execution path: admission, budget,
// deadline, world read-lock, accounting.
func (s *Server) runOnWorker(r *http.Request, budget *wire.Budget, deadlineMS int64,
	run func(ctx context.Context, sys *selfgo.System) (*selfgo.Result, error)) (*selfgo.Result, context.Context, error) {

	deadline := s.effectiveDeadline(deadlineMS)
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	sys, err := s.acquire(ctx)
	if err != nil {
		return nil, ctx, err
	}
	defer s.release(sys)
	sys.SetBudget(s.effectiveBudget(budget, deadline))

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.worldMu.RLock()
	defer s.worldMu.RUnlock()
	res, err := run(ctx, sys)
	if err != nil {
		return nil, ctx, err
	}
	// The deferred release resets the worker's arena before the handler
	// encodes res.Value; pin it so an object result survives the reset.
	sys.MarkEscaped(res.Value)
	s.m.guestInstrs.Add(res.Run.Instrs)
	s.m.guestCycles.Add(res.Run.Cycles)
	s.m.guestSends.Add(res.Run.Sends)
	s.m.guestAllocs.Add(res.Run.Allocs)
	s.m.guestAllocBytes.Add(res.Run.AllocBytes)
	s.m.bbvVersions.Add(res.Run.BBVVersions)
	s.m.bbvCapHits.Add(res.Run.BBVCapHits)
	return res, ctx, nil
}

// result converts a finished run to the wire encoding, attaching the
// tier-schedule view (mode, per-tier compile counts, promotion
// outcomes) that the adaptive mode's clients watch.
func (s *Server) result(res *selfgo.Result) *wire.Result {
	out := wire.NewResult(res.Value, res.Run, res.Compile, res.CompileTime)
	out.TierMode = s.cfg.Mode.String()
	out.Tiers = s.root.TierCounts()
	ps := s.root.PromotionStats()
	out.Promotions = &wire.PromotionsJSON{
		Installed: ps.Installed, Fails: ps.Fails, Discards: ps.Discards,
		MeanLatencyMS: float64(ps.MeanLatency) / float64(time.Millisecond),
	}
	return out
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, &wire.Result{
			Error: &wire.ErrorJSON{Kind: "draining", Message: "server is draining",
				RequestID: requestIDFrom(r.Context())}})
		return
	}
	req, err := wire.DecodeEvalRequest(r.Body, s.cfg.Limits)
	if err != nil {
		s.writeRunError(w, r.Context(), err)
		return
	}

	// Program loads mutate the shared world; they happen before
	// admission so a load never sits on a worker slot.
	if req.Program != "" {
		if err := s.ensureProgram(req.Program); err != nil {
			s.writeRunError(w, r.Context(), err)
			return
		}
	}
	var prog *selfgo.EvalProgram
	if req.Expr != "" {
		if prog, err = s.internExpr(req.Expr); err != nil {
			s.writeRunError(w, r.Context(), err)
			return
		}
	}

	res, ctx, err := s.runOnWorker(r, req.Budget, req.DeadlineMS,
		func(ctx context.Context, sys *selfgo.System) (*selfgo.Result, error) {
			if prog != nil {
				return sys.EvalProgramCtx(ctx, prog)
			}
			if lk := obj.Lookup(s.root.World().Lobby.Map, req.Entry); lk == nil || lk.Slot.Kind != obj.MethodSlot {
				return nil, &wire.RequestError{Status: http.StatusNotFound,
					Msg: fmt.Sprintf("lobby does not define a method %q", req.Entry)}
			}
			args := make([]selfgo.Value, len(req.Args))
			for i, a := range req.Args {
				args[i] = obj.Int(a)
			}
			return sys.CallCtx(ctx, req.Entry, args...)
		})
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.result(res))
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, &wire.Result{
			Error: &wire.ErrorJSON{Kind: "draining", Message: "server is draining",
				RequestID: requestIDFrom(r.Context())}})
		return
	}
	req, err := wire.DecodeRunRequest(r.Body, s.cfg.Limits)
	if err != nil {
		s.writeRunError(w, r.Context(), err)
		return
	}
	be, ok := s.benches[req.Bench]
	if !ok {
		s.writeRunError(w, r.Context(), &wire.RequestError{Status: http.StatusNotFound,
			Msg: fmt.Sprintf("benchmark %q is not preloaded on this server", req.Bench)})
		return
	}

	res, ctx, err := s.runOnWorker(r, req.Budget, req.DeadlineMS,
		func(ctx context.Context, sys *selfgo.System) (*selfgo.Result, error) {
			return sys.CallCtx(ctx, be.b.Entry)
		})
	if err != nil {
		s.writeRunError(w, ctx, err)
		return
	}
	out := s.result(res)
	out.Bench = be.b.Name
	if be.b.HasExpect {
		ok := res.Value.I() == be.b.Expect
		out.CheckOK = &ok
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and serving. Stays 200 while
	// draining — kill the listener, not the process.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if !s.ready.Load() {
		// Warm boot still pre-promoting its manifest: hold traffic off
		// until the hot code set is resident.
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "warming")
		return
	}
	fmt.Fprintln(w, "ready")
}

// statuszView is the human-readable JSON snapshot of the server.
type statuszView struct {
	UptimeSeconds  float64              `json:"uptime_seconds"`
	TierMode       string               `json:"tier_mode"`
	Strategy       string               `json:"strategy"`
	Pool           int                  `json:"pool"`
	QueueDepth     int                  `json:"queue_depth"`
	InFlight       int64                `json:"in_flight"`
	Queued         int64                `json:"queued"`
	Draining       bool                 `json:"draining"`
	Served         int64                `json:"served"`
	LoadedPrograms int                  `json:"loaded_programs"`
	InternedExprs  int                  `json:"interned_exprs"`
	Benches        []string             `json:"benches"`
	Boot           BootInfo             `json:"boot"`
	Cache          statuszCache         `json:"codecache"`
	Tiers          map[string]int       `json:"tiers"`
	Promotions     *wire.PromotionsJSON `json:"promotions"`
	BBV            statuszBBV           `json:"bbv"`
}

type statuszCache struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Waits   int64 `json:"waits"`
	Evicted int64 `json:"evicted"`
	Entries int64 `json:"entries"`
}

// statuszBBV mirrors the selfgo_bbv_* metrics (zero under split).
type statuszBBV struct {
	Versions int64 `json:"versions"`
	CapHits  int64 `json:"cap_hits"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	cs := s.cacheStats()
	ps := s.root.PromotionStats()
	benches := make([]string, 0, len(s.benches))
	for name := range s.benches {
		benches = append(benches, name)
	}
	sort.Strings(benches)
	s.writeJSON(w, http.StatusOK, &statuszView{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		TierMode:       s.cfg.Mode.String(),
		Strategy:       s.cfg.Compiler.Strategy.String(),
		Pool:           s.cfg.Pool,
		QueueDepth:     s.cfg.QueueDepth,
		InFlight:       s.inFlight.Load(),
		Queued:         s.queued.Load(),
		Draining:       s.draining.Load(),
		Served:         s.served.Load(),
		LoadedPrograms: s.LoadedPrograms(),
		InternedExprs:  s.InternedExprs(),
		Benches:        benches,
		Boot:           s.Boot(),
		Cache: statuszCache{Hits: cs.Hits, Misses: cs.Misses, Waits: cs.Waits,
			Evicted: cs.Evicted, Entries: cs.Entries},
		Tiers: s.root.TierCounts(),
		Promotions: &wire.PromotionsJSON{
			Installed: ps.Installed, Fails: ps.Fails, Discards: ps.Discards,
			MeanLatencyMS: float64(ps.MeanLatency) / float64(time.Millisecond),
		},
		BBV: statuszBBV{
			Versions: s.m.bbvVersions.Value(),
			CapHits:  s.m.bbvCapHits.Value(),
		},
	})
}
